// Randomized differential test: the full engine against an in-memory
// reference model, under interleaved writes, reads, scans, and rebalances
// with randomly chosen balancing algorithms — in both execution modes.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/engine.h"

namespace eris::core {
namespace {

using routing::KeyValue;
using storage::Key;
using storage::ObjectId;
using storage::Value;

struct Chaos {
  ExecutionMode mode;
  uint64_t seed;
};

class DifferentialTest : public ::testing::TestWithParam<Chaos> {};

TEST_P(DifferentialTest, EngineMatchesReferenceUnderChaos) {
  const Chaos chaos = GetParam();
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(2, 2);
  opts.mode = chaos.mode;
  Engine engine(opts);
  const Key n = 1u << 15;
  ObjectId idx = engine.CreateIndex("kv", n,
                                    {.prefix_bits = 8, .key_bits = 15});
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  auto session = engine.CreateSession();

  std::map<Key, Value> ref_index;
  std::vector<Value> ref_column;
  Xoshiro256 rng(chaos.seed);

  for (int round = 0; round < 40; ++round) {
    switch (rng.NextBounded(7)) {
      case 0: {  // insert batch
        std::vector<KeyValue> kvs;
        for (int i = 0; i < 400; ++i) {
          kvs.push_back({rng.NextBounded(n), rng.Next()});
        }
        uint64_t inserted = session->Insert(idx, kvs);
        uint64_t expect = 0;
        for (const KeyValue& kv : kvs) {
          if (ref_index.emplace(kv.key, kv.value).second) ++expect;
        }
        ASSERT_EQ(inserted, expect) << "round " << round;
        break;
      }
      case 1: {  // upsert batch (last write wins within the batch)
        std::vector<KeyValue> kvs;
        for (int i = 0; i < 400; ++i) {
          kvs.push_back({rng.NextBounded(n), rng.Next()});
        }
        session->Upsert(idx, kvs);
        for (const KeyValue& kv : kvs) ref_index[kv.key] = kv.value;
        break;
      }
      case 2: {  // erase batch
        std::vector<Key> keys;
        for (int i = 0; i < 200; ++i) keys.push_back(rng.NextBounded(n));
        uint64_t erased = session->Erase(idx, keys);
        uint64_t expect = 0;
        for (Key k : keys) expect += ref_index.erase(k);
        ASSERT_EQ(erased, expect) << "round " << round;
        break;
      }
      case 3: {  // lookup batch with value verification
        std::vector<Key> keys;
        for (int i = 0; i < 300; ++i) keys.push_back(rng.NextBounded(n));
        auto values = session->LookupValues(idx, keys);
        for (size_t i = 0; i < keys.size(); ++i) {
          auto it = ref_index.find(keys[i]);
          if (it == ref_index.end()) {
            ASSERT_EQ(values[i], std::nullopt) << keys[i];
          } else {
            ASSERT_EQ(values[i], std::optional<Value>(it->second)) << keys[i];
          }
        }
        break;
      }
      case 4: {  // index range scan row count
        Key lo = rng.NextBounded(n);
        Key hi = lo + 1 + rng.NextBounded(n - lo);
        ScanResult r = session->ScanIndexRange(idx, lo, hi);
        uint64_t expect = static_cast<uint64_t>(
            std::distance(ref_index.lower_bound(lo),
                          ref_index.lower_bound(hi)));
        ASSERT_EQ(r.rows, expect) << "round " << round;
        break;
      }
      case 5: {  // column append + full scan
        std::vector<Value> values;
        for (int i = 0; i < 500; ++i) values.push_back(rng.NextBounded(1000));
        session->Append(col, values);
        ref_column.insert(ref_column.end(), values.begin(), values.end());
        ScanResult r = session->ScanColumn(col);
        uint64_t expect_sum = 0;
        for (Value v : ref_column) expect_sum += v;
        ASSERT_EQ(r.rows, ref_column.size()) << "round " << round;
        ASSERT_EQ(r.sum, expect_sum) << "round " << round;
        break;
      }
      default: {  // rebalance with a random algorithm
        LoadBalancerConfig cfg;
        cfg.algorithm = rng.NextBounded(2) == 0
                            ? BalanceAlgorithm::kOneShot
                            : BalanceAlgorithm::kMovingAverage;
        cfg.ma_window = 1 + static_cast<uint32_t>(rng.NextBounded(4));
        cfg.trigger_cv = 0.01;
        cfg.min_total_accesses = 1;
        engine.RebalanceObject(idx, cfg);
        engine.RebalanceObject(col, cfg);
        break;
      }
    }
  }

  // Final exhaustive verification of the index.
  std::vector<Key> all_keys;
  for (const auto& [k, v] : ref_index) all_keys.push_back(k);
  auto values = session->LookupValues(idx, all_keys);
  for (size_t i = 0; i < all_keys.size(); ++i) {
    ASSERT_EQ(values[i], std::optional<Value>(ref_index[all_keys[i]]));
  }
  uint64_t total_tuples = 0;
  for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    total_tuples += engine.aeu(a).partition(idx)->tuple_count();
  }
  EXPECT_EQ(total_tuples, ref_index.size());
  engine.Stop();
}

std::vector<Chaos> AllChaos() {
  std::vector<Chaos> out;
  for (ExecutionMode mode :
       {ExecutionMode::kSimulated, ExecutionMode::kThreads}) {
    for (uint64_t seed : {1ull, 7ull, 1234ull}) out.push_back({mode, seed});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, DifferentialTest, ::testing::ValuesIn(AllChaos()),
    [](const auto& info) {
      return std::string(info.param.mode == ExecutionMode::kSimulated
                             ? "Simulated"
                             : "Threads") +
             "Seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace eris::core
