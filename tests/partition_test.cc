// Tests for Partition: dispatch, split/extract/absorb, flatten/rebuild.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "numa/memory_manager.h"
#include "storage/partition.h"

namespace eris::storage {
namespace {

class PartitionTest : public ::testing::Test {
 protected:
  numa::NodeMemoryManager mm_{0};
  DataObjectDesc index_desc_ =
      DataObjectDesc::Index(0, "idx", {.prefix_bits = 8, .key_bits = 16});
  DataObjectDesc column_desc_ = DataObjectDesc::Column(0, "col");
  DataObjectDesc hash_desc_ = DataObjectDesc::Hash(0, "hash");
};

TEST_F(PartitionTest, IndexDispatch) {
  Partition p(index_desc_, &mm_, {0, kMaxKey});
  EXPECT_TRUE(p.Insert(10, 100));
  EXPECT_TRUE(p.Upsert(20, 200));
  EXPECT_EQ(p.Lookup(10), std::optional<Value>(100));
  EXPECT_TRUE(p.Erase(10));
  EXPECT_EQ(p.tuple_count(), 1u);
  EXPECT_GT(p.memory_bytes(), 0u);
  EXPECT_NE(p.index(), nullptr);
  EXPECT_EQ(p.mvcc_column(), nullptr);
}

TEST_F(PartitionTest, HashDispatch) {
  Partition p(hash_desc_, &mm_, {0, kMaxKey}, /*hash_salt=*/7);
  EXPECT_TRUE(p.Insert(10, 100));
  EXPECT_EQ(p.Lookup(10), std::optional<Value>(100));
  EXPECT_NE(p.hash(), nullptr);
  EXPECT_EQ(p.hash()->salt(), 7u);
}

TEST_F(PartitionTest, ColumnDispatch) {
  Partition p(column_desc_, &mm_, {});
  p.ColumnAppend(5, 1);
  p.ColumnAppend(6, 2);
  EXPECT_EQ(p.tuple_count(), 2u);
  EXPECT_EQ(p.ColumnScanSum(10, 0, kMaxKey), 11u);
  p.ColumnUpdate(0, 50, 3);
  EXPECT_EQ(p.ColumnScanSum(2, 0, kMaxKey), 11u);
  EXPECT_EQ(p.ColumnScanSum(3, 0, kMaxKey), 56u);
}

TEST_F(PartitionTest, IndexRangeScan) {
  Partition p(index_desc_, &mm_, {0, kMaxKey});
  for (Key k = 0; k < 100; ++k) p.Insert(k, k);
  uint64_t sum = 0;
  uint64_t n = p.IndexRangeScan(10, 20, [&](Key, Value v) { sum += v; });
  EXPECT_EQ(n, 10u);
  EXPECT_EQ(sum, 145u);  // 10+..+19
}

TEST_F(PartitionTest, HashRangeScanFiltersWholeTable) {
  Partition p(hash_desc_, &mm_, {0, kMaxKey});
  for (Key k = 0; k < 100; ++k) p.Insert(k, k * 2);
  uint64_t sum = 0;
  uint64_t n = p.IndexRangeScan(10, 20, [&](Key k, Value v) {
    EXPECT_GE(k, 10u);
    EXPECT_LT(k, 20u);
    sum += v;
  });
  EXPECT_EQ(n, 10u);
  EXPECT_EQ(sum, 2u * (10 + 11 + 12 + 13 + 14 + 15 + 16 + 17 + 18 + 19));
}

TEST_F(PartitionTest, SplitOffRangeIndex) {
  Partition p(index_desc_, &mm_, {0, 1000});
  for (Key k = 0; k < 1000; ++k) p.Insert(k, k);
  Partition upper = p.SplitOffRange(600);
  EXPECT_EQ(p.range().hi, 600u);
  EXPECT_EQ(upper.range().lo, 600u);
  EXPECT_EQ(p.tuple_count(), 600u);
  EXPECT_EQ(upper.tuple_count(), 400u);
}

TEST_F(PartitionTest, ExtractRangeMiddle) {
  Partition p(index_desc_, &mm_, {0, kMaxKey});
  for (Key k = 0; k < 1000; ++k) p.Insert(k, k);
  Partition mid = p.ExtractRange(300, 700);
  EXPECT_EQ(mid.tuple_count(), 400u);
  EXPECT_EQ(p.tuple_count(), 600u);
  EXPECT_EQ(p.Lookup(299), std::optional<Value>(299));
  EXPECT_EQ(p.Lookup(300), std::nullopt);
  EXPECT_EQ(p.Lookup(700), std::optional<Value>(700));
  EXPECT_EQ(mid.Lookup(300), std::optional<Value>(300));
  EXPECT_EQ(mid.Lookup(699), std::optional<Value>(699));
}

TEST_F(PartitionTest, ExtractRangeToDomainEnd) {
  Partition p(index_desc_, &mm_, {0, kMaxKey});
  p.Insert(100, 1);
  p.Insert(65535, 2);  // max for 16-bit keys
  Partition tail = p.ExtractRange(50000, kMaxKey);
  EXPECT_EQ(tail.tuple_count(), 1u);
  EXPECT_EQ(tail.Lookup(65535), std::optional<Value>(2));
  EXPECT_EQ(p.tuple_count(), 1u);
}

TEST_F(PartitionTest, ExtractRangeHash) {
  Partition p(hash_desc_, &mm_, {0, kMaxKey});
  for (Key k = 0; k < 100; ++k) p.Insert(k, k);
  Partition mid = p.ExtractRange(40, 60);
  EXPECT_EQ(mid.tuple_count(), 20u);
  EXPECT_EQ(p.tuple_count(), 80u);
  EXPECT_EQ(mid.Lookup(45), std::optional<Value>(45));
  EXPECT_EQ(p.Lookup(45), std::nullopt);
}

TEST_F(PartitionTest, AbsorbIndexExtendsRange) {
  Partition a(index_desc_, &mm_, {0, 500});
  Partition b(index_desc_, &mm_, {500, 1000});
  for (Key k = 0; k < 500; ++k) a.Insert(k, k);
  for (Key k = 500; k < 1000; ++k) b.Insert(k, k);
  a.Absorb(std::move(b));
  EXPECT_EQ(a.tuple_count(), 1000u);
  EXPECT_EQ(a.range().lo, 0u);
  EXPECT_EQ(a.range().hi, 1000u);
}

TEST_F(PartitionTest, SplitOffTailColumn) {
  Partition p(column_desc_, &mm_, {});
  for (Value v = 0; v < 1000; ++v) p.ColumnAppend(v, 1);
  Partition tail = p.SplitOffTail(300);
  EXPECT_EQ(p.tuple_count(), 700u);
  EXPECT_EQ(tail.tuple_count(), 300u);
}

TEST_F(PartitionTest, FlattenRebuildIndex) {
  Partition p(index_desc_, &mm_, {0, kMaxKey});
  Xoshiro256 rng(2);
  for (int i = 0; i < 2000; ++i) p.Upsert(rng.NextBounded(1u << 16), i);
  std::vector<uint8_t> stream = p.Flatten();
  Result<Partition> rebuilt =
      Partition::Rebuild(index_desc_, &mm_, {0, kMaxKey}, 0, stream);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->tuple_count(), p.tuple_count());
  p.index()->ForEach([&](Key k, Value v) {
    EXPECT_EQ(rebuilt->Lookup(k), std::optional<Value>(v));
  });
}

TEST_F(PartitionTest, FlattenRebuildColumn) {
  Partition p(column_desc_, &mm_, {});
  for (Value v = 0; v < 500; ++v) p.ColumnAppend(v * 2, 1);
  std::vector<uint8_t> stream = p.Flatten();
  Result<Partition> rebuilt =
      Partition::Rebuild(column_desc_, &mm_, {}, 0, stream);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->tuple_count(), 500u);
  EXPECT_EQ(rebuilt->mvcc_column()->column().Get(10), 20u);
}

TEST_F(PartitionTest, FlattenRebuildHash) {
  Partition p(hash_desc_, &mm_, {0, kMaxKey}, 3);
  for (Key k = 0; k < 100; ++k) p.Insert(k, k + 7);
  std::vector<uint8_t> stream = p.Flatten();
  Result<Partition> rebuilt =
      Partition::Rebuild(hash_desc_, &mm_, {0, kMaxKey}, 99, stream);
  ASSERT_TRUE(rebuilt.ok());
  for (Key k = 0; k < 100; ++k) {
    EXPECT_EQ(rebuilt->Lookup(k), std::optional<Value>(k + 7));
  }
}

TEST_F(PartitionTest, RebuildRejectsGarbage) {
  std::vector<uint8_t> garbage{1, 2, 3};
  Result<Partition> r =
      Partition::Rebuild(index_desc_, &mm_, {0, kMaxKey}, 0, garbage);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(PartitionTest, RebuildRejectsKindMismatch) {
  Partition p(index_desc_, &mm_, {0, kMaxKey});
  p.Insert(1, 1);
  std::vector<uint8_t> stream = p.Flatten();
  Result<Partition> r =
      Partition::Rebuild(column_desc_, &mm_, {}, 0, stream);
  EXPECT_FALSE(r.ok());
}

TEST_F(PartitionTest, RebuildRejectsTruncatedStream) {
  Partition p(index_desc_, &mm_, {0, kMaxKey});
  for (Key k = 0; k < 10; ++k) p.Insert(k, k);
  std::vector<uint8_t> stream = p.Flatten();
  stream.resize(stream.size() - 8);
  Result<Partition> r =
      Partition::Rebuild(index_desc_, &mm_, {0, kMaxKey}, 0, stream);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace eris::storage
