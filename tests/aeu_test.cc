// AEU-level tests: loop mechanics, command grouping/coalescing, deferral,
// and forwarding, exercised through a manually pumped engine.
#include <gtest/gtest.h>

#include "core/engine.h"

namespace eris::core {
namespace {

using routing::AggregateSink;
using routing::CommandType;
using routing::KeyValue;
using storage::Key;
using storage::ObjectId;
using storage::Value;

EngineOptions SimOpts(uint32_t nodes = 2, uint32_t cores = 2) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(nodes, cores);
  opts.mode = ExecutionMode::kSimulated;
  return opts;
}

TEST(AeuTest, IdleIterationReportsNoWork) {
  Engine engine(SimOpts());
  engine.CreateIndex("kv", 1u << 16, {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  // Drain whatever startup left behind.
  while (engine.PumpAll()) {
  }
  EXPECT_FALSE(engine.aeu(0).RunLoopIteration());
  engine.Stop();
}

TEST(AeuTest, CommandsAreCountedPerLoop) {
  Engine engine(SimOpts());
  ObjectId idx = engine.CreateIndex("kv", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<KeyValue> kvs{{1, 1}, {40000, 2}};
  session->Insert(idx, kvs);
  uint64_t processed = 0;
  for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    processed += engine.aeu(a).loop_stats().commands_processed;
  }
  EXPECT_GE(processed, 2u);  // at least the two insert chunks
  engine.Stop();
}

TEST(AeuTest, ScanCommandsSubmittedTogetherCoalesce) {
  Engine engine(SimOpts(1, 1));  // one AEU: all scans land in one mailbox
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  auto session = engine.CreateSession();
  session->Append(col, std::vector<Value>{1, 2, 3, 4, 5});

  AggregateSink& sink = session->sink();
  sink.Reset();
  routing::ScanParams params;
  params.snapshot_ts = engine.oracle().ReadTs();
  uint64_t expected = 0;
  for (int i = 0; i < 8; ++i) {
    expected += session->endpoint().SendScanColumn(col, params, &sink);
  }
  session->Wait(expected);
  // All 8 scans arrived in one drain: 7 were answered by the shared pass.
  EXPECT_EQ(engine.aeu(0).loop_stats().scans_coalesced, 7u);
  EXPECT_EQ(sink.hits(), 8u * 5);
  engine.Stop();
}

TEST(AeuTest, CoalescedScansWithDistinctFiltersStayIsolated) {
  // The segment-at-a-time shared pass must evaluate each coalesced job's
  // own predicate and visible prefix.
  Engine engine(SimOpts(1, 1));
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<Value> values;
  for (Value v = 0; v < 1000; ++v) values.push_back(v);
  session->Append(col, values);

  AggregateSink& sink = session->sink();
  sink.Reset();
  routing::ScanParams narrow;
  narrow.snapshot_ts = engine.oracle().ReadTs();
  narrow.lo = 10;
  narrow.hi = 19;
  routing::ScanParams full;
  full.snapshot_ts = engine.oracle().ReadTs();
  uint64_t expected = session->endpoint().SendScanColumn(col, narrow, &sink);
  expected += session->endpoint().SendScanColumn(col, full, &sink);
  session->Wait(expected);
  EXPECT_EQ(sink.hits(), 10u + 1000u);
  EXPECT_EQ(sink.sum(), (10u + 19u) * 10 / 2 + 999u * 1000 / 2);
  engine.Stop();
}

TEST(AeuTest, SelectiveScanSkipsSegmentsViaZoneMaps) {
  Engine engine(SimOpts(1, 1));
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  auto session = engine.CreateSession();
  // Clustered (ascending) values spanning several segments.
  const uint64_t n = storage::ColumnStore::kSegmentCapacity * 3;
  std::vector<Value> values(8192);
  for (uint64_t done = 0; done < n; done += values.size()) {
    for (size_t i = 0; i < values.size(); ++i) values[i] = done + i;
    session->Append(col, values);
  }
  uint64_t skipped_before = engine.aeu(0).loop_stats().zone_segments_skipped;
  // A range living entirely in the first segment: the other segments are
  // skipped without being streamed.
  core::ScanResult r = session->ScanColumn(col, 100, 199);
  EXPECT_EQ(r.rows, 100u);
  EXPECT_GT(engine.aeu(0).loop_stats().zone_segments_skipped, skipped_before);
  engine.Stop();
}

TEST(AeuTest, StaleOwnerForwardsAfterTableChange) {
  Engine engine(SimOpts(1, 4));
  const Key n = 1u << 14;
  ObjectId idx = engine.CreateIndex("kv", n,
                                    {.prefix_bits = 8, .key_bits = 14});
  engine.Start();
  auto loader = engine.CreateSession();
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < n; ++k) kvs.push_back({k, k});
  loader->Insert(idx, kvs);

  // Skew the monitor so a rebalance will move boundaries.
  std::vector<Key> hot;
  for (Key k = 0; k < n / 4; ++k) hot.push_back(k);
  loader->Lookup(idx, hot);

  // Buffer probes in a second session WITHOUT flushing: they are encoded
  // against the current (soon stale) partitioning.
  auto prober = engine.CreateSession();
  AggregateSink& sink = prober->sink();
  sink.Reset();
  std::vector<Key> probes;
  for (Key k = 0; k < 256; ++k) probes.push_back(k * (n / 256));
  uint64_t expected = prober->endpoint().SendLookupBatch(idx, probes, &sink);

  // Rebalance moves data and ranges; the buffered probes now target stale
  // owners and must be forwarded on delivery.
  LoadBalancerConfig cfg;
  cfg.algorithm = BalanceAlgorithm::kOneShot;
  cfg.trigger_cv = 0.05;
  cfg.min_total_accesses = 1;
  ASSERT_TRUE(engine.RebalanceObject(idx, cfg));

  prober->Wait(expected);
  EXPECT_EQ(sink.hits(), probes.size());  // nothing lost
  uint64_t forwarded = 0;
  for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    forwarded += engine.aeu(a).loop_stats().commands_forwarded;
  }
  EXPECT_GE(forwarded, 1u);
  engine.Stop();
}

TEST(AeuTest, QuiesceWaitsForRoutedFollowUps) {
  Engine engine(SimOpts());
  ObjectId col = engine.CreateColumn("src");
  ObjectId dst = engine.CreateColumn("dst");
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<Value> values(10000, 7);
  session->Append(col, values);

  routing::MaterializeParams params;
  params.scan.lo = 0;
  params.scan.hi = ~Value{0};
  params.scan.snapshot_ts = engine.oracle().ReadTs();
  params.dest_object = dst;
  AggregateSink& sink = session->sink();
  sink.Reset();
  uint64_t expected =
      session->endpoint().SendScanMaterialize(col, params, &sink);
  session->Wait(expected);
  engine.Quiesce();
  uint64_t dst_rows = 0;
  for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    dst_rows += engine.aeu(a).partition(dst)->tuple_count();
  }
  EXPECT_EQ(dst_rows, 10000u);
  engine.Stop();
}

TEST(AeuTest, LoopStatsTrackIterations) {
  Engine engine(SimOpts(1, 1));
  engine.CreateIndex("kv", 1u << 10, {.prefix_bits = 5, .key_bits = 10});
  engine.Start();
  uint64_t before = engine.aeu(0).loop_stats().iterations;
  engine.PumpAll();
  engine.PumpAll();
  EXPECT_EQ(engine.aeu(0).loop_stats().iterations, before + 2);
  engine.Stop();
}

}  // namespace
}  // namespace eris::core
