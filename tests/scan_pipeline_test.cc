// Tests for the vectorized segment-at-a-time scan pipeline: differential
// SIMD-vs-scalar kernel equivalence, zone-map maintenance across the
// column's structural operations, and the MVCC visible-prefix fast path.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "numa/memory_manager.h"
#include "storage/column_store.h"
#include "storage/mvcc.h"

namespace eris::storage {
namespace {

class ScanPipelineTest : public ::testing::Test {
 protected:
  numa::NodeMemoryManager mm_{0};
};

// ---------------------------------------------------------------------------
// Differential: dispatched kernels vs scalar reference
// ---------------------------------------------------------------------------

// Ranges that exercise boundary behavior of the unsigned-biased compares.
std::vector<std::pair<Value, Value>> InterestingRanges(Xoshiro256* rng) {
  std::vector<std::pair<Value, Value>> ranges = {
      {0, ~Value{0}},                 // full
      {0, 0},                         // single value at domain min
      {~Value{0}, ~Value{0}},         // single value at domain max
      {1, 0},                         // empty (lo > hi)
      {1ull << 63, ~Value{0}},        // upper half (sign-bit boundary)
      {0, (1ull << 63) - 1},          // lower half
      {(1ull << 63) - 2, (1ull << 63) + 2},  // straddles the sign bit
  };
  for (int i = 0; i < 8; ++i) {
    Value a = rng->Next();
    Value b = rng->Next();
    ranges.emplace_back(std::min(a, b), std::max(a, b));
  }
  return ranges;
}

TEST_F(ScanPipelineTest, KernelDifferentialRandomBlocks) {
  Xoshiro256 rng(17);
  // Sizes around the 4-lane vector width to exercise the scalar tail.
  for (size_t n : {0ul, 1ul, 3ul, 4ul, 5ul, 7ul, 64ul, 1000ul, 4097ul}) {
    std::vector<uint64_t> data(n);
    for (auto& v : data) v = rng.Next();
    // Mix in boundary values so compares hit them.
    if (n > 4) {
      data[0] = 0;
      data[1] = ~uint64_t{0};
      data[2] = 1ull << 63;
      data[3] = (1ull << 63) - 1;
    }
    for (auto [lo, hi] : InterestingRanges(&rng)) {
      EXPECT_EQ(simd::ScanSum(data.data(), n, lo, hi),
                simd::ScanSumScalar(data.data(), n, lo, hi))
          << "n=" << n << " lo=" << lo << " hi=" << hi;
      EXPECT_EQ(simd::ScanCount(data.data(), n, lo, hi),
                simd::ScanCountScalar(data.data(), n, lo, hi))
          << "n=" << n << " lo=" << lo << " hi=" << hi;
      uint64_t sum_d = 0;
      uint64_t cnt_d = 0;
      uint64_t sum_s = 0;
      uint64_t cnt_s = 0;
      simd::ScanSumCount(data.data(), n, lo, hi, &sum_d, &cnt_d);
      simd::ScanSumCountScalar(data.data(), n, lo, hi, &sum_s, &cnt_s);
      EXPECT_EQ(sum_d, sum_s);
      EXPECT_EQ(cnt_d, cnt_s);
      EXPECT_EQ(simd::SumAll(data.data(), n), simd::SumAllScalar(data.data(), n));
      // Collect: byte-identical tid sequences.
      std::vector<uint64_t> out_d(n);
      std::vector<uint64_t> out_s(n);
      uint64_t nd = simd::ScanCollect(data.data(), n, lo, hi, 12345, out_d.data());
      uint64_t ns = simd::ScanCollectScalar(data.data(), n, lo, hi, 12345,
                                            out_s.data());
      ASSERT_EQ(nd, ns);
      out_d.resize(nd);
      out_s.resize(ns);
      EXPECT_EQ(out_d, out_s);
    }
  }
}

TEST_F(ScanPipelineTest, ColumnDifferentialAcrossSegments) {
  // Column-level scans vs a scalar reference loop, over sizes that cover
  // segment boundaries and a partial tail segment.
  const uint64_t cap = ColumnStore::kSegmentCapacity;
  Xoshiro256 rng(23);
  for (uint64_t n : {cap - 1, cap, cap + 1, 2 * cap + 17}) {
    ColumnStore col(&mm_);
    std::vector<Value> ref;
    ref.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      Value v = rng.Next();
      ref.push_back(v);
      col.Append(v);
    }
    for (auto [lo, hi] : InterestingRanges(&rng)) {
      uint64_t want_sum = 0;
      uint64_t want_cnt = 0;
      std::vector<TupleId> want_tids;
      for (uint64_t i = 0; i < n; ++i) {
        if (ref[i] >= lo && ref[i] <= hi) {
          want_sum += ref[i];
          ++want_cnt;
          want_tids.push_back(i);
        }
      }
      EXPECT_EQ(col.ScanSum(lo, hi), want_sum);
      EXPECT_EQ(col.ScanCount(lo, hi), want_cnt);
      std::vector<TupleId> got_tids;
      EXPECT_EQ(col.ScanCollect(lo, hi, &got_tids), want_cnt);
      EXPECT_EQ(got_tids, want_tids);
      // Prefix variant at an unaligned limit.
      uint64_t limit = n / 3 + 1;
      uint64_t psum = 0;
      uint64_t pcnt = 0;
      col.ScanSumCountPrefix(lo, hi, limit, &psum, &pcnt);
      uint64_t want_psum = 0;
      uint64_t want_pcnt = 0;
      for (uint64_t i = 0; i < limit; ++i) {
        if (ref[i] >= lo && ref[i] <= hi) {
          want_psum += ref[i];
          ++want_pcnt;
        }
      }
      EXPECT_EQ(psum, want_psum);
      EXPECT_EQ(pcnt, want_pcnt);
    }
  }
}

// ---------------------------------------------------------------------------
// Zone maps
// ---------------------------------------------------------------------------

ZoneMap ExactZone(const ColumnStore& col, size_t s) {
  ZoneMap z;
  for (Value v : col.Segment(s)) {
    z.min = std::min(z.min, v);
    z.max = std::max(z.max, v);
  }
  return z;
}

void ExpectZonesExact(const ColumnStore& col) {
  for (size_t s = 0; s < col.num_segments(); ++s) {
    ZoneMap want = ExactZone(col, s);
    EXPECT_EQ(col.zone(s).min, want.min) << "segment " << s;
    EXPECT_EQ(col.zone(s).max, want.max) << "segment " << s;
  }
}

TEST_F(ScanPipelineTest, ZoneMapsTrackAppendAndBatch) {
  ColumnStore a(&mm_);
  ColumnStore b(&mm_);
  Xoshiro256 rng(5);
  std::vector<Value> values(ColumnStore::kSegmentCapacity * 2 + 999);
  for (auto& v : values) v = rng.Next();
  for (Value v : values) a.Append(v);
  b.AppendBatch(values);
  ExpectZonesExact(a);
  ExpectZonesExact(b);
  ASSERT_EQ(a.num_segments(), b.num_segments());
  for (size_t s = 0; s < a.num_segments(); ++s) {
    EXPECT_EQ(a.zone(s).min, b.zone(s).min);
    EXPECT_EQ(a.zone(s).max, b.zone(s).max);
  }
}

TEST_F(ScanPipelineTest, SetWidensZoneConservatively) {
  ColumnStore col(&mm_);
  for (Value v = 100; v < 200; ++v) col.Append(v);
  EXPECT_EQ(col.zone(0).min, 100u);
  EXPECT_EQ(col.zone(0).max, 199u);
  col.Set(0, 5);
  col.Set(1, 1000);
  EXPECT_EQ(col.zone(0).min, 5u);
  EXPECT_EQ(col.zone(0).max, 1000u);
  // Overwriting the extreme back does not shrink the zone (conservative),
  // but scans stay correct.
  col.Set(1, 150);
  EXPECT_EQ(col.zone(0).max, 1000u);
  EXPECT_EQ(col.ScanCount(0, ~Value{0}), 100u);
  EXPECT_EQ(col.ScanCount(500, 2000), 0u);  // zone says maybe; scan says no
}

TEST_F(ScanPipelineTest, ZoneSkipProducesCorrectResultsOnClusteredData) {
  ColumnStore col(&mm_);
  const uint64_t n = ColumnStore::kSegmentCapacity * 3 + 100;
  for (uint64_t i = 0; i < n; ++i) col.Append(i);  // strictly ascending
  // A range inside segment 1 only: segments 0, 2, 3 are zone-skipped.
  const Value lo = ColumnStore::kSegmentCapacity + 10;
  const Value hi = ColumnStore::kSegmentCapacity + 19;
  EXPECT_EQ(col.ScanCount(lo, hi), 10u);
  EXPECT_EQ(col.ScanSum(lo, hi), (lo + hi) * 10 / 2);
  std::vector<TupleId> tids;
  EXPECT_EQ(col.ScanCollect(lo, hi, &tids), 10u);
  for (TupleId t : tids) EXPECT_EQ(col.Get(t), t);
  // Range below every zone.
  EXPECT_EQ(col.ScanCount(~Value{0} - 5, ~Value{0}), 0u);
}

TEST_F(ScanPipelineTest, ZoneMapsSurviveSplitTailAligned) {
  ColumnStore col(&mm_);
  const uint64_t cap = ColumnStore::kSegmentCapacity;
  Xoshiro256 rng(11);
  for (uint64_t i = 0; i < cap * 3; ++i) col.Append(rng.Next());
  ColumnStore tail = col.SplitTail(cap);
  ASSERT_EQ(col.num_segments(), 1u);
  ASSERT_EQ(tail.num_segments(), 2u);
  ExpectZonesExact(col);
  ExpectZonesExact(tail);
}

TEST_F(ScanPipelineTest, ZoneMapsRebuiltOnSplitTailUnaligned) {
  ColumnStore col(&mm_);
  const uint64_t cap = ColumnStore::kSegmentCapacity;
  // Descending values: the truncated boundary segment's exact zone differs
  // from the pre-split one, so this catches a stale zone.
  const uint64_t n = cap + 500;
  for (uint64_t i = 0; i < n; ++i) col.Append(n - i);
  ColumnStore tail = col.SplitTail(cap / 2);
  ASSERT_EQ(col.size(), cap / 2);
  ASSERT_EQ(tail.size(), n - cap / 2);
  ExpectZonesExact(col);
  ExpectZonesExact(tail);
  // The kept segment's zone must have shrunk to the kept values.
  EXPECT_EQ(col.zone(0).min, n - cap / 2 + 1);
  EXPECT_EQ(col.zone(0).max, n);
}

TEST_F(ScanPipelineTest, ZoneMapsSurviveAbsorbRelinkAndCopy) {
  const uint64_t cap = ColumnStore::kSegmentCapacity;
  Xoshiro256 rng(13);
  {
    // Relink path: aligned receiver, same memory manager.
    ColumnStore a(&mm_);
    ColumnStore b(&mm_);
    for (uint64_t i = 0; i < cap; ++i) a.Append(rng.Next());
    for (uint64_t i = 0; i < cap + 77; ++i) b.Append(rng.Next());
    a.Absorb(std::move(b));
    ASSERT_EQ(a.num_segments(), 3u);
    ExpectZonesExact(a);
  }
  {
    // Copy path: unaligned receiver.
    ColumnStore a(&mm_);
    ColumnStore b(&mm_);
    a.Append(42);
    for (uint64_t i = 0; i < cap + 10; ++i) b.Append(rng.Next());
    a.Absorb(std::move(b));
    ASSERT_EQ(a.size(), cap + 11);
    ExpectZonesExact(a);
  }
}

TEST_F(ScanPipelineTest, ScanCollectAppendsAfterExistingContent) {
  ColumnStore col(&mm_);
  for (Value v = 0; v < 100; ++v) col.Append(v % 10);
  std::vector<TupleId> out = {777};  // pre-existing content must survive
  EXPECT_EQ(col.ScanCollect(3, 3, &out), 10u);
  ASSERT_EQ(out.size(), 11u);
  EXPECT_EQ(out[0], 777u);
  for (size_t i = 1; i < out.size(); ++i) EXPECT_EQ(col.Get(out[i]), 3u);
}

// ---------------------------------------------------------------------------
// MVCC visible-prefix fast path
// ---------------------------------------------------------------------------

TEST_F(ScanPipelineTest, MvccPrefixScanMatchesSlowReference) {
  MvccColumn col(&mm_);
  Xoshiro256 rng(31);
  const uint64_t n = ColumnStore::kSegmentCapacity + 333;
  std::vector<uint64_t> commit_ts(n);
  for (uint64_t i = 0; i < n; ++i) {
    commit_ts[i] = i + 1;
    col.Append(rng.Next(), commit_ts[i]);
  }
  // Snapshots in the middle: visible prefix < column size, no undo chains.
  for (uint64_t snap : {uint64_t{1}, n / 2, n}) {
    uint64_t visible = col.VisibleSize(snap);
    EXPECT_EQ(visible, snap);
    const Value lo = 1ull << 62;
    const Value hi = ~Value{0} - 3;
    uint64_t want_sum = 0;
    uint64_t want_rows = 0;
    for (TupleId tid = 0; tid < visible; ++tid) {
      Value v = col.Read(tid, snap);
      if (v >= lo && v <= hi) {
        want_sum += v;
        ++want_rows;
      }
    }
    uint64_t sum = 0;
    uint64_t rows = 0;
    col.ScanSumCount(snap, lo, hi, &sum, &rows);
    EXPECT_EQ(sum, want_sum);
    EXPECT_EQ(rows, want_rows);
    EXPECT_EQ(col.ScanSum(snap, lo, hi), want_sum);
  }
  // With undo chains the versioned path must still agree.
  uint64_t ts = n + 1;
  col.Update(0, 123, ts);
  col.Update(5, 456, ts + 1);
  uint64_t snap = n;  // before the updates
  uint64_t sum = 0;
  uint64_t rows = 0;
  col.ScanSumCount(snap, 0, ~Value{0}, &sum, &rows);
  uint64_t want_sum = 0;
  for (TupleId tid = 0; tid < n; ++tid) want_sum += col.Read(tid, snap);
  EXPECT_EQ(sum, want_sum);
  EXPECT_EQ(rows, n);
}

}  // namespace
}  // namespace eris::storage
