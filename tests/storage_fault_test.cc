// Storage-fault tolerance tests (DESIGN.md §15).
//
// Every durability syscall runs through the error-injecting I/O shim
// (src/durability/io.h), so these tests dial per-point probabilities to
// inject EIO, ENOSPC, short writes, fsync failure, and read-side bit flips
// — and assert the engine *never* aborts: the WAL seals fail-stop on a
// failed fsync (and is never written again), sealed AEUs are quarantined
// sticky, the engine degrades to read-only while reads keep serving, the
// scrubber quarantines corrupt cold snapshots, and the WAL frame parser
// survives arbitrary hostile bytes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <initializer_list>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/engine.h"
#include "durability/io.h"
#include "durability/manager.h"
#include "durability/wal.h"

namespace eris::core {
namespace {

namespace fs = std::filesystem;
using storage::ObjectId;

std::string MakeTempDir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                     "/eris-fault-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* dir = ::mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr) << "mkdtemp failed: " << std::strerror(errno);
  return dir != nullptr ? std::string(dir) : std::string();
}

struct TempDir {
  std::string path = MakeTempDir();
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);  // best effort
  }
};

/// Resets the global injector on scope exit so a failing assertion cannot
/// leak armed probabilities into later tests.
struct InjectorGuard {
  InjectorGuard() { fi::FaultInjector::Global().Reset(); }
  ~InjectorGuard() { fi::FaultInjector::Global().Reset(); }
};

EngineOptions DurableOptions(const std::string& dir, ExecutionMode mode) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = mode;
  opts.durability.enabled = true;
  opts.durability.dir = dir;
  return opts;
}

std::vector<uint8_t> Body(std::initializer_list<uint8_t> bytes) {
  return std::vector<uint8_t>(bytes);
}

// ---------------------------------------------------------------------------
// WalWriter fail-stop seal semantics
// ---------------------------------------------------------------------------

TEST(WalSeal, FsyncFailureSealsAndNeverWritesAgain) {
  InjectorGuard guard;
  TempDir tmp;
  std::string path = tmp.path + "/wal.log";
  durability::DurabilityOptions opts;
  durability::WalWriter w;
  ASSERT_TRUE(w.Open(path, opts, 1, 0).ok());

  // A clean group first, so the seal provably preserves the durable prefix.
  ASSERT_TRUE(w.Append(Body({1, 2, 3})).ok());
  ASSERT_TRUE(w.Commit().ok());
  uint64_t durable_size = fs::file_size(path);
  ASSERT_GT(durable_size, 0u);

  ASSERT_TRUE(w.Append(Body({4, 5})).ok());
  fi::FaultInjector::Global().SetFailProbability(fi::Point::kIoFsyncError,
                                                 1.0);
  Status st = w.Commit();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_EQ(st.detail(), StatusDetail::kWalSealed) << st.ToString();
  EXPECT_TRUE(w.sealed());
  EXPECT_EQ(w.stats().io_errors, 1u);
  EXPECT_EQ(w.buffered_bytes(), 0u);  // the doomed group was discarded

  // fsyncgate: even with the device "healthy" again, the writer must never
  // touch the file — no retry-and-assume-durable.
  fi::FaultInjector::Global().Reset();
  uint64_t size_after_seal = fs::file_size(path);
  EXPECT_FALSE(w.Append(Body({6})).ok());
  EXPECT_FALSE(w.Commit().ok());
  EXPECT_FALSE(w.Rotate().ok());
  EXPECT_EQ(w.Commit().detail(), StatusDetail::kWalSealed);
  EXPECT_EQ(fs::file_size(path), size_after_seal);
  EXPECT_EQ(w.stats().io_errors, 1u);  // one seal, not one per rejected call

  // After a failed fsync the group's durability is *unknown* — here the
  // injected fault failed only the fsync, so the write() survived and
  // replay delivers both groups. That is the allowed direction of the
  // invariant: the second group was never acknowledged, and
  // acked ⊆ recovered permits recovering unacknowledged work. What the
  // seal guarantees is that nothing was acked on the strength of the
  // failed fsync, and that the file can never diverge further.
  durability::WalReplayResult rr;
  uint64_t applied = 0;
  ASSERT_TRUE(durability::ReplayWal(
                  path, 0, [&](uint64_t, std::span<const uint8_t>) {
                    ++applied;
                  }, &rr)
                  .ok());
  EXPECT_EQ(applied, 2u);
  EXPECT_GE(rr.valid_end, durable_size);
  EXPECT_EQ(rr.valid_end, size_after_seal);
}

TEST(WalSeal, WriteErrorSeals) {
  InjectorGuard guard;
  TempDir tmp;
  durability::DurabilityOptions opts;
  durability::WalWriter w;
  ASSERT_TRUE(w.Open(tmp.path + "/wal.log", opts, 1, 0).ok());
  ASSERT_TRUE(w.Append(Body({1})).ok());
  fi::FaultInjector::Global().SetFailProbability(fi::Point::kIoWriteError,
                                                 1.0);
  Status st = w.Commit();
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_EQ(st.detail(), StatusDetail::kWalSealed);
  EXPECT_TRUE(w.sealed());
  EXPECT_NE(std::string(st.message()).find(std::strerror(EIO)),
            std::string::npos)
      << st.ToString();
}

TEST(WalSeal, EnospcSeals) {
  InjectorGuard guard;
  TempDir tmp;
  durability::DurabilityOptions opts;
  durability::WalWriter w;
  ASSERT_TRUE(w.Open(tmp.path + "/wal.log", opts, 1, 0).ok());
  ASSERT_TRUE(w.Append(Body({1})).ok());
  fi::FaultInjector::Global().SetFailProbability(fi::Point::kIoNoSpace, 1.0);
  Status st = w.Commit();
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_TRUE(w.sealed());
  // The errno detail survives into the typed status.
  EXPECT_NE(std::string(st.message()).find(std::strerror(ENOSPC)),
            std::string::npos)
      << st.ToString();
}

TEST(WalSeal, ShortWritesResumeTransparently) {
  InjectorGuard guard;
  TempDir tmp;
  std::string path = tmp.path + "/wal.log";
  durability::DurabilityOptions opts;
  durability::WalWriter w;
  ASSERT_TRUE(w.Open(path, opts, 1, 0).ok());
  // Every write() persists only half its chunk; the resume loop must stitch
  // the group together byte-exactly.
  fi::FaultInjector::Global().SetFailProbability(fi::Point::kIoShortWrite,
                                                 1.0);
  std::vector<std::vector<uint8_t>> bodies;
  for (uint8_t i = 0; i < 16; ++i) {
    bodies.push_back(std::vector<uint8_t>(32 + i, i));
    ASSERT_TRUE(w.Append(bodies.back()).ok());
  }
  uint64_t committed = 0;
  ASSERT_TRUE(w.Commit(&committed).ok());
  EXPECT_EQ(committed, 16u);
  EXPECT_FALSE(w.sealed());
  fi::FaultInjector::Global().Reset();

  size_t next = 0;
  durability::WalReplayResult rr;
  ASSERT_TRUE(durability::ReplayWal(
                  path, 0,
                  [&](uint64_t, std::span<const uint8_t> body) {
                    ASSERT_LT(next, bodies.size());
                    EXPECT_TRUE(std::equal(body.begin(), body.end(),
                                           bodies[next].begin(),
                                           bodies[next].end()));
                    ++next;
                  },
                  &rr)
                  .ok());
  EXPECT_EQ(next, bodies.size());
  EXPECT_FALSE(rr.torn);
}

// ---------------------------------------------------------------------------
// Engine-level: seal -> quarantine -> degraded read-only
// ---------------------------------------------------------------------------

TEST(EngineFault, SealedWalQuarantinesAeuAndDegradesEngine) {
  InjectorGuard guard;
  TempDir tmp;
  EngineOptions opts = DurableOptions(tmp.path, ExecutionMode::kThreads);
  Engine engine(opts);
  storage::Key domain_hi = storage::Key{1} << 16;
  ObjectId idx = engine.CreateIndex("kv", domain_hi,
                                    {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();
  session->set_op_timeout_ns(2'000'000'000);  // bounded, generous

  // Seed both AEUs with clean durable data.
  storage::Key low = 16;                // AEU 0's range
  storage::Key high = domain_hi - 16;   // AEU 1's range
  std::vector<routing::KeyValue> seed{{low, 1}, {high, 2}};
  ASSERT_TRUE(session->SubmitUpsert(idx, seed).ok());

  // Every fsync now fails: the next write's group commit seals that AEU's
  // log. The write must complete with a typed status — no abort, no hang.
  fi::FaultInjector::Global().SetFailProbability(fi::Point::kIoFsyncError,
                                                 1.0);
  std::vector<routing::KeyValue> doomed{{low + 1, 3}};
  Engine::Session::SubmitOutcome outcome;
  Status st = session->SubmitInsert(idx, doomed, &outcome);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsUnavailable() || st.IsDeadlineExceeded()) << st.ToString();
  if (st.IsUnavailable() && outcome.wal_sealed > 0) {
    EXPECT_EQ(st.detail(), StatusDetail::kWalSealed);
  }

  // The fail-stop propagates: AEU 0 sealed + quarantined, engine degraded.
  for (int i = 0; i < 500 && !engine.degraded(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(engine.degraded());
  ASSERT_TRUE(engine.WalSealed(0));
  EXPECT_NE(engine.degraded_reason().find("WAL sealed"), std::string::npos)
      << engine.degraded_reason();
  EXPECT_TRUE(engine.router().IsAeuStalled(0));
  fi::FaultInjector::Global().Reset();

  // Sticky quarantine: the sealed AEU's loop keeps running (heartbeat
  // advances), but no number of health passes may unseal it.
  for (int i = 0; i < 10; ++i) {
    engine.CheckAeuHealth();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_TRUE(engine.router().IsAeuStalled(0)) << "pass " << i;
    EXPECT_TRUE(engine.watchdog().stalled(0)) << "pass " << i;
  }

  // Degraded read-only: writes fail fast (typed, before admission) ...
  uint64_t rejections_before = engine.admission().rejections();
  std::vector<routing::KeyValue> blocked{{high - 1, 4}};
  st = session->SubmitInsert(idx, blocked);
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_EQ(st.detail(), StatusDetail::kReadOnly) << st.ToString();
  EXPECT_GT(engine.admission().rejections(), rejections_before);

  // ... while reads on the healthy AEU keep serving.
  std::vector<storage::Key> high_keys{high};
  Engine::Session::SubmitOutcome read_out;
  st = session->SubmitLookup(idx, high_keys, &read_out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(read_out.hits, 1u);

  // Reads routed at the sealed AEU fail fast too (typed, not hanging).
  std::vector<storage::Key> low_keys{low};
  st = session->SubmitLookup(idx, low_keys);
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();

  // Snapshots are refused while a WAL is sealed: the in-memory state is
  // ahead of the log.
  st = engine.Snapshot();
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_EQ(st.detail(), StatusDetail::kWalSealed);

  engine.Stop();  // must not abort while a sealed WAL is attached
}

TEST(EngineFault, SnapshotEnospcDegradesAndHeals) {
  InjectorGuard guard;
  TempDir tmp;
  Engine engine(DurableOptions(tmp.path, ExecutionMode::kSimulated));
  storage::Key domain_hi = storage::Key{1} << 16;
  ObjectId idx = engine.CreateIndex("kv", domain_hi,
                                    {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<routing::KeyValue> kvs{{5, 50}, {60000, 60}};
  ASSERT_TRUE(session->SubmitUpsert(idx, kvs).ok());
  ASSERT_TRUE(engine.Snapshot().ok());  // clean baseline, WALs rotated

  // Disk full during the next snapshot: the engine degrades but must not
  // seal any WAL (no residue was pending) and must not abort.
  fi::FaultInjector::Global().SetFailProbability(fi::Point::kIoNoSpace, 1.0);
  Status st = engine.Snapshot();
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_NE(std::string(st.message()).find(std::strerror(ENOSPC)),
            std::string::npos)
      << st.ToString();
  EXPECT_TRUE(engine.degraded());
  EXPECT_FALSE(engine.AnyWalSealed());

  // Writes fail fast; reads serve.
  std::vector<routing::KeyValue> more{{6, 60}};
  st = session->SubmitInsert(idx, more);
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_EQ(st.detail(), StatusDetail::kReadOnly);
  std::vector<storage::Key> keys{5};
  EXPECT_TRUE(session->SubmitLookup(idx, keys).ok());

  // Space freed: a clean snapshot heals the ENOSPC degradation (no WAL
  // sealed, so the engine is fully writable again).
  fi::FaultInjector::Global().Reset();
  ASSERT_TRUE(engine.Snapshot().ok());
  EXPECT_FALSE(engine.degraded());
  EXPECT_TRUE(session->SubmitInsert(idx, more).ok());
  engine.Stop();
}

// ---------------------------------------------------------------------------
// Scrubber: cold-state CRC verification and quarantine
// ---------------------------------------------------------------------------

/// Flips one byte near the middle of the first part-*.bin inside `dir`.
void CorruptOnePartFile(const std::string& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("part-", 0) != 0) continue;
    uint64_t size = fs::file_size(entry.path());
    ASSERT_GT(size, 16u);
    std::FILE* f = std::fopen(entry.path().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(size / 2), SEEK_SET), 0);
    uint8_t b = 0;
    ASSERT_EQ(std::fread(&b, 1, 1, f), 1u);
    b ^= 0x10;
    ASSERT_EQ(std::fseek(f, static_cast<long>(size / 2), SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&b, 1, 1, f), 1u);
    std::fclose(f);
    return;
  }
  FAIL() << "no part file found in " << dir;
}

TEST(Scrubber, QuarantinesCorruptColdSnapshotKeepsLiveOne) {
  InjectorGuard guard;
  TempDir tmp;
  storage::Key domain_hi = storage::Key{1} << 16;
  {
    Engine engine(DurableOptions(tmp.path, ExecutionMode::kSimulated));
    ObjectId idx = engine.CreateIndex("kv", domain_hi,
                                      {.prefix_bits = 8, .key_bits = 16});
    engine.Start();
    auto session = engine.CreateSession();
    std::vector<routing::KeyValue> kvs{{7, 70}, {50000, 55}};
    ASSERT_TRUE(session->SubmitUpsert(idx, kvs).ok());
    ASSERT_TRUE(engine.Snapshot().ok());  // snap-1, CURRENT -> 1
    engine.Stop();
  }
  // Fake a cold (non-live) snapshot and rot one of its partition files.
  fs::copy(tmp.path + "/snap-1", tmp.path + "/snap-7",
           fs::copy_options::recursive);
  CorruptOnePartFile(tmp.path + "/snap-7");

  Engine engine(DurableOptions(tmp.path, ExecutionMode::kSimulated));
  engine.CreateIndex("kv", domain_hi, {.prefix_bits = 8, .key_bits = 16});
  Engine::ScrubReport report;
  Status st = engine.ScrubStorage(&report);
  EXPECT_FALSE(st.ok()) << "scrub must surface the corruption";
  EXPECT_EQ(report.snapshots_checked, 2u);
  EXPECT_GE(report.corrupt_files, 1u);
  EXPECT_EQ(report.snapshots_quarantined, 1u);
  EXPECT_FALSE(fs::exists(tmp.path + "/snap-7"));
  EXPECT_TRUE(fs::exists(tmp.path + "/quarantine-snap-7"));
  EXPECT_TRUE(fs::exists(tmp.path + "/snap-1"));

  // Rot the *live* snapshot: reported, but never quarantined (it is the
  // only full copy recovery has).
  CorruptOnePartFile(tmp.path + "/snap-1");
  st = engine.ScrubStorage(&report);
  EXPECT_FALSE(st.ok());
  EXPECT_GE(report.corrupt_files, 1u);
  EXPECT_EQ(report.snapshots_quarantined, 0u);
  EXPECT_TRUE(fs::exists(tmp.path + "/snap-1"));

  // Recovery against the rotted live snapshot fails typed — no crash.
  ObjectId idx2 = 0;
  {
    Engine fresh(DurableOptions(tmp.path, ExecutionMode::kSimulated));
    idx2 = fresh.CreateIndex("kv", domain_hi,
                             {.prefix_bits = 8, .key_bits = 16});
    (void)idx2;
    Status rec = fresh.Recover();
    EXPECT_FALSE(rec.ok());
    EXPECT_TRUE(rec.IsIoError()) << rec.ToString();
    EXPECT_NE(std::string(rec.message()).find("CRC"), std::string::npos)
        << rec.ToString();
  }
}

TEST(Scrubber, InjectedReadFlipIsCaughtTyped) {
  InjectorGuard guard;
  TempDir tmp;
  storage::Key domain_hi = storage::Key{1} << 16;
  {
    Engine engine(DurableOptions(tmp.path, ExecutionMode::kSimulated));
    ObjectId idx = engine.CreateIndex("kv", domain_hi,
                                      {.prefix_bits = 8, .key_bits = 16});
    engine.Start();
    auto session = engine.CreateSession();
    std::vector<routing::KeyValue> kvs{{9, 90}};
    ASSERT_TRUE(session->SubmitUpsert(idx, kvs).ok());
    ASSERT_TRUE(engine.Snapshot().ok());
    engine.Stop();
  }
  // Every read flips one byte: some CRC layer (CURRENT, meta, partition)
  // must catch it and recovery must fail typed, never crash or restore
  // silently corrupted state.
  fi::FaultInjector::Global().SetFailProbability(fi::Point::kIoReadFlip, 1.0);
  Engine engine(DurableOptions(tmp.path, ExecutionMode::kSimulated));
  engine.CreateIndex("kv", domain_hi, {.prefix_bits = 8, .key_bits = 16});
  Status st = engine.Recover();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
}

// ---------------------------------------------------------------------------
// WAL frame-parser fuzz: hostile bytes must never crash, over-allocate, or
// surface an uncommitted group.
// ---------------------------------------------------------------------------

uint32_t FuzzFrameCrc(const durability::WalFrame& f,
                      std::span<const uint8_t> body) {
  uint32_t c = durability::Crc32(&f.lsn, sizeof(f.lsn));
  c = durability::Crc32(&f.body_bytes, sizeof(f.body_bytes), c);
  c = durability::Crc32(&f.flags, sizeof(f.flags), c);
  if (!body.empty()) c = durability::Crc32(body.data(), body.size(), c);
  return c;
}

void AppendFrame(std::vector<uint8_t>* out, uint64_t lsn,
                 std::span<const uint8_t> body, uint32_t flags,
                 bool valid_crc = true) {
  durability::WalFrame f;
  f.lsn = lsn;
  f.body_bytes = static_cast<uint32_t>(body.size());
  f.flags = flags;
  f.crc = FuzzFrameCrc(f, body);
  if (!valid_crc) f.crc ^= 0xA5A5A5A5u;
  const auto* p = reinterpret_cast<const uint8_t*>(&f);
  out->insert(out->end(), p, p + sizeof f);
  out->insert(out->end(), body.begin(), body.end());
  out->resize(out->size() + (8 - body.size() % 8) % 8, 0);  // pad to 8
}

void WriteBytes(const std::string& path, std::span<const uint8_t> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

/// Replays `bytes` as a log file; asserts the invariants every parse must
/// hold, and returns the result for case-specific checks.
durability::WalReplayResult FuzzReplay(const std::string& dir,
                                       std::span<const uint8_t> bytes,
                                       uint64_t* applied_out = nullptr) {
  std::string path = dir + "/fuzz.log";
  WriteBytes(path, bytes);
  durability::WalReplayResult rr;
  uint64_t applied = 0;
  uint64_t applied_bytes = 0;
  Status st = durability::ReplayWal(
      path, 0,
      [&](uint64_t, std::span<const uint8_t> body) {
        ++applied;
        applied_bytes += body.size();
      },
      &rr);
  EXPECT_TRUE(st.ok()) << st.ToString();  // hostile bytes are torn, not EIO
  EXPECT_LE(rr.valid_end, bytes.size());
  EXPECT_EQ(applied, rr.records_applied);
  // No over-allocation: every delivered body must lie inside the file.
  EXPECT_LE(applied_bytes, bytes.size());
  if (applied_out != nullptr) *applied_out = applied;
  return rr;
}

TEST(WalFuzz, RandomBytesNeverCrash) {
  TempDir tmp;
  std::mt19937_64 rng(0xE1215);
  for (int round = 0; round < 64; ++round) {
    size_t size = static_cast<size_t>(rng() % 4096);
    std::vector<uint8_t> bytes(size);
    for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng());
    FuzzReplay(tmp.path, bytes);
  }
}

TEST(WalFuzz, ValidFramesWithRandomTailMutations) {
  TempDir tmp;
  // A well-formed two-group log whose bytes get point mutations: parsing
  // must stay crash-free and only ever deliver CRC-clean committed groups.
  std::vector<uint8_t> good;
  std::vector<uint8_t> body1(40, 0x11);
  std::vector<uint8_t> body2(64, 0x22);
  AppendFrame(&good, 1, body1, 0);
  AppendFrame(&good, 2, {}, durability::kWalFlagCommit);
  AppendFrame(&good, 3, body2, 0);
  AppendFrame(&good, 4, {}, durability::kWalFlagCommit);
  uint64_t applied = 0;
  durability::WalReplayResult rr = FuzzReplay(tmp.path, good, &applied);
  ASSERT_FALSE(rr.torn);
  ASSERT_EQ(applied, 2u);

  std::mt19937_64 rng(0xBADF00D);
  for (int round = 0; round < 256; ++round) {
    std::vector<uint8_t> mutated = good;
    mutated[rng() % mutated.size()] ^=
        static_cast<uint8_t>(1u << (rng() % 8));
    FuzzReplay(tmp.path, mutated);
  }
}

TEST(WalFuzz, OversizedBodyBytesIsTornNotAllocated) {
  TempDir tmp;
  // body_bytes near UINT32_MAX with a tiny actual file: the parser must
  // reject on bounds, not allocate or read 4 GiB.
  for (uint32_t huge : {0xFFFFFFFFu, 0xFFFFFFF0u, 0x80000000u, 0x7FFFFFFFu}) {
    std::vector<uint8_t> bytes;
    durability::WalFrame f;
    f.lsn = 1;
    f.body_bytes = huge;
    f.flags = 0;
    f.crc = FuzzFrameCrc(f, {});
    const auto* p = reinterpret_cast<const uint8_t*>(&f);
    bytes.insert(bytes.end(), p, p + sizeof f);
    bytes.resize(bytes.size() + 64, 0xCC);  // far less than body_bytes
    uint64_t applied = 0;
    durability::WalReplayResult rr = FuzzReplay(tmp.path, bytes, &applied);
    EXPECT_TRUE(rr.torn);
    EXPECT_EQ(applied, 0u);
    EXPECT_EQ(rr.valid_end, 0u);
  }
}

TEST(WalFuzz, BadMagicStopsParse) {
  TempDir tmp;
  std::vector<uint8_t> bytes;
  std::vector<uint8_t> body(16, 0x33);
  AppendFrame(&bytes, 1, body, 0);
  AppendFrame(&bytes, 2, {}, durability::kWalFlagCommit);
  size_t second_group = bytes.size();
  AppendFrame(&bytes, 3, body, 0);
  // Smash the third frame's magic.
  bytes[second_group] ^= 0xFF;
  uint64_t applied = 0;
  durability::WalReplayResult rr = FuzzReplay(tmp.path, bytes, &applied);
  EXPECT_TRUE(rr.torn);
  EXPECT_EQ(applied, 1u);  // the committed first group survives
  EXPECT_EQ(rr.valid_end, second_group);
}

TEST(WalFuzz, MidFrameTruncationAtEveryOffset) {
  TempDir tmp;
  std::vector<uint8_t> bytes;
  std::vector<uint8_t> body(24, 0x44);
  AppendFrame(&bytes, 1, body, 0);
  AppendFrame(&bytes, 2, {}, durability::kWalFlagCommit);
  size_t committed_end = bytes.size();
  AppendFrame(&bytes, 3, body, 0);
  AppendFrame(&bytes, 4, {}, durability::kWalFlagCommit);
  // Chop inside the second group at every offset: exactly group 1 survives.
  for (size_t cut = committed_end; cut < bytes.size(); ++cut) {
    uint64_t applied = 0;
    durability::WalReplayResult rr = FuzzReplay(
        tmp.path, std::span<const uint8_t>(bytes.data(), cut), &applied);
    EXPECT_EQ(applied, 1u) << "cut at " << cut;
    EXPECT_EQ(rr.valid_end, committed_end) << "cut at " << cut;
    EXPECT_TRUE(rr.torn || cut == committed_end) << "cut at " << cut;
  }
}

TEST(WalFuzz, UncommittedGroupNeverApplied) {
  TempDir tmp;
  // CRC-clean records with no commit frame: nothing may be delivered even
  // though every frame individually checks out.
  std::vector<uint8_t> bytes;
  std::vector<uint8_t> body(32, 0x55);
  AppendFrame(&bytes, 1, body, 0);
  AppendFrame(&bytes, 2, body, 0);
  uint64_t applied = 0;
  durability::WalReplayResult rr = FuzzReplay(tmp.path, bytes, &applied);
  EXPECT_EQ(applied, 0u);
  EXPECT_TRUE(rr.torn);
  EXPECT_EQ(rr.valid_end, 0u);

  // A commit frame whose CRC is wrong does not seal the group either.
  AppendFrame(&bytes, 3, {}, durability::kWalFlagCommit,
              /*valid_crc=*/false);
  rr = FuzzReplay(tmp.path, bytes, &applied);
  EXPECT_EQ(applied, 0u);
  EXPECT_TRUE(rr.torn);
}

}  // namespace
}  // namespace eris::core
