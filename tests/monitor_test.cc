// Tests for the monitoring component.
#include <gtest/gtest.h>

#include <thread>

#include "core/monitor.h"

namespace eris::core {
namespace {

TEST(MonitorTest, RecordAndSnapshot) {
  Monitor monitor(4, 2);
  monitor.RecordAccess(1, 0, 100, 5000.0);
  monitor.RecordAccess(1, 0, 50, 2500.0);
  monitor.RecordSize(1, 0, 1234, 98765);

  auto snap = monitor.Snapshot(0);
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[1].accesses, 150u);
  EXPECT_DOUBLE_EQ(snap[1].exec_time_ns, 7500.0);
  EXPECT_EQ(snap[1].tuples, 1234u);
  EXPECT_EQ(snap[1].bytes, 98765u);
  EXPECT_EQ(snap[0].accesses, 0u);
  EXPECT_NEAR(snap[1].MeanExecNs(), 50.0, 0.01);
}

TEST(MonitorTest, SnapshotAndResetClearsFrequenciesKeepsSizes) {
  Monitor monitor(2, 1);
  monitor.RecordAccess(0, 0, 10, 100.0);
  monitor.RecordSize(0, 0, 42, 84);
  auto first = monitor.SnapshotAndReset(0);
  EXPECT_EQ(first[0].accesses, 10u);
  auto second = monitor.SnapshotAndReset(0);
  EXPECT_EQ(second[0].accesses, 0u);       // frequency resets per period
  EXPECT_EQ(second[0].tuples, 42u);        // size is a level metric
  EXPECT_EQ(second[0].bytes, 84u);
}

TEST(MonitorTest, ObjectsAreIndependent) {
  Monitor monitor(2, 3);
  monitor.RecordAccess(0, 1, 7, 70.0);
  EXPECT_EQ(monitor.Snapshot(0)[0].accesses, 0u);
  EXPECT_EQ(monitor.Snapshot(1)[0].accesses, 7u);
  EXPECT_EQ(monitor.Snapshot(2)[0].accesses, 0u);
}

TEST(MonitorTest, MeanExecOfIdlePartitionIsZero) {
  Monitor monitor(1, 1);
  EXPECT_DOUBLE_EQ(monitor.Snapshot(0)[0].MeanExecNs(), 0.0);
}

TEST(MonitorTest, ConcurrentRecordersDoNotLoseCounts) {
  Monitor monitor(4, 1);
  std::vector<std::thread> threads;
  for (uint32_t aeu = 0; aeu < 4; ++aeu) {
    threads.emplace_back([&monitor, aeu] {
      for (int i = 0; i < 10000; ++i) monitor.RecordAccess(aeu, 0, 1, 2.0);
    });
  }
  for (auto& t : threads) t.join();
  auto snap = monitor.Snapshot(0);
  for (uint32_t aeu = 0; aeu < 4; ++aeu) {
    EXPECT_EQ(snap[aeu].accesses, 10000u);
  }
}

}  // namespace
}  // namespace eris::core
