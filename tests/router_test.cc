// Tests for the routing layer: endpoints, unicast/multicast, flushing, and
// command encoding.
#include <gtest/gtest.h>

#include <atomic>
#include <map>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "numa/memory_manager.h"
#include "routing/router.h"

namespace eris::routing {
namespace {

using storage::Key;
using storage::kMaxKey;

storage::DataObjectDesc IndexDesc(storage::ObjectId id) {
  return storage::DataObjectDesc::Index(id, "idx");
}
storage::DataObjectDesc ColumnDesc(storage::ObjectId id) {
  return storage::DataObjectDesc::Column(id, "col");
}

/// Drains a mailbox into decoded command copies.
struct DrainedCommand {
  CommandHeader header;
  std::vector<uint8_t> payload;
};
std::vector<DrainedCommand> DrainMailbox(IncomingBufferPair& mailbox) {
  std::vector<DrainedCommand> out;
  mailbox.Drain([&](std::span<const uint8_t> region) {
    size_t pos = 0;
    while (pos + sizeof(CommandHeader) <= region.size()) {
      CommandView v = DecodeCommand(region.data() + pos);
      pos += v.record_bytes();
      out.push_back({v.header,
                     {v.payload, v.payload + v.header.payload_bytes}});
    }
  });
  return out;
}

TEST(EncodeDecodeTest, RoundTrip) {
  CommandHeader h;
  h.type = CommandType::kLookupBatch;
  h.object = 3;
  h.source = 7;
  std::vector<uint8_t> payload{1, 2, 3, 4, 5};
  std::vector<uint8_t> buf;
  EncodeCommand(h, payload, &buf);
  EXPECT_EQ(buf.size() % 8, 0u);
  CommandView v = DecodeCommand(buf.data());
  EXPECT_EQ(v.header.type, CommandType::kLookupBatch);
  EXPECT_EQ(v.header.object, 3);
  EXPECT_EQ(v.header.source, 7u);
  EXPECT_EQ(v.header.payload_bytes, 5u);
  EXPECT_EQ(v.payload[4], 5);
  EXPECT_EQ(v.record_bytes(), sizeof(CommandHeader) + 8);
}

TEST(EncodeDecodeTest, SequentialRecordsParse) {
  std::vector<uint8_t> buf;
  for (uint8_t i = 0; i < 10; ++i) {
    CommandHeader h;
    h.type = CommandType::kFence;
    h.object = i;
    std::vector<uint8_t> payload(i);  // varying sizes incl. 0
    EncodeCommand(h, payload, &buf);
  }
  size_t pos = 0;
  int count = 0;
  while (pos < buf.size()) {
    CommandView v = DecodeCommand(buf.data() + pos);
    EXPECT_EQ(v.header.object, count);
    pos += v.record_bytes();
    ++count;
  }
  EXPECT_EQ(count, 10);
}

class RouterTest : public ::testing::Test {
 protected:
  RouterTest() : router_({0, 0, 1, 1}, MakeConfig()) {
    router_.RegisterRangeObject(IndexDesc(0), 1u << 20);
  }
  static RouterConfig MakeConfig() {
    RouterConfig cfg;
    cfg.flush_threshold_bytes = 1 << 14;
    return cfg;
  }
  Router router_;
};

TEST_F(RouterTest, LookupSplitsByOwner) {
  Endpoint ep(&router_, kInvalidAeu, 0);
  // 4 AEUs over [0, 1M): ranges of 256K each.
  std::vector<Key> keys{0, 300000, 600000, 900000, 1, 2};
  size_t units = ep.SendLookupBatch(0, keys, nullptr);
  EXPECT_EQ(units, keys.size());
  ep.FlushAll();
  std::map<AeuId, size_t> per_target;
  for (AeuId a = 0; a < 4; ++a) {
    for (const auto& cmd : DrainMailbox(router_.mailbox(a))) {
      EXPECT_EQ(cmd.header.type, CommandType::kLookupBatch);
      per_target[a] += cmd.payload.size() / sizeof(Key);
    }
  }
  EXPECT_EQ(per_target[0], 3u);  // keys 0, 1, 2
  EXPECT_EQ(per_target[1], 1u);
  EXPECT_EQ(per_target[2], 1u);
  EXPECT_EQ(per_target[3], 1u);
}

TEST_F(RouterTest, BatchesSplitAtMaxElements) {
  RouterConfig cfg;
  cfg.max_batch_elements = 10;
  Router router({0}, cfg);
  router.RegisterRangeObject(IndexDesc(0), 1000);
  Endpoint ep(&router, kInvalidAeu, 0);
  std::vector<Key> keys(35, 5);
  ep.SendLookupBatch(0, keys, nullptr);
  ep.FlushAll();
  auto cmds = DrainMailbox(router.mailbox(0));
  EXPECT_EQ(cmds.size(), 4u);  // 10+10+10+5
}

TEST_F(RouterTest, ThresholdTriggersEagerFlush) {
  Endpoint ep(&router_, kInvalidAeu, 0);
  // Push enough commands at one target to cross the 16 KiB threshold.
  std::vector<Key> keys(4096, 1);  // all owned by AEU 0
  ep.SendLookupBatch(0, keys, nullptr);
  // Data must already be in the mailbox without an explicit FlushAll.
  EXPECT_GT(router_.mailbox(0).PendingBytes(), 0u);
}

TEST_F(RouterTest, MulticastScanReachesAllOwners) {
  Router router({0, 1, 2}, MakeConfig());
  router.RegisterPhysicalObject(ColumnDesc(0));
  Endpoint ep(&router, kInvalidAeu, 0);
  ScanParams params;
  params.lo = 5;
  size_t units = ep.SendScanColumn(0, params, nullptr);
  EXPECT_EQ(units, 3u);
  ep.FlushAll();
  for (AeuId a = 0; a < 3; ++a) {
    auto cmds = DrainMailbox(router.mailbox(a));
    ASSERT_EQ(cmds.size(), 1u) << "aeu " << a;
    EXPECT_EQ(cmds[0].header.type, CommandType::kScanColumn);
    ScanParams p;
    std::memcpy(&p, cmds[0].payload.data(), sizeof(p));
    EXPECT_EQ(p.lo, 5u);
  }
}

TEST_F(RouterTest, IndexRangeScanTargetsOwnersOnly) {
  Endpoint ep(&router_, kInvalidAeu, 0);
  // [0, 300000) covers AEUs 0 and 1 only.
  size_t units = ep.SendScanIndexRange(0, 0, 300000, {}, nullptr);
  EXPECT_EQ(units, 2u);
  ep.FlushAll();
  EXPECT_GT(router_.mailbox(0).PendingBytes(), 0u);
  EXPECT_GT(router_.mailbox(1).PendingBytes(), 0u);
  EXPECT_EQ(router_.mailbox(2).PendingBytes(), 0u);
  EXPECT_EQ(router_.mailbox(3).PendingBytes(), 0u);
}

TEST_F(RouterTest, AppendRoundRobinsOverOwners) {
  Router router({0, 1}, MakeConfig());
  router.RegisterPhysicalObject(ColumnDesc(0));
  Endpoint ep(&router, kInvalidAeu, 0);
  RouterConfig cfg = router.config();
  std::vector<storage::Value> values(cfg.max_batch_elements * 4, 1);
  ep.SendAppendBatch(0, values, nullptr);
  ep.FlushAll();
  EXPECT_EQ(DrainMailbox(router.mailbox(0)).size(), 2u);
  EXPECT_EQ(DrainMailbox(router.mailbox(1)).size(), 2u);
}

TEST_F(RouterTest, FlushRetriesWhenMailboxFull) {
  RouterConfig cfg;
  cfg.incoming_capacity_bytes = 256;
  cfg.flush_threshold_bytes = 64;
  Router router({0}, cfg);
  router.RegisterRangeObject(IndexDesc(0), 1000);
  Endpoint ep(&router, kInvalidAeu, 0);
  // Overrun the tiny mailbox.
  for (int i = 0; i < 100; ++i) {
    std::vector<Key> keys(4, 1);
    ep.SendLookupBatch(0, keys, nullptr);
  }
  EXPECT_FALSE(ep.FlushAll());
  EXPECT_TRUE(ep.HasPending());
  // Failed deliveries are recorded per target in the flush-retry histogram.
  EXPECT_GT(ep.flush_retry_histogram().total_count(), 0u);
  // Draining unblocks delivery.
  while (ep.HasPending()) {
    router.mailbox(0).Drain([](std::span<const uint8_t>) {});
    ep.FlushAll();
  }
  EXPECT_FALSE(ep.HasPending());
}

TEST_F(RouterTest, StatsCountRoutedCommands) {
  Endpoint ep(&router_, 2, 1);
  std::vector<Key> keys{1, 300000};
  ep.SendLookupBatch(0, keys, nullptr);
  EXPECT_EQ(ep.stats().commands_routed, 2u);
  EXPECT_EQ(ep.source(), 2u);
}

TEST_F(RouterTest, SimAccountingChargesRoutes) {
  // Router over 2 nodes with a resource tracker: a flush from node 0 to an
  // AEU on node 1 must add link traffic.
  numa::Topology topo = numa::Topology::Flat(2, 1);
  sim::ResourceUsage usage(topo, 2);
  Router router({0, 1}, MakeConfig());
  router.set_resource_usage(&usage);
  router.RegisterRangeObject(IndexDesc(0), 1000);
  Endpoint ep(&router, 0, 0);
  std::vector<Key> keys{900};  // owned by AEU 1 on node 1
  ep.SendLookupBatch(0, keys, nullptr);
  ep.FlushAll();
  EXPECT_GT(usage.TotalLinkBytes(), 0u);
}

#if defined(ERIS_FAULT_INJECTION) && ERIS_FAULT_INJECTION
TEST_F(RouterTest, SteadyStateSendsAreAllocationFree) {
  // The endpoint's scratch state lives in a node-local arena that only
  // grows through the kEndpointScratchAlloc injection point. After a
  // warm-up send sized like the steady-state traffic, further sends must
  // never visit the point: the lookup fast path is allocation-free.
  numa::NodeMemoryManager mm(0);
  Endpoint ep(&router_, kInvalidAeu, 0, &mm);
  std::atomic<uint64_t> grows{0};
  fi::FaultInjector::Global().Reset();
  fi::FaultInjector::Global().SetHook(
      fi::Point::kEndpointScratchAlloc,
      [&] { grows.fetch_add(1, std::memory_order_relaxed); });

  auto drain_all = [&] {
    for (AeuId a = 0; a < 4; ++a) {
      router_.mailbox(a).Drain([](std::span<const uint8_t>) {});
    }
  };
  Xoshiro256 rng(3);
  std::vector<Key> keys(512);
  for (Key& k : keys) k = rng.NextBounded(1u << 20);
  // Warm-up: grows the scratch arena to steady-state capacity.
  ep.SendLookupBatch(0, keys, nullptr);
  ep.SendEraseBatch(0, keys, nullptr);
  ep.FlushAll();
  drain_all();
  const uint64_t warmup_grows = grows.load();
  EXPECT_GT(warmup_grows, 0u);  // the warm-up itself does allocate

  for (int round = 0; round < 50; ++round) {
    for (Key& k : keys) k = rng.NextBounded(1u << 20);
    ep.SendLookupBatch(0, keys, nullptr);
    ep.SendEraseBatch(0, keys, nullptr);
    ep.FlushAll();
    drain_all();
  }
  EXPECT_EQ(grows.load(), warmup_grows)
      << "steady-state SendLookupBatch/SendEraseBatch grew the scratch arena";
  fi::FaultInjector::Global().Reset();
}
#endif  // ERIS_FAULT_INJECTION

}  // namespace
}  // namespace eris::routing
