// Tests for the CSB+-tree used by range partition tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "storage/csb_tree.h"

namespace eris::storage {
namespace {

CsbTree Build(const std::vector<uint64_t>& keys) {
  std::vector<uint32_t> payloads(keys.size());
  for (size_t i = 0; i < keys.size(); ++i)
    payloads[i] = static_cast<uint32_t>(i * 10);
  return CsbTree(keys, payloads);
}

TEST(CsbTreeTest, EmptyTree) {
  CsbTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.LowerBound(5), 0u);
  EXPECT_EQ(tree.UpperBound(5), 0u);
}

TEST(CsbTreeTest, SingleEntry) {
  CsbTree tree = Build({100});
  EXPECT_EQ(tree.LowerBound(50), 0u);
  EXPECT_EQ(tree.LowerBound(100), 0u);
  EXPECT_EQ(tree.UpperBound(100), 1u);
  EXPECT_EQ(tree.LowerBound(150), 1u);
  EXPECT_EQ(tree.payload(0), 0u);
}

TEST(CsbTreeTest, SmallTreeIsLeafOnly) {
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < CsbTree::kNodeKeys; ++k) keys.push_back(k * 5);
  CsbTree tree = Build(keys);
  EXPECT_EQ(tree.levels(), 1u);
  for (uint64_t k = 0; k < keys.size(); ++k) {
    EXPECT_EQ(tree.LowerBound(k * 5), k);
    EXPECT_EQ(tree.LowerBound(k * 5 + 1), k + 1);
  }
}

TEST(CsbTreeTest, MultiLevelStructure) {
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 10000; ++k) keys.push_back(k * 3);
  CsbTree tree = Build(keys);
  EXPECT_GT(tree.levels(), 2u);
  EXPECT_EQ(tree.size(), 10000u);
}

class CsbTreeSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CsbTreeSizeTest, MatchesStdLowerUpperBound) {
  size_t n = GetParam();
  eris::Xoshiro256 rng(n);
  std::vector<uint64_t> keys;
  uint64_t next = 0;
  for (size_t i = 0; i < n; ++i) {
    next += 1 + rng.NextBounded(1000);
    keys.push_back(next);
  }
  CsbTree tree = Build(keys);
  ASSERT_EQ(tree.size(), n);
  for (int probe = 0; probe < 2000; ++probe) {
    uint64_t needle = rng.NextBounded(next + 2000);
    size_t expect_lb = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), needle) - keys.begin());
    size_t expect_ub = static_cast<size_t>(
        std::upper_bound(keys.begin(), keys.end(), needle) - keys.begin());
    EXPECT_EQ(tree.LowerBound(needle), expect_lb) << "needle " << needle;
    EXPECT_EQ(tree.UpperBound(needle), expect_ub) << "needle " << needle;
  }
  // Exact keys as needles (boundary cases).
  for (size_t i = 0; i < n; i += std::max<size_t>(1, n / 100)) {
    EXPECT_EQ(tree.LowerBound(keys[i]), i);
    EXPECT_EQ(tree.UpperBound(keys[i]), i + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CsbTreeSizeTest,
                         ::testing::Values(1, 2, 15, 16, 17, 255, 256, 257,
                                           1000, 4096, 100000));

TEST(CsbTreeTest, PayloadsFollowEntries) {
  CsbTree tree = Build({10, 20, 30});
  EXPECT_EQ(tree.payload(tree.UpperBound(5)), 0u);
  EXPECT_EQ(tree.payload(tree.UpperBound(10)), 10u);
  EXPECT_EQ(tree.payload(tree.UpperBound(25)), 20u);
}

TEST(CsbTreeTest, MemoryScalesWithSize) {
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 512; ++k) keys.push_back(k);
  CsbTree big = Build(keys);
  CsbTree small = Build({1, 2, 3});
  EXPECT_GT(big.memory_bytes(), small.memory_bytes());
}

TEST(CsbTreeTest, MaxKeySentinel) {
  CsbTree tree = Build({100, ~uint64_t{0}});
  EXPECT_EQ(tree.UpperBound(~uint64_t{0} - 1), 1u);
  EXPECT_EQ(tree.UpperBound(500), 1u);
  EXPECT_EQ(tree.UpperBound(50), 0u);
}

}  // namespace
}  // namespace eris::storage
