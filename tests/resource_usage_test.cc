// Tests for the bottleneck-analysis resource accounting and cost model.
#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "sim/resource_usage.h"

namespace eris::sim {
namespace {

TEST(ResourceUsageTest, ComputeTimeIsMaxOverWorkers) {
  numa::Topology topo = numa::Topology::Flat(1, 4);
  ResourceUsage usage(topo, 4);
  usage.AddComputeNs(0, 100);
  usage.AddComputeNs(1, 300);
  usage.AddComputeNs(1, 200);
  EXPECT_DOUBLE_EQ(usage.MaxWorkerComputeNs(), 500.0);
  EXPECT_DOUBLE_EQ(usage.WorkerComputeNs(0), 100.0);
  EXPECT_DOUBLE_EQ(usage.CriticalTimeNs(), 500.0);
}

TEST(ResourceUsageTest, LocalTrafficTouchesOnlyMemCtrl) {
  numa::Topology topo = numa::Topology::IntelMachine();
  ResourceUsage usage(topo, 4);
  usage.AddMemoryTraffic(2, 2, 1000);
  EXPECT_EQ(usage.MemCtrlBytes(2), 1000u);
  EXPECT_EQ(usage.TotalLinkBytes(), 0u);
}

TEST(ResourceUsageTest, RemoteTrafficChargesRouteLinks) {
  numa::Topology topo = numa::Topology::IntelMachine();
  ResourceUsage usage(topo, 4);
  usage.AddMemoryTraffic(0, 3, 640);
  EXPECT_EQ(usage.MemCtrlBytes(3), 640u);
  // Fully connected: exactly one link carries the traffic.
  EXPECT_EQ(usage.TotalLinkBytes(), 640u);
}

TEST(ResourceUsageTest, MultiHopTrafficChargesEveryLink) {
  numa::Topology topo = numa::Topology::AmdMachine();
  // Find a 2-hop pair.
  numa::NodeId a = 0;
  numa::NodeId b = 0;
  for (numa::NodeId x = 0; x < 8 && b == 0; ++x) {
    for (numa::NodeId y = 0; y < 8; ++y) {
      if (topo.Hops(x, y) == 2) {
        a = x;
        b = y;
        break;
      }
    }
  }
  ASSERT_EQ(topo.Hops(a, b), 2u);
  ResourceUsage usage(topo, 8);
  usage.AddMemoryTraffic(a, b, 100);
  EXPECT_EQ(usage.TotalLinkBytes(), 200u);  // both hops charged
}

TEST(ResourceUsageTest, LinkTimeUsesBottleneckLink) {
  numa::Topology topo = numa::Topology::IntelMachine();
  ResourceUsage usage(topo, 4);
  // QPI is 10.7 GB/s per direction; counters are direction-less, so the
  // model grants 2x per link.
  usage.AddMemoryTraffic(0, 1, 2 * 10'700);
  EXPECT_NEAR(usage.LinkTimeNs(), 1000.0, 1.0);
}

TEST(ResourceUsageTest, MemCtrlTimeUsesLocalBandwidth) {
  numa::Topology topo = numa::Topology::IntelMachine();
  ResourceUsage usage(topo, 4);
  usage.AddMemoryTraffic(0, 0, 26'700);  // local bw 26.7 GB/s
  EXPECT_NEAR(usage.MemCtrlTimeNs(), 1000.0, 1.0);
}

TEST(ResourceUsageTest, ResetClearsEverything) {
  numa::Topology topo = numa::Topology::IntelMachine();
  ResourceUsage usage(topo, 2);
  usage.AddComputeNs(0, 10);
  usage.AddMemoryTraffic(0, 1, 100);
  usage.Reset();
  EXPECT_DOUBLE_EQ(usage.CriticalTimeNs(), 0.0);
  EXPECT_EQ(usage.TotalLinkBytes(), 0u);
  EXPECT_EQ(usage.TotalMemCtrlBytes(), 0u);
}

TEST(ResourceUsageTest, RoutedBytesChargeDestinationController) {
  numa::Topology topo = numa::Topology::IntelMachine();
  ResourceUsage usage(topo, 2);
  usage.AddRoutedBytes(0, 1, 100);
  EXPECT_EQ(usage.MemCtrlBytes(0), 0u);  // source reads from cache
  EXPECT_EQ(usage.MemCtrlBytes(1), 100u);
  EXPECT_EQ(usage.TotalLinkBytes(), 100u);
}

TEST(ResourceUsageTest, MultiRouteSpreadConservesBytesPerHop) {
  // SGI pairs with several equal-hop routes: the spread shares must sum to
  // (roughly) bytes * hops across all links.
  numa::Topology topo = numa::Topology::SgiMachine(16);
  numa::NodeId far = 0;
  for (numa::NodeId d = 0; d < topo.num_nodes(); ++d) {
    if (topo.Hops(0, d) >= 3) far = d;
  }
  ASSERT_GE(topo.Hops(0, far), 3u);
  size_t routes = topo.Routes(0, far).size();
  ASSERT_GE(routes, 1u);
  ResourceUsage usage(topo, 1);
  const uint64_t bytes = 900000;  // divisible by 1..4 routes
  usage.AddMemoryTraffic(0, far, bytes);
  uint64_t per_hop = bytes / routes * topo.Hops(0, far) * routes;
  EXPECT_NEAR(static_cast<double>(usage.TotalLinkBytes()),
              static_cast<double>(per_hop), bytes * 0.01);
}

TEST(CostModelTest, LocalAndRemoteLatency) {
  numa::Topology topo = numa::Topology::IntelMachine();
  CostModel model(topo);
  EXPECT_DOUBLE_EQ(model.DependentReadNs(0, 0), 129.0);
  EXPECT_DOUBLE_EQ(model.DependentReadNs(0, 1), 193.0);
}

TEST(CostModelTest, BatchingDividesByMlp) {
  numa::Topology topo = numa::Topology::IntelMachine();
  CostModelParams params;
  params.batch_mlp = 8.0;
  CostModel model(topo, params);
  EXPECT_NEAR(model.BatchedReadNs(0, 0, 80), 129.0 * 10, 0.01);
}

TEST(CostModelTest, StreamIsBandwidthBound) {
  numa::Topology topo = numa::Topology::IntelMachine();
  CostModel model(topo);
  // 26.7 GB/s local: 26.7 bytes per ns.
  EXPECT_NEAR(model.StreamNs(0, 0, 26'700), 1000.0, 0.5);
  EXPECT_NEAR(model.StreamNs(0, 1, 10'700), 1000.0, 0.5);
}

TEST(CostModelTest, InterleavedAveragesOverNodes) {
  numa::Topology topo = numa::Topology::IntelMachine();
  CostModel model(topo);
  // (129 + 3*193) / 4 = 177.
  EXPECT_NEAR(model.InterleavedReadNs(0), 177.0, 0.01);
  // Harmonic mean of {26.7, 10.7, 10.7, 10.7}.
  double expected_bw = 4.0 / (1 / 26.7 + 3 / 10.7);
  EXPECT_NEAR(model.InterleavedBandwidthGbps(0), expected_bw, 0.01);
}

TEST(CostModelTest, InterleavedWorseThanLocalBetterThanWorstRemote) {
  for (const numa::Topology& topo :
       {numa::Topology::AmdMachine(), numa::Topology::SgiMachine(16)}) {
    CostModel model(topo);
    for (numa::NodeId n = 0; n < topo.num_nodes(); ++n) {
      EXPECT_GT(model.InterleavedReadNs(n), topo.LatencyNs(n, n));
      EXPECT_LT(model.InterleavedBandwidthGbps(n), topo.BandwidthGbps(n, n));
    }
  }
}

}  // namespace
}  // namespace eris::sim
