// Tests for the NUMA-agnostic baseline structures.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "baseline/shared_column.h"
#include "baseline/shared_tree.h"
#include "common/rng.h"

namespace eris::baseline {
namespace {

using storage::Key;
using storage::Value;

TEST(SharedTreeTest, BasicInsertLookup) {
  numa::MemoryPool pool(2);
  SharedTree tree(&pool, {.prefix_bits = 8, .key_bits = 16});
  EXPECT_TRUE(tree.Insert(1, 10));
  EXPECT_FALSE(tree.Insert(1, 20));
  EXPECT_EQ(tree.Lookup(1), std::optional<Value>(10));
  EXPECT_EQ(tree.Lookup(2), std::nullopt);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(SharedTreeTest, UpsertOverwrites) {
  numa::MemoryPool pool(1);
  SharedTree tree(&pool, {.prefix_bits = 8, .key_bits = 16});
  tree.Upsert(7, 70);
  tree.Upsert(7, 71);
  EXPECT_EQ(tree.Lookup(7), std::optional<Value>(71));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(SharedTreeTest, SingleLevelTree) {
  numa::MemoryPool pool(1);
  SharedTree tree(&pool, {.prefix_bits = 8, .key_bits = 8});
  EXPECT_EQ(tree.levels(), 1u);
  for (Key k = 0; k < 256; ++k) tree.Insert(k, k);
  EXPECT_EQ(tree.size(), 256u);
  EXPECT_EQ(tree.Lookup(255), std::optional<Value>(255));
}

TEST(SharedTreeTest, ConcurrentInsertsAllLand) {
  numa::MemoryPool pool(2);
  SharedTree tree(&pool, {.prefix_bits = 8, .key_bits = 24});
  constexpr int kThreads = 4;
  constexpr Key kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, t] {
      for (Key i = 0; i < kPerThread; ++i) {
        Key k = static_cast<Key>(t) * kPerThread + i;
        EXPECT_TRUE(tree.Insert(k, k * 2));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tree.size(), kThreads * kPerThread);
  Xoshiro256 rng(4);
  for (int probe = 0; probe < 10000; ++probe) {
    Key k = rng.NextBounded(kThreads * kPerThread);
    EXPECT_EQ(tree.Lookup(k), std::optional<Value>(k * 2));
  }
}

TEST(SharedTreeTest, ConcurrentSameKeyInsertCountsOnce) {
  numa::MemoryPool pool(1);
  SharedTree tree(&pool, {.prefix_bits = 8, .key_bits = 16});
  std::atomic<uint64_t> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (Key k = 0; k < 5000; ++k) {
        if (tree.Insert(k, k)) wins.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wins.load(), 5000u);
  EXPECT_EQ(tree.size(), 5000u);
}

TEST(SharedTreeTest, ReadersDuringWrites) {
  numa::MemoryPool pool(2);
  SharedTree tree(&pool, {.prefix_bits = 8, .key_bits = 20});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (Key k = 0; k < 100000 && !stop.load(); ++k) tree.Insert(k, k + 1);
    stop.store(true);
  });
  std::thread reader([&] {
    Xoshiro256 rng(1);
    while (!stop.load(std::memory_order_relaxed)) {
      Key k = rng.NextBounded(100000);
      auto v = tree.Lookup(k);
      if (v.has_value()) {
        EXPECT_EQ(*v, k + 1);  // never a torn value
      }
    }
  });
  writer.join();
  reader.join();
}

TEST(SharedTreeTest, PlacementSpreadsOrConcentratesMemory) {
  numa::MemoryPool pool(4);
  {
    SharedTree tree(&pool, {.prefix_bits = 8, .key_bits = 24},
                    Placement::kInterleaved);
    for (Key k = 0; k < 100000; ++k) tree.Insert(k * 131, k);
    int nodes_used = 0;
    for (numa::NodeId n = 0; n < 4; ++n) {
      if (pool.manager(n).stats().bytes_in_use() > 0) ++nodes_used;
    }
    EXPECT_EQ(nodes_used, 4);
  }
  numa::MemoryPool pool2(4);
  {
    SharedTree tree(&pool2, {.prefix_bits = 8, .key_bits = 24},
                    Placement::kSingleNode);
    for (Key k = 0; k < 100000; ++k) tree.Insert(k * 131, k);
    EXPECT_GT(pool2.manager(0).stats().bytes_in_use(), 0u);
    for (numa::NodeId n = 1; n < 4; ++n) {
      EXPECT_EQ(pool2.manager(n).stats().bytes_in_use(), 0u);
    }
  }
}

TEST(SharedColumnTest, AppendScan) {
  numa::MemoryPool pool(2);
  SharedColumn col(&pool, Placement::kInterleaved);
  uint64_t expect = 0;
  for (Value v = 1; v <= 100000; ++v) {
    col.Append(v);
    expect += v;
  }
  EXPECT_EQ(col.size(), 100000u);
  EXPECT_EQ(col.ScanSumSlice(0, col.size(), 0, ~0ull), expect);
}

TEST(SharedColumnTest, SliceSumsCompose) {
  numa::MemoryPool pool(2);
  SharedColumn col(&pool, Placement::kSingleNode);
  for (Value v = 0; v < 200000; ++v) col.Append(v % 97);
  uint64_t whole = col.ScanSumSlice(0, col.size(), 0, ~0ull);
  uint64_t parts = 0;
  for (uint64_t begin = 0; begin < col.size(); begin += 77777) {
    parts += col.ScanSumSlice(begin, begin + 77777, 0, ~0ull);
  }
  EXPECT_EQ(whole, parts);
}

TEST(SharedColumnTest, FilterBounds) {
  numa::MemoryPool pool(1);
  SharedColumn col(&pool, Placement::kSingleNode);
  for (Value v = 1; v <= 100; ++v) col.Append(v);
  EXPECT_EQ(col.ScanSumSlice(0, 100, 10, 20),
            (10u + 20u) * 11 / 2);
}

TEST(SharedColumnTest, HomeNodesFollowPlacement) {
  numa::MemoryPool pool(4);
  SharedColumn inter(&pool, Placement::kInterleaved);
  for (uint64_t i = 0; i < SharedColumn::kSegmentValues * 4; ++i) {
    inter.Append(1);
  }
  std::set<numa::NodeId> homes;
  for (uint64_t s = 0; s < 4; ++s) {
    homes.insert(inter.HomeOfRow(s * SharedColumn::kSegmentValues));
  }
  EXPECT_EQ(homes.size(), 4u);

  SharedColumn single(&pool, Placement::kSingleNode);
  for (uint64_t i = 0; i < SharedColumn::kSegmentValues * 2; ++i) {
    single.Append(1);
  }
  EXPECT_EQ(single.HomeOfRow(0), 0u);
  EXPECT_EQ(single.HomeOfRow(SharedColumn::kSegmentValues), 0u);
}

}  // namespace
}  // namespace eris::baseline
