// Unit tests for the common module: Status/Result, rng, bit utilities,
// histogram, spinlock.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/bit_util.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/spinlock.h"
#include "common/status.h"

namespace eris {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "key 42");
  EXPECT_EQ(s.ToString(), "not-found: key 42");
}

TEST(StatusTest, CopyAndMoveSemantics) {
  Status s = Status::Internal("boom");
  Status copy = s;
  EXPECT_EQ(copy, s);
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsInternal());
  EXPECT_TRUE(s.ok());  // moved-from is OK  // NOLINT bugprone-use-after-move
}

TEST(StatusTest, AllConstructorsProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
}

TEST(StatusTest, NewCodesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
}

TEST(StatusTest, DetailPayloadRoundTrips) {
  Status s = Status::ResourceExhausted("buffers full")
                 .WithDetail(StatusDetail::kAdmissionRejected, "budget 128");
  EXPECT_TRUE(s.has_detail());
  EXPECT_EQ(s.detail(), StatusDetail::kAdmissionRejected);
  EXPECT_EQ(s.detail_message(), "budget 128");
  EXPECT_EQ(s.ToString(),
            "resource-exhausted: buffers full [admission-rejected: "
            "budget 128]");
  // Copies carry the payload; OK statuses ignore WithDetail.
  Status copy = s;
  EXPECT_EQ(copy, s);
  Status ok = Status::Ok().WithDetail(StatusDetail::kBufferFull, "ignored");
  EXPECT_TRUE(ok.ok());
  EXPECT_FALSE(ok.has_detail());
}

TEST(StatusTest, SerializeRoundTripsAllFields) {
  Status statuses[] = {
      Status::Ok(),
      Status::NotFound("key 42"),
      Status::DeadlineExceeded("late")
          .WithDetail(StatusDetail::kDeadlineExpired, "dropped at dequeue"),
      Status::Unavailable("")
          .WithDetail(StatusDetail::kAeuStalled, ""),
      Status::Internal("poison; cmd")  // separator chars in the message
          .WithDetail(StatusDetail::kCommandQuarantined, "a;b;c"),
  };
  for (const Status& s : statuses) {
    Status back = Status::Deserialize(s.Serialize());
    EXPECT_EQ(back, s) << s.ToString();
    EXPECT_EQ(back.detail(), s.detail());
    EXPECT_EQ(back.detail_message(), s.detail_message());
  }
}

TEST(StatusTest, DeserializeRejectsMalformedInput) {
  EXPECT_TRUE(Status::Deserialize("").IsInternal());
  EXPECT_TRUE(Status::Deserialize("nonsense").IsInternal());
  EXPECT_TRUE(Status::Deserialize("99;0;0;0;").IsInternal());   // bad code
  EXPECT_TRUE(Status::Deserialize("3;99;0;0;").IsInternal());   // bad detail
  EXPECT_TRUE(Status::Deserialize("3;0;5;0;ab").IsInternal());  // short body
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(BitUtilTest, PowersOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(65));
  EXPECT_EQ(NextPowerOfTwo(0), 1u);
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(17), 32u);
  EXPECT_EQ(NextPowerOfTwo(64), 64u);
}

TEST(BitUtilTest, Logs) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(255), 7);
  EXPECT_EQ(Log2Ceil(1), 0);
  EXPECT_EQ(Log2Ceil(255), 8);
  EXPECT_EQ(Log2Ceil(256), 8);
}

TEST(BitUtilTest, AlignAndDiv) {
  EXPECT_EQ(AlignUp(0, 8), 0u);
  EXPECT_EQ(AlignUp(1, 8), 8u);
  EXPECT_EQ(AlignUp(8, 8), 8u);
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
}

TEST(BitUtilTest, ExtractBits) {
  EXPECT_EQ(ExtractBits(0xABCD, 8, 8), 0xABu);
  EXPECT_EQ(ExtractBits(0xABCD, 0, 8), 0xCDu);
  EXPECT_EQ(ExtractBits(~0ULL, 0, 64), ~0ULL);
}

TEST(RngTest, SplitMixDeterministic) {
  SplitMix64 a(7);
  SplitMix64 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, XoshiroBoundedStaysInBounds) {
  Xoshiro256 rng(1234);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(97), 97u);
  }
}

TEST(RngTest, XoshiroRoughlyUniform) {
  Xoshiro256 rng(99);
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) buckets[rng.NextBounded(10)]++;
  for (int count : buckets) {
    EXPECT_GT(count, n / 10 * 0.9);
    EXPECT_LT(count, n / 10 * 1.1);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(HistogramTest, BasicCountsAndMean) {
  Histogram h(0, 100, 10);
  for (int i = 0; i < 100; ++i) h.Add(i);
  EXPECT_EQ(h.total_count(), 100u);
  for (size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bucket_count(b), 10u);
  EXPECT_NEAR(h.Mean(), 49.5, 0.01);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0, 10, 5);
  h.Add(-5);
  h.Add(100);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50, 2);
  EXPECT_NEAR(h.Quantile(0.9), 90, 2);
}

TEST(HistogramTest, StdDevOfConstantIsZero) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 50; ++i) h.Add(5);
  EXPECT_NEAR(h.StdDev(), 0.0, 1e-9);
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a(0, 10, 10);
  Histogram b(0, 10, 10);
  a.Add(1);
  b.Add(2);
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 2u);
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        std::lock_guard<SpinLock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(SpinLockTest, ContentionWithBackoffMakesProgress) {
  // Many waiters, short critical sections: the exponential backoff in
  // lock() must stay bounded (kMaxBackoffSpins) so every waiter keeps
  // re-probing and the total count comes out exact.
  SpinLock lock;
  uint64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<SpinLock> guard(lock);
        ++counter;
        // Hold the lock long enough that other waiters reach deep backoff.
        if (i % 64 == 0) {
          for (int r = 0; r < 200; ++r) CpuRelax();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kIters);
  static_assert(SpinLock::kMaxBackoffSpins > 0 &&
                    (SpinLock::kMaxBackoffSpins &
                     (SpinLock::kMaxBackoffSpins - 1)) == 0,
                "backoff ceiling is a power of two");
}

TEST(SpinLockTest, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

}  // namespace
}  // namespace eris
