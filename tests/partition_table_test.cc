// Tests for range and bitmap partition tables.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "routing/partition_table.h"

namespace eris::routing {
namespace {

using storage::Key;
using storage::kMaxKey;

TEST(RangePartitionTableTest, UniformEntriesCoverDomain) {
  std::vector<AeuId> aeus{0, 1, 2, 3};
  auto entries = RangePartitionTable::UniformEntries(aeus, 1000);
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].hi, 250u);
  EXPECT_EQ(entries[1].hi, 500u);
  EXPECT_EQ(entries[2].hi, 750u);
  EXPECT_EQ(entries.back().hi, kMaxKey);
}

TEST(RangePartitionTableTest, OwnerOfRespectsBoundaries) {
  RangePartitionTable table({{100, 7}, {200, 8}, {kMaxKey, 9}});
  EXPECT_EQ(table.OwnerOf(0), 7u);
  EXPECT_EQ(table.OwnerOf(99), 7u);
  EXPECT_EQ(table.OwnerOf(100), 8u);
  EXPECT_EQ(table.OwnerOf(199), 8u);
  EXPECT_EQ(table.OwnerOf(200), 9u);
  EXPECT_EQ(table.OwnerOf(kMaxKey), 9u);
}

TEST(RangePartitionTableTest, BatchOwnersMatchScalar) {
  RangePartitionTable table({{10, 0}, {20, 1}, {30, 2}, {kMaxKey, 3}});
  std::vector<Key> keys{0, 9, 10, 19, 25, 30, 1000, kMaxKey};
  std::vector<AeuId> owners(keys.size());
  table.OwnersOf(keys, owners.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(owners[i], table.OwnerOf(keys[i]));
  }
}

TEST(RangePartitionTableTest, OwnersOfRange) {
  RangePartitionTable table({{10, 0}, {20, 1}, {30, 2}, {kMaxKey, 3}});
  EXPECT_EQ(table.OwnersOfRange(0, 10), (std::vector<AeuId>{0}));
  EXPECT_EQ(table.OwnersOfRange(5, 15), (std::vector<AeuId>{0, 1}));
  EXPECT_EQ(table.OwnersOfRange(0, kMaxKey), (std::vector<AeuId>{0, 1, 2, 3}));
  EXPECT_EQ(table.OwnersOfRange(25, 26), (std::vector<AeuId>{2}));
  EXPECT_TRUE(table.OwnersOfRange(10, 10).empty());
}

TEST(RangePartitionTableTest, OwnersOfRangeDeduplicates) {
  // The same AEU owning several ranges appears once.
  RangePartitionTable table({{10, 0}, {20, 1}, {30, 0}, {kMaxKey, 1}});
  EXPECT_EQ(table.OwnersOfRange(0, kMaxKey), (std::vector<AeuId>{0, 1}));
}

TEST(RangePartitionTableTest, ReplaceSwapsAtomically) {
  RangePartitionTable table({{100, 0}, {kMaxKey, 1}});
  EXPECT_EQ(table.OwnerOf(50), 0u);
  table.Replace({{50, 0}, {kMaxKey, 1}});
  EXPECT_EQ(table.OwnerOf(50), 1u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(RangePartitionTableTest, ConcurrentReadsDuringReplace) {
  RangePartitionTable table({{1000, 0}, {kMaxKey, 1}});
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      AeuId owner = table.OwnerOf(500);
      EXPECT_TRUE(owner == 0 || owner == 1);
    }
  });
  for (int i = 0; i < 2000; ++i) {
    table.Replace({{static_cast<Key>(400 + i % 300), 0}, {kMaxKey, 1}});
  }
  stop.store(true);
  reader.join();
}

TEST(RangePartitionTableTest, SnapshotReflectsCurrent) {
  RangePartitionTable table({{5, 3}, {kMaxKey, 4}});
  auto snap = table.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].hi, 5u);
  EXPECT_EQ(snap[0].owner, 3u);
}

TEST(RangePartitionTableTest, ManyRangesUseTreeSearch) {
  std::vector<RangeEntry> entries;
  for (uint32_t i = 0; i < 512; ++i) {
    entries.push_back({static_cast<Key>((i + 1) * 100), i});
  }
  entries.back().hi = kMaxKey;
  RangePartitionTable table(entries);
  for (uint32_t i = 0; i < 511; ++i) {
    EXPECT_EQ(table.OwnerOf(i * 100), i);
    EXPECT_EQ(table.OwnerOf(i * 100 + 99), i);
  }
  EXPECT_GT(table.memory_bytes(), 0u);
}

TEST(RangePartitionTableTest, BatchOwnerOfMatchesScalarRandom) {
  // Differential: the prefetch-pipelined whole-batch descent must agree
  // with per-key OwnerOf on random boundaries and adversarial probe sets.
  for (uint64_t seed : {51u, 52u, 53u}) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    Xoshiro256 rng(seed);
    // Random strictly-increasing boundaries (sparse, as after rebalances).
    std::vector<RangeEntry> entries;
    Key hi = 0;
    uint32_t n = 1 + static_cast<uint32_t>(rng.NextBounded(300));
    for (uint32_t i = 0; i < n; ++i) {
      hi += 1 + rng.NextBounded(1u << 20);
      entries.push_back({hi, static_cast<AeuId>(rng.NextBounded(64))});
    }
    entries.back().hi = kMaxKey;
    RangePartitionTable table(entries);

    std::vector<Key> probes;
    for (int i = 0; i < 4000; ++i) probes.push_back(rng.Next());
    // Boundary-straddling probes: hi-1, hi, hi+1 of every range.
    for (const RangeEntry& e : entries) {
      if (e.hi > 0) probes.push_back(e.hi - 1);
      probes.push_back(e.hi);
      if (e.hi < kMaxKey) probes.push_back(e.hi + 1);
    }
    probes.push_back(0);
    probes.push_back(kMaxKey);
    // Duplicate-heavy tail.
    for (int i = 0; i < 100; ++i) probes.push_back(probes[i % 7]);

    std::vector<AeuId> batch(probes.size());
    std::vector<AeuId> scalar(probes.size());
    table.BatchOwnerOf(probes, batch.data());
    table.OwnersOf(probes, scalar.data());
    for (size_t i = 0; i < probes.size(); ++i) {
      ASSERT_EQ(batch[i], scalar[i]) << "key " << probes[i] << " at " << i;
      ASSERT_EQ(batch[i], table.OwnerOf(probes[i]));
    }
  }
}

TEST(RangePartitionTableTest, BatchOwnerOfEmptyAndSubGroupBatches) {
  RangePartitionTable table({{100, 1}, {200, 2}, {kMaxKey, 3}});
  table.BatchOwnerOf({}, nullptr);  // empty batch is a no-op
  std::vector<Key> probes{99, 100, 150};  // smaller than one prefetch group
  std::vector<AeuId> owners(probes.size());
  table.BatchOwnerOf(probes, owners.data());
  EXPECT_EQ(owners[0], 1u);
  EXPECT_EQ(owners[1], 2u);
  EXPECT_EQ(owners[2], 2u);
}

TEST(RangePartitionTableTest, BatchOwnerOfSnapshotConsistentUnderReplace) {
  // A batch is resolved against ONE atomically-loaded snapshot: while a
  // rebalance thread alternates the table between two layouts, every batch
  // must match layout A entirely or layout B entirely — never a mix (the
  // failure mode of re-loading the snapshot per key mid-Replace).
  std::vector<RangeEntry> layout_a{{1000, 0}, {2000, 1}, {kMaxKey, 2}};
  std::vector<RangeEntry> layout_b{{500, 3}, {1500, 4}, {kMaxKey, 5}};
  auto owner_in = [](const std::vector<RangeEntry>& layout, Key k) {
    for (const RangeEntry& e : layout) {
      if (k < e.hi || e.hi == kMaxKey) return e.owner;
    }
    return AeuId{~0u};
  };
  RangePartitionTable table(layout_a);
  std::atomic<bool> stop{false};
  std::thread balancer([&] {
    bool a = false;
    while (!stop.load(std::memory_order_relaxed)) {
      table.Replace(a ? layout_a : layout_b);
      a = !a;
    }
  });
  std::vector<Key> probes;
  for (Key k = 0; k < 2500; k += 100) probes.push_back(k);
  std::vector<AeuId> owners(probes.size());
  for (int round = 0; round < 3000; ++round) {
    table.BatchOwnerOf(probes, owners.data());
    bool all_a = true;
    bool all_b = true;
    for (size_t i = 0; i < probes.size(); ++i) {
      all_a &= owners[i] == owner_in(layout_a, probes[i]);
      all_b &= owners[i] == owner_in(layout_b, probes[i]);
    }
    ASSERT_TRUE(all_a || all_b) << "batch mixed two table versions";
  }
  stop.store(true);
  balancer.join();
}

TEST(BitmapPartitionTableTest, SetTestClear) {
  BitmapPartitionTable bitmap(100);
  EXPECT_FALSE(bitmap.Test(5));
  bitmap.Set(5, true);
  bitmap.Set(99, true);
  EXPECT_TRUE(bitmap.Test(5));
  EXPECT_TRUE(bitmap.Test(99));
  EXPECT_EQ(bitmap.count(), 2u);
  bitmap.Set(5, false);
  EXPECT_FALSE(bitmap.Test(5));
  EXPECT_EQ(bitmap.count(), 1u);
}

TEST(BitmapPartitionTableTest, OwnersAscending) {
  BitmapPartitionTable bitmap(130);
  for (AeuId a : {3u, 64u, 65u, 129u}) bitmap.Set(a, true);
  EXPECT_EQ(bitmap.Owners(), (std::vector<AeuId>{3, 64, 65, 129}));
}

TEST(BitmapPartitionTableTest, EmptyHasNoOwners) {
  BitmapPartitionTable bitmap(10);
  EXPECT_TRUE(bitmap.Owners().empty());
  EXPECT_EQ(bitmap.count(), 0u);
}

}  // namespace
}  // namespace eris::routing
