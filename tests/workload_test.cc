// Tests for the benchmark workload generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "bench_util/workload.h"

namespace eris::bench {
namespace {

TEST(ZipfGeneratorTest, StaysInDomain) {
  ZipfGenerator gen(1000, 0.9, 1);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(gen.Next(), 1000u);
  }
}

TEST(ZipfGeneratorTest, Deterministic) {
  ZipfGenerator a(5000, 0.8, 42);
  ZipfGenerator b(5000, 0.8, 42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(ZipfGeneratorTest, ThetaZeroIsRoughlyUniform) {
  // scatter=false: the Mix64 scattering permutes ranks, which on a tiny
  // domain collides; the uniformity property belongs to the rank stream.
  ZipfGenerator gen(10, 0.0, 7, /*scatter=*/false);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[gen.Next()]++;
  for (int c : counts) {
    EXPECT_GT(c, n / 10 * 0.9);
    EXPECT_LT(c, n / 10 * 1.1);
  }
}

TEST(ZipfGeneratorTest, HighThetaConcentratesMass) {
  // Without scattering, rank 0 is the hottest key.
  ZipfGenerator gen(100000, 0.99, 3, /*scatter=*/false);
  std::map<uint64_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[gen.Next()]++;
  // Rank 0 gets ~ 1/zeta(n) of the mass: several percent.
  EXPECT_GT(counts[0], n / 50);
  // The top-10 ranks together dominate any random tail key.
  int top = 0;
  for (uint64_t r = 0; r < 10; ++r) top += counts[r];
  EXPECT_GT(top, n / 8);
}

TEST(ZipfGeneratorTest, ScatterSpreadsHotKeys) {
  ZipfGenerator gen(1u << 20, 0.99, 3, /*scatter=*/true);
  // The two hottest keys must not be adjacent after scattering.
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[gen.Next()]++;
  std::vector<std::pair<int, uint64_t>> by_count;
  for (auto& [k, c] : counts) by_count.push_back({c, k});
  std::sort(by_count.rbegin(), by_count.rend());
  ASSERT_GE(by_count.size(), 2u);
  uint64_t k0 = by_count[0].second;
  uint64_t k1 = by_count[1].second;
  EXPECT_GT(std::max(k0, k1) - std::min(k0, k1), 1000u);
}

TEST(ZipfGeneratorTest, MoreSkewMoreConcentration) {
  auto top_share = [](double theta) {
    ZipfGenerator gen(100000, theta, 11, /*scatter=*/false);
    std::map<uint64_t, int> counts;
    const int n = 100000;
    for (int i = 0; i < n; ++i) counts[gen.Next()]++;
    int top = 0;
    for (uint64_t r = 0; r < 100; ++r) top += counts[r];
    return static_cast<double>(top) / n;
  };
  EXPECT_LT(top_share(0.5), top_share(0.9));
  EXPECT_LT(top_share(0.9), top_share(1.2));
}

TEST(HotWindowGeneratorTest, RespectsWindow) {
  HotWindowGenerator gen(10000, 5);
  gen.SetWindow(2000, 3000);
  for (int i = 0; i < 10000; ++i) {
    uint64_t k = gen.Next();
    EXPECT_GE(k, 2000u);
    EXPECT_LT(k, 3000u);
  }
  gen.SetWindow(0, 10000);
  bool saw_low = false;
  bool saw_high = false;
  for (int i = 0; i < 10000; ++i) {
    uint64_t k = gen.Next();
    saw_low |= k < 2000;
    saw_high |= k >= 3000;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

}  // namespace
}  // namespace eris::bench
