// Tests for the query-processing layer (filtered aggregation, NUMA-local
// materialization, index-nested-loop join, fused pipelines, MPSM joins) in
// both execution modes.
#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "query/join.h"
#include "query/pipeline.h"
#include "query/query.h"

namespace eris::query {
namespace {

using core::Engine;
using core::EngineOptions;
using core::ExecutionMode;
using routing::KeyValue;
using storage::Key;
using storage::ObjectId;
using storage::Value;

class QueryTest : public ::testing::TestWithParam<ExecutionMode> {
 protected:
  EngineOptions MakeOptions() {
    EngineOptions opts;
    opts.topology = numa::Topology::Flat(2, 2);
    opts.mode = GetParam();
    return opts;
  }
};

TEST_P(QueryTest, AggregateComputesAllStats) {
  Engine engine(MakeOptions());
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  QueryRunner runner(&engine);
  std::vector<Value> values;
  for (Value v = 1; v <= 1000; ++v) values.push_back(v);
  runner.session().Append(col, values);

  AggregateResult all = runner.Aggregate(col);
  EXPECT_EQ(all.rows, 1000u);
  EXPECT_EQ(all.sum, 1000u * 1001 / 2);
  EXPECT_EQ(all.min, 1u);
  EXPECT_EQ(all.max, 1000u);
  EXPECT_NEAR(all.avg, 500.5, 0.01);

  AggregateResult filtered = runner.Aggregate(col, {100, 199});
  EXPECT_EQ(filtered.rows, 100u);
  EXPECT_EQ(filtered.min, 100u);
  EXPECT_EQ(filtered.max, 199u);
  engine.Stop();
}

TEST_P(QueryTest, AggregateEmptyFilter) {
  Engine engine(MakeOptions());
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  QueryRunner runner(&engine);
  runner.session().Append(col, std::vector<Value>{5, 6, 7});
  AggregateResult none = runner.Aggregate(col, {100, 200});
  EXPECT_EQ(none.rows, 0u);
  EXPECT_EQ(none.sum, 0u);
  engine.Stop();
}

TEST_P(QueryTest, MaterializeFilterCreatesLocalIntermediates) {
  Engine engine(MakeOptions());
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  QueryRunner runner(&engine);
  std::vector<Value> values;
  for (Value v = 0; v < 50000; ++v) values.push_back(v % 100);
  runner.session().Append(col, values);

  auto result = runner.MaterializeFilter(col, {10, 19}, "matches");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows, 5000u);  // 10 of 100 residues, 500 each

  // The materialized column is a first-class object: scan it.
  AggregateResult check = runner.Aggregate(result->object);
  EXPECT_EQ(check.rows, 5000u);
  EXPECT_EQ(check.min, 10u);
  EXPECT_EQ(check.max, 19u);

  // Intermediates are spread over the AEUs, not concentrated.
  uint32_t holders = 0;
  for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    if (engine.aeu(a).partition(result->object)->tuple_count() > 0) ++holders;
  }
  EXPECT_GT(holders, 1u);
  engine.Stop();
}

TEST_P(QueryTest, MaterializeRejectsNonColumn) {
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateIndex("kv", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  QueryRunner runner(&engine);
  auto result = runner.MaterializeFilter(idx, {}, "out");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  engine.Stop();
}

TEST_P(QueryTest, IndexJoinCountsMatches) {
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateIndex("dim", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  ObjectId probe = engine.CreateColumn("fact_fk");
  engine.Start();
  QueryRunner runner(&engine);

  // Dimension: even keys 0..9998 -> value = key * 2.
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 10000; k += 2) kvs.push_back({k, k * 2});
  runner.session().Insert(idx, kvs);

  // Facts: foreign keys 0..9999 once each (half will match).
  std::vector<Value> fks;
  for (Value v = 0; v < 10000; ++v) fks.push_back(v);
  runner.session().Append(probe, fks);

  JoinResult join = runner.IndexJoin(probe, {0, 9999}, idx);
  EXPECT_EQ(join.probes, 10000u);
  EXPECT_EQ(join.matches, 5000u);
  uint64_t expected_sum = 0;
  for (Key k = 0; k < 10000; k += 2) expected_sum += k * 2;
  EXPECT_EQ(join.matched_sum, expected_sum);
  engine.Stop();
}

TEST_P(QueryTest, IndexJoinWithProbeFilter) {
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateIndex("dim", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  ObjectId probe = engine.CreateColumn("fact_fk");
  engine.Start();
  QueryRunner runner(&engine);
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 1000; ++k) kvs.push_back({k, 1});
  runner.session().Insert(idx, kvs);
  std::vector<Value> fks;
  for (Value v = 0; v < 2000; ++v) fks.push_back(v);
  runner.session().Append(probe, fks);

  // Only probe values in [500, 1499]: 1000 probes, 500 match (500..999).
  JoinResult join = runner.IndexJoin(probe, {500, 1499}, idx);
  EXPECT_EQ(join.probes, 1000u);
  EXPECT_EQ(join.matches, 500u);
  engine.Stop();
}

TEST_P(QueryTest, PipelineMaterializeThenJoin) {
  // Compose operators: filter a fact column, then join the intermediate
  // against a dimension index.
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateIndex("dim", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  ObjectId facts = engine.CreateColumn("facts");
  engine.Start();
  QueryRunner runner(&engine);
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 4096; ++k) kvs.push_back({k, 7});
  runner.session().Insert(idx, kvs);
  std::vector<Value> values;
  Xoshiro256 rng(4);
  uint64_t in_range = 0;
  for (int i = 0; i < 30000; ++i) {
    Value v = rng.NextBounded(1u << 14);
    values.push_back(v);
    if (v >= 1024 && v <= 3071) ++in_range;
  }
  runner.session().Append(facts, values);

  auto mat = runner.MaterializeFilter(facts, {1024, 3071}, "hot_facts");
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(mat->rows, in_range);
  JoinResult join = runner.IndexJoin(mat->object, {}, idx);
  EXPECT_EQ(join.probes, in_range);
  EXPECT_EQ(join.matches, in_range);  // all keys 1024..3071 exist in dim
  engine.Stop();
}

TEST_P(QueryTest, DynamicObjectCreationWhileRunning) {
  Engine engine(MakeOptions());
  ObjectId col = engine.CreateColumn("base");
  engine.Start();
  QueryRunner runner(&engine);
  runner.session().Append(col, std::vector<Value>{1, 2, 3});
  // Create additional objects after Start(), exercise them immediately.
  for (int i = 0; i < 5; ++i) {
    ObjectId extra = engine.CreateColumn("extra" + std::to_string(i));
    runner.session().Append(extra, std::vector<Value>{10, 20});
    EXPECT_EQ(runner.Aggregate(extra).rows, 2u);
    ObjectId extra_idx = engine.CreateIndex(
        "xidx" + std::to_string(i), 1u << 10,
        {.prefix_bits = 5, .key_bits = 10});
    std::vector<KeyValue> kv{{1, 1}};
    runner.session().Insert(extra_idx, kv);
    EXPECT_EQ(runner.session().Lookup(extra_idx, std::vector<Key>{1}), 1u);
  }
  engine.Stop();
}

TEST_P(QueryTest, FusedPipelineMatchesBaselineAndOracle) {
  Engine engine(MakeOptions());
  engine.Start();
  PipelineRunner runner(&engine);
  ColumnGroup group = runner.CreateColumnGroup("g", 3);

  Xoshiro256 rng(11);
  const size_t kRows = 40000;
  std::vector<Value> c0(kRows), c1(kRows), c2(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    c0[i] = rng.NextBounded(10000);
    c1[i] = rng.NextBounded(1000);
    c2[i] = rng.NextBounded(1u << 20);
  }
  std::vector<std::span<const Value>> cols{c0, c1, c2};
  runner.AppendRows(group, cols);

  PipelineQuery q;
  q.filter_column = group[0];
  q.filter = {2000, 2999};
  q.filter2_column = group[1];
  q.filter2 = {0, 499};
  q.agg_column = group[2];

  uint64_t oracle_rows = 0;
  uint64_t oracle_sum = 0;
  for (size_t i = 0; i < kRows; ++i) {
    if (c0[i] >= 2000 && c0[i] <= 2999 && c1[i] <= 499) {
      ++oracle_rows;
      oracle_sum += c2[i];
    }
  }

  PipelineResult fused = runner.Run(q, /*fused=*/true);
  PipelineResult baseline = runner.Run(q, /*fused=*/false);
  EXPECT_EQ(fused.rows, oracle_rows);
  EXPECT_EQ(fused.sum, oracle_sum);
  EXPECT_EQ(baseline.rows, oracle_rows);
  EXPECT_EQ(baseline.sum, oracle_sum);

  // Single-filter plan too (CoveredBy/full-selection path).
  PipelineQuery q1;
  q1.filter_column = group[0];
  q1.filter = {0, ~Value{0}};
  q1.agg_column = group[2];
  uint64_t all_sum = 0;
  for (Value v : c2) all_sum += v;
  PipelineResult whole = runner.Run(q1, /*fused=*/true);
  EXPECT_EQ(whole.rows, kRows);
  EXPECT_EQ(whole.sum, all_sum);
  engine.Stop();
}

TEST_P(QueryTest, PipelineZoneMapsPruneClusteredSegments) {
  Engine engine(MakeOptions());
  engine.Start();
  PipelineRunner runner(&engine);
  ColumnGroup group = runner.CreateColumnGroup("clustered", 2);
  // Clustered values: long runs of one residue, so most segments' zones
  // exclude a narrow filter and the fused pipeline skips them outright.
  const size_t kRows = 200000;
  std::vector<Value> key(kRows), val(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    key[i] = i / 1000;  // 0..199, clustered
    val[i] = i;
  }
  std::vector<std::span<const Value>> cols{key, val};
  runner.AppendRows(group, cols);

  PipelineQuery q;
  q.filter_column = group[0];
  q.filter = {10, 11};
  q.agg_column = group[1];
  PipelineResult r = runner.Run(q, /*fused=*/true);
  EXPECT_EQ(r.rows, 2000u);
  uint64_t pruned = 0;
  for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    pruned += engine.aeu(a).loop_stats().pipeline_segments_pruned;
  }
  EXPECT_GT(pruned, 0u);
  engine.Stop();
}

TEST_P(QueryTest, MergeJoinMatchesSharedHashAndOracle) {
  Engine engine(MakeOptions());
  ObjectId r = engine.CreateIndex("r", 1u << 16,
                                  {.prefix_bits = 8, .key_bits = 16});
  ObjectId s = engine.CreateIndex("s", 1u << 16,
                                  {.prefix_bits = 8, .key_bits = 16});
  ObjectId s_hashed = engine.CreateHashedIndex(
      "s_hashed", 1u << 16, {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  JoinRunner runner(&engine);
  core::Engine::Session& session = runner.session();

  // R: keys 0..9999 step 3; S: keys 0..9999 step 2. Matches: multiples
  // of 6 below 10000.
  std::vector<KeyValue> r_kvs;
  std::vector<KeyValue> s_kvs;
  for (Key k = 0; k < 10000; k += 3) r_kvs.push_back({k, k + 1});
  for (Key k = 0; k < 10000; k += 2) s_kvs.push_back({k, k + 2});
  session.Insert(r, r_kvs);
  session.Insert(s, s_kvs);
  session.Insert(s_hashed, s_kvs);

  uint64_t oracle_matches = 0;
  uint64_t oracle_key_sum = 0;
  for (Key k = 0; k < 10000; k += 6) {
    ++oracle_matches;
    oracle_key_sum += k;
  }

  MergeJoinResult mpsm = runner.MergeJoin(r, s);
  EXPECT_EQ(mpsm.matches, oracle_matches);
  EXPECT_EQ(mpsm.key_sum, oracle_key_sum);

  // For the MPSM path, the bulk of S must have stayed NUMA-local.
  uint64_t local = 0;
  uint64_t exchanged = 0;
  for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    local += engine.aeu(a).loop_stats().join_entries_local;
    exchanged += engine.aeu(a).loop_stats().join_entries_exchanged;
  }
  EXPECT_EQ(local + exchanged, s_kvs.size());
  EXPECT_GT(local, exchanged);

  MergeJoinResult shared = runner.SharedHashJoin(r, s_hashed);
  EXPECT_EQ(shared.matches, oracle_matches);
  EXPECT_EQ(shared.key_sum, oracle_key_sum);
  engine.Stop();
}

TEST_P(QueryTest, MergeJoinEmptySides) {
  Engine engine(MakeOptions());
  ObjectId r = engine.CreateIndex("r", 1u << 12,
                                  {.prefix_bits = 6, .key_bits = 12});
  ObjectId s = engine.CreateIndex("s", 1u << 12,
                                  {.prefix_bits = 6, .key_bits = 12});
  engine.Start();
  JoinRunner runner(&engine);
  // Both empty.
  MergeJoinResult none = runner.MergeJoin(r, s);
  EXPECT_EQ(none.matches, 0u);
  EXPECT_EQ(none.key_sum, 0u);
  // One side empty.
  std::vector<KeyValue> kvs{{1, 1}, {2, 2}, {3, 3}};
  runner.session().Insert(r, kvs);
  MergeJoinResult half = runner.MergeJoin(r, s);
  EXPECT_EQ(half.matches, 0u);
  engine.Stop();
}

#if defined(ERIS_FAULT_INJECTION) && ERIS_FAULT_INJECTION
TEST(QueryScratchTest, SteadyStatePipelinesAndJoinsAreAllocationFree) {
  // Pipeline and join scratch (selection vectors, sort runs, stage
  // buffers) lives in node-local arenas that grow only through the
  // kQueryScratchAlloc injection point. After one warm-up query of each
  // shape, repeated queries must never visit the point again.
  std::atomic<uint64_t> grows{0};
  fi::FaultInjector::Global().Reset();
  fi::FaultInjector::Global().SetHook(
      fi::Point::kQueryScratchAlloc,
      [&] { grows.fetch_add(1, std::memory_order_relaxed); });

  EngineOptions opts;
  opts.topology = numa::Topology::Flat(2, 2);
  opts.mode = ExecutionMode::kSimulated;
  Engine engine(opts);
  ObjectId r = engine.CreateIndex("r", 1u << 14,
                                  {.prefix_bits = 7, .key_bits = 14});
  ObjectId s = engine.CreateIndex("s", 1u << 14,
                                  {.prefix_bits = 7, .key_bits = 14});
  engine.Start();
  PipelineRunner pipelines(&engine);
  JoinRunner joins(&engine);
  ColumnGroup group = pipelines.CreateColumnGroup("g", 2);

  Xoshiro256 rng(7);
  const size_t kRows = 20000;
  std::vector<Value> c0(kRows), c1(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    c0[i] = rng.NextBounded(1u << 14);
    c1[i] = rng.NextBounded(1u << 14);
  }
  std::vector<std::span<const Value>> cols{c0, c1};
  pipelines.AppendRows(group, cols);
  std::vector<KeyValue> r_kvs, s_kvs;
  for (Key k = 0; k < (1u << 14); k += 3) r_kvs.push_back({k, k});
  for (Key k = 0; k < (1u << 14); k += 2) s_kvs.push_back({k, k});
  joins.session().Insert(r, r_kvs);
  joins.session().Insert(s, s_kvs);

  PipelineQuery q;
  q.filter_column = group[0];
  q.filter = {100, 8000};
  q.agg_column = group[1];

  // Warm-up: one query of each shape grows the arenas to capacity.
  (void)pipelines.Run(q, /*fused=*/true);
  (void)pipelines.Run(q, /*fused=*/false);
  (void)joins.MergeJoin(r, s);
  const uint64_t warmup = grows.load();
  EXPECT_GT(warmup, 0u);  // the warm-up itself does allocate

  for (int round = 0; round < 10; ++round) {
    PipelineResult fused = pipelines.Run(q, /*fused=*/true);
    PipelineResult base = pipelines.Run(q, /*fused=*/false);
    EXPECT_EQ(fused.rows, base.rows);
    MergeJoinResult join = joins.MergeJoin(r, s);
    EXPECT_GT(join.matches, 0u);
  }
  EXPECT_EQ(grows.load(), warmup)
      << "steady-state pipelines/joins grew the query scratch arenas";
  fi::FaultInjector::Global().Reset();
  engine.Stop();
}
#endif  // ERIS_FAULT_INJECTION

INSTANTIATE_TEST_SUITE_P(Modes, QueryTest,
                         ::testing::Values(ExecutionMode::kSimulated,
                                           ExecutionMode::kThreads),
                         [](const auto& info) {
                           return info.param == ExecutionMode::kSimulated
                                      ? "Simulated"
                                      : "Threads";
                         });

}  // namespace
}  // namespace eris::query
