// Tests for the query-processing layer (filtered aggregation, NUMA-local
// materialization, index-nested-loop join) in both execution modes.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/query.h"

namespace eris::query {
namespace {

using core::Engine;
using core::EngineOptions;
using core::ExecutionMode;
using routing::KeyValue;
using storage::Key;
using storage::ObjectId;
using storage::Value;

class QueryTest : public ::testing::TestWithParam<ExecutionMode> {
 protected:
  EngineOptions MakeOptions() {
    EngineOptions opts;
    opts.topology = numa::Topology::Flat(2, 2);
    opts.mode = GetParam();
    return opts;
  }
};

TEST_P(QueryTest, AggregateComputesAllStats) {
  Engine engine(MakeOptions());
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  QueryRunner runner(&engine);
  std::vector<Value> values;
  for (Value v = 1; v <= 1000; ++v) values.push_back(v);
  runner.session().Append(col, values);

  AggregateResult all = runner.Aggregate(col);
  EXPECT_EQ(all.rows, 1000u);
  EXPECT_EQ(all.sum, 1000u * 1001 / 2);
  EXPECT_EQ(all.min, 1u);
  EXPECT_EQ(all.max, 1000u);
  EXPECT_NEAR(all.avg, 500.5, 0.01);

  AggregateResult filtered = runner.Aggregate(col, {100, 199});
  EXPECT_EQ(filtered.rows, 100u);
  EXPECT_EQ(filtered.min, 100u);
  EXPECT_EQ(filtered.max, 199u);
  engine.Stop();
}

TEST_P(QueryTest, AggregateEmptyFilter) {
  Engine engine(MakeOptions());
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  QueryRunner runner(&engine);
  runner.session().Append(col, std::vector<Value>{5, 6, 7});
  AggregateResult none = runner.Aggregate(col, {100, 200});
  EXPECT_EQ(none.rows, 0u);
  EXPECT_EQ(none.sum, 0u);
  engine.Stop();
}

TEST_P(QueryTest, MaterializeFilterCreatesLocalIntermediates) {
  Engine engine(MakeOptions());
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  QueryRunner runner(&engine);
  std::vector<Value> values;
  for (Value v = 0; v < 50000; ++v) values.push_back(v % 100);
  runner.session().Append(col, values);

  auto result = runner.MaterializeFilter(col, {10, 19}, "matches");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows, 5000u);  // 10 of 100 residues, 500 each

  // The materialized column is a first-class object: scan it.
  AggregateResult check = runner.Aggregate(result->object);
  EXPECT_EQ(check.rows, 5000u);
  EXPECT_EQ(check.min, 10u);
  EXPECT_EQ(check.max, 19u);

  // Intermediates are spread over the AEUs, not concentrated.
  uint32_t holders = 0;
  for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    if (engine.aeu(a).partition(result->object)->tuple_count() > 0) ++holders;
  }
  EXPECT_GT(holders, 1u);
  engine.Stop();
}

TEST_P(QueryTest, MaterializeRejectsNonColumn) {
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateIndex("kv", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  QueryRunner runner(&engine);
  auto result = runner.MaterializeFilter(idx, {}, "out");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  engine.Stop();
}

TEST_P(QueryTest, IndexJoinCountsMatches) {
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateIndex("dim", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  ObjectId probe = engine.CreateColumn("fact_fk");
  engine.Start();
  QueryRunner runner(&engine);

  // Dimension: even keys 0..9998 -> value = key * 2.
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 10000; k += 2) kvs.push_back({k, k * 2});
  runner.session().Insert(idx, kvs);

  // Facts: foreign keys 0..9999 once each (half will match).
  std::vector<Value> fks;
  for (Value v = 0; v < 10000; ++v) fks.push_back(v);
  runner.session().Append(probe, fks);

  JoinResult join = runner.IndexJoin(probe, {0, 9999}, idx);
  EXPECT_EQ(join.probes, 10000u);
  EXPECT_EQ(join.matches, 5000u);
  uint64_t expected_sum = 0;
  for (Key k = 0; k < 10000; k += 2) expected_sum += k * 2;
  EXPECT_EQ(join.matched_sum, expected_sum);
  engine.Stop();
}

TEST_P(QueryTest, IndexJoinWithProbeFilter) {
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateIndex("dim", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  ObjectId probe = engine.CreateColumn("fact_fk");
  engine.Start();
  QueryRunner runner(&engine);
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 1000; ++k) kvs.push_back({k, 1});
  runner.session().Insert(idx, kvs);
  std::vector<Value> fks;
  for (Value v = 0; v < 2000; ++v) fks.push_back(v);
  runner.session().Append(probe, fks);

  // Only probe values in [500, 1499]: 1000 probes, 500 match (500..999).
  JoinResult join = runner.IndexJoin(probe, {500, 1499}, idx);
  EXPECT_EQ(join.probes, 1000u);
  EXPECT_EQ(join.matches, 500u);
  engine.Stop();
}

TEST_P(QueryTest, PipelineMaterializeThenJoin) {
  // Compose operators: filter a fact column, then join the intermediate
  // against a dimension index.
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateIndex("dim", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  ObjectId facts = engine.CreateColumn("facts");
  engine.Start();
  QueryRunner runner(&engine);
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 4096; ++k) kvs.push_back({k, 7});
  runner.session().Insert(idx, kvs);
  std::vector<Value> values;
  Xoshiro256 rng(4);
  uint64_t in_range = 0;
  for (int i = 0; i < 30000; ++i) {
    Value v = rng.NextBounded(1u << 14);
    values.push_back(v);
    if (v >= 1024 && v <= 3071) ++in_range;
  }
  runner.session().Append(facts, values);

  auto mat = runner.MaterializeFilter(facts, {1024, 3071}, "hot_facts");
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(mat->rows, in_range);
  JoinResult join = runner.IndexJoin(mat->object, {}, idx);
  EXPECT_EQ(join.probes, in_range);
  EXPECT_EQ(join.matches, in_range);  // all keys 1024..3071 exist in dim
  engine.Stop();
}

TEST_P(QueryTest, DynamicObjectCreationWhileRunning) {
  Engine engine(MakeOptions());
  ObjectId col = engine.CreateColumn("base");
  engine.Start();
  QueryRunner runner(&engine);
  runner.session().Append(col, std::vector<Value>{1, 2, 3});
  // Create additional objects after Start(), exercise them immediately.
  for (int i = 0; i < 5; ++i) {
    ObjectId extra = engine.CreateColumn("extra" + std::to_string(i));
    runner.session().Append(extra, std::vector<Value>{10, 20});
    EXPECT_EQ(runner.Aggregate(extra).rows, 2u);
    ObjectId extra_idx = engine.CreateIndex(
        "xidx" + std::to_string(i), 1u << 10,
        {.prefix_bits = 5, .key_bits = 10});
    std::vector<KeyValue> kv{{1, 1}};
    runner.session().Insert(extra_idx, kv);
    EXPECT_EQ(runner.session().Lookup(extra_idx, std::vector<Key>{1}), 1u);
  }
  engine.Stop();
}

INSTANTIATE_TEST_SUITE_P(Modes, QueryTest,
                         ::testing::Values(ExecutionMode::kSimulated,
                                           ExecutionMode::kThreads),
                         [](const auto& info) {
                           return info.param == ExecutionMode::kSimulated
                                      ? "Simulated"
                                      : "Threads";
                         });

}  // namespace
}  // namespace eris::query
