// Tests for the generalized prefix tree: point ops, range scans, structural
// split/absorb, and property sweeps across geometries.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "numa/memory_manager.h"
#include "storage/prefix_tree.h"

namespace eris::storage {
namespace {

class PrefixTreeTest : public ::testing::Test {
 protected:
  numa::NodeMemoryManager mm_{0};
};

TEST_F(PrefixTreeTest, EmptyTree) {
  PrefixTree tree(&mm_);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Lookup(42), std::nullopt);
  EXPECT_EQ(tree.MinKey(), std::nullopt);
  EXPECT_EQ(tree.MaxKey(), std::nullopt);
  EXPECT_EQ(tree.RangeScan(0, kMaxKey, [](Key, Value) {}), 0u);
}

TEST_F(PrefixTreeTest, InsertLookup) {
  PrefixTree tree(&mm_);
  EXPECT_TRUE(tree.Insert(1, 100));
  EXPECT_TRUE(tree.Insert(2, 200));
  EXPECT_FALSE(tree.Insert(1, 999));  // duplicate: keeps original
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree.Lookup(1), std::optional<Value>(100));
  EXPECT_EQ(tree.Lookup(2), std::optional<Value>(200));
  EXPECT_EQ(tree.Lookup(3), std::nullopt);
}

TEST_F(PrefixTreeTest, UpsertOverwrites) {
  PrefixTree tree(&mm_);
  EXPECT_TRUE(tree.Upsert(5, 50));
  EXPECT_FALSE(tree.Upsert(5, 55));
  EXPECT_EQ(tree.Lookup(5), std::optional<Value>(55));
  EXPECT_EQ(tree.size(), 1u);
}

TEST_F(PrefixTreeTest, EraseRemoves) {
  PrefixTree tree(&mm_);
  tree.Insert(7, 70);
  EXPECT_TRUE(tree.Erase(7));
  EXPECT_FALSE(tree.Erase(7));
  EXPECT_EQ(tree.Lookup(7), std::nullopt);
  EXPECT_EQ(tree.size(), 0u);
}

TEST_F(PrefixTreeTest, ExtremeKeys) {
  PrefixTree tree(&mm_);
  tree.Insert(kMinKey, 1);
  tree.Insert(kMaxKey, 2);
  EXPECT_EQ(tree.Lookup(kMinKey), std::optional<Value>(1));
  EXPECT_EQ(tree.Lookup(kMaxKey), std::optional<Value>(2));
  EXPECT_EQ(tree.MinKey(), std::optional<Key>(kMinKey));
  EXPECT_EQ(tree.MaxKey(), std::optional<Key>(kMaxKey));
}

TEST_F(PrefixTreeTest, RangeScanOrderedAndBounded) {
  PrefixTree tree(&mm_, {.prefix_bits = 4, .key_bits = 16});
  for (Key k = 0; k < 1000; k += 3) tree.Insert(k, k * 2);
  std::vector<Key> seen;
  uint64_t n = tree.RangeScan(100, 200, [&](Key k, Value v) {
    EXPECT_EQ(v, k * 2);
    seen.push_back(k);
  });
  EXPECT_EQ(n, seen.size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  for (Key k : seen) {
    EXPECT_GE(k, 100u);
    EXPECT_LT(k, 200u);
  }
  // 102, 105, ..., 198 -> 33 keys.
  EXPECT_EQ(seen.size(), 33u);
}

TEST_F(PrefixTreeTest, ForEachVisitsAllSorted) {
  PrefixTree tree(&mm_, {.prefix_bits = 8, .key_bits = 32});
  Xoshiro256 rng(11);
  std::map<Key, Value> reference;
  for (int i = 0; i < 5000; ++i) {
    Key k = rng.NextBounded(1u << 31);
    reference[k] = i;
    tree.Upsert(k, i);
  }
  std::vector<std::pair<Key, Value>> out;
  tree.ForEach([&](Key k, Value v) { out.emplace_back(k, v); });
  ASSERT_EQ(out.size(), reference.size());
  auto it = reference.begin();
  for (const auto& [k, v] : out) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST_F(PrefixTreeTest, SplitOffMovesUpperKeys) {
  PrefixTree tree(&mm_, {.prefix_bits = 4, .key_bits = 16});
  for (Key k = 0; k < 1000; ++k) tree.Insert(k, k);
  PrefixTree upper = tree.SplitOff(600);
  EXPECT_EQ(tree.size(), 600u);
  EXPECT_EQ(upper.size(), 400u);
  for (Key k = 0; k < 1000; ++k) {
    if (k < 600) {
      EXPECT_EQ(tree.Lookup(k), std::optional<Value>(k));
      EXPECT_EQ(upper.Lookup(k), std::nullopt);
    } else {
      EXPECT_EQ(tree.Lookup(k), std::nullopt);
      EXPECT_EQ(upper.Lookup(k), std::optional<Value>(k));
    }
  }
}

TEST_F(PrefixTreeTest, SplitAtUnalignedBoundary) {
  PrefixTree tree(&mm_, {.prefix_bits = 8, .key_bits = 16});
  for (Key k = 0; k < 4096; ++k) tree.Insert(k, 1);
  PrefixTree upper = tree.SplitOff(1234);  // not a digit boundary
  EXPECT_EQ(tree.size(), 1234u);
  EXPECT_EQ(upper.size(), 4096u - 1234u);
  EXPECT_EQ(tree.MaxKey(), std::optional<Key>(1233));
  EXPECT_EQ(upper.MinKey(), std::optional<Key>(1234));
}

TEST_F(PrefixTreeTest, SplitAtMinKeyMovesEverything) {
  PrefixTree tree(&mm_, {.prefix_bits = 4, .key_bits = 8});
  for (Key k = 0; k < 100; ++k) tree.Insert(k, k);
  PrefixTree all = tree.SplitOff(kMinKey);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(all.size(), 100u);
}

TEST_F(PrefixTreeTest, AbsorbSplicesDisjointTrees) {
  PrefixTree a(&mm_, {.prefix_bits = 4, .key_bits = 16});
  PrefixTree b(&mm_, {.prefix_bits = 4, .key_bits = 16});
  for (Key k = 0; k < 500; ++k) a.Insert(k, k);
  for (Key k = 500; k < 1000; ++k) b.Insert(k, k);
  a.Absorb(std::move(b));
  EXPECT_EQ(a.size(), 1000u);
  for (Key k = 0; k < 1000; ++k) {
    EXPECT_EQ(a.Lookup(k), std::optional<Value>(k));
  }
}

TEST_F(PrefixTreeTest, SplitThenAbsorbRestores) {
  PrefixTree tree(&mm_, {.prefix_bits = 4, .key_bits = 16});
  Xoshiro256 rng(3);
  std::map<Key, Value> reference;
  for (int i = 0; i < 3000; ++i) {
    Key k = rng.NextBounded(1u << 16);
    reference[k] = i;
    tree.Upsert(k, i);
  }
  uint64_t before = tree.size();
  PrefixTree upper = tree.SplitOff(30000);
  tree.Absorb(std::move(upper));
  EXPECT_EQ(tree.size(), before);
  for (const auto& [k, v] : reference) {
    EXPECT_EQ(tree.Lookup(k), std::optional<Value>(v));
  }
}

TEST_F(PrefixTreeTest, AbsorbAcrossManagersCopies) {
  numa::NodeMemoryManager other_mm(1);
  PrefixTree a(&mm_, {.prefix_bits = 4, .key_bits = 16});
  PrefixTree b(&other_mm, {.prefix_bits = 4, .key_bits = 16});
  a.Insert(1, 1);
  b.Insert(2, 2);
  a.Absorb(std::move(b));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.Lookup(2), std::optional<Value>(2));
}

TEST_F(PrefixTreeTest, BatchLookup) {
  PrefixTree tree(&mm_, {.prefix_bits = 8, .key_bits = 16});
  for (Key k = 0; k < 100; k += 2) tree.Insert(k, k + 1);
  std::vector<Key> keys{0, 1, 2, 3, 98, 99};
  std::vector<Value> values(keys.size());
  std::vector<uint8_t> found_raw(keys.size());
  bool found[6];
  size_t hits = tree.BatchLookup(keys, values.data(), found);
  EXPECT_EQ(hits, 3u);
  EXPECT_TRUE(found[0]);
  EXPECT_FALSE(found[1]);
  EXPECT_TRUE(found[2]);
  EXPECT_EQ(values[0], 1u);
  EXPECT_EQ(values[2], 3u);
  (void)found_raw;
}

TEST_F(PrefixTreeTest, BatchLookupMatchesScalarLookup) {
  PrefixTree tree(&mm_, {.prefix_bits = 8, .key_bits = 24});
  Xoshiro256 rng(21);
  for (int i = 0; i < 20000; ++i) tree.Upsert(rng.NextBounded(1u << 24), i);
  // Probe sizes around the internal group size, including 0 and odd tails.
  for (size_t probe_count : {0u, 1u, 15u, 16u, 17u, 1000u}) {
    std::vector<Key> probes(probe_count);
    for (auto& p : probes) p = rng.NextBounded(1u << 24);
    std::vector<Value> values(probe_count);
    std::vector<uint8_t> found_raw(probe_count);
    auto* found = reinterpret_cast<bool*>(found_raw.data());
    size_t hits = tree.BatchLookup(probes, values.data(), found);
    size_t expect_hits = 0;
    for (size_t i = 0; i < probe_count; ++i) {
      auto v = tree.Lookup(probes[i]);
      EXPECT_EQ(found[i], v.has_value()) << probes[i];
      if (v.has_value()) {
        EXPECT_EQ(values[i], *v);
        ++expect_hits;
      }
    }
    EXPECT_EQ(hits, expect_hits);
  }
}

TEST_F(PrefixTreeTest, BatchLookupOnEmptyTree) {
  PrefixTree tree(&mm_, {.prefix_bits = 8, .key_bits = 16});
  std::vector<Key> probes{1, 2, 3};
  Value values[3];
  bool found[3];
  EXPECT_EQ(tree.BatchLookup(probes, values, found), 0u);
  for (bool f : found) EXPECT_FALSE(f);
}

TEST_F(PrefixTreeTest, BatchLookupSingleLevelTree) {
  PrefixTree tree(&mm_, {.prefix_bits = 8, .key_bits = 8});
  for (Key k = 0; k < 256; k += 2) tree.Insert(k, k);
  std::vector<Key> probes;
  for (Key k = 0; k < 256; ++k) probes.push_back(k);
  std::vector<Value> values(256);
  std::vector<uint8_t> found_raw(256);
  auto* found = reinterpret_cast<bool*>(found_raw.data());
  EXPECT_EQ(tree.BatchLookup(probes, values.data(), found), 128u);
}

TEST_F(PrefixTreeTest, LookupTracedReportsDepth) {
  PrefixTree tree(&mm_, {.prefix_bits = 8, .key_bits = 32});
  tree.Insert(12345, 1);
  std::vector<const void*> trace;
  EXPECT_EQ(tree.LookupTraced(12345, &trace), std::optional<Value>(1));
  EXPECT_EQ(trace.size(), tree.levels());
}

TEST_F(PrefixTreeTest, MemoryAccounting) {
  PrefixTree tree(&mm_, {.prefix_bits = 8, .key_bits = 16});
  EXPECT_EQ(tree.memory_bytes(), 0u);
  tree.Insert(1, 1);
  uint64_t after_one = tree.memory_bytes();
  EXPECT_GT(after_one, 0u);
  tree.Clear();
  EXPECT_EQ(tree.memory_bytes(), 0u);
  EXPECT_EQ(mm_.stats().bytes_in_use(), 0u);
}

TEST_F(PrefixTreeTest, MoveSemantics) {
  PrefixTree a(&mm_, {.prefix_bits = 4, .key_bits = 8});
  a.Insert(9, 90);
  PrefixTree b = std::move(a);
  EXPECT_EQ(b.Lookup(9), std::optional<Value>(90));
  EXPECT_EQ(a.size(), 0u);  // NOLINT bugprone-use-after-move
}

// Property sweep: dense + random workloads across geometries.
struct Geometry {
  uint32_t prefix_bits;
  uint32_t key_bits;
};

class PrefixTreeGeometryTest : public ::testing::TestWithParam<Geometry> {
 protected:
  numa::NodeMemoryManager mm_{0};
};

TEST_P(PrefixTreeGeometryTest, RandomUpsertLookupEraseAgainstStdMap) {
  auto [prefix_bits, key_bits] = GetParam();
  PrefixTree tree(&mm_, {.prefix_bits = prefix_bits, .key_bits = key_bits});
  EXPECT_EQ(tree.levels(), (key_bits + prefix_bits - 1) / prefix_bits);
  Xoshiro256 rng(prefix_bits * 1000 + key_bits);
  std::map<Key, Value> reference;
  const Key domain = key_bits >= 64 ? kMaxKey : (Key{1} << key_bits) - 1;
  for (int i = 0; i < 4000; ++i) {
    Key k = rng.NextBounded(domain) ;
    int op = static_cast<int>(rng.NextBounded(3));
    if (op == 0) {
      bool was_new = tree.Upsert(k, i);
      EXPECT_EQ(was_new, reference.find(k) == reference.end());
      reference[k] = i;
    } else if (op == 1) {
      auto expect = reference.find(k);
      auto got = tree.Lookup(k);
      if (expect == reference.end()) {
        EXPECT_EQ(got, std::nullopt);
      } else {
        EXPECT_EQ(got, std::optional<Value>(expect->second));
      }
    } else {
      bool existed = reference.erase(k) > 0;
      EXPECT_EQ(tree.Erase(k), existed);
    }
    EXPECT_EQ(tree.size(), reference.size());
  }
  // Final full verification in sorted order.
  std::vector<Key> keys;
  tree.ForEach([&](Key k, Value) { keys.push_back(k); });
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.size(), reference.size());
}

TEST_P(PrefixTreeGeometryTest, SplitPropertyAtRandomBoundaries) {
  auto [prefix_bits, key_bits] = GetParam();
  const Key domain = key_bits >= 64 ? kMaxKey : (Key{1} << key_bits) - 1;
  Xoshiro256 rng(99 + prefix_bits);
  for (int round = 0; round < 5; ++round) {
    PrefixTree tree(&mm_, {.prefix_bits = prefix_bits, .key_bits = key_bits});
    std::vector<Key> keys;
    for (int i = 0; i < 800; ++i) {
      Key k = rng.NextBounded(domain);
      if (tree.Insert(k, k)) keys.push_back(k);
    }
    Key boundary = rng.NextBounded(domain);
    PrefixTree upper = tree.SplitOff(boundary);
    uint64_t expect_upper = 0;
    for (Key k : keys) {
      if (k >= boundary) ++expect_upper;
    }
    EXPECT_EQ(upper.size(), expect_upper);
    EXPECT_EQ(tree.size(), keys.size() - expect_upper);
    for (Key k : keys) {
      const PrefixTree& holder = k >= boundary ? upper : tree;
      const PrefixTree& non_holder = k >= boundary ? tree : upper;
      EXPECT_EQ(holder.Lookup(k), std::optional<Value>(k));
      EXPECT_EQ(non_holder.Lookup(k), std::nullopt);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PrefixTreeGeometryTest,
    ::testing::Values(Geometry{4, 16}, Geometry{8, 16}, Geometry{8, 32},
                      Geometry{8, 64}, Geometry{6, 30}, Geometry{10, 40},
                      Geometry{16, 32}, Geometry{1, 8}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.prefix_bits) + "k" +
             std::to_string(info.param.key_bits);
    });

}  // namespace
}  // namespace eris::storage
