// Tests for the latch-free LLAMA-style double incoming buffer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "routing/incoming_buffer.h"

namespace eris::routing {
namespace {

std::vector<uint8_t> Record(uint64_t tag, size_t bytes) {
  std::vector<uint8_t> r(bytes, 0);
  std::memcpy(r.data(), &tag, sizeof(tag));
  return r;
}

TEST(DescriptorTest, BitLayout) {
  uint64_t d = descriptor::Make(true, 5, 1000);
  EXPECT_TRUE(descriptor::Active(d));
  EXPECT_EQ(descriptor::Writers(d), 5u);
  EXPECT_EQ(descriptor::Offset(d), 1000u);
  d = descriptor::Make(false, 0, 0);
  EXPECT_FALSE(descriptor::Active(d));
  EXPECT_EQ(descriptor::Writers(d), 0u);
}

TEST(DescriptorTest, MaxFieldValues) {
  uint64_t d = descriptor::Make(true, (1u << 31) - 1, ~0u);
  EXPECT_EQ(descriptor::Writers(d), (1u << 31) - 1);
  EXPECT_EQ(descriptor::Offset(d), ~0u);
  EXPECT_TRUE(descriptor::Active(d));
}

TEST(IncomingBufferTest, WriteDrainRoundTrip) {
  IncomingBufferPair buf(1024);
  auto rec = Record(0xDEAD, 64);
  EXPECT_TRUE(buf.TryWrite(rec));
  size_t drained = buf.Drain([&](std::span<const uint8_t> region) {
    ASSERT_EQ(region.size(), 64u);
    uint64_t tag;
    std::memcpy(&tag, region.data(), 8);
    EXPECT_EQ(tag, 0xDEADu);
  });
  EXPECT_EQ(drained, 64u);
}

TEST(IncomingBufferTest, EmptyDrainIsEmpty) {
  IncomingBufferPair buf(1024);
  size_t drained =
      buf.Drain([&](std::span<const uint8_t> region) { EXPECT_TRUE(region.empty()); });
  EXPECT_EQ(drained, 0u);
}

TEST(IncomingBufferTest, RejectsWhenFull) {
  IncomingBufferPair buf(128);
  EXPECT_TRUE(buf.TryWrite(Record(1, 64)));
  EXPECT_TRUE(buf.TryWrite(Record(2, 64)));
  EXPECT_FALSE(buf.TryWrite(Record(3, 64)));  // full
  // After a drain the other buffer accepts writes again.
  buf.Drain([](std::span<const uint8_t>) {});
  EXPECT_TRUE(buf.TryWrite(Record(3, 64)));
}

TEST(IncomingBufferTest, PendingBytesTracksWritableBuffer) {
  IncomingBufferPair buf(1024);
  EXPECT_EQ(buf.PendingBytes(), 0u);
  buf.TryWrite(Record(1, 128));
  EXPECT_EQ(buf.PendingBytes(), 128u);
  buf.Drain([](std::span<const uint8_t>) {});
  EXPECT_EQ(buf.PendingBytes(), 0u);
}

TEST(IncomingBufferTest, GatherConcatenatesPieces) {
  IncomingBufferPair buf(1024);
  auto a = Record(1, 24);
  auto b = Record(2, 40);
  std::vector<std::span<const uint8_t>> pieces{a, b};
  EXPECT_TRUE(buf.TryWriteGather(pieces));
  buf.Drain([&](std::span<const uint8_t> region) {
    ASSERT_EQ(region.size(), 64u);
    uint64_t t1, t2;
    std::memcpy(&t1, region.data(), 8);
    std::memcpy(&t2, region.data() + 24, 8);
    EXPECT_EQ(t1, 1u);
    EXPECT_EQ(t2, 2u);
  });
}

TEST(IncomingBufferTest, AlternatingBuffersPreserveData) {
  IncomingBufferPair buf(4096);
  uint64_t next_tag = 0;
  uint64_t expect_tag = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(buf.TryWrite(Record(next_tag++, 64)));
    }
    buf.Drain([&](std::span<const uint8_t> region) {
      for (size_t pos = 0; pos < region.size(); pos += 64) {
        uint64_t tag;
        std::memcpy(&tag, region.data() + pos, 8);
        EXPECT_EQ(tag, expect_tag++);
      }
    });
  }
  EXPECT_EQ(expect_tag, next_tag);
}

TEST(IncomingBufferTest, ConcurrentWritersLoseNothing) {
  IncomingBufferPair buf(1 << 16);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> written{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        auto rec = Record(static_cast<uint64_t>(w) << 32 | i, 64);
        while (!buf.TryWrite(rec)) std::this_thread::yield();
        written.fetch_add(1);
      }
    });
  }
  uint64_t drained_records = 0;
  std::vector<int> last_seen(kWriters, -1);
  while (true) {
    buf.Drain([&](std::span<const uint8_t> region) {
      for (size_t pos = 0; pos < region.size(); pos += 64) {
        uint64_t tag;
        std::memcpy(&tag, region.data() + pos, 8);
        int w = static_cast<int>(tag >> 32);
        int seq = static_cast<int>(tag & 0xFFFFFFFF);
        // Per-writer FIFO within the stream.
        EXPECT_GT(seq, last_seen[w]);
        last_seen[w] = seq;
        ++drained_records;
      }
    });
    if (drained_records == kWriters * kPerWriter) break;
    if (stop.load()) break;
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(drained_records,
            static_cast<uint64_t>(kWriters) * kPerWriter);
}

TEST(IncomingBufferTest, CapacityRoundedUp) {
  IncomingBufferPair buf(100);
  EXPECT_GE(buf.capacity(), 100u);
  EXPECT_EQ(buf.capacity() % 8, 0u);
}

}  // namespace
}  // namespace eris::routing
