// Tests for the latch-free LLAMA-style double incoming buffer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "routing/incoming_buffer.h"

namespace eris::routing {
namespace {

std::vector<uint8_t> Record(uint64_t tag, size_t bytes) {
  std::vector<uint8_t> r(bytes, 0);
  std::memcpy(r.data(), &tag, sizeof(tag));
  return r;
}

TEST(DescriptorTest, BitLayout) {
  uint64_t d = descriptor::Make(true, 5, 1000);
  EXPECT_TRUE(descriptor::Active(d));
  EXPECT_EQ(descriptor::Writers(d), 5u);
  EXPECT_EQ(descriptor::Offset(d), 1000u);
  d = descriptor::Make(false, 0, 0);
  EXPECT_FALSE(descriptor::Active(d));
  EXPECT_EQ(descriptor::Writers(d), 0u);
}

TEST(DescriptorTest, MaxFieldValues) {
  uint64_t d = descriptor::Make(true, (1u << 31) - 1, ~0u);
  EXPECT_EQ(descriptor::Writers(d), (1u << 31) - 1);
  EXPECT_EQ(descriptor::Offset(d), ~0u);
  EXPECT_TRUE(descriptor::Active(d));
}

TEST(IncomingBufferTest, WriteDrainRoundTrip) {
  IncomingBufferPair buf(1024);
  auto rec = Record(0xDEAD, 64);
  EXPECT_TRUE(buf.TryWrite(rec));
  size_t drained = buf.Drain([&](std::span<const uint8_t> region) {
    ASSERT_EQ(region.size(), 64u);
    uint64_t tag;
    std::memcpy(&tag, region.data(), 8);
    EXPECT_EQ(tag, 0xDEADu);
  });
  EXPECT_EQ(drained, 64u);
}

TEST(IncomingBufferTest, EmptyDrainIsEmpty) {
  IncomingBufferPair buf(1024);
  size_t drained =
      buf.Drain([&](std::span<const uint8_t> region) { EXPECT_TRUE(region.empty()); });
  EXPECT_EQ(drained, 0u);
}

TEST(IncomingBufferTest, RejectsWhenFull) {
  IncomingBufferPair buf(128);
  EXPECT_TRUE(buf.TryWrite(Record(1, 64)));
  EXPECT_TRUE(buf.TryWrite(Record(2, 64)));
  EXPECT_FALSE(buf.TryWrite(Record(3, 64)));  // full
  // After a drain the other buffer accepts writes again.
  buf.Drain([](std::span<const uint8_t>) {});
  EXPECT_TRUE(buf.TryWrite(Record(3, 64)));
}

TEST(IncomingBufferTest, PendingBytesTracksWritableBuffer) {
  IncomingBufferPair buf(1024);
  EXPECT_EQ(buf.PendingBytes(), 0u);
  buf.TryWrite(Record(1, 128));
  EXPECT_EQ(buf.PendingBytes(), 128u);
  buf.Drain([](std::span<const uint8_t>) {});
  EXPECT_EQ(buf.PendingBytes(), 0u);
}

TEST(IncomingBufferTest, GatherConcatenatesPieces) {
  IncomingBufferPair buf(1024);
  auto a = Record(1, 24);
  auto b = Record(2, 40);
  std::vector<std::span<const uint8_t>> pieces{a, b};
  EXPECT_TRUE(buf.TryWriteGather(pieces));
  buf.Drain([&](std::span<const uint8_t> region) {
    ASSERT_EQ(region.size(), 64u);
    uint64_t t1, t2;
    std::memcpy(&t1, region.data(), 8);
    std::memcpy(&t2, region.data() + 24, 8);
    EXPECT_EQ(t1, 1u);
    EXPECT_EQ(t2, 2u);
  });
}

TEST(IncomingBufferTest, AlternatingBuffersPreserveData) {
  IncomingBufferPair buf(4096);
  uint64_t next_tag = 0;
  uint64_t expect_tag = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(buf.TryWrite(Record(next_tag++, 64)));
    }
    buf.Drain([&](std::span<const uint8_t> region) {
      for (size_t pos = 0; pos < region.size(); pos += 64) {
        uint64_t tag;
        std::memcpy(&tag, region.data() + pos, 8);
        EXPECT_EQ(tag, expect_tag++);
      }
    });
  }
  EXPECT_EQ(expect_tag, next_tag);
}

TEST(IncomingBufferTest, ConcurrentWritersLoseNothing) {
  IncomingBufferPair buf(1 << 16);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> written{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        auto rec = Record(static_cast<uint64_t>(w) << 32 | i, 64);
        while (!buf.TryWrite(rec)) std::this_thread::yield();
        written.fetch_add(1);
      }
    });
  }
  uint64_t drained_records = 0;
  std::vector<int> last_seen(kWriters, -1);
  while (true) {
    buf.Drain([&](std::span<const uint8_t> region) {
      for (size_t pos = 0; pos < region.size(); pos += 64) {
        uint64_t tag;
        std::memcpy(&tag, region.data() + pos, 8);
        int w = static_cast<int>(tag >> 32);
        int seq = static_cast<int>(tag & 0xFFFFFFFF);
        // Per-writer FIFO within the stream.
        EXPECT_GT(seq, last_seen[w]);
        last_seen[w] = seq;
        ++drained_records;
      }
    });
    if (drained_records == kWriters * kPerWriter) break;
    if (stop.load()) break;
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(drained_records,
            static_cast<uint64_t>(kWriters) * kPerWriter);
}

TEST(IncomingBufferTest, CapacityRoundedUp) {
  IncomingBufferPair buf(100);
  EXPECT_GE(buf.capacity(), 100u);
  EXPECT_EQ(buf.capacity() % 8, 0u);
}

TEST(IncomingBufferTest, OffsetSaturatesExactlyAtCapacity) {
  // The offset field must admit reservations that land exactly on the
  // capacity boundary and reject the first byte beyond it — off-by-one
  // here either wastes the last slot or corrupts the neighbor buffer.
  IncomingBufferPair buf(128);
  ASSERT_EQ(buf.capacity(), 128u);
  EXPECT_TRUE(buf.TryWrite(Record(1, 112)));
  EXPECT_FALSE(buf.TryWrite(Record(2, 24)));  // 112 + 24 > 128
  EXPECT_TRUE(buf.TryWrite(Record(3, 16)));   // lands exactly at capacity
  EXPECT_FALSE(buf.TryWrite(Record(4, 8)));   // saturated
  size_t drained = buf.Drain([&](std::span<const uint8_t> region) {
    EXPECT_EQ(region.size(), 128u);
  });
  EXPECT_EQ(drained, 128u);
  // A single whole-capacity reservation on the fresh buffer also fits.
  EXPECT_TRUE(buf.TryWrite(Record(5, 128)));
  EXPECT_FALSE(buf.TryWrite(Record(6, 8)));
}

#if defined(ERIS_FAULT_INJECTION) && ERIS_FAULT_INJECTION

TEST(IncomingBufferTest, DrainWaitsForWriterOnDeactivatedBuffer) {
  // A writer that reserved before the swap but has not finished copying
  // holds a writer-count slot on the deactivated buffer; Drain must spin
  // until it releases, never expose a half-copied region. The hook parks
  // the writer between its CAS and its memcpy.
  IncomingBufferPair buf(1024);
  std::atomic<bool> writer_parked{false};
  std::atomic<bool> release_writer{false};
  std::atomic<bool> one_shot{true};
  fi::FaultInjector::Global().Reset();
  fi::FaultInjector::Global().SetHook(fi::Point::kIncomingCopy, [&] {
    if (!one_shot.exchange(false)) return;
    writer_parked.store(true);
    while (!release_writer.load()) std::this_thread::yield();
  });

  std::thread writer([&] { EXPECT_TRUE(buf.TryWrite(Record(0xFEED, 64))); });
  while (!writer_parked.load()) std::this_thread::yield();

  std::atomic<bool> drained{false};
  uint64_t got = 0;
  std::thread owner([&] {
    buf.Drain([&](std::span<const uint8_t> region) {
      ASSERT_EQ(region.size(), 64u);
      std::memcpy(&got, region.data(), 8);
    });
    drained.store(true);
  });
  // The owner has deactivated the buffer but the parked writer still holds
  // its slot: Drain may not complete.
  for (int i = 0; i < 50 && !drained.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_FALSE(drained.load()) << "Drain returned with a writer in flight";
  release_writer.store(true);
  writer.join();
  owner.join();
  EXPECT_TRUE(drained.load());
  EXPECT_EQ(got, 0xFEEDu) << "drained region missed the in-flight copy";
  EXPECT_GT(fi::FaultInjector::Global()
                .Stats(fi::Point::kIncomingDrainWait)
                .visits,
            0u)
      << "owner never entered the writer-drain spin";
  fi::FaultInjector::Global().Reset();
}

TEST(IncomingBufferTest, CasFailureRetryPreservesBothWrites) {
  // Force the descriptor CAS to fail deterministically: the hook fires
  // between the outer writer's descriptor load and its CAS and performs a
  // complete competing write, so the outer CAS sees a changed descriptor
  // and must take the retry path. Both records must survive, competing
  // write first.
  IncomingBufferPair buf(1024);
  std::atomic<int> competing_writes{0};
  std::atomic<bool> one_shot{true};
  fi::FaultInjector::Global().Reset();
  fi::FaultInjector::Global().SetHook(fi::Point::kIncomingReserve, [&] {
    // One-shot doubles as the reentrancy guard: the competing TryWrite
    // below passes this point again.
    if (!one_shot.exchange(false)) return;
    auto rec = Record(0xB0B, 64);
    EXPECT_TRUE(buf.TryWrite(rec));
    competing_writes.fetch_add(1);
  });

  EXPECT_TRUE(buf.TryWrite(Record(0xA11CE, 64)));
  uint64_t reserve_visits =
      fi::FaultInjector::Global().Stats(fi::Point::kIncomingReserve).visits;
  fi::FaultInjector::Global().Reset();
  EXPECT_EQ(competing_writes.load(), 1);
  // Outer first attempt + hooked competing write + outer retry.
  EXPECT_GE(reserve_visits, 3u) << "outer writer never retried its CAS";

  std::vector<uint64_t> tags;
  buf.Drain([&](std::span<const uint8_t> region) {
    for (size_t pos = 0; pos < region.size(); pos += 64) {
      uint64_t tag;
      std::memcpy(&tag, region.data() + pos, 8);
      tags.push_back(tag);
    }
  });
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0], 0xB0Bu);    // competing write reserved first
  EXPECT_EQ(tags[1], 0xA11CEu);  // retried write landed after it
}

#endif  // ERIS_FAULT_INJECTION

}  // namespace
}  // namespace eris::routing
