// End-to-end tests of the Engine façade in both execution modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"

namespace eris::core {
namespace {

using routing::KeyValue;
using storage::Key;
using storage::ObjectId;
using storage::Value;

EngineOptions SimOptionsFor(uint32_t nodes, uint32_t cores) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(nodes, cores);
  opts.mode = ExecutionMode::kSimulated;
  return opts;
}

class EngineModeTest : public ::testing::TestWithParam<ExecutionMode> {
 protected:
  EngineOptions MakeOptions() {
    EngineOptions opts;
    opts.topology = numa::Topology::Flat(2, 2);
    opts.mode = GetParam();
    return opts;
  }
};

TEST_P(EngineModeTest, InsertLookupRoundTrip) {
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateIndex("kv", 1u << 20,
                                    {.prefix_bits = 8, .key_bits = 20});
  engine.Start();
  auto session = engine.CreateSession();

  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 10000; ++k) kvs.push_back({k * 7 % (1u << 20), k});
  uint64_t inserted = session->Insert(idx, kvs);
  // Keys collide modulo the domain; inserted <= kvs.size().
  EXPECT_GT(inserted, 0u);
  EXPECT_LE(inserted, kvs.size());

  std::vector<Key> keys;
  for (const KeyValue& kv : kvs) keys.push_back(kv.key);
  EXPECT_EQ(session->Lookup(idx, keys), keys.size());

  std::vector<Key> missing{1u << 19 | 12345, 999999};
  // These keys may or may not exist depending on the modulo pattern;
  // lookups on definitely-absent keys:
  std::vector<Key> absent;
  for (Key k = 0; k < 100; ++k) {
    Key candidate = (k * 7919 + 13) % (1u << 20);
    bool used = false;
    for (const KeyValue& kv : kvs) {
      if (kv.key == candidate) {
        used = true;
        break;
      }
    }
    if (!used) absent.push_back(candidate);
  }
  EXPECT_EQ(session->Lookup(idx, absent), 0u);
  engine.Stop();
}

TEST_P(EngineModeTest, LookupValuesReturnsPerKeyResults) {
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateIndex("kv", 1u << 16,
                                    {.prefix_bits = 4, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<KeyValue> kvs{{100, 1}, {200, 2}, {65000, 3}};
  session->Insert(idx, kvs);
  std::vector<Key> probe{100, 101, 200, 65000};
  auto results = session->LookupValues(idx, probe);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0], std::optional<Value>(1));
  EXPECT_EQ(results[1], std::nullopt);
  EXPECT_EQ(results[2], std::optional<Value>(2));
  EXPECT_EQ(results[3], std::optional<Value>(3));
  engine.Stop();
}

TEST_P(EngineModeTest, UpsertOverwrites) {
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateIndex("kv", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<KeyValue> kvs{{1, 10}, {2, 20}};
  EXPECT_EQ(session->Upsert(idx, kvs), 2u);  // both new
  std::vector<KeyValue> again{{1, 11}, {3, 30}};
  EXPECT_EQ(session->Upsert(idx, again), 1u);  // only key 3 is new
  auto results = session->LookupValues(idx, std::vector<Key>{1, 2, 3});
  EXPECT_EQ(results[0], std::optional<Value>(11));
  EXPECT_EQ(results[1], std::optional<Value>(20));
  EXPECT_EQ(results[2], std::optional<Value>(30));
  engine.Stop();
}

TEST_P(EngineModeTest, EraseRemovesKeys) {
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateIndex("kv", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 1000; ++k) kvs.push_back({k, k});
  session->Insert(idx, kvs);
  std::vector<Key> to_erase;
  for (Key k = 0; k < 1000; k += 2) to_erase.push_back(k);
  EXPECT_EQ(session->Erase(idx, to_erase), to_erase.size());
  std::vector<Key> all;
  for (Key k = 0; k < 1000; ++k) all.push_back(k);
  EXPECT_EQ(session->Lookup(idx, all), 500u);
  engine.Stop();
}

TEST_P(EngineModeTest, ColumnAppendAndScan) {
  Engine engine(MakeOptions());
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<Value> values;
  uint64_t expected_sum = 0;
  for (Value v = 1; v <= 20000; ++v) {
    values.push_back(v);
    expected_sum += v;
  }
  session->Append(col, values);
  ScanResult full = session->ScanColumn(col);
  EXPECT_EQ(full.rows, values.size());
  EXPECT_EQ(full.sum, expected_sum);

  // Filtered scan.
  ScanResult filtered = session->ScanColumn(col, 1, 100);
  EXPECT_EQ(filtered.rows, 100u);
  EXPECT_EQ(filtered.sum, 100u * 101 / 2);
  engine.Stop();
}

TEST_P(EngineModeTest, IndexRangeScan) {
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateIndex("kv", 1u << 20,
                                    {.prefix_bits = 8, .key_bits = 20});
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 50000; ++k) kvs.push_back({k, 1});
  session->Insert(idx, kvs);
  ScanResult r = session->ScanIndexRange(idx, 1000, 2000);
  EXPECT_EQ(r.rows, 1000u);
  EXPECT_EQ(r.sum, 1000u);
  // Scan crossing many partitions.
  ScanResult all = session->ScanIndexRange(idx, 0, 50000);
  EXPECT_EQ(all.rows, 50000u);
  engine.Stop();
}

TEST_P(EngineModeTest, FenceCompletes) {
  Engine engine(MakeOptions());
  engine.CreateIndex("kv", 1u << 16, {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();
  session->Fence();  // must not hang
  engine.Stop();
}

INSTANTIATE_TEST_SUITE_P(Modes, EngineModeTest,
                         ::testing::Values(ExecutionMode::kSimulated,
                                           ExecutionMode::kThreads),
                         [](const auto& info) {
                           return info.param == ExecutionMode::kSimulated
                                      ? "Simulated"
                                      : "Threads";
                         });

TEST(EngineLifecycleTest, StopIsIdempotentAndRestartWorks) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kThreads;
  Engine engine(opts);
  ObjectId idx = engine.CreateIndex("kv", 1u << 10,
                                    {.prefix_bits = 5, .key_bits = 10});
  engine.Start();
  {
    auto session = engine.CreateSession();
    std::vector<KeyValue> kvs{{1, 10}};
    session->Insert(idx, kvs);
  }
  engine.Stop();
  engine.Stop();  // idempotent
  EXPECT_FALSE(engine.started());
  // Restart: data survives, new commands process.
  engine.Start();
  auto session = engine.CreateSession();
  EXPECT_EQ(session->Lookup(idx, std::vector<Key>{1}), 1u);
  std::vector<KeyValue> more{{2, 20}};
  session->Insert(idx, more);
  EXPECT_EQ(session->Lookup(idx, std::vector<Key>{2}), 1u);
  engine.Stop();
}

TEST(EngineConfigTest, NumAeusOverride) {
  EngineOptions opts = SimOptionsFor(2, 4);
  opts.num_aeus = 3;  // fewer AEUs than cores
  Engine engine(opts);
  EXPECT_EQ(engine.num_aeus(), 3u);
  ObjectId idx = engine.CreateIndex("kv", 300,
                                    {.prefix_bits = 5, .key_bits = 10});
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 300; ++k) kvs.push_back({k, k});
  EXPECT_EQ(session->Insert(idx, kvs), 300u);
  // Exactly three partitions share the domain.
  uint64_t total = 0;
  for (routing::AeuId a = 0; a < 3; ++a) {
    total += engine.aeu(a).partition(idx)->tuple_count();
    EXPECT_GT(engine.aeu(a).partition(idx)->tuple_count(), 0u);
  }
  EXPECT_EQ(total, 300u);
  engine.Stop();
}

TEST(EngineKeyedHashObjectTest, RangeScanOverHashContainer) {
  // A kHash *container* with range *partitioning* (the paper's pairing for
  // hash tables): range scans remain answerable, unordered per partition.
  EngineOptions opts = SimOptionsFor(2, 2);
  Engine engine(opts);
  ObjectId ht = engine.CreateHashTable("ht", 1u << 12);
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 4096; ++k) kvs.push_back({k, 1});
  session->Insert(ht, kvs);
  ScanResult r = session->ScanIndexRange(ht, 100, 1100);
  EXPECT_EQ(r.rows, 1000u);
  engine.Stop();
}

TEST(EngineSessionTest, SessionsRoundRobinOverNodes) {
  EngineOptions opts = SimOptionsFor(4, 1);
  opts.sim.enabled = true;
  Engine engine(opts);
  ObjectId col = engine.CreateColumn("c");
  engine.Start();
  // Four sessions on four nodes: their routed appends originate from all
  // nodes (observable through destination-spread traffic being nonzero on
  // several links once sources differ).
  std::vector<std::unique_ptr<Engine::Session>> sessions;
  for (int i = 0; i < 4; ++i) sessions.push_back(engine.CreateSession());
  for (auto& s : sessions) s->Append(col, std::vector<Value>{1, 2, 3});
  ScanResult r = sessions[0]->ScanColumn(col);
  EXPECT_EQ(r.rows, 12u);
  engine.Stop();
}

TEST(EngineStatsTest, ReportMentionsObjectsAndCounters) {
  EngineOptions opts = SimOptionsFor(2, 2);
  Engine engine(opts);
  engine.CreateIndex("orders", 1u << 16, {.prefix_bits = 8, .key_bits = 16});
  engine.CreateColumn("amounts");
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<KeyValue> kvs{{1, 1}, {2, 2}};
  session->Insert(0, kvs);
  std::string report = engine.StatsReport();
  EXPECT_NE(report.find("orders"), std::string::npos);
  EXPECT_NE(report.find("amounts"), std::string::npos);
  EXPECT_NE(report.find("2 tuples"), std::string::npos);
  EXPECT_NE(report.find("commands processed"), std::string::npos);
  engine.Stop();
}

TEST(EngineSimTest, SimulatedCostsAccumulate) {
  EngineOptions opts = SimOptionsFor(4, 2);
  opts.sim.enabled = true;
  Engine engine(opts);
  ObjectId idx = engine.CreateIndex("kv", 1u << 20,
                                    {.prefix_bits = 8, .key_bits = 20});
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 20000; ++k) kvs.push_back({k * 13 % (1u << 20), k});
  session->Upsert(idx, kvs);
  EXPECT_GT(engine.resource_usage().CriticalTimeNs(), 0.0);
  EXPECT_GT(engine.resource_usage().TotalMemCtrlBytes(), 0u);
  engine.Stop();
}

TEST(EngineSimTest, LargerMachineFinishesFasterOnSameWork) {
  // Scalability in simulated time: 8 nodes must beat 2 nodes.
  double times[2];
  int i = 0;
  for (uint32_t nodes : {2u, 8u}) {
    EngineOptions opts;
    opts.topology = numa::Topology::SgiMachine(nodes);
    opts.mode = ExecutionMode::kSimulated;
    opts.sim.enabled = true;
    Engine engine(opts);
    ObjectId idx = engine.CreateIndex("kv", 1u << 22,
                                      {.prefix_bits = 8, .key_bits = 22});
    engine.Start();
    auto session = engine.CreateSession();
    std::vector<KeyValue> kvs;
    Xoshiro256 rng(7);
    for (int k = 0; k < 50000; ++k) {
      Key key = rng.NextBounded(1u << 22);
      kvs.push_back({key, 1});
    }
    session->Upsert(idx, kvs);
    engine.resource_usage().Reset();
    std::vector<Key> probes;
    for (int k = 0; k < 100000; ++k) probes.push_back(rng.NextBounded(1u << 22));
    session->Lookup(idx, probes);
    times[i++] = engine.resource_usage().CriticalTimeNs();
    engine.Stop();
  }
  EXPECT_LT(times[1], times[0]);
}

}  // namespace
}  // namespace eris::core
