// Tests for idle-time storage maintenance (MVCC GC) and the snapshot
// tracker — the paper's future-work item on using AEU idle time.
#include <gtest/gtest.h>

#include "core/engine.h"

namespace eris::core {
namespace {

using storage::ObjectId;
using storage::Value;

TEST(SnapshotTrackerTest, MinActiveFallsBackWhenEmpty) {
  SnapshotTracker tracker;
  EXPECT_EQ(tracker.MinActive(42), 42u);
  EXPECT_EQ(tracker.active_count(), 0u);
}

TEST(SnapshotTrackerTest, TracksOldestPin) {
  SnapshotTracker tracker;
  tracker.Register(10);
  tracker.Register(5);
  tracker.Register(20);
  EXPECT_EQ(tracker.MinActive(0), 5u);
  tracker.Unregister(5);
  EXPECT_EQ(tracker.MinActive(0), 10u);
  tracker.Unregister(10);
  tracker.Unregister(20);
  EXPECT_EQ(tracker.MinActive(7), 7u);
}

TEST(SnapshotTrackerTest, ReentrantPins) {
  SnapshotTracker tracker;
  tracker.Register(3);
  tracker.Register(3);
  tracker.Unregister(3);
  EXPECT_EQ(tracker.MinActive(0), 3u);  // still pinned once
  tracker.Unregister(3);
  EXPECT_EQ(tracker.MinActive(0), 0u);
}

TEST(SnapshotTrackerTest, RaiiPin) {
  SnapshotTracker tracker;
  {
    SnapshotTracker::Pin pin(&tracker, 9);
    EXPECT_EQ(tracker.MinActive(100), 9u);
  }
  EXPECT_EQ(tracker.MinActive(100), 100u);
}

TEST(MaintenanceTest, IdleLoopReclaimsDeadVersions) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kSimulated;
  Engine engine(opts);
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  auto session = engine.CreateSession();
  session->Append(col, std::vector<Value>(1000, 1));

  // Create undo versions directly on AEU 0's partition (single-writer
  // updates are an AEU-internal operation).
  storage::Partition* part = engine.aeu(0).partition(col);
  uint64_t tuples = part->tuple_count();
  ASSERT_GT(tuples, 0u);
  for (storage::TupleId tid = 0; tid < tuples; ++tid) {
    part->ColumnUpdate(tid, 2, engine.oracle().NextWriteTs());
  }
  EXPECT_EQ(part->mvcc_column()->undo_chains(), tuples);

  // Pump idle iterations until maintenance fires (every 64 idle passes).
  for (int i = 0; i < 300; ++i) engine.PumpAll();
  EXPECT_EQ(part->mvcc_column()->undo_chains(), 0u);
  EXPECT_GT(engine.aeu(0).loop_stats().maintenance_runs, 0u);
  EXPECT_EQ(engine.aeu(0).loop_stats().versions_reclaimed, tuples);

  // Data is still correct at the latest snapshot.
  ScanResult r = session->ScanColumn(col);
  EXPECT_EQ(r.rows, 1000u);
  engine.Stop();
}

TEST(MaintenanceTest, PinnedSnapshotBlocksReclamation) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 1);
  opts.mode = ExecutionMode::kSimulated;
  Engine engine(opts);
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  auto session = engine.CreateSession();
  session->Append(col, std::vector<Value>{10, 20, 30});

  storage::Partition* part = engine.aeu(0).partition(col);
  uint64_t old_snapshot = engine.oracle().ReadTs();
  SnapshotTracker::Pin pin(&engine.snapshots(), old_snapshot);
  part->ColumnUpdate(0, 99, engine.oracle().NextWriteTs());
  ASSERT_EQ(part->mvcc_column()->undo_chains(), 1u);

  for (int i = 0; i < 300; ++i) engine.PumpAll();
  // The pinned snapshot still needs the old version.
  EXPECT_EQ(part->mvcc_column()->undo_chains(), 1u);
  EXPECT_EQ(part->mvcc_column()->Read(0, old_snapshot), 10u);
  engine.Stop();
}

TEST(MaintenanceTest, ThreadModeReclaimsEventually) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kThreads;
  Engine engine(opts);
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  auto session = engine.CreateSession();
  session->Append(col, std::vector<Value>(100, 1));
  session->Fence();
  storage::Partition* part = engine.aeu(0).partition(col);
  uint64_t tuples = part->tuple_count();
  // NOTE: updating from the test thread races with the owning AEU only if
  // the AEU touches the same column concurrently; the engine is idle here.
  for (storage::TupleId tid = 0; tid < tuples; ++tid) {
    part->ColumnUpdate(tid, 2, engine.oracle().NextWriteTs());
  }
  // The idle AEU threads run maintenance on their own.
  for (int spin = 0; spin < 200; ++spin) {
    if (part->mvcc_column()->undo_chains() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(part->mvcc_column()->undo_chains(), 0u);
  engine.Stop();
}

}  // namespace
}  // namespace eris::core
