// Tests for the MESIF directory cache simulator.
#include <gtest/gtest.h>

#include "sim/cache_sim.h"

namespace eris::sim {
namespace {

CacheSimConfig SmallCache() {
  CacheSimConfig c;
  c.capacity_bytes = 4096;  // 64 lines
  c.associativity = 4;
  c.line_bytes = 64;
  return c;
}

TEST(CacheSimTest, ColdMissThenHit) {
  CacheSim sim(1, SmallCache());
  AccessResult r1 = sim.Read(0, 0x1000);
  EXPECT_FALSE(r1.hit);
  AccessResult r2 = sim.Read(0, 0x1000);
  EXPECT_TRUE(r2.hit);
  EXPECT_EQ(r2.state_at_hit, LineState::kExclusive);
  EXPECT_EQ(sim.stats(0).read_misses, 1u);
  EXPECT_EQ(sim.stats(0).read_hits, 1u);
}

TEST(CacheSimTest, SameLineDifferentOffsetsHit) {
  CacheSim sim(1, SmallCache());
  sim.Read(0, 0x1000);
  EXPECT_TRUE(sim.Read(0, 0x1004).hit);
  EXPECT_TRUE(sim.Read(0, 0x103F).hit);
  EXPECT_FALSE(sim.Read(0, 0x1040).hit);  // next line
}

TEST(CacheSimTest, SecondReaderGetsForwardFirstDowngradesToShared) {
  CacheSim sim(2, SmallCache());
  sim.Read(0, 0x2000);  // cache 0: E
  sim.Read(1, 0x2000);  // cache 1 misses, gets F; cache 0 downgrades to S
  AccessResult r0 = sim.Read(0, 0x2000);
  AccessResult r1 = sim.Read(1, 0x2000);
  EXPECT_TRUE(r0.hit);
  EXPECT_EQ(r0.state_at_hit, LineState::kShared);
  EXPECT_TRUE(r1.hit);
  EXPECT_EQ(r1.state_at_hit, LineState::kForward);
}

TEST(CacheSimTest, WriteUpgradesInvalidatesOthers) {
  CacheSim sim(2, SmallCache());
  sim.Read(0, 0x3000);
  sim.Read(1, 0x3000);
  AccessResult w = sim.Write(0, 0x3000);  // hit on S -> upgrade to M
  EXPECT_TRUE(w.hit);
  EXPECT_EQ(sim.stats(1).invalidations_received, 1u);
  // Cache 1 must miss now.
  EXPECT_FALSE(sim.Read(1, 0x3000).hit);
}

TEST(CacheSimTest, WriteMissRfoInvalidates) {
  CacheSim sim(2, SmallCache());
  sim.Read(1, 0x4000);
  AccessResult w = sim.Write(0, 0x4000);
  EXPECT_FALSE(w.hit);
  EXPECT_EQ(sim.stats(1).invalidations_received, 1u);
  AccessResult r = sim.Read(0, 0x4000);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.state_at_hit, LineState::kModified);
}

TEST(CacheSimTest, ModifiedWritebackOnRemoteRead) {
  CacheSim sim(2, SmallCache());
  sim.Write(0, 0x5000);
  sim.Read(1, 0x5000);  // forces writeback + downgrade of cache 0
  EXPECT_EQ(sim.stats(0).writebacks, 1u);
  AccessResult r0 = sim.Read(0, 0x5000);
  EXPECT_EQ(r0.state_at_hit, LineState::kShared);
}

TEST(CacheSimTest, LruEvictionWithinSet) {
  CacheSimConfig cfg;
  cfg.capacity_bytes = 4 * 64;  // one set, 4 ways
  cfg.associativity = 4;
  cfg.line_bytes = 64;
  CacheSim sim(1, cfg);
  for (uint64_t i = 0; i < 4; ++i) sim.Read(0, i * 64);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(sim.Read(0, i * 64).hit);
  sim.Read(0, 4 * 64);                   // evicts line 0 (LRU)
  EXPECT_FALSE(sim.Read(0, 0).hit);      // line 0 gone
  EXPECT_TRUE(sim.Read(0, 4 * 64).hit);  // newcomer resident
}

TEST(CacheSimTest, EvictionRemovesDirectoryEntry) {
  CacheSimConfig cfg;
  cfg.capacity_bytes = 4 * 64;
  cfg.associativity = 4;
  cfg.line_bytes = 64;
  CacheSim sim(2, cfg);
  sim.Read(0, 0);
  for (uint64_t i = 1; i <= 4; ++i) sim.Read(0, i * 64);  // evict line 0
  // Cache 1 reading line 0 must get Exclusive (no other holder).
  sim.Read(1, 0);
  EXPECT_EQ(sim.Read(1, 0).state_at_hit, LineState::kExclusive);
}

TEST(CacheSimTest, PrivateWorkingSetsHitModifiedExclusive) {
  // The ERIS pattern: every cache works on disjoint lines.
  CacheSim sim(4, SmallCache());
  for (uint32_t c = 0; c < 4; ++c) {
    uint64_t base = c * 0x10000;
    for (int rep = 0; rep < 10; ++rep) {
      for (uint64_t i = 0; i < 8; ++i) sim.Read(c, base + i * 64);
    }
  }
  double me = sim.HitFraction({LineState::kModified, LineState::kExclusive});
  EXPECT_GT(me, 0.95);
}

TEST(CacheSimTest, SharedWorkingSetHitsSharedForward) {
  // The shared-index pattern: all caches read the same hot lines.
  CacheSim sim(4, SmallCache());
  for (int rep = 0; rep < 10; ++rep) {
    for (uint32_t c = 0; c < 4; ++c) {
      for (uint64_t i = 0; i < 8; ++i) sim.Read(c, i * 64);
    }
  }
  double sf = sim.HitFraction({LineState::kShared, LineState::kForward});
  EXPECT_GT(sf, 0.7);
}

TEST(CacheSimTest, TotalStatsSumCaches) {
  CacheSim sim(2, SmallCache());
  sim.Read(0, 0);
  sim.Read(1, 64);
  sim.Read(0, 0);
  CacheStats total = sim.TotalStats();
  EXPECT_EQ(total.read_misses, 2u);
  EXPECT_EQ(total.read_hits, 1u);
  EXPECT_EQ(total.accesses(), 3u);
  EXPECT_NEAR(total.miss_ratio(), 2.0 / 3.0, 1e-9);
}

TEST(CacheSimTest, ResetStatsKeepsContents) {
  CacheSim sim(1, SmallCache());
  sim.Read(0, 0x100);
  sim.ResetStats();
  EXPECT_EQ(sim.stats(0).accesses(), 0u);
  EXPECT_TRUE(sim.Read(0, 0x100).hit);  // line still cached
}

}  // namespace
}  // namespace eris::sim
