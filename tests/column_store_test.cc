// Tests for the segmented column store.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.h"
#include "numa/memory_manager.h"
#include "storage/column_store.h"

namespace eris::storage {
namespace {

class ColumnStoreTest : public ::testing::Test {
 protected:
  numa::NodeMemoryManager mm_{0};
};

TEST_F(ColumnStoreTest, AppendGet) {
  ColumnStore col(&mm_);
  EXPECT_TRUE(col.empty());
  EXPECT_EQ(col.Append(10), 0u);
  EXPECT_EQ(col.Append(20), 1u);
  EXPECT_EQ(col.size(), 2u);
  EXPECT_EQ(col.Get(0), 10u);
  EXPECT_EQ(col.Get(1), 20u);
}

TEST_F(ColumnStoreTest, SetOverwrites) {
  ColumnStore col(&mm_);
  col.Append(1);
  col.Set(0, 99);
  EXPECT_EQ(col.Get(0), 99u);
}

TEST_F(ColumnStoreTest, CrossesSegmentBoundaries) {
  ColumnStore col(&mm_);
  const uint64_t n = ColumnStore::kSegmentCapacity * 2 + 17;
  for (uint64_t i = 0; i < n; ++i) col.Append(i);
  EXPECT_EQ(col.size(), n);
  EXPECT_EQ(col.num_segments(), 3u);
  for (uint64_t i = 0; i < n; i += 997) EXPECT_EQ(col.Get(i), i);
  EXPECT_EQ(col.Get(n - 1), n - 1);
}

TEST_F(ColumnStoreTest, AppendBatchMatchesIndividual) {
  ColumnStore a(&mm_);
  ColumnStore b(&mm_);
  std::vector<Value> values(150000);
  Xoshiro256 rng(5);
  for (auto& v : values) v = rng.Next();
  for (Value v : values) a.Append(v);
  b.AppendBatch(values);
  ASSERT_EQ(a.size(), b.size());
  for (uint64_t i = 0; i < a.size(); i += 1009) EXPECT_EQ(a.Get(i), b.Get(i));
}

TEST_F(ColumnStoreTest, ScanSumAndCount) {
  ColumnStore col(&mm_);
  for (Value v = 1; v <= 100; ++v) col.Append(v);
  EXPECT_EQ(col.ScanSum(1, 100), 5050u);
  EXPECT_EQ(col.ScanSum(10, 20), (10u + 20u) * 11 / 2);
  EXPECT_EQ(col.ScanCount(50, 59), 10u);
  EXPECT_EQ(col.ScanCount(1000, 2000), 0u);
}

TEST_F(ColumnStoreTest, ScanCollectGathersTids) {
  ColumnStore col(&mm_);
  for (Value v = 0; v < 100; ++v) col.Append(v % 10);
  std::vector<TupleId> out;
  EXPECT_EQ(col.ScanCollect(3, 3, &out), 10u);
  for (TupleId tid : out) EXPECT_EQ(col.Get(tid), 3u);
}

TEST_F(ColumnStoreTest, SplitTailAligned) {
  ColumnStore col(&mm_);
  const uint64_t cap = ColumnStore::kSegmentCapacity;
  for (uint64_t i = 0; i < cap * 3; ++i) col.Append(i);
  ColumnStore tail = col.SplitTail(cap);
  EXPECT_EQ(col.size(), cap);
  EXPECT_EQ(tail.size(), cap * 2);
  EXPECT_EQ(tail.Get(0), cap);
  EXPECT_EQ(col.Get(cap - 1), cap - 1);
}

TEST_F(ColumnStoreTest, SplitTailUnaligned) {
  ColumnStore col(&mm_);
  for (uint64_t i = 0; i < 100000; ++i) col.Append(i);
  ColumnStore tail = col.SplitTail(12345);
  EXPECT_EQ(col.size(), 12345u);
  EXPECT_EQ(tail.size(), 100000u - 12345u);
  EXPECT_EQ(tail.Get(0), 12345u);
  EXPECT_EQ(tail.Get(tail.size() - 1), 99999u);
}

TEST_F(ColumnStoreTest, SplitTailPastEndIsEmpty) {
  ColumnStore col(&mm_);
  col.Append(1);
  ColumnStore tail = col.SplitTail(10);
  EXPECT_TRUE(tail.empty());
  EXPECT_EQ(col.size(), 1u);
}

TEST_F(ColumnStoreTest, AbsorbStructuralWhenAligned) {
  ColumnStore a(&mm_);
  ColumnStore b(&mm_);
  const uint64_t cap = ColumnStore::kSegmentCapacity;
  for (uint64_t i = 0; i < cap; ++i) a.Append(i);
  for (uint64_t i = 0; i < 100; ++i) b.Append(1000000 + i);
  a.Absorb(std::move(b));
  EXPECT_EQ(a.size(), cap + 100);
  EXPECT_EQ(a.Get(cap), 1000000u);
  // Appends continue correctly after a structural absorb.
  a.Append(42);
  EXPECT_EQ(a.Get(a.size() - 1), 42u);
}

TEST_F(ColumnStoreTest, AbsorbCopiesWhenUnaligned) {
  ColumnStore a(&mm_);
  ColumnStore b(&mm_);
  a.Append(1);  // a is unaligned now
  for (uint64_t i = 0; i < 10; ++i) b.Append(i);
  a.Absorb(std::move(b));
  EXPECT_EQ(a.size(), 11u);
  EXPECT_EQ(a.Get(1), 0u);
  EXPECT_EQ(a.Get(10), 9u);
}

TEST_F(ColumnStoreTest, SplitAbsorbRoundTrip) {
  ColumnStore col(&mm_);
  Xoshiro256 rng(1);
  std::vector<Value> ref;
  for (int i = 0; i < 200000; ++i) {
    Value v = rng.Next();
    ref.push_back(v);
    col.Append(v);
  }
  uint64_t sum_before = col.ScanSum(0, kMaxKey);
  ColumnStore tail = col.SplitTail(77777);
  col.Absorb(std::move(tail));
  EXPECT_EQ(col.size(), ref.size());
  EXPECT_EQ(col.ScanSum(0, kMaxKey), sum_before);
}

TEST_F(ColumnStoreTest, ClearReleasesMemory) {
  ColumnStore col(&mm_);
  for (uint64_t i = 0; i < 200000; ++i) col.Append(i);
  EXPECT_GT(col.memory_bytes(), 0u);
  col.Clear();
  EXPECT_EQ(col.size(), 0u);
  EXPECT_EQ(mm_.stats().bytes_in_use(), 0u);
}

TEST_F(ColumnStoreTest, ForEachVisitsInOrder) {
  ColumnStore col(&mm_);
  for (Value v = 0; v < 1000; ++v) col.Append(v * 3);
  TupleId expected = 0;
  col.ForEach([&](TupleId tid, Value v) {
    EXPECT_EQ(tid, expected);
    EXPECT_EQ(v, expected * 3);
    ++expected;
  });
  EXPECT_EQ(expected, 1000u);
}

TEST_F(ColumnStoreTest, SegmentSpansAreConsistent) {
  ColumnStore col(&mm_);
  const uint64_t n = ColumnStore::kSegmentCapacity + 500;
  for (uint64_t i = 0; i < n; ++i) col.Append(i);
  EXPECT_EQ(col.Segment(0).size(), ColumnStore::kSegmentCapacity);
  EXPECT_EQ(col.Segment(1).size(), 500u);
  EXPECT_EQ(col.Segment(1)[0], ColumnStore::kSegmentCapacity);
}

}  // namespace
}  // namespace eris::storage
