// Shared machinery for the concurrency-correctness harness.
//
// The harness generates a *command log*: per writer, an ordered list of
// operation batches (insert/upsert/erase/lookup against a range-partitioned
// index, appends against a physically partitioned column). Each writer owns
// a disjoint key slice and column value tag, so the final engine state is a
// pure function of the log — independent of how the writers' batches
// interleave. That makes a differential oracle possible: the same log
// replayed sequentially on a single-threaded kSimulated engine must produce
// exactly the same digest as N writer threads racing M AEUs in kThreads
// mode with schedule perturbation and fault injection armed.
//
// On a mismatch, gtest's SCOPED_TRACE carries the seed; re-run with
// ERIS_HARNESS_SEED=<seed> to replay exactly that configuration.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "query/join.h"
#include "query/pipeline.h"

namespace eris::harness {

/// One routed operation batch, applied through a Session.
struct OpBatch {
  enum class Kind : uint8_t { kInsert, kUpsert, kErase, kLookup, kAppend };
  Kind kind;
  std::vector<routing::KeyValue> kvs;   // insert / upsert
  std::vector<storage::Key> keys;       // erase / lookup
  std::vector<storage::Value> values;   // append
};

/// The ordered batches of one writer.
struct WriterScript {
  std::vector<OpBatch> batches;
};

struct HarnessConfig {
  uint32_t writers = 4;
  uint32_t batches_per_writer = 40;
  uint32_t max_batch = 24;
  /// Size of each writer's private key slice; writer w owns
  /// [w * keys_per_writer, (w + 1) * keys_per_writer).
  storage::Key keys_per_writer = 1u << 11;

  storage::Key domain_hi() const {
    return static_cast<storage::Key>(writers) * keys_per_writer;
  }
};

/// Deterministic per-seed command log. Writers touch only their own slice,
/// so any interleaving of whole batches yields the same final state.
inline std::vector<WriterScript> GenerateScripts(uint64_t seed,
                                                 const HarnessConfig& cfg) {
  std::vector<WriterScript> scripts(cfg.writers);
  for (uint32_t w = 0; w < cfg.writers; ++w) {
    Xoshiro256 rng(Mix64(seed) ^ Mix64(w + 1));
    storage::Key base = static_cast<storage::Key>(w) * cfg.keys_per_writer;
    WriterScript& script = scripts[w];
    script.batches.reserve(cfg.batches_per_writer);
    for (uint32_t b = 0; b < cfg.batches_per_writer; ++b) {
      OpBatch batch;
      uint64_t pick = rng.NextBounded(100);
      size_t n = 1 + rng.NextBounded(cfg.max_batch);
      if (pick < 35) {
        batch.kind = OpBatch::Kind::kInsert;
      } else if (pick < 60) {
        batch.kind = OpBatch::Kind::kUpsert;
      } else if (pick < 72) {
        batch.kind = OpBatch::Kind::kErase;
      } else if (pick < 87) {
        batch.kind = OpBatch::Kind::kLookup;
      } else {
        batch.kind = OpBatch::Kind::kAppend;
      }
      for (size_t i = 0; i < n; ++i) {
        storage::Key k = base + rng.NextBounded(cfg.keys_per_writer);
        switch (batch.kind) {
          case OpBatch::Kind::kInsert:
          case OpBatch::Kind::kUpsert:
            batch.kvs.push_back({k, rng.Next() >> 1});
            break;
          case OpBatch::Kind::kErase:
          case OpBatch::Kind::kLookup:
            batch.keys.push_back(k);
            break;
          case OpBatch::Kind::kAppend:
            // Tag appended values with the writer so digests distinguish
            // which writer's values survived.
            batch.values.push_back((static_cast<storage::Value>(w) << 32) |
                                   rng.NextBounded(1u << 20));
            break;
        }
      }
      script.batches.push_back(std::move(batch));
    }
  }
  return scripts;
}

/// Applies one writer's script in order through one session.
inline void ApplyScript(core::Engine& engine, storage::ObjectId idx,
                        storage::ObjectId col, const WriterScript& script) {
  auto session = engine.CreateSession();
  for (const OpBatch& batch : script.batches) {
    switch (batch.kind) {
      case OpBatch::Kind::kInsert:
        session->Insert(idx, batch.kvs);
        break;
      case OpBatch::Kind::kUpsert:
        session->Upsert(idx, batch.kvs);
        break;
      case OpBatch::Kind::kErase:
        session->Erase(idx, batch.keys);
        break;
      case OpBatch::Kind::kLookup:
        session->Lookup(idx, batch.keys);
        break;
      case OpBatch::Kind::kAppend:
        session->Append(col, batch.values);
        break;
    }
  }
}

/// Runs every script on its own client thread (engine in kThreads mode).
inline void RunScriptsThreaded(core::Engine& engine, storage::ObjectId idx,
                               storage::ObjectId col,
                               const std::vector<WriterScript>& scripts) {
  std::vector<std::thread> writers;
  writers.reserve(scripts.size());
  for (const WriterScript& script : scripts) {
    writers.emplace_back(
        [&engine, idx, col, &script] { ApplyScript(engine, idx, col, script); });
  }
  for (std::thread& t : writers) t.join();
}

/// Replays the scripts one after another on the calling thread — the
/// single-threaded oracle order (batch interleaving is irrelevant because
/// writers own disjoint slices).
inline void RunScriptsSequential(core::Engine& engine, storage::ObjectId idx,
                                 storage::ObjectId col,
                                 const std::vector<WriterScript>& scripts) {
  for (const WriterScript& script : scripts) {
    ApplyScript(engine, idx, col, script);
  }
}

/// Observable final state: every key of the domain plus column aggregates.
/// The join_pipeline shape additionally folds in deterministic query
/// results over the final state (MPSM join + fused/baseline pipelines).
struct EngineDigest {
  std::vector<std::optional<storage::Value>> index_values;
  uint64_t col_rows = 0;
  uint64_t col_sum = 0;
  storage::Value col_min = ~storage::Value{0};
  storage::Value col_max = 0;
  uint64_t join_matches = 0;
  uint64_t join_key_sum = 0;
  uint64_t pipeline_rows = 0;
  uint64_t pipeline_sum = 0;
  uint64_t pipeline_rows_baseline = 0;
  uint64_t pipeline_sum_baseline = 0;

  bool operator==(const EngineDigest&) const = default;
};

/// Deterministic query phase of the `join_pipeline` shape: joins the
/// harness index against a deterministically seeded second index and runs
/// the same filter→aggregate pipeline fused and operator-at-a-time over
/// the harness column. Run after the writer phase in *both* execution
/// modes; any cross-mode divergence of the folded results means the query
/// paths read torn or misrouted state.
inline void RunQueryPhase(core::Engine& engine, storage::ObjectId idx,
                          storage::ObjectId s_idx, storage::ObjectId col,
                          const HarnessConfig& cfg, EngineDigest* digest) {
  query::JoinRunner joins(&engine);
  query::MergeJoinResult join = joins.MergeJoin(idx, s_idx);
  digest->join_matches = join.matches;
  digest->join_key_sum = join.key_sum;

  query::PipelineRunner pipelines(&engine);
  query::PipelineQuery q;
  // Filter and aggregate the harness column against itself: a one-column
  // group is trivially row-aligned, whatever interleaving loaded it.
  q.filter_column = col;
  q.filter = {0, (uint64_t{cfg.writers} << 32) / 2};  // ~half the writer tags
  q.agg_column = col;
  query::PipelineResult fused = pipelines.Run(q, /*fused=*/true);
  query::PipelineResult baseline = pipelines.Run(q, /*fused=*/false);
  digest->pipeline_rows = fused.rows;
  digest->pipeline_sum = fused.sum;
  digest->pipeline_rows_baseline = baseline.rows;
  digest->pipeline_sum_baseline = baseline.sum;
}

inline EngineDigest CaptureDigest(core::Engine& engine, storage::ObjectId idx,
                                  storage::ObjectId col,
                                  const HarnessConfig& cfg) {
  EngineDigest digest;
  auto session = engine.CreateSession();
  std::vector<storage::Key> keys;
  keys.reserve(cfg.domain_hi());
  for (storage::Key k = 0; k < cfg.domain_hi(); ++k) keys.push_back(k);
  digest.index_values = session->LookupValues(idx, keys);
  core::Engine::Session::ColumnStats stats = session->ScanStats(col);
  digest.col_rows = stats.rows;
  digest.col_sum = stats.sum;
  digest.col_min = stats.min;
  digest.col_max = stats.max;
  return digest;
}

/// Reports up to `max_reported` differences as gtest failures.
inline void ExpectDigestsEqual(const EngineDigest& threaded,
                               const EngineDigest& oracle,
                               size_t max_reported = 5) {
  EXPECT_EQ(threaded.col_rows, oracle.col_rows);
  EXPECT_EQ(threaded.col_sum, oracle.col_sum);
  EXPECT_EQ(threaded.col_min, oracle.col_min);
  EXPECT_EQ(threaded.col_max, oracle.col_max);
  EXPECT_EQ(threaded.join_matches, oracle.join_matches);
  EXPECT_EQ(threaded.join_key_sum, oracle.join_key_sum);
  EXPECT_EQ(threaded.pipeline_rows, oracle.pipeline_rows);
  EXPECT_EQ(threaded.pipeline_sum, oracle.pipeline_sum);
  EXPECT_EQ(threaded.pipeline_rows_baseline, oracle.pipeline_rows_baseline);
  EXPECT_EQ(threaded.pipeline_sum_baseline, oracle.pipeline_sum_baseline);
  ASSERT_EQ(threaded.index_values.size(), oracle.index_values.size());
  size_t mismatches = 0;
  for (size_t k = 0; k < threaded.index_values.size(); ++k) {
    if (threaded.index_values[k] == oracle.index_values[k]) continue;
    if (++mismatches <= max_reported) {
      ADD_FAILURE() << "key " << k << ": threaded="
                    << (threaded.index_values[k]
                            ? std::to_string(*threaded.index_values[k])
                            : std::string("absent"))
                    << " oracle="
                    << (oracle.index_values[k]
                            ? std::to_string(*oracle.index_values[k])
                            : std::string("absent"));
    }
  }
  EXPECT_EQ(mismatches, 0u) << "total mismatching keys";
}

/// Seed sweep selection: ERIS_HARNESS_SEED pins a single seed for replay,
/// ERIS_HARNESS_SEEDS overrides the sweep length (tier1's TSan stage runs a
/// shorter sweep; TSan costs ~10x).
inline std::vector<uint64_t> SweepSeeds(uint64_t base, size_t default_count) {
  if (const char* pinned = std::getenv("ERIS_HARNESS_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(pinned, nullptr, 0))};
  }
  size_t count = default_count;
  if (const char* n = std::getenv("ERIS_HARNESS_SEEDS")) {
    count = static_cast<size_t>(std::strtoull(n, nullptr, 0));
    if (count == 0) count = 1;
  }
  std::vector<uint64_t> seeds;
  seeds.reserve(count);
  for (size_t i = 0; i < count; ++i) seeds.push_back(base + i);
  return seeds;
}

}  // namespace eris::harness
