// Durability tier tests (DESIGN.md §14): WAL framing and group commit,
// torn/corrupt-tail handling, engine snapshots, recovery replay, the
// crash-at-any-kill-point matrix, a property-based recovery fuzz, and the
// Stop() drain-then-quiesce contract.
//
// The crash matrix forks: the child builds a durable engine, loads a
// deterministic workload, then arms a countdown hook at one durability kill
// point that _exit(42)s the process mid-write/fsync/rename. The parent
// recovers from the survivor directory and diffs the full digest against an
// in-memory oracle of the same workload. Reproduction: failing seeds print
// via SCOPED_TRACE; pin with ERIS_HARNESS_SEED=<seed>.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "durability/manager.h"
#include "durability/wal.h"
#include "harness_util.h"

namespace eris::core {
namespace {

using storage::ObjectId;

std::string MakeTempDir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                     "/eris-recovery-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* dir = ::mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr) << "mkdtemp failed: " << std::strerror(errno);
  return dir != nullptr ? std::string(dir) : std::string();
}

struct TempDir {
  std::string path = MakeTempDir();
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);  // best effort
  }
};

EngineOptions DurableOptions(const std::string& dir, ExecutionMode mode,
                             durability::WalMode wal_mode =
                                 durability::WalMode::kGroupCommit) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = mode;
  opts.durability.enabled = true;
  opts.durability.dir = dir;
  opts.durability.mode = wal_mode;
  return opts;
}

void RegisterHarnessSchema(Engine& engine, const harness::HarnessConfig& cfg,
                           ObjectId* idx, ObjectId* col) {
  *idx = engine.CreateIndex("kv", cfg.domain_hi(),
                            {.prefix_bits = 8, .key_bits = 16});
  *col = engine.CreateColumn("facts");
}

/// In-memory oracle digest of the harness scripts.
harness::EngineDigest OracleDigest(const harness::HarnessConfig& cfg,
                                   const std::vector<harness::WriterScript>&
                                       scripts) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kSimulated;
  Engine engine(opts);
  ObjectId idx = 0;
  ObjectId col = 0;
  RegisterHarnessSchema(engine, cfg, &idx, &col);
  engine.Start();
  harness::RunScriptsSequential(engine, idx, col, scripts);
  harness::EngineDigest d = harness::CaptureDigest(engine, idx, col, cfg);
  engine.Stop();
  return d;
}

/// Recovers a fresh engine from `dir` and captures its digest. The engine
/// is never Start()ed: kSimulated digests pump the loops inline, which also
/// proves recovered state is readable before any threads spawn.
harness::EngineDigest RecoverAndDigest(const std::string& dir,
                                       const harness::HarnessConfig& cfg) {
  Engine engine(DurableOptions(dir, ExecutionMode::kSimulated));
  ObjectId idx = 0;
  ObjectId col = 0;
  RegisterHarnessSchema(engine, cfg, &idx, &col);
  Status st = engine.Recover();
  EXPECT_TRUE(st.ok()) << st.message();
  harness::EngineDigest d = harness::CaptureDigest(engine, idx, col, cfg);
  engine.Stop();
  return d;
}

// ---------------------------------------------------------------------------
// WAL unit tests
// ---------------------------------------------------------------------------

std::vector<uint8_t> Body(std::initializer_list<uint8_t> bytes) {
  return std::vector<uint8_t>(bytes);
}

TEST(Wal, RoundTripGroupCommit) {
  TempDir tmp;
  std::string path = tmp.path + "/wal.log";
  durability::DurabilityOptions opts;
  opts.mode = durability::WalMode::kGroupCommit;
  {
    durability::WalWriter w;
    ASSERT_TRUE(w.Open(path, opts, /*next_lsn=*/1, /*valid_end=*/0).ok());
    uint64_t lsn = 0;
    uint64_t committed = 0;
    ASSERT_TRUE(w.Append(Body({1, 2, 3}), &lsn).ok());
    EXPECT_EQ(lsn, 1u);
    ASSERT_TRUE(w.Append(Body({4}), &lsn).ok());
    EXPECT_EQ(lsn, 2u);
    // Nothing durable before the commit frame seals the group.
    EXPECT_GT(w.buffered_bytes(), 0u);
    ASSERT_TRUE(w.Commit(&committed).ok());
    EXPECT_EQ(committed, 2u);
    EXPECT_EQ(w.buffered_bytes(), 0u);
    ASSERT_TRUE(w.Commit(&committed).ok());
    EXPECT_EQ(committed, 0u);  // idle commit never touches the file
    // The commit frame consumed LSN 3 (replay checks strict monotonicity
    // across every frame), so the next record gets 4.
    ASSERT_TRUE(w.Append(Body({5, 6}), &lsn).ok());
    EXPECT_EQ(lsn, 4u);
    ASSERT_TRUE(w.Commit(&committed).ok());
    EXPECT_EQ(committed, 1u);
    EXPECT_EQ(w.stats().records, 3u);
    EXPECT_EQ(w.stats().groups, 2u);
    EXPECT_EQ(w.stats().fsyncs, 2u);
  }
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> seen;
  durability::WalReplayResult rr;
  ASSERT_TRUE(durability::ReplayWal(
                  path, /*watermark=*/0,
                  [&](uint64_t lsn, std::span<const uint8_t> body) {
                    seen.emplace_back(lsn, std::vector<uint8_t>(body.begin(),
                                                                body.end()));
                  },
                  &rr)
                  .ok());
  EXPECT_FALSE(rr.torn);
  EXPECT_EQ(rr.last_lsn, 5u);  // the final commit frame's LSN
  EXPECT_EQ(rr.next_lsn, 6u);
  EXPECT_EQ(rr.records_applied, 3u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<uint64_t, std::vector<uint8_t>>{
                         1u, Body({1, 2, 3})}));
  EXPECT_EQ(seen[2].second, Body({5, 6}));

  // Watermark dedup: records at or below it are skipped, not applied.
  durability::WalReplayResult rr2;
  uint64_t applied = 0;
  ASSERT_TRUE(durability::ReplayWal(
                  path, /*watermark=*/2,
                  [&](uint64_t, std::span<const uint8_t>) { ++applied; }, &rr2)
                  .ok());
  EXPECT_EQ(applied, 1u);
  EXPECT_EQ(rr2.records_skipped, 2u);
}

TEST(Wal, PerRecordFsyncMode) {
  TempDir tmp;
  std::string path = tmp.path + "/wal.log";
  durability::DurabilityOptions opts;
  opts.mode = durability::WalMode::kPerRecordFsync;
  durability::WalWriter w;
  ASSERT_TRUE(w.Open(path, opts, 1, 0).ok());
  w.Append(Body({1}));
  w.Append(Body({2}));
  // Each append committed itself: one group + one fsync per record.
  EXPECT_EQ(w.buffered_bytes(), 0u);
  EXPECT_EQ(w.stats().groups, 2u);
  EXPECT_EQ(w.stats().fsyncs, 2u);
  durability::WalReplayResult rr;
  uint64_t applied = 0;
  ASSERT_TRUE(durability::ReplayWal(
                  path, 0, [&](uint64_t, std::span<const uint8_t>) {
                    ++applied;
                  }, &rr)
                  .ok());
  EXPECT_EQ(applied, 2u);
  EXPECT_FALSE(rr.torn);
}

TEST(Wal, RotateKeepsLsnSequence) {
  TempDir tmp;
  std::string path = tmp.path + "/wal.log";
  durability::DurabilityOptions opts;
  durability::WalWriter w;
  ASSERT_TRUE(w.Open(path, opts, 1, 0).ok());
  w.Append(Body({1}));
  w.Commit();
  ASSERT_TRUE(w.Rotate().ok());
  EXPECT_EQ(std::filesystem::file_size(path), 0u);
  uint64_t lsn = 0;
  ASSERT_TRUE(w.Append(Body({2}), &lsn).ok());
  EXPECT_EQ(lsn, 3u);  // the sequence keeps counting
  w.Commit();
  durability::WalReplayResult rr;
  ASSERT_TRUE(durability::ReplayWal(
                  path, /*watermark=*/2,
                  [&](uint64_t lsn, std::span<const uint8_t>) {
                    EXPECT_EQ(lsn, 3u);
                  },
                  &rr)
                  .ok());
  EXPECT_EQ(rr.records_applied, 1u);
  EXPECT_EQ(rr.records_skipped, 0u);  // rotation emptied the old records
}

TEST(Wal, TornTailStopsAtLastCommittedGroup) {
  TempDir tmp;
  std::string path = tmp.path + "/wal.log";
  durability::DurabilityOptions opts;
  uint64_t valid_end = 0;
  {
    durability::WalWriter w;
    ASSERT_TRUE(w.Open(path, opts, 1, 0).ok());
    w.Append(Body({1, 2, 3, 4}));
    w.Commit();
    valid_end = std::filesystem::file_size(path);
    w.Append(Body({5, 6, 7, 8}));
    w.Commit();
  }
  uint64_t full = std::filesystem::file_size(path);
  // Chop the file at every byte offset inside the second group: replay must
  // deliver exactly the first group and flag the tail as torn.
  std::vector<uint8_t> image(full);
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fread(image.data(), 1, full, f), full);
    std::fclose(f);
  }
  for (uint64_t cut = valid_end + 1; cut < full; cut += 7) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(image.data(), 1, cut, f), cut);
    std::fclose(f);
    durability::WalReplayResult rr;
    uint64_t applied = 0;
    ASSERT_TRUE(durability::ReplayWal(
                    path, 0,
                    [&](uint64_t lsn, std::span<const uint8_t>) {
                      ++applied;
                      EXPECT_EQ(lsn, 1u);
                    },
                    &rr)
                    .ok())
        << "cut=" << cut;
    EXPECT_EQ(applied, 1u) << "cut=" << cut;
    EXPECT_TRUE(rr.torn) << "cut=" << cut;
    EXPECT_EQ(rr.valid_end, valid_end) << "cut=" << cut;
    // Reopening truncates the torn tail and appending continues cleanly.
    durability::WalWriter w;
    ASSERT_TRUE(w.Open(path, opts, rr.next_lsn, rr.valid_end).ok());
    EXPECT_EQ(std::filesystem::file_size(path), valid_end);
    w.Append(Body({9}));
    w.Commit();
    durability::WalReplayResult rr2;
    uint64_t total = 0;
    ASSERT_TRUE(durability::ReplayWal(
                    path, 0, [&](uint64_t, std::span<const uint8_t>) {
                      ++total;
                    }, &rr2)
                    .ok());
    EXPECT_EQ(total, 2u);
    EXPECT_FALSE(rr2.torn);
    // Restore the full image for the next cut.
    f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(image.data(), 1, full, f), full);
    std::fclose(f);
  }
}

TEST(Wal, CorruptTailNeverAppliesPartialGroup) {
  TempDir tmp;
  std::string path = tmp.path + "/wal.log";
  durability::DurabilityOptions opts;
  uint64_t first_group_end = 0;
  {
    durability::WalWriter w;
    ASSERT_TRUE(w.Open(path, opts, 1, 0).ok());
    // 8-byte bodies: no padding, so every flipped byte is CRC-covered.
    w.Append(Body({1, 1, 1, 1, 1, 1, 1, 1}));
    w.Commit();
    first_group_end = std::filesystem::file_size(path);
    // Second group: two records, one commit frame.
    w.Append(Body({2, 2, 2, 2, 2, 2, 2, 2}));
    w.Append(Body({3, 3, 3, 3, 3, 3, 3, 3}));
    w.Commit();
  }
  uint64_t full = std::filesystem::file_size(path);
  std::vector<uint8_t> image(full);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fread(image.data(), 1, full, f), full);
  std::fclose(f);
  // Flip one bit at every offset inside the second group. Whatever byte is
  // hit — record body, record CRC, or the commit frame — replay must apply
  // either the whole second group (0 corrupt => impossible here) or none of
  // it: group commit is all-or-nothing.
  for (uint64_t off = first_group_end; off < full; ++off) {
    std::vector<uint8_t> corrupt = image;
    corrupt[off] ^= 0x40;
    std::FILE* wf = std::fopen(path.c_str(), "wb");
    ASSERT_NE(wf, nullptr);
    ASSERT_EQ(std::fwrite(corrupt.data(), 1, full, wf), full);
    std::fclose(wf);
    durability::WalReplayResult rr;
    std::vector<uint64_t> lsns;
    ASSERT_TRUE(durability::ReplayWal(
                    path, 0,
                    [&](uint64_t lsn, std::span<const uint8_t>) {
                      lsns.push_back(lsn);
                    },
                    &rr)
                    .ok())
        << "off=" << off;
    EXPECT_EQ(lsns.size(), 1u) << "off=" << off;  // only the first group
    EXPECT_TRUE(rr.torn) << "off=" << off;
    EXPECT_LE(rr.valid_end, first_group_end) << "off=" << off;
  }
  // Corruption inside an *earlier* group: replay keeps only the prefix of
  // intact committed groups before it.
  std::vector<uint8_t> corrupt = image;
  corrupt[8] ^= 0x01;  // first record's lsn field
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(corrupt.data(), 1, full, f), full);
  std::fclose(f);
  durability::WalReplayResult rr;
  uint64_t applied = 0;
  ASSERT_TRUE(durability::ReplayWal(
                  path, 0, [&](uint64_t, std::span<const uint8_t>) {
                    ++applied;
                  }, &rr)
                  .ok());
  EXPECT_EQ(applied, 0u);
  EXPECT_TRUE(rr.torn);
  EXPECT_EQ(rr.valid_end, 0u);
}

// ---------------------------------------------------------------------------
// Engine restart round trips
// ---------------------------------------------------------------------------

TEST(Recovery, BasicDurableRestart) {
  TempDir tmp;
  harness::HarnessConfig cfg;
  cfg.writers = 2;
  cfg.batches_per_writer = 16;
  cfg.keys_per_writer = 1u << 9;
  auto scripts = harness::GenerateScripts(/*seed=*/11, cfg);

  harness::EngineDigest live;
  {
    Engine engine(DurableOptions(tmp.path, ExecutionMode::kSimulated));
    ObjectId idx = 0;
    ObjectId col = 0;
    RegisterHarnessSchema(engine, cfg, &idx, &col);
    engine.Start();  // auto-recovers the empty directory, arms the WALs
    EXPECT_TRUE(engine.recovered());
    harness::RunScriptsSequential(engine, idx, col, scripts);
    live = harness::CaptureDigest(engine, idx, col, cfg);
    engine.Stop();
  }
  harness::EngineDigest recovered = RecoverAndDigest(tmp.path, cfg);
  harness::ExpectDigestsEqual(recovered, live);
  harness::ExpectDigestsEqual(recovered, OracleDigest(cfg, scripts));
}

TEST(Recovery, ThreadedDurableRestart) {
  TempDir tmp;
  harness::HarnessConfig cfg;
  cfg.writers = 3;
  cfg.batches_per_writer = 20;
  cfg.keys_per_writer = 1u << 9;
  auto scripts = harness::GenerateScripts(/*seed=*/12, cfg);

  harness::EngineDigest live;
  {
    fi::FaultInjector::Global().Reset();
    fi::FaultInjector::Global().EnableChaos(/*seed=*/12,
                                            /*perturb_probability=*/0.05);
    Engine engine(DurableOptions(tmp.path, ExecutionMode::kThreads));
    ObjectId idx = 0;
    ObjectId col = 0;
    RegisterHarnessSchema(engine, cfg, &idx, &col);
    engine.Start();
    harness::RunScriptsThreaded(engine, idx, col, scripts);
    engine.Stop();
    fi::FaultInjector::Global().Reset();
    // Post-Stop digest on the same engine: simulated pumping serves reads
    // once the threads joined.
    live = harness::CaptureDigest(engine, idx, col, cfg);
    // The WAL actually carried the workload.
    uint64_t records = 0;
    for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
      records += engine.aeu(a).loop_stats().wal_records;
    }
    EXPECT_GT(records, 0u);
  }
  harness::EngineDigest recovered = RecoverAndDigest(tmp.path, cfg);
  harness::ExpectDigestsEqual(recovered, live);
  harness::ExpectDigestsEqual(recovered, OracleDigest(cfg, scripts));
}

TEST(Recovery, SnapshotThenTailReplay) {
  TempDir tmp;
  harness::HarnessConfig cfg;
  cfg.writers = 2;
  cfg.batches_per_writer = 12;
  cfg.keys_per_writer = 1u << 9;
  auto s1 = harness::GenerateScripts(/*seed=*/21, cfg);
  auto s2 = harness::GenerateScripts(/*seed=*/22, cfg);

  {
    Engine engine(DurableOptions(tmp.path, ExecutionMode::kSimulated));
    ObjectId idx = 0;
    ObjectId col = 0;
    RegisterHarnessSchema(engine, cfg, &idx, &col);
    engine.Start();
    harness::RunScriptsSequential(engine, idx, col, s1);
    ASSERT_TRUE(engine.Snapshot().ok());
    // The snapshot truncated the logs; the tail only carries phase 2.
    for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
      EXPECT_EQ(std::filesystem::file_size(
                    engine.durability()->WalPath(a)),
                0u);
    }
    harness::RunScriptsSequential(engine, idx, col, s2);
    engine.Stop();
  }
  // Oracle: both phases in order.
  auto combined = s1;
  combined.insert(combined.end(), s2.begin(), s2.end());
  harness::EngineDigest recovered = RecoverAndDigest(tmp.path, cfg);
  harness::ExpectDigestsEqual(recovered, OracleDigest(cfg, combined));
}

TEST(Recovery, SnapshotWithRebalanceRestoresRoutingTable) {
  TempDir tmp;
  harness::HarnessConfig cfg;
  cfg.writers = 2;
  cfg.batches_per_writer = 16;
  cfg.keys_per_writer = 1u << 9;
  auto scripts = harness::GenerateScripts(/*seed=*/31, cfg);

  std::vector<routing::RangeEntry> live_entries;
  harness::EngineDigest live;
  {
    Engine engine(DurableOptions(tmp.path, ExecutionMode::kSimulated));
    ObjectId idx = 0;
    ObjectId col = 0;
    RegisterHarnessSchema(engine, cfg, &idx, &col);
    engine.Start();
    harness::RunScriptsSequential(engine, idx, col, scripts);
    // Force a balancing cycle so partition ranges moved since registration
    // (the WAL carries the movement as set-range/extract/install effects).
    LoadBalancerConfig bal;
    bal.algorithm = BalanceAlgorithm::kOneShot;
    bal.trigger_cv = 0.0;
    bal.min_total_accesses = 1;
    engine.RebalanceObject(idx, bal);
    engine.Quiesce();
    live_entries = engine.router().range_table(idx)->Snapshot();
    live = harness::CaptureDigest(engine, idx, col, cfg);
    engine.Stop();
  }
  Engine engine(DurableOptions(tmp.path, ExecutionMode::kSimulated));
  ObjectId idx = 0;
  ObjectId col = 0;
  RegisterHarnessSchema(engine, cfg, &idx, &col);
  ASSERT_TRUE(engine.Recover().ok());
  // The recovered routing table matches the live one: same owners at the
  // same boundaries.
  std::vector<routing::RangeEntry> rec_entries =
      engine.router().range_table(idx)->Snapshot();
  ASSERT_EQ(rec_entries.size(), live_entries.size());
  for (size_t i = 0; i < rec_entries.size(); ++i) {
    EXPECT_EQ(rec_entries[i].hi, live_entries[i].hi) << i;
    EXPECT_EQ(rec_entries[i].owner, live_entries[i].owner) << i;
  }
  harness::EngineDigest recovered =
      harness::CaptureDigest(engine, idx, col, cfg);
  engine.Stop();
  harness::ExpectDigestsEqual(recovered, live);
}

TEST(Recovery, SchemaMismatchRefused) {
  TempDir tmp;
  harness::HarnessConfig cfg;
  cfg.writers = 2;
  cfg.batches_per_writer = 4;
  cfg.keys_per_writer = 1u << 8;
  auto scripts = harness::GenerateScripts(/*seed=*/41, cfg);
  {
    Engine engine(DurableOptions(tmp.path, ExecutionMode::kSimulated));
    ObjectId idx = 0;
    ObjectId col = 0;
    RegisterHarnessSchema(engine, cfg, &idx, &col);
    engine.Start();
    harness::RunScriptsSequential(engine, idx, col, scripts);
    ASSERT_TRUE(engine.Snapshot().ok());
    engine.Stop();
  }
  // Same object count, different container kinds: refused, not garbled.
  Engine wrong(DurableOptions(tmp.path, ExecutionMode::kSimulated));
  wrong.CreateColumn("kv");
  wrong.CreateColumn("facts");
  Status st = wrong.Recover();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.message();
}

// ---------------------------------------------------------------------------
// Crash matrix: kill the process at every durability fault point.
// ---------------------------------------------------------------------------

struct KillSpec {
  fi::Point point;
  uint32_t visit;   ///< _exit(42) on the N-th visit of the point
  bool snapshot;    ///< crash inside Snapshot() instead of the write phase
};

/// Child body: loads phase W (fully acknowledged, so its digest is the
/// oracle), then either re-upserts the surviving state (idempotent — any
/// logged prefix leaves the digest unchanged) with the WAL kill point
/// armed, or takes a snapshot with a snapshot kill point armed.
void CrashChild(const std::string& dir, const harness::HarnessConfig& cfg,
                const std::vector<harness::WriterScript>& scripts,
                const KillSpec& spec) {
  Engine engine(DurableOptions(dir, ExecutionMode::kSimulated));
  ObjectId idx = 0;
  ObjectId col = 0;
  RegisterHarnessSchema(engine, cfg, &idx, &col);
  engine.Start();
  harness::RunScriptsSequential(engine, idx, col, scripts);

  static std::atomic<uint32_t> countdown{0};
  countdown.store(spec.visit, std::memory_order_relaxed);
  fi::FaultInjector::Global().SetHook(spec.point, [] {
    if (countdown.fetch_sub(1, std::memory_order_relaxed) == 1) {
      _exit(42);  // no destructors, no flush: a real crash, minus the UB
    }
  });

  if (spec.snapshot) {
    (void)engine.Snapshot();
  } else {
    // Idempotent re-upsert phase: every surviving key with its current
    // value, in batches, through the logged write path.
    auto session = engine.CreateSession();
    std::vector<storage::Key> all;
    for (storage::Key k = 0; k < cfg.domain_hi(); ++k) all.push_back(k);
    auto values = session->LookupValues(idx, all);
    std::vector<routing::KeyValue> batch;
    for (storage::Key k = 0; k < all.size(); ++k) {
      if (!values[k]) continue;
      batch.push_back({k, *values[k]});
      // Small batches: consecutive keys land on one range partition, so a
      // batch produces as little as one WAL append — keep the append count
      // well above the deepest matrix countdown.
      if (batch.size() == 4) {
        session->Upsert(idx, batch);
        batch.clear();
      }
    }
    if (!batch.empty()) session->Upsert(idx, batch);
  }
  _exit(0);  // kill point too deep for this workload: parent skips
}

TEST(Recovery, CrashMatrixDigestMatchesOracle) {
  harness::HarnessConfig cfg;
  cfg.writers = 2;
  cfg.batches_per_writer = 10;
  cfg.keys_per_writer = 1u << 8;
  const uint64_t seed = [] {
    const char* pinned = std::getenv("ERIS_HARNESS_SEED");
    return pinned != nullptr
               ? static_cast<uint64_t>(std::strtoull(pinned, nullptr, 0))
               : uint64_t{51};
  }();
  auto scripts = harness::GenerateScripts(seed, cfg);
  harness::EngineDigest oracle = OracleDigest(cfg, scripts);

  const KillSpec kMatrix[] = {
      {fi::Point::kWalAppend, 1, false},
      {fi::Point::kWalAppend, 5, false},
      {fi::Point::kWalCommit, 1, false},
      {fi::Point::kWalCommit, 3, false},
      {fi::Point::kWalFsync, 1, false},
      {fi::Point::kWalFsync, 3, false},
      {fi::Point::kSnapshotWrite, 1, true},
      {fi::Point::kSnapshotWrite, 3, true},  // mid partition-file sequence
      {fi::Point::kSnapshotFsync, 1, true},
      {fi::Point::kSnapshotFsync, 3, true},
      {fi::Point::kSnapshotRename, 1, true},
      {fi::Point::kCurrentWrite, 1, true},
      {fi::Point::kWalRotate, 1, true},
      {fi::Point::kWalRotate, 2, true},  // between per-AEU rotations
  };

  for (const KillSpec& spec : kMatrix) {
    SCOPED_TRACE(::testing::Message()
                 << "kill point=" << fi::PointName(spec.point)
                 << " visit=" << spec.visit << " seed=" << seed
                 << " (replay: ERIS_HARNESS_SEED=" << seed << ")");
    TempDir tmp;
    pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      CrashChild(tmp.path, cfg, scripts, spec);  // never returns
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    // 42 = killed at the point (the interesting case), 0 = the workload
    // never reached visit N (uninteresting but still recoverable).
    ASSERT_TRUE(WEXITSTATUS(status) == 42 || WEXITSTATUS(status) == 0)
        << "child exit " << WEXITSTATUS(status);
    EXPECT_EQ(WEXITSTATUS(status), 42) << "kill point never reached";

    harness::EngineDigest recovered = RecoverAndDigest(tmp.path, cfg);
    harness::ExpectDigestsEqual(recovered, oracle);
  }
  fi::FaultInjector::Global().Reset();
}

// ---------------------------------------------------------------------------
// Property-based recovery fuzz
// ---------------------------------------------------------------------------

/// Child: insert-only workload of globally unique keys; after each
/// *acknowledged* batch, append its index to the progress file (so the file
/// understates, never overstates, the acked set). A countdown hook on a
/// random WAL point crashes mid-stream.
void FuzzChild(const std::string& dir, const std::string& progress_path,
               uint64_t seed, uint32_t num_batches, uint32_t batch_size,
               storage::Key domain_hi) {
  Engine engine(DurableOptions(dir, ExecutionMode::kSimulated));
  ObjectId idx = engine.CreateIndex("kv", domain_hi,
                                    {.prefix_bits = 8, .key_bits = 16});
  engine.CreateColumn("facts");
  engine.Start();

  Xoshiro256 rng(Mix64(seed));
  static std::atomic<uint32_t> countdown{0};
  const fi::Point points[] = {fi::Point::kWalAppend, fi::Point::kWalCommit,
                              fi::Point::kWalFsync};
  fi::Point p = points[rng.NextBounded(3)];
  // Crash somewhere inside the stream (each batch visits each point ~once
  // per touched AEU).
  countdown.store(1 + static_cast<uint32_t>(rng.NextBounded(num_batches)),
                  std::memory_order_relaxed);
  fi::FaultInjector::Global().SetHook(p, [] {
    if (countdown.fetch_sub(1, std::memory_order_relaxed) == 1) _exit(42);
  });

  std::FILE* progress = std::fopen(progress_path.c_str(), "w");
  if (progress == nullptr) _exit(3);
  auto session = engine.CreateSession();
  for (uint32_t b = 0; b < num_batches; ++b) {
    std::vector<routing::KeyValue> kvs;
    for (uint32_t i = 0; i < batch_size; ++i) {
      storage::Key k = uint64_t{b} * batch_size + i;  // globally unique
      kvs.push_back({k, Mix64(k ^ seed)});
    }
    session->Insert(idx, kvs);  // returns only once acked => durable
    std::fprintf(progress, "%u\n", b);
    std::fflush(progress);
  }
  std::fclose(progress);
  _exit(0);
}

TEST(Recovery, PropertyFuzzAckedImpliesDurable) {
  const uint32_t kBatch = 16;
  const uint32_t kBatches = 64;
  const storage::Key domain_hi = kBatch * kBatches;
  auto seeds = harness::SweepSeeds(/*base=*/9100, /*default_count=*/8);
  for (uint64_t seed : seeds) {
    SCOPED_TRACE(::testing::Message()
                 << "fuzz seed=" << seed
                 << " (replay: ERIS_HARNESS_SEED=" << seed << ")");
    TempDir tmp;
    std::string progress_path = tmp.path + "/progress.txt";
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      FuzzChild(tmp.path, progress_path, seed, kBatches, kBatch, domain_hi);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_TRUE(WEXITSTATUS(status) == 42 || WEXITSTATUS(status) == 0)
        << WEXITSTATUS(status);

    // Acked batches from the progress file (complete lines only).
    int64_t last_acked = -1;
    if (std::FILE* f = std::fopen(progress_path.c_str(), "r")) {
      char line[64];
      while (std::fgets(line, sizeof(line), f) != nullptr) {
        size_t len = std::strlen(line);
        if (len == 0 || line[len - 1] != '\n') break;  // torn final line
        last_acked = std::strtoll(line, nullptr, 10);
      }
      std::fclose(f);
    }

    auto recover_keys = [&]() -> std::set<storage::Key> {
      Engine engine(DurableOptions(tmp.path, ExecutionMode::kSimulated));
      ObjectId idx = engine.CreateIndex("kv", domain_hi,
                                        {.prefix_bits = 8, .key_bits = 16});
      engine.CreateColumn("facts");
      Status st = engine.Recover();
      EXPECT_TRUE(st.ok()) << st.message();
      auto session = engine.CreateSession();
      std::vector<storage::Key> all;
      for (storage::Key k = 0; k < domain_hi; ++k) all.push_back(k);
      auto values = session->LookupValues(idx, all);
      std::set<storage::Key> present;
      for (storage::Key k = 0; k < domain_hi; ++k) {
        if (values[k]) {
          // Values round-trip exactly.
          EXPECT_EQ(*values[k], Mix64(k ^ seed)) << "key " << k;
          present.insert(k);
        }
      }
      engine.Stop();
      return present;
    };

    std::set<storage::Key> keys = recover_keys();
    // (1) Acked => durable: every key of every acked batch survived.
    for (int64_t b = 0; b <= last_acked; ++b) {
      for (uint32_t i = 0; i < kBatch; ++i) {
        storage::Key k = static_cast<uint64_t>(b) * kBatch + i;
        EXPECT_TRUE(keys.count(k)) << "acked key " << k << " lost (batch "
                                   << b << " of " << last_acked << ")";
      }
    }
    // (2) No phantoms: only issued keys exist (the sequential client had at
    // most batch last_acked+1 in flight at the crash).
    storage::Key issue_hi =
        std::min<storage::Key>(domain_hi,
                               (static_cast<uint64_t>(last_acked) + 2) *
                                   kBatch);
    for (storage::Key k : keys) {
      EXPECT_LT(k, issue_hi) << "phantom key " << k;
    }
    // (3) Deterministic recovery: a second recovery from the same (now
    // tail-truncated) directory yields the identical key set.
    std::set<storage::Key> keys2 = recover_keys();
    EXPECT_EQ(keys, keys2);
  }
  fi::FaultInjector::Global().Reset();
}

// ---------------------------------------------------------------------------
// Shutdown: drain-then-quiesce contract
// ---------------------------------------------------------------------------

TEST(Recovery, StopDrainsGroupCommitsBeforeJoin) {
  TempDir tmp;
  harness::HarnessConfig cfg;
  cfg.writers = 4;
  cfg.batches_per_writer = 12;
  cfg.keys_per_writer = 1u << 9;
  auto scripts = harness::GenerateScripts(/*seed=*/61, cfg);

  {
    Engine engine(DurableOptions(tmp.path, ExecutionMode::kThreads));
    ObjectId idx = 0;
    ObjectId col = 0;
    RegisterHarnessSchema(engine, cfg, &idx, &col);
    engine.Start();
    // Stop() races the tail of the writer threads' last acknowledged
    // batches: the drain phase must get every acked group to disk before
    // the AEU threads join.
    harness::RunScriptsThreaded(engine, idx, col, scripts);
    engine.Stop();
  }
  // Everything the writers saw acknowledged (i.e. the whole workload —
  // RunScriptsThreaded only returns once every batch completed) recovers.
  harness::EngineDigest recovered = RecoverAndDigest(tmp.path, cfg);
  harness::ExpectDigestsEqual(recovered, OracleDigest(cfg, scripts));
}

TEST(Recovery, TryQuiesceBoundedOnIdleAndBusyEngines) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kThreads;
  Engine engine(opts);
  ObjectId idx = engine.CreateIndex("kv", 1u << 10,
                                    {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  // Idle engine: quiesces well inside the bound, even with timeout 0 —
  // stability counting still finishes once idle.
  EXPECT_TRUE(engine.TryQuiesce(/*timeout_ms=*/1000));
  EXPECT_TRUE(engine.TryQuiesce(/*timeout_ms=*/0));

  // Wedge AEU 0 and park a command in its mailbox: TryQuiesce must time
  // out (bounded), not hang or CHECK-fail.
  std::atomic<bool> stall{true};
  fi::FaultInjector::Global().Reset();
  fi::FaultInjector::Global().SetHook(fi::Point::kAeuLoop, [&stall] {
    const Aeu* aeu = Aeu::Current();
    if (aeu == nullptr || aeu->id() != 0) return;
    while (stall.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  auto session = engine.CreateSession();
  session->set_op_timeout_ns(10'000'000);
  std::vector<routing::KeyValue> kvs{{1, 1}};  // key 1 => AEU 0's range
  (void)session->SubmitUpsert(idx, kvs);
  Stopwatch watch;
  EXPECT_FALSE(engine.TryQuiesce(/*timeout_ms=*/100));
  EXPECT_LT(watch.ElapsedSeconds(), 30.0);
  stall.store(false, std::memory_order_release);
  engine.Stop();  // drain succeeds now; hook is a no-op until threads join
  fi::FaultInjector::Global().Reset();
}

// ---------------------------------------------------------------------------
// Manifest damage (DESIGN.md §15): a broken CURRENT or a missing snapshot
// directory must yield a typed recovery failure (or a WAL-only recovery),
// never a crash.
// ---------------------------------------------------------------------------

/// Builds a durable directory holding one snapshot + CURRENT.
void BuildSnapshotDir(const std::string& dir,
                      const harness::HarnessConfig& cfg,
                      const std::vector<harness::WriterScript>& scripts) {
  Engine engine(DurableOptions(dir, ExecutionMode::kSimulated));
  ObjectId idx = 0;
  ObjectId col = 0;
  RegisterHarnessSchema(engine, cfg, &idx, &col);
  engine.Start();
  harness::RunScriptsSequential(engine, idx, col, scripts);
  ASSERT_TRUE(engine.Snapshot().ok());
  engine.Stop();
}

/// Attempts recovery from `dir`; returns the status (test must not crash).
Status TryRecover(const std::string& dir, const harness::HarnessConfig& cfg) {
  Engine engine(DurableOptions(dir, ExecutionMode::kSimulated));
  ObjectId idx = 0;
  ObjectId col = 0;
  RegisterHarnessSchema(engine, cfg, &idx, &col);
  return engine.Recover();
}

TEST(Recovery, TruncatedCurrentFailsTyped) {
  TempDir tmp;
  harness::HarnessConfig cfg;
  cfg.writers = 1;
  cfg.batches_per_writer = 4;
  cfg.keys_per_writer = 1u << 7;
  auto scripts = harness::GenerateScripts(/*seed=*/61, cfg);
  BuildSnapshotDir(tmp.path, cfg, scripts);

  // Chop CURRENT below its fixed 16-byte frame.
  std::string current = tmp.path + "/CURRENT";
  ASSERT_TRUE(std::filesystem::exists(current));
  ASSERT_EQ(::truncate(current.c_str(), 7), 0);

  Status st = TryRecover(tmp.path, cfg);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_NE(st.message().find("truncated"), std::string_view::npos)
      << st.ToString();
}

TEST(Recovery, GarbageCurrentFailsTyped) {
  TempDir tmp;
  harness::HarnessConfig cfg;
  cfg.writers = 1;
  cfg.batches_per_writer = 4;
  cfg.keys_per_writer = 1u << 7;
  auto scripts = harness::GenerateScripts(/*seed=*/62, cfg);
  BuildSnapshotDir(tmp.path, cfg, scripts);

  // Overwrite CURRENT with 16 bytes of junk: right size, wrong magic/CRC.
  std::string current = tmp.path + "/CURRENT";
  {
    std::FILE* f = std::fopen(current.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const uint8_t junk[16] = {0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04,
                              0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C};
    ASSERT_EQ(std::fwrite(junk, 1, sizeof junk, f), sizeof junk);
    std::fclose(f);
  }

  Status st = TryRecover(tmp.path, cfg);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_NE(st.message().find("corrupt"), std::string_view::npos)
      << st.ToString();
}

TEST(Recovery, MissingSnapshotDirFailsTyped) {
  TempDir tmp;
  harness::HarnessConfig cfg;
  cfg.writers = 1;
  cfg.batches_per_writer = 4;
  cfg.keys_per_writer = 1u << 7;
  auto scripts = harness::GenerateScripts(/*seed=*/63, cfg);
  BuildSnapshotDir(tmp.path, cfg, scripts);

  // CURRENT still points at snap-1, which no longer exists.
  std::error_code ec;
  std::filesystem::remove_all(tmp.path + "/snap-1", ec);
  ASSERT_FALSE(ec);

  Status st = TryRecover(tmp.path, cfg);
  EXPECT_FALSE(st.ok()) << "recovery must not silently lose the snapshot";
  EXPECT_TRUE(st.IsNotFound() || st.IsIoError()) << st.ToString();
}

TEST(Recovery, RemovedManifestRecoversViaWalOnlyReplay) {
  TempDir tmp;
  harness::HarnessConfig cfg;
  cfg.writers = 2;
  cfg.batches_per_writer = 8;
  cfg.keys_per_writer = 1u << 8;
  auto scripts = harness::GenerateScripts(/*seed=*/64, cfg);

  // Durable run WITHOUT a snapshot: the workload lives only in the WALs.
  {
    Engine engine(DurableOptions(tmp.path, ExecutionMode::kSimulated));
    ObjectId idx = 0;
    ObjectId col = 0;
    RegisterHarnessSchema(engine, cfg, &idx, &col);
    engine.Start();
    harness::RunScriptsSequential(engine, idx, col, scripts);
    engine.Stop();
  }
  ASSERT_FALSE(std::filesystem::exists(tmp.path + "/CURRENT"));

  // No CURRENT at all: recovery replays the WALs from scratch and the
  // digest still matches the oracle.
  harness::EngineDigest recovered = RecoverAndDigest(tmp.path, cfg);
  harness::ExpectDigestsEqual(recovered, OracleDigest(cfg, scripts));
}

}  // namespace
}  // namespace eris::core
