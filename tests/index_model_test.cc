// Tests for the analytic index cost model: the mechanism behind the paper's
// superlinear ERIS scaling and the shared index's early memory-bound regime.
#include <gtest/gtest.h>

#include "sim/index_model.h"

namespace eris::sim {
namespace {

TreeShape Shape(uint32_t levels, uint64_t bytes, uint64_t keys = 1000000) {
  TreeShape s;
  s.levels = levels;
  s.fanout = 256;
  s.keys = keys;
  s.bytes = bytes;
  return s;
}

TEST(CachedLevelsTest, ZeroBudgetCachesNothing) {
  EXPECT_DOUBLE_EQ(CachedLevels(Shape(4, 1 << 20), 0.0), 0.0);
}

TEST(CachedLevelsTest, HugeBudgetCachesEverything) {
  EXPECT_DOUBLE_EQ(CachedLevels(Shape(4, 1 << 20), 1e18), 4.0);
}

TEST(CachedLevelsTest, UpperLevelsCheapLowerExpensive) {
  // 4 levels over 16 MiB: level bytes from root: 1KiB, 256KiB... no —
  // bytes/fanout^(L-1-d): d=0 -> 16MiB/256^3, d=3 -> 16MiB.
  TreeShape s = Shape(4, 16 << 20);
  double one_kib = CachedLevels(s, 1024.0);
  double mid = CachedLevels(s, 70000.0);
  double big = CachedLevels(s, static_cast<double>(17 << 20));
  EXPECT_GT(one_kib, 1.9);   // root and second level are tiny (< 300 B)
  EXPECT_LT(one_kib, 2.5);
  EXPECT_GT(mid, one_kib);
  EXPECT_GT(big, 3.0);
  EXPECT_LE(big, 4.0);
}

TEST(CachedLevelsTest, MonotoneInBudget) {
  TreeShape s = Shape(5, 1ull << 28);
  double prev = -1;
  for (double budget = 0; budget < 1e9; budget = budget * 2 + 1024) {
    double c = CachedLevels(s, budget);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(CachedLevelsTest, BiggerTreeCachesFewerLevels) {
  double budget = 1 << 20;
  double small = CachedLevels(Shape(4, 1 << 22), budget);
  double large = CachedLevels(Shape(4, 1 << 30), budget);
  EXPECT_GT(small, large);
}

TEST(PointOpCostTest, LocalBeatsInterleaved) {
  numa::Topology topo = numa::Topology::AmdMachine();
  CostModel model(topo);
  TreeShape s = Shape(4, 1 << 26);
  PointOpCost local = BatchPointOpCost(model, 0, 0, s, 1 << 20, 1000, false,
                                       false, false);
  PointOpCost inter = BatchPointOpCost(model, 0, 0, s, 1 << 20, 1000, true,
                                       false, false);
  EXPECT_LT(local.compute_ns, inter.compute_ns);
  EXPECT_EQ(local.remote_bytes, 0u);
  EXPECT_GT(inter.remote_bytes, 0u);
}

TEST(PointOpCostTest, CoherenceWritePenaltyApplies) {
  numa::Topology topo = numa::Topology::AmdMachine();
  CostModel model(topo);
  TreeShape s = Shape(4, 1 << 26);
  PointOpCost plain = BatchPointOpCost(model, 0, 0, s, 1 << 20, 1000, true,
                                       true, false);
  PointOpCost coherent = BatchPointOpCost(model, 0, 0, s, 1 << 20, 1000, true,
                                          true, true);
  EXPECT_GT(coherent.compute_ns, plain.compute_ns);
  EXPECT_GT(coherent.remote_bytes, plain.remote_bytes);
}

TEST(PointOpCostTest, MoreCacheMakesOpsCheaper) {
  numa::Topology topo = numa::Topology::SgiMachine(8);
  CostModel model(topo);
  TreeShape s = Shape(4, 1 << 26);
  PointOpCost small_cache =
      BatchPointOpCost(model, 0, 0, s, 1 << 16, 1000, false, false, false);
  PointOpCost big_cache =
      BatchPointOpCost(model, 0, 0, s, 1 << 24, 1000, false, false, false);
  EXPECT_LT(big_cache.compute_ns, small_cache.compute_ns);
  EXPECT_LT(big_cache.dram_bytes, small_cache.dram_bytes);
}

TEST(PointOpCostTest, CostScalesLinearlyWithCount) {
  numa::Topology topo = numa::Topology::IntelMachine();
  CostModel model(topo);
  TreeShape s = Shape(4, 1 << 26);
  PointOpCost one =
      BatchPointOpCost(model, 0, 0, s, 1 << 20, 100, false, false, false);
  PointOpCost ten =
      BatchPointOpCost(model, 0, 0, s, 1 << 20, 1000, false, false, false);
  EXPECT_NEAR(ten.compute_ns / one.compute_ns, 10.0, 0.01);
}

TEST(PointOpCostTest, ZeroCountIsFree) {
  numa::Topology topo = numa::Topology::IntelMachine();
  CostModel model(topo);
  PointOpCost c = BatchPointOpCost(model, 0, 0, Shape(4, 1 << 20), 1 << 20, 0,
                                   false, false, false);
  EXPECT_DOUBLE_EQ(c.compute_ns, 0.0);
  EXPECT_EQ(c.dram_bytes, 0u);
}

TEST(PointOpCostTest, PartitionedAggregateCacheBeatsShared) {
  // The superlinear-scaling mechanism: with n nodes, each ERIS partition is
  // 1/n of the data but every node contributes its own LLC, while the
  // shared index replicates the same hot set in every LLC. Per-op cost of a
  // partition of size B/n under budget C must be lower than a shared tree
  // of size B under the same per-node budget C.
  numa::Topology topo = numa::Topology::SgiMachine(16);
  CostModel model(topo);
  double llc = 20e6;
  uint64_t total_bytes = 1ull << 34;
  PointOpCost eris = BatchPointOpCost(
      model, 0, 0, Shape(4, total_bytes / 16), llc / 8, 1000, false, false,
      false);
  PointOpCost shared = BatchPointOpCost(
      model, 0, 0, Shape(4, total_bytes), llc / 8, 1000, true, false, false);
  EXPECT_LT(eris.compute_ns, shared.compute_ns);
}

}  // namespace
}  // namespace eris::sim
