// Stress and failure-injection tests: tiny buffers, command floods,
// adversarial install streams, concurrent clients with mixed workloads.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "core/engine.h"

namespace eris::core {
namespace {

using routing::KeyValue;
using storage::Key;
using storage::ObjectId;
using storage::Value;

TEST(StressTest, TinyIncomingBuffersStillDeliverEverything) {
  // Incoming buffers barely larger than one record force constant
  // flush-retry cycles; nothing may be lost.
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kSimulated;
  opts.router.incoming_capacity_bytes = 512;
  opts.router.flush_threshold_bytes = 128;
  opts.router.max_batch_elements = 8;
  Engine engine(opts);
  ObjectId idx = engine.CreateIndex("kv", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 20000; ++k) kvs.push_back({k, k});
  session->Insert(idx, kvs);
  std::vector<Key> all;
  for (Key k = 0; k < 20000; ++k) all.push_back(k);
  EXPECT_EQ(session->Lookup(idx, all), 20000u);
  engine.Stop();
}

TEST(StressTest, ManyClientsMixedWorkloadThreads) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(2, 2);
  opts.mode = ExecutionMode::kThreads;
  Engine engine(opts);
  ObjectId idx = engine.CreateIndex("kv", 1u << 18,
                                    {.prefix_bits = 8, .key_bits = 18});
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();

  std::vector<std::thread> clients;
  std::atomic<uint64_t> total_hits{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&engine, idx, col, c, &total_hits] {
      auto session = engine.CreateSession();
      Xoshiro256 rng(c + 1);
      Key base = static_cast<Key>(c) << 16;
      std::vector<KeyValue> kvs;
      for (Key k = 0; k < 5000; ++k) {
        kvs.push_back({base + k, static_cast<Value>(c)});
      }
      session->Insert(idx, kvs);
      std::vector<Value> vals(1000, static_cast<Value>(c));
      session->Append(col, vals);
      // Each client rereads only its own keys: exact counts hold even
      // with the other clients writing concurrently.
      std::vector<Key> mine;
      for (Key k = 0; k < 5000; ++k) mine.push_back(base + k);
      total_hits.fetch_add(session->Lookup(idx, mine));
      session->ScanColumn(col);  // smoke: concurrent multicast scans
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(total_hits.load(), 4u * 5000);
  auto session = engine.CreateSession();
  EXPECT_EQ(session->ScanColumn(col).rows, 4u * 1000);
  engine.Stop();
}

TEST(StressTest, RepeatedRebalanceUnderContinuousLoad) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(2, 2);
  opts.mode = ExecutionMode::kThreads;
  Engine engine(opts);
  const Key n = 1u << 15;
  ObjectId idx = engine.CreateIndex("kv", n,
                                    {.prefix_bits = 8, .key_bits = 15});
  engine.Start();
  {
    auto loader = engine.CreateSession();
    std::vector<KeyValue> kvs;
    for (Key k = 0; k < n; ++k) kvs.push_back({k, k});
    loader->Insert(idx, kvs);
  }
  std::atomic<bool> stop{false};
  std::thread balancer([&] {
    LoadBalancerConfig cfg;
    cfg.algorithm = BalanceAlgorithm::kOneShot;
    cfg.trigger_cv = 0.05;
    cfg.min_total_accesses = 1;
    while (!stop.load()) {
      engine.RebalanceObject(idx, cfg);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> readers;
  std::atomic<uint64_t> misses{0};
  for (int c = 0; c < 2; ++c) {
    readers.emplace_back([&engine, idx, n, c, &stop, &misses] {
      auto session = engine.CreateSession();
      Xoshiro256 rng(c * 7 + 1);
      while (!stop.load()) {
        // Skewed windows keep the balancer triggering.
        Key lo = rng.NextBounded(n / 2);
        std::vector<Key> probes;
        for (int i = 0; i < 512; ++i) {
          probes.push_back(lo + rng.NextBounded(n / 4));
        }
        uint64_t hits = session->Lookup(idx, probes);
        misses.fetch_add(probes.size() - hits);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  stop.store(true);
  balancer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(misses.load(), 0u) << "lookups lost during rebalancing";
  // All keys still present.
  auto session = engine.CreateSession();
  std::vector<Key> all;
  for (Key k = 0; k < n; ++k) all.push_back(k);
  EXPECT_EQ(session->Lookup(idx, all), n);
  engine.Stop();
}

TEST(FailureInjectionTest, RebuildSurvivesRandomCorruption) {
  numa::NodeMemoryManager mm(0);
  storage::DataObjectDesc desc = storage::DataObjectDesc::Index(
      0, "t", {.prefix_bits = 8, .key_bits = 16});
  storage::Partition p(desc, &mm, {0, storage::kMaxKey});
  for (Key k = 0; k < 500; ++k) p.Insert(k, k);
  std::vector<uint8_t> good = p.Flatten();

  Xoshiro256 rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bad = good;
    switch (trial % 4) {
      case 0:
        bad.resize(rng.NextBounded(bad.size()));  // truncation
        break;
      case 1:
        bad[rng.NextBounded(12)] ^= 0xFF;  // header corruption
        break;
      case 2: {
        // Count field inflation.
        uint64_t huge = ~0ull >> rng.NextBounded(16);
        std::memcpy(bad.data() + 4, &huge, 8);
        break;
      }
      default:
        bad[4 + rng.NextBounded(bad.size() - 4)] ^= 0x55;  // payload bitflip
        break;
    }
    // Must never crash; either a clean error or a structurally valid
    // partition (payload bitflips are not detectable without checksums).
    auto result =
        storage::Partition::Rebuild(desc, &mm, {0, storage::kMaxKey}, 0, bad);
    if (result.ok()) {
      EXPECT_LE(result->tuple_count(), 500u + 1);
    } else {
      EXPECT_FALSE(result.status().ok());
    }
  }
}

TEST(StressTest, ColumnAppendFloodWithTinyBatches) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kSimulated;
  opts.router.max_batch_elements = 3;
  Engine engine(opts);
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  auto session = engine.CreateSession();
  uint64_t expect_sum = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<Value> vals;
    for (int i = 0; i < 100; ++i) {
      vals.push_back(static_cast<Value>(round * 100 + i));
      expect_sum += round * 100 + i;
    }
    session->Append(col, vals);
  }
  ScanResult r = session->ScanColumn(col);
  EXPECT_EQ(r.rows, 5000u);
  EXPECT_EQ(r.sum, expect_sum);
  engine.Stop();
}

}  // namespace
}  // namespace eris::core
