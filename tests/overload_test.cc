// Overload-control tests: jittered-backoff determinism, bounded retry with
// shedding, deadline expiry at dequeue, admission control, stalled-AEU
// fail-fast, poison-command quarantine, and the heartbeat watchdog.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/aeu.h"
#include "core/engine.h"
#include "core/monitor.h"
#include "query/query.h"
#include "routing/router.h"

namespace eris {
namespace {

using core::AdmissionController;
using core::AeuWatchdog;
using core::Engine;
using core::EngineOptions;
using core::ExecutionMode;
using routing::AggregateSink;
using routing::CommandType;
using routing::DeliveryRetryPolicy;
using routing::DropReason;
using routing::Endpoint;
using routing::JitteredBackoffNs;
using routing::kInvalidAeu;
using routing::Router;
using routing::RouterConfig;
using storage::Key;

storage::DataObjectDesc IndexDesc(storage::ObjectId id) {
  return storage::DataObjectDesc::Index(id, "idx");
}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

TEST(BackoffTest, SameSeedProducesIdenticalDelaySequences) {
  DeliveryRetryPolicy policy;
  policy.backoff_base_ns = 1'000;
  policy.backoff_max_ns = 64'000;
  policy.jitter = 0.5;
  Xoshiro256 a(42), b(42);
  for (uint32_t attempt = 1; attempt <= 20; ++attempt) {
    EXPECT_EQ(JitteredBackoffNs(policy, attempt, a),
              JitteredBackoffNs(policy, attempt, b))
        << "attempt " << attempt;
  }
}

TEST(BackoffTest, DelaysStayWithinJitteredExponentialBounds) {
  DeliveryRetryPolicy policy;
  policy.backoff_base_ns = 1'000;
  policy.backoff_max_ns = 64'000;
  policy.jitter = 0.5;
  Xoshiro256 rng(7);
  for (uint32_t attempt = 1; attempt <= 40; ++attempt) {
    uint64_t exp = policy.backoff_base_ns
                   << std::min<uint32_t>(attempt - 1, 30);
    exp = std::min(exp, policy.backoff_max_ns);
    uint64_t delay = JitteredBackoffNs(policy, attempt, rng);
    EXPECT_GE(delay, exp / 2) << "attempt " << attempt;
    EXPECT_LE(delay, exp + exp / 2) << "attempt " << attempt;
  }
}

TEST(BackoffTest, ZeroBaseDisablesBackoff) {
  DeliveryRetryPolicy policy;
  policy.backoff_base_ns = 0;
  Xoshiro256 rng(1);
  EXPECT_EQ(JitteredBackoffNs(policy, 5, rng), 0u);
}

TEST(BackoffTest, HugeAttemptClampsToMaxWithoutOverflow) {
  DeliveryRetryPolicy policy;
  policy.backoff_base_ns = 1'000;
  policy.backoff_max_ns = 1'000'000;
  policy.jitter = 0.0;  // exact comparison
  Xoshiro256 rng(1);
  EXPECT_EQ(JitteredBackoffNs(policy, 200, rng), policy.backoff_max_ns);
}

// ---------------------------------------------------------------------------
// Bounded retry & shedding (router level)
// ---------------------------------------------------------------------------

TEST(BoundedRetryTest, RetryCapShedsInsteadOfSpinning) {
  RouterConfig cfg;
  cfg.incoming_capacity_bytes = 256;  // tiny mailbox, nobody drains it
  cfg.flush_threshold_bytes = 64;
  cfg.retry.max_attempts = 4;
  cfg.retry.pace_with_time = false;
  Router router({0}, cfg);
  router.RegisterRangeObject(IndexDesc(0), 1000);
  Endpoint ep(&router, kInvalidAeu, 0);
  AggregateSink sink;
  uint64_t expected = 0;
  for (int i = 0; i < 64; ++i) {
    std::vector<Key> keys(4, 1);
    expected += ep.SendLookupBatch(0, keys, &sink);
  }
  // With nobody draining AEU 0, flushes fail until the consecutive-failure
  // cap trips and the backlog is shed with typed drops.
  for (int i = 0; i < 1000 && ep.HasPending(); ++i) ep.FlushAll();
  EXPECT_FALSE(ep.HasPending());
  EXPECT_GT(ep.stats().commands_shed, 0u);
  EXPECT_GT(sink.dropped(DropReason::kRetryExhausted), 0u);
  // Shed units still count as completions, so waiters never hang. The units
  // that made it into the (undrained) mailbox are in flight, not completed:
  // every completion here came from a typed drop.
  EXPECT_EQ(sink.completed(), sink.dropped_total());
  EXPECT_LT(sink.completed(), expected);
  // Per-target failure accounting landed in the histogram.
  EXPECT_GT(ep.flush_retry_histogram().total_count(), 0u);
}

TEST(BoundedRetryTest, SuccessfulDeliveryResetsTheConsecutiveFailureCount) {
  RouterConfig cfg;
  cfg.incoming_capacity_bytes = 256;  // two 96-byte records do not both fit
  cfg.flush_threshold_bytes = 1 << 14;
  cfg.retry.max_attempts = 3;
  cfg.retry.pace_with_time = false;
  Router router({0}, cfg);
  router.RegisterRangeObject(IndexDesc(0), 1000);
  Endpoint ep(&router, kInvalidAeu, 0);
  AggregateSink sink;
  // Fill-drain cycles: within each round some flushes fail (the mailbox is
  // too small for the whole backlog) but every record is eventually
  // delivered, so the consecutive-failure count keeps resetting and nothing
  // is ever shed despite far more than max_attempts total failures.
  for (int round = 0; round < 20; ++round) {
    for (int b = 0; b < 3; ++b) {
      std::vector<Key> keys(8, 1);
      ep.SendLookupBatch(0, keys, &sink);
    }
    while (ep.HasPending()) {
      ep.FlushAll();
      router.mailbox(0).Drain([](std::span<const uint8_t>) {});
    }
  }
  EXPECT_EQ(ep.stats().commands_shed, 0u);
  EXPECT_EQ(sink.dropped_total(), 0u);
  // The interleaved failures were still recorded for observability.
  EXPECT_GT(ep.flush_retry_histogram().total_count(), 0u);
}

// ---------------------------------------------------------------------------
// Stalled-target fail-fast & mailbox sealing (router level)
// ---------------------------------------------------------------------------

TEST(StalledAeuTest, FlushToStalledTargetShedsFailFast) {
  RouterConfig cfg;
  Router router({0, 1}, cfg);
  router.RegisterRangeObject(IndexDesc(0), 1000);
  router.SetAeuStalled(1, true);
  EXPECT_TRUE(router.IsAeuStalled(1));
  EXPECT_EQ(router.StalledCount(), 1u);

  Endpoint ep(&router, kInvalidAeu, 0);
  AggregateSink sink;
  // Key 999 routes to AEU 1 (upper half of [0, 1000)).
  std::vector<Key> keys{999};
  uint64_t expected = ep.SendLookupBatch(0, keys, &sink);
  ep.FlushAll();
  EXPECT_FALSE(ep.HasPending());
  EXPECT_EQ(sink.dropped(DropReason::kTargetStalled), expected);
  EXPECT_EQ(sink.completed(), expected);
  // The stalled AEU's sealed mailbox refused direct writes too.
  EXPECT_EQ(router.mailbox(1).PendingBytes(), 0u);

  // Recovery: unflagging unseals and delivery works again.
  router.SetAeuStalled(1, false);
  sink.Reset();
  ep.SendLookupBatch(0, keys, &sink);
  ep.FlushAll();
  EXPECT_GT(router.mailbox(1).PendingBytes(), 0u);
}

TEST(StalledAeuTest, SealedMailboxRejectsWritesUntilUnsealed) {
  RouterConfig cfg;
  Router router({0}, cfg);
  router.RegisterRangeObject(IndexDesc(0), 1000);
  Endpoint ep(&router, kInvalidAeu, 0);
  std::vector<Key> keys{1};
  ep.SendLookupBatch(0, keys, nullptr);
  router.mailbox(0).Seal();
  EXPECT_FALSE(ep.FlushAll());
  EXPECT_TRUE(ep.HasPending());
  router.mailbox(0).Unseal();
  EXPECT_TRUE(ep.FlushAll());
  EXPECT_GT(router.mailbox(0).PendingBytes(), 0u);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(AdmissionTest, ControllerEnforcesBudget) {
  AdmissionController adm(10);
  EXPECT_TRUE(adm.TryAcquire(6));
  EXPECT_TRUE(adm.TryAcquire(4));
  EXPECT_FALSE(adm.TryAcquire(1));
  EXPECT_EQ(adm.inflight(), 10u);
  EXPECT_EQ(adm.rejections(), 1u);
  adm.Release(4);
  EXPECT_TRUE(adm.TryAcquire(3));
  // Budget 0 = unlimited, counter untouched.
  AdmissionController open(0);
  EXPECT_TRUE(open.TryAcquire(~uint64_t{0}));
  EXPECT_EQ(open.inflight(), 0u);
}

TEST(AdmissionTest, OversizedSubmitIsRejectedWithTypedStatus) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kSimulated;
  opts.overload.max_inflight_units = 8;
  Engine engine(opts);
  storage::ObjectId idx = engine.CreateIndex("kv", 1 << 12);
  engine.Start();
  auto session = engine.CreateSession();

  std::vector<routing::KeyValue> big(16);
  for (size_t i = 0; i < big.size(); ++i) big[i] = {Key(i), i};
  Engine::Session::SubmitOutcome out;
  Status st = session->SubmitInsert(idx, big, &out);
  EXPECT_TRUE(st.IsResourceExhausted()) << st;
  EXPECT_EQ(st.detail(), StatusDetail::kAdmissionRejected);
  EXPECT_EQ(engine.admission().rejections(), 1u);
  EXPECT_EQ(out.units, 0u);

  // Within budget: admitted, processed, and the grant released after.
  std::vector<routing::KeyValue> small(8);
  for (size_t i = 0; i < small.size(); ++i) small[i] = {Key(i), i};
  st = session->SubmitInsert(idx, small, &out);
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_EQ(out.hits, small.size());
  EXPECT_EQ(engine.admission().inflight(), 0u);
  st = session->SubmitUpsert(idx, small, &out);
  EXPECT_TRUE(st.ok()) << st;
  engine.Stop();
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST(DeadlineTest, ExpiredCommandsAreDroppedAtDequeue) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kSimulated;
  Engine engine(opts);
  storage::ObjectId idx = engine.CreateIndex("kv", 1 << 12);
  engine.Start();
  auto session = engine.CreateSession();

  // A 1 ns deadline is in the past by the time any AEU dequeues.
  session->set_op_timeout_ns(1);
  std::vector<routing::KeyValue> kvs{{7, 70}, {4000, 40}};
  Engine::Session::SubmitOutcome out;
  Status st = session->SubmitInsert(idx, kvs, &out);
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st;
  EXPECT_EQ(st.detail(), StatusDetail::kDeadlineExpired);
  EXPECT_EQ(out.expired, kvs.size());
  uint64_t expired = 0;
  for (uint32_t a = 0; a < engine.num_aeus(); ++a) {
    expired += engine.aeu(a).loop_stats().commands_expired;
  }
  EXPECT_GT(expired, 0u);

  // Nothing was applied; without a deadline the same batch lands.
  session->set_op_timeout_ns(0);
  std::vector<Key> keys{7, 4000};
  EXPECT_EQ(session->Lookup(idx, keys), 0u);
  st = session->SubmitInsert(idx, kvs, &out);
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_EQ(session->Lookup(idx, keys), 2u);
  engine.Stop();
}

TEST(DeadlineTest, GenerousDeadlineCompletesNormally) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kSimulated;
  opts.overload.default_deadline_ns = 10'000'000'000ull;  // 10 s
  Engine engine(opts);
  storage::ObjectId idx = engine.CreateIndex("kv", 1 << 12);
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<routing::KeyValue> kvs{{1, 10}, {2, 20}, {3000, 30}};
  Engine::Session::SubmitOutcome out;
  Status st = session->SubmitUpsert(idx, kvs, &out);
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_EQ(out.hits, kvs.size());
  EXPECT_EQ(out.expired, 0u);
  engine.Stop();
}

TEST(DeadlineTest, DeadlineAwareAggregateReturnsTypedStatus) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kSimulated;
  Engine engine(opts);
  storage::ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  {
    auto session = engine.CreateSession();
    std::vector<storage::Value> values{5, 10, 15, 20};
    session->Append(col, values);
  }
  query::QueryRunner runner(&engine);
  Result<query::AggregateResult> ok =
      runner.AggregateWithin(col, {.lo = 10, .hi = 20}, /*timeout_ns=*/0);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->rows, 3u);
  EXPECT_EQ(ok->sum, 45u);
  Result<query::AggregateResult> late =
      runner.AggregateWithin(col, {}, /*timeout_ns=*/1);
  ASSERT_FALSE(late.ok());
  EXPECT_TRUE(late.status().IsDeadlineExceeded()) << late.status();
  engine.Stop();
}

// ---------------------------------------------------------------------------
// Stalled AEU via the engine (fail-fast submits)
// ---------------------------------------------------------------------------

TEST(StalledAeuTest, SubmitToFlaggedAeuReturnsUnavailable) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kSimulated;
  Engine engine(opts);
  storage::ObjectId idx = engine.CreateIndex("kv", 1 << 12);
  engine.Start();
  engine.router().SetAeuStalled(1, true);

  auto session = engine.CreateSession();
  // Keys in the upper half of the domain route to AEU 1.
  std::vector<routing::KeyValue> kvs{{(1 << 12) - 1, 1}, {(1 << 12) - 2, 2}};
  Engine::Session::SubmitOutcome out;
  Status st = session->SubmitUpsert(idx, kvs, &out);
  EXPECT_TRUE(st.IsUnavailable()) << st;
  EXPECT_EQ(st.detail(), StatusDetail::kAeuStalled);
  EXPECT_EQ(out.stalled, kvs.size());

  // The healthy AEU still accepts work.
  std::vector<routing::KeyValue> healthy{{1, 10}};
  st = session->SubmitUpsert(idx, healthy, &out);
  EXPECT_TRUE(st.ok()) << st;
  engine.router().SetAeuStalled(1, false);
  engine.Stop();
}

// ---------------------------------------------------------------------------
// Poison quarantine
// ---------------------------------------------------------------------------

constexpr Key kPoisonMarker = 777;

TEST(QuarantineTest, PoisonCommandIsRetriedThenDeadLettered) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kSimulated;
  opts.overload.max_command_retries = 2;
  Engine engine(opts);
  storage::ObjectId idx = engine.CreateIndex("kv", 1 << 12);
  engine.Start();

  fi::FaultInjector::Global().Reset();
  fi::FaultInjector::Global().SetHook(fi::Point::kAeuProcess, [] {
    const core::Aeu* aeu = core::Aeu::Current();
    if (aeu == nullptr || aeu->current_command() == nullptr) return;
    const routing::CommandView& cmd = *aeu->current_command();
    if (cmd.header.type != CommandType::kInsertBatch) return;
    for (const routing::KeyValue& kv : cmd.PayloadAs<routing::KeyValue>()) {
      if (kv.key == kPoisonMarker) throw std::runtime_error("poison");
    }
  });

  auto session = engine.CreateSession();
  std::vector<routing::KeyValue> poison{{kPoisonMarker, 1}};
  Engine::Session::SubmitOutcome out;
  Status st = session->SubmitInsert(idx, poison, &out);
  EXPECT_TRUE(st.IsInternal()) << st;
  EXPECT_EQ(st.detail(), StatusDetail::kCommandQuarantined);
  EXPECT_EQ(out.quarantined, 1u);

  uint64_t quarantined = 0;
  bool dead_letter_found = false;
  for (uint32_t a = 0; a < engine.num_aeus(); ++a) {
    quarantined += engine.aeu(a).loop_stats().commands_quarantined;
    for (const core::Aeu::DeadLetter& dl : engine.aeu(a).dead_letters()) {
      if (dl.header.type == CommandType::kInsertBatch &&
          !dl.payload.empty()) {
        dead_letter_found = true;
      }
    }
  }
  EXPECT_EQ(quarantined, 1u);
  EXPECT_TRUE(dead_letter_found);
  // The poisoned key was never applied; clean traffic is unaffected.
  std::vector<Key> probe{kPoisonMarker};
  EXPECT_EQ(session->Lookup(idx, probe), 0u);
  std::vector<routing::KeyValue> clean{{5, 50}};
  st = session->SubmitInsert(idx, clean, &out);
  EXPECT_TRUE(st.ok()) << st;
  fi::FaultInjector::Global().Reset();
  engine.Stop();
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(WatchdogTest, StaticHeartbeatWithPendingWorkStallsAfterStrikes) {
  AeuWatchdog wd(2, /*strike_threshold=*/3);
  // Idle AEUs never stall, however static their heartbeat.
  for (int i = 0; i < 10; ++i) {
    wd.Observe(0, /*heartbeat=*/5, /*has_pending_work=*/false);
  }
  EXPECT_FALSE(wd.stalled(0));
  // Static heartbeat with work: three consecutive strikes flag the AEU
  // (the earlier idle observations already provided the baseline).
  AeuWatchdog::Observation obs;
  for (int i = 0; i < 3; ++i) obs = wd.Observe(0, 5, true);
  EXPECT_TRUE(obs.newly_stalled);
  EXPECT_TRUE(wd.stalled(0));
  EXPECT_EQ(wd.stalled_count(), 1u);
  EXPECT_EQ(wd.stall_events(), 1u);
  // An advancing heartbeat recovers it (even with work still pending).
  obs = wd.Observe(0, 6, true);
  EXPECT_TRUE(obs.newly_recovered);
  EXPECT_FALSE(wd.stalled(0));
  EXPECT_EQ(wd.stalled_count(), 0u);
  // A drained-but-blocked AEU (no pending work, static heartbeat) stays
  // flagged until the heartbeat actually moves. First observation of AEU 1
  // is the baseline, so threshold + 1 observations are needed.
  for (int i = 0; i < 4; ++i) wd.Observe(1, 9, true);
  ASSERT_TRUE(wd.stalled(1));
  wd.Observe(1, 9, false);
  EXPECT_TRUE(wd.stalled(1));
  wd.Observe(1, 10, false);
  EXPECT_FALSE(wd.stalled(1));
}

TEST(WatchdogTest, EngineCheckAeuHealthFlagsRouterAndRecovers) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kSimulated;
  opts.overload.watchdog_strikes = 1;
  Engine engine(opts);
  storage::ObjectId idx = engine.CreateIndex("kv", 1 << 12);
  engine.Start();
  auto session = engine.CreateSession();

  // Park undrained work in AEU 0's mailbox: send without pumping.
  std::vector<Key> keys{1};
  session->endpoint().SendLookupBatch(idx, keys, &session->sink());
  session->endpoint().FlushAll();
  ASSERT_GT(engine.router().mailbox(0).PendingBytes(), 0u);

  // Simulated engine: nobody runs the loops between health checks, so the
  // heartbeat is static while the mailbox holds work — a stall.
  engine.CheckAeuHealth();
  engine.CheckAeuHealth();
  EXPECT_TRUE(engine.watchdog().stalled(0));
  EXPECT_TRUE(engine.router().IsAeuStalled(0));
  EXPECT_EQ(engine.watchdog().stall_events(), 1u);

  // Draining (pump) advances the heartbeat; the next check recovers it.
  // The sealed mailbox still drains — sealing only blocks new writers.
  engine.PumpAll();
  engine.CheckAeuHealth();
  EXPECT_FALSE(engine.watchdog().stalled(0));
  EXPECT_FALSE(engine.router().IsAeuStalled(0));
  engine.Stop();
}

TEST(WatchdogTest, BackgroundThreadDetectsWedgedAeu) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kThreads;
  opts.pin_threads = false;
  opts.overload.watchdog = true;
  opts.overload.watchdog_interval_ms = 5;
  opts.overload.watchdog_strikes = 3;
  Engine engine(opts);
  storage::ObjectId idx = engine.CreateIndex("kv", 1 << 12);
  engine.Start();

  // Wedge AEU 0's loop thread before its heartbeat tick.
  std::atomic<bool> stall{true};
  fi::FaultInjector::Global().Reset();
  fi::FaultInjector::Global().SetHook(fi::Point::kAeuLoop, [&stall] {
    const core::Aeu* aeu = core::Aeu::Current();
    if (aeu == nullptr || aeu->id() != 0) return;
    while (stall.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Park undrained work in its mailbox (flush only, no wait).
  auto session = engine.CreateSession();
  std::vector<Key> keys{1};
  session->endpoint().SendLookupBatch(idx, keys, &session->sink());
  session->endpoint().FlushAll();

  // The background watchdog thread must flag the AEU on its own.
  Stopwatch detect;
  while (!engine.watchdog().stalled(0) && detect.ElapsedSeconds() < 30.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(engine.watchdog().stalled(0));
  EXPECT_TRUE(engine.router().IsAeuStalled(0));
  EXPECT_GE(engine.watchdog().stall_events(), 1u);

  // ...and recover it once the loop runs again.
  stall.store(false, std::memory_order_release);
  Stopwatch recover;
  while (engine.watchdog().stalled(0) && recover.ElapsedSeconds() < 30.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(engine.watchdog().stalled(0));
  EXPECT_FALSE(engine.router().IsAeuStalled(0));

  // The hook must outlive the loop threads: FaultInjector config calls
  // require quiescence, so Reset() only after Stop() has joined them.
  engine.Stop();
  fi::FaultInjector::Global().Reset();
}

// ---------------------------------------------------------------------------
// Deadline stamping at the endpoint
// ---------------------------------------------------------------------------

TEST(DeadlineTest, EndpointStampsDeadlineOntoRoutedCommands) {
  RouterConfig cfg;
  Router router({0}, cfg);
  router.RegisterRangeObject(IndexDesc(0), 1000);
  Endpoint ep(&router, kInvalidAeu, 0);
  ep.set_deadline_ns(12345);
  std::vector<Key> keys{1};
  ep.SendLookupBatch(0, keys, nullptr);
  ep.set_deadline_ns(0);
  ep.FlushAll();
  bool seen = false;
  router.mailbox(0).Drain([&](std::span<const uint8_t> region) {
    size_t pos = 0;
    while (pos + sizeof(routing::CommandHeader) <= region.size()) {
      routing::CommandView v = routing::DecodeCommand(region.data() + pos);
      pos += v.record_bytes();
      EXPECT_EQ(v.header.deadline_ns, 12345u);
      seen = true;
    }
  });
  EXPECT_TRUE(seen);
}

}  // namespace
}  // namespace eris
