// Load balancing: target computation, plan execution, link/copy transfers,
// and correctness of queries issued around rebalance cycles.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/engine.h"

namespace eris::core {
namespace {

using routing::KeyValue;
using storage::Key;
using storage::ObjectId;

EngineOptions Opts(numa::Topology topo, ExecutionMode mode) {
  EngineOptions o;
  o.topology = std::move(topo);
  o.mode = mode;
  return o;
}

LoadBalancerConfig OneShot() {
  LoadBalancerConfig cfg;
  cfg.algorithm = BalanceAlgorithm::kOneShot;
  cfg.trigger_cv = 0.05;
  cfg.min_total_accesses = 1;
  return cfg;
}

// Loads keys 0..n-1, then hammers a narrow key window so the monitor sees a
// skewed distribution, rebalances, and verifies every key is still found.
class RangeRebalanceTest : public ::testing::TestWithParam<ExecutionMode> {};

TEST_P(RangeRebalanceTest, OneShotPreservesAllKeys) {
  Engine engine(Opts(numa::Topology::Flat(2, 2), GetParam()));
  ObjectId idx = engine.CreateIndex("kv", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();

  const Key n = 40000;
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < n; ++k) kvs.push_back({k, k + 1});
  session->Insert(idx, kvs);

  // Skew: probe only the first quarter of the domain repeatedly.
  std::vector<Key> hot;
  for (Key k = 0; k < n / 4; ++k) hot.push_back(k);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(session->Lookup(idx, hot), hot.size());
  }

  EXPECT_TRUE(engine.RebalanceObject(idx, OneShot()));

  // The partitioning changed: boundaries should no longer be uniform.
  auto entries = engine.router().range_table(idx)->Snapshot();
  ASSERT_EQ(entries.size(), engine.num_aeus());

  // All keys still readable after the transfers.
  std::vector<Key> all;
  for (Key k = 0; k < n; ++k) all.push_back(k);
  EXPECT_EQ(session->Lookup(idx, all), n);

  // Values intact (spot check).
  auto vals = session->LookupValues(idx, std::vector<Key>{0, 1234, 39999});
  EXPECT_EQ(vals[0], std::optional<storage::Value>(1));
  EXPECT_EQ(vals[1], std::optional<storage::Value>(1235));
  EXPECT_EQ(vals[2], std::optional<storage::Value>(40000));

  // Sum over all partitions must equal n.
  uint64_t total_tuples = 0;
  for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    total_tuples += engine.aeu(a).partition(idx)->tuple_count();
  }
  EXPECT_EQ(total_tuples, n);
  engine.Stop();
}

TEST_P(RangeRebalanceTest, HotPartitionShrinks) {
  Engine engine(Opts(numa::Topology::Flat(1, 4), GetParam()));
  ObjectId idx = engine.CreateIndex("kv", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();
  const Key n = 1u << 16;
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < n; ++k) kvs.push_back({k, 1});
  session->Insert(idx, kvs);

  auto before = engine.router().range_table(idx)->Snapshot();
  // Hammer the first AEU's range only.
  std::vector<Key> hot;
  for (Key k = 0; k < n / 4; ++k) hot.push_back(k);
  session->Lookup(idx, hot);
  ASSERT_TRUE(engine.RebalanceObject(idx, OneShot()));
  auto after = engine.router().range_table(idx)->Snapshot();
  // The first boundary moved left: partition 0 now covers fewer keys.
  EXPECT_LT(after[0].hi, before[0].hi);
  // All keys remain reachable.
  std::vector<Key> all;
  for (Key k = 0; k < n; ++k) all.push_back(k);
  EXPECT_EQ(session->Lookup(idx, all), n);
  engine.Stop();
}

TEST_P(RangeRebalanceTest, CrossNodeCopyTransfer) {
  // 4 nodes x 1 core: any transfer crosses nodes and must use copy.
  Engine engine(Opts(numa::Topology::IntelMachine(), GetParam()));
  EngineOptions check = engine.options();
  ASSERT_EQ(check.topology.num_nodes(), 4u);
  ObjectId idx = engine.CreateIndex("kv", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();
  const Key n = 1u << 16;
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < n; ++k) kvs.push_back({k, k});
  session->Insert(idx, kvs);
  std::vector<Key> hot;
  for (Key k = 0; k < 2000; ++k) hot.push_back(k);
  session->Lookup(idx, hot);
  ASSERT_TRUE(engine.RebalanceObject(idx, OneShot()));
  uint64_t copies = 0;
  uint64_t links = 0;
  for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    copies += engine.aeu(a).loop_stats().copy_transfers;
    links += engine.aeu(a).loop_stats().link_transfers;
  }
  EXPECT_GT(copies + links, 0u);
  std::vector<Key> all;
  for (Key k = 0; k < n; ++k) all.push_back(k);
  EXPECT_EQ(session->Lookup(idx, all), n);
  engine.Stop();
}

TEST_P(RangeRebalanceTest, MovingAverageIsGentlerThanOneShot) {
  std::vector<storage::Key> first_boundary;
  for (auto algo : {BalanceAlgorithm::kOneShot,
                    BalanceAlgorithm::kMovingAverage}) {
    Engine engine(Opts(numa::Topology::Flat(1, 4), GetParam()));
    ObjectId idx = engine.CreateIndex("kv", 1u << 16,
                                      {.prefix_bits = 8, .key_bits = 16});
    engine.Start();
    auto session = engine.CreateSession();
    const Key n = 1u << 16;
    std::vector<KeyValue> kvs;
    for (Key k = 0; k < n; ++k) kvs.push_back({k, 1});
    session->Insert(idx, kvs);
    std::vector<Key> hot;
    for (Key k = 0; k < n / 4; ++k) hot.push_back(k);
    session->Lookup(idx, hot);
    LoadBalancerConfig cfg = OneShot();
    cfg.algorithm = algo;
    cfg.ma_window = 1;
    ASSERT_TRUE(engine.RebalanceObject(idx, cfg));
    first_boundary.push_back(
        engine.router().range_table(idx)->Snapshot()[0].hi);
    engine.Stop();
  }
  // One-Shot moves the first boundary further left than MA1.
  EXPECT_LT(first_boundary[0], first_boundary[1]);
}

TEST_P(RangeRebalanceTest, LookupsDuringRebalanceComplete) {
  // Issue the rebalance and immediately stream lookups; completion
  // accounting (forward + defer) must not lose units.
  Engine engine(Opts(numa::Topology::Flat(2, 2), GetParam()));
  ObjectId idx = engine.CreateIndex("kv", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();
  const Key n = 30000;
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < n; ++k) kvs.push_back({k, 1});
  session->Insert(idx, kvs);
  std::vector<Key> hot;
  for (Key k = 0; k < n / 3; ++k) hot.push_back(k);
  session->Lookup(idx, hot);

  if (GetParam() == ExecutionMode::kThreads) {
    // Run lookups from this thread while the balancer cycles concurrently.
    std::thread balance([&] { engine.RebalanceObject(idx, OneShot()); });
    Xoshiro256 rng(3);
    for (int round = 0; round < 20; ++round) {
      std::vector<Key> probes;
      for (int i = 0; i < 2000; ++i) probes.push_back(rng.NextBounded(n));
      EXPECT_EQ(session->Lookup(idx, probes), probes.size());
    }
    balance.join();
  } else {
    engine.RebalanceObject(idx, OneShot());
  }
  std::vector<Key> all;
  for (Key k = 0; k < n; ++k) all.push_back(k);
  EXPECT_EQ(session->Lookup(idx, all), n);
  engine.Stop();
}

INSTANTIATE_TEST_SUITE_P(Modes, RangeRebalanceTest,
                         ::testing::Values(ExecutionMode::kSimulated,
                                           ExecutionMode::kThreads),
                         [](const auto& info) {
                           return info.param == ExecutionMode::kSimulated
                                      ? "Simulated"
                                      : "Threads";
                         });

TEST(ExecTimeMetricTest, ExecutionTimeDrivesBalancing) {
  // The paper's additional metric for range partitioning: mean command
  // execution time. Access counts alone can look balanced while one
  // partition's commands are far more expensive.
  Engine engine(Opts(numa::Topology::Flat(1, 4), ExecutionMode::kSimulated));
  ObjectId idx = engine.CreateIndex("kv", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  engine.Start();

  // Feed the monitor directly: equal access counts, skewed exec times.
  for (routing::AeuId a = 0; a < 4; ++a) {
    engine.monitor().RecordAccess(a, idx, 10000, a == 0 ? 9e6 : 1e6);
  }
  LoadBalancerConfig cfg;
  cfg.algorithm = BalanceAlgorithm::kOneShot;
  cfg.metric = BalanceMetric::kExecutionTime;
  cfg.trigger_cv = 0.2;
  cfg.min_total_accesses = 1;
  auto before = engine.router().range_table(idx)->Snapshot();
  ASSERT_TRUE(engine.RebalanceObject(idx, cfg));
  auto after = engine.router().range_table(idx)->Snapshot();
  // The slow partition (AEU 0) shrinks.
  EXPECT_LT(after[0].hi, before[0].hi);

  // With the frequency metric the same measurements do not trigger.
  for (routing::AeuId a = 0; a < 4; ++a) {
    engine.monitor().RecordAccess(a, idx, 10000, a == 0 ? 9e6 : 1e6);
  }
  cfg.metric = BalanceMetric::kAccessFrequency;
  EXPECT_FALSE(engine.RebalanceObject(idx, cfg));
  engine.Stop();
}

TEST(PhysicalRebalanceTest, EqualizesColumnSizes) {
  EngineOptions o = Opts(numa::Topology::Flat(2, 2), ExecutionMode::kSimulated);
  Engine engine(o);
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  auto session = engine.CreateSession();

  // Load unevenly: bypass round-robin by appending directly to AEU 0.
  storage::Partition* p0 = engine.aeu(0).partition(col);
  for (storage::Value v = 0; v < 100000; ++v) {
    p0->ColumnAppend(v, engine.oracle().NextWriteTs());
  }
  engine.monitor().RecordSize(0, col, p0->tuple_count(), p0->memory_bytes());

  LoadBalancerConfig cfg;
  cfg.algorithm = BalanceAlgorithm::kOneShot;
  cfg.trigger_cv = 0.05;
  ASSERT_TRUE(engine.RebalanceObject(col, cfg));

  uint64_t total = 0;
  uint64_t max_part = 0;
  for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    uint64_t t = engine.aeu(a).partition(col)->tuple_count();
    total += t;
    max_part = std::max(max_part, t);
  }
  EXPECT_EQ(total, 100000u);
  // Reasonably balanced: no partition holds more than 40% after the cycle.
  EXPECT_LT(max_part, total * 2 / 5);

  // Scan still sees every tuple exactly once.
  ScanResult r = session->ScanColumn(col);
  EXPECT_EQ(r.rows, 100000u);
  engine.Stop();
}

}  // namespace
}  // namespace eris::core
