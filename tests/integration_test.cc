// Cross-module integration tests: multi-object workloads, scan sharing,
// dynamic rebalancing under load, and large simulated machines.
#include <gtest/gtest.h>

#include <thread>

#include "baseline/shared_tree.h"
#include "common/rng.h"
#include "core/engine.h"

namespace eris::core {
namespace {

using routing::KeyValue;
using storage::Key;
using storage::ObjectId;
using storage::Value;

TEST(IntegrationTest, MultipleObjectsIndependent) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(2, 2);
  opts.mode = ExecutionMode::kSimulated;
  Engine engine(opts);
  ObjectId idx = engine.CreateIndex("orders", 1u << 20,
                                    {.prefix_bits = 8, .key_bits = 20});
  ObjectId col = engine.CreateColumn("amounts");
  ObjectId ht = engine.CreateHashTable("customers", 1u << 16);
  engine.Start();
  auto session = engine.CreateSession();

  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 5000; ++k) kvs.push_back({k, k * 2});
  session->Insert(idx, kvs);

  std::vector<Value> values;
  for (Value v = 0; v < 5000; ++v) values.push_back(v);
  session->Append(col, values);

  std::vector<KeyValue> customers;
  for (Key k = 0; k < 3000; ++k) customers.push_back({k, k + 1000});
  session->Insert(ht, customers);

  std::vector<Key> probe{0, 1, 2999};
  EXPECT_EQ(session->Lookup(idx, probe), 3u);
  EXPECT_EQ(session->ScanColumn(col).rows, 5000u);
  EXPECT_EQ(session->Lookup(ht, probe), 3u);
  auto vals = session->LookupValues(ht, std::vector<Key>{42});
  EXPECT_EQ(vals[0], std::optional<Value>(1042));
  engine.Stop();
}

TEST(IntegrationTest, ScanSharingCoalescesConcurrentScans) {
  // Thread mode: many concurrent scans of the same column must coalesce
  // (an AEU drains several scan commands in one loop pass).
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kThreads;
  Engine engine(opts);
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  {
    auto loader = engine.CreateSession();
    std::vector<Value> values(200000);
    for (size_t i = 0; i < values.size(); ++i) values[i] = i % 1000;
    loader->Append(col, values);
  }
  // Fire scans from several client threads at once.
  std::vector<std::thread> clients;
  std::atomic<uint64_t> total_rows{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&engine, col, &total_rows] {
      auto session = engine.CreateSession();
      for (int i = 0; i < 25; ++i) {
        ScanResult r = session->ScanColumn(col);
        EXPECT_EQ(r.rows, 200000u);
        total_rows.fetch_add(r.rows);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(total_rows.load(), 4u * 25 * 200000);
  uint64_t coalesced = 0;
  for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    coalesced += engine.aeu(a).loop_stats().scans_coalesced;
  }
  // With 100 scans racing over 2 AEUs some coalescing must have happened.
  EXPECT_GT(coalesced, 0u);
  engine.Stop();
}

TEST(IntegrationTest, SnapshotScansIsolatedFromAppends) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = ExecutionMode::kSimulated;
  Engine engine(opts);
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<Value> first(1000, 1);
  session->Append(col, first);
  ScanResult r1 = session->ScanColumn(col);
  EXPECT_EQ(r1.rows, 1000u);
  std::vector<Value> second(500, 2);
  session->Append(col, second);
  ScanResult r2 = session->ScanColumn(col);
  EXPECT_EQ(r2.rows, 1500u);
  EXPECT_EQ(r2.sum, 1000u + 1000u);
  engine.Stop();
}

TEST(IntegrationTest, DynamicWorkloadWithPeriodicRebalance) {
  // The Figure-13 scenario in miniature: a shifting hot range with
  // balancing cycles interleaved; correctness must hold throughout.
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(2, 2);
  opts.mode = ExecutionMode::kSimulated;
  Engine engine(opts);
  const Key n = 1u << 16;
  ObjectId idx = engine.CreateIndex("kv", n,
                                    {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < n; ++k) kvs.push_back({k, k});
  session->Insert(idx, kvs);

  LoadBalancerConfig cfg;
  cfg.algorithm = BalanceAlgorithm::kMovingAverage;
  cfg.ma_window = 2;
  cfg.trigger_cv = 0.1;
  cfg.min_total_accesses = 1;

  Xoshiro256 rng(17);
  Key window_lo = 0;
  for (int phase = 0; phase < 6; ++phase) {
    std::vector<Key> probes;
    for (int i = 0; i < 8000; ++i) {
      probes.push_back(window_lo + rng.NextBounded(n / 4));
    }
    EXPECT_EQ(session->Lookup(idx, probes), probes.size());
    engine.RebalanceObject(idx, cfg);
    window_lo = (window_lo + n / 8) % (n - n / 4);
  }
  // Everything still present with correct values.
  std::vector<Key> all;
  for (Key k = 0; k < n; k += 7) all.push_back(k);
  auto vals = session->LookupValues(idx, all);
  for (size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(vals[i], std::optional<Value>(all[i])) << all[i];
  }
  engine.Stop();
}

TEST(IntegrationTest, WritesAndErasesAcrossRebalance) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(2, 2);
  opts.mode = ExecutionMode::kSimulated;
  Engine engine(opts);
  const Key n = 1u << 14;
  ObjectId idx = engine.CreateIndex("kv", n,
                                    {.prefix_bits = 8, .key_bits = 14});
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < n; ++k) kvs.push_back({k, 1});
  session->Insert(idx, kvs);

  LoadBalancerConfig cfg;
  cfg.algorithm = BalanceAlgorithm::kOneShot;
  cfg.trigger_cv = 0.05;
  cfg.min_total_accesses = 1;

  // Interleave writes/erases with rebalances.
  for (int round = 0; round < 4; ++round) {
    std::vector<Key> hot;
    for (Key k = 0; k < n / 4; ++k) hot.push_back((round * n / 4 + k) % n);
    session->Lookup(idx, hot);
    std::vector<KeyValue> updates;
    for (Key k = 0; k < 500; ++k) {
      updates.push_back({(round * 1000 + k) % n, 100 + round});
    }
    session->Upsert(idx, updates);
    engine.RebalanceObject(idx, cfg);
  }
  // Updated keys carry their newest value.
  auto vals = session->LookupValues(idx, std::vector<Key>{3000, 3499});
  EXPECT_EQ(vals[0], std::optional<Value>(103));
  EXPECT_EQ(vals[1], std::optional<Value>(103));
  engine.Stop();
}

TEST(IntegrationTest, SimulatedSgi64RunsFullWorkload) {
  EngineOptions opts;
  opts.topology = numa::Topology::SgiMachine(64);
  opts.mode = ExecutionMode::kSimulated;
  opts.sim.enabled = true;
  Engine engine(opts);
  EXPECT_EQ(engine.num_aeus(), 512u);
  ObjectId idx = engine.CreateIndex("kv", 1u << 24,
                                    {.prefix_bits = 8, .key_bits = 24});
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<KeyValue> kvs;
  Xoshiro256 rng(23);
  for (int i = 0; i < 100000; ++i) {
    kvs.push_back({rng.NextBounded(1u << 24), 1});
  }
  session->Upsert(idx, kvs);
  std::vector<Key> probes;
  for (int i = 0; i < 50000; ++i) probes.push_back(rng.NextBounded(1u << 24));
  uint64_t hits = session->Lookup(idx, probes);
  EXPECT_GT(hits, 0u);
  EXPECT_GT(engine.resource_usage().CriticalTimeNs(), 0.0);
  // Local-only partition work: lookups themselves create no link traffic;
  // only the routed commands do.
  EXPECT_GT(engine.resource_usage().TotalLinkBytes(), 0u);
  engine.Stop();
}

TEST(IntegrationTest, ErisVsSharedTreeSameResults) {
  // Functional equivalence of the partitioned engine and the baseline.
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(2, 2);
  opts.mode = ExecutionMode::kSimulated;
  Engine engine(opts);
  ObjectId idx = engine.CreateIndex("kv", 1u << 20,
                                    {.prefix_bits = 8, .key_bits = 20});
  engine.Start();
  auto session = engine.CreateSession();

  numa::MemoryPool pool(2);
  baseline::SharedTree shared(&pool, {.prefix_bits = 8, .key_bits = 20});

  Xoshiro256 rng(31);
  std::vector<KeyValue> kvs;
  for (int i = 0; i < 30000; ++i) {
    Key k = rng.NextBounded(1u << 20);
    kvs.push_back({k, static_cast<Value>(i)});
    shared.Upsert(k, static_cast<Value>(i));
  }
  session->Upsert(idx, kvs);

  std::vector<Key> probes;
  for (int i = 0; i < 20000; ++i) probes.push_back(rng.NextBounded(1u << 20));
  auto eris_vals = session->LookupValues(idx, probes);
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(eris_vals[i], shared.Lookup(probes[i])) << probes[i];
  }
  engine.Stop();
}

}  // namespace
}  // namespace eris::core
