// Property-based differential fuzzing of the index structures against
// std::map: random insert/upsert/erase/lookup/range-scan sequences, with the
// model and the structure checked after every batch. PrefixTree is fuzzed
// under both kernel configurations the engine uses; CsbTree (static, built
// once) is checked against binary search on the sorted key set.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "numa/memory_manager.h"
#include "storage/bplus_tree.h"
#include "storage/csb_tree.h"
#include "storage/hash_table.h"
#include "storage/prefix_tree.h"

namespace eris::storage {
namespace {

/// Adapter so one fuzz loop drives both dynamic index types.
template <typename Tree>
void FuzzAgainstMap(Tree& tree, uint64_t seed, Key domain, int rounds,
                    int ops_per_round) {
  SCOPED_TRACE(::testing::Message() << "seed=" << seed);
  Xoshiro256 rng(seed);
  std::map<Key, Value> model;
  for (int round = 0; round < rounds; ++round) {
    for (int i = 0; i < ops_per_round; ++i) {
      Key k = rng.NextBounded(domain);
      uint64_t pick = rng.NextBounded(100);
      if (pick < 40) {
        Value v = rng.Next() >> 1;
        bool was_new = tree.Insert(k, v);
        EXPECT_EQ(was_new, model.find(k) == model.end());
        model.try_emplace(k, v);  // Insert does not overwrite
      } else if (pick < 65) {
        Value v = rng.Next() >> 1;
        bool was_new = tree.Upsert(k, v);
        EXPECT_EQ(was_new, model.find(k) == model.end());
        model[k] = v;
      } else if (pick < 85) {
        bool existed = tree.Erase(k);
        EXPECT_EQ(existed, model.erase(k) == 1);
      } else {
        auto got = tree.Lookup(k);
        auto it = model.find(k);
        if (it == model.end()) {
          EXPECT_FALSE(got.has_value()) << "key " << k;
        } else {
          ASSERT_TRUE(got.has_value()) << "key " << k;
          EXPECT_EQ(*got, it->second) << "key " << k;
        }
      }
    }
    // After each round: a random range scan must visit exactly the model's
    // entries of that range, in ascending order.
    Key lo = rng.NextBounded(domain);
    Key hi = lo + rng.NextBounded(domain - lo) + 1;
    std::vector<std::pair<Key, Value>> scanned;
    uint64_t visited =
        tree.RangeScan(lo, hi, [&](Key k, Value v) { scanned.emplace_back(k, v); });
    std::vector<std::pair<Key, Value>> expect(model.lower_bound(lo),
                                              model.lower_bound(hi));
    EXPECT_EQ(visited, expect.size()) << "range [" << lo << ", " << hi << ")";
    EXPECT_EQ(scanned, expect) << "range [" << lo << ", " << hi << ")";
  }
  // Final sweep: every model key present with the right value, and the
  // structure holds nothing beyond the model.
  for (const auto& [k, v] : model) {
    auto got = tree.Lookup(k);
    ASSERT_TRUE(got.has_value()) << "key " << k;
    EXPECT_EQ(*got, v) << "key " << k;
  }
  uint64_t total = tree.RangeScan(0, domain, [](Key, Value) {});
  EXPECT_EQ(total, model.size());
}

TEST(IndexFuzzTest, PrefixTreeEngineKernelConfig) {
  // {8,16} is the kernel config the engine's CreateIndex defaults use in
  // the tests: one 8-bit root fanout level over a 16-bit key space.
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    numa::NodeMemoryManager mm(0);
    PrefixTree tree(&mm, {.prefix_bits = 8, .key_bits = 16});
    FuzzAgainstMap(tree, seed, Key{1} << 16, /*rounds=*/20,
                   /*ops_per_round=*/400);
  }
}

TEST(IndexFuzzTest, PrefixTreeNarrowPrefixConfig) {
  // {4,16}: deeper tree (more levels), exercising multi-level descent and
  // node splits/compactions along longer paths.
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    numa::NodeMemoryManager mm(0);
    PrefixTree tree(&mm, {.prefix_bits = 4, .key_bits = 16});
    FuzzAgainstMap(tree, seed, Key{1} << 16, /*rounds=*/20,
                   /*ops_per_round=*/400);
  }
}

TEST(IndexFuzzTest, PrefixTreeDenseSmallDomain) {
  // Tiny domain → heavy key reuse: insert-over-existing, erase-reinsert
  // cycles, and ranges that cover most of the tree.
  numa::NodeMemoryManager mm(0);
  PrefixTree tree(&mm, {.prefix_bits = 8, .key_bits = 16});
  FuzzAgainstMap(tree, /*seed=*/99, Key{512}, /*rounds=*/30,
                 /*ops_per_round=*/300);
}

TEST(IndexFuzzTest, BPlusTreeDifferential) {
  for (uint64_t seed : {21u, 22u, 23u, 24u}) {
    numa::NodeMemoryManager mm(0);
    BPlusTree tree(&mm);
    FuzzAgainstMap(tree, seed, Key{1} << 20, /*rounds=*/20,
                   /*ops_per_round=*/400);
  }
}

TEST(IndexFuzzTest, BPlusTreeDenseSmallDomain) {
  numa::NodeMemoryManager mm(0);
  BPlusTree tree(&mm);
  // Domain barely above one leaf: constant splits and lazy-erase underflow.
  FuzzAgainstMap(tree, /*seed=*/77, Key{3 * BPlusTree::kLeafKeys},
                 /*rounds=*/30, /*ops_per_round=*/300);
}

TEST(IndexFuzzTest, CsbTreeBoundsMatchBinarySearch) {
  // CsbTree is static: build from random sorted keys, then check
  // UpperBound/LowerBound against std::upper_bound/std::lower_bound for
  // probes around every key and random probes in between.
  for (uint64_t seed : {5u, 6u, 7u}) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    Xoshiro256 rng(seed);
    size_t n = 1 + rng.NextBounded(4000);
    std::vector<uint64_t> keys;
    uint64_t next = 0;
    for (size_t i = 0; i < n; ++i) {
      next += 1 + rng.NextBounded(1000);
      keys.push_back(next);
    }
    std::vector<uint32_t> payloads(n);
    for (size_t i = 0; i < n; ++i) payloads[i] = static_cast<uint32_t>(i);
    CsbTree tree(keys, payloads);
    ASSERT_EQ(tree.size(), n);

    auto check = [&](uint64_t probe) {
      size_t ub = static_cast<size_t>(
          std::upper_bound(keys.begin(), keys.end(), probe) - keys.begin());
      size_t lb = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
      ASSERT_EQ(tree.UpperBound(probe), ub) << "probe " << probe;
      ASSERT_EQ(tree.LowerBound(probe), lb) << "probe " << probe;
      if (ub < n) EXPECT_EQ(tree.payload(ub), ub);
    };

    check(0);
    check(~uint64_t{0});
    for (size_t i = 0; i < n; ++i) {
      check(keys[i]);
      check(keys[i] - 1);
      check(keys[i] + 1);
    }
    for (int i = 0; i < 2000; ++i) check(rng.NextBounded(next + 1000));
  }
}

TEST(IndexFuzzTest, CsbTreeSingleEntryAndEmptyProbes) {
  std::vector<uint64_t> keys = {42};
  std::vector<uint32_t> payloads = {7};
  CsbTree tree(keys, payloads);
  EXPECT_EQ(tree.UpperBound(0), 0u);
  EXPECT_EQ(tree.UpperBound(41), 0u);
  EXPECT_EQ(tree.UpperBound(42), 1u);
  EXPECT_EQ(tree.LowerBound(42), 0u);
  EXPECT_EQ(tree.LowerBound(43), 1u);
  EXPECT_EQ(tree.payload(0), 7u);

  CsbTree empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.UpperBound(0), 0u);
  EXPECT_EQ(empty.LowerBound(0), 0u);
}

/// Probe sets that stress the pipelined paths: random, duplicate-heavy,
/// sorted runs (adjacent probes share descent nodes), and all-misses.
std::vector<std::vector<Key>> AdversarialProbeSets(Key domain, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::vector<Key>> sets;
  std::vector<Key> random;
  for (int i = 0; i < 3000; ++i) random.push_back(rng.NextBounded(domain));
  sets.push_back(std::move(random));
  std::vector<Key> dupes;
  Key hot = rng.NextBounded(domain);
  for (int i = 0; i < 2000; ++i) {
    dupes.push_back(i % 3 == 0 ? hot : rng.NextBounded(16));
  }
  sets.push_back(std::move(dupes));
  std::vector<Key> runs;
  for (int r = 0; r < 40; ++r) {
    Key base = rng.NextBounded(domain);
    for (int i = 0; i < 50; ++i) runs.push_back((base + i) % domain);
  }
  sets.push_back(std::move(runs));
  std::vector<Key> misses;
  for (int i = 0; i < 1000; ++i) {
    misses.push_back(domain + rng.NextBounded(domain));  // out of key range
  }
  sets.push_back(std::move(misses));
  sets.push_back({});                       // empty batch
  sets.push_back({rng.NextBounded(domain)});  // single probe
  // Sub-group sizes: batches that do not divide kBatchGroup evenly.
  std::vector<Key> ragged;
  for (int i = 0; i < 17; ++i) ragged.push_back(rng.NextBounded(domain));
  sets.push_back(std::move(ragged));
  return sets;
}

template <typename Index>
void CheckBatchLookupMatchesScalar(const Index& index, Key domain,
                                   uint64_t seed) {
  for (const std::vector<Key>& probes : AdversarialProbeSets(domain, seed)) {
    SCOPED_TRACE(::testing::Message()
                 << "seed=" << seed << " probes=" << probes.size());
    std::vector<Value> values(probes.size() + 1);
    std::vector<uint8_t> found(probes.size() + 1);
    BatchLookupStats stats;
    size_t hits =
        index.BatchLookup(probes, values.data(),
                          reinterpret_cast<bool*>(found.data()), &stats);
    size_t scalar_hits = 0;
    for (size_t i = 0; i < probes.size(); ++i) {
      auto v = index.Lookup(probes[i]);
      ASSERT_EQ(static_cast<bool>(found[i]), v.has_value())
          << "key " << probes[i] << " at " << i;
      if (v.has_value()) {
        ASSERT_EQ(values[i], *v) << "key " << probes[i] << " at " << i;
        ++scalar_hits;
      }
    }
    EXPECT_EQ(hits, scalar_hits);
    if (!probes.empty()) EXPECT_GT(stats.nodes_touched, 0u);
  }
}

TEST(IndexFuzzTest, PrefixTreeBatchLookupDifferential) {
  const Key domain = Key{1} << 18;
  for (uint64_t seed : {31u, 32u, 33u}) {
    numa::NodeMemoryManager mm(0);
    PrefixTree tree(&mm, {.prefix_bits = 8, .key_bits = 20});
    Xoshiro256 rng(seed);
    for (int i = 0; i < 20000; ++i) {
      Key k = rng.NextBounded(domain);
      tree.Upsert(k, k * 3 + 1);
    }
    CheckBatchLookupMatchesScalar(tree, domain, seed);
  }
}

TEST(IndexFuzzTest, PrefixTreeBatchLookupOnEmptyTree) {
  numa::NodeMemoryManager mm(0);
  PrefixTree tree(&mm, {.prefix_bits = 8, .key_bits = 16});
  std::vector<Key> probes{1, 2, 3};
  std::vector<Value> values(3);
  bool found[3];
  EXPECT_EQ(tree.BatchLookup(probes, values.data(), found), 0u);
  EXPECT_FALSE(found[0] || found[1] || found[2]);
}

TEST(IndexFuzzTest, HashTableBatchLookupDifferential) {
  const Key domain = Key{1} << 18;
  for (uint64_t seed : {41u, 42u, 43u}) {
    numa::NodeMemoryManager mm(0);
    HashTable table(&mm, /*salt=*/seed * 1315423911u);
    Xoshiro256 rng(seed);
    for (int i = 0; i < 20000; ++i) {
      Key k = rng.NextBounded(domain);
      table.Upsert(k, k ^ 0xABCDu);
    }
    // Erase a slice to create tombstone-free backward-shifted chains.
    for (int i = 0; i < 3000; ++i) {
      table.Erase(rng.NextBounded(domain));
    }
    CheckBatchLookupMatchesScalar(table, domain, seed);
  }
}

TEST(IndexFuzzTest, BatchLookupNodeStatsAccumulate) {
  // Sorted probes over a dense tree touch far fewer unique nodes than
  // keys * levels; the stats field must accumulate across calls.
  numa::NodeMemoryManager mm(0);
  PrefixTree tree(&mm, {.prefix_bits = 8, .key_bits = 16});
  for (Key k = 0; k < 4096; ++k) tree.Insert(k, k);
  std::vector<Key> sorted(4096);
  for (Key k = 0; k < 4096; ++k) sorted[k] = k;
  std::vector<Value> values(sorted.size());
  std::vector<uint8_t> found(sorted.size());
  BatchLookupStats stats;
  tree.BatchLookup(sorted, values.data(),
                   reinterpret_cast<bool*>(found.data()), &stats);
  uint64_t first = stats.nodes_touched;
  EXPECT_GT(first, 0u);
  // 4096 consecutive keys over fanout-256 leaves: ~16 leaves + shared
  // upper levels, far below the per-key worst case.
  EXPECT_LT(first, sorted.size() * tree.levels());
  tree.BatchLookup(sorted, values.data(),
                   reinterpret_cast<bool*>(found.data()), &stats);
  EXPECT_GE(stats.nodes_touched, 2 * first - 2);  // accumulates, not resets
}

}  // namespace
}  // namespace eris::storage
