// Property-based differential fuzzing of the index structures against
// std::map: random insert/upsert/erase/lookup/range-scan sequences, with the
// model and the structure checked after every batch. PrefixTree is fuzzed
// under both kernel configurations the engine uses; CsbTree (static, built
// once) is checked against binary search on the sorted key set.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "numa/memory_manager.h"
#include "storage/bplus_tree.h"
#include "storage/csb_tree.h"
#include "storage/prefix_tree.h"

namespace eris::storage {
namespace {

/// Adapter so one fuzz loop drives both dynamic index types.
template <typename Tree>
void FuzzAgainstMap(Tree& tree, uint64_t seed, Key domain, int rounds,
                    int ops_per_round) {
  SCOPED_TRACE(::testing::Message() << "seed=" << seed);
  Xoshiro256 rng(seed);
  std::map<Key, Value> model;
  for (int round = 0; round < rounds; ++round) {
    for (int i = 0; i < ops_per_round; ++i) {
      Key k = rng.NextBounded(domain);
      uint64_t pick = rng.NextBounded(100);
      if (pick < 40) {
        Value v = rng.Next() >> 1;
        bool was_new = tree.Insert(k, v);
        EXPECT_EQ(was_new, model.find(k) == model.end());
        model.try_emplace(k, v);  // Insert does not overwrite
      } else if (pick < 65) {
        Value v = rng.Next() >> 1;
        bool was_new = tree.Upsert(k, v);
        EXPECT_EQ(was_new, model.find(k) == model.end());
        model[k] = v;
      } else if (pick < 85) {
        bool existed = tree.Erase(k);
        EXPECT_EQ(existed, model.erase(k) == 1);
      } else {
        auto got = tree.Lookup(k);
        auto it = model.find(k);
        if (it == model.end()) {
          EXPECT_FALSE(got.has_value()) << "key " << k;
        } else {
          ASSERT_TRUE(got.has_value()) << "key " << k;
          EXPECT_EQ(*got, it->second) << "key " << k;
        }
      }
    }
    // After each round: a random range scan must visit exactly the model's
    // entries of that range, in ascending order.
    Key lo = rng.NextBounded(domain);
    Key hi = lo + rng.NextBounded(domain - lo) + 1;
    std::vector<std::pair<Key, Value>> scanned;
    uint64_t visited =
        tree.RangeScan(lo, hi, [&](Key k, Value v) { scanned.emplace_back(k, v); });
    std::vector<std::pair<Key, Value>> expect(model.lower_bound(lo),
                                              model.lower_bound(hi));
    EXPECT_EQ(visited, expect.size()) << "range [" << lo << ", " << hi << ")";
    EXPECT_EQ(scanned, expect) << "range [" << lo << ", " << hi << ")";
  }
  // Final sweep: every model key present with the right value, and the
  // structure holds nothing beyond the model.
  for (const auto& [k, v] : model) {
    auto got = tree.Lookup(k);
    ASSERT_TRUE(got.has_value()) << "key " << k;
    EXPECT_EQ(*got, v) << "key " << k;
  }
  uint64_t total = tree.RangeScan(0, domain, [](Key, Value) {});
  EXPECT_EQ(total, model.size());
}

TEST(IndexFuzzTest, PrefixTreeEngineKernelConfig) {
  // {8,16} is the kernel config the engine's CreateIndex defaults use in
  // the tests: one 8-bit root fanout level over a 16-bit key space.
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    numa::NodeMemoryManager mm(0);
    PrefixTree tree(&mm, {.prefix_bits = 8, .key_bits = 16});
    FuzzAgainstMap(tree, seed, Key{1} << 16, /*rounds=*/20,
                   /*ops_per_round=*/400);
  }
}

TEST(IndexFuzzTest, PrefixTreeNarrowPrefixConfig) {
  // {4,16}: deeper tree (more levels), exercising multi-level descent and
  // node splits/compactions along longer paths.
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    numa::NodeMemoryManager mm(0);
    PrefixTree tree(&mm, {.prefix_bits = 4, .key_bits = 16});
    FuzzAgainstMap(tree, seed, Key{1} << 16, /*rounds=*/20,
                   /*ops_per_round=*/400);
  }
}

TEST(IndexFuzzTest, PrefixTreeDenseSmallDomain) {
  // Tiny domain → heavy key reuse: insert-over-existing, erase-reinsert
  // cycles, and ranges that cover most of the tree.
  numa::NodeMemoryManager mm(0);
  PrefixTree tree(&mm, {.prefix_bits = 8, .key_bits = 16});
  FuzzAgainstMap(tree, /*seed=*/99, Key{512}, /*rounds=*/30,
                 /*ops_per_round=*/300);
}

TEST(IndexFuzzTest, BPlusTreeDifferential) {
  for (uint64_t seed : {21u, 22u, 23u, 24u}) {
    numa::NodeMemoryManager mm(0);
    BPlusTree tree(&mm);
    FuzzAgainstMap(tree, seed, Key{1} << 20, /*rounds=*/20,
                   /*ops_per_round=*/400);
  }
}

TEST(IndexFuzzTest, BPlusTreeDenseSmallDomain) {
  numa::NodeMemoryManager mm(0);
  BPlusTree tree(&mm);
  // Domain barely above one leaf: constant splits and lazy-erase underflow.
  FuzzAgainstMap(tree, /*seed=*/77, Key{3 * BPlusTree::kLeafKeys},
                 /*rounds=*/30, /*ops_per_round=*/300);
}

TEST(IndexFuzzTest, CsbTreeBoundsMatchBinarySearch) {
  // CsbTree is static: build from random sorted keys, then check
  // UpperBound/LowerBound against std::upper_bound/std::lower_bound for
  // probes around every key and random probes in between.
  for (uint64_t seed : {5u, 6u, 7u}) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    Xoshiro256 rng(seed);
    size_t n = 1 + rng.NextBounded(4000);
    std::vector<uint64_t> keys;
    uint64_t next = 0;
    for (size_t i = 0; i < n; ++i) {
      next += 1 + rng.NextBounded(1000);
      keys.push_back(next);
    }
    std::vector<uint32_t> payloads(n);
    for (size_t i = 0; i < n; ++i) payloads[i] = static_cast<uint32_t>(i);
    CsbTree tree(keys, payloads);
    ASSERT_EQ(tree.size(), n);

    auto check = [&](uint64_t probe) {
      size_t ub = static_cast<size_t>(
          std::upper_bound(keys.begin(), keys.end(), probe) - keys.begin());
      size_t lb = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
      ASSERT_EQ(tree.UpperBound(probe), ub) << "probe " << probe;
      ASSERT_EQ(tree.LowerBound(probe), lb) << "probe " << probe;
      if (ub < n) EXPECT_EQ(tree.payload(ub), ub);
    };

    check(0);
    check(~uint64_t{0});
    for (size_t i = 0; i < n; ++i) {
      check(keys[i]);
      check(keys[i] - 1);
      check(keys[i] + 1);
    }
    for (int i = 0; i < 2000; ++i) check(rng.NextBounded(next + 1000));
  }
}

TEST(IndexFuzzTest, CsbTreeSingleEntryAndEmptyProbes) {
  std::vector<uint64_t> keys = {42};
  std::vector<uint32_t> payloads = {7};
  CsbTree tree(keys, payloads);
  EXPECT_EQ(tree.UpperBound(0), 0u);
  EXPECT_EQ(tree.UpperBound(41), 0u);
  EXPECT_EQ(tree.UpperBound(42), 1u);
  EXPECT_EQ(tree.LowerBound(42), 0u);
  EXPECT_EQ(tree.LowerBound(43), 1u);
  EXPECT_EQ(tree.payload(0), 7u);

  CsbTree empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.UpperBound(0), 0u);
  EXPECT_EQ(empty.LowerBound(0), 0u);
}

}  // namespace
}  // namespace eris::storage
