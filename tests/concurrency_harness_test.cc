// Concurrency-correctness harness: schedule-randomized stress with a
// differential oracle.
//
// Each seed generates a per-writer command log (disjoint key slices, so the
// final engine state is interleaving-independent), runs it with N writer
// threads against M AEUs in kThreads mode — with the fault injector arming
// schedule perturbation and, on some seeds, artificial failures on the
// recoverable paths — then replays the identical log on a single-threaded
// kSimulated engine and compares full digests (every key's value + column
// aggregates). Any divergence is a lost, duplicated, or misrouted command.
//
// Reproduction: the failing seed is printed via SCOPED_TRACE; re-run with
//   ERIS_HARNESS_SEED=<seed> ./concurrency_harness_test
// ERIS_HARNESS_SEEDS=<n> shortens/extends the sweep (tier1's TSan stage
// uses a small n because TSan slows execution ~10x).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "harness_util.h"

namespace eris::core {
namespace {

using storage::ObjectId;

/// Engine-shape rotation: the same logs run against different topologies
/// and router tunings; tiny buffers force constant flush-retry cycles.
struct EngineShape {
  const char* name;
  uint32_t nodes;
  uint32_t cores_per_node;
  uint32_t incoming_capacity_bytes;
  uint32_t flush_threshold_bytes;
  uint32_t max_batch_elements;
  bool coalesce_lookups;
  bool pipelined_descent;
  /// Runs the deterministic MPSM-join + fused-pipeline query phase after
  /// the writer phase and folds its results into the digest.
  bool join_pipeline = false;
  /// Threaded run writes a WAL; after the differential check the seed also
  /// restarts from the durability directory and re-checks the digest.
  bool durable = false;
};

constexpr EngineShape kShapes[] = {
    {"flat-1x2-default", 1, 2, 0, 0, 0, true, true},
    {"flat-2x2-default", 2, 2, 0, 0, 0, true, true},
    {"flat-2x2-tiny-buffers", 2, 2, 2048, 256, 16, true, true},
    {"flat-1x4-tiny-buffers", 1, 4, 2048, 256, 16, true, true},
    {"flat-2x2-scalar-lookup", 2, 2, 0, 0, 0, false, false},
    {"flat-2x2-join-pipeline", 2, 2, 0, 0, 0, true, true,
     /*join_pipeline=*/true},
    {"flat-2x2-recovery", 2, 2, 0, 0, 0, true, true,
     /*join_pipeline=*/false, /*durable=*/true},
};

/// mkdtemp under $TMPDIR (or /tmp), removed on destruction.
struct ScratchDir {
  std::string path;
  ScratchDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                       "/eris-harness-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* dir = ::mkdtemp(buf.data());
    EXPECT_NE(dir, nullptr) << std::strerror(errno);
    if (dir != nullptr) path = dir;
  }
  ~ScratchDir() {
    std::error_code ec;
    if (!path.empty()) std::filesystem::remove_all(path, ec);
  }
};

EngineOptions MakeOptions(const EngineShape& shape, ExecutionMode mode) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(shape.nodes, shape.cores_per_node);
  opts.mode = mode;
  if (shape.incoming_capacity_bytes != 0) {
    opts.router.incoming_capacity_bytes = shape.incoming_capacity_bytes;
    opts.router.flush_threshold_bytes = shape.flush_threshold_bytes;
    opts.router.max_batch_elements = shape.max_batch_elements;
  }
  if (mode == ExecutionMode::kSimulated) {
    // The sequential oracle always takes the scalar per-key lookup path,
    // so every seed differentially checks the coalesced/pipelined fast
    // path against key-at-a-time semantics.
    opts.lookup.coalesce_commands = false;
    opts.lookup.pipelined_descent = false;
  } else {
    opts.lookup.coalesce_commands = shape.coalesce_lookups;
    opts.lookup.pipelined_descent = shape.pipelined_descent;
  }
  return opts;
}

/// Builds an engine with one index and one column, runs `run`, captures the
/// digest with injection disarmed (the digest pass must be failure-free).
template <typename RunFn>
harness::EngineDigest RunAndDigest(const EngineShape& shape,
                                   ExecutionMode mode,
                                   const harness::HarnessConfig& cfg,
                                   RunFn&& run,
                                   const std::string* durable_dir = nullptr) {
  EngineOptions opts = MakeOptions(shape, mode);
  if (durable_dir != nullptr) {
    opts.durability.enabled = true;
    opts.durability.dir = *durable_dir;
  }
  Engine engine(opts);
  ObjectId idx = engine.CreateIndex("kv", cfg.domain_hi(),
                                    {.prefix_bits = 8, .key_bits = 16});
  ObjectId col = engine.CreateColumn("facts");
  ObjectId s_idx = 0;
  if (shape.join_pipeline) {
    s_idx = engine.CreateIndex("s_side", cfg.domain_hi(),
                               {.prefix_bits = 8, .key_bits = 16});
  }
  engine.Start();
  run(engine, idx, col);
  // Disarm before the digest so injected failures cannot perturb the
  // observation itself (retry paths stay correct, but keep the baseline
  // clean and fast).
  fi::FaultInjector::Global().Reset();
  harness::EngineDigest digest = harness::CaptureDigest(engine, idx, col, cfg);
  if (shape.join_pipeline) {
    // Deterministic S side (every third key of the domain), then the
    // query phase whose results fold into the digest.
    auto session = engine.CreateSession();
    std::vector<routing::KeyValue> s_kvs;
    for (storage::Key k = 0; k < cfg.domain_hi(); k += 3) {
      s_kvs.push_back({k, k + 1});
    }
    session->Insert(s_idx, s_kvs);
    harness::RunQueryPhase(engine, idx, s_idx, col, cfg, &digest);
  }
  engine.Stop();
  return digest;
}

void RunSeed(uint64_t seed, const EngineShape& shape) {
  SCOPED_TRACE(::testing::Message()
               << "shape=" << shape.name << " seed=" << seed
               << " (replay: ERIS_HARNESS_SEED=" << seed << ")");

  harness::HarnessConfig cfg;
  cfg.keys_per_writer = 1u << 11;
  auto scripts = harness::GenerateScripts(seed, cfg);

  // Threaded run under chaos: schedule perturbation on every seed; on
  // every third seed also arm artificial failures on the recoverable
  // paths (full incoming buffer, rejected outgoing delivery) so the
  // retry code runs in anger.
  fi::FaultInjector::Global().Reset();
  fi::FaultInjector::Global().EnableChaos(seed, /*perturb_probability=*/0.05);
  if (seed % 3 == 0) {
    fi::FaultInjector::Global().SetFailProbability(fi::Point::kIncomingReserve,
                                                   0.02);
    fi::FaultInjector::Global().SetFailProbability(fi::Point::kRouterFlush,
                                                   0.02);
  }
  ScratchDir scratch;
  const std::string* durable_dir = shape.durable ? &scratch.path : nullptr;
  harness::EngineDigest threaded = RunAndDigest(
      shape, ExecutionMode::kThreads, cfg,
      [&](Engine& engine, ObjectId idx, ObjectId col) {
        harness::RunScriptsThreaded(engine, idx, col, scripts);
      },
      durable_dir);

  // Oracle: identical log, sequential, single-threaded simulated engine,
  // no injection, no durability — differentially checking that WAL logging
  // and deferred acks change no observable semantics.
  harness::EngineDigest oracle = RunAndDigest(
      shape, ExecutionMode::kSimulated, cfg,
      [&](Engine& engine, ObjectId idx, ObjectId col) {
        harness::RunScriptsSequential(engine, idx, col, scripts);
      });

  harness::ExpectDigestsEqual(threaded, oracle);

  if (shape.durable) {
    // Restart leg: a fresh engine recovered from the WAL the threaded run
    // left behind must reproduce the oracle digest exactly.
    EngineOptions ropts = MakeOptions(shape, ExecutionMode::kSimulated);
    ropts.durability.enabled = true;
    ropts.durability.dir = scratch.path;
    Engine recovered(ropts);
    ObjectId idx = recovered.CreateIndex("kv", cfg.domain_hi(),
                                         {.prefix_bits = 8, .key_bits = 16});
    ObjectId col = recovered.CreateColumn("facts");
    Status st = recovered.Recover();
    ASSERT_TRUE(st.ok()) << st.message();
    harness::EngineDigest restart =
        harness::CaptureDigest(recovered, idx, col, cfg);
    recovered.Stop();
    harness::ExpectDigestsEqual(restart, oracle);
  }
  if (::testing::Test::HasFailure()) {
    // Belt and braces: make the seed impossible to miss in CI logs.
    std::fprintf(stderr,
                 "[harness] FAILING SEED %llu shape=%s — reproduce with "
                 "ERIS_HARNESS_SEED=%llu\n",
                 static_cast<unsigned long long>(seed), shape.name,
                 static_cast<unsigned long long>(seed));
  }
}

TEST(ConcurrencyHarness, SeedSweepDifferentialOracle) {
  // 24 seeds x 7 shapes rotated = 24 runs; the acceptance floor is a
  // >= 20-seed sweep. The recovery shape adds a restart leg: recover from
  // the threaded run's WAL and re-check the digest.
  auto seeds = harness::SweepSeeds(/*base=*/1000, /*default_count=*/24);
  for (size_t i = 0; i < seeds.size(); ++i) {
    RunSeed(seeds[i], kShapes[i % std::size(kShapes)]);
    if (::testing::Test::HasFatalFailure()) return;
  }
  fi::FaultInjector::Global().Reset();
}

TEST(ConcurrencyHarness, RecoveryDurableSweep) {
  // Focused sweep on the durable shape (also rotated through the main
  // sweep above): threaded chaos run with a WAL, then restart + digest
  // comparison per seed. The recovery_scenario ctest entry selects this
  // test by name.
  auto seeds = harness::SweepSeeds(/*base=*/5000, /*default_count=*/4);
  const EngineShape& durable_shape = kShapes[std::size(kShapes) - 1];
  ASSERT_TRUE(durable_shape.durable);
  for (uint64_t seed : seeds) {
    RunSeed(seed, durable_shape);
    if (::testing::Test::HasFatalFailure()) return;
  }
  fi::FaultInjector::Global().Reset();
}

TEST(ConcurrencyHarness, ChaosActuallyInjects) {
  // Meta-test: with chaos armed the instrumented paths must actually
  // record perturbations — otherwise the sweep above silently degrades
  // into a plain stress test.
  harness::HarnessConfig cfg;
  cfg.writers = 2;
  cfg.batches_per_writer = 12;
  auto scripts = harness::GenerateScripts(/*seed=*/7, cfg);
  fi::FaultInjector::Global().Reset();
  fi::FaultInjector::Global().EnableChaos(/*seed=*/7,
                                          /*perturb_probability=*/0.5);
  fi::FaultInjector::Global().SetFailProbability(fi::Point::kRouterFlush, 0.05);

  Engine engine(MakeOptions(kShapes[0], ExecutionMode::kThreads));
  ObjectId idx = engine.CreateIndex("kv", cfg.domain_hi(),
                                    {.prefix_bits = 8, .key_bits = 16});
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  harness::RunScriptsThreaded(engine, idx, col, scripts);

  EXPECT_GT(fi::FaultInjector::Global().TotalInjections(), 0u);
  EXPECT_GT(fi::FaultInjector::Global().Stats(fi::Point::kRouterUnicast).visits,
            0u);
  EXPECT_GT(
      fi::FaultInjector::Global().Stats(fi::Point::kIncomingReserve).visits,
      0u);
  fi::FaultInjector::Global().Reset();

  // Even under injected flush failures nothing may be lost.
  auto session = engine.CreateSession();
  std::vector<storage::Key> all;
  for (storage::Key k = 0; k < cfg.domain_hi(); ++k) all.push_back(k);
  auto values = session->LookupValues(idx, all);
  auto oracle_values = [&] {
    Engine sim(MakeOptions(kShapes[0], ExecutionMode::kSimulated));
    ObjectId sidx = sim.CreateIndex("kv", cfg.domain_hi(),
                                    {.prefix_bits = 8, .key_bits = 16});
    ObjectId scol = sim.CreateColumn("facts");
    sim.Start();
    harness::RunScriptsSequential(sim, sidx, scol, scripts);
    auto s = sim.CreateSession();
    auto v = s->LookupValues(sidx, all);
    sim.Stop();
    return v;
  }();
  EXPECT_EQ(values, oracle_values);
  engine.Stop();
}

TEST(ConcurrencyHarness, RebalanceDuringChaosSweep) {
  // One seed with a synchronous balancing cycle interleaved between the
  // writer phase and the digest: exercises kBalanceApply/kTransferApply
  // points and checks nothing is lost across partition movement.
  harness::HarnessConfig cfg;
  cfg.writers = 3;
  cfg.batches_per_writer = 20;
  auto scripts = harness::GenerateScripts(/*seed=*/4242, cfg);

  fi::FaultInjector::Global().Reset();
  fi::FaultInjector::Global().EnableChaos(/*seed=*/4242,
                                          /*perturb_probability=*/0.1);
  harness::EngineDigest threaded = RunAndDigest(
      kShapes[1], ExecutionMode::kThreads, cfg,
      [&](Engine& engine, ObjectId idx, ObjectId col) {
        harness::RunScriptsThreaded(engine, idx, col, scripts);
        LoadBalancerConfig bal;
        bal.algorithm = BalanceAlgorithm::kOneShot;
        bal.trigger_cv = 0.0;
        bal.min_total_accesses = 1;
        engine.RebalanceObject(idx, bal);
      });
  harness::EngineDigest oracle = RunAndDigest(
      kShapes[1], ExecutionMode::kSimulated, cfg,
      [&](Engine& engine, ObjectId idx, ObjectId col) {
        harness::RunScriptsSequential(engine, idx, col, scripts);
      });
  harness::ExpectDigestsEqual(threaded, oracle);
}

// ---------------------------------------------------------------------------
// Overload scenario: tiny buffers + one stalled AEU.
// ---------------------------------------------------------------------------

/// One overload seed: AEU 0 is wedged via a blocking kAeuLoop hook while a
/// victim session keeps submitting deadline-bounded work into its key range.
/// Checks the tentpole guarantees end to end: no submit blocks indefinitely
/// (OK or a typed rejection within a wall-clock bound), the watchdog reports
/// the stall, and — after recovery — a differential sweep on a separate
/// index still matches the single-threaded oracle exactly.
void RunOverloadSeed(uint64_t seed) {
  const EngineShape& shape = kShapes[3];  // flat-1x4-tiny-buffers
  SCOPED_TRACE(::testing::Message()
               << "overload shape=" << shape.name << " seed=" << seed
               << " (replay: ERIS_HARNESS_SEED=" << seed << ")");

  harness::HarnessConfig cfg;
  cfg.writers = 3;
  cfg.batches_per_writer = 16;
  auto scripts = harness::GenerateScripts(seed, cfg);

  EngineOptions opts = MakeOptions(shape, ExecutionMode::kThreads);
  // Health checks are driven manually below, not by the background
  // watchdog thread: an interval-based watchdog on an oversubscribed CI
  // host (parallel ctest under TSan) can false-positive on a merely
  // descheduled AEU during the differential phase, shedding clean writes
  // and breaking the oracle comparison. The background thread has its own
  // non-differential coverage in overload_test.
  opts.overload.watchdog_strikes = 3;
  Engine engine(opts);
  // The harness objects carry the differential digest; victim traffic runs
  // against its own index so partially-applied writes from the stall phase
  // cannot perturb the oracle comparison.
  ObjectId idx = engine.CreateIndex("kv", cfg.domain_hi(),
                                    {.prefix_bits = 8, .key_bits = 16});
  ObjectId victim_idx = engine.CreateIndex("victim", cfg.domain_hi(),
                                           {.prefix_bits = 8, .key_bits = 16});
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();

  // Wedge AEU 0: the hook runs before the heartbeat tick, so the watchdog
  // sees a static epoch while the victim's commands pile up in the mailbox.
  std::atomic<bool> stall{true};
  fi::FaultInjector::Global().Reset();
  fi::FaultInjector::Global().SetHook(fi::Point::kAeuLoop, [&stall] {
    const Aeu* aeu = Aeu::Current();
    if (aeu == nullptr || aeu->id() != 0) return;
    while (stall.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Victim: deadline-bounded submits into AEU 0's key range. Every call
  // must return quickly — OK is impossible while the AEU is wedged, so each
  // outcome is a typed rejection (deadline, stalled, shed, or admission).
  const storage::Key aeu0_hi = cfg.domain_hi() / 4;  // 4 AEUs, range-split
  auto session = engine.CreateSession();
  session->set_op_timeout_ns(30'000'000);  // 30 ms
  size_t rejected = 0;
  double worst_seconds = 0;
  auto victim_submit = [&](uint32_t b) {
    std::vector<routing::KeyValue> kvs;
    for (uint32_t i = 0; i < 8; ++i) {
      kvs.push_back({(b * 8 + i) % aeu0_hi, b});
    }
    Stopwatch watch;
    Status st = session->SubmitUpsert(victim_idx, kvs);
    worst_seconds = std::max(worst_seconds, watch.ElapsedSeconds());
    if (!st.ok()) {
      ++rejected;
      EXPECT_TRUE(st.IsDeadlineExceeded() || st.IsUnavailable() ||
                  st.IsResourceExhausted() || st.IsInternal())
          << st;
      EXPECT_TRUE(st.has_detail()) << st;
    }
  };

  // Park work in the wedged AEU's mailbox, then run health checks until
  // the watchdog flags it.
  victim_submit(0);
  Stopwatch detect;
  while (!engine.watchdog().stalled(0) && detect.ElapsedSeconds() < 10.0) {
    engine.CheckAeuHealth();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(engine.watchdog().stalled(0));
  EXPECT_GE(engine.watchdog().stall_events(), 1u);
  EXPECT_TRUE(engine.router().IsAeuStalled(0));

  // More victim traffic against the flagged AEU: now shed fail-fast.
  for (uint32_t b = 1; b < 12; ++b) victim_submit(b);
  // Bounded submit latency: the 30 ms deadline plus scheduling slack —
  // far below the stall duration — and nothing ever deadlocked.
  EXPECT_LT(worst_seconds, 10.0);
  EXPECT_GT(rejected, 0u);

  // Recovery: release the loop; the heartbeat advances and the next health
  // checks unflag the AEU (unsealing its mailbox).
  stall.store(false, std::memory_order_release);
  Stopwatch recover;
  while (engine.watchdog().stalled(0) && recover.ElapsedSeconds() < 10.0) {
    engine.CheckAeuHealth();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(engine.watchdog().stalled(0));

  // Differential phase on the recovered engine: the accepted (clean) write
  // set must match the single-threaded oracle bit for bit. The hook stays
  // installed (it is a no-op with `stall` cleared) until the AEU threads
  // have joined: FaultInjector config calls require quiescence, and
  // Reset() would race the loop threads still visiting the point.
  harness::RunScriptsThreaded(engine, idx, col, scripts);
  harness::EngineDigest threaded =
      harness::CaptureDigest(engine, idx, col, cfg);
  engine.Stop();
  fi::FaultInjector::Global().Reset();

  harness::EngineDigest oracle = RunAndDigest(
      shape, ExecutionMode::kSimulated, cfg,
      [&](Engine& sim, ObjectId sidx, ObjectId scol) {
        harness::RunScriptsSequential(sim, sidx, scol, scripts);
      });
  harness::ExpectDigestsEqual(threaded, oracle);
}

TEST(ConcurrencyHarness, OverloadStalledAeuSheds) {
  auto seeds = harness::SweepSeeds(/*base=*/7000, /*default_count=*/6);
  for (uint64_t seed : seeds) {
    RunOverloadSeed(seed);
    if (::testing::Test::HasFatalFailure()) break;
  }
  fi::FaultInjector::Global().Reset();
}

// ---------------------------------------------------------------------------
// I/O-chaos scenario: writers race injected storage faults (DESIGN.md §15).
// ---------------------------------------------------------------------------

/// One io-chaos seed: a durable threaded engine under low-probability
/// injected storage faults at every durability syscall — short writes,
/// EIO, ENOSPC, failed fsyncs — while writers track which keys they issued
/// and which the engine acknowledged. The storage-fault shape of the sweep
/// oracle is set inclusion, not digest equality (faults legitimately shed
/// work): after restart and replay,
///     acked ⊆ recovered ⊆ issued
/// — an acked write may never be lost (acknowledged means group-committed
/// before the fault), and replay may never invent a write nobody issued.
/// Every submit failure along the way must be typed, and no injected fault
/// may abort the process.
std::atomic<uint64_t> g_io_chaos_injections{0};

void RunIoChaosSeed(uint64_t seed) {
  const EngineShape& shape = kShapes[std::size(kShapes) - 1];  // durable 2x2
  SCOPED_TRACE(::testing::Message()
               << "io-chaos shape=" << shape.name << " seed=" << seed
               << " (replay: ERIS_HARNESS_SEED=" << seed << ")");
  constexpr uint32_t kWriters = 3;
  constexpr uint32_t kBatches = 24;
  constexpr uint32_t kPerBatch = 8;
  const storage::Key domain_hi = storage::Key{1} << 16;
  const storage::Key slice = domain_hi / kWriters;

  ScratchDir scratch;
  EngineOptions opts = MakeOptions(shape, ExecutionMode::kThreads);
  opts.durability.enabled = true;
  opts.durability.dir = scratch.path;

  // Arm before Start() (injector config requires quiescence). Short writes
  // are common — the resume path must be routine; hard errors are rare but
  // across 24 seeds every failure mode fires many times.
  fi::FaultInjector::Global().Reset();
  fi::FaultInjector::Global().EnableChaos(seed, /*perturb_probability=*/0.02);
  fi::FaultInjector::Global().SetFailProbability(fi::Point::kIoShortWrite,
                                                 0.05);
  fi::FaultInjector::Global().SetFailProbability(fi::Point::kIoWriteError,
                                                 0.005);
  fi::FaultInjector::Global().SetFailProbability(fi::Point::kIoFsyncError,
                                                 0.002);
  fi::FaultInjector::Global().SetFailProbability(fi::Point::kIoNoSpace,
                                                 0.002);

  std::vector<std::vector<storage::Key>> acked(kWriters);
  std::atomic<uint32_t> untyped_failures{0};
  std::atomic<uint32_t> read_failures_untyped{0};
  {
    Engine engine(opts);
    ObjectId idx = engine.CreateIndex("kv", domain_hi,
                                      {.prefix_bits = 8, .key_bits = 16});
    engine.Start();
    std::vector<std::thread> writers;
    for (uint32_t w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        auto session = engine.CreateSession();
        session->set_op_timeout_ns(500'000'000);  // 500 ms, never hangs
        for (uint32_t b = 0; b < kBatches; ++b) {
          std::vector<routing::KeyValue> kvs;
          for (uint32_t i = 0; i < kPerBatch; ++i) {
            storage::Key k = w * slice + b * kPerBatch + i;
            kvs.push_back({k, k + 1});
          }
          Status st = session->SubmitUpsert(idx, kvs);
          if (st.ok()) {
            // Acknowledged = durably group-committed before any fault.
            for (const auto& kv : kvs) acked[w].push_back(kv.key);
          } else if (!(st.IsUnavailable() || st.IsDeadlineExceeded() ||
                       st.IsResourceExhausted() || st.IsIoError() ||
                       st.IsInternal())) {
            untyped_failures.fetch_add(1, std::memory_order_relaxed);
          }
          if (b % 6 == 5) {
            // Reads must keep serving (OK, or typed when the target AEU
            // was quarantined by a sealed WAL) — never crash or hang.
            std::vector<storage::Key> probe{w * slice};
            Status rs = session->SubmitLookup(idx, probe);
            if (!rs.ok() && !(rs.IsUnavailable() || rs.IsDeadlineExceeded() ||
                              rs.IsResourceExhausted())) {
              read_failures_untyped.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (auto& t : writers) t.join();
    engine.Stop();  // must survive sealed WALs / degraded mode
  }
  EXPECT_EQ(untyped_failures.load(), 0u);
  EXPECT_EQ(read_failures_untyped.load(), 0u);
  g_io_chaos_injections.fetch_add(
      fi::FaultInjector::Global().TotalInjections(),
      std::memory_order_relaxed);

  // Restart with the injector disarmed: replay what the faulted run left.
  fi::FaultInjector::Global().Reset();
  EngineOptions ropts = MakeOptions(shape, ExecutionMode::kSimulated);
  ropts.durability.enabled = true;
  ropts.durability.dir = scratch.path;
  Engine recovered(ropts);
  ObjectId idx = recovered.CreateIndex("kv", domain_hi,
                                       {.prefix_bits = 8, .key_bits = 16});
  Status st = recovered.Recover();
  ASSERT_TRUE(st.ok()) << st.message();
  auto session = recovered.CreateSession();
  for (uint32_t w = 0; w < kWriters; ++w) {
    // acked ⊆ recovered: every acknowledged key must be present with the
    // value the writer acked.
    auto values = session->LookupValues(idx, acked[w]);
    ASSERT_EQ(values.size(), acked[w].size());
    for (size_t i = 0; i < values.size(); ++i) {
      ASSERT_TRUE(values[i].has_value())
          << "acked key " << acked[w][i] << " lost (writer " << w << ")";
      EXPECT_EQ(*values[i], acked[w][i] + 1);
    }
    // recovered ⊆ issued: keys in the writer's slice that were never
    // issued must not exist after replay.
    std::vector<storage::Key> never_issued;
    for (uint32_t i = 0; i < 16; ++i) {
      never_issued.push_back(w * slice + kBatches * kPerBatch + 1 + i);
    }
    auto ghosts = session->LookupValues(idx, never_issued);
    for (size_t i = 0; i < ghosts.size(); ++i) {
      EXPECT_FALSE(ghosts[i].has_value())
          << "replay invented key " << never_issued[i];
    }
  }
  recovered.Stop();
}

TEST(ConcurrencyHarness, IoChaosAckedSubsetRecovered) {
  auto seeds = harness::SweepSeeds(/*base=*/9000, /*default_count=*/24);
  for (uint64_t seed : seeds) {
    RunIoChaosSeed(seed);
    if (::testing::Test::HasFatalFailure()) break;
  }
  // The sweep must have actually exercised the injected-fault machinery.
  EXPECT_GT(g_io_chaos_injections.load(), 0u);
  fi::FaultInjector::Global().Reset();
}

}  // namespace
}  // namespace eris::core
