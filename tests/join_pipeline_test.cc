// Differential tests for fused pipelines and MPSM joins: every result is
// checked against a naive sequential oracle over the loaded data, across
// random and adversarial selectivities/key sets, and across a concurrent
// rebalance (snapshot consistency). The sim-mode cases additionally pin
// down the NUMA claims: MPSM cross-link traffic stays below the
// shared-hash baseline's.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "query/join.h"
#include "query/pipeline.h"

namespace eris::query {
namespace {

using core::Engine;
using core::EngineOptions;
using core::ExecutionMode;
using routing::KeyValue;
using storage::Key;
using storage::ObjectId;
using storage::Value;

EngineOptions Opts(ExecutionMode mode, uint32_t nodes = 2,
                   uint32_t cores = 2) {
  EngineOptions o;
  o.topology = numa::Topology::Flat(nodes, cores);
  o.mode = mode;
  return o;
}

core::LoadBalancerConfig OneShot() {
  core::LoadBalancerConfig cfg;
  cfg.algorithm = core::BalanceAlgorithm::kOneShot;
  cfg.trigger_cv = 0.05;
  cfg.min_total_accesses = 1;
  return cfg;
}

/// Sequential pipeline oracle: tuple-at-a-time over the client-side copy.
PipelineResult OraclePipeline(const std::vector<Value>& f1,
                              const std::vector<Value>& f2,
                              const std::vector<Value>& agg,
                              const PipelineQuery& q) {
  PipelineResult r;
  for (size_t i = 0; i < f1.size(); ++i) {
    if (f1[i] < q.filter.lo || f1[i] > q.filter.hi) continue;
    if (q.filter2_column != PipelineQuery::kNoColumn &&
        (f2[i] < q.filter2.lo || f2[i] > q.filter2.hi)) {
      continue;
    }
    ++r.rows;
    r.sum += agg[i];
  }
  return r;
}

/// Sequential join oracle: sorted-set intersection of the key sets.
MergeJoinResult OracleJoin(const std::set<Key>& r, const std::set<Key>& s) {
  MergeJoinResult out;
  for (Key k : r) {
    if (s.count(k) != 0) {
      ++out.matches;
      out.key_sum += k;
    }
  }
  return out;
}

class JoinPipelineTest : public ::testing::TestWithParam<ExecutionMode> {};

TEST_P(JoinPipelineTest, PipelineDifferentialRandomSelectivities) {
  Engine engine(Opts(GetParam()));
  engine.Start();
  PipelineRunner runner(&engine);
  ColumnGroup group = runner.CreateColumnGroup("g", 3);

  Xoshiro256 rng(21);
  const size_t kRows = 60000;
  std::vector<Value> c0(kRows), c1(kRows), c2(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    c0[i] = rng.NextBounded(100000);
    c1[i] = rng.NextBounded(256);
    c2[i] = rng.NextBounded(1u << 24);
  }
  std::vector<std::span<const Value>> cols{c0, c1, c2};
  runner.AppendRows(group, cols);

  // Random two-filter plans at varying selectivities, plus adversarial
  // corners: empty range (0%), full domain (100%), single-value (lo==hi),
  // and inverted-looking extremes of the value domain.
  std::vector<std::pair<Value, Value>> windows;
  for (int t = 0; t < 8; ++t) {
    Value lo = rng.NextBounded(100000);
    Value width = rng.NextBounded(30000);
    windows.push_back({lo, lo + width});
  }
  windows.push_back({100001, 200000});          // 0%: above the domain
  windows.push_back({0, ~Value{0}});            // 100%
  windows.push_back({c0[0], c0[0]});            // single value
  windows.push_back({0, 0});                    // bottom edge
  windows.push_back({99999, 99999});            // top edge

  for (const auto& [lo, hi] : windows) {
    PipelineQuery q;
    q.filter_column = group[0];
    q.filter = {lo, hi};
    q.agg_column = group[2];
    if (rng.NextBounded(2) == 0) {
      q.filter2_column = group[1];
      q.filter2 = {0, rng.NextBounded(256)};
    }
    PipelineResult oracle = OraclePipeline(c0, c1, c2, q);
    PipelineResult fused = runner.Run(q, /*fused=*/true);
    PipelineResult baseline = runner.Run(q, /*fused=*/false);
    EXPECT_EQ(fused.rows, oracle.rows) << "window [" << lo << "," << hi << "]";
    EXPECT_EQ(fused.sum, oracle.sum) << "window [" << lo << "," << hi << "]";
    EXPECT_EQ(baseline.rows, oracle.rows)
        << "window [" << lo << "," << hi << "]";
    EXPECT_EQ(baseline.sum, oracle.sum)
        << "window [" << lo << "," << hi << "]";
  }
  engine.Stop();
}

TEST_P(JoinPipelineTest, JoinDifferentialRandomAndAdversarialKeySets) {
  const Key kDomain = 1u << 16;
  Xoshiro256 rng(33);
  struct Case {
    const char* name;
    std::vector<Key> r;
    std::vector<Key> s;
  };
  std::vector<Case> cases;

  // Random overlapping sets (with duplicate submissions).
  {
    Case c{"random", {}, {}};
    for (int i = 0; i < 20000; ++i) c.r.push_back(rng.NextBounded(kDomain));
    for (int i = 0; i < 20000; ++i) c.s.push_back(rng.NextBounded(kDomain));
    cases.push_back(std::move(c));
  }
  // Boundary-heavy: keys piled around the initial uniform partition
  // boundaries (domain / num_aeus multiples), the straddle-maximizing load.
  {
    Case c{"boundary", {}, {}};
    const Key step = kDomain / 4;  // 4 AEUs in the default topology
    for (Key b = step; b < kDomain; b += step) {
      for (Key d = 0; d < 64; ++d) {
        c.r.push_back(b - 32 + d);
        c.s.push_back(b - 48 + d);
      }
    }
    cases.push_back(std::move(c));
  }
  // Disjoint sides; identical sides; one side empty; both empty.
  {
    Case c{"disjoint", {}, {}};
    for (Key k = 0; k < 5000; ++k) c.r.push_back(k * 2);
    for (Key k = 0; k < 5000; ++k) c.s.push_back(k * 2 + 1);
    cases.push_back(std::move(c));
  }
  {
    Case c{"identical", {}, {}};
    for (Key k = 0; k < 8000; ++k) {
      c.r.push_back(k * 7 % kDomain);
      c.s.push_back(k * 7 % kDomain);
    }
    cases.push_back(std::move(c));
  }
  cases.push_back({"empty_s", {1, 2, 3}, {}});
  cases.push_back({"empty_both", {}, {}});

  for (Case& c : cases) {
    Engine engine(Opts(GetParam()));
    ObjectId r = engine.CreateIndex("r", kDomain,
                                    {.prefix_bits = 8, .key_bits = 16});
    ObjectId s = engine.CreateIndex("s", kDomain,
                                    {.prefix_bits = 8, .key_bits = 16});
    ObjectId s_hashed = engine.CreateHashedIndex(
        "s_hashed", kDomain, {.prefix_bits = 8, .key_bits = 16});
    engine.Start();
    JoinRunner runner(&engine);

    auto load = [&](ObjectId obj, const std::vector<Key>& keys) {
      std::vector<KeyValue> kvs;
      for (Key k : keys) kvs.push_back({k, k + 1});
      runner.session().Insert(obj, kvs);
      // Duplicate submission: upsert half of the keys again with a new
      // value — the key set (and thus the join) must not change.
      std::vector<KeyValue> dups;
      for (size_t i = 0; i < kvs.size(); i += 2) {
        dups.push_back({kvs[i].key, kvs[i].value + 100});
      }
      if (!dups.empty()) runner.session().Upsert(obj, dups);
    };
    load(r, c.r);
    load(s, c.s);
    load(s_hashed, c.s);

    MergeJoinResult oracle = OracleJoin(std::set<Key>(c.r.begin(), c.r.end()),
                                        std::set<Key>(c.s.begin(), c.s.end()));
    MergeJoinResult mpsm = runner.MergeJoin(r, s);
    EXPECT_EQ(mpsm.matches, oracle.matches) << c.name;
    EXPECT_EQ(mpsm.key_sum, oracle.key_sum) << c.name;
    MergeJoinResult shared = runner.SharedHashJoin(r, s_hashed);
    EXPECT_EQ(shared.matches, oracle.matches) << c.name;
    EXPECT_EQ(shared.key_sum, oracle.key_sum) << c.name;
    engine.Stop();
  }
}

TEST_P(JoinPipelineTest, JoinSurvivesInterleavedRebalances) {
  // Rebalances between and around join phases move partition boundaries;
  // the staged-entry forwarding and stray-lookup paths must keep every
  // join's result equal to the oracle.
  const Key kDomain = 1u << 16;
  Engine engine(Opts(GetParam()));
  ObjectId r = engine.CreateIndex("r", kDomain,
                                  {.prefix_bits = 8, .key_bits = 16});
  ObjectId s = engine.CreateIndex("s", kDomain,
                                  {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  JoinRunner runner(&engine);

  Xoshiro256 rng(55);
  std::set<Key> r_keys, s_keys;
  std::vector<KeyValue> r_kvs, s_kvs;
  for (int i = 0; i < 30000; ++i) {
    Key k = rng.NextBounded(kDomain);
    if (r_keys.insert(k).second) r_kvs.push_back({k, k});
    k = rng.NextBounded(kDomain);
    if (s_keys.insert(k).second) s_kvs.push_back({k, k});
  }
  runner.session().Insert(r, r_kvs);
  runner.session().Insert(s, s_kvs);
  MergeJoinResult oracle = OracleJoin(r_keys, s_keys);

  // Skew the access distribution so each rebalance actually moves
  // boundaries: hammer a narrow window between join rounds.
  std::vector<Key> hot;
  for (Key k = 0; k < kDomain / 8; ++k) {
    if (r_keys.count(k) != 0) hot.push_back(k);
  }
  for (int round = 0; round < 4; ++round) {
    MergeJoinResult got = runner.MergeJoin(r, s);
    EXPECT_EQ(got.matches, oracle.matches) << "round " << round;
    EXPECT_EQ(got.key_sum, oracle.key_sum) << "round " << round;
    runner.session().Lookup(r, hot);
    runner.session().Lookup(r, hot);
    engine.RebalanceObject(r, OneShot());
    if (round % 2 == 1) engine.RebalanceObject(s, OneShot());
  }
  MergeJoinResult final_join = runner.MergeJoin(r, s);
  EXPECT_EQ(final_join.matches, oracle.matches);
  EXPECT_EQ(final_join.key_sum, oracle.key_sum);
  engine.Stop();
}

TEST(JoinPipelineSimTest, MpsmCrossLinkBytesBelowSharedHash) {
  // The NUMA claim, measured: on a multi-node topology with R rebalanced
  // away from uniform boundaries, MPSM routes only boundary-straddling S
  // ranges across links while the shared-hash baseline routes every R key
  // to a hash-chosen owner. The sim's TotalLinkBytes must show it.
  const Key kDomain = 1u << 16;
  EngineOptions opts = Opts(ExecutionMode::kSimulated, 4, 2);
  opts.sim.enabled = true;
  Engine engine(opts);
  ObjectId r = engine.CreateIndex("r", kDomain,
                                  {.prefix_bits = 8, .key_bits = 16});
  ObjectId s = engine.CreateIndex("s", kDomain,
                                  {.prefix_bits = 8, .key_bits = 16});
  ObjectId s_hashed = engine.CreateHashedIndex(
      "s_hashed", kDomain, {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  JoinRunner runner(&engine);

  Xoshiro256 rng(77);
  std::vector<KeyValue> r_kvs, s_kvs;
  for (int i = 0; i < 40000; ++i) {
    r_kvs.push_back({rng.NextBounded(kDomain), 1});
    s_kvs.push_back({rng.NextBounded(kDomain), 2});
  }
  runner.session().Insert(r, r_kvs);
  runner.session().Insert(s, s_kvs);
  runner.session().Insert(s_hashed, s_kvs);

  // Drift R's boundaries away from S's uniform ones: uniform background
  // lookups plus a moderately hot window. The rebalance shifts each
  // boundary some — every shifted range straddles and must be exchanged —
  // without collapsing the whole partitioning onto the hot spot.
  std::vector<Key> all_keys, hot;
  for (const KeyValue& kv : r_kvs) all_keys.push_back(kv.key);
  for (Key k = 0; k < kDomain / 8; ++k) hot.push_back(k);
  runner.session().Lookup(r, all_keys);
  runner.session().Lookup(r, all_keys);
  runner.session().Lookup(r, hot);
  engine.RebalanceObject(r, OneShot());

  engine.resource_usage().Reset();
  MergeJoinResult mpsm = runner.MergeJoin(r, s);
  uint64_t mpsm_link_bytes = engine.resource_usage().TotalLinkBytes();

  engine.resource_usage().Reset();
  MergeJoinResult shared = runner.SharedHashJoin(r, s_hashed);
  uint64_t shared_link_bytes = engine.resource_usage().TotalLinkBytes();

  EXPECT_EQ(mpsm.matches, shared.matches);
  EXPECT_EQ(mpsm.key_sum, shared.key_sum);
  EXPECT_GT(shared_link_bytes, 0u);
  EXPECT_LT(mpsm_link_bytes, shared_link_bytes)
      << "MPSM crossed more link bytes than the shared-hash baseline";
  engine.Stop();
}

INSTANTIATE_TEST_SUITE_P(Modes, JoinPipelineTest,
                         ::testing::Values(ExecutionMode::kSimulated,
                                           ExecutionMode::kThreads),
                         [](const auto& info) {
                           return info.param == ExecutionMode::kSimulated
                                      ? "Simulated"
                                      : "Threads";
                         });

}  // namespace
}  // namespace eris::query
