// Tests for the energy model (future-work extension).
#include <gtest/gtest.h>

#include "sim/energy.h"

namespace eris::sim {
namespace {

TEST(EnergyModelTest, ZeroWindowZeroEnergy) {
  numa::Topology topo = numa::Topology::Flat(1, 2);
  ResourceUsage usage(topo, 2);
  EnergyModel model;
  EnergyBreakdown e = model.Compute(usage);
  EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(EnergyModelTest, BusyCoreCostsMoreThanIdle) {
  numa::Topology topo = numa::Topology::Flat(1, 2);
  ResourceUsage usage(topo, 2);
  usage.AddComputeNs(0, 1e9);  // worker 0 busy for the whole 1 s window
  EnergyModel model;
  EnergyBreakdown e = model.Compute(usage);
  // worker 0: 1 s busy; worker 1: 1 s idle.
  EXPECT_NEAR(e.busy, model.params().core_busy_watts, 1e-9);
  EXPECT_NEAR(e.idle, model.params().core_idle_watts, 1e-9);
  EXPECT_GT(e.busy, e.idle);
}

TEST(EnergyModelTest, DvfsLowersIdleOnly) {
  numa::Topology topo = numa::Topology::Flat(1, 4);
  ResourceUsage usage(topo, 4);
  usage.AddComputeNs(0, 1e9);
  EnergyModel model;
  EnergyBreakdown nominal = model.Compute(usage, false);
  EnergyBreakdown dvfs = model.Compute(usage, true);
  EXPECT_DOUBLE_EQ(nominal.busy, dvfs.busy);
  EXPECT_LT(dvfs.idle, nominal.idle);
  EXPECT_LT(dvfs.total(), nominal.total());
}

TEST(EnergyModelTest, TrafficEnergyScalesWithBytes) {
  numa::Topology topo = numa::Topology::IntelMachine();
  ResourceUsage usage(topo, 4);
  usage.AddComputeNs(0, 1e6);
  usage.AddMemoryTraffic(0, 1, 1'000'000'000);  // 1 GB remote
  EnergyModel model;
  EnergyBreakdown e = model.Compute(usage);
  EXPECT_NEAR(e.dram, model.params().dram_nj_per_byte, 1e-6);
  EXPECT_GT(e.link, 0.0);
}

TEST(EnergyModelTest, BalancedRunBeatsImbalancedAtSameWork) {
  // The load-balancing energy argument: the same total busy work finishes
  // in a quarter of the wall time when spread over 4 workers, so the idle
  // and static energy shrink.
  numa::Topology topo = numa::Topology::Flat(1, 4);
  EnergyModel model;

  ResourceUsage imbalanced(topo, 4);
  imbalanced.AddComputeNs(0, 4e8);  // all work on one core
  EnergyBreakdown e_imb = model.Compute(imbalanced);

  ResourceUsage balanced(topo, 4);
  for (uint32_t w = 0; w < 4; ++w) balanced.AddComputeNs(w, 1e8);
  EnergyBreakdown e_bal = model.Compute(balanced);

  EXPECT_DOUBLE_EQ(e_imb.busy, e_bal.busy);  // same work
  EXPECT_LT(e_bal.idle, e_imb.idle);
  EXPECT_LT(e_bal.static_, e_imb.static_);
  EXPECT_LT(e_bal.total(), e_imb.total());
}

TEST(EnergyModelTest, BusyClampedToWindow) {
  // A worker's busy time can never exceed the window (defensive: the
  // critical time is the max, so equality is the bound).
  numa::Topology topo = numa::Topology::Flat(1, 2);
  ResourceUsage usage(topo, 2);
  usage.AddComputeNs(0, 5e8);
  usage.AddComputeNs(1, 1e9);
  EnergyModel model;
  EnergyBreakdown e = model.Compute(usage);
  double expect_busy = (0.5 + 1.0) * model.params().core_busy_watts;
  EXPECT_NEAR(e.busy, expect_busy, 1e-9);
}

}  // namespace
}  // namespace eris::sim
