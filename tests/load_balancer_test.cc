// Tests for the load balancing algorithms: MA smoothing, target boundary
// computation (the Figure 6 scenario), and plan building.
#include <gtest/gtest.h>

#include "core/load_balancer.h"

namespace eris::core {
namespace {

using routing::RangeEntry;
using storage::Key;
using storage::kMaxKey;

std::vector<RangeEntry> UniformEntries(size_t n, Key domain) {
  std::vector<RangeEntry> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i].hi = i + 1 == n ? kMaxKey : static_cast<Key>((i + 1) * domain / n);
    entries[i].owner = static_cast<routing::AeuId>(i);
  }
  return entries;
}

TEST(MovingAverageTest, WindowZeroIsIdentity) {
  std::vector<double> m{1, 2, 3, 4};
  EXPECT_EQ(MovingAverageSmooth(m, 0), m);
}

TEST(MovingAverageTest, Window1AveragesNeighbors) {
  std::vector<double> m{0, 0, 12, 0, 0};
  auto s = MovingAverageSmooth(m, 1);
  EXPECT_DOUBLE_EQ(s[0], 0.0);
  EXPECT_DOUBLE_EQ(s[1], 4.0);
  EXPECT_DOUBLE_EQ(s[2], 4.0);
  EXPECT_DOUBLE_EQ(s[3], 4.0);
  EXPECT_DOUBLE_EQ(s[4], 0.0);
}

TEST(MovingAverageTest, EdgesUseClampedWindow) {
  std::vector<double> m{6, 0, 0};
  auto s = MovingAverageSmooth(m, 1);
  EXPECT_DOUBLE_EQ(s[0], 3.0);  // mean of {6, 0}
}

TEST(MovingAverageTest, FullWindowEqualsGlobalMean) {
  // The paper: MA7 over 8 partitions equals One-Shot.
  std::vector<double> m{0, 0, 25, 25, 25, 25, 0, 0};
  auto s = MovingAverageSmooth(m, 7);
  for (double v : s) EXPECT_DOUBLE_EQ(v, 12.5);
}

TEST(CoefficientOfVariationTest, UniformIsZero) {
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({5, 5, 5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({}), 0.0);
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({0, 0}), 0.0);
}

TEST(CoefficientOfVariationTest, SkewIsPositive) {
  double cv = CoefficientOfVariation({0, 0, 100, 0});
  EXPECT_GT(cv, 1.0);
}

TEST(TargetBoundariesTest, BalancedLoadKeepsBoundaries) {
  auto entries = UniformEntries(4, 1000);
  std::vector<double> metric{10, 10, 10, 10};
  auto his = ComputeTargetBoundaries(entries, metric,
                                     BalanceAlgorithm::kOneShot, 0);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(his[i], entries[i].hi);
}

TEST(TargetBoundariesTest, OneShotFullyBalancesFigure6Scenario) {
  // Figure 6: partitions 3-6 of 8 each carry 25% of the load.
  auto entries = UniformEntries(8, 8000);
  std::vector<double> metric{0, 0, 25, 25, 25, 25, 0, 0};
  auto his = ComputeTargetBoundaries(entries, metric,
                                     BalanceAlgorithm::kOneShot, 0);
  // The loaded region is [2000, 6000); after One-Shot each partition gets
  // 12.5% of the mass, i.e. boundaries every 500 keys inside that region.
  EXPECT_EQ(his[7], kMaxKey);
  // Partition 0 absorbs everything up to 1/8 of the load mass: its new hi
  // must lie inside the hot region.
  EXPECT_GT(his[0], 2000u);
  EXPECT_LE(his[0], 2600u);
  // Boundaries strictly increase.
  for (size_t i = 1; i < 8; ++i) EXPECT_GT(his[i], his[i - 1]);
  // The hot region [2000,6000) is split roughly evenly among all 8.
  for (size_t i = 0; i + 1 < 8; ++i) {
    EXPECT_GE(his[i], 2000u + i * 450);
    EXPECT_LE(his[i], 2600u + i * 520);
  }
}

TEST(TargetBoundariesTest, MaMovesLessThanOneShot) {
  auto entries = UniformEntries(8, 8000);
  std::vector<double> metric{0, 0, 25, 25, 25, 25, 0, 0};
  auto oneshot = ComputeTargetBoundaries(entries, metric,
                                         BalanceAlgorithm::kOneShot, 0);
  auto ma1 = ComputeTargetBoundaries(entries, metric,
                                     BalanceAlgorithm::kMovingAverage, 1);
  // MA1 boundary 0 stays closer to the original (1000) than One-Shot's.
  EXPECT_LT(std::abs(static_cast<long>(ma1[0]) - 1000),
            std::abs(static_cast<long>(oneshot[0]) - 1000));
}

TEST(TargetBoundariesTest, MaFullWindowEqualsOneShot) {
  auto entries = UniformEntries(8, 8000);
  std::vector<double> metric{0, 0, 25, 25, 25, 25, 0, 0};
  auto oneshot = ComputeTargetBoundaries(entries, metric,
                                         BalanceAlgorithm::kOneShot, 0);
  auto ma7 = ComputeTargetBoundaries(entries, metric,
                                     BalanceAlgorithm::kMovingAverage, 7);
  EXPECT_EQ(oneshot, ma7);
}

TEST(TargetBoundariesTest, ZeroMetricNoChange) {
  auto entries = UniformEntries(4, 1000);
  std::vector<double> metric{0, 0, 0, 0};
  auto his = ComputeTargetBoundaries(entries, metric,
                                     BalanceAlgorithm::kOneShot, 0);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(his[i], entries[i].hi);
}

TEST(TargetBoundariesTest, BoundariesAlwaysStrictlyIncreasing) {
  // Pathological metrics must not produce overlapping ranges.
  auto entries = UniformEntries(6, 600);
  for (std::vector<double> metric :
       {std::vector<double>{100, 0, 0, 0, 0, 0},
        std::vector<double>{0, 0, 0, 0, 0, 100},
        std::vector<double>{1e9, 1, 1, 1, 1, 1e9},
        std::vector<double>{0, 1e-9, 0, 1e9, 0, 0}}) {
    for (auto algo :
         {BalanceAlgorithm::kOneShot, BalanceAlgorithm::kMovingAverage}) {
      auto his = ComputeTargetBoundaries(entries, metric, algo, 1);
      for (size_t i = 1; i < his.size(); ++i) {
        EXPECT_GT(his[i], his[i - 1]);
      }
      EXPECT_EQ(his.back(), kMaxKey);
    }
  }
}

TEST(BuildRangePlanTest, NoChangeYieldsEmptyPlan) {
  auto entries = UniformEntries(4, 1000);
  std::vector<Key> same{entries[0].hi, entries[1].hi, entries[2].hi,
                        entries[3].hi};
  RebalancePlan plan = BuildRangePlan(entries, same);
  EXPECT_TRUE(plan.empty());
}

TEST(BuildRangePlanTest, FetchesCoverMovedPieces) {
  auto entries = UniformEntries(4, 1000);  // 250 each
  // Shift the first boundary right: AEU 0 grows by [250, 400) from AEU 1.
  std::vector<Key> his{400, 500, 750, kMaxKey};
  RebalancePlan plan = BuildRangePlan(entries, his);
  ASSERT_FALSE(plan.empty());
  const RebalancePlan::AeuPlan* aeu0 = nullptr;
  for (const auto& ap : plan.aeus) {
    if (ap.aeu == 0) aeu0 = &ap;
  }
  ASSERT_NE(aeu0, nullptr);
  ASSERT_EQ(aeu0->fetches.size(), 1u);
  EXPECT_EQ(aeu0->fetches[0].range.lo, 250u);
  EXPECT_EQ(aeu0->fetches[0].range.hi, 400u);
  EXPECT_EQ(aeu0->fetches[0].source, 1u);
  // AEU 1 shrinks on both sides but fetches nothing.
  for (const auto& ap : plan.aeus) {
    if (ap.aeu == 1) EXPECT_TRUE(ap.fetches.empty());
  }
}

TEST(BuildRangePlanTest, MultiSourceFetch) {
  auto entries = UniformEntries(4, 1000);
  // AEU 0 takes over almost everything.
  std::vector<Key> his{900, 950, 980, kMaxKey};
  RebalancePlan plan = BuildRangePlan(entries, his);
  const RebalancePlan::AeuPlan* aeu0 = nullptr;
  for (const auto& ap : plan.aeus) {
    if (ap.aeu == 0) aeu0 = &ap;
  }
  ASSERT_NE(aeu0, nullptr);
  EXPECT_EQ(aeu0->fetches.size(), 3u);  // pieces from AEUs 1, 2, 3
}

TEST(BuildPhysicalPlanTest, BalancedInputNoPlan) {
  PhysicalPlan plan = BuildPhysicalPlan({100, 100, 100}, {0, 0, 0});
  EXPECT_TRUE(plan.empty());
}

TEST(BuildPhysicalPlanTest, PrefersIntraNodeMatches) {
  // AEUs 0,1 on node 0; AEUs 2,3 on node 1. AEU 0 has everything.
  PhysicalPlan plan =
      BuildPhysicalPlan({4000, 0, 0, 0}, {0, 0, 1, 1}, 1);
  ASSERT_EQ(plan.aeus.size(), 3u);
  for (const auto& ap : plan.aeus) {
    ASSERT_EQ(ap.fetches.size(), 1u);
    EXPECT_EQ(ap.fetches[0].source, 0u);
    EXPECT_EQ(ap.fetches[0].tuples, 1000u);
  }
  // The first receiver in the plan is the same-node AEU 1.
  EXPECT_EQ(plan.aeus[0].aeu, 1u);
}

TEST(BuildPhysicalPlanTest, SuppressesTinyTransfers) {
  PhysicalPlan plan = BuildPhysicalPlan({102, 98, 100}, {0, 0, 0}, 10);
  EXPECT_TRUE(plan.empty());
}

TEST(BuildPhysicalPlanTest, ConservesTuples) {
  std::vector<uint64_t> tuples{5000, 1000, 0, 2000, 12000, 0};
  std::vector<uint32_t> nodes{0, 0, 1, 1, 2, 2};
  PhysicalPlan plan = BuildPhysicalPlan(tuples, nodes, 1);
  // Apply the plan and verify balance.
  for (const auto& ap : plan.aeus) {
    for (const auto& f : ap.fetches) {
      tuples[ap.aeu] += f.tuples;
      tuples[f.source] -= f.tuples;
    }
  }
  uint64_t total = 0;
  for (uint64_t t : tuples) total += t;
  EXPECT_EQ(total, 20000u);
  for (uint64_t t : tuples) {
    EXPECT_GE(t, total / 6 - total / 60);
    EXPECT_LE(t, total / 6 + total / 60 + 5);
  }
}

}  // namespace
}  // namespace eris::core
