// Tests for the B+-tree comparator (ablation structure).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "numa/memory_manager.h"
#include "storage/bplus_tree.h"

namespace eris::storage {
namespace {

class BPlusTreeTest : public ::testing::Test {
 protected:
  numa::NodeMemoryManager mm_{0};
};

TEST_F(BPlusTreeTest, EmptyTree) {
  BPlusTree tree(&mm_);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Lookup(1), std::nullopt);
  EXPECT_EQ(tree.RangeScan(0, kMaxKey, [](Key, Value) {}), 0u);
  EXPECT_FALSE(tree.Erase(1));
}

TEST_F(BPlusTreeTest, InsertLookupUpsert) {
  BPlusTree tree(&mm_);
  EXPECT_TRUE(tree.Insert(5, 50));
  EXPECT_FALSE(tree.Insert(5, 51));
  EXPECT_EQ(tree.Lookup(5), std::optional<Value>(50));
  EXPECT_FALSE(tree.Upsert(5, 52));
  EXPECT_EQ(tree.Lookup(5), std::optional<Value>(52));
  EXPECT_EQ(tree.size(), 1u);
}

TEST_F(BPlusTreeTest, LeafSplitsPreserveOrder) {
  BPlusTree tree(&mm_);
  // Force several leaf splits with ascending keys.
  for (Key k = 0; k < 1000; ++k) tree.Insert(k, k * 2);
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_GT(tree.height(), 1u);
  for (Key k = 0; k < 1000; ++k) {
    ASSERT_EQ(tree.Lookup(k), std::optional<Value>(k * 2)) << k;
  }
}

TEST_F(BPlusTreeTest, DescendingInserts) {
  BPlusTree tree(&mm_);
  for (Key k = 1000; k-- > 0;) tree.Insert(k, k);
  for (Key k = 0; k < 1000; ++k) {
    ASSERT_EQ(tree.Lookup(k), std::optional<Value>(k));
  }
}

TEST_F(BPlusTreeTest, InnerSplitsDeepTree) {
  BPlusTree tree(&mm_);
  // > 64*64 keys forces inner splits (and likely a height-3 tree).
  const Key n = 64 * 64 * 3;
  for (Key k = 0; k < n; ++k) tree.Insert(k * 7 % (n * 7), k);
  EXPECT_GE(tree.height(), 3u);
  EXPECT_EQ(tree.size(), n);
}

TEST_F(BPlusTreeTest, RangeScanSortedAndBounded) {
  BPlusTree tree(&mm_);
  for (Key k = 0; k < 5000; k += 5) tree.Insert(k, k);
  std::vector<Key> seen;
  uint64_t count = tree.RangeScan(100, 1000, [&](Key k, Value v) {
    EXPECT_EQ(k, v);
    seen.push_back(k);
  });
  EXPECT_EQ(count, seen.size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.front(), 100u);
  EXPECT_EQ(seen.back(), 995u);
  EXPECT_EQ(seen.size(), 180u);
}

TEST_F(BPlusTreeTest, ForEachWalksLeafChain) {
  BPlusTree tree(&mm_);
  Xoshiro256 rng(6);
  std::map<Key, Value> reference;
  for (int i = 0; i < 3000; ++i) {
    Key k = rng.NextBounded(1u << 20);
    reference[k] = i;
    tree.Upsert(k, i);
  }
  auto it = reference.begin();
  uint64_t visited = 0;
  tree.ForEach([&](Key k, Value v) {
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    ++visited;
  });
  EXPECT_EQ(visited, reference.size());
}

TEST_F(BPlusTreeTest, EraseAndRescan) {
  BPlusTree tree(&mm_);
  for (Key k = 0; k < 2000; ++k) tree.Insert(k, k);
  for (Key k = 0; k < 2000; k += 2) EXPECT_TRUE(tree.Erase(k));
  EXPECT_EQ(tree.size(), 1000u);
  uint64_t count = tree.RangeScan(0, kMaxKey, [&](Key k, Value) {
    EXPECT_EQ(k % 2, 1u);
  });
  EXPECT_EQ(count, 1000u);
}

TEST_F(BPlusTreeTest, MemoryReleasedOnClear) {
  BPlusTree tree(&mm_);
  for (Key k = 0; k < 100000; ++k) tree.Insert(k, k);
  EXPECT_GT(tree.memory_bytes(), 0u);
  tree.Clear();
  EXPECT_EQ(tree.memory_bytes(), 0u);
  EXPECT_EQ(mm_.stats().bytes_in_use(), 0u);
}

TEST_F(BPlusTreeTest, MoveSemantics) {
  BPlusTree a(&mm_);
  a.Insert(1, 10);
  BPlusTree b = std::move(a);
  EXPECT_EQ(b.Lookup(1), std::optional<Value>(10));
  EXPECT_EQ(a.size(), 0u);  // NOLINT bugprone-use-after-move
}

class BPlusTreePropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  numa::NodeMemoryManager mm_{0};
};

TEST_P(BPlusTreePropertyTest, RandomOpsMatchStdMap) {
  BPlusTree tree(&mm_);
  std::map<Key, Value> reference;
  Xoshiro256 rng(GetParam());
  const Key domain = 1 + rng.NextBounded(1u << 22);
  for (int i = 0; i < 20000; ++i) {
    Key k = rng.NextBounded(domain);
    switch (rng.NextBounded(4)) {
      case 0: {
        bool expect_new = reference.find(k) == reference.end();
        EXPECT_EQ(tree.Insert(k, i), expect_new);
        if (expect_new) reference[k] = i;
        break;
      }
      case 1: {
        bool expect_new = reference.find(k) == reference.end();
        EXPECT_EQ(tree.Upsert(k, i), expect_new);
        reference[k] = i;
        break;
      }
      case 2:
        EXPECT_EQ(tree.Erase(k), reference.erase(k) > 0);
        break;
      default: {
        auto it = reference.find(k);
        auto got = tree.Lookup(k);
        if (it == reference.end()) {
          EXPECT_EQ(got, std::nullopt);
        } else {
          EXPECT_EQ(got, std::optional<Value>(it->second));
        }
      }
    }
    ASSERT_EQ(tree.size(), reference.size());
  }
  // Final ordered sweep.
  auto it = reference.begin();
  tree.ForEach([&](Key k, Value v) {
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  });
  EXPECT_EQ(it, reference.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreePropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

}  // namespace
}  // namespace eris::storage
