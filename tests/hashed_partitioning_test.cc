// Tests for the hash-partitioned index mode (the partitioning the paper
// argues against; implemented for the trade-off ablation).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"

namespace eris::core {
namespace {

using routing::KeyValue;
using storage::Key;
using storage::ObjectId;
using storage::Value;

class HashedPartitioningTest
    : public ::testing::TestWithParam<ExecutionMode> {
 protected:
  EngineOptions MakeOptions() {
    EngineOptions opts;
    opts.topology = numa::Topology::Flat(2, 2);
    opts.mode = GetParam();
    return opts;
  }
};

TEST_P(HashedPartitioningTest, InsertLookupRoundTrip) {
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateHashedIndex("kv", 1u << 16,
                                          {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 20000; ++k) kvs.push_back({k, k + 1});
  EXPECT_EQ(session->Insert(idx, kvs), 20000u);
  std::vector<Key> all;
  for (Key k = 0; k < 20000; ++k) all.push_back(k);
  EXPECT_EQ(session->Lookup(idx, all), 20000u);
  auto vals = session->LookupValues(idx, std::vector<Key>{0, 19999});
  EXPECT_EQ(vals[0], std::optional<Value>(1));
  EXPECT_EQ(vals[1], std::optional<Value>(20000));
  engine.Stop();
}

TEST_P(HashedPartitioningTest, KeysSpreadUniformlyWithoutBalancing) {
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateHashedIndex("kv", 1u << 16,
                                          {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();
  // A heavily skewed key range still spreads by hash class.
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 8000; ++k) kvs.push_back({k, 1});
  session->Insert(idx, kvs);
  for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    uint64_t t = engine.aeu(a).partition(idx)->tuple_count();
    EXPECT_GT(t, 1500u);
    EXPECT_LT(t, 2500u);
  }
  engine.Stop();
}

TEST_P(HashedPartitioningTest, RangeScanVisitsEveryPartition) {
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateHashedIndex("kv", 1u << 16,
                                          {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 10000; ++k) kvs.push_back({k, 1});
  session->Insert(idx, kvs);
  // Even a tiny range must multicast to all AEUs (not order preserving),
  // yet results stay exact.
  routing::AggregateSink& sink = session->sink();
  sink.Reset();
  uint64_t commands =
      session->endpoint().SendScanIndexRange(idx, 100, 110, {}, &sink);
  EXPECT_EQ(commands, engine.num_aeus());
  session->Wait(commands);
  EXPECT_EQ(sink.hits(), 10u);
  engine.Stop();
}

TEST_P(HashedPartitioningTest, BalancerSkipsHashedObjects) {
  Engine engine(MakeOptions());
  ObjectId idx = engine.CreateHashedIndex("kv", 1u << 16,
                                          {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  auto session = engine.CreateSession();
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 10000; ++k) kvs.push_back({k, 1});
  session->Insert(idx, kvs);
  std::vector<Key> hot;
  for (Key k = 0; k < 1000; ++k) hot.push_back(k);
  session->Lookup(idx, hot);
  LoadBalancerConfig cfg;
  cfg.algorithm = BalanceAlgorithm::kOneShot;
  cfg.trigger_cv = 0.0;
  cfg.min_total_accesses = 1;
  EXPECT_FALSE(engine.RebalanceObject(idx, cfg));
  engine.Stop();
}

INSTANTIATE_TEST_SUITE_P(Modes, HashedPartitioningTest,
                         ::testing::Values(ExecutionMode::kSimulated,
                                           ExecutionMode::kThreads),
                         [](const auto& info) {
                           return info.param == ExecutionMode::kSimulated
                                      ? "Simulated"
                                      : "Threads";
                         });

}  // namespace
}  // namespace eris::core
