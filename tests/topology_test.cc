// Tests for the NUMA topology model and the machine presets (Table 1/2).
#include <gtest/gtest.h>

#include <set>

#include "numa/pinning.h"
#include "numa/topology.h"

namespace eris::numa {
namespace {

TEST(FlatTopologyTest, EverythingLocal) {
  Topology t = Topology::Flat(4, 2);
  EXPECT_EQ(t.num_nodes(), 4u);
  EXPECT_EQ(t.cores_per_node(), 2u);
  EXPECT_EQ(t.total_cores(), 8u);
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = 0; b < 4; ++b) {
      EXPECT_DOUBLE_EQ(t.BandwidthGbps(a, b), t.BandwidthGbps(0, 0));
      EXPECT_DOUBLE_EQ(t.LatencyNs(a, b), t.LatencyNs(0, 0));
    }
  }
}

TEST(IntelTopologyTest, MatchesTable2) {
  Topology t = Topology::IntelMachine();
  EXPECT_EQ(t.num_nodes(), 4u);
  EXPECT_EQ(t.cores_per_node(), 10u);
  EXPECT_DOUBLE_EQ(t.BandwidthGbps(0, 0), 26.7);
  EXPECT_DOUBLE_EQ(t.LatencyNs(0, 0), 129.0);
  // Fully connected: every remote pair is one hop.
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = 0; b < 4; ++b) {
      if (a == b) continue;
      EXPECT_EQ(t.Hops(a, b), 1u);
      EXPECT_DOUBLE_EQ(t.BandwidthGbps(a, b), 10.7);
      EXPECT_DOUBLE_EQ(t.LatencyNs(a, b), 193.0);
    }
  }
  EXPECT_EQ(t.Diameter(), 1u);
}

TEST(AmdTopologyTest, MatchesTable2Classes) {
  Topology t = Topology::AmdMachine();
  EXPECT_EQ(t.num_nodes(), 8u);
  EXPECT_EQ(t.cores_per_node(), 8u);
  EXPECT_DOUBLE_EQ(t.BandwidthGbps(3, 3), 16.4);
  EXPECT_DOUBLE_EQ(t.LatencyNs(3, 3), 85.0);
  EXPECT_EQ(t.Diameter(), 2u);

  // The six bandwidth classes of Table 2 must all appear.
  std::set<double> bw_classes;
  std::set<double> lat_classes;
  for (NodeId a = 0; a < 8; ++a) {
    for (NodeId b = 0; b < 8; ++b) {
      bw_classes.insert(t.BandwidthGbps(a, b));
      lat_classes.insert(t.LatencyNs(a, b));
    }
  }
  EXPECT_EQ(bw_classes, (std::set<double>{16.4, 5.8, 4.2, 2.9, 3.7, 1.8}));
  EXPECT_EQ(lat_classes, (std::set<double>{85.0, 136.0, 152.0, 196.0}));

  // Package siblings communicate over the dedicated full link.
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(t.BandwidthGbps(i, i + 4), 5.8);
    EXPECT_DOUBLE_EQ(t.LatencyNs(i, i + 4), 136.0);
  }
}

TEST(AmdTopologyTest, WorstCaseDisparityMatchesPaper) {
  // Paper: "disparities ... are a factor of 9.1 in bandwidth and 2.3 in
  // latency" on the AMD machine.
  Topology t = Topology::AmdMachine();
  double min_bw = 1e300;
  double max_lat = 0;
  for (NodeId a = 0; a < 8; ++a) {
    for (NodeId b = 0; b < 8; ++b) {
      if (a == b) continue;
      min_bw = std::min(min_bw, t.BandwidthGbps(a, b));
      max_lat = std::max(max_lat, t.LatencyNs(a, b));
    }
  }
  EXPECT_NEAR(t.BandwidthGbps(0, 0) / min_bw, 9.1, 0.05);
  EXPECT_NEAR(max_lat / t.LatencyNs(0, 0), 2.3, 0.05);
}

TEST(SgiTopologyTest, FullMachine) {
  Topology t = Topology::SgiMachine();
  EXPECT_EQ(t.num_nodes(), 64u);
  EXPECT_EQ(t.cores_per_node(), 8u);
  EXPECT_EQ(t.total_cores(), 512u);
  EXPECT_DOUBLE_EQ(t.BandwidthGbps(0, 0), 36.2);
  EXPECT_DOUBLE_EQ(t.LatencyNs(0, 0), 81.0);
  // Blade sibling.
  EXPECT_DOUBLE_EQ(t.BandwidthGbps(0, 1), 9.5);
  EXPECT_DOUBLE_EQ(t.LatencyNs(0, 1), 400.0);
}

TEST(SgiTopologyTest, WorstCaseDisparityMatchesPaper) {
  // Paper: factor 5.5 in bandwidth and 10.7 in latency on the SGI machine.
  Topology t = Topology::SgiMachine();
  double min_bw = 1e300;
  double max_lat = 0;
  for (NodeId a = 0; a < 64; ++a) {
    for (NodeId b = 0; b < 64; ++b) {
      if (a == b) continue;
      min_bw = std::min(min_bw, t.BandwidthGbps(a, b));
      max_lat = std::max(max_lat, t.LatencyNs(a, b));
    }
  }
  EXPECT_NEAR(t.BandwidthGbps(0, 0) / min_bw, 5.5, 0.2);
  EXPECT_NEAR(max_lat / t.LatencyNs(0, 0), 10.7, 0.2);
}

TEST(SgiTopologyTest, PartialMachinesWork) {
  for (uint32_t nodes : {1u, 2u, 3u, 7u, 16u, 33u, 64u}) {
    Topology t = Topology::SgiMachine(nodes);
    EXPECT_EQ(t.num_nodes(), nodes);
    // Every pair must have finite bandwidth and latency.
    for (NodeId a = 0; a < nodes; ++a) {
      for (NodeId b = 0; b < nodes; ++b) {
        EXPECT_GT(t.BandwidthGbps(a, b), 0.0) << a << "->" << b;
        EXPECT_GT(t.LatencyNs(a, b), 0.0);
      }
    }
  }
}

TEST(SgiTopologyTest, LatencyGrowsWithNumaLinkHops) {
  Topology t = Topology::SgiMachine();
  // Remote latencies must be one of the paper's classes and grow with hops.
  std::set<double> lats;
  for (NodeId b = 2; b < 64; b += 2) lats.insert(t.LatencyNs(0, b));
  for (double lat : lats) {
    EXPECT_TRUE(lat == 510.0 || lat == 630.0 || lat == 750.0 || lat == 870.0)
        << lat;
  }
}

TEST(TopologyTest, RoutesConsistentWithHops) {
  for (const Topology& t :
       {Topology::IntelMachine(), Topology::AmdMachine(),
        Topology::SgiMachine(16)}) {
    for (NodeId a = 0; a < t.num_nodes(); ++a) {
      for (NodeId b = 0; b < t.num_nodes(); ++b) {
        const auto& route = t.Route(a, b);
        if (a == b) {
          EXPECT_TRUE(route.empty());
        } else {
          EXPECT_GE(route.size(), 1u);
          // Route must form a connected path from a to b.
          NodeId at = a;
          for (LinkId id : route) {
            const LinkSpec& l = t.link(id);
            EXPECT_TRUE(l.a == at || l.b == at);
            at = (l.a == at) ? l.b : l.a;
          }
          EXPECT_EQ(at, b);
        }
      }
    }
  }
}

TEST(TopologyTest, AggregateBandwidthSumsLocal) {
  Topology t = Topology::IntelMachine();
  EXPECT_DOUBLE_EQ(t.AggregateLocalBandwidthGbps(), 4 * 26.7);
}

TEST(TopologyTest, DetectHostDoesNotCrash) {
  Topology t = Topology::DetectHost();
  EXPECT_GE(t.num_nodes(), 1u);
  EXPECT_GE(t.total_cores(), 1u);
}

TEST(TopologyTest, HopsAndLatencySymmetric) {
  for (const Topology& t :
       {Topology::IntelMachine(), Topology::AmdMachine(),
        Topology::SgiMachine(32)}) {
    for (NodeId a = 0; a < t.num_nodes(); ++a) {
      for (NodeId b = 0; b < t.num_nodes(); ++b) {
        EXPECT_EQ(t.Hops(a, b), t.Hops(b, a));
        EXPECT_DOUBLE_EQ(t.LatencyNs(a, b), t.LatencyNs(b, a));
        EXPECT_DOUBLE_EQ(t.BandwidthGbps(a, b), t.BandwidthGbps(b, a));
      }
    }
  }
}

TEST(TopologyTest, AlternateRoutesShareEndpointsAndHops) {
  Topology t = Topology::SgiMachine(64);
  for (NodeId a = 0; a < 8; ++a) {
    for (NodeId b = 56; b < 64; ++b) {
      if (a == b) continue;
      const auto& routes = t.Routes(a, b);
      ASSERT_GE(routes.size(), 1u);
      for (const auto& route : routes) {
        // Every alternative is a valid path of the same hop count.
        EXPECT_EQ(route.size(), t.Routes(a, b).front().size());
        NodeId at = a;
        for (LinkId id : route) {
          const LinkSpec& l = t.link(id);
          ASSERT_TRUE(l.a == at || l.b == at);
          at = (l.a == at) ? l.b : l.a;
        }
        EXPECT_EQ(at, b);
      }
    }
  }
}

TEST(PinningTest, PinningIsBestEffortAndNeverFails) {
  EXPECT_TRUE(eris::numa::PinCurrentThreadToCore(0).ok());
  EXPECT_TRUE(eris::numa::PinCurrentThreadToCore(12345).ok());  // wraps
  EXPECT_GE(eris::numa::NumHardwareCores(), 1u);
}

TEST(TopologyTest, ToStringMentionsName) {
  Topology t = Topology::AmdMachine();
  std::string s = t.ToString();
  EXPECT_NE(s.find("amd-8n"), std::string::npos);
}

}  // namespace
}  // namespace eris::numa
