// Tests for the per-partition linear-probing hash table.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "numa/memory_manager.h"
#include "storage/hash_table.h"

namespace eris::storage {
namespace {

class HashTableTest : public ::testing::Test {
 protected:
  numa::NodeMemoryManager mm_{0};
};

TEST_F(HashTableTest, InsertLookup) {
  HashTable ht(&mm_);
  EXPECT_TRUE(ht.Insert(1, 10));
  EXPECT_FALSE(ht.Insert(1, 20));
  EXPECT_EQ(ht.Lookup(1), std::optional<Value>(10));
  EXPECT_EQ(ht.Lookup(2), std::nullopt);
  EXPECT_EQ(ht.size(), 1u);
}

TEST_F(HashTableTest, UpsertOverwrites) {
  HashTable ht(&mm_);
  EXPECT_TRUE(ht.Upsert(5, 1));
  EXPECT_FALSE(ht.Upsert(5, 2));
  EXPECT_EQ(ht.Lookup(5), std::optional<Value>(2));
}

TEST_F(HashTableTest, EraseWithBackwardShift) {
  HashTable ht(&mm_);
  for (Key k = 0; k < 1000; ++k) ht.Insert(k, k);
  for (Key k = 0; k < 1000; k += 3) EXPECT_TRUE(ht.Erase(k));
  for (Key k = 0; k < 1000; ++k) {
    if (k % 3 == 0) {
      EXPECT_EQ(ht.Lookup(k), std::nullopt);
    } else {
      EXPECT_EQ(ht.Lookup(k), std::optional<Value>(k)) << k;
    }
  }
}

TEST_F(HashTableTest, GrowsPastInitialCapacity) {
  HashTable ht(&mm_, 0, 16);
  for (Key k = 0; k < 10000; ++k) ht.Insert(k * 7, k);
  EXPECT_EQ(ht.size(), 10000u);
  EXPECT_GT(ht.capacity(), 10000u);
  for (Key k = 0; k < 10000; k += 111) {
    EXPECT_EQ(ht.Lookup(k * 7), std::optional<Value>(k));
  }
}

TEST_F(HashTableTest, SaltChangesLayoutNotSemantics) {
  HashTable a(&mm_, 1);
  HashTable b(&mm_, 2);
  for (Key k = 0; k < 100; ++k) {
    a.Insert(k, k);
    b.Insert(k, k);
  }
  for (Key k = 0; k < 100; ++k) {
    EXPECT_EQ(a.Lookup(k), b.Lookup(k));
  }
  EXPECT_EQ(a.salt(), 1u);
  EXPECT_EQ(b.salt(), 2u);
}

TEST_F(HashTableTest, ForEachVisitsEverything) {
  HashTable ht(&mm_);
  std::map<Key, Value> reference;
  for (Key k = 100; k < 200; ++k) {
    ht.Insert(k, k * 2);
    reference[k] = k * 2;
  }
  std::map<Key, Value> seen;
  ht.ForEach([&](Key k, Value v) { seen[k] = v; });
  EXPECT_EQ(seen, reference);
}

TEST_F(HashTableTest, ClearEmpties) {
  HashTable ht(&mm_);
  ht.Insert(1, 1);
  ht.Clear();
  EXPECT_EQ(ht.size(), 0u);
  EXPECT_EQ(ht.Lookup(1), std::nullopt);
}

TEST_F(HashTableTest, RandomizedAgainstStdMap) {
  HashTable ht(&mm_, 42, 16);
  std::map<Key, Value> reference;
  Xoshiro256 rng(8);
  for (int i = 0; i < 30000; ++i) {
    Key k = rng.NextBounded(2000);
    switch (rng.NextBounded(4)) {
      case 0: {
        bool was_new = ht.Upsert(k, i);
        EXPECT_EQ(was_new, reference.find(k) == reference.end());
        reference[k] = i;
        break;
      }
      case 1: {
        bool was_new = ht.Insert(k, i);
        bool expect_new = reference.find(k) == reference.end();
        EXPECT_EQ(was_new, expect_new);
        if (expect_new) reference[k] = i;
        break;
      }
      case 2: {
        EXPECT_EQ(ht.Erase(k), reference.erase(k) > 0);
        break;
      }
      default: {
        auto it = reference.find(k);
        auto got = ht.Lookup(k);
        if (it == reference.end()) {
          EXPECT_EQ(got, std::nullopt);
        } else {
          EXPECT_EQ(got, std::optional<Value>(it->second));
        }
      }
    }
    EXPECT_EQ(ht.size(), reference.size());
  }
}

TEST_F(HashTableTest, MoveTransfersOwnership) {
  HashTable a(&mm_);
  a.Insert(3, 30);
  HashTable b = std::move(a);
  EXPECT_EQ(b.Lookup(3), std::optional<Value>(30));
  EXPECT_EQ(a.size(), 0u);  // NOLINT bugprone-use-after-move
}

}  // namespace
}  // namespace eris::storage
