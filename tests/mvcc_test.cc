// Tests for the MVCC layer: snapshot visibility, undo chains, GC.
#include <gtest/gtest.h>

#include "numa/memory_manager.h"
#include "storage/mvcc.h"

namespace eris::storage {
namespace {

class MvccTest : public ::testing::Test {
 protected:
  numa::NodeMemoryManager mm_{0};
};

TEST_F(MvccTest, OracleMonotonic) {
  TimestampOracle oracle;
  uint64_t a = oracle.NextWriteTs();
  uint64_t b = oracle.NextWriteTs();
  EXPECT_LT(a, b);
  // A snapshot sees exactly the writes issued so far...
  EXPECT_EQ(oracle.ReadTs(), b);
  // ...and never a write issued after it was taken.
  uint64_t snapshot = oracle.ReadTs();
  EXPECT_GT(oracle.NextWriteTs(), snapshot);
}

TEST_F(MvccTest, AppendVisibility) {
  MvccColumn col(&mm_);
  col.Append(10, 5);
  col.Append(20, 7);
  EXPECT_EQ(col.VisibleSize(4), 0u);
  EXPECT_EQ(col.VisibleSize(5), 1u);
  EXPECT_EQ(col.VisibleSize(6), 1u);
  EXPECT_EQ(col.VisibleSize(7), 2u);
  EXPECT_EQ(col.VisibleSize(100), 2u);
}

TEST_F(MvccTest, SameTsAppendsShareFrontierEntry) {
  MvccColumn col(&mm_);
  for (int i = 0; i < 10; ++i) col.Append(i, 3);
  EXPECT_EQ(col.VisibleSize(2), 0u);
  EXPECT_EQ(col.VisibleSize(3), 10u);
}

TEST_F(MvccTest, UpdateCreatesVersionChain) {
  MvccColumn col(&mm_);
  TupleId tid = col.Append(100, 1);
  col.Update(tid, 200, 5);
  col.Update(tid, 300, 9);
  EXPECT_EQ(col.Read(tid, 1), 100u);
  EXPECT_EQ(col.Read(tid, 4), 100u);
  EXPECT_EQ(col.Read(tid, 5), 200u);
  EXPECT_EQ(col.Read(tid, 8), 200u);
  EXPECT_EQ(col.Read(tid, 9), 300u);
  EXPECT_EQ(col.Read(tid, 100), 300u);
  EXPECT_EQ(col.undo_chains(), 1u);
}

TEST_F(MvccTest, ScanSnapshotSeesConsistentState) {
  MvccColumn col(&mm_);
  for (Value v = 0; v < 10; ++v) col.Append(v, 1);
  // At ts 5, overwrite tuple 3.
  col.Update(3, 999, 5);
  uint64_t sum_old = 0;
  col.ScanSnapshot(4, [&](TupleId, Value v) { sum_old += v; });
  EXPECT_EQ(sum_old, 45u);  // 0..9
  uint64_t sum_new = 0;
  col.ScanSnapshot(5, [&](TupleId, Value v) { sum_new += v; });
  EXPECT_EQ(sum_new, 45u - 3 + 999);
}

TEST_F(MvccTest, ScanSumFastAndSlowPathsAgree) {
  MvccColumn col(&mm_);
  for (Value v = 1; v <= 1000; ++v) col.Append(v, 1);
  uint64_t fast = col.ScanSum(10, 1, 1000);
  EXPECT_EQ(fast, 1000u * 1001 / 2);
  col.Update(0, 0, 20);  // forces the slow path afterwards
  EXPECT_EQ(col.ScanSum(10, 1, 1000), 1000u * 1001 / 2);  // old snapshot
  EXPECT_EQ(col.ScanSum(20, 1, 1000), 1000u * 1001 / 2 - 1);
}

TEST_F(MvccTest, GarbageCollectDropsOldVersions) {
  MvccColumn col(&mm_);
  TupleId tid = col.Append(1, 1);
  col.Update(tid, 2, 5);
  col.Update(tid, 3, 10);
  EXPECT_EQ(col.undo_chains(), 1u);
  col.GarbageCollect(5);  // drops the version overwritten at ts 5
  EXPECT_EQ(col.Read(tid, 7), 2u);   // still correct
  EXPECT_EQ(col.Read(tid, 20), 3u);
  col.GarbageCollect(11);  // everything old is unreachable now
  EXPECT_EQ(col.undo_chains(), 0u);
  EXPECT_EQ(col.Read(tid, 20), 3u);
}

TEST_F(MvccTest, AbsorbColumnMakesTuplesVisibleAtTs) {
  numa::NodeMemoryManager mm2(0);
  MvccColumn a(&mm_);
  a.Append(1, 1);
  ColumnStore b(&mm_);
  for (Value v = 0; v < 100; ++v) b.Append(v);
  a.AbsorbColumn(std::move(b), 7);
  EXPECT_EQ(a.VisibleSize(6), 1u);
  EXPECT_EQ(a.VisibleSize(7), 101u);
  EXPECT_EQ(a.size(), 101u);
}

TEST_F(MvccTest, VisibleSizeClampedAfterSplit) {
  MvccColumn col(&mm_);
  for (Value v = 0; v < 1000; ++v) col.Append(v, 1);
  ColumnStore tail = col.column().SplitTail(400);
  EXPECT_EQ(col.size(), 400u);
  // Frontier says 1000 but only 400 remain physically.
  EXPECT_EQ(col.VisibleSize(10), 400u);
  uint64_t rows = 0;
  col.ScanSnapshot(10, [&](TupleId, Value) { ++rows; });
  EXPECT_EQ(rows, 400u);
}

}  // namespace
}  // namespace eris::storage
