// Tests for the MVCC layer: snapshot visibility, undo chains, GC.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "numa/memory_manager.h"
#include "storage/mvcc.h"

namespace eris::storage {
namespace {

class MvccTest : public ::testing::Test {
 protected:
  numa::NodeMemoryManager mm_{0};
};

TEST_F(MvccTest, OracleMonotonic) {
  TimestampOracle oracle;
  uint64_t a = oracle.NextWriteTs();
  uint64_t b = oracle.NextWriteTs();
  EXPECT_LT(a, b);
  // A snapshot sees exactly the writes issued so far...
  EXPECT_EQ(oracle.ReadTs(), b);
  // ...and never a write issued after it was taken.
  uint64_t snapshot = oracle.ReadTs();
  EXPECT_GT(oracle.NextWriteTs(), snapshot);
}

TEST_F(MvccTest, AppendVisibility) {
  MvccColumn col(&mm_);
  col.Append(10, 5);
  col.Append(20, 7);
  EXPECT_EQ(col.VisibleSize(4), 0u);
  EXPECT_EQ(col.VisibleSize(5), 1u);
  EXPECT_EQ(col.VisibleSize(6), 1u);
  EXPECT_EQ(col.VisibleSize(7), 2u);
  EXPECT_EQ(col.VisibleSize(100), 2u);
}

TEST_F(MvccTest, SameTsAppendsShareFrontierEntry) {
  MvccColumn col(&mm_);
  for (int i = 0; i < 10; ++i) col.Append(i, 3);
  EXPECT_EQ(col.VisibleSize(2), 0u);
  EXPECT_EQ(col.VisibleSize(3), 10u);
}

TEST_F(MvccTest, UpdateCreatesVersionChain) {
  MvccColumn col(&mm_);
  TupleId tid = col.Append(100, 1);
  col.Update(tid, 200, 5);
  col.Update(tid, 300, 9);
  EXPECT_EQ(col.Read(tid, 1), 100u);
  EXPECT_EQ(col.Read(tid, 4), 100u);
  EXPECT_EQ(col.Read(tid, 5), 200u);
  EXPECT_EQ(col.Read(tid, 8), 200u);
  EXPECT_EQ(col.Read(tid, 9), 300u);
  EXPECT_EQ(col.Read(tid, 100), 300u);
  EXPECT_EQ(col.undo_chains(), 1u);
}

TEST_F(MvccTest, ScanSnapshotSeesConsistentState) {
  MvccColumn col(&mm_);
  for (Value v = 0; v < 10; ++v) col.Append(v, 1);
  // At ts 5, overwrite tuple 3.
  col.Update(3, 999, 5);
  uint64_t sum_old = 0;
  col.ScanSnapshot(4, [&](TupleId, Value v) { sum_old += v; });
  EXPECT_EQ(sum_old, 45u);  // 0..9
  uint64_t sum_new = 0;
  col.ScanSnapshot(5, [&](TupleId, Value v) { sum_new += v; });
  EXPECT_EQ(sum_new, 45u - 3 + 999);
}

TEST_F(MvccTest, ScanSumFastAndSlowPathsAgree) {
  MvccColumn col(&mm_);
  for (Value v = 1; v <= 1000; ++v) col.Append(v, 1);
  uint64_t fast = col.ScanSum(10, 1, 1000);
  EXPECT_EQ(fast, 1000u * 1001 / 2);
  col.Update(0, 0, 20);  // forces the slow path afterwards
  EXPECT_EQ(col.ScanSum(10, 1, 1000), 1000u * 1001 / 2);  // old snapshot
  EXPECT_EQ(col.ScanSum(20, 1, 1000), 1000u * 1001 / 2 - 1);
}

TEST_F(MvccTest, GarbageCollectDropsOldVersions) {
  MvccColumn col(&mm_);
  TupleId tid = col.Append(1, 1);
  col.Update(tid, 2, 5);
  col.Update(tid, 3, 10);
  EXPECT_EQ(col.undo_chains(), 1u);
  col.GarbageCollect(5);  // drops the version overwritten at ts 5
  EXPECT_EQ(col.Read(tid, 7), 2u);   // still correct
  EXPECT_EQ(col.Read(tid, 20), 3u);
  col.GarbageCollect(11);  // everything old is unreachable now
  EXPECT_EQ(col.undo_chains(), 0u);
  EXPECT_EQ(col.Read(tid, 20), 3u);
}

TEST_F(MvccTest, AbsorbColumnMakesTuplesVisibleAtTs) {
  numa::NodeMemoryManager mm2(0);
  MvccColumn a(&mm_);
  a.Append(1, 1);
  ColumnStore b(&mm_);
  for (Value v = 0; v < 100; ++v) b.Append(v);
  a.AbsorbColumn(std::move(b), 7);
  EXPECT_EQ(a.VisibleSize(6), 1u);
  EXPECT_EQ(a.VisibleSize(7), 101u);
  EXPECT_EQ(a.size(), 101u);
}

TEST_F(MvccTest, SnapshotTakenMidBatchIgnoresLaterVersions) {
  // A snapshot pinned between the two halves of a logical update batch
  // must keep reading the first half's state — repeatably — while the
  // second half and further appends land at later timestamps.
  TimestampOracle oracle;
  MvccColumn col(&mm_);
  uint64_t ts1 = oracle.NextWriteTs();
  for (Value v = 0; v < 100; ++v) col.Append(v, ts1);
  uint64_t ts2 = oracle.NextWriteTs();
  for (TupleId t = 0; t < 50; ++t) col.Update(t, 1000 + t, ts2);

  uint64_t snapshot = oracle.ReadTs();  // sees ts1 + ts2, nothing later
  ASSERT_EQ(snapshot, ts2);
  uint64_t sum_at_snapshot = col.ScanSum(snapshot, 0, ~Value{0});

  uint64_t ts3 = oracle.NextWriteTs();
  for (TupleId t = 50; t < 100; ++t) col.Update(t, 5000 + t, ts3);
  for (Value v = 0; v < 40; ++v) col.Append(9999, ts3);

  // Still exactly the pre-ts3 state: updated tuples read through their
  // undo entries, appended tuples stay beyond the visible frontier.
  EXPECT_EQ(col.VisibleSize(snapshot), 100u);
  EXPECT_EQ(col.ScanSum(snapshot, 0, ~Value{0}), sum_at_snapshot);
  EXPECT_EQ(col.Read(10, snapshot), 1010u);  // first half: updated
  EXPECT_EQ(col.Read(60, snapshot), 60u);    // second half: original
  // And the later snapshot sees everything.
  uint64_t now = oracle.ReadTs();
  EXPECT_EQ(col.VisibleSize(now), 140u);
  EXPECT_EQ(col.Read(60, now), 5060u);
}

TEST_F(MvccTest, DeepUndoChainTraversalWithPartialGc) {
  // Chains longer than one undo entry: every historical snapshot must
  // land on its own version, and a partial GC may only drop versions no
  // surviving snapshot can reach.
  MvccColumn col(&mm_);
  TupleId tid = col.Append(0, 1);
  // Versions: 0@1, 100@11, 200@21, ... 600@61 — chain length 6.
  for (uint64_t i = 1; i <= 6; ++i) col.Update(tid, i * 100, 1 + i * 10);
  EXPECT_EQ(col.undo_chains(), 1u);
  for (uint64_t i = 0; i <= 6; ++i) {
    uint64_t ts = 1 + i * 10;
    EXPECT_EQ(col.Read(tid, ts), i * 100) << "snapshot " << ts;
    EXPECT_EQ(col.Read(tid, ts + 9), i * 100) << "snapshot " << ts + 9;
  }
  col.GarbageCollect(31);  // oldest surviving snapshot is 31
  for (uint64_t i = 3; i <= 6; ++i) {
    EXPECT_EQ(col.Read(tid, 1 + i * 10), i * 100) << "after GC";
  }
  col.GarbageCollect(62);  // nothing historical reachable anymore
  EXPECT_EQ(col.undo_chains(), 0u);
  EXPECT_EQ(col.Read(tid, 100), 600u);
}

TEST_F(MvccTest, ConcurrentAppendsNeverExposePartialBatches) {
  // Engine-level visibility under concurrent snapshot acquisition and
  // appends: with max_batch_elements == B and clients appending exactly
  // B values per call, every append is one command → one AEU → one
  // commit timestamp, so a concurrent scan must always observe a whole
  // number of batches (rows % B == 0) with the matching aggregate.
  constexpr uint64_t B = 16;
  constexpr int kWriters = 2;
  constexpr int kBatches = 200;
  core::EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = core::ExecutionMode::kThreads;
  opts.router.max_batch_elements = B;
  core::Engine engine(opts);
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&engine, col] {
      auto session = engine.CreateSession();
      std::vector<Value> batch(B, 7);
      for (int i = 0; i < kBatches; ++i) session->Append(col, batch);
    });
  }
  std::thread reader([&engine, col, &stop] {
    auto session = engine.CreateSession();
    while (!stop.load()) {
      auto stats = session->ScanStats(col);
      EXPECT_EQ(stats.rows % B, 0u) << "partial append batch visible";
      EXPECT_EQ(stats.sum, stats.rows * 7);
      if (stats.rows != 0) {
        EXPECT_EQ(stats.min, 7u);
        EXPECT_EQ(stats.max, 7u);
      }
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();

  auto session = engine.CreateSession();
  auto stats = session->ScanStats(col);
  EXPECT_EQ(stats.rows, static_cast<uint64_t>(kWriters) * kBatches * B);
  EXPECT_EQ(stats.sum, stats.rows * 7);
  engine.Stop();
}

TEST_F(MvccTest, VersionPoolRecyclesAfterGc) {
  // Version nodes live in a pooled slab (DESIGN.md §16): GC splices dead
  // chains onto the free list and later updates must reuse those nodes
  // instead of growing the pool.
  MvccColumn col(&mm_);
  for (Value v = 0; v < 64; ++v) col.Append(v, 1);
  for (uint64_t r = 0; r < 4; ++r) {
    for (TupleId t = 0; t < 64; ++t) col.Update(t, 1000 + r, 2 + r);
  }
  EXPECT_EQ(col.undo_chains(), 64u);
  EXPECT_EQ(col.free_versions(), 0u);
  col.GarbageCollect(6);  // every version was overwritten at ts <= 5
  EXPECT_EQ(col.undo_chains(), 0u);
  EXPECT_EQ(col.free_versions(), 256u);  // 64 tuples x 4 versions, batched
  // The next update round draws from the free list.
  for (TupleId t = 0; t < 64; ++t) col.Update(t, 2000, 7);
  EXPECT_EQ(col.undo_chains(), 64u);
  EXPECT_EQ(col.free_versions(), 192u);
  EXPECT_EQ(col.Read(5, 6), 1003u);   // pre-update snapshot
  EXPECT_EQ(col.Read(5, 7), 2000u);
}

TEST_F(MvccTest, ManyChainsSurviveTableGrowth) {
  // Hundreds of distinct chains force the open-addressing chain table
  // through several rehashes; every snapshot read must stay correct, and
  // a partial GC must keep exactly the still-reachable chains.
  constexpr TupleId kTuples = 500;
  MvccColumn col(&mm_);
  for (Value v = 0; v < kTuples; ++v) col.Append(v, 1);
  // Tuple t is overwritten at ts t + 2 (all distinct).
  for (TupleId t = 0; t < kTuples; ++t) col.Update(t, 10000 + t, t + 2);
  EXPECT_EQ(col.undo_chains(), kTuples);
  for (TupleId t = 0; t < kTuples; t += 7) {
    EXPECT_EQ(col.Read(t, 1), t) << "pre-update value";
    EXPECT_EQ(col.Read(t, t + 2), 10000 + t) << "post-update value";
  }
  // Watermark 252: versions overwritten at ts <= 252 (tuples 0..250) die.
  col.GarbageCollect(252);
  EXPECT_EQ(col.undo_chains(), kTuples - 251);
  EXPECT_EQ(col.free_versions(), 251u);
  for (TupleId t = 0; t < kTuples; t += 7) {
    EXPECT_EQ(col.Read(t, kTuples + 10), 10000 + t);
    if (t > 251) {
      EXPECT_EQ(col.Read(t, t + 1), t) << "survivor undo";
    }
  }
  col.GarbageCollect(kTuples + 2);
  EXPECT_EQ(col.undo_chains(), 0u);
  EXPECT_EQ(col.free_versions(), kTuples);
}

#if defined(ERIS_FAULT_INJECTION) && ERIS_FAULT_INJECTION
TEST_F(MvccTest, SteadyStateUpdateGcCycleIsAllocationFree) {
  // The pooled version slab and the chain table grow only through the
  // kMvccVersionAlloc injection point. After a warm-up update+GC cycle has
  // sized both, repeating the identical cycle must never visit the point:
  // updates pop the free list, GC splices chains back, the table capacity
  // is retained across the rebuild.
  std::atomic<uint64_t> grows{0};
  fi::FaultInjector::Global().Reset();
  fi::FaultInjector::Global().SetHook(
      fi::Point::kMvccVersionAlloc,
      [&] { grows.fetch_add(1, std::memory_order_relaxed); });

  MvccColumn col(&mm_);
  for (Value v = 0; v < 256; ++v) col.Append(v, 1);
  uint64_t ts = 2;
  auto cycle = [&] {
    for (int round = 0; round < 3; ++round) {
      for (TupleId t = 0; t < 256; ++t) col.Update(t, ts, ts);
      ++ts;
    }
    col.GarbageCollect(ts);
    ++ts;
  };
  cycle();  // warm-up: grows pool + table to steady-state capacity
  const uint64_t warmup = grows.load();
  EXPECT_GT(warmup, 0u);  // the warm-up itself does allocate
  for (int i = 0; i < 10; ++i) cycle();
  EXPECT_EQ(grows.load(), warmup)
      << "steady-state update/GC cycles grew the version pool";
  fi::FaultInjector::Global().Reset();
}
#endif  // ERIS_FAULT_INJECTION

TEST_F(MvccTest, VisibleSizeClampedAfterSplit) {
  MvccColumn col(&mm_);
  for (Value v = 0; v < 1000; ++v) col.Append(v, 1);
  ColumnStore tail = col.column().SplitTail(400);
  EXPECT_EQ(col.size(), 400u);
  // Frontier says 1000 but only 400 remain physically.
  EXPECT_EQ(col.VisibleSize(10), 400u);
  uint64_t rows = 0;
  col.ScanSnapshot(10, [&](TupleId, Value) { ++rows; });
  EXPECT_EQ(rows, 400u);
}

}  // namespace
}  // namespace eris::storage
