// Engine-wide allocation-profile tests (DESIGN.md §16).
//
// Every hot path converted to arena/pooled allocation grows its buffers
// only through a named fault-injection point:
//
//   kAeuScratchAlloc     — AEU dequeue/batch scratch (groups, key/value/
//                          payload staging, scan/pipeline job tables)
//   kMvccVersionAlloc    — MVCC version-chain pool + chain table
//   kWalBufferAlloc      — WAL group-commit buffer
//   kExchangeStreamAlloc — router exchange/transfer stream buffers
//
// Two invariants are checked here:
//   1. Zero steady-state allocations: after a warm-up has sized every
//      buffer, repeating the identical workload must never visit any of
//      the points again (the capacity is retained across clears and the
//      MVCC free list is refilled by idle-time GC).
//   2. Typed degradation: with artificial failures armed at those points,
//      the engine sheds the affected work with Status::ResourceExhausted
//      (or another typed status) — it never crashes, hangs, or returns an
//      untyped error — and each point actually fires across a seed sweep.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/engine.h"
#include "harness_util.h"

namespace eris::core {
namespace {

#if defined(ERIS_FAULT_INJECTION) && ERIS_FAULT_INJECTION

using storage::ObjectId;

constexpr fi::Point kAllocPoints[] = {
    fi::Point::kAeuScratchAlloc,
    fi::Point::kMvccVersionAlloc,
    fi::Point::kWalBufferAlloc,
    fi::Point::kExchangeStreamAlloc,
};
constexpr size_t kNumAllocPoints = std::size(kAllocPoints);

/// mkdtemp under $TMPDIR (or /tmp), removed on destruction.
struct ScratchDir {
  std::string path;
  ScratchDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/eris-alloc-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* dir = ::mkdtemp(buf.data());
    EXPECT_NE(dir, nullptr) << std::strerror(errno);
    if (dir != nullptr) path = dir;
  }
  ~ScratchDir() {
    std::error_code ec;
    if (!path.empty()) std::filesystem::remove_all(path, ec);
  }
};

TEST(AllocProfileTest, SteadyStateHotPathsAllocationFree) {
  std::atomic<uint64_t> grows[kNumAllocPoints] = {};
  fi::FaultInjector::Global().Reset();
  for (size_t i = 0; i < kNumAllocPoints; ++i) {
    fi::FaultInjector::Global().SetHook(
        kAllocPoints[i],
        [&grows, i] { grows[i].fetch_add(1, std::memory_order_relaxed); });
  }

  ScratchDir scratch;
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(2, 2);
  opts.mode = ExecutionMode::kSimulated;  // deterministic stepping and GC
  opts.durability.enabled = true;         // WAL on: kWalBufferAlloc is live
  opts.durability.dir = scratch.path;
  Engine engine(opts);
  ObjectId idx = engine.CreateIndex("kv", 1u << 16,
                                    {.prefix_bits = 8, .key_bits = 16});
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  auto session = engine.CreateSession();

  // One round of the steady-state workload: upserts over a fixed key set
  // (MVCC updates + WAL records + exchange streams), lookups, appends and
  // an aggregate scan; then enough idle pumps that every AEU runs its
  // maintenance pass (64 idle iterations each) and refills the MVCC
  // version free lists.
  std::vector<routing::KeyValue> kvs(256);
  std::vector<storage::Key> keys(256);
  for (size_t i = 0; i < kvs.size(); ++i) keys[i] = i * 181 % (1u << 16);
  std::vector<storage::Value> appends(64, 7);
  uint64_t round_no = 0;
  auto round = [&] {
    ++round_no;
    for (size_t i = 0; i < kvs.size(); ++i) kvs[i] = {keys[i], round_no};
    session->Upsert(idx, kvs);
    session->Lookup(idx, keys);
    session->Append(col, appends);
    (void)session->ScanStats(col);
    for (int p = 0; p < 300; ++p) engine.PumpAll();
  };

  for (int r = 0; r < 8; ++r) round();  // warm-up sizes every buffer
  uint64_t warmup[kNumAllocPoints];
  uint64_t warmup_total = 0;
  for (size_t i = 0; i < kNumAllocPoints; ++i) {
    warmup[i] = grows[i].load();
    warmup_total += warmup[i];
  }
  EXPECT_GT(warmup_total, 0u);  // the warm-up itself does allocate

  for (int r = 0; r < 10; ++r) round();
  for (size_t i = 0; i < kNumAllocPoints; ++i) {
    EXPECT_EQ(grows[i].load(), warmup[i])
        << "steady-state workload grew " << fi::PointName(kAllocPoints[i]);
  }

  fi::FaultInjector::Global().Reset();
  engine.Stop();
}

/// One seed of the alloc-fault sweep: a durable threaded engine with
/// artificial failures armed on every allocation point while harness
/// writers submit their scripts. Submits may fail — but only with a typed
/// status — and the engine must survive to a clean Stop().
void RunAllocFaultSeed(uint64_t seed, uint64_t* fired) {
  SCOPED_TRACE(::testing::Message() << "alloc-fault seed=" << seed);
  harness::HarnessConfig cfg;
  cfg.writers = 3;
  cfg.batches_per_writer = 24;
  auto scripts = harness::GenerateScripts(seed, cfg);

  fi::FaultInjector::Global().Reset();
  fi::FaultInjector::Global().EnableChaos(seed, /*perturb_probability=*/0.02);
  for (fi::Point p : kAllocPoints) {
    fi::FaultInjector::Global().SetFailProbability(p, 0.05);
  }

  ScratchDir scratch;
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(2, 2);
  opts.mode = ExecutionMode::kThreads;
  opts.durability.enabled = true;
  opts.durability.dir = scratch.path;
  Engine engine(opts);
  ObjectId idx = engine.CreateIndex("kv", cfg.domain_hi(),
                                    {.prefix_bits = 8, .key_bits = 16});
  ObjectId col = engine.CreateColumn("facts");
  engine.Start();

  std::atomic<uint32_t> untyped{0};
  std::atomic<uint64_t> resource_exhausted{0};
  std::vector<std::thread> writers;
  for (size_t w = 0; w < scripts.size(); ++w) {
    const harness::WriterScript* script = &scripts[w];
    writers.emplace_back([&, script] {
      auto session = engine.CreateSession();
      session->set_op_timeout_ns(500'000'000);  // bounded: a hang fails here
      for (const harness::OpBatch& batch : script->batches) {
        Status st;
        switch (batch.kind) {
          case harness::OpBatch::Kind::kInsert:
            st = session->SubmitInsert(idx, batch.kvs);
            break;
          case harness::OpBatch::Kind::kUpsert:
            st = session->SubmitUpsert(idx, batch.kvs);
            break;
          case harness::OpBatch::Kind::kErase:
            st = session->SubmitErase(idx, batch.keys);
            break;
          case harness::OpBatch::Kind::kLookup:
            st = session->SubmitLookup(idx, batch.keys);
            break;
          case harness::OpBatch::Kind::kAppend:
            st = session->SubmitAppend(col, batch.values);
            break;
        }
        if (st.ok()) continue;
        if (st.IsResourceExhausted()) {
          resource_exhausted.fetch_add(1, std::memory_order_relaxed);
        } else if (!(st.IsUnavailable() || st.IsDeadlineExceeded() ||
                     st.IsIoError() || st.IsInternal())) {
          untyped.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(untyped.load(), 0u) << "alloc failure surfaced untyped";

  for (size_t i = 0; i < kNumAllocPoints; ++i) {
    fired[i] += fi::FaultInjector::Global().Stats(kAllocPoints[i]).failures;
  }
  engine.Stop();  // must survive shed work and keep shutting down cleanly
  fi::FaultInjector::Global().Reset();
  (void)resource_exhausted;
}

TEST(AllocProfileTest, AllocFaultSweepDegradesTyped) {
  uint64_t fired[kNumAllocPoints] = {};
  auto seeds = harness::SweepSeeds(/*base=*/11000, /*default_count=*/6);
  for (uint64_t seed : seeds) {
    RunAllocFaultSeed(seed, fired);
    if (::testing::Test::HasFatalFailure()) break;
  }
  // Each instrumented point must actually have injected failures somewhere
  // in the sweep — otherwise the typed-degradation check above is vacuous.
  for (size_t i = 0; i < kNumAllocPoints; ++i) {
    EXPECT_GT(fired[i], 0u)
        << fi::PointName(kAllocPoints[i]) << " never fired across the sweep";
  }
  fi::FaultInjector::Global().Reset();
}

#endif  // ERIS_FAULT_INJECTION

}  // namespace
}  // namespace eris::core
