// Tests for the per-node memory managers with thread-local caching.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "numa/memory_manager.h"

namespace eris::numa {
namespace {

TEST(NodeMemoryManagerTest, AllocatesUsableMemory) {
  NodeMemoryManager mm(0);
  void* p = mm.Allocate(100);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 100);
  mm.Free(p, 100);
  mm.FlushThisThreadCache();
}

TEST(NodeMemoryManagerTest, ReusesFreedBlocks) {
  NodeMemoryManager mm(0);
  void* a = mm.Allocate(64);
  mm.Free(a, 64);
  void* b = mm.Allocate(64);
  EXPECT_EQ(a, b);  // thread cache returns the most recently freed block
  mm.Free(b, 64);
  mm.FlushThisThreadCache();
}

TEST(NodeMemoryManagerTest, DistinctBlocksWhileLive) {
  NodeMemoryManager mm(0);
  std::set<void*> blocks;
  for (int i = 0; i < 1000; ++i) {
    void* p = mm.Allocate(48);
    EXPECT_TRUE(blocks.insert(p).second) << "duplicate live block";
  }
  for (void* p : blocks) mm.Free(p, 48);
  mm.FlushThisThreadCache();
}

TEST(NodeMemoryManagerTest, LargeAllocationsBypassClasses) {
  NodeMemoryManager mm(0);
  size_t big = NodeMemoryManager::kMaxClassBytes + 1;
  void* p = mm.Allocate(big);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0, big);
  MemoryStats s = mm.stats();
  EXPECT_GE(s.bytes_reserved, big);
  mm.Free(p, big);
}

TEST(NodeMemoryManagerTest, StatsTrackUsage) {
  NodeMemoryManager mm(3);
  EXPECT_EQ(mm.node(), 3u);
  void* p = mm.Allocate(128);
  MemoryStats s = mm.stats();
  EXPECT_EQ(s.allocations, 1u);
  EXPECT_EQ(s.bytes_allocated, 128u);
  EXPECT_EQ(s.bytes_in_use(), 128u);
  mm.Free(p, 128);
  s = mm.stats();
  EXPECT_EQ(s.bytes_in_use(), 0u);
  mm.FlushThisThreadCache();
}

TEST(NodeMemoryManagerTest, ZeroByteAllocationWorks) {
  NodeMemoryManager mm(0);
  void* p = mm.Allocate(0);
  ASSERT_NE(p, nullptr);
  mm.Free(p, 0);
  mm.FlushThisThreadCache();
}

TEST(NodeMemoryManagerTest, TypedNewDelete) {
  NodeMemoryManager mm(0);
  struct Widget {
    int x;
    explicit Widget(int v) : x(v) {}
  };
  Widget* w = mm.New<Widget>(7);
  EXPECT_EQ(w->x, 7);
  mm.Delete(w);
  mm.FlushThisThreadCache();
}

TEST(NodeMemoryManagerTest, ConcurrentAllocFree) {
  NodeMemoryManager mm(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&mm] {
      std::vector<void*> mine;
      for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 200; ++i) {
          void* p = mm.Allocate(256);
          std::memset(p, 1, 256);
          mine.push_back(p);
        }
        for (void* p : mine) mm.Free(p, 256);
        mine.clear();
      }
      mm.FlushThisThreadCache();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mm.stats().bytes_in_use(), 0u);
}

TEST(NodeMemoryManagerTest, CrossThreadFreeFlowsBack) {
  // Allocate on one thread, free on another: blocks land in the second
  // thread's cache and drain to the central lists on flush.
  NodeMemoryManager mm(0);
  std::vector<void*> blocks;
  for (int i = 0; i < 100; ++i) blocks.push_back(mm.Allocate(512));
  std::thread other([&] {
    for (void* p : blocks) mm.Free(p, 512);
    mm.FlushThisThreadCache();
  });
  other.join();
  EXPECT_EQ(mm.stats().bytes_in_use(), 0u);
  mm.FlushThisThreadCache();
}

TEST(NodeMemoryManagerTest, ThreadCacheBytesTracksResidentBlocks) {
  NodeMemoryManager mm(0);
  // A fresh manager has nothing cached.
  EXPECT_EQ(mm.stats().thread_cache_bytes, 0u);
  // The first Allocate refills the thread cache with a batch; the block
  // handed out no longer counts as cache-resident.
  void* p = mm.Allocate(256);
  MemoryStats s = mm.stats();
  EXPECT_EQ(s.thread_cache_bytes,
            (NodeMemoryManager::kThreadCacheBatch - 1) * 256);
  EXPECT_EQ(s.bytes_in_use(), 256u);
  // Freeing parks the block in the cache: in_use drops, cache grows.
  mm.Free(p, 256);
  s = mm.stats();
  EXPECT_EQ(s.bytes_in_use(), 0u);
  EXPECT_EQ(s.thread_cache_bytes,
            NodeMemoryManager::kThreadCacheBatch * 256);
  // Flushing drains every cached block back to the central lists.
  mm.FlushThisThreadCache();
  EXPECT_EQ(mm.stats().thread_cache_bytes, 0u);
}

TEST(NodeMemoryManagerTest, ThreadCacheBytesAcrossThreads) {
  NodeMemoryManager mm(0);
  std::thread worker([&] {
    void* p = mm.Allocate(1024);
    mm.Free(p, 1024);
    // This thread exits without flushing; its cache still holds the batch.
  });
  worker.join();
  EXPECT_GT(mm.stats().thread_cache_bytes, 0u);
  // Large blocks bypass the classes entirely — no cache residency.
  NodeMemoryManager mm2(0);
  size_t big = NodeMemoryManager::kMaxClassBytes + 1;
  void* p = mm2.Allocate(big);
  mm2.Free(p, big);
  EXPECT_EQ(mm2.stats().thread_cache_bytes, 0u);
  mm.FlushThisThreadCache();
}

TEST(MemoryPoolTest, OneManagerPerNode) {
  MemoryPool pool(4);
  EXPECT_EQ(pool.num_nodes(), 4u);
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(pool.manager(n).node(), n);
}

TEST(MemoryPoolTest, InterleaveCyclesNodes) {
  MemoryPool pool(3);
  std::vector<NodeId> seq;
  for (int i = 0; i < 6; ++i) seq.push_back(pool.NextInterleavedNode());
  EXPECT_EQ(seq, (std::vector<NodeId>{0, 1, 2, 0, 1, 2}));
}

TEST(MemoryPoolTest, TotalStatsAggregate) {
  MemoryPool pool(2);
  void* a = pool.manager(0).Allocate(64);
  void* b = pool.manager(1).Allocate(64);
  EXPECT_EQ(pool.TotalStats().bytes_in_use(), 128u);
  pool.manager(0).Free(a, 64);
  pool.manager(1).Free(b, 64);
  pool.manager(0).FlushThisThreadCache();
  pool.manager(1).FlushThisThreadCache();
}

TEST(NodeMemoryManagerTest, ThpStatsAccountEveryArenaChunk) {
  // Every carved 2 MiB chunk lands in exactly one of the two THP counters:
  // huge_page_bytes (aligned reservation + madvise succeeded) or
  // thp_failures (graceful fallback). Force several chunks by draining
  // whole thread-cache batches of the largest class.
  NodeMemoryManager mm(0);
  std::vector<void*> blocks;
  for (int i = 0; i < 128; ++i) {
    blocks.push_back(mm.Allocate(NodeMemoryManager::kMaxClassBytes));
  }
  MemoryStats s = mm.stats();
  ASSERT_GE(s.bytes_reserved, NodeMemoryManager::kArenaChunkBytes);
  uint64_t chunks = s.bytes_reserved / NodeMemoryManager::kArenaChunkBytes;
  EXPECT_EQ(s.bytes_reserved % NodeMemoryManager::kArenaChunkBytes, 0u);
  EXPECT_EQ(s.huge_page_bytes % NodeMemoryManager::kArenaChunkBytes, 0u);
  EXPECT_LE(s.huge_page_bytes, s.bytes_reserved);
  EXPECT_EQ(s.huge_page_bytes / NodeMemoryManager::kArenaChunkBytes +
                s.thp_failures,
            chunks);
  for (void* p : blocks) mm.Free(p, NodeMemoryManager::kMaxClassBytes);
  mm.FlushThisThreadCache();
}

TEST(NodeMemoryManagerTest, LargeBlockFreeRoundTrip) {
  // Blocks above kMaxClassBytes bypass the classes; Free must return them
  // to the system and unwind every stat, round after round.
  NodeMemoryManager mm(0);
  size_t big = NodeMemoryManager::kMaxClassBytes * 4 + 17;
  for (int round = 0; round < 3; ++round) {
    void* p = mm.Allocate(big);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xC3, big);
    EXPECT_EQ(mm.stats().bytes_in_use(), big);
    mm.Free(p, big);
    EXPECT_EQ(mm.stats().bytes_in_use(), 0u);
  }
  MemoryStats s = mm.stats();
  EXPECT_EQ(s.allocations, 3u);
  EXPECT_EQ(s.bytes_freed, 3 * big);
  EXPECT_EQ(s.thread_cache_bytes, 0u);  // large blocks are never cached
}

TEST(NodeMemoryManagerTest, BytesInUseNeverUnderflowsUnderChurn) {
  // Regression: bytes_in_use() = bytes_allocated - bytes_freed read from
  // two atomics. A reader racing a cross-thread free must never observe
  // the freed increment without the matching allocated increment (freed is
  // published with release and snapshotted first with acquire); a stale
  // ordering shows up here as a value near 2^64.
  NodeMemoryManager mm(0);
  std::atomic<bool> stop{false};
  std::vector<std::thread> churners;
  for (int t = 0; t < 3; ++t) {
    churners.emplace_back([&] {
      std::vector<void*> mine;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 64; ++i) mine.push_back(mm.Allocate(256));
        for (void* p : mine) mm.Free(p, 256);
        mine.clear();
        mm.FlushThisThreadCache();
      }
      mm.FlushThisThreadCache();
    });
  }
  for (int i = 0; i < 20000; ++i) {
    MemoryStats s = mm.stats();
    ASSERT_LT(s.bytes_in_use(), uint64_t{1} << 48) << "bytes_in_use underflow";
    ASSERT_LT(s.fragmentation_bytes(), uint64_t{1} << 48);
    ASSERT_GE(s.bytes_allocated, s.bytes_freed);
  }
  stop.store(true);
  for (auto& t : churners) t.join();
  EXPECT_EQ(mm.stats().bytes_in_use(), 0u);
}

class SizeClassTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SizeClassTest, RoundTripAtEverySize) {
  NodeMemoryManager mm(0);
  size_t bytes = GetParam();
  std::vector<void*> blocks;
  for (int i = 0; i < 64; ++i) {
    void* p = mm.Allocate(bytes);
    std::memset(p, 0x5A, bytes);
    blocks.push_back(p);
  }
  for (void* p : blocks) mm.Free(p, bytes);
  EXPECT_EQ(mm.stats().bytes_in_use(), 0u);
  mm.FlushThisThreadCache();
}

INSTANTIATE_TEST_SUITE_P(AllClasses, SizeClassTest,
                         ::testing::Values(1, 15, 16, 17, 31, 64, 100, 1024,
                                           4096, 65536, 65537, 1 << 20));

/// Every size-class boundary +/- 1 byte, 16 B through 64 KiB, plus the
/// first large size past the classes (64 KiB + 1 is in AllClasses already;
/// this sweeps all the interior edges including the rounding at each
/// power of two).
std::vector<size_t> ClassBoundarySizes() {
  std::vector<size_t> sizes;
  for (size_t c = NodeMemoryManager::kMinClassBytes;
       c <= NodeMemoryManager::kMaxClassBytes; c *= 2) {
    sizes.push_back(c - 1);
    sizes.push_back(c);
    sizes.push_back(c + 1);
  }
  return sizes;
}

INSTANTIATE_TEST_SUITE_P(ClassBoundaries, SizeClassTest,
                         ::testing::ValuesIn(ClassBoundarySizes()));

}  // namespace
}  // namespace eris::numa
