// Unit tests for the outgoing buffer set (unicast, multicast references,
// record-granularity partial consumption).
#include <gtest/gtest.h>

#include "routing/outgoing.h"

namespace eris::routing {
namespace {

CommandHeader Header(uint16_t object = 0) {
  CommandHeader h;
  h.type = CommandType::kFence;
  h.object = object;
  return h;
}

std::vector<uint8_t> Payload(size_t bytes, uint8_t fill = 0x7) {
  return std::vector<uint8_t>(bytes, fill);
}

size_t TotalBytes(const std::vector<std::span<const uint8_t>>& pieces) {
  size_t n = 0;
  for (const auto& p : pieces) n += p.size();
  return n;
}

TEST(OutgoingSetTest, EmptyHasNothingPending) {
  OutgoingSet set(4);
  EXPECT_FALSE(set.HasAnyPending());
  for (AeuId t = 0; t < 4; ++t) {
    EXPECT_FALSE(set.HasPending(t));
    EXPECT_EQ(set.PendingBytes(t), 0u);
  }
}

TEST(OutgoingSetTest, UnicastRoundTrip) {
  OutgoingSet set(2);
  set.AppendUnicast(1, Header(5), Payload(16));
  EXPECT_TRUE(set.HasPending(1));
  EXPECT_FALSE(set.HasPending(0));
  EXPECT_EQ(set.PendingBytes(1), sizeof(CommandHeader) + 16);

  std::vector<std::span<const uint8_t>> pieces;
  auto consumed = set.GatherUpTo(1, 1 << 20, &pieces);
  EXPECT_EQ(consumed.total_bytes, sizeof(CommandHeader) + 16);
  ASSERT_EQ(pieces.size(), 1u);
  CommandView v = DecodeCommand(pieces[0].data());
  EXPECT_EQ(v.header.object, 5);
  set.Consume(1, consumed);
  EXPECT_FALSE(set.HasPending(1));
}

TEST(OutgoingSetTest, MulticastStoredOnceReferencedPerTarget) {
  OutgoingSet set(3);
  std::vector<AeuId> targets{0, 2};
  set.AppendMulticast(targets, Header(9), Payload(24));
  EXPECT_TRUE(set.HasPending(0));
  EXPECT_FALSE(set.HasPending(1));
  EXPECT_TRUE(set.HasPending(2));
  // Multicast data counted once in the total buffered bytes.
  EXPECT_EQ(set.TotalBufferedBytes(), sizeof(CommandHeader) + 24);

  std::vector<std::span<const uint8_t>> pieces;
  for (AeuId t : targets) {
    auto consumed = set.GatherUpTo(t, 1 << 20, &pieces);
    EXPECT_EQ(consumed.refs, 1u);
    EXPECT_EQ(TotalBytes(pieces), sizeof(CommandHeader) + 24);
    set.Consume(t, consumed);
  }
  EXPECT_FALSE(set.HasAnyPending());
  EXPECT_EQ(set.TotalBufferedBytes(), 0u);  // multicast buffer released
}

TEST(OutgoingSetTest, PartialConsumptionAtRecordBoundaries) {
  OutgoingSet set(1);
  // Three records of (sizeof(CommandHeader) + 40) bytes each.
  const size_t record = sizeof(CommandHeader) + 40;
  for (int i = 0; i < 3; ++i) set.AppendUnicast(0, Header(i), Payload(40));
  std::vector<std::span<const uint8_t>> pieces;
  // Budget for exactly two records.
  auto first = set.GatherUpTo(0, 2 * record, &pieces);
  EXPECT_EQ(first.total_bytes, 2 * record);
  set.Consume(0, first);
  EXPECT_TRUE(set.HasPending(0));
  auto second = set.GatherUpTo(0, 2 * record, &pieces);
  EXPECT_EQ(second.total_bytes, record);
  CommandView v = DecodeCommand(pieces[0].data());
  EXPECT_EQ(v.header.object, 2);  // the third record survived in order
  set.Consume(0, second);
  EXPECT_FALSE(set.HasPending(0));
}

TEST(OutgoingSetTest, BudgetSmallerThanRecordDeliversRefsOnly) {
  OutgoingSet set(2);
  set.AppendUnicast(0, Header(1), Payload(200));
  std::vector<AeuId> targets{0};
  set.AppendMulticast(targets, Header(2), Payload(8));
  std::vector<std::span<const uint8_t>> pieces;
  // Budget below the unicast record: it does not fit, but gathering must
  // not return zero while something deliverable exists... the unicast
  // blocks the queue head; only the multicast ref fits the budget.
  auto consumed = set.GatherUpTo(0, sizeof(CommandHeader) + 72, &pieces);
  EXPECT_EQ(consumed.unicast_bytes, 0u);
  EXPECT_EQ(consumed.refs, 1u);
  EXPECT_EQ(consumed.total_bytes, sizeof(CommandHeader) + 8);
  set.Consume(0, consumed);
  // The big record still pending; with a big budget it now delivers.
  auto rest = set.GatherUpTo(0, 1 << 20, &pieces);
  EXPECT_EQ(rest.unicast_bytes, sizeof(CommandHeader) + 200);
  set.Consume(0, rest);
  EXPECT_FALSE(set.HasAnyPending());
}

TEST(OutgoingSetTest, InterleavedUnicastAndMulticastPerTargetOrder) {
  OutgoingSet set(2);
  set.AppendUnicast(0, Header(10), Payload(8));
  std::vector<AeuId> both{0, 1};
  set.AppendMulticast(both, Header(11), Payload(8));
  set.AppendUnicast(0, Header(12), Payload(8));
  std::vector<std::span<const uint8_t>> pieces;
  auto consumed = set.GatherUpTo(0, 1 << 20, &pieces);
  set.Consume(0, consumed);
  // Target 1 still holds its multicast reference.
  EXPECT_TRUE(set.HasPending(1));
  auto c1 = set.GatherUpTo(1, 1 << 20, &pieces);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(DecodeCommand(pieces[0].data()).header.object, 11);
  set.Consume(1, c1);
  EXPECT_EQ(set.TotalBufferedBytes(), 0u);
}

}  // namespace
}  // namespace eris::routing
