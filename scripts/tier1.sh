#!/usr/bin/env bash
# Tier-1 verification: build and run the full test suite in both kernel
# configurations so the AVX2 and the scalar-fallback scan paths stay green,
# then run the concurrency suites under ThreadSanitizer.
#
#   build/         default config (ERIS_ENABLE_AVX2=ON, runtime-dispatched)
#   build-scalar/  forced scalar kernels (-DERIS_ENABLE_AVX2=OFF)
#   build-tsan/    -DERIS_SANITIZE=thread, tests labeled `tsan` only
#   build-asan/    -DERIS_SANITIZE=address; full suite with ERIS_TIER1_ASAN=1,
#                  always at least the byte-parsing suites (recovery replay +
#                  storage-fault fuzzers)
#
# Environment knobs:
#   JOBS=N                parallelism (default: nproc)
#   ERIS_HARNESS_SEEDS=N  seed-sweep length for the concurrency harness in
#                         the TSan stage (default here: 6; TSan is ~10x
#                         slower than a native build)
#   ERIS_TIER1_ASAN=1     additionally run the whole suite under
#                         ASan+UBSan (-DERIS_SANITIZE=address)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "=== tier-1: default build (AVX2 kernels, runtime-dispatched) ==="
cmake -B build -S .
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "=== tier-1: lookup fast-path smoke (bench_ext_lookup --smoke) ==="
# Gates the point-lookup fast path: pipelined BatchLookup must not fall
# behind scalar probes, and the engine-level fast path (batched commands +
# coalescing + pipelined descent) must stay >= 1.5x the per-key baseline.
./build/bench/bench_ext_lookup --smoke

echo "=== tier-1: join/pipeline smoke (bench_ext_join --smoke) ==="
# Gates the query layer (DESIGN.md §13): the fused pipeline must stay
# >= 1.5x the operator-at-a-time baseline at selectivity <= 10%, and the
# MPSM join must cross strictly fewer sim link bytes than the shared-hash
# baseline. Both metrics are deterministic simulated-time counters.
./build/bench/bench_ext_join --smoke

echo "=== tier-1: durability smoke (bench_ext_wal --smoke) ==="
# Gates the WAL (DESIGN.md §14): group commit must beat per-record fsync by
# >= 4x in acked write throughput at 8 writers; also emits the commit-window
# latency sweep to BENCH_wal.json.
./build/bench/bench_ext_wal --smoke

echo "=== tier-1: storage-fault smoke (bench_ext_faults --smoke) ==="
# Gates the storage-fault tier (DESIGN.md §15): injected short writes must
# stay transparent (every submit acked or typed), a probability-1.0 fsync
# failure must seal the WAL and degrade the engine, and degraded mode must
# keep non-zero read goodput with zero write acks after the seal. Emits
# BENCH_faults.json.
./build/bench/bench_ext_faults --smoke

echo "=== tier-1: allocation-profile smoke (bench_ext_alloc --smoke) ==="
# Gates the memory-manager tier (DESIGN.md §16): after warm-up, the
# arena-converted hot paths (AEU scratch, MVCC version pool, WAL group
# buffer, exchange streams) must allocate exactly zero times in steady
# state, counted through their named injection points. Emits
# BENCH_alloc.json with the per-path profile and THP coverage.
./build/bench/bench_ext_alloc --smoke

echo "=== tier-1: scalar-fallback build (-DERIS_ENABLE_AVX2=OFF) ==="
cmake -B build-scalar -S . -DERIS_ENABLE_AVX2=OFF \
      -DERIS_BUILD_BENCHMARKS=OFF -DERIS_BUILD_EXAMPLES=OFF
cmake --build build-scalar -j"$JOBS"
ctest --test-dir build-scalar --output-on-failure -j"$JOBS"

echo "=== tier-1: TSan build (-DERIS_SANITIZE=thread), concurrency suites ==="
cmake -B build-tsan -S . -DERIS_SANITIZE=thread \
      -DERIS_BUILD_BENCHMARKS=OFF -DERIS_BUILD_EXAMPLES=OFF
# Only the tsan-labeled suites run here; build just their targets.
cmake --build build-tsan -j"$JOBS" --target \
      common_test memory_manager_test mvcc_test incoming_buffer_test \
      partition_table_test router_test engine_test rebalance_test aeu_test \
      outgoing_test stress_test concurrency_harness_test overload_test \
      query_test join_pipeline_test recovery_test storage_fault_test \
      alloc_test
# tsan.supp is applied through each test's TSAN_OPTIONS ctest property
# (set by tests/CMakeLists.txt when ERIS_SANITIZE=thread).
ERIS_HARNESS_SEEDS="${ERIS_HARNESS_SEEDS:-6}" \
  ctest --test-dir build-tsan -L tsan --output-on-failure -j"$JOBS"

echo "=== tier-1: overload stage (stalled-AEU scenario under TSan) ==="
# Tiny buffers + one wedged AEU: submits must stay bounded (OK or typed
# rejection), the watchdog must report the stall, and the differential
# oracle must still match on the accepted set.
ERIS_HARNESS_SEEDS="${ERIS_HARNESS_SEEDS:-6}" \
  ctest --test-dir build-tsan -L overload --output-on-failure -j"$JOBS"

echo "=== tier-1: recovery stage (WAL/snapshot/crash-matrix under TSan) ==="
# Durability tier (DESIGN.md §14): the WAL/torn-tail/crash-matrix suite plus
# the durable shape of the differential harness (threaded chaos run ->
# restart -> digest vs oracle), both under TSan to cover the group-commit
# drain against the AEU loop threads.
ERIS_HARNESS_SEEDS="${ERIS_HARNESS_SEEDS:-6}" \
  ctest --test-dir build-tsan -L recovery --output-on-failure -j"$JOBS"

echo "=== tier-1: durability stage (storage-fault suite under TSan) ==="
# Storage-fault tier (DESIGN.md §15): injected I/O errors at every
# durability syscall — fsync fail-stop seal, degraded read-only serving,
# scrubber quarantine, frame-parser fuzz — plus the io-chaos shape of the
# differential harness (writers racing injected faults, then restart +
# replay asserting acked <= recovered <= issued).
ERIS_HARNESS_SEEDS="${ERIS_HARNESS_SEEDS:-6}" \
  ctest --test-dir build-tsan -L durability --output-on-failure -j"$JOBS"

if [[ "${ERIS_TIER1_ASAN:-0}" == "1" ]]; then
  echo "=== tier-1: ASan+UBSan build (-DERIS_SANITIZE=address) ==="
  cmake -B build-asan -S . -DERIS_SANITIZE=address \
        -DERIS_BUILD_BENCHMARKS=OFF -DERIS_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j"$JOBS"
  ctest --test-dir build-asan --output-on-failure -j"$JOBS"
else
  echo "=== tier-1: ASan pass over byte-parsing suites ==="
  # Replay and the storage-fault fuzzers parse raw (and hostile) bytes from
  # disk; always run both under ASan+UBSan even when the full sweep is off.
  cmake -B build-asan -S . -DERIS_SANITIZE=address \
        -DERIS_BUILD_BENCHMARKS=OFF -DERIS_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j"$JOBS" --target recovery_test storage_fault_test
  ctest --test-dir build-asan -R '^(recovery_test|storage_fault_test)$' \
        --output-on-failure
fi

echo "=== tier-1: all configurations green ==="
