#!/usr/bin/env bash
# Tier-1 verification: build and run the full test suite in both kernel
# configurations so the AVX2 and the scalar-fallback scan paths stay green.
#
#   build/         default config (ERIS_ENABLE_AVX2=ON, runtime-dispatched)
#   build-scalar/  forced scalar kernels (-DERIS_ENABLE_AVX2=OFF)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "=== tier-1: default build (AVX2 kernels, runtime-dispatched) ==="
cmake -B build -S .
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "=== tier-1: scalar-fallback build (-DERIS_ENABLE_AVX2=OFF) ==="
cmake -B build-scalar -S . -DERIS_ENABLE_AVX2=OFF \
      -DERIS_BUILD_BENCHMARKS=OFF -DERIS_BUILD_EXAMPLES=OFF
cmake --build build-scalar -j"$JOBS"
ctest --test-dir build-scalar --output-on-failure -j"$JOBS"

echo "=== tier-1: both configurations green ==="
