file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_query.dir/bench_ext_query.cc.o"
  "CMakeFiles/bench_ext_query.dir/bench_ext_query.cc.o.d"
  "bench_ext_query"
  "bench_ext_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
