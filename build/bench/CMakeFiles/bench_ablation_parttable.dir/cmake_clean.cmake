file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_parttable.dir/bench_ablation_parttable.cc.o"
  "CMakeFiles/bench_ablation_parttable.dir/bench_ablation_parttable.cc.o.d"
  "bench_ablation_parttable"
  "bench_ablation_parttable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parttable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
