# Empty dependencies file for bench_ablation_parttable.
# This may be replaced when dependencies are built.
