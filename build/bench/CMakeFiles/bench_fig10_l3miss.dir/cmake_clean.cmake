file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_l3miss.dir/bench_fig10_l3miss.cc.o"
  "CMakeFiles/bench_fig10_l3miss.dir/bench_fig10_l3miss.cc.o.d"
  "bench_fig10_l3miss"
  "bench_fig10_l3miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_l3miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
