# Empty dependencies file for bench_fig10_l3miss.
# This may be replaced when dependencies are built.
