file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_partitioning.dir/bench_ablation_partitioning.cc.o"
  "CMakeFiles/bench_ablation_partitioning.dir/bench_ablation_partitioning.cc.o.d"
  "bench_ablation_partitioning"
  "bench_ablation_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
