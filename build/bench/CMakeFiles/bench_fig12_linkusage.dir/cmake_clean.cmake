file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_linkusage.dir/bench_fig12_linkusage.cc.o"
  "CMakeFiles/bench_fig12_linkusage.dir/bench_fig12_linkusage.cc.o.d"
  "bench_fig12_linkusage"
  "bench_fig12_linkusage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_linkusage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
