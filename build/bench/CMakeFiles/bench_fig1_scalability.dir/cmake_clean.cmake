file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_scalability.dir/bench_fig1_scalability.cc.o"
  "CMakeFiles/bench_fig1_scalability.dir/bench_fig1_scalability.cc.o.d"
  "bench_fig1_scalability"
  "bench_fig1_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
