# Empty dependencies file for bench_fig5_routing.
# This may be replaced when dependencies are built.
