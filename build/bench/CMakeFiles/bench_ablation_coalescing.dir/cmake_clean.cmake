file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_coalescing.dir/bench_ablation_coalescing.cc.o"
  "CMakeFiles/bench_ablation_coalescing.dir/bench_ablation_coalescing.cc.o.d"
  "bench_ablation_coalescing"
  "bench_ablation_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
