# Empty dependencies file for bench_fig7_transfer.
# This may be replaced when dependencies are built.
