file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_lowlevel.dir/bench_table2_lowlevel.cc.o"
  "CMakeFiles/bench_table2_lowlevel.dir/bench_table2_lowlevel.cc.o.d"
  "bench_table2_lowlevel"
  "bench_table2_lowlevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_lowlevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
