# Empty compiler generated dependencies file for bench_ext_skew.
# This may be replaced when dependencies are built.
