file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_skew.dir/bench_ext_skew.cc.o"
  "CMakeFiles/bench_ext_skew.dir/bench_ext_skew.cc.o.d"
  "bench_ext_skew"
  "bench_ext_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
