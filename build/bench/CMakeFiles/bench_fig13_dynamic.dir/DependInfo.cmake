
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig13_dynamic.cc" "bench/CMakeFiles/bench_fig13_dynamic.dir/bench_fig13_dynamic.cc.o" "gcc" "bench/CMakeFiles/bench_fig13_dynamic.dir/bench_fig13_dynamic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench_util/CMakeFiles/eris_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/eris_query.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eris_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/eris_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/eris_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eris_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eris_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/numa/CMakeFiles/eris_numa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eris_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
