# Empty dependencies file for bench_fig6_balancing.
# This may be replaced when dependencies are built.
