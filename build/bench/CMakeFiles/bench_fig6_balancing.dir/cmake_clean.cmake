file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_balancing.dir/bench_fig6_balancing.cc.o"
  "CMakeFiles/bench_fig6_balancing.dir/bench_fig6_balancing.cc.o.d"
  "bench_fig6_balancing"
  "bench_fig6_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
