# Empty dependencies file for bench_fig9_scan.
# This may be replaced when dependencies are built.
