file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_scan.dir/bench_fig9_scan.cc.o"
  "CMakeFiles/bench_fig9_scan.dir/bench_fig9_scan.cc.o.d"
  "bench_fig9_scan"
  "bench_fig9_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
