file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cachestates.dir/bench_fig11_cachestates.cc.o"
  "CMakeFiles/bench_fig11_cachestates.dir/bench_fig11_cachestates.cc.o.d"
  "bench_fig11_cachestates"
  "bench_fig11_cachestates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cachestates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
