# Empty dependencies file for bench_fig11_cachestates.
# This may be replaced when dependencies are built.
