# Empty compiler generated dependencies file for eris_baseline.
# This may be replaced when dependencies are built.
