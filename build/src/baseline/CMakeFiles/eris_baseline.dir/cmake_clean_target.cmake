file(REMOVE_RECURSE
  "liberis_baseline.a"
)
