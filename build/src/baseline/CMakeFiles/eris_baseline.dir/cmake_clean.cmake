file(REMOVE_RECURSE
  "CMakeFiles/eris_baseline.dir/shared_column.cc.o"
  "CMakeFiles/eris_baseline.dir/shared_column.cc.o.d"
  "CMakeFiles/eris_baseline.dir/shared_tree.cc.o"
  "CMakeFiles/eris_baseline.dir/shared_tree.cc.o.d"
  "liberis_baseline.a"
  "liberis_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eris_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
