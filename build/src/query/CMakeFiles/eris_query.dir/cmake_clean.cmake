file(REMOVE_RECURSE
  "CMakeFiles/eris_query.dir/query.cc.o"
  "CMakeFiles/eris_query.dir/query.cc.o.d"
  "liberis_query.a"
  "liberis_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eris_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
