file(REMOVE_RECURSE
  "liberis_query.a"
)
