# Empty dependencies file for eris_query.
# This may be replaced when dependencies are built.
