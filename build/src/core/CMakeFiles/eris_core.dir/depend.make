# Empty dependencies file for eris_core.
# This may be replaced when dependencies are built.
