file(REMOVE_RECURSE
  "liberis_core.a"
)
