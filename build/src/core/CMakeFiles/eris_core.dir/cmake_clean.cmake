file(REMOVE_RECURSE
  "CMakeFiles/eris_core.dir/aeu.cc.o"
  "CMakeFiles/eris_core.dir/aeu.cc.o.d"
  "CMakeFiles/eris_core.dir/engine.cc.o"
  "CMakeFiles/eris_core.dir/engine.cc.o.d"
  "CMakeFiles/eris_core.dir/load_balancer.cc.o"
  "CMakeFiles/eris_core.dir/load_balancer.cc.o.d"
  "CMakeFiles/eris_core.dir/monitor.cc.o"
  "CMakeFiles/eris_core.dir/monitor.cc.o.d"
  "liberis_core.a"
  "liberis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eris_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
