file(REMOVE_RECURSE
  "CMakeFiles/eris_bench_util.dir/drivers.cc.o"
  "CMakeFiles/eris_bench_util.dir/drivers.cc.o.d"
  "liberis_bench_util.a"
  "liberis_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eris_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
