# Empty dependencies file for eris_bench_util.
# This may be replaced when dependencies are built.
