file(REMOVE_RECURSE
  "liberis_bench_util.a"
)
