# Empty compiler generated dependencies file for eris_numa.
# This may be replaced when dependencies are built.
