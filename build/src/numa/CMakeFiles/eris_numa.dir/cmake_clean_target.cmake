file(REMOVE_RECURSE
  "liberis_numa.a"
)
