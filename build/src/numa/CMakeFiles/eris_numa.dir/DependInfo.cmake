
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numa/memory_manager.cc" "src/numa/CMakeFiles/eris_numa.dir/memory_manager.cc.o" "gcc" "src/numa/CMakeFiles/eris_numa.dir/memory_manager.cc.o.d"
  "/root/repo/src/numa/pinning.cc" "src/numa/CMakeFiles/eris_numa.dir/pinning.cc.o" "gcc" "src/numa/CMakeFiles/eris_numa.dir/pinning.cc.o.d"
  "/root/repo/src/numa/topology.cc" "src/numa/CMakeFiles/eris_numa.dir/topology.cc.o" "gcc" "src/numa/CMakeFiles/eris_numa.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eris_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
