file(REMOVE_RECURSE
  "CMakeFiles/eris_numa.dir/memory_manager.cc.o"
  "CMakeFiles/eris_numa.dir/memory_manager.cc.o.d"
  "CMakeFiles/eris_numa.dir/pinning.cc.o"
  "CMakeFiles/eris_numa.dir/pinning.cc.o.d"
  "CMakeFiles/eris_numa.dir/topology.cc.o"
  "CMakeFiles/eris_numa.dir/topology.cc.o.d"
  "liberis_numa.a"
  "liberis_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eris_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
