file(REMOVE_RECURSE
  "CMakeFiles/eris_storage.dir/bplus_tree.cc.o"
  "CMakeFiles/eris_storage.dir/bplus_tree.cc.o.d"
  "CMakeFiles/eris_storage.dir/column_store.cc.o"
  "CMakeFiles/eris_storage.dir/column_store.cc.o.d"
  "CMakeFiles/eris_storage.dir/csb_tree.cc.o"
  "CMakeFiles/eris_storage.dir/csb_tree.cc.o.d"
  "CMakeFiles/eris_storage.dir/hash_table.cc.o"
  "CMakeFiles/eris_storage.dir/hash_table.cc.o.d"
  "CMakeFiles/eris_storage.dir/mvcc.cc.o"
  "CMakeFiles/eris_storage.dir/mvcc.cc.o.d"
  "CMakeFiles/eris_storage.dir/partition.cc.o"
  "CMakeFiles/eris_storage.dir/partition.cc.o.d"
  "CMakeFiles/eris_storage.dir/prefix_tree.cc.o"
  "CMakeFiles/eris_storage.dir/prefix_tree.cc.o.d"
  "liberis_storage.a"
  "liberis_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eris_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
