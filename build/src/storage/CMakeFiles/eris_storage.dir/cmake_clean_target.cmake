file(REMOVE_RECURSE
  "liberis_storage.a"
)
