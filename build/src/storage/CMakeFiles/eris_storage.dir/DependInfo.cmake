
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bplus_tree.cc" "src/storage/CMakeFiles/eris_storage.dir/bplus_tree.cc.o" "gcc" "src/storage/CMakeFiles/eris_storage.dir/bplus_tree.cc.o.d"
  "/root/repo/src/storage/column_store.cc" "src/storage/CMakeFiles/eris_storage.dir/column_store.cc.o" "gcc" "src/storage/CMakeFiles/eris_storage.dir/column_store.cc.o.d"
  "/root/repo/src/storage/csb_tree.cc" "src/storage/CMakeFiles/eris_storage.dir/csb_tree.cc.o" "gcc" "src/storage/CMakeFiles/eris_storage.dir/csb_tree.cc.o.d"
  "/root/repo/src/storage/hash_table.cc" "src/storage/CMakeFiles/eris_storage.dir/hash_table.cc.o" "gcc" "src/storage/CMakeFiles/eris_storage.dir/hash_table.cc.o.d"
  "/root/repo/src/storage/mvcc.cc" "src/storage/CMakeFiles/eris_storage.dir/mvcc.cc.o" "gcc" "src/storage/CMakeFiles/eris_storage.dir/mvcc.cc.o.d"
  "/root/repo/src/storage/partition.cc" "src/storage/CMakeFiles/eris_storage.dir/partition.cc.o" "gcc" "src/storage/CMakeFiles/eris_storage.dir/partition.cc.o.d"
  "/root/repo/src/storage/prefix_tree.cc" "src/storage/CMakeFiles/eris_storage.dir/prefix_tree.cc.o" "gcc" "src/storage/CMakeFiles/eris_storage.dir/prefix_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eris_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numa/CMakeFiles/eris_numa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
