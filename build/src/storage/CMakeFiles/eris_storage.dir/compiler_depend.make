# Empty compiler generated dependencies file for eris_storage.
# This may be replaced when dependencies are built.
