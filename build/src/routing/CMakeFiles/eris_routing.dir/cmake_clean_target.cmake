file(REMOVE_RECURSE
  "liberis_routing.a"
)
