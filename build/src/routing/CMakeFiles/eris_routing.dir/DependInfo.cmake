
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/data_command.cc" "src/routing/CMakeFiles/eris_routing.dir/data_command.cc.o" "gcc" "src/routing/CMakeFiles/eris_routing.dir/data_command.cc.o.d"
  "/root/repo/src/routing/incoming_buffer.cc" "src/routing/CMakeFiles/eris_routing.dir/incoming_buffer.cc.o" "gcc" "src/routing/CMakeFiles/eris_routing.dir/incoming_buffer.cc.o.d"
  "/root/repo/src/routing/partition_table.cc" "src/routing/CMakeFiles/eris_routing.dir/partition_table.cc.o" "gcc" "src/routing/CMakeFiles/eris_routing.dir/partition_table.cc.o.d"
  "/root/repo/src/routing/router.cc" "src/routing/CMakeFiles/eris_routing.dir/router.cc.o" "gcc" "src/routing/CMakeFiles/eris_routing.dir/router.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eris_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numa/CMakeFiles/eris_numa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eris_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eris_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
