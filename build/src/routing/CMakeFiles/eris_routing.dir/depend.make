# Empty dependencies file for eris_routing.
# This may be replaced when dependencies are built.
