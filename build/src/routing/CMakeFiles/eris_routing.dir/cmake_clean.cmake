file(REMOVE_RECURSE
  "CMakeFiles/eris_routing.dir/data_command.cc.o"
  "CMakeFiles/eris_routing.dir/data_command.cc.o.d"
  "CMakeFiles/eris_routing.dir/incoming_buffer.cc.o"
  "CMakeFiles/eris_routing.dir/incoming_buffer.cc.o.d"
  "CMakeFiles/eris_routing.dir/partition_table.cc.o"
  "CMakeFiles/eris_routing.dir/partition_table.cc.o.d"
  "CMakeFiles/eris_routing.dir/router.cc.o"
  "CMakeFiles/eris_routing.dir/router.cc.o.d"
  "liberis_routing.a"
  "liberis_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eris_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
