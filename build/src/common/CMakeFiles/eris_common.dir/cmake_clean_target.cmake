file(REMOVE_RECURSE
  "liberis_common.a"
)
