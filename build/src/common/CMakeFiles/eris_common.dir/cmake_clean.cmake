file(REMOVE_RECURSE
  "CMakeFiles/eris_common.dir/histogram.cc.o"
  "CMakeFiles/eris_common.dir/histogram.cc.o.d"
  "CMakeFiles/eris_common.dir/logging.cc.o"
  "CMakeFiles/eris_common.dir/logging.cc.o.d"
  "CMakeFiles/eris_common.dir/status.cc.o"
  "CMakeFiles/eris_common.dir/status.cc.o.d"
  "liberis_common.a"
  "liberis_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eris_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
