# Empty compiler generated dependencies file for eris_common.
# This may be replaced when dependencies are built.
