file(REMOVE_RECURSE
  "liberis_sim.a"
)
