# Empty dependencies file for eris_sim.
# This may be replaced when dependencies are built.
