
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache_sim.cc" "src/sim/CMakeFiles/eris_sim.dir/cache_sim.cc.o" "gcc" "src/sim/CMakeFiles/eris_sim.dir/cache_sim.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "src/sim/CMakeFiles/eris_sim.dir/cost_model.cc.o" "gcc" "src/sim/CMakeFiles/eris_sim.dir/cost_model.cc.o.d"
  "/root/repo/src/sim/index_model.cc" "src/sim/CMakeFiles/eris_sim.dir/index_model.cc.o" "gcc" "src/sim/CMakeFiles/eris_sim.dir/index_model.cc.o.d"
  "/root/repo/src/sim/resource_usage.cc" "src/sim/CMakeFiles/eris_sim.dir/resource_usage.cc.o" "gcc" "src/sim/CMakeFiles/eris_sim.dir/resource_usage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eris_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numa/CMakeFiles/eris_numa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
