file(REMOVE_RECURSE
  "CMakeFiles/eris_sim.dir/cache_sim.cc.o"
  "CMakeFiles/eris_sim.dir/cache_sim.cc.o.d"
  "CMakeFiles/eris_sim.dir/cost_model.cc.o"
  "CMakeFiles/eris_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/eris_sim.dir/index_model.cc.o"
  "CMakeFiles/eris_sim.dir/index_model.cc.o.d"
  "CMakeFiles/eris_sim.dir/resource_usage.cc.o"
  "CMakeFiles/eris_sim.dir/resource_usage.cc.o.d"
  "liberis_sim.a"
  "liberis_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eris_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
