# Empty compiler generated dependencies file for partition_table_test.
# This may be replaced when dependencies are built.
