# Empty dependencies file for mvcc_test.
# This may be replaced when dependencies are built.
