# Empty dependencies file for incoming_buffer_test.
# This may be replaced when dependencies are built.
