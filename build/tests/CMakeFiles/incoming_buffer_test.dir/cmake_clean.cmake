file(REMOVE_RECURSE
  "CMakeFiles/incoming_buffer_test.dir/incoming_buffer_test.cc.o"
  "CMakeFiles/incoming_buffer_test.dir/incoming_buffer_test.cc.o.d"
  "incoming_buffer_test"
  "incoming_buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incoming_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
