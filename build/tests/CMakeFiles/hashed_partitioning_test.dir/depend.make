# Empty dependencies file for hashed_partitioning_test.
# This may be replaced when dependencies are built.
