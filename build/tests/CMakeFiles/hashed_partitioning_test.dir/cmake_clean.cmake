file(REMOVE_RECURSE
  "CMakeFiles/hashed_partitioning_test.dir/hashed_partitioning_test.cc.o"
  "CMakeFiles/hashed_partitioning_test.dir/hashed_partitioning_test.cc.o.d"
  "hashed_partitioning_test"
  "hashed_partitioning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashed_partitioning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
