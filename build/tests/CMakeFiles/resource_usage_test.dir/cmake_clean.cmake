file(REMOVE_RECURSE
  "CMakeFiles/resource_usage_test.dir/resource_usage_test.cc.o"
  "CMakeFiles/resource_usage_test.dir/resource_usage_test.cc.o.d"
  "resource_usage_test"
  "resource_usage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_usage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
