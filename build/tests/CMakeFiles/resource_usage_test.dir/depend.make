# Empty dependencies file for resource_usage_test.
# This may be replaced when dependencies are built.
