file(REMOVE_RECURSE
  "CMakeFiles/index_model_test.dir/index_model_test.cc.o"
  "CMakeFiles/index_model_test.dir/index_model_test.cc.o.d"
  "index_model_test"
  "index_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
