# Empty dependencies file for outgoing_test.
# This may be replaced when dependencies are built.
