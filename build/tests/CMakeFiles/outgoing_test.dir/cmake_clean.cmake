file(REMOVE_RECURSE
  "CMakeFiles/outgoing_test.dir/outgoing_test.cc.o"
  "CMakeFiles/outgoing_test.dir/outgoing_test.cc.o.d"
  "outgoing_test"
  "outgoing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outgoing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
