# Empty compiler generated dependencies file for aeu_test.
# This may be replaced when dependencies are built.
