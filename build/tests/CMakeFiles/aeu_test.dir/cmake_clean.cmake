file(REMOVE_RECURSE
  "CMakeFiles/aeu_test.dir/aeu_test.cc.o"
  "CMakeFiles/aeu_test.dir/aeu_test.cc.o.d"
  "aeu_test"
  "aeu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
