file(REMOVE_RECURSE
  "CMakeFiles/prefix_tree_test.dir/prefix_tree_test.cc.o"
  "CMakeFiles/prefix_tree_test.dir/prefix_tree_test.cc.o.d"
  "prefix_tree_test"
  "prefix_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
