# Empty compiler generated dependencies file for eris_cli.
# This may be replaced when dependencies are built.
