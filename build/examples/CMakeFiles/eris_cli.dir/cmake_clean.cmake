file(REMOVE_RECURSE
  "CMakeFiles/eris_cli.dir/eris_cli.cpp.o"
  "CMakeFiles/eris_cli.dir/eris_cli.cpp.o.d"
  "eris_cli"
  "eris_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eris_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
