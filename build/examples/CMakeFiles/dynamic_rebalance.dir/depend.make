# Empty dependencies file for dynamic_rebalance.
# This may be replaced when dependencies are built.
