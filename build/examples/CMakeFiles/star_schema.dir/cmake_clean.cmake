file(REMOVE_RECURSE
  "CMakeFiles/star_schema.dir/star_schema.cpp.o"
  "CMakeFiles/star_schema.dir/star_schema.cpp.o.d"
  "star_schema"
  "star_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
