// Figure 9: scan bandwidth of ERIS compared to naive memory allocation
// strategies on the SGI machine (61 of 64 nodes in the paper; we use 64).
//
// Three configurations scanning an 8 B-entry column:
//   Single RAM   — all column memory on one node: bound by that node's
//                  memory controller.
//   Interleaved  — memory spread round-robin: bound by the interconnect.
//   ERIS         — node-local partitions: ~aggregate local bandwidth
//                  (paper: 6.6x over interleaved, 93.6% of the machine's
//                  accumulated memory bandwidth).
#include <cstdio>
#include <cstring>

#include "bench_util/drivers.h"
#include "bench_util/report.h"

using namespace eris;
using namespace eris::bench;

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Figure 9",
         "Scan Bandwidth of ERIS Compared to Naive Memory Allocation "
         "Strategies (SGI)",
         "8 B-entry column (64 GiB paper scale), full scans from every "
         "core.");
  MachineSpec machine = SgiMachine();
  ScanConfig cfg(machine);
  cfg.entries = 1ull << 33;
  cfg.scale = quick ? 4096 : 1024;
  cfg.repeats = 2;

  RunResult single = RunSharedScan(cfg, baseline::Placement::kSingleNode);
  RunResult inter = RunSharedScan(cfg, baseline::Placement::kInterleaved);
  RunResult eris = RunErisScan(cfg);

  double aggregate = machine.topology.AggregateLocalBandwidthGbps();
  Table table({"strategy", "scan bandwidth (GB/s)", "vs interleaved",
               "% of aggregate local bw"});
  auto row = [&](const char* name, const RunResult& r) {
    double gbps = r.mc_gbps();
    table.Row({name, Fmt("%.0f", gbps), Fmt("%.1fx", gbps / inter.mc_gbps()),
               Fmt("%.1f%%", 100.0 * gbps / aggregate)});
  };
  row("Single RAM", single);
  row("Interleaved", inter);
  row("ERIS", eris);
  table.Print();
  std::printf(
      "\nPaper: ERIS = 6.6x interleaved, 93.6%% of the accumulated memory "
      "bandwidth;\nSingle RAM is bound by one memory controller "
      "(%.1f GB/s local).\n",
      machine.topology.LocalBandwidthGbps(0));
  return 0;
}
