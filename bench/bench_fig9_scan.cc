// Figure 9: scan bandwidth of ERIS compared to naive memory allocation
// strategies on the SGI machine (61 of 64 nodes in the paper; we use 64).
//
// Three configurations scanning an 8 B-entry column:
//   Single RAM   — all column memory on one node: bound by that node's
//                  memory controller.
//   Interleaved  — memory spread round-robin: bound by the interconnect.
//   ERIS         — node-local partitions: ~aggregate local bandwidth
//                  (paper: 6.6x over interleaved, 93.6% of the machine's
//                  accumulated memory bandwidth).
//
// On top of the modeled figure this bench sweeps scan selectivity (uniform
// and clustered columns — the latter showing zone-map segment skipping) and
// measures the *real* wall-clock throughput of the vectorized scan kernels
// against the scalar tuple-at-a-time reference. Everything is written to
// BENCH_scan.json so the perf trajectory is tracked across PRs.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util/drivers.h"
#include "bench_util/report.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "numa/memory_manager.h"
#include "storage/column_store.h"

using namespace eris;
using namespace eris::bench;

namespace {

struct SweepPoint {
  double selectivity;
  bool clustered;
  uint64_t rows;
  double rows_per_s;
  double gbps;
};

struct KernelPoint {
  double selectivity;
  const char* kernel;  // "vectorized" (dispatch) or "scalar" (reference)
  uint64_t rows;
  double rows_per_s;
  double gbps;
};

storage::Value HiForSelectivity(double sel) {
  if (sel >= 1.0) return ~storage::Value{0};
  return static_cast<storage::Value>(sel * static_cast<double>(1ull << 63));
}

/// Old tuple-at-a-time scalar scan, kept as the kernel baseline.
uint64_t ScalarReferenceScanSum(const storage::ColumnStore& col,
                                storage::Value lo, storage::Value hi) {
  uint64_t sum = 0;
  for (size_t s = 0; s < col.num_segments(); ++s) {
    std::span<const storage::Value> seg = col.Segment(s);
    sum += simd::ScanSumScalar(seg.data(), seg.size(), lo, hi);
  }
  return sum;
}

/// Forces the compiler to materialize `v` (keeps the timed loops honest).
inline void KeepAlive(uint64_t v) { asm volatile("" : : "g"(v) : "memory"); }

void WriteJson(const std::vector<SweepPoint>& sweep,
               const std::vector<KernelPoint>& kernels, double single_gbps,
               double inter_gbps, double eris_gbps, uint64_t entries,
               double scale) {
  std::FILE* f = std::fopen("BENCH_scan.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_scan.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig9_scan\",\n");
  std::fprintf(f, "  \"simd_backend\": \"%s\",\n", simd::BackendName());
  std::fprintf(f,
               "  \"modeled\": {\n    \"machine\": \"SGI\",\n"
               "    \"entries\": %llu,\n    \"scale\": %.0f,\n"
               "    \"single_ram_gbps\": %.2f,\n"
               "    \"interleaved_gbps\": %.2f,\n    \"eris_gbps\": %.2f,\n",
               static_cast<unsigned long long>(entries), scale, single_gbps,
               inter_gbps, eris_gbps);
  std::fprintf(f, "    \"selectivity_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(f,
                 "      {\"selectivity\": %.4f, \"clustered\": %s, "
                 "\"rows\": %llu, \"rows_per_s\": %.3e, \"gbps\": %.2f}%s\n",
                 p.selectivity, p.clustered ? "true" : "false",
                 static_cast<unsigned long long>(p.rows), p.rows_per_s,
                 p.gbps, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n  \"kernel_wallclock\": [\n");
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelPoint& p = kernels[i];
    std::fprintf(f,
                 "    {\"selectivity\": %.4f, \"kernel\": \"%s\", "
                 "\"rows\": %llu, \"rows_per_s\": %.3e, \"gbps\": %.2f}%s\n",
                 p.selectivity, p.kernel,
                 static_cast<unsigned long long>(p.rows), p.rows_per_s,
                 p.gbps, i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote BENCH_scan.json (backend: %s).\n",
              simd::BackendName());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Figure 9",
         "Scan Bandwidth of ERIS Compared to Naive Memory Allocation "
         "Strategies (SGI)",
         "8 B-entry column (64 GiB paper scale), full scans from every "
         "core.");
  MachineSpec machine = SgiMachine();
  ScanConfig cfg(machine);
  cfg.entries = 1ull << 33;
  cfg.scale = quick ? 4096 : 1024;
  cfg.repeats = 2;

  RunResult single = RunSharedScan(cfg, baseline::Placement::kSingleNode);
  RunResult inter = RunSharedScan(cfg, baseline::Placement::kInterleaved);
  RunResult eris = RunErisScan(cfg);

  double aggregate = machine.topology.AggregateLocalBandwidthGbps();
  Table table({"strategy", "scan bandwidth (GB/s)", "vs interleaved",
               "% of aggregate local bw"});
  auto row = [&](const char* name, const RunResult& r) {
    double gbps = r.mc_gbps();
    table.Row({name, Fmt("%.0f", gbps), Fmt("%.1fx", gbps / inter.mc_gbps()),
               Fmt("%.1f%%", 100.0 * gbps / aggregate)});
  };
  row("Single RAM", single);
  row("Interleaved", inter);
  row("ERIS", eris);
  table.Print();
  std::printf(
      "\nPaper: ERIS = 6.6x interleaved, 93.6%% of the accumulated memory "
      "bandwidth;\nSingle RAM is bound by one memory controller "
      "(%.1f GB/s local).\n",
      machine.topology.LocalBandwidthGbps(0));

  // --- Selectivity sweep (modeled engine scans) --------------------------
  const double kSels[] = {1.0, 0.5, 0.1, 0.01};
  std::vector<SweepPoint> sweep;
  Table sel_table({"selectivity", "data", "rows", "modeled GB/s"});
  for (bool clustered : {false, true}) {
    for (double sel : kSels) {
      ScanConfig sc(machine);
      sc.entries = cfg.entries;
      sc.scale = cfg.scale;
      sc.repeats = 2;
      sc.hi = HiForSelectivity(sel);
      sc.clustered = clustered;
      RunResult r = RunErisScan(sc);
      SweepPoint p;
      p.selectivity = sel;
      p.clustered = clustered;
      p.rows = r.ops;
      p.rows_per_s = r.sim_seconds > 0 ? r.ops / r.sim_seconds : 0;
      p.gbps = r.mc_gbps();
      sweep.push_back(p);
      sel_table.Row({Fmt("%.2f", sel), clustered ? "clustered" : "uniform",
                     FmtU(r.ops), Fmt("%.0f", p.gbps)});
    }
  }
  std::printf("\nSelectivity sweep (zone maps skip segments on clustered "
              "data):\n");
  sel_table.Print();

  // --- Real wall-clock kernel throughput ---------------------------------
  const uint64_t n = quick ? 1u << 20 : 1u << 22;
  const uint32_t reps = quick ? 3 : 5;
  numa::NodeMemoryManager mm(0);
  std::vector<KernelPoint> kernels;
  {
    storage::ColumnStore col(&mm);
    Xoshiro256 rng(99);
    std::vector<storage::Value> values(8192);
    for (uint64_t done = 0; done < n; done += values.size()) {
      for (auto& v : values) v = rng.Next() >> 1;
      col.AppendBatch(values);
    }
    Table kt({"selectivity", "kernel", "Mrows/s", "GB/s"});
    for (double sel : kSels) {
      storage::Value hi = HiForSelectivity(sel);
      for (bool vectorized : {true, false}) {
        Stopwatch watch;
        for (uint32_t r = 0; r < reps; ++r) {
          KeepAlive(vectorized ? col.ScanSum(0, hi)
                               : ScalarReferenceScanSum(col, 0, hi));
        }
        double secs = watch.ElapsedSeconds();
        KernelPoint p;
        p.selectivity = sel;
        p.kernel = vectorized ? "vectorized" : "scalar";
        p.rows = n * reps;
        p.rows_per_s = secs > 0 ? p.rows / secs : 0;
        p.gbps = p.rows_per_s * sizeof(storage::Value) / 1e9;
        kernels.push_back(p);
        kt.Row({Fmt("%.2f", sel), p.kernel, Fmt("%.0f", p.rows_per_s / 1e6),
                Fmt("%.1f", p.gbps)});
      }
    }
    std::printf("\nScan-kernel wall-clock throughput on this host "
                "(backend: %s):\n", simd::BackendName());
    kt.Print();
  }

  WriteJson(sweep, kernels, single.mc_gbps(), inter.mc_gbps(), eris.mc_gbps(),
            cfg.entries, cfg.scale);
  return 0;
}
