// Figure 7: NUMA-aware partition transfer — "link" (same node: structural
// splice through the shared per-node memory manager) vs "copy" (across
// nodes: flatten to the exchange format, stream, rebuild).
//
// Reports (a) real host time of the two mechanisms at several partition
// sizes — link must be orders of magnitude cheaper and size-independent —
// and (b) modeled transfer time on the AMD machine (copy pays link
// bandwidth, link does not).
#include <cstdio>
#include <cstring>

#include "bench_util/report.h"
#include "common/stopwatch.h"
#include "numa/memory_manager.h"
#include "sim/cost_model.h"
#include "storage/partition.h"

using namespace eris;
using namespace eris::bench;
using storage::DataObjectDesc;
using storage::Key;
using storage::Partition;

namespace {

DataObjectDesc IndexDesc() {
  return DataObjectDesc::Index(0, "t", {.prefix_bits = 8, .key_bits = 32});
}

double LinkTransferMs(numa::NodeMemoryManager* mm, uint64_t keys) {
  DataObjectDesc desc = IndexDesc();
  Partition donor(desc, mm, {0, storage::kMaxKey});
  Partition receiver(desc, mm, {0, storage::kMaxKey});
  for (Key k = 0; k < keys; ++k) donor.Insert(k, k);
  Stopwatch watch;
  Partition moved = donor.ExtractRange(0, storage::kMaxKey);
  receiver.Absorb(std::move(moved));
  double ms = watch.ElapsedSeconds() * 1e3;
  if (receiver.tuple_count() != keys) std::printf("link transfer lost data!\n");
  return ms;
}

double CopyTransferMs(numa::NodeMemoryManager* src_mm,
                      numa::NodeMemoryManager* dst_mm, uint64_t keys,
                      uint64_t* stream_bytes) {
  DataObjectDesc desc = IndexDesc();
  Partition donor(desc, src_mm, {0, storage::kMaxKey});
  for (Key k = 0; k < keys; ++k) donor.Insert(k, k);
  Stopwatch watch;
  std::vector<uint8_t> stream = donor.Flatten();
  auto rebuilt = Partition::Rebuild(desc, dst_mm, {0, storage::kMaxKey}, 0,
                                    stream);
  double ms = watch.ElapsedSeconds() * 1e3;
  *stream_bytes = stream.size();
  if (!rebuilt.ok() || rebuilt->tuple_count() != keys) {
    std::printf("copy transfer lost data!\n");
  }
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Figure 7", "NUMA-Aware Partition Transfer via Link And Copy",
         "link = structural splice within a node's memory manager;\n"
         "copy = flatten -> stream -> rebuild across nodes.");

  numa::MemoryPool pool(2);
  numa::Topology amd = numa::Topology::AmdMachine();
  sim::CostModel model(amd);

  Table table({"partition keys", "link (host ms)", "copy (host ms)",
               "copy/link", "copy stream", "modeled copy on AMD 1-hop"});
  std::vector<uint64_t> sizes{1u << 14, 1u << 16, 1u << 18};
  if (!quick) sizes.push_back(1u << 20);
  for (uint64_t keys : sizes) {
    double link_ms = LinkTransferMs(&pool.manager(0), keys);
    uint64_t stream_bytes = 0;
    double copy_ms = CopyTransferMs(&pool.manager(0), &pool.manager(1), keys,
                                    &stream_bytes);
    // Modeled copy: stream the exchange format over one HT full link.
    double modeled_ms = model.StreamNs(0, 4, stream_bytes) / 1e6;
    table.Row({HumanCount(keys), Fmt("%.3f", link_ms), Fmt("%.2f", copy_ms),
               Fmt("%.0fx", copy_ms / std::max(link_ms, 1e-6)),
               HumanCount(stream_bytes), Fmt("%.2f ms", modeled_ms)});
  }
  table.Print();
  std::printf(
      "\nlink stays (near) constant in the partition size — it only "
      "splices pointers;\ncopy grows linearly with the moved data and "
      "additionally occupies interconnect links.\n");
  return 0;
}
