// Extension bench (allocation profile): steady-state allocation counts on
// every arena-converted hot path, THP coverage and fragmentation of the
// node-local managers (DESIGN.md §16).
//
// Every hot path that was converted to arena/pooled allocation grows its
// buffers only through a named fault-injection point, so "how often does
// this path allocate" is directly countable with an injection hook:
//
//   kAeuScratchAlloc     — AEU dequeue/batch scratch
//   kMvccVersionAlloc    — MVCC version pool + chain table
//   kWalBufferAlloc      — WAL group-commit buffer
//   kExchangeStreamAlloc — router exchange/transfer streams
//   kEndpointScratchAlloc, kQueryScratchAlloc — earlier conversions,
//                          reported for completeness
//
// One durable kSimulated engine (deterministic stepping, so idle-time MVCC
// GC runs on a fixed cadence): a warm-up phase sizes every buffer, then
// each path runs alone and its per-point allocation deltas are recorded —
// the contract is an exact zero on every converted point. Also reports the
// memory-manager tallies: reserved/in-use/thread-cache/fragmentation
// bytes, central-refill counts and transparent-huge-page coverage.
//
// Results go to BENCH_alloc.json for cross-PR tracking. `--smoke` runs a
// reduced sweep and exits non-zero when any converted path allocates in
// steady state — wired into scripts/tier1.sh as the alloc gate.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util/report.h"
#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "numa/memory_manager.h"
#include "storage/partition.h"

using namespace eris;
using namespace eris::bench;
using core::Engine;
using core::EngineOptions;
using routing::KeyValue;
using storage::Key;
using storage::Value;

namespace {

constexpr uint64_t kDomain = 1u << 16;
constexpr size_t kBatch = 256;

struct PointCounter {
  fi::Point point;
  const char* name;
  bool gated;  ///< steady-state visits must be exactly zero (smoke gate)
};

PointCounter kPoints[] = {
    {fi::Point::kAeuScratchAlloc, "aeu_scratch", true},
    {fi::Point::kMvccVersionAlloc, "mvcc_version", true},
    {fi::Point::kWalBufferAlloc, "wal_buffer", true},
    {fi::Point::kExchangeStreamAlloc, "exchange_stream", true},
    {fi::Point::kEndpointScratchAlloc, "endpoint_scratch", false},
    {fi::Point::kQueryScratchAlloc, "query_scratch", false},
};
constexpr size_t kNumPoints = std::size(kPoints);

#if defined(ERIS_FAULT_INJECTION) && ERIS_FAULT_INJECTION

std::atomic<uint64_t> g_grows[kNumPoints];

void InstallHooks() {
  fi::FaultInjector::Global().Reset();
  for (size_t i = 0; i < kNumPoints; ++i) {
    fi::FaultInjector::Global().SetHook(kPoints[i].point, [i] {
      g_grows[i].fetch_add(1, std::memory_order_relaxed);
    });
  }
}

void Snapshot(uint64_t out[kNumPoints]) {
  for (size_t i = 0; i < kNumPoints; ++i) out[i] = g_grows[i].load();
}

std::string MakeScratchDir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl =
      std::string(base != nullptr ? base : "/tmp") + "/eris-alloc-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* dir = ::mkdtemp(buf.data());
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed: %s\n", std::strerror(errno));
    std::exit(1);
  }
  return dir;
}

/// One measured path: ops executed, wall seconds, and the per-point
/// allocation deltas it caused.
struct PathPoint {
  const char* label = "";
  uint64_t ops = 0;
  double secs = 0;
  uint64_t grows[kNumPoints] = {};
  uint64_t total_gated_grows() const {
    uint64_t n = 0;
    for (size_t i = 0; i < kNumPoints; ++i) {
      if (kPoints[i].gated) n += grows[i];
    }
    return n;
  }
};

struct Workload {
  Engine* engine;
  core::Engine::Session* session;
  storage::ObjectId idx;
  storage::ObjectId col;
  std::vector<Key> keys;
  std::vector<KeyValue> kvs;
  std::vector<Value> appends;
  uint64_t round_no = 0;

  void Lookups() { session->Lookup(idx, keys); }
  void Upserts() {
    ++round_no;
    for (size_t i = 0; i < kvs.size(); ++i) kvs[i] = {keys[i], round_no};
    session->Upsert(idx, kvs);
  }
  void Appends() { session->Append(col, appends); }
  void Scan() { (void)session->ScanStats(col); }
  /// Single-writer MVCC updates directly on each AEU's column partition
  /// (engine data commands do not version tuples; this is the path the
  /// maintenance GC reclaims), then enough idle pumps that every AEU runs
  /// its maintenance pass and refills the version free lists. A fixed
  /// tuple prefix keeps the per-round version churn constant even as
  /// appends keep growing the column.
  void MvccUpdates() {
    constexpr uint64_t kUpdatedPrefix = 64;
    for (uint32_t a = 0; a < engine->num_aeus(); ++a) {
      storage::Partition* part = engine->aeu(a).partition(col);
      if (part == nullptr) continue;
      uint64_t tuples = std::min<uint64_t>(part->tuple_count(),
                                           kUpdatedPrefix);
      for (storage::TupleId tid = 0; tid < tuples; ++tid) {
        part->ColumnUpdate(tid, round_no, engine->oracle().NextWriteTs());
      }
    }
    Pump();
  }
  void Pump() {
    for (int i = 0; i < 300; ++i) engine->PumpAll();
  }
};

PathPoint RunPath(const char* label, Workload& w, uint32_t rounds,
                  void (Workload::*step)(), uint64_t ops_per_round) {
  uint64_t before[kNumPoints];
  Snapshot(before);
  Stopwatch wall;
  for (uint32_t r = 0; r < rounds; ++r) (w.*step)();
  PathPoint p;
  p.label = label;
  p.secs = wall.ElapsedSeconds();
  p.ops = uint64_t{rounds} * ops_per_round;
  uint64_t after[kNumPoints];
  Snapshot(after);
  for (size_t i = 0; i < kNumPoints; ++i) p.grows[i] = after[i] - before[i];
  return p;
}

void WriteJson(const uint64_t warmup[kNumPoints],
               const std::vector<PathPoint>& paths,
               const numa::MemoryStats& mem, uint64_t steady_refills) {
  std::FILE* f = std::fopen("BENCH_alloc.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_alloc.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ext_alloc\",\n");
  std::fprintf(f, "  \"warmup_grows\": {");
  for (size_t i = 0; i < kNumPoints; ++i) {
    std::fprintf(f, "\"%s\": %llu%s", kPoints[i].name,
                 static_cast<unsigned long long>(warmup[i]),
                 i + 1 < kNumPoints ? ", " : "");
  }
  std::fprintf(f, "},\n  \"steady_paths\": [\n");
  for (size_t pi = 0; pi < paths.size(); ++pi) {
    const PathPoint& p = paths[pi];
    std::fprintf(f, "    {\"path\": \"%s\", \"ops\": %llu, \"secs\": %.4f",
                 p.label, static_cast<unsigned long long>(p.ops), p.secs);
    for (size_t i = 0; i < kNumPoints; ++i) {
      std::fprintf(f, ", \"%s\": %llu", kPoints[i].name,
                   static_cast<unsigned long long>(p.grows[i]));
    }
    std::fprintf(f, "}%s\n", pi + 1 < paths.size() ? "," : "");
  }
  double coverage =
      mem.bytes_reserved > 0
          ? static_cast<double>(mem.huge_page_bytes) / mem.bytes_reserved
          : 0.0;
  std::fprintf(f, "  ],\n  \"memory\": {\n");
  std::fprintf(f, "    \"bytes_reserved\": %llu,\n",
               static_cast<unsigned long long>(mem.bytes_reserved));
  std::fprintf(f, "    \"bytes_in_use\": %llu,\n",
               static_cast<unsigned long long>(mem.bytes_in_use()));
  std::fprintf(f, "    \"thread_cache_bytes\": %llu,\n",
               static_cast<unsigned long long>(mem.thread_cache_bytes));
  std::fprintf(f, "    \"fragmentation_bytes\": %llu,\n",
               static_cast<unsigned long long>(mem.fragmentation_bytes()));
  std::fprintf(f, "    \"central_refills\": %llu,\n",
               static_cast<unsigned long long>(mem.central_refills));
  std::fprintf(f, "    \"steady_central_refills\": %llu,\n",
               static_cast<unsigned long long>(steady_refills));
  std::fprintf(f, "    \"huge_page_bytes\": %llu,\n",
               static_cast<unsigned long long>(mem.huge_page_bytes));
  std::fprintf(f, "    \"thp_failures\": %llu,\n",
               static_cast<unsigned long long>(mem.thp_failures));
  std::fprintf(f, "    \"thp_coverage\": %.4f\n  }\n}\n", coverage);
  std::fclose(f);
  std::printf("\nWrote BENCH_alloc.json.\n");
}

int Run(bool smoke, bool quick) {
  const bool small = smoke || quick;
  const uint32_t warmup_rounds = small ? 6 : 12;
  const uint32_t steady_rounds = small ? 8 : 40;

  InstallHooks();

  std::string dir = MakeScratchDir();
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(2, 2);
  opts.mode = core::ExecutionMode::kSimulated;
  opts.durability.enabled = true;
  opts.durability.dir = dir;
  Engine engine(opts);
  storage::ObjectId idx =
      engine.CreateIndex("kv", kDomain, {.prefix_bits = 8, .key_bits = 16});
  storage::ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  auto session = engine.CreateSession();

  Workload w;
  w.engine = &engine;
  w.session = session.get();
  w.idx = idx;
  w.col = col;
  w.keys.resize(kBatch);
  w.kvs.resize(kBatch);
  for (size_t i = 0; i < kBatch; ++i) w.keys[i] = i * 181 % kDomain;
  w.appends.assign(64, 7);

  // Warm-up: every path once per round, sizing all scratch arenas, the WAL
  // group buffer, the exchange streams and the MVCC version pool.
  for (uint32_t r = 0; r < warmup_rounds; ++r) {
    w.Upserts();
    w.Lookups();
    w.Appends();
    w.Scan();
    w.MvccUpdates();
  }
  uint64_t warmup[kNumPoints];
  Snapshot(warmup);
  uint64_t refills_after_warmup = engine.memory().TotalStats().central_refills;

  // Steady state: each path alone; the contract is zero growth on every
  // gated point.
  std::vector<PathPoint> paths;
  paths.push_back(RunPath("lookup", w, steady_rounds, &Workload::Lookups,
                          kBatch));
  paths.push_back(RunPath("upsert_wal", w, steady_rounds, &Workload::Upserts,
                          kBatch));
  paths.push_back(RunPath("append_wal", w, steady_rounds, &Workload::Appends,
                          64));
  paths.push_back(RunPath("scan", w, steady_rounds, &Workload::Scan, 1));
  paths.push_back(RunPath("mvcc_update", w, steady_rounds,
                          &Workload::MvccUpdates, 256));

  numa::MemoryStats mem = engine.memory().TotalStats();
  uint64_t steady_refills = mem.central_refills - refills_after_warmup;
  engine.Stop();
  fi::FaultInjector::Global().Reset();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  std::vector<std::string> headers{"path", "ops", "secs"};
  for (const PointCounter& pc : kPoints) headers.push_back(pc.name);
  Table table(headers);
  for (const PathPoint& p : paths) {
    std::vector<std::string> row{p.label, FmtU(p.ops), Fmt("%.3f", p.secs)};
    for (size_t i = 0; i < kNumPoints; ++i) row.push_back(FmtU(p.grows[i]));
    table.Row(row);
  }
  table.Print();
  double coverage =
      mem.bytes_reserved > 0
          ? static_cast<double>(mem.huge_page_bytes) / mem.bytes_reserved
          : 0.0;
  std::printf(
      "\n  memory: %.1f MiB reserved, %.1f MiB in use, %.1f MiB cached, "
      "%.1f MiB fragmentation\n  THP coverage %.1f%% (%llu fallback chunks); "
      "%llu central refills in steady state\n",
      mem.bytes_reserved / 1048576.0, mem.bytes_in_use() / 1048576.0,
      mem.thread_cache_bytes / 1048576.0,
      mem.fragmentation_bytes() / 1048576.0, coverage * 100.0,
      static_cast<unsigned long long>(mem.thp_failures),
      static_cast<unsigned long long>(steady_refills));

  WriteJson(warmup, paths, mem, steady_refills);

  uint64_t warmup_total = 0;
  for (size_t i = 0; i < kNumPoints; ++i) warmup_total += warmup[i];
  uint64_t steady_gated = 0;
  for (const PathPoint& p : paths) steady_gated += p.total_gated_grows();

  if (smoke) {
    bool ok = warmup_total > 0 && steady_gated == 0;
    if (ok) {
      std::printf("\nSMOKE OK: zero steady-state allocations on every "
                  "converted path (%llu warm-up grows)\n",
                  static_cast<unsigned long long>(warmup_total));
    } else {
      std::printf("\nSMOKE FAIL: warmup_grows=%llu steady_gated_grows=%llu "
                  "(see table above for the offending path)\n",
                  static_cast<unsigned long long>(warmup_total),
                  static_cast<unsigned long long>(steady_gated));
    }
    return ok ? 0 : 1;
  }
  return 0;
}

#endif  // ERIS_FAULT_INJECTION

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  Banner("Ext alloc",
         "Steady-State Allocation Profile + THP Coverage",
         "durable 2x2 kSimulated engine; per-path allocation counts via the\n"
         "named injection points; the gate is an exact zero on every\n"
         "arena-converted path after warm-up.");
#if defined(ERIS_FAULT_INJECTION) && ERIS_FAULT_INJECTION
  return Run(smoke, quick);
#else
  (void)quick;
  (void)smoke;
  std::printf("\nfault-injection points compiled out "
              "(-DERIS_FAULT_INJECTION=OFF); nothing to count.\n");
  return 0;
#endif
}
