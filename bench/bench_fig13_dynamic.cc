// Figure 13: load balancer experiments on the AMD machine — lookup
// throughput over time under a changing workload, comparing no balancing,
// One-Shot, MA-1 and MA-8.
//
// Workload (down-scaled from the paper): lookups over the full key range
// for the first period; then only half of all keys (the middle range) are
// accessed; afterwards the hot window shifts left by a small step several
// times. Paper shapes: One-Shot drops deepest but recovers fastest, MA-1
// barely drops but recovers slowly, MA-8 is the best compromise; without a
// balancer the throughput stays degraded after the first change.
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_util/drivers.h"
#include "bench_util/report.h"
#include "common/rng.h"

using namespace eris;
using namespace eris::bench;
using core::BalanceAlgorithm;
using core::Engine;
using core::LoadBalancerConfig;
using routing::KeyValue;
using storage::Key;

namespace {

struct Phase {
  Key lo;
  Key hi;
  int slices;
};

std::vector<double> RunSeries(const LoadBalancerConfig& cfg, uint64_t n,
                              uint64_t ops_per_slice, bool quick) {
  MachineSpec machine = AmdMachine();
  core::EngineOptions opts = SimEngineOptions(machine, 512);
  Engine engine(opts);
  storage::ObjectId idx = engine.CreateIndex(
      "kv", n, {.prefix_bits = 8,
                .key_bits = KeyBitsFor(n, 8)});
  engine.Start();
  std::vector<std::unique_ptr<Engine::Session>> sessions;
  for (numa::NodeId node = 0; node < machine.topology.num_nodes(); ++node)
    sessions.push_back(engine.CreateSessionOnNode(node));
  {
    std::vector<KeyValue> kvs;
    size_t rr = 0;
    for (Key k = 0; k < n;) {
      kvs.clear();
      for (int i = 0; i < 8192 && k < n; ++i, ++k) kvs.push_back({k, k});
      sessions[rr++ % sessions.size()]->Insert(idx, kvs);
    }
  }

  // Paper schedule (scaled): full range, then [n/4, 3n/4), then 4 shifts
  // left by n/64.
  std::vector<Phase> phases;
  int per_phase = quick ? 3 : 5;
  phases.push_back({0, n, per_phase});
  Key lo = n / 4;
  Key hi = 3 * n / 4;
  phases.push_back({lo, hi, 2 * per_phase});
  for (int shift = 0; shift < 4; ++shift) {
    lo -= n / 64;
    hi -= n / 64;
    phases.push_back({lo, hi, 2 * per_phase});
  }

  std::vector<double> series;
  Xoshiro256 rng(5);
  size_t rr = 0;
  for (const Phase& phase : phases) {
    for (int slice = 0; slice < phase.slices; ++slice) {
      engine.resource_usage().Reset();
      std::vector<Key> keys(2048);
      // The balancer loop is periodic and much faster than the workload
      // changes (paper Section 3.3): several balancing cycles run within
      // one reported time slice, interleaved with the lookups. Transfer
      // traffic and residual imbalance both shape the slice's throughput.
      const int kCyclesPerSlice = 4;
      uint64_t chunk = ops_per_slice / kCyclesPerSlice;
      for (int cycle = 0; cycle < kCyclesPerSlice; ++cycle) {
        for (uint64_t done = 0; done < chunk; done += keys.size()) {
          for (auto& k : keys)
            k = phase.lo + rng.NextBounded(phase.hi - phase.lo);
          sessions[rr++ % sessions.size()]->Lookup(idx, keys);
        }
        engine.RebalanceObject(idx, cfg);
      }
      double secs = engine.resource_usage().CriticalTimeNs() / 1e9;
      series.push_back(chunk * kCyclesPerSlice / secs / 1e6);
    }
  }
  engine.Stop();
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Figure 13", "Load Balancer Experiments on AMD Machine",
         "Lookup throughput (Mops/s) per time slice; workload: full range, "
         "then half range,\nthen 4 small shifts left. 512M paper keys "
         "(scaled 1/512).");
  const uint64_t n = static_cast<uint64_t>((512ull << 20) / 512);
  const uint64_t ops = quick ? 1u << 15 : 1u << 17;

  LoadBalancerConfig none;
  none.algorithm = BalanceAlgorithm::kNone;
  LoadBalancerConfig oneshot;
  oneshot.algorithm = BalanceAlgorithm::kOneShot;
  oneshot.trigger_cv = 0.15;
  oneshot.min_total_accesses = 1;
  LoadBalancerConfig ma1 = oneshot;
  ma1.algorithm = BalanceAlgorithm::kMovingAverage;
  ma1.ma_window = 1;
  LoadBalancerConfig ma8 = ma1;
  ma8.ma_window = 8;

  auto s_none = RunSeries(none, n, ops, quick);
  auto s_oneshot = RunSeries(oneshot, n, ops, quick);
  auto s_ma1 = RunSeries(ma1, n, ops, quick);
  auto s_ma8 = RunSeries(ma8, n, ops, quick);

  Table table({"slice", "no balancer", "one-shot", "MA-1", "MA-8"});
  for (size_t i = 0; i < s_none.size(); ++i) {
    table.Row({FmtU(i), Fmt("%.0f", s_none[i]), Fmt("%.0f", s_oneshot[i]),
               Fmt("%.0f", s_ma1[i]), Fmt("%.0f", s_ma8[i])});
  }
  table.Print();

  auto avg_tail = [](const std::vector<double>& s) {
    double sum = 0;
    size_t from = s.size() / 2;
    for (size_t i = from; i < s.size(); ++i) sum += s[i];
    return sum / (s.size() - from);
  };
  std::printf(
      "\nsteady-state (2nd half) averages: none %.0f, one-shot %.0f, MA-1 "
      "%.0f, MA-8 %.0f Mops/s.\nPaper shapes: one-shot drops deepest / "
      "recovers fastest, MA-1 gentlest / slowest,\nMA-8 the compromise; no "
      "balancer stays degraded after the workload narrows.\n",
      avg_tail(s_none), avg_tail(s_oneshot), avg_tail(s_ma1),
      avg_tail(s_ma8));
  return 0;
}
