// Figure 11: MESIF cache-line state at every L3 hit on the Intel machine
// (1 B-key index): the shared index hits mostly Shared/Forward lines
// (paper: 79.3%) — the same data replicated in multiple caches — while
// ERIS hits almost only Modified/Exclusive lines of its private partitions
// (paper: 97%).
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_util/machines.h"
#include "bench_util/report.h"
#include "common/rng.h"
#include "numa/memory_manager.h"
#include "sim/cache_sim.h"
#include "storage/prefix_tree.h"

using namespace eris;
using namespace eris::bench;
using sim::LineState;
using storage::Key;
using storage::PrefixTree;

namespace {

constexpr double kScale = 512.0;

sim::CacheSimConfig IntelL3() {
  sim::CacheSimConfig cfg;
  cfg.capacity_bytes =
      static_cast<uint64_t>(24.0 * 1024 * 1024 / kScale);  // 24 MiB scaled
  cfg.associativity = 16;
  return cfg;
}

void PrintStates(const char* name, const sim::CacheSim& cache) {
  sim::CacheStats total = cache.TotalStats();
  uint64_t hits = total.hits();
  auto pct = [&](LineState s) {
    return 100.0 * total.hits_by_state[static_cast<int>(s)] /
           std::max<uint64_t>(1, hits);
  };
  std::printf("  %-12s  M %5.1f%%  E %5.1f%%  S %5.1f%%  F %5.1f%%   "
              "(M+E %.1f%%, S+F %.1f%%; hit rate %.1f%%)\n",
              name, pct(LineState::kModified), pct(LineState::kExclusive),
              pct(LineState::kShared), pct(LineState::kForward),
              pct(LineState::kModified) + pct(LineState::kExclusive),
              pct(LineState::kShared) + pct(LineState::kForward),
              100.0 * hits / std::max<uint64_t>(1, total.accesses()));
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Figure 11",
         "L3 Cache Line States on Intel — Percentage of all Hits (1B keys)",
         "Lookups with a 5% upsert mix, traced through the MESIF cache "
         "simulator (4 nodes).");
  const uint32_t nodes = 4;
  const uint64_t n = static_cast<uint64_t>((1ull << 30) / kScale);
  const uint32_t key_bits = static_cast<uint32_t>(Log2Ceil(n));
  const uint64_t probes = quick ? 30000 : 150000;
  numa::MemoryPool pool(nodes);
  Xoshiro256 rng(11);

  // ERIS: private partitions, node-local probes.
  sim::CacheSim eris_cache(nodes, IntelL3());
  {
    std::vector<std::unique_ptr<PrefixTree>> parts;
    for (uint32_t p = 0; p < nodes; ++p) {
      parts.push_back(std::make_unique<PrefixTree>(
          &pool.manager(p), storage::PrefixTreeConfig{8, key_bits}));
    }
    for (Key k = 0; k < n; ++k) {
      parts[static_cast<size_t>(static_cast<__uint128_t>(k) * nodes / n)]
          ->Insert(k, k);
    }
    std::vector<const void*> trace;
    for (uint32_t node = 0; node < nodes; ++node) {
      Key lo = static_cast<Key>(static_cast<__uint128_t>(node) * n / nodes);
      Key hi =
          static_cast<Key>(static_cast<__uint128_t>(node + 1) * n / nodes);
      for (uint64_t i = 0; i < probes; ++i) {
        Key k = lo + rng.NextBounded(hi - lo);
        trace.clear();
        parts[node]->LookupTraced(k, &trace);
        bool write = rng.NextBounded(20) == 0;  // 5% upserts
        for (size_t d = 0; d < trace.size(); ++d) {
          uint64_t addr = reinterpret_cast<uint64_t>(trace[d]);
          // Only the leaf line is written by an upsert.
          eris_cache.Access(node, addr, write && d + 1 == trace.size());
        }
      }
    }
  }

  // Shared index: one tree, probed from every node.
  sim::CacheSim shared_cache(nodes, IntelL3());
  {
    PrefixTree tree(&pool.manager(0), storage::PrefixTreeConfig{8, key_bits});
    for (Key k = 0; k < n; ++k) tree.Insert(k, k);
    std::vector<const void*> trace;
    for (uint64_t i = 0; i < probes * nodes; ++i) {
      uint32_t node = static_cast<uint32_t>(i % nodes);
      trace.clear();
      tree.LookupTraced(rng.NextBounded(n), &trace);
      bool write = rng.NextBounded(20) == 0;
      for (size_t d = 0; d < trace.size(); ++d) {
        uint64_t addr = reinterpret_cast<uint64_t>(trace[d]);
        shared_cache.Access(node, addr, write && d + 1 == trace.size());
      }
    }
  }

  PrintStates("ERIS", eris_cache);
  PrintStates("shared", shared_cache);
  std::printf(
      "\nPaper: shared index 79.3%% of hits on Shared/Forward lines; ERIS "
      "97%% on\nModified/Exclusive lines. Replicated lines shrink every "
      "cache; private partitions do not.\n");
  return 0;
}
