// Extension bench (storage faults): goodput under injected I/O errors and
// degraded-mode serving (DESIGN.md §15).
//
// Three phases on one durable kThreads 1x2 engine, 4 client threads:
//
//   clean       — blocking upserts with the injector disarmed: the goodput
//     and ack-latency baseline.
//   short-write — every durability write() has a 20% chance of persisting
//     only part of its chunk: the resume loop must keep the WAL byte-exact,
//     so goodput dips but every submit still acks.
//   degraded    — a probability-1.0 fsync failure seals AEU 0's WAL
//     fail-stop; the engine flips to degraded read-only. Writes must fail
//     fast with a typed status (zero acks after the seal) while lookups on
//     the healthy AEU keep serving — that read goodput is the number the
//     paper's availability story rests on.
//
// Results go to BENCH_faults.json for cross-PR tracking. `--smoke` runs a
// reduced sweep and exits non-zero when degraded-mode read goodput is zero
// or any write acks after the seal — wired into scripts/tier1.sh.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/report.h"
#include "common/fault_injection.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/engine.h"

using namespace eris;
using namespace eris::bench;
using core::Engine;
using core::EngineOptions;
using routing::KeyValue;
using storage::Key;

namespace {

constexpr uint64_t kDomain = 1u << 16;
constexpr uint32_t kClients = 4;
constexpr uint32_t kBatch = 32;

std::string MakeScratchDir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl =
      std::string(base != nullptr ? base : "/tmp") + "/eris-faults-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* dir = ::mkdtemp(buf.data());
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed: %s\n", std::strerror(errno));
    std::exit(1);
  }
  return dir;
}

struct WritePoint {
  const char* label = "";
  uint64_t issued_units = 0;
  uint64_t acked_units = 0;
  uint64_t typed_failures = 0;   ///< non-OK submits (all must be typed)
  uint64_t untyped_failures = 0; ///< non-OK without a Status code we expect
  double units_per_s = 0;
  double p99_ack_ms = 0;
  double secs = 0;
};

/// One write phase: `kClients` threads issuing blocking batched upserts of
/// random keys over the whole domain; an ack means the covering WAL group
/// commit hit the disk.
WritePoint RunWritePhase(Engine& engine, storage::ObjectId idx,
                         const char* label, uint32_t batches_per_client) {
  Histogram latency(0, 100'000, 2000);  // ack latency in microseconds
  std::mutex merge_lock;
  std::atomic<uint64_t> acked{0};
  std::atomic<uint64_t> typed{0};
  std::atomic<uint64_t> untyped{0};
  Stopwatch wall;
  std::vector<std::thread> workers;
  for (uint32_t c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      auto session = engine.CreateSession();
      session->set_op_timeout_ns(5'000'000'000);  // 5 s: bounded, generous
      Xoshiro256 rng(Mix64(c * 6271 + 31));
      Histogram local(0, 100'000, 2000);
      std::vector<KeyValue> kvs(kBatch);
      for (uint32_t b = 0; b < batches_per_client; ++b) {
        for (uint32_t i = 0; i < kBatch; ++i) {
          kvs[i] = {rng.NextBounded(kDomain), b + 1};
        }
        Stopwatch watch;
        Status st = session->SubmitUpsert(idx, kvs);
        local.Add(static_cast<double>(watch.ElapsedNanos()) / 1000.0);
        if (st.ok()) {
          acked.fetch_add(kBatch, std::memory_order_relaxed);
        } else if (st.IsUnavailable() || st.IsDeadlineExceeded() ||
                   st.IsResourceExhausted() || st.IsIoError() ||
                   st.IsInternal()) {
          typed.fetch_add(1, std::memory_order_relaxed);
        } else {
          untyped.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> guard(merge_lock);
      latency.Merge(local);
    });
  }
  for (std::thread& t : workers) t.join();
  double secs = wall.ElapsedSeconds();

  WritePoint p;
  p.label = label;
  p.issued_units = uint64_t{kClients} * batches_per_client * kBatch;
  p.acked_units = acked.load();
  p.typed_failures = typed.load();
  p.untyped_failures = untyped.load();
  p.units_per_s = secs > 0 ? p.acked_units / secs : 0;
  p.p99_ack_ms = latency.Quantile(0.99) / 1000.0;
  p.secs = secs;
  return p;
}

struct DegradedPoint {
  bool degraded = false;
  uint64_t writes_attempted = 0;
  uint64_t writes_acked = 0;   ///< must be zero after the seal
  uint64_t write_rejections_typed = 0;
  uint64_t reads_issued = 0;
  uint64_t read_hits = 0;
  double reads_per_s = 0;      ///< degraded-mode read goodput
  double p99_read_ms = 0;
  double secs = 0;
};

/// Seals AEU 0's WAL via a probability-1.0 fsync failure, then measures
/// degraded-mode serving: writes must fail fast (typed, zero acks), reads
/// on the healthy AEU's key range must keep flowing.
DegradedPoint RunDegradedPhase(Engine& engine, storage::ObjectId idx,
                               uint32_t read_batches_per_client) {
  DegradedPoint p;
  auto seal_session = engine.CreateSession();
  seal_session->set_op_timeout_ns(2'000'000'000);

  // Healthy-side working set: keys in AEU 1's half of the domain, acked
  // before any fault is armed.
  std::vector<Key> hot;
  {
    std::vector<KeyValue> kvs;
    for (Key k = kDomain / 2; k < kDomain / 2 + 1024; ++k) {
      kvs.push_back({k, k});
      hot.push_back(k);
    }
    Status st = seal_session->SubmitUpsert(idx, kvs);
    if (!st.ok()) {
      std::fprintf(stderr, "seeding healthy AEU failed: %s\n",
                   st.ToString().c_str());
      return p;
    }
  }

  // Fail every fsync, then write into AEU 0's range until its group commit
  // hits the failure and seals the log (the submit comes back typed).
  fi::FaultInjector::Global().SetFailProbability(fi::Point::kIoFsyncError,
                                                 1.0);
  for (int attempt = 0; attempt < 50 && !engine.degraded(); ++attempt) {
    std::vector<KeyValue> kvs{{static_cast<Key>(attempt), 1}};
    (void)seal_session->SubmitUpsert(idx, kvs);
  }
  fi::FaultInjector::Global().SetFailProbability(fi::Point::kIoFsyncError,
                                                 0.0);
  p.degraded = engine.degraded();
  if (!p.degraded) return p;

  // Write side: every submit must be rejected before admission — the disk
  // is "healthy" again, but fsyncgate forbids trusting the sealed log.
  for (uint32_t i = 0; i < 200; ++i) {
    std::vector<KeyValue> kvs{{static_cast<Key>(i % (kDomain / 2)), 7}};
    Status st = seal_session->SubmitUpsert(idx, kvs);
    ++p.writes_attempted;
    if (st.ok()) {
      ++p.writes_acked;
    } else if (st.IsUnavailable()) {
      ++p.write_rejections_typed;
    }
  }

  // Read side: concurrent lookups against the healthy AEU's working set.
  Histogram latency(0, 100'000, 2000);
  std::mutex merge_lock;
  std::atomic<uint64_t> issued{0};
  std::atomic<uint64_t> hits{0};
  Stopwatch wall;
  std::vector<std::thread> readers;
  for (uint32_t c = 0; c < kClients; ++c) {
    readers.emplace_back([&, c] {
      auto session = engine.CreateSession();
      session->set_op_timeout_ns(5'000'000'000);
      Xoshiro256 rng(Mix64(c * 9109 + 7));
      Histogram local(0, 100'000, 2000);
      std::vector<Key> keys(kBatch);
      for (uint32_t b = 0; b < read_batches_per_client; ++b) {
        for (uint32_t i = 0; i < kBatch; ++i) {
          keys[i] = hot[rng.NextBounded(hot.size())];
        }
        Engine::Session::SubmitOutcome out;
        Stopwatch watch;
        Status st = session->SubmitLookup(idx, keys, &out);
        local.Add(static_cast<double>(watch.ElapsedNanos()) / 1000.0);
        issued.fetch_add(kBatch, std::memory_order_relaxed);
        if (st.ok()) hits.fetch_add(out.hits, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> guard(merge_lock);
      latency.Merge(local);
    });
  }
  for (std::thread& t : readers) t.join();
  p.secs = wall.ElapsedSeconds();
  p.reads_issued = issued.load();
  p.read_hits = hits.load();
  p.reads_per_s = p.secs > 0 ? p.read_hits / p.secs : 0;
  p.p99_read_ms = latency.Quantile(0.99) / 1000.0;
  return p;
}

void WriteJson(const std::vector<WritePoint>& writes,
               const DegradedPoint& deg) {
  std::FILE* f = std::fopen("BENCH_faults.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_faults.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ext_faults\",\n");
  std::fprintf(f, "  \"clients\": %u,\n", kClients);
  std::fprintf(f, "  \"write_phases\": [\n");
  for (size_t i = 0; i < writes.size(); ++i) {
    const WritePoint& p = writes[i];
    std::fprintf(f,
                 "    {\"phase\": \"%s\", \"issued_units\": %llu, "
                 "\"acked_units\": %llu, \"units_per_s\": %.3e, "
                 "\"p99_ack_ms\": %.3f, \"typed_failures\": %llu, "
                 "\"untyped_failures\": %llu}%s\n",
                 p.label, static_cast<unsigned long long>(p.issued_units),
                 static_cast<unsigned long long>(p.acked_units),
                 p.units_per_s, p.p99_ack_ms,
                 static_cast<unsigned long long>(p.typed_failures),
                 static_cast<unsigned long long>(p.untyped_failures),
                 i + 1 < writes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"degraded\": {\n");
  std::fprintf(f, "    \"degraded\": %s,\n", deg.degraded ? "true" : "false");
  std::fprintf(f, "    \"writes_attempted\": %llu,\n",
               static_cast<unsigned long long>(deg.writes_attempted));
  std::fprintf(f, "    \"writes_acked\": %llu,\n",
               static_cast<unsigned long long>(deg.writes_acked));
  std::fprintf(f, "    \"write_rejections_typed\": %llu,\n",
               static_cast<unsigned long long>(deg.write_rejections_typed));
  std::fprintf(f, "    \"reads_issued\": %llu,\n",
               static_cast<unsigned long long>(deg.reads_issued));
  std::fprintf(f, "    \"read_hits\": %llu,\n",
               static_cast<unsigned long long>(deg.read_hits));
  std::fprintf(f, "    \"reads_per_s\": %.3e,\n", deg.reads_per_s);
  std::fprintf(f, "    \"p99_read_ms\": %.3f\n  }\n}\n", deg.p99_read_ms);
  std::fclose(f);
  std::printf("\nWrote BENCH_faults.json.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  Banner("Ext faults",
         "Goodput Under Injected Storage Faults + Degraded-Mode Serving",
         "durable 1x2 kThreads engine, 4 clients; injected short writes,\n"
         "then a probability-1.0 fsync failure sealing AEU 0's WAL.");
  const bool small = quick || smoke;
  const uint32_t write_batches = small ? 60 : 300;
  const uint32_t read_batches = small ? 200 : 1000;

  std::string dir = MakeScratchDir();
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = core::ExecutionMode::kThreads;
  opts.pin_threads = false;
  opts.durability.enabled = true;
  opts.durability.dir = dir;
  Engine engine(opts);
  storage::ObjectId idx =
      engine.CreateIndex("kv", kDomain, {.prefix_bits = 8, .key_bits = 16});
  fi::FaultInjector::Global().Reset();
  engine.Start();

  std::vector<WritePoint> writes;
  Table wtable({"phase", "issued", "acked", "units/s", "p99 ack ms",
                "typed fails", "untyped fails", "secs"});
  writes.push_back(RunWritePhase(engine, idx, "clean", write_batches));
  fi::FaultInjector::Global().SetFailProbability(fi::Point::kIoShortWrite,
                                                 0.2);
  writes.push_back(RunWritePhase(engine, idx, "short-write", write_batches));
  fi::FaultInjector::Global().SetFailProbability(fi::Point::kIoShortWrite,
                                                 0.0);
  for (const WritePoint& p : writes) {
    wtable.Row({p.label, FmtU(p.issued_units), FmtU(p.acked_units),
                Fmt("%.3e", p.units_per_s), Fmt("%.3f", p.p99_ack_ms),
                FmtU(p.typed_failures), FmtU(p.untyped_failures),
                Fmt("%.2f", p.secs)});
  }
  wtable.Print();

  DegradedPoint deg = RunDegradedPhase(engine, idx, read_batches);
  std::printf("\n  degraded: %s — writes %llu attempted / %llu acked / "
              "%llu typed rejections; reads %.3e hits/s (p99 %.3f ms)\n",
              deg.degraded ? "yes" : "NO",
              static_cast<unsigned long long>(deg.writes_attempted),
              static_cast<unsigned long long>(deg.writes_acked),
              static_cast<unsigned long long>(deg.write_rejections_typed),
              deg.reads_per_s, deg.p99_read_ms);
  engine.Stop();
  fi::FaultInjector::Global().Reset();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  WriteJson(writes, deg);

  if (smoke) {
    bool short_writes_transparent =
        writes[1].acked_units + writes[1].typed_failures * kBatch ==
        writes[1].issued_units && writes[1].untyped_failures == 0;
    bool ok = deg.degraded && deg.writes_acked == 0 && deg.reads_per_s > 0 &&
              deg.write_rejections_typed == deg.writes_attempted &&
              short_writes_transparent;
    if (ok) {
      std::printf("\nSMOKE OK: degraded read goodput %.3e hits/s, "
                  "0 acks after seal\n",
                  deg.reads_per_s);
    } else {
      std::printf("\nSMOKE FAIL: degraded=%d writes_acked=%llu "
                  "reads_per_s=%.3e typed=%llu/%llu\n",
                  deg.degraded ? 1 : 0,
                  static_cast<unsigned long long>(deg.writes_acked),
                  deg.reads_per_s,
                  static_cast<unsigned long long>(deg.write_rejections_typed),
                  static_cast<unsigned long long>(deg.writes_attempted));
    }
    return ok ? 0 : 1;
  }
  return 0;
}
