// Figure 10: L3 cache miss ratio on the AMD machine, ERIS vs the shared
// index, as a function of the index size.
//
// Reproduced with the MESIF cache simulator: every node's L3 is modeled;
// lookups traverse *real* prefix trees (per-AEU partitions for ERIS, one
// global tree for the shared index) and each visited tree node's address
// is fed to the simulated cache of the accessing node.
//
// Paper shape: the shared index has the higher miss ratio for small/medium
// indexes — the same upper levels sit in every cache (Shared/Forward
// lines), wasting capacity — while ERIS keeps private partitions resident.
// For very large indexes both become memory bound and converge.
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_util/machines.h"
#include "bench_util/report.h"
#include "common/rng.h"
#include "numa/memory_manager.h"
#include "sim/cache_sim.h"
#include "storage/prefix_tree.h"

using namespace eris;
using namespace eris::bench;
using storage::Key;
using storage::PrefixTree;

namespace {

constexpr double kScale = 512.0;

sim::CacheSimConfig AmdL3(double scale) {
  sim::CacheSimConfig cfg;
  cfg.capacity_bytes =
      static_cast<uint64_t>(12.0 * 1024 * 1024 / scale);  // 12 MiB scaled
  cfg.associativity = 16;
  cfg.line_bytes = 64;
  return cfg;
}

struct MissRatios {
  double eris;
  double shared;
};

MissRatios Run(uint64_t paper_keys, uint64_t probes_per_node) {
  const uint32_t nodes = 8;
  const uint64_t n =
      std::max<uint64_t>(8192, static_cast<uint64_t>(paper_keys / kScale));
  const uint32_t key_bits = static_cast<uint32_t>(std::max(8, Log2Ceil(n)));
  numa::MemoryPool pool(nodes);
  Xoshiro256 rng(paper_keys);

  // ERIS: one partition (subrange) per node; lookups stay node-local.
  sim::CacheSim eris_cache(nodes, AmdL3(kScale));
  {
    std::vector<std::unique_ptr<PrefixTree>> parts;
    for (uint32_t p = 0; p < nodes; ++p) {
      parts.push_back(std::make_unique<PrefixTree>(
          &pool.manager(p),
          storage::PrefixTreeConfig{8, key_bits}));
    }
    for (Key k = 0; k < n; ++k) {
      parts[static_cast<size_t>(k * nodes / n)]->Insert(k, k);
    }
    std::vector<const void*> trace;
    for (uint32_t node = 0; node < nodes; ++node) {
      Key lo = static_cast<Key>(static_cast<__uint128_t>(node) * n / nodes);
      Key hi = static_cast<Key>(static_cast<__uint128_t>(node + 1) * n / nodes);
      for (uint64_t i = 0; i < probes_per_node; ++i) {
        Key k = lo + rng.NextBounded(hi - lo);
        trace.clear();
        parts[node]->LookupTraced(k, &trace);
        for (const void* addr : trace) {
          eris_cache.Read(node, reinterpret_cast<uint64_t>(addr));
        }
      }
    }
  }

  // Shared index: one global tree, every node probes the whole domain.
  sim::CacheSim shared_cache(nodes, AmdL3(kScale));
  {
    PrefixTree tree(&pool.manager(0), storage::PrefixTreeConfig{8, key_bits});
    for (Key k = 0; k < n; ++k) tree.Insert(k, k);
    std::vector<const void*> trace;
    for (uint32_t node = 0; node < nodes; ++node) {
      for (uint64_t i = 0; i < probes_per_node; ++i) {
        trace.clear();
        tree.LookupTraced(rng.NextBounded(n), &trace);
        for (const void* addr : trace) {
          shared_cache.Read(node, reinterpret_cast<uint64_t>(addr));
        }
      }
    }
  }
  return {eris_cache.TotalStats().miss_ratio(),
          shared_cache.TotalStats().miss_ratio()};
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Figure 10", "L3 Cache Miss Ratio on AMD (lookups)",
         "MESIF cache simulator over real prefix-tree traversals; sizes & "
         "L3 scaled 1/512.");
  const uint64_t probes = quick ? 20000 : 100000;
  Table table({"index keys", "ERIS miss ratio", "shared miss ratio",
               "shared/ERIS"});
  const uint64_t kM = 1ull << 20;
  for (uint64_t keys : {16 * kM, 64 * kM, 256 * kM, 1024 * kM, 2048 * kM}) {
    MissRatios r = Run(keys, probes);
    table.Row({HumanCount(keys), Fmt("%.1f%%", 100 * r.eris),
               Fmt("%.1f%%", 100 * r.shared),
               Fmt("%.2fx", r.shared / std::max(r.eris, 1e-9))});
  }
  table.Print();
  std::printf(
      "\nPaper shape: the shared index misses more for small/medium sizes "
      "(replicated hot\nlines shrink the effective cache); both converge "
      "once the trees dwarf the caches.\n");
  return 0;
}
