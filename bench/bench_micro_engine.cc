// Google-benchmark microbenchmarks of the full engine in thread mode —
// real host time for the public Session operations. Complements
// bench_micro_structures (raw data structures) and the modeled figure
// benches.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "core/engine.h"

namespace {

using namespace eris;
using core::Engine;
using core::EngineOptions;
using routing::KeyValue;
using storage::Key;
using storage::Value;

/// Shared engine fixture: built once per benchmark binary run.
struct EngineFixture {
  EngineFixture() {
    EngineOptions opts;
    opts.topology = numa::Topology::DetectHost();
    engine = std::make_unique<Engine>(opts);
    idx = engine->CreateIndex("kv", 1u << 22,
                              {.prefix_bits = 8, .key_bits = 22});
    col = engine->CreateColumn("facts");
    engine->Start();
    auto session = engine->CreateSession();
    std::vector<KeyValue> kvs;
    Xoshiro256 rng(1);
    for (Key k = 0; k < (1u << 20);) {
      kvs.clear();
      for (int i = 0; i < 16384 && k < (1u << 20); ++i, ++k) {
        kvs.push_back({k * 4, k});
      }
      session->Insert(idx, kvs);
    }
    std::vector<Value> values(1u << 20);
    for (auto& v : values) v = rng.NextBounded(10000);
    session->Append(col, values);
  }
  ~EngineFixture() { engine->Stop(); }

  static EngineFixture& Get() {
    static EngineFixture fixture;
    return fixture;
  }

  std::unique_ptr<Engine> engine;
  storage::ObjectId idx;
  storage::ObjectId col;
};

void BM_EngineLookupBatch(benchmark::State& state) {
  EngineFixture& f = EngineFixture::Get();
  auto session = f.engine->CreateSession();
  Xoshiro256 rng(2);
  const size_t batch = static_cast<size_t>(state.range(0));
  std::vector<Key> keys(batch);
  for (auto _ : state) {
    for (auto& k : keys) k = rng.NextBounded(1u << 20) * 4;
    benchmark::DoNotOptimize(session->Lookup(f.idx, keys));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_EngineLookupBatch)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EngineUpsertBatch(benchmark::State& state) {
  EngineFixture& f = EngineFixture::Get();
  auto session = f.engine->CreateSession();
  Xoshiro256 rng(3);
  const size_t batch = static_cast<size_t>(state.range(0));
  std::vector<KeyValue> kvs(batch);
  for (auto _ : state) {
    for (auto& kv : kvs) {
      kv.key = rng.NextBounded(1u << 20) * 4;
      kv.value = rng.Next();
    }
    benchmark::DoNotOptimize(session->Upsert(f.idx, kvs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_EngineUpsertBatch)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EngineColumnScan(benchmark::State& state) {
  EngineFixture& f = EngineFixture::Get();
  auto session = f.engine->CreateSession();
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->ScanColumn(f.col, 100, 4999));
  }
  state.SetBytesProcessed(state.iterations() * (1ll << 20) * 8);
}
BENCHMARK(BM_EngineColumnScan);

void BM_EngineIndexRangeScan(benchmark::State& state) {
  EngineFixture& f = EngineFixture::Get();
  auto session = f.engine->CreateSession();
  Xoshiro256 rng(4);
  const Key width = 1u << 14;
  for (auto _ : state) {
    Key lo = rng.NextBounded((1u << 22) - width);
    benchmark::DoNotOptimize(session->ScanIndexRange(f.idx, lo, lo + width));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineIndexRangeScan);

void BM_EngineFence(benchmark::State& state) {
  EngineFixture& f = EngineFixture::Get();
  auto session = f.engine->CreateSession();
  for (auto _ : state) {
    session->Fence();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineFence);

}  // namespace

BENCHMARK_MAIN();
