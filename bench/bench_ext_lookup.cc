// Extension bench (lookup fast path): keys/sec through the point-lookup
// path at every layer it crosses, pipelined fast path versus per-key
// baseline.
//
//   storage   PrefixTree/HashTable BatchLookup (prefetch-pipelined, 16
//             probes in flight) vs a scalar Lookup loop, swept over the
//             probe batch size.
//   routing   RangePartitionTable::BatchOwnerOf (level-synchronous CSB+
//             descent with prefetch) vs per-key OwnerOf.
//   endpoint  SendLookupBatch scratch state carved from the node-local
//             arena vs the malloc fallback (steady state both are
//             allocation-free; the row documents the warm-up difference).
//   engine    end-to-end Session lookups, all fast-path knobs on vs all
//             off, swept over command batch size and AEU count.
//
// Results go to BENCH_lookup.json for cross-PR tracking. `--smoke` runs a
// reduced sweep and exits non-zero when the pipelined storage path or the
// engine fast path regresses below the scalar baseline (0.95 tolerance for
// shared-machine noise) — wired into scripts/tier1.sh.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util/report.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "routing/partition_table.h"
#include "storage/hash_table.h"
#include "storage/prefix_tree.h"

using namespace eris;
using namespace eris::bench;
using core::Engine;
using core::EngineOptions;
using routing::AeuId;
using routing::KeyValue;
using storage::Key;
using storage::Value;

namespace {

/// Best-of-3 wall seconds of `fn` (shields the smoke gate from scheduler
/// noise on shared machines).
template <typename Fn>
double BestSeconds(Fn&& fn) {
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

std::vector<Key> RandomKeys(uint64_t count, uint64_t domain, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Key> keys(count);
  for (Key& k : keys) k = rng.NextBounded(domain);
  return keys;
}

// --- storage layer ---------------------------------------------------------

struct StoragePoint {
  const char* structure;
  uint64_t batch = 0;
  double scalar_mkeys = 0;
  double pipelined_mkeys = 0;
  double speedup() const {
    return scalar_mkeys > 0 ? pipelined_mkeys / scalar_mkeys : 0;
  }
};

template <typename Index>
StoragePoint RunStorage(const char* name, const Index& index,
                        std::span<const Key> probes, uint64_t batch) {
  std::vector<Value> values(batch);
  std::vector<uint8_t> found(batch);
  uint64_t sink = 0;
  double scalar_secs = BestSeconds([&] {
    for (size_t base = 0; base < probes.size(); base += batch) {
      size_t m = std::min<size_t>(batch, probes.size() - base);
      for (size_t i = 0; i < m; ++i) {
        auto v = index.Lookup(probes[base + i]);
        sink += v.has_value() ? *v : 0;
      }
    }
  });
  double piped_secs = BestSeconds([&] {
    for (size_t base = 0; base < probes.size(); base += batch) {
      size_t m = std::min<size_t>(batch, probes.size() - base);
      sink += index.BatchLookup(probes.subspan(base, m), values.data(),
                                reinterpret_cast<bool*>(found.data()));
    }
  });
  if (sink == uint64_t(-1)) std::printf("impossible\n");  // defeat DCE
  StoragePoint p;
  p.structure = name;
  p.batch = batch;
  p.scalar_mkeys = probes.size() / scalar_secs / 1e6;
  p.pipelined_mkeys = probes.size() / piped_secs / 1e6;
  return p;
}

// --- routing layer ---------------------------------------------------------

struct RoutingPoint {
  uint32_t aeus = 0;
  double scalar_mkeys = 0;
  double batch_mkeys = 0;
  double speedup() const {
    return scalar_mkeys > 0 ? batch_mkeys / scalar_mkeys : 0;
  }
};

RoutingPoint RunRouting(uint32_t aeus, std::span<const Key> probes) {
  std::vector<AeuId> ids(aeus);
  for (uint32_t a = 0; a < aeus; ++a) ids[a] = a;
  routing::RangePartitionTable table(
      routing::RangePartitionTable::UniformEntries(ids, uint64_t{1} << 22));
  std::vector<AeuId> owners(probes.size());
  double scalar_secs = BestSeconds([&] {
    table.OwnersOf(probes, owners.data());
  });
  double batch_secs = BestSeconds([&] {
    table.BatchOwnerOf(probes, owners.data());
  });
  RoutingPoint p;
  p.aeus = aeus;
  p.scalar_mkeys = probes.size() / scalar_secs / 1e6;
  p.batch_mkeys = probes.size() / batch_secs / 1e6;
  return p;
}

// --- endpoint scratch: arena vs malloc fallback ----------------------------

struct EndpointPoint {
  double arena_msends = 0;
  double heap_msends = 0;
};

double RunEndpointSends(numa::NodeMemoryManager* memory, uint64_t rounds) {
  // 16 AEUs on one node: every send fans its keys out over 16 targets.
  std::vector<numa::NodeId> nodes(16, 0);
  routing::RouterConfig cfg;
  cfg.incoming_capacity_bytes = 1u << 22;  // drained once per round below
  routing::Router router(nodes, cfg);
  router.RegisterRangeObject(storage::DataObjectDesc::Index(0, "kv"),
                             uint64_t{1} << 22);
  routing::Endpoint ep(&router, routing::kInvalidAeu, 0, memory);
  std::vector<Key> keys = RandomKeys(256, uint64_t{1} << 22, 11);
  // Warm-up: grows the scratch state to its steady-state capacity.
  ep.SendLookupBatch(0, keys, nullptr);
  ep.FlushAll();
  for (AeuId a = 0; a < 16; ++a) router.mailbox(a).Drain([](auto) {});
  Stopwatch watch;
  for (uint64_t r = 0; r < rounds; ++r) {
    ep.SendLookupBatch(0, keys, nullptr);
    ep.FlushAll();
    for (AeuId a = 0; a < 16; ++a) router.mailbox(a).Drain([](auto) {});
  }
  double secs = watch.ElapsedSeconds();
  return rounds / secs / 1e6;
}

// --- engine level -----------------------------------------------------------

struct EnginePoint {
  uint32_t aeus = 0;
  uint64_t batch = 0;
  double per_key_mkeys = 0;   ///< batch-1 commands, all fast-path knobs off
  double baseline_mkeys = 0;  ///< same batch size, all fast-path knobs off
  double fastpath_mkeys = 0;  ///< same batch size, all fast-path knobs on
  /// The headline number: the pipelined+arena batch path against the
  /// key-at-a-time baseline (one key per routed command, scalar descents).
  double speedup_vs_per_key() const {
    return per_key_mkeys > 0 ? fastpath_mkeys / per_key_mkeys : 0;
  }
  /// Ablation at matched batch size: isolates the pipelined descent +
  /// coalescing + batch routing from the batching itself.
  double speedup_same_batch() const {
    return baseline_mkeys > 0 ? fastpath_mkeys / baseline_mkeys : 0;
  }
};

double RunEngineLookups(uint32_t aeus, uint64_t batch, bool fast,
                        uint64_t total_keys, uint64_t domain) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, aeus);
  opts.mode = core::ExecutionMode::kSimulated;
  opts.router.batch_owner_lookup = fast;
  opts.lookup.coalesce_commands = fast;
  opts.lookup.pipelined_descent = fast;
  Engine engine(opts);
  uint32_t key_bits = 0;
  while ((uint64_t{1} << key_bits) < domain) ++key_bits;
  storage::ObjectId idx = engine.CreateIndex(
      "kv", domain, {.prefix_bits = 8, .key_bits = key_bits});
  engine.Start();
  auto session = engine.CreateSession();
  {
    std::vector<KeyValue> kvs;
    for (Key k = 0; k < domain;) {
      kvs.clear();
      for (int i = 0; i < 8192 && k < domain; ++i, ++k) kvs.push_back({k, k});
      session->Insert(idx, kvs);
    }
  }
  std::vector<Key> probes = RandomKeys(total_keys, domain, 23);
  // Submit a window of commands before waiting so several lookup commands
  // land in one dequeue group (the coalescing opportunity).
  constexpr size_t kWindow = 64;
  Stopwatch watch;
  size_t pos = 0;
  while (pos < probes.size()) {
    session->sink().Reset();
    uint64_t expected = 0;
    for (size_t w = 0; w < kWindow && pos < probes.size(); ++w) {
      size_t m = std::min<size_t>(batch, probes.size() - pos);
      expected += session->endpoint().SendLookupBatch(
          idx, std::span<const Key>(probes).subspan(pos, m),
          &session->sink());
      pos += m;
    }
    session->Wait(expected);
  }
  double secs = watch.ElapsedSeconds();
  engine.Stop();
  return probes.size() / secs / 1e6;
}

// --- report -----------------------------------------------------------------

void WriteJson(const std::vector<StoragePoint>& storage,
               const std::vector<RoutingPoint>& routing,
               const EndpointPoint& endpoint,
               const std::vector<EnginePoint>& engine) {
  std::FILE* f = std::fopen("BENCH_lookup.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_lookup.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ext_lookup\",\n");
  std::fprintf(f, "  \"storage\": [\n");
  for (size_t i = 0; i < storage.size(); ++i) {
    const StoragePoint& p = storage[i];
    std::fprintf(f,
                 "    {\"structure\": \"%s\", \"batch\": %llu, "
                 "\"scalar_mkeys\": %.2f, \"pipelined_mkeys\": %.2f, "
                 "\"speedup\": %.2f}%s\n",
                 p.structure, static_cast<unsigned long long>(p.batch),
                 p.scalar_mkeys, p.pipelined_mkeys, p.speedup(),
                 i + 1 < storage.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"routing\": [\n");
  for (size_t i = 0; i < routing.size(); ++i) {
    const RoutingPoint& p = routing[i];
    std::fprintf(f,
                 "    {\"aeus\": %u, \"scalar_mkeys\": %.2f, "
                 "\"batch_mkeys\": %.2f, \"speedup\": %.2f}%s\n",
                 p.aeus, p.scalar_mkeys, p.batch_mkeys, p.speedup(),
                 i + 1 < routing.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"endpoint\": {\"arena_msends\": %.3f, "
               "\"heap_msends\": %.3f},\n",
               endpoint.arena_msends, endpoint.heap_msends);
  std::fprintf(f, "  \"engine\": [\n");
  for (size_t i = 0; i < engine.size(); ++i) {
    const EnginePoint& p = engine[i];
    std::fprintf(f,
                 "    {\"aeus\": %u, \"batch\": %llu, "
                 "\"per_key_mkeys\": %.2f, \"baseline_mkeys\": %.2f, "
                 "\"fastpath_mkeys\": %.2f, \"speedup_vs_per_key\": %.2f, "
                 "\"speedup_same_batch\": %.2f}%s\n",
                 p.aeus, static_cast<unsigned long long>(p.batch),
                 p.per_key_mkeys, p.baseline_mkeys, p.fastpath_mkeys,
                 p.speedup_vs_per_key(), p.speedup_same_batch(),
                 i + 1 < engine.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote BENCH_lookup.json.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  Banner("Ext lookup",
         "Point-Lookup Fast Path: Pipelined vs Per-Key at Every Layer",
         "storage = BatchLookup vs scalar probes; routing = BatchOwnerOf vs "
         "OwnerOf;\nendpoint = arena vs malloc scratch; engine = all "
         "fast-path knobs on vs off.");
  const bool small = quick || smoke;

  // Storage: 8M-key prefix tree / hash table. Large enough that random
  // probes walk distinct interior nodes (pipelining has latency to hide),
  // small enough that one pass stays repeatable on shared machines.
  const uint64_t domain = small ? (1u << 20) : (uint64_t{1} << 23);
  const uint64_t probes_n = small ? (1u << 18) : (1u << 21);
  numa::NodeMemoryManager memory(0);
  storage::PrefixTree tree(&memory, {.prefix_bits = 8,
                                     .key_bits = small ? 20u : 23u});
  storage::HashTable hash(&memory, /*salt=*/77, /*initial_capacity=*/1024);
  for (Key k = 0; k < domain; ++k) {
    tree.Insert(k, k);
    hash.Insert(k, k);
  }
  std::vector<Key> probes = RandomKeys(probes_n, domain, 5);

  std::vector<StoragePoint> storage_points;
  Table st({"structure", "batch", "scalar Mkeys/s", "pipelined Mkeys/s",
            "speedup"});
  std::vector<uint64_t> batches =
      small ? std::vector<uint64_t>{64, 256}
            : std::vector<uint64_t>{8, 16, 64, 256, 1024, 4096};
  for (uint64_t b : batches) {
    StoragePoint p = RunStorage("prefix_tree", tree, probes, b);
    storage_points.push_back(p);
    st.Row({p.structure, FmtU(p.batch), Fmt("%.1f", p.scalar_mkeys),
            Fmt("%.1f", p.pipelined_mkeys), Fmt("%.2fx", p.speedup())});
  }
  for (uint64_t b : batches) {
    StoragePoint p = RunStorage("hash", hash, probes, b);
    storage_points.push_back(p);
    st.Row({p.structure, FmtU(p.batch), Fmt("%.1f", p.scalar_mkeys),
            Fmt("%.1f", p.pipelined_mkeys), Fmt("%.2fx", p.speedup())});
  }
  st.Print();

  // Routing: owner resolution against the CSB+-tree partition table.
  std::vector<RoutingPoint> routing_points;
  Table rt({"AEUs", "scalar Mkeys/s", "batch Mkeys/s", "speedup"});
  for (uint32_t aeus : small ? std::vector<uint32_t>{64}
                             : std::vector<uint32_t>{16, 64, 256, 1024}) {
    RoutingPoint p = RunRouting(aeus, probes);
    routing_points.push_back(p);
    rt.Row({FmtU(p.aeus), Fmt("%.1f", p.scalar_mkeys),
            Fmt("%.1f", p.batch_mkeys), Fmt("%.2fx", p.speedup())});
  }
  rt.Print();

  // Endpoint scratch: node-local arena vs malloc fallback.
  EndpointPoint ep_point;
  {
    const uint64_t rounds = small ? 2000 : 20000;
    ep_point.arena_msends = RunEndpointSends(&memory, rounds);
    ep_point.heap_msends = RunEndpointSends(nullptr, rounds);
    Table et({"scratch", "Msends/s"});
    et.Row({"arena", Fmt("%.3f", ep_point.arena_msends)});
    et.Row({"malloc", Fmt("%.3f", ep_point.heap_msends)});
    et.Print();
  }

  // Engine: end-to-end sessions. The headline comparison is the full fast
  // path (batched commands + batch routing + coalesced pipelined probes +
  // arena scratch) against the key-at-a-time baseline: one key per routed
  // command with every fast-path knob off. The same-batch column isolates
  // the knobs from the batching itself.
  std::vector<EnginePoint> engine_points;
  Table et({"AEUs", "batch", "per-key Mkeys/s", "same-batch off Mkeys/s",
            "fast Mkeys/s", "vs per-key", "vs same-batch"});
  const uint64_t engine_domain = small ? (1u << 20) : (1u << 22);
  const uint64_t engine_keys = small ? (1u << 16) : (1u << 19);
  std::vector<uint32_t> aeu_sweep =
      small ? std::vector<uint32_t>{4} : std::vector<uint32_t>{2, 4, 8};
  std::vector<uint64_t> engine_batches =
      small ? std::vector<uint64_t>{64} : std::vector<uint64_t>{8, 64, 256};
  for (uint32_t aeus : aeu_sweep) {
    // Per-key baseline: fewer keys bound the runtime (it is a rate).
    double per_key = RunEngineLookups(aeus, 1, false, engine_keys / 8,
                                      engine_domain);
    for (uint64_t b : engine_batches) {
      EnginePoint p;
      p.aeus = aeus;
      p.batch = b;
      p.per_key_mkeys = per_key;
      p.baseline_mkeys =
          RunEngineLookups(aeus, b, false, engine_keys, engine_domain);
      p.fastpath_mkeys =
          RunEngineLookups(aeus, b, true, engine_keys, engine_domain);
      engine_points.push_back(p);
      et.Row({FmtU(p.aeus), FmtU(p.batch), Fmt("%.2f", p.per_key_mkeys),
              Fmt("%.2f", p.baseline_mkeys), Fmt("%.2f", p.fastpath_mkeys),
              Fmt("%.2fx", p.speedup_vs_per_key()),
              Fmt("%.2fx", p.speedup_same_batch())});
    }
  }
  et.Print();

  WriteJson(storage_points, routing_points, ep_point, engine_points);

  if (smoke) {
    // Regression gate (tier-1): the pipelined path must not fall behind the
    // scalar baseline. 0.95 tolerance absorbs shared-machine noise; the
    // real margin is expected to be well above 1x.
    bool ok = true;
    for (const StoragePoint& p : storage_points) {
      if (p.batch >= 64 && p.speedup() < 0.95) {
        std::fprintf(stderr, "SMOKE FAIL: %s batch %llu speedup %.2f < 0.95\n",
                     p.structure, static_cast<unsigned long long>(p.batch),
                     p.speedup());
        ok = false;
      }
    }
    for (const EnginePoint& p : engine_points) {
      // The headline acceptance bar: the full fast path at batch >= 64 must
      // beat the key-at-a-time baseline by 1.5x.
      if (p.batch >= 64 && p.speedup_vs_per_key() < 1.5) {
        std::fprintf(stderr,
                     "SMOKE FAIL: engine aeus=%u batch=%llu fast %.2f vs "
                     "per-key %.2f = %.2fx < 1.5x\n",
                     p.aeus, static_cast<unsigned long long>(p.batch),
                     p.fastpath_mkeys, p.per_key_mkeys,
                     p.speedup_vs_per_key());
        ok = false;
      }
    }
    std::printf(smoke && ok
                    ? "\nSMOKE OK: pipelined >= scalar at batch >= 64 and "
                      "engine fast path >= 1.5x per-key.\n"
                    : "\nSMOKE: regression detected.\n");
    return ok ? 0 : 1;
  }
  return 0;
}
