// Figure 12: interconnect link and memory controller activity on the AMD
// machine, ERIS vs the shared setup, for the lookup (1 B keys) and scan
// (8 GB column) workloads.
//
// Paper numbers: shared lookup moves 83.8 GB/s over the links vs
// 17.8 GB/s for ERIS (mostly command routing), while ERIS still pushes
// more through the memory controllers (73.0 vs 41.6 GB/s) because local
// requests complete faster. For scans: 75.6 vs 1.2 GB/s link traffic and
// 33.8 vs 122.9 GB/s controller throughput (93.6% of the machine's
// aggregate bandwidth).
#include <cstdio>
#include <cstring>

#include "bench_util/drivers.h"
#include "bench_util/report.h"

using namespace eris;
using namespace eris::bench;

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Figure 12",
         "Link and Memory Controller Activity on AMD (Scan: 8GB, Lookup: "
         "1B Keys)",
         "GB/s averaged over the workload (modeled counters).");
  MachineSpec machine = AmdMachine();

  PointOpsConfig lookup_cfg(machine);
  lookup_cfg.num_keys = 1ull << 30;
  lookup_cfg.ops = quick ? 1u << 16 : 1u << 18;
  lookup_cfg.scale = 512;
  RunResult eris_lookup = RunErisPointOps(lookup_cfg);
  RunResult shared_lookup = RunSharedPointOps(lookup_cfg);

  ScanConfig scan_cfg(machine);
  scan_cfg.entries = 1ull << 30;  // 8 GB of 8 B entries
  scan_cfg.scale = quick ? 1024 : 256;
  scan_cfg.repeats = 2;
  RunResult eris_scan = RunErisScan(scan_cfg);
  RunResult shared_scan =
      RunSharedScan(scan_cfg, baseline::Placement::kInterleaved);

  Table table({"workload", "engine", "link GB/s", "mem-ctrl GB/s",
               "throughput"});
  table.Row({"lookup 1B", "ERIS", Fmt("%.1f", eris_lookup.link_gbps()),
             Fmt("%.1f", eris_lookup.mc_gbps()),
             Fmt("%.0f Mops/s", eris_lookup.mops())});
  table.Row({"lookup 1B", "shared", Fmt("%.1f", shared_lookup.link_gbps()),
             Fmt("%.1f", shared_lookup.mc_gbps()),
             Fmt("%.0f Mops/s", shared_lookup.mops())});
  table.Row({"scan 8GB", "ERIS", Fmt("%.1f", eris_scan.link_gbps()),
             Fmt("%.1f", eris_scan.mc_gbps()),
             Fmt("%.1f GB/s", eris_scan.mc_gbps())});
  table.Row({"scan 8GB", "shared", Fmt("%.1f", shared_scan.link_gbps()),
             Fmt("%.1f", shared_scan.mc_gbps()),
             Fmt("%.1f GB/s", shared_scan.mc_gbps())});
  table.Print();
  double aggregate = machine.topology.AggregateLocalBandwidthGbps();
  std::printf(
      "\nERIS scan reaches %.1f%% of the machine's aggregate local memory "
      "bandwidth (%.1f GB/s);\nits link traffic is command routing only. "
      "The shared setup inverts the picture:\nheavy link traffic, starved "
      "memory controllers.\n",
      100.0 * eris_scan.mc_gbps() / aggregate, aggregate);
  return 0;
}
