// Extension bench (paper future work, Section 6): query processing on top
// of the ERIS storage primitives, across the paper's machines.
//
// Runs the star-schema pipeline — filtered aggregation, NUMA-local
// materialization, index-nested-loop join — in simulated time on each
// machine, reporting *per-operator* sim stream costs (modeled critical
// time, busiest-worker compute, link bytes, memory-controller bytes)
// rather than one end-to-end total, so each operator's bottleneck is
// attributable. The join is the routing layer's stress case: every AEU
// scans its probe partition and generates lookup data commands for the
// index owners (the "lookup operations during a join" of Section 3.2).
//
// A second stage attributes the fused-pipeline win (DESIGN.md §13) per
// operator: the same filter→filter→aggregate plan runs fused and
// operator-at-a-time over a column group, and the AEU loop counters break
// the streamed bytes down into driving-filter / refining-filter /
// aggregate shares — where the fusion saves its bytes, not just that it
// does.
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_util/drivers.h"
#include "bench_util/report.h"
#include "common/rng.h"
#include "query/pipeline.h"
#include "query/query.h"

using namespace eris;
using namespace eris::bench;
using core::Engine;
using query::Filter;
using query::PipelineQuery;
using query::PipelineRunner;
using query::QueryRunner;
using routing::KeyValue;
using storage::Key;
using storage::Value;

namespace {

/// Sim stream cost of one operator: the resource counters accumulated
/// between two ResourceUsage resets.
struct OpCost {
  double critical_ms = 0;  ///< modeled elapsed (max over all resources)
  double compute_ms = 0;   ///< busiest worker's modeled busy time
  double link_mb = 0;      ///< interconnect bytes, all links
  double mc_mb = 0;        ///< memory-controller bytes, all nodes
};

OpCost SnapUsage(sim::ResourceUsage& usage) {
  OpCost c;
  c.critical_ms = usage.CriticalTimeNs() / 1e6;
  c.compute_ms = usage.MaxWorkerComputeNs() / 1e6;
  c.link_mb = usage.TotalLinkBytes() / 1e6;
  c.mc_mb = usage.TotalMemCtrlBytes() / 1e6;
  return c;
}

struct QueryCosts {
  OpCost aggregate;
  OpCost materialize;
  OpCost join;
  double join_mprobes_s = 0;
};

QueryCosts Run(const MachineSpec& machine, uint64_t facts, uint64_t dims) {
  core::EngineOptions opts = SimEngineOptions(machine, 512);
  Engine engine(opts);
  storage::ObjectId dim = engine.CreateIndex(
      "dim", dims, {.prefix_bits = 8, .key_bits = KeyBitsFor(dims, 8)});
  storage::ObjectId fact = engine.CreateColumn("fact");
  engine.Start();
  QueryRunner runner(&engine);
  {
    std::vector<KeyValue> kvs;
    for (Key k = 0; k < dims;) {
      kvs.clear();
      for (int i = 0; i < 8192 && k < dims; ++i, ++k) {
        kvs.push_back({k, k % 97});
      }
      runner.session().Insert(dim, kvs);
    }
    Xoshiro256 rng(1);
    std::vector<Value> fks(8192);
    for (uint64_t done = 0; done < facts; done += fks.size()) {
      for (auto& v : fks) v = rng.NextBounded(dims);
      runner.session().Append(fact, fks);
    }
  }

  QueryCosts costs;
  auto& usage = engine.resource_usage();

  usage.Reset();
  runner.Aggregate(fact);
  costs.aggregate = SnapUsage(usage);

  usage.Reset();
  auto mat = runner.MaterializeFilter(fact, Filter{0, dims / 4 - 1}, "hot");
  costs.materialize = SnapUsage(usage);

  usage.Reset();
  query::JoinResult join = runner.IndexJoin(mat->object, Filter{}, dim);
  costs.join = SnapUsage(usage);
  costs.join_mprobes_s = join.probes / (costs.join.critical_ms / 1e3) / 1e6;
  engine.Stop();
  return costs;
}

// --- fused-pipeline attribution --------------------------------------------

/// Per-operator streamed bytes of the pipeline path, summed over all AEUs
/// (the DESIGN.md §13 loop counters). Deltas across a Run() attribute one
/// query's bytes to its operators.
struct PipelineOpBytes {
  uint64_t filter = 0;
  uint64_t filter2 = 0;
  uint64_t agg = 0;
  uint64_t pruned_segments = 0;

  PipelineOpBytes operator-(const PipelineOpBytes& o) const {
    return {filter - o.filter, filter2 - o.filter2, agg - o.agg,
            pruned_segments - o.pruned_segments};
  }
  uint64_t total() const { return filter + filter2 + agg; }
};

PipelineOpBytes SumPipelineBytes(Engine& engine) {
  PipelineOpBytes b;
  for (uint32_t a = 0; a < engine.num_aeus(); ++a) {
    const core::AeuLoopStats& s = engine.aeu(a).loop_stats();
    b.filter += s.pipeline_filter_bytes;
    b.filter2 += s.pipeline_filter2_bytes;
    b.agg += s.pipeline_agg_bytes;
    b.pruned_segments += s.pipeline_segments_pruned;
  }
  return b;
}

struct PipelinePoint {
  const char* mode;
  PipelineOpBytes bytes;
  OpCost cost;
};

/// Runs the same filter→filter→aggregate plan fused and operator-at-a-time
/// over a clustered 3-column group; returns {fused, baseline}.
std::vector<PipelinePoint> RunPipeline(const MachineSpec& machine,
                                       uint64_t rows) {
  core::EngineOptions opts = SimEngineOptions(machine, 512);
  Engine engine(opts);
  engine.Start();
  PipelineRunner runner(&engine);
  query::ColumnGroup group = runner.CreateColumnGroup("g", 3);
  // Clustered driving column (long runs of one residue) so zone maps can
  // prune; random refining + aggregate columns.
  Xoshiro256 rng(3);
  std::vector<Value> c0(rows), c1(rows), c2(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    c0[i] = i / 512 % 100;
    c1[i] = rng.NextBounded(1000);
    c2[i] = rng.NextBounded(1u << 20);
  }
  std::vector<std::span<const Value>> cols = {c0, c1, c2};
  runner.AppendRows(group, cols);

  PipelineQuery q;
  q.filter_column = group[0];
  q.filter = {10, 14};  // 5% of the clustered residues
  q.filter2_column = group[1];
  q.filter2 = {0, 499};  // refine to ~50% of the survivors
  q.agg_column = group[2];

  auto& usage = engine.resource_usage();
  std::vector<PipelinePoint> points;
  for (bool fused : {true, false}) {
    PipelineOpBytes before = SumPipelineBytes(engine);
    usage.Reset();
    runner.Run(q, fused);
    PipelinePoint p;
    p.mode = fused ? "fused" : "op-at-a-time";
    p.cost = SnapUsage(usage);
    p.bytes = SumPipelineBytes(engine) - before;
    points.push_back(p);
  }
  engine.Stop();
  return points;
}

void OpRow(Table& table, const std::string& machine, const char* op,
           const OpCost& c, const char* extra = "") {
  table.Row({machine, op, Fmt("%.3f", c.critical_ms),
             Fmt("%.3f", c.compute_ms), Fmt("%.2f", c.link_mb),
             Fmt("%.2f", c.mc_mb), extra});
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Extension (paper Section 6)",
         "Query processing on ERIS: per-operator sim stream costs",
         "Star-schema operators with modeled time / compute / link / "
         "memory-controller\nbytes each, plus the fused-pipeline byte "
         "attribution per operator (DESIGN.md §13).");
  const uint64_t facts = quick ? 1u << 18 : 1u << 20;
  Table table({"machine", "operator", "sim ms", "compute ms", "link MB",
               "memctrl MB", "notes"});
  for (const MachineSpec& machine : AllMachines()) {
    QueryCosts t = Run(machine, facts, 1u << 18);
    OpRow(table, machine.name, "aggregate", t.aggregate);
    OpRow(table, machine.name, "materialize", t.materialize);
    char notes[64];
    std::snprintf(notes, sizeof notes, "%.1f Mprobes/s", t.join_mprobes_s);
    OpRow(table, machine.name, "join", t.join, notes);
  }
  table.Print();
  std::printf(
      "\nJoins generate AEU-to-AEU lookup traffic; bigger machines win on "
      "partitioned\nprobe scanning and aggregate cache, and pay the "
      "interconnect (link MB) for the\nrouted probes. Aggregate and "
      "materialize stream node-locally: memctrl MB\nwithout link MB.\n");

  // Fused vs operator-at-a-time, bytes attributed per operator.
  const uint64_t rows = quick ? 1u << 18 : 1u << 20;
  Table pt({"machine", "mode", "filter MB", "filter2 MB", "agg MB",
            "total MB", "pruned segs", "sim ms"});
  for (const MachineSpec& machine : AllMachines()) {
    for (const PipelinePoint& p : RunPipeline(machine, rows)) {
      pt.Row({machine.name, p.mode, Fmt("%.2f", p.bytes.filter / 1e6),
              Fmt("%.2f", p.bytes.filter2 / 1e6),
              Fmt("%.2f", p.bytes.agg / 1e6),
              Fmt("%.2f", p.bytes.total() / 1e6),
              FmtU(p.bytes.pruned_segments),
              Fmt("%.3f", p.cost.critical_ms)});
    }
  }
  pt.Print();
  std::printf(
      "\nFusion's bytes are saved at the driving filter (zone-pruned "
      "segments are never\nstreamed) and at the hand-offs: the selection "
      "vector stays in cache where the\nbaseline writes, rereads, and "
      "rewrites a materialized index vector per operator.\n");
  return 0;
}
