// Extension bench (paper future work, Section 6): query processing on top
// of the ERIS storage primitives, across the paper's machines.
//
// Runs the star-schema pipeline — filtered aggregation, NUMA-local
// materialization, index-nested-loop join — in simulated time on each
// machine. The join is the routing layer's stress case: every AEU scans
// its probe partition and generates lookup data commands for the index
// owners (the "lookup operations during a join" of Section 3.2).
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_util/drivers.h"
#include "bench_util/report.h"
#include "common/rng.h"
#include "query/query.h"

using namespace eris;
using namespace eris::bench;
using core::Engine;
using query::Filter;
using query::QueryRunner;
using routing::KeyValue;
using storage::Key;
using storage::Value;

namespace {

struct QueryTimes {
  double aggregate_ms = 0;
  double materialize_ms = 0;
  double join_ms = 0;
  double join_mprobes_s = 0;
};

QueryTimes Run(const MachineSpec& machine, uint64_t facts, uint64_t dims) {
  core::EngineOptions opts = SimEngineOptions(machine, 512);
  Engine engine(opts);
  storage::ObjectId dim = engine.CreateIndex(
      "dim", dims, {.prefix_bits = 8, .key_bits = KeyBitsFor(dims, 8)});
  storage::ObjectId fact = engine.CreateColumn("fact");
  engine.Start();
  QueryRunner runner(&engine);
  {
    std::vector<KeyValue> kvs;
    for (Key k = 0; k < dims;) {
      kvs.clear();
      for (int i = 0; i < 8192 && k < dims; ++i, ++k) {
        kvs.push_back({k, k % 97});
      }
      runner.session().Insert(dim, kvs);
    }
    Xoshiro256 rng(1);
    std::vector<Value> fks(8192);
    for (uint64_t done = 0; done < facts; done += fks.size()) {
      for (auto& v : fks) v = rng.NextBounded(dims);
      runner.session().Append(fact, fks);
    }
  }

  QueryTimes times;
  auto& usage = engine.resource_usage();

  usage.Reset();
  runner.Aggregate(fact);
  times.aggregate_ms = usage.CriticalTimeNs() / 1e6;

  usage.Reset();
  auto mat = runner.MaterializeFilter(fact, Filter{0, dims / 4 - 1}, "hot");
  times.materialize_ms = usage.CriticalTimeNs() / 1e6;

  usage.Reset();
  query::JoinResult join = runner.IndexJoin(mat->object, Filter{}, dim);
  times.join_ms = usage.CriticalTimeNs() / 1e6;
  times.join_mprobes_s = join.probes / (times.join_ms / 1e3) / 1e6;
  engine.Stop();
  return times;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Extension (paper Section 6)",
         "Query processing on ERIS: aggregate / materialize / join",
         "Star-schema pipeline in simulated time; facts scaled per machine "
         "size.");
  const uint64_t facts = quick ? 1u << 18 : 1u << 20;
  Table table({"machine", "aggregate ms", "materialize ms", "join ms",
               "join Mprobes/s"});
  for (const MachineSpec& machine : AllMachines()) {
    QueryTimes t = Run(machine, facts, 1u << 18);
    table.Row({machine.name, Fmt("%.3f", t.aggregate_ms),
               Fmt("%.3f", t.materialize_ms), Fmt("%.3f", t.join_ms),
               Fmt("%.1f", t.join_mprobes_s)});
  }
  table.Print();
  std::printf(
      "\nJoins generate AEU-to-AEU lookup traffic; bigger machines win on "
      "partitioned\nprobe scanning and aggregate cache, and pay the "
      "interconnect for the routed probes.\n");
  return 0;
}
