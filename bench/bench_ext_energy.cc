// Extension bench (paper future work, Section 6): energy consumption of
// the data-oriented architecture on the AMD machine.
//
// Three questions the paper poses, answered with the energy model over the
// deterministic resource accounting:
//  (1) ERIS vs the NUMA-agnostic shared index: energy per operation
//      (foreign memory accesses cost link energy and stretch the run).
//  (2) Idle frequency scaling: AEUs "always run at full speed"; how much
//      does a DVFS idle floor save?
//  (3) Load balancing as an energy feature: a skewed run burns idle power
//      on the unloaded AEUs while the critical path stretches.
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_util/drivers.h"
#include "bench_util/report.h"
#include "common/rng.h"
#include "sim/energy.h"

using namespace eris;
using namespace eris::bench;
using core::Engine;
using routing::KeyValue;
using storage::Key;

namespace {

struct EnergyRun {
  double joules = 0;
  double joules_dvfs = 0;
  double uj_per_op = 0;
  double secs = 0;
};

EnergyRun RunErisEnergy(bool skewed, bool rebalance, uint64_t ops) {
  MachineSpec machine = AmdMachine();
  core::EngineOptions opts = SimEngineOptions(machine, 512);
  Engine engine(opts);
  const uint64_t n = 1u << 21;
  storage::ObjectId idx =
      engine.CreateIndex("kv", n, {.prefix_bits = 8, .key_bits = 21});
  engine.Start();
  std::vector<std::unique_ptr<Engine::Session>> sessions;
  for (numa::NodeId node = 0; node < machine.topology.num_nodes(); ++node)
    sessions.push_back(engine.CreateSessionOnNode(node));
  {
    std::vector<KeyValue> kvs;
    size_t rr = 0;
    for (Key k = 0; k < n;) {
      kvs.clear();
      for (int i = 0; i < 8192 && k < n; ++i, ++k) kvs.push_back({k, k});
      sessions[rr++ % sessions.size()]->Insert(idx, kvs);
    }
  }
  core::LoadBalancerConfig cfg;
  cfg.algorithm = core::BalanceAlgorithm::kOneShot;
  cfg.trigger_cv = 0.15;
  cfg.min_total_accesses = 1;

  Xoshiro256 rng(3);
  std::vector<Key> keys(2048);
  const Key window = skewed ? n / 8 : n;
  size_t rr = 0;
  if (rebalance) {
    // Warmup: let the balancer adapt to the skew, then measure the steady
    // state (the transfers are a one-time cost the paper's Figure 13
    // already quantifies).
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 8; ++i) {
        for (auto& k : keys) k = rng.NextBounded(window);
        sessions[rr++ % sessions.size()]->Lookup(idx, keys);
      }
      engine.RebalanceObject(idx, cfg);
    }
  }
  engine.resource_usage().Reset();
  for (uint64_t done = 0; done < ops; done += keys.size()) {
    for (auto& k : keys) k = rng.NextBounded(window);
    sessions[rr++ % sessions.size()]->Lookup(idx, keys);
  }
  sim::EnergyModel model;
  EnergyRun run;
  run.joules = model.Compute(engine.resource_usage(), false).total();
  run.joules_dvfs = model.Compute(engine.resource_usage(), true).total();
  run.uj_per_op = run.joules / ops * 1e6;
  run.secs = engine.resource_usage().CriticalTimeNs() / 1e9;
  engine.Stop();
  return run;
}

EnergyRun RunSharedEnergy(uint64_t ops) {
  MachineSpec machine = AmdMachine();
  PointOpsConfig cfg(machine);
  cfg.num_keys = 1ull << 30;
  cfg.ops = ops;
  cfg.scale = 512;
  // Rebuild the usage to get the energy (driver reports aggregates only);
  // approximate with the driver's byte/time outputs.
  RunResult r = RunSharedPointOps(cfg);
  sim::EnergyModel model;
  // Reconstruct: every core busy the whole window (shared workers spin on
  // interleaved misses), traffic from the run result.
  numa::Topology topo = machine.topology;
  sim::ResourceUsage usage(topo, topo.total_cores());
  for (uint32_t w = 0; w < topo.total_cores(); ++w) {
    usage.AddComputeNs(w, r.sim_seconds * 1e9);
  }
  usage.AddMemoryTraffic(0, 0, r.mc_bytes);
  usage.AddLinkTraffic(0, 4, 0);  // links charged below via bytes
  EnergyRun run;
  sim::EnergyBreakdown e = model.Compute(usage, false);
  // Add the link energy directly from the counted bytes.
  e.link = static_cast<double>(r.link_bytes) *
           model.params().link_nj_per_byte * 1e-9;
  run.joules = e.total();
  run.joules_dvfs = model.Compute(usage, true).total() + e.link;
  run.uj_per_op = run.joules / r.ops * 1e6;
  run.secs = r.sim_seconds;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Extension (paper Section 6)",
         "Energy consumption of the data-oriented architecture (AMD, "
         "lookups)",
         "Modeled energy over the deterministic resource accounting.");
  const uint64_t ops = quick ? 1u << 16 : 1u << 18;

  EnergyRun eris = RunErisEnergy(false, false, ops);
  EnergyRun shared = RunSharedEnergy(ops);
  EnergyRun skew_nolb = RunErisEnergy(true, false, ops);
  EnergyRun skew_lb = RunErisEnergy(true, true, ops);

  Table table({"configuration", "time (ms)", "energy (J)", "with idle DVFS",
               "uJ/op"});
  table.Row({"ERIS, uniform load", Fmt("%.2f", eris.secs * 1e3),
             Fmt("%.3f", eris.joules), Fmt("%.3f", eris.joules_dvfs),
             Fmt("%.2f", eris.uj_per_op)});
  table.Row({"shared index", Fmt("%.2f", shared.secs * 1e3),
             Fmt("%.3f", shared.joules), Fmt("%.3f", shared.joules_dvfs),
             Fmt("%.2f", shared.uj_per_op)});
  table.Row({"ERIS, skewed, no balancer", Fmt("%.2f", skew_nolb.secs * 1e3),
             Fmt("%.3f", skew_nolb.joules),
             Fmt("%.3f", skew_nolb.joules_dvfs),
             Fmt("%.2f", skew_nolb.uj_per_op)});
  table.Row({"ERIS, skewed, after LB", Fmt("%.2f", skew_lb.secs * 1e3),
             Fmt("%.3f", skew_lb.joules), Fmt("%.3f", skew_lb.joules_dvfs),
             Fmt("%.2f", skew_lb.uj_per_op)});
  table.Print();
  std::printf(
      "\nReadings: the shared index burns link energy and stretches the "
      "run; a skewed run\nwithout balancing wastes idle power on the "
      "unloaded AEUs; balancing shortens the\ncritical path and pays for "
      "its transfers; idle DVFS lowers the always-full-speed\nAEU floor "
      "(the paper's proposed direction).\n");
  return 0;
}
