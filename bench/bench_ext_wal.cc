// Extension bench (durability): group commit vs per-record fsync.
//
// Two layers, both at 8 writers:
//
//   engine — a durable kThreads 1x4 engine under 8 client threads issuing
//     blocking upserts (an ack means the group commit covering the batch hit
//     the disk). kGroupCommit amortizes one write+fsync per AEU loop
//     iteration over every writer's queued groups; kPerRecordFsync — the
//     ablation ERIS's push-based logging argues against — syncs every effect
//     record and serializes the loop on the log device.
//
//   writer micro — 8 threads, each owning one WalWriter on its own file,
//     sweeping the group-commit window (records per commit; window 1 is
//     exactly per-record fsync). Isolates the fsync amortization curve and
//     the per-commit latency the window buys it.
//
// Results go to BENCH_wal.json for cross-PR tracking. `--smoke` runs a
// reduced sweep and exits non-zero when group commit fails to beat
// per-record fsync by >= 4x at 8 writers — wired into scripts/tier1.sh.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/report.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "durability/wal.h"

using namespace eris;
using namespace eris::bench;
using core::Engine;
using core::EngineOptions;
using durability::WalMode;
using routing::KeyValue;
using storage::Key;

namespace {

constexpr uint64_t kDomain = 1u << 16;
constexpr uint32_t kWriters = 8;
constexpr uint32_t kBatch = 32;
// Router batches are capped at 4 elements, so one 32-key upsert reaches an
// AEU as ~8 separate effect records in the same loop iteration: group
// commit covers them all with one fsync, per-record fsync pays one each.
// (Finer records also model multi-command transactions arriving back to
// back, the case push-based logging is designed around.)
constexpr uint32_t kMaxBatchElements = 4;

std::string MakeScratchDir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl =
      std::string(base != nullptr ? base : "/tmp") + "/eris-wal-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* dir = ::mkdtemp(buf.data());
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed: %s\n", std::strerror(errno));
    std::exit(1);
  }
  return dir;
}

struct EnginePoint {
  WalMode mode;
  uint64_t acked_units = 0;
  uint64_t fsyncs = 0;
  uint64_t wal_records = 0;
  double units_per_s = 0;
  double p99_ack_ms = 0;  ///< blocking-upsert (ack) latency
  double secs = 0;
};

EnginePoint RunEngine(WalMode mode, uint32_t batches_per_writer) {
  std::string dir = MakeScratchDir();
  EngineOptions opts;
  // 1x2: with 8 writers fanning into 2 AEUs, each loop iteration has many
  // queued effect groups to amortize one fsync over — the regime group
  // commit exists for. (More AEUs dilute groups-per-iteration, understating
  // the per-record-fsync serialization the ablation measures.)
  opts.topology = numa::Topology::Flat(1, 2);
  opts.mode = core::ExecutionMode::kThreads;
  opts.pin_threads = false;  // 8 clients + AEUs oversubscribe small hosts
  opts.router.max_batch_elements = kMaxBatchElements;
  opts.durability.enabled = true;
  opts.durability.dir = dir;
  opts.durability.mode = mode;
  Engine engine(opts);
  storage::ObjectId idx =
      engine.CreateIndex("kv", kDomain, {.prefix_bits = 8, .key_bits = 16});
  engine.Start();

  Histogram latency(0, 50'000, 2000);  // ack latency in microseconds
  std::mutex merge_lock;
  Stopwatch wall;
  std::vector<std::thread> workers;
  for (uint32_t w = 0; w < kWriters; ++w) {
    workers.emplace_back([&, w] {
      auto session = engine.CreateSession();
      Xoshiro256 rng(Mix64(w * 7919 + 17));
      Histogram local(0, 50'000, 2000);
      std::vector<KeyValue> kvs(kBatch);
      for (uint32_t b = 0; b < batches_per_writer; ++b) {
        for (uint32_t i = 0; i < kBatch; ++i) {
          // Random keys: every batch spreads over all four AEUs, so both
          // modes pay every AEU's logging path.
          kvs[i] = {rng.NextBounded(kDomain), b};
        }
        Stopwatch watch;
        session->Upsert(idx, kvs);  // returns once acked => durable
        local.Add(static_cast<double>(watch.ElapsedNanos()) / 1000.0);
      }
      std::lock_guard<std::mutex> guard(merge_lock);
      latency.Merge(local);
    });
  }
  for (std::thread& t : workers) t.join();
  double secs = wall.ElapsedSeconds();

  EnginePoint p;
  p.mode = mode;
  for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    p.fsyncs += engine.durability()->wal(a)->stats().fsyncs;
    p.wal_records += engine.aeu(a).loop_stats().wal_records;
  }
  engine.Stop();
  p.acked_units = uint64_t{kWriters} * batches_per_writer * kBatch;
  p.units_per_s = secs > 0 ? p.acked_units / secs : 0;
  p.p99_ack_ms = latency.Quantile(0.99) / 1000.0;
  p.secs = secs;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return p;
}

struct MicroPoint {
  uint32_t window = 0;  ///< records per group commit (1 = per-record fsync)
  uint64_t records = 0;
  double records_per_s = 0;
  double p99_commit_ms = 0;  ///< latency of the write+fsync sealing a group
  double secs = 0;
};

MicroPoint RunMicro(uint32_t window, uint32_t records_per_thread) {
  std::string dir = MakeScratchDir();
  Histogram commit_lat(0, 50'000, 2000);  // microseconds
  std::mutex merge_lock;
  Stopwatch wall;
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < kWriters; ++t) {
    workers.emplace_back([&, t] {
      durability::DurabilityOptions wopts;
      wopts.mode = WalMode::kGroupCommit;  // window drives the commit cadence
      durability::WalWriter w;
      Status st = w.Open(dir + "/wal-" + std::to_string(t) + ".log", wopts,
                         /*next_lsn=*/1, /*valid_end=*/0);
      if (!st.ok()) {
        std::fprintf(stderr, "wal open: %s\n", std::string(st.message()).c_str());
        std::exit(1);
      }
      Histogram local(0, 50'000, 2000);
      uint8_t body[64];
      std::memset(body, 0x5a, sizeof(body));
      for (uint32_t r = 0; r < records_per_thread; ++r) {
        w.Append(body);
        if ((r + 1) % window == 0) {
          Stopwatch watch;
          w.Commit();
          local.Add(static_cast<double>(watch.ElapsedNanos()) / 1000.0);
        }
      }
      w.Commit();
      std::lock_guard<std::mutex> guard(merge_lock);
      commit_lat.Merge(local);
    });
  }
  for (std::thread& t : workers) t.join();
  double secs = wall.ElapsedSeconds();

  MicroPoint p;
  p.window = window;
  p.records = uint64_t{kWriters} * records_per_thread;
  p.records_per_s = secs > 0 ? p.records / secs : 0;
  p.p99_commit_ms = commit_lat.Quantile(0.99) / 1000.0;
  p.secs = secs;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return p;
}

const char* ModeName(WalMode m) {
  return m == WalMode::kGroupCommit ? "group-commit" : "per-record-fsync";
}

void WriteJson(const std::vector<EnginePoint>& engine_points, double ratio,
               const std::vector<MicroPoint>& micro_points) {
  std::FILE* f = std::fopen("BENCH_wal.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_wal.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ext_wal\",\n");
  std::fprintf(f, "  \"writers\": %u,\n", kWriters);
  std::fprintf(f, "  \"group_commit_speedup_8w\": %.2f,\n", ratio);
  std::fprintf(f, "  \"engine\": [\n");
  for (size_t i = 0; i < engine_points.size(); ++i) {
    const EnginePoint& p = engine_points[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"acked_units\": %llu, "
                 "\"units_per_s\": %.3e, \"p99_ack_ms\": %.3f, "
                 "\"fsyncs\": %llu, \"wal_records\": %llu}%s\n",
                 ModeName(p.mode),
                 static_cast<unsigned long long>(p.acked_units),
                 p.units_per_s, p.p99_ack_ms,
                 static_cast<unsigned long long>(p.fsyncs),
                 static_cast<unsigned long long>(p.wal_records),
                 i + 1 < engine_points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"micro_window_sweep\": [\n");
  for (size_t i = 0; i < micro_points.size(); ++i) {
    const MicroPoint& p = micro_points[i];
    std::fprintf(f,
                 "    {\"window\": %u, \"records_per_s\": %.3e, "
                 "\"p99_commit_ms\": %.3f}%s\n",
                 p.window, p.records_per_s, p.p99_commit_ms,
                 i + 1 < micro_points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote BENCH_wal.json.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  Banner("Ext wal",
         "Group Commit vs Per-Record Fsync at 8 Writers",
         "engine = durable 1x2 kThreads, blocking 32-key upserts;\n"
         "micro = 8 independent WalWriters sweeping the commit window.");
  const bool small = quick || smoke;

  // Per-record fsync is the slow side; size the workload by it (one fsync
  // per AEU-level effect record, ~100 us class on this tier of storage).
  const uint32_t batches = small ? 80 : 400;
  const uint32_t micro_records = small ? 2000 : 10000;

  std::vector<EnginePoint> engine_points;
  Table etable({"mode", "acked units", "units/s", "p99 ack ms", "fsyncs",
                "wal records", "secs"});
  // Best of two runs per mode: the gate must not trip on one noisy
  // scheduler interval of a shared machine.
  for (WalMode mode : {WalMode::kPerRecordFsync, WalMode::kGroupCommit}) {
    EnginePoint best = RunEngine(mode, batches);
    EnginePoint second = RunEngine(mode, batches);
    if (second.units_per_s > best.units_per_s) best = second;
    engine_points.push_back(best);
    etable.Row({ModeName(best.mode), FmtU(best.acked_units),
                Fmt("%.3e", best.units_per_s), Fmt("%.3f", best.p99_ack_ms),
                FmtU(best.fsyncs), FmtU(best.wal_records),
                Fmt("%.2f", best.secs)});
  }
  etable.Print();
  double ratio = engine_points[0].units_per_s > 0
                     ? engine_points[1].units_per_s /
                           engine_points[0].units_per_s
                     : 0;
  std::printf("\n  group-commit speedup over per-record fsync: %.2fx\n",
              ratio);

  std::vector<MicroPoint> micro_points;
  Table mtable({"window", "records", "records/s", "p99 commit ms", "secs"});
  for (uint32_t window : {1u, 4u, 16u, 64u}) {
    MicroPoint p = RunMicro(window, micro_records);
    micro_points.push_back(p);
    mtable.Row({FmtU(p.window), FmtU(p.records), Fmt("%.3e", p.records_per_s),
                Fmt("%.3f", p.p99_commit_ms), Fmt("%.2f", p.secs)});
  }
  mtable.Print();

  WriteJson(engine_points, ratio, micro_points);

  if (smoke) {
    bool ok = ratio >= 4.0;
    std::printf(ok ? "\nSMOKE OK: group commit %.2fx >= 4x at %u writers\n"
                   : "\nSMOKE FAIL: group commit %.2fx < 4x at %u writers\n",
                ratio, kWriters);
    return ok ? 0 : 1;
  }
  return 0;
}
