// Ablation: CSB+-tree range partition table vs a flat sorted array
// (std::upper_bound), across AEU counts — the paper's rationale for the
// CSB+-tree: "it works fast for sparsely distributed data and scales with
// an increasing number of ranges, respectively AEUs, compared to a simple
// array".
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util/report.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "storage/csb_tree.h"

using namespace eris;
using namespace eris::bench;

namespace {

struct Probe {
  double csb_ns;
  double array_ns;
};

Probe Run(size_t ranges, uint64_t probes) {
  Xoshiro256 rng(ranges);
  std::vector<uint64_t> bounds(ranges);
  uint64_t next = 0;
  for (auto& b : bounds) {
    next += 1 + rng.NextBounded(1u << 20);  // sparse boundaries
    b = next;
  }
  std::vector<uint32_t> owners(ranges);
  for (size_t i = 0; i < ranges; ++i) owners[i] = static_cast<uint32_t>(i);
  storage::CsbTree tree(bounds, owners);

  std::vector<uint64_t> needles(probes);
  for (auto& n : needles) n = rng.NextBounded(next);

  Stopwatch watch;
  uint64_t sink = 0;
  for (uint64_t n : needles) sink += tree.UpperBound(n);
  double csb_ns = watch.ElapsedNanos() / static_cast<double>(probes);

  watch.Restart();
  for (uint64_t n : needles) {
    sink += static_cast<uint64_t>(
        std::upper_bound(bounds.begin(), bounds.end(), n) - bounds.begin());
  }
  double array_ns = watch.ElapsedNanos() / static_cast<double>(probes);
  if (sink == 1) std::printf("?");
  return {csb_ns, array_ns};
}

}  // namespace

int main() {
  Banner("Ablation", "Range partition table: CSB+-tree vs flat sorted array",
         "UpperBound lookups over sparse boundaries; ns per lookup "
         "(host-measured).");
  Table table({"ranges (AEUs)", "CSB+-tree ns", "binary-search ns",
               "array/CSB"});
  for (size_t ranges : {8u, 64u, 512u, 4096u, 65536u}) {
    Probe p = Run(ranges, 2'000'000);
    table.Row({FmtU(ranges), Fmt("%.1f", p.csb_ns), Fmt("%.1f", p.array_ns),
               Fmt("%.2fx", p.array_ns / p.csb_ns)});
  }
  table.Print();
  std::printf(
      "\nThe CSB+-tree advantage grows with the range count (cache-friendly "
      "node layout vs\npointer-chasing binary search over a large array).\n");
  return 0;
}
