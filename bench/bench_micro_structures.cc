// Google-benchmark microbenchmarks of the storage building blocks:
// prefix tree, CSB+-tree, hash table, column store, incoming buffer.
// Real host time (not modeled); useful for regression tracking.
#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "common/rng.h"
#include "numa/memory_manager.h"
#include "routing/incoming_buffer.h"
#include "storage/column_store.h"
#include "storage/csb_tree.h"
#include "storage/hash_table.h"
#include "storage/prefix_tree.h"

namespace {

using namespace eris;
using storage::Key;
using storage::Value;

void BM_PrefixTreeInsert(benchmark::State& state) {
  numa::NodeMemoryManager mm(0);
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::PrefixTree tree(&mm, {.prefix_bits = 8, .key_bits = 32});
    Xoshiro256 rng(1);
    state.ResumeTiming();
    for (uint64_t i = 0; i < n; ++i) {
      tree.Insert(rng.NextBounded(1u << 26), i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_PrefixTreeInsert)->Arg(10000)->Arg(100000);

void BM_PrefixTreeLookup(benchmark::State& state) {
  numa::NodeMemoryManager mm(0);
  storage::PrefixTree tree(&mm, {.prefix_bits = 8, .key_bits = 32});
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  Xoshiro256 rng(1);
  std::vector<Key> keys;
  for (uint64_t i = 0; i < n; ++i) {
    Key k = rng.NextBounded(1u << 26);
    tree.Insert(k, i);
    keys.push_back(k);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefixTreeLookup)->Arg(100000)->Arg(1000000);

void BM_PrefixTreeBatchLookup(benchmark::State& state) {
  // The paper's latency-hiding batch operation vs one-at-a-time probes:
  // compare with BM_PrefixTreeLookup at the same tree size.
  numa::NodeMemoryManager mm(0);
  storage::PrefixTree tree(&mm, {.prefix_bits = 8, .key_bits = 32});
  const uint64_t n = 1000000;
  Xoshiro256 rng(1);
  std::vector<Key> keys;
  for (uint64_t i = 0; i < n; ++i) {
    Key k = rng.NextBounded(1u << 26);
    tree.Insert(k, i);
    keys.push_back(k);
  }
  const size_t batch = 1024;
  std::vector<Key> probes(batch);
  std::vector<Value> values(batch);
  std::vector<uint8_t> found_raw(batch);
  auto* found = reinterpret_cast<bool*>(found_raw.data());
  for (auto _ : state) {
    for (auto& p : probes) p = keys[rng.NextBounded(n)];
    benchmark::DoNotOptimize(tree.BatchLookup(probes, values.data(), found));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_PrefixTreeBatchLookup);

void BM_PrefixTreeRangeScan(benchmark::State& state) {
  numa::NodeMemoryManager mm(0);
  storage::PrefixTree tree(&mm, {.prefix_bits = 8, .key_bits = 24});
  for (Key k = 0; k < 1u << 20; ++k) tree.Insert(k, k);
  for (auto _ : state) {
    uint64_t sum = 0;
    tree.RangeScan(1000, 1000 + (1u << 16),
                   [&](Key, Value v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_PrefixTreeRangeScan);

void BM_PrefixTreeSplitOff(benchmark::State& state) {
  numa::NodeMemoryManager mm(0);
  for (auto _ : state) {
    state.PauseTiming();
    storage::PrefixTree tree(&mm, {.prefix_bits = 8, .key_bits = 24});
    for (Key k = 0; k < 1u << 18; ++k) tree.Insert(k, k);
    state.ResumeTiming();
    storage::PrefixTree upper = tree.SplitOff(1u << 17);
    benchmark::DoNotOptimize(upper.size());
  }
}
BENCHMARK(BM_PrefixTreeSplitOff);

void BM_CsbTreeLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> keys(n);
  std::vector<uint32_t> payloads(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = i * 977;
    payloads[i] = static_cast<uint32_t>(i);
  }
  storage::CsbTree tree(keys, payloads);
  Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.UpperBound(rng.NextBounded(n * 977)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CsbTreeLookup)->Arg(64)->Arg(512)->Arg(65536);

void BM_HashTableUpsert(benchmark::State& state) {
  numa::NodeMemoryManager mm(0);
  storage::HashTable ht(&mm, 7);
  Xoshiro256 rng(3);
  for (auto _ : state) {
    ht.Upsert(rng.NextBounded(1u << 20), 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTableUpsert);

void BM_ColumnScanSum(benchmark::State& state) {
  numa::NodeMemoryManager mm(0);
  storage::ColumnStore col(&mm);
  Xoshiro256 rng(4);
  const uint64_t n = 1u << 22;
  for (uint64_t i = 0; i < n; ++i) col.Append(rng.Next() >> 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(col.ScanSum(0, ~0ull >> 2));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(n) * 8);
}
BENCHMARK(BM_ColumnScanSum);

void BM_IncomingBufferWriteDrain(benchmark::State& state) {
  routing::IncomingBufferPair buf(1 << 20);
  std::vector<uint8_t> record(64, 0xAB);
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      benchmark::DoNotOptimize(buf.TryWrite(record));
    }
    buf.Drain([](std::span<const uint8_t> region) {
      benchmark::DoNotOptimize(region.size());
    });
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_IncomingBufferWriteDrain);

}  // namespace

BENCHMARK_MAIN();
