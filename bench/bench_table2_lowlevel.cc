// Table 1 & 2: machine specifications and per-distance memory read
// bandwidth (GB/s) / read latency (ns) for the three evaluation machines.
//
// The remote values come from the topology presets (which encode the
// paper's BenchIT measurements); additionally a small host micro-benchmark
// measures the real local latency (pointer chase) and bandwidth
// (sequential sum) of the reproduction machine for grounding.
#include <cstdio>
#include <map>
#include <numeric>
#include <tuple>
#include <vector>

#include "bench_util/machines.h"
#include "bench_util/report.h"
#include "common/rng.h"
#include "common/stopwatch.h"

using namespace eris;
using namespace eris::bench;

namespace {

void PrintMachine(const MachineSpec& machine) {
  const numa::Topology& t = machine.topology;
  std::printf("--- %s: %u nodes x %u cores, %zu links, diameter %u, "
              "LLC/node %.0f MiB\n",
              machine.name.c_str(), t.num_nodes(), t.cores_per_node(),
              t.num_links(), t.Diameter(),
              machine.llc_bytes_per_node / 1024 / 1024);
  // Group node pairs into distance classes.
  std::map<std::tuple<uint32_t, double, double>, uint32_t> classes;
  for (numa::NodeId s = 0; s < t.num_nodes(); ++s) {
    for (numa::NodeId d = 0; d < t.num_nodes(); ++d) {
      ++classes[{t.Hops(s, d), t.BandwidthGbps(s, d), t.LatencyNs(s, d)}];
    }
  }
  Table table({"hops", "bandwidth (GB/s)", "latency (ns)", "node pairs"});
  for (const auto& [key, count] : classes) {
    auto [hops, bw, lat] = key;
    table.Row({hops == 0 ? "local" : std::to_string(hops),
               Fmt("%.1f", bw), Fmt("%.0f", lat), FmtU(count)});
  }
  table.Print();
  std::printf("\n");
}

void HostMicrobench() {
  std::printf("--- Reproduction host: measured local memory performance\n");
  // Latency: pointer chase over a random permutation.
  const size_t n = 1 << 22;  // 32 MiB of uint64 — beats the LLC
  std::vector<uint64_t> chase(n);
  std::iota(chase.begin(), chase.end(), 0);
  Xoshiro256 rng(1);
  for (size_t i = n - 1; i > 0; --i) {
    std::swap(chase[i], chase[rng.NextBounded(i + 1)]);
  }
  // Build a cycle.
  std::vector<uint64_t> next(n);
  for (size_t i = 0; i + 1 < n; ++i) next[chase[i]] = chase[i + 1];
  next[chase[n - 1]] = chase[0];
  const uint64_t steps = 2'000'000;
  uint64_t at = 0;
  Stopwatch watch;
  for (uint64_t i = 0; i < steps; ++i) at = next[at];
  double lat_ns = watch.ElapsedNanos() / static_cast<double>(steps);
  if (at == ~0ull) std::printf("?");  // keep the chase alive

  // Bandwidth: sequential sum.
  std::vector<uint64_t> data(n, 1);
  watch.Restart();
  uint64_t sum = 0;
  for (int rep = 0; rep < 4; ++rep) {
    for (size_t i = 0; i < n; ++i) sum += data[i];
  }
  double secs = watch.ElapsedSeconds();
  double gbps = 4.0 * n * 8 / secs / 1e9;
  if (sum == 0) std::printf("?");
  Table table({"metric", "value"});
  table.Row({"dependent-read latency", Fmt("%.0f ns", lat_ns)});
  table.Row({"sequential read bandwidth (1 core)", Fmt("%.1f GB/s", gbps)});
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  Banner("Table 1/2", "NUMA machine specifications and per-distance memory "
         "performance",
         "Per-distance values encode the paper's BenchIT measurements into "
         "the topology presets\nthat drive the cost model.");
  for (const MachineSpec& m : AllMachines()) PrintMachine(m);
  HostMicrobench();
  return 0;
}
