// Ablation: range partitioning vs hash partitioning (paper Section 3.1:
// "ERIS primarily uses range partitioning ... We decided against hash
// partitioning, because it is not order preserving and thus disallows
// efficient range scans and hinders an efficient load balancing.")
//
// On the AMD machine (simulated time): index range scans of decreasing
// selectivity. Range partitioning touches only the owning AEUs; hash
// partitioning multicasts every scan to all 64 AEUs and each one filters
// its whole hash class.
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_util/drivers.h"
#include "bench_util/report.h"
#include "common/rng.h"

using namespace eris;
using namespace eris::bench;
using core::Engine;
using routing::KeyValue;
using storage::Key;

namespace {

struct ScanCost {
  uint64_t commands = 0;
  double ms = 0;
  uint64_t rows = 0;
};

ScanCost RunRangeScan(Engine& engine, storage::ObjectId idx,
                      Engine::Session& session, Key lo, Key hi) {
  engine.resource_usage().Reset();
  routing::AggregateSink& sink = session.sink();
  sink.Reset();
  uint64_t commands =
      session.endpoint().SendScanIndexRange(idx, lo, hi, {}, &sink);
  session.Wait(commands);
  ScanCost cost;
  cost.commands = commands;
  cost.ms = engine.resource_usage().CriticalTimeNs() / 1e6;
  cost.rows = sink.hits();
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Ablation", "Range partitioning vs hash partitioning (AMD)",
         "Index range scans of decreasing selectivity; commands = AEUs the "
         "scan must visit.");
  const Key n = quick ? 1u << 19 : 1u << 21;

  for (bool hashed : {false, true}) {
    core::EngineOptions opts = SimEngineOptions(AmdMachine(), 512);
    Engine engine(opts);
    storage::PrefixTreeConfig cfg{8, KeyBitsFor(n, 8)};
    storage::ObjectId idx = hashed
                                ? engine.CreateHashedIndex("kv", n, cfg)
                                : engine.CreateIndex("kv", n, cfg);
    engine.Start();
    auto session = engine.CreateSession();
    {
      std::vector<KeyValue> kvs;
      for (Key k = 0; k < n;) {
        kvs.clear();
        for (int i = 0; i < 8192 && k < n; ++i, ++k) kvs.push_back({k, 1});
        session->Insert(idx, kvs);
      }
    }
    std::printf("--- %s partitioning\n", hashed ? "hash" : "range");
    Table table({"scanned fraction", "rows", "AEUs visited", "modeled ms"});
    for (uint32_t frac : {64u, 16u, 4u, 1u}) {
      Key width = n / frac;
      ScanCost cost = RunRangeScan(engine, idx, *session, 0, width);
      table.Row({Fmt("1/%g", frac), FmtU(cost.rows), FmtU(cost.commands),
                 Fmt("%.3f", cost.ms)});
    }
    table.Print();

    // The workload that decides the design: many concurrent narrow range
    // scans. Range partitioning spreads them (one owner each); hash
    // partitioning interrupts every AEU for every scan.
    {
      engine.resource_usage().Reset();
      routing::AggregateSink& sink = session->sink();
      sink.Reset();
      Xoshiro256 rng(7);
      const int kScans = 256;
      const Key kWidth = 256;
      uint64_t commands = 0;
      for (int i = 0; i < kScans; ++i) {
        Key base = rng.NextBounded(n - kWidth);
        commands += session->endpoint().SendScanIndexRange(
            idx, base, base + kWidth, {}, &sink);
      }
      session->Wait(commands);
      double ms = engine.resource_usage().CriticalTimeNs() / 1e6;
      std::printf(
          "  %d concurrent %llu-key scans: %llu commands routed, modeled "
          "%.3f ms (%.0f scans/ms)\n\n",
          kScans, static_cast<unsigned long long>(kWidth),
          static_cast<unsigned long long>(commands), ms, kScans / ms);
    }
    engine.Stop();
  }
  std::printf(
      "Range partitioning visits only the owners of the scanned interval; "
      "hash\npartitioning multicasts every range scan to all AEUs, each "
      "filtering its whole\nhash class — the cost that drove the paper's "
      "choice. Hash partitioning's upside\n(uniform load without a "
      "balancer) is covered by the hashed-partitioning tests.\n");
  return 0;
}
