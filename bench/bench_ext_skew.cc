// Extension bench: the load balancer under Zipfian skew (AMD machine).
//
// Figure 13 uses shifting uniform windows; real analytical workloads skew
// by popularity. This bench sweeps the Zipf parameter and compares modeled
// lookup throughput without a balancer vs after MA-2 balancing cycles.
// Two regimes matter:
//  * contiguous hot set (scatter off): the hot keys form a range —
//    range-based balancing isolates and spreads it; big wins.
//  * scattered hot keys (scatter on): single ultra-hot keys cannot be
//    split below one key, bounding what any range balancer can do — the
//    limitation the paper's future work (query-level load balancing)
//    points at.
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_util/drivers.h"
#include "bench_util/report.h"
#include "bench_util/workload.h"

using namespace eris;
using namespace eris::bench;
using core::Engine;
using routing::KeyValue;
using storage::Key;

namespace {

double RunSkewed(double theta, bool scatter, bool balance, uint64_t ops) {
  MachineSpec machine = AmdMachine();
  core::EngineOptions opts = SimEngineOptions(machine, 512);
  Engine engine(opts);
  const uint64_t n = 1u << 20;
  storage::ObjectId idx =
      engine.CreateIndex("kv", n, {.prefix_bits = 8, .key_bits = 20});
  engine.Start();
  std::vector<std::unique_ptr<Engine::Session>> sessions;
  for (numa::NodeId node = 0; node < machine.topology.num_nodes(); ++node)
    sessions.push_back(engine.CreateSessionOnNode(node));
  {
    std::vector<KeyValue> kvs;
    size_t rr = 0;
    for (Key k = 0; k < n;) {
      kvs.clear();
      for (int i = 0; i < 8192 && k < n; ++i, ++k) kvs.push_back({k, k});
      sessions[rr++ % sessions.size()]->Insert(idx, kvs);
    }
  }
  ZipfGenerator gen(n, theta, 9, scatter);
  core::LoadBalancerConfig cfg;
  cfg.algorithm = core::BalanceAlgorithm::kMovingAverage;
  cfg.ma_window = 2;
  cfg.trigger_cv = 0.1;
  cfg.min_total_accesses = 1;

  std::vector<Key> keys(2048);
  size_t rr = 0;
  if (balance) {
    for (int round = 0; round < 6; ++round) {
      for (int i = 0; i < 8; ++i) {
        for (auto& k : keys) k = gen.Next();
        sessions[rr++ % sessions.size()]->Lookup(idx, keys);
      }
      engine.RebalanceObject(idx, cfg);
    }
  }
  engine.resource_usage().Reset();
  for (uint64_t done = 0; done < ops; done += keys.size()) {
    for (auto& k : keys) k = gen.Next();
    sessions[rr++ % sessions.size()]->Lookup(idx, keys);
  }
  double mops = ops / (engine.resource_usage().CriticalTimeNs() / 1e9) / 1e6;
  engine.Stop();
  return mops;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Extension", "Load balancing under Zipfian skew (AMD, lookups)",
         "Modeled Mops/s, no balancer vs after MA-2 cycles; contiguous vs "
         "scattered hot keys.");
  const uint64_t ops = quick ? 1u << 15 : 1u << 17;
  Table table({"theta", "hot set", "no balancer", "after MA-2", "gain"});
  for (double theta : {0.5, 0.9, 1.2}) {
    for (bool scatter : {false, true}) {
      double none = RunSkewed(theta, scatter, false, ops);
      double lb = RunSkewed(theta, scatter, true, ops);
      table.Row({Fmt("%.1f", theta), scatter ? "scattered" : "contiguous",
                 Fmt("%.0f", none), Fmt("%.0f", lb), Fmt("%.2fx", lb / none)});
    }
  }
  table.Print();
  std::printf(
      "\nContiguous hot ranges are the balancer's home turf; scattered "
      "ultra-hot keys\nbound range balancing (a single key cannot be "
      "split), pointing at the paper's\nquery-level balancing future "
      "work.\n");
  return 0;
}
