// Figure 6: the configurable load balancing algorithm on the paper's
// example distribution — partitions 3..6 of 8 carry 25% of the accesses
// each. Shows the smoothed target shares and the resulting target
// boundaries for One-Shot and MA-1/2/3/7 (MA over the full histogram
// equals One-Shot).
#include <cstdio>

#include "bench_util/report.h"
#include "core/load_balancer.h"

using namespace eris;
using namespace eris::bench;
using namespace eris::core;

namespace {

std::vector<routing::RangeEntry> UniformEntries(size_t n,
                                                storage::Key domain) {
  std::vector<routing::RangeEntry> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i].hi = i + 1 == n ? storage::kMaxKey
                               : static_cast<storage::Key>((i + 1) * domain / n);
    entries[i].owner = static_cast<routing::AeuId>(i);
  }
  return entries;
}

std::string ShareRow(const std::vector<double>& shares) {
  std::string s;
  double total = 0;
  for (double v : shares) total += v;
  for (double v : shares) {
    s += Fmt("%5.1f%% ", 100.0 * v / total);
  }
  return s;
}

}  // namespace

int main() {
  Banner("Figure 6", "Configurable Load Balancing Algorithm",
         "Access histogram: partitions 3-6 hold 25%% each (8 partitions, "
         "domain [0, 8000)).\nTarget shares per algorithm, then the key "
         "boundaries each algorithm computes.");

  const storage::Key domain = 8000;
  auto entries = UniformEntries(8, domain);
  std::vector<double> metric{0, 0, 25, 25, 25, 25, 0, 0};

  std::printf("measured:  %s\n", ShareRow(metric).c_str());
  for (uint32_t k : {1u, 2u, 3u, 7u}) {
    std::printf("MA-%u:      %s\n", k,
                ShareRow(MovingAverageSmooth(metric, k)).c_str());
  }
  std::printf("one-shot:  %s\n\n",
              ShareRow(std::vector<double>(8, 1.0)).c_str());

  Table table({"algorithm", "b0", "b1", "b2", "b3", "b4", "b5", "b6",
               "fetches"});
  auto run = [&](const char* name, BalanceAlgorithm algo, uint32_t window) {
    auto his = ComputeTargetBoundaries(entries, metric, algo, window, domain);
    RebalancePlan plan = BuildRangePlan(entries, his);
    std::vector<std::string> row{name};
    for (size_t i = 0; i + 1 < his.size(); ++i) row.push_back(FmtU(his[i]));
    row.push_back(FmtU(plan.num_fetches()));
    table.Row(row);
  };
  run("current", BalanceAlgorithm::kNone, 0);
  run("MA-1", BalanceAlgorithm::kMovingAverage, 1);
  run("MA-2", BalanceAlgorithm::kMovingAverage, 2);
  run("MA-3", BalanceAlgorithm::kMovingAverage, 3);
  run("MA-7", BalanceAlgorithm::kMovingAverage, 7);
  run("one-shot", BalanceAlgorithm::kOneShot, 0);
  table.Print();
  std::printf(
      "\nMA-k boundaries move further toward the hot region [2000, 6000) "
      "as k grows;\nMA-7 equals One-Shot (full rebalance), matching the "
      "paper.\n");
  return 0;
}
