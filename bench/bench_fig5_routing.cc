// Figure 5: data command routing throughput as a function of the outgoing
// (local) buffer size, on the AMD machine.
//
// Two curves: "raw routing" (AEUs skip the processing phase — fence
// commands that complete immediately) and "with index lookups" (the
// processing stage dominates once the buffers hide the per-command routing
// overhead). Paper shapes: raw throughput roughly doubles with the buffer
// size until the interconnect saturates; with processing enabled the peak
// is already reached at a small buffer size (~128 commands).
//
// Also doubles as the batched-vs-direct routing ablation: buffer size 1 is
// the "no local pre-buffering" configuration.
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <memory>

#include "bench_util/drivers.h"
#include "bench_util/report.h"
#include "common/rng.h"

using namespace eris;
using namespace eris::bench;
using core::Engine;
using core::EngineOptions;
using routing::KeyValue;
using storage::Key;

namespace {

// One routed lookup record: header (24) + an 8-key batch (64) on the
// processing curve; raw fences are 24 B. Use the batch size for the
// buffer-size knob so "N commands" means N records either way.
constexpr size_t kRecordBytes = 32;

struct RoutingResult {
  double mcmds_per_s = 0;
  double link_gbps = 0;
};

RoutingResult RunRouting(uint32_t buffer_commands, bool with_processing,
                         uint64_t commands, bool batch_owner = true) {
  MachineSpec machine = AmdMachine();
  EngineOptions opts = SimEngineOptions(machine, 512);
  opts.router.flush_threshold_bytes = buffer_commands * kRecordBytes;
  // Ablation: resolve batch owners with per-key CSB+-tree descents instead
  // of the prefetch-pipelined whole-batch descent.
  opts.router.batch_owner_lookup = batch_owner;
  Engine engine(opts);
  const uint64_t n = 1u << 21;  // 2M keys scaled (1 B paper keys)
  storage::ObjectId idx =
      engine.CreateIndex("kv", n, {.prefix_bits = 8, .key_bits = 21});
  engine.Start();

  std::vector<std::unique_ptr<Engine::Session>> sessions;
  for (numa::NodeId node = 0; node < machine.topology.num_nodes(); ++node) {
    sessions.push_back(engine.CreateSessionOnNode(node));
  }
  if (with_processing) {
    // Preload the index so lookups do real work.
    std::vector<KeyValue> kvs;
    size_t rr = 0;
    for (Key k = 0; k < n;) {
      kvs.clear();
      for (int i = 0; i < 8192 && k < n; ++i, ++k) kvs.push_back({k, k});
      sessions[rr++ % sessions.size()]->Insert(idx, kvs);
    }
  }
  engine.resource_usage().Reset();

  // Route single-key commands (the paper's data command granularity for
  // this experiment): batching happens purely in the outgoing buffers.
  Xoshiro256 rng(9);
  // Submit enough commands per wait-turn that the outgoing buffers can
  // actually fill to the configured threshold for every target, and
  // interleave the generating sessions so the traffic originates from every
  // node (as it does when the AEUs generate commands).
  const size_t kSubmit = std::max<size_t>(
      512, static_cast<size_t>(buffer_commands) * 16);
  uint64_t sent = 0;
  while (sent < commands) {
    std::vector<uint64_t> expected(sessions.size(), 0);
    for (auto& s : sessions) s->sink().Reset();
    for (size_t i = 0; i < kSubmit; ++i) {
      size_t si = i % sessions.size();
      Engine::Session& s = *sessions[si];
      Key k = rng.NextBounded(n);
      if (with_processing) {
        // A lookup data command carries a batch of keys in its data
        // segment (paper Section 3.2); use 8 consecutive keys so the
        // command stays within one partition.
        Key batch[8];
        Key base = std::min<Key>(k, n - 8);
        for (int b = 0; b < 8; ++b) batch[b] = base + b;
        expected[si] += s.endpoint().SendLookupBatch(idx, batch, &s.sink());
      } else {
        // Raw routing: a fence completes without touching any partition.
        routing::AeuId target =
            engine.router().range_table(idx)->OwnerOf(k);
        expected[si] += s.endpoint().SendControl(
            target, routing::CommandType::kFence, idx, {}, &s.sink());
      }
    }
    for (size_t si = 0; si < sessions.size(); ++si) {
      sessions[si]->Wait(expected[si]);
    }
    sent += kSubmit;
  }
  // Charge the senders' routing CPU (clients act as the generating AEUs in
  // this experiment): routing_cpu per command + flush copy cost.
  const sim::CostModelParams& p = engine.cost_model().params();
  uint64_t flushed = 0;
  uint64_t flushes = 0;
  for (auto& s : sessions) {
    flushed += s->endpoint().stats().bytes_flushed;
    flushes += s->endpoint().stats().flushes;
  }
  // In the paper the AEUs themselves generate the commands during query
  // processing; spread the generation work over all of them (they already
  // carry the processing cost in the same compute slots).
  double sender_ns =
      (static_cast<double>(sent) * p.routing_cpu_ns +
       static_cast<double>(flushed) / p.copy_gbps +
       static_cast<double>(flushes) * engine.cost_model().FlushOverheadNs(0)) /
      engine.num_aeus();
  for (uint32_t w = 0; w < engine.num_aeus(); ++w) {
    engine.resource_usage().AddComputeNs(w, sender_ns);
  }

  RoutingResult result;
  double secs = engine.resource_usage().CriticalTimeNs() / 1e9;
  result.mcmds_per_s = sent / secs / 1e6;
  result.link_gbps = engine.resource_usage().TotalLinkBytes() / secs / 1e9;
  engine.Stop();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Figure 5",
         "Data Command Routing Throughput as a Function of Local Buffer "
         "Size (AMD)",
         "raw = AEUs skip the processing phase; +lookups = commands probe "
         "the index.\nBuffer size 1 doubles as the no-pre-buffering "
         "ablation.");
  const uint64_t commands = quick ? 1u << 14 : 1u << 16;
  Table table({"buffer (cmds)", "raw Mcmds/s", "raw link GB/s",
               "+lookups Mcmds/s", "+lookups scalar-route Mcmds/s"});
  for (uint32_t buf : {1u, 4u, 16u, 64u, 128u, 512u, 2048u, 8192u}) {
    RoutingResult raw = RunRouting(buf, false, commands);
    RoutingResult proc = RunRouting(buf, true, commands);
    RoutingResult scalar_route =
        RunRouting(buf, true, commands, /*batch_owner=*/false);
    table.Row({FmtU(buf), Fmt("%.1f", raw.mcmds_per_s),
               Fmt("%.2f", raw.link_gbps), Fmt("%.1f", proc.mcmds_per_s),
               Fmt("%.1f", scalar_route.mcmds_per_s)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: raw throughput grows with the buffer size until "
      "the links saturate;\nwith processing the curve flattens early (the "
      "lookups dominate).\n");
  return 0;
}
