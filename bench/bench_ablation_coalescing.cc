// Ablation: command coalescing / scan sharing on vs off.
//
// Fires k concurrent full-column scans; with coalescing the AEUs answer
// every scan command that arrived in the same loop pass with one shared
// physical pass (MVCC keeps isolation), so the modeled memory traffic and
// time stay nearly flat in k; without sharing both grow linearly. The
// "off" configuration is emulated by fencing between scans so commands can
// never meet in a buffer.
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_util/drivers.h"
#include "bench_util/report.h"

using namespace eris;
using namespace eris::bench;
using core::Engine;

namespace {

struct AblationResult {
  double secs;
  uint64_t mc_bytes;
  uint64_t coalesced;
};

AblationResult Run(uint32_t k, bool shared_pass) {
  MachineSpec machine = AmdMachine();
  core::EngineOptions opts = SimEngineOptions(machine, 512);
  Engine engine(opts);
  storage::ObjectId col = engine.CreateColumn("facts");
  engine.Start();
  auto session = engine.CreateSession();
  {
    std::vector<storage::Value> values(1u << 20, 7);
    session->Append(col, values);
  }
  engine.resource_usage().Reset();

  if (shared_pass) {
    // Submit all k scans before pumping: they arrive in one drain and the
    // AEUs answer them with one shared pass.
    routing::AggregateSink& sink = session->sink();
    sink.Reset();
    uint64_t expected = 0;
    routing::ScanParams params;
    params.snapshot_ts = engine.oracle().ReadTs();
    for (uint32_t i = 0; i < k; ++i) {
      expected += session->endpoint().SendScanColumn(col, params, &sink);
    }
    session->Wait(expected);
  } else {
    for (uint32_t i = 0; i < k; ++i) {
      session->ScanColumn(col);  // waits per scan: no coalescing possible
    }
  }
  AblationResult r;
  r.secs = engine.resource_usage().CriticalTimeNs() / 1e9;
  r.mc_bytes = engine.resource_usage().TotalMemCtrlBytes();
  r.coalesced = 0;
  for (routing::AeuId a = 0; a < engine.num_aeus(); ++a) {
    r.coalesced += engine.aeu(a).loop_stats().scans_coalesced;
  }
  engine.Stop();
  return r;
}

}  // namespace

int main() {
  Banner("Ablation", "Command coalescing / scan sharing on vs off",
         "k concurrent full scans of an 8 M-entry column on AMD (modeled "
         "time & traffic).");
  Table table({"k scans", "shared secs", "serial secs", "speedup",
               "shared MC bytes", "serial MC bytes", "cmds coalesced"});
  for (uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
    AblationResult on = Run(k, true);
    AblationResult off = Run(k, false);
    table.Row({FmtU(k), Fmt("%.4f", on.secs), Fmt("%.4f", off.secs),
               Fmt("%.1fx", off.secs / on.secs), HumanCount(on.mc_bytes),
               HumanCount(off.mc_bytes), FmtU(on.coalesced)});
  }
  table.Print();
  std::printf(
      "\nWith scan sharing the column is streamed once per loop pass no "
      "matter how many\nscan commands coalesce; without it every scan pays "
      "the full memory traffic.\n");
  return 0;
}
