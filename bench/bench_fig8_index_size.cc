// Figure 8: lookup and upsert throughput as a function of index size,
// ERIS vs the NUMA-agnostic shared index, on all three machines.
//
// Paper shapes to reproduce: on the small Intel machine the shared index
// wins for small indexes (ERIS pays its routing overhead) and loses for
// large ones; on the AMD machine ERIS reaches ~1.6x at 1B keys; on the SGI
// machine ~3.5x at 16B keys. Upserts behave like lookups at lower absolute
// throughput.
#include <cstdio>
#include <cstring>

#include "bench_util/drivers.h"
#include "bench_util/report.h"

using namespace eris::bench;

namespace {

void RunMachine(const MachineSpec& machine, const std::vector<uint64_t>& sizes,
                double scale, uint64_t ops) {
  std::printf("--- %s (sizes scaled 1/%.0f; throughput in modeled Mops/s)\n",
              machine.name.c_str(), scale);
  Table table({"keys", "ERIS lookup", "shared lookup", "ratio",
               "ERIS upsert", "shared upsert", "ratio"});
  for (uint64_t keys : sizes) {
    PointOpsConfig cfg(machine);
    cfg.num_keys = keys;
    cfg.ops = ops;
    cfg.scale = scale;
    RunResult el = RunErisPointOps(cfg);
    RunResult sl = RunSharedPointOps(cfg);
    cfg.upserts = true;
    RunResult eu = RunErisPointOps(cfg);
    RunResult su = RunSharedPointOps(cfg);
    table.Row({HumanCount(keys), Fmt("%.1f", el.mops()),
               Fmt("%.1f", sl.mops()), Fmt("%.2fx", el.mops() / sl.mops()),
               Fmt("%.1f", eu.mops()), Fmt("%.1f", su.mops()),
               Fmt("%.2fx", eu.mops() / su.mops())});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Figure 8", "Lookup/Upsert Throughput Depending on Index Size",
         "ERIS vs NUMA-agnostic shared index (interleaved memory, atomic "
         "updates).\nThroughput from the deterministic cost model; sizes & "
         "LLC down-scaled together.");
  const uint64_t ops = quick ? 1u << 16 : 1u << 18;
  const uint64_t kM = 1ull << 20;
  const uint64_t kG = 1ull << 30;
  RunMachine(IntelMachine(), {16 * kM, 64 * kM, 256 * kM, kG, 2 * kG}, 512,
             ops);
  RunMachine(AmdMachine(), {16 * kM, 64 * kM, 256 * kM, kG, 2 * kG}, 512,
             ops);
  RunMachine(SgiMachine(), {16 * kM, 256 * kM, 2 * kG, 16 * kG, 32 * kG},
             1024, ops);
  return 0;
}
