// Figure 1: index lookup and column scan scalability of ERIS on the SGI
// UV 2000, sweeping the number of multiprocessors from 1 to 64.
//
// Paper shapes: more-than-linear lookup speedup (the aggregate LLC grows
// with the node count while each partition shrinks) and linear scan
// scaling limited only by the local memory bandwidth of each node.
#include <cstdio>
#include <cstring>

#include "bench_util/drivers.h"
#include "bench_util/report.h"

using namespace eris::bench;

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Figure 1",
         "Index Lookup and Column Scan Scalability of ERIS on the SGI UV "
         "2000",
         "1 B keys (lookups), 8 B entries (scans); speedup relative to one "
         "multiprocessor.\nLookups scale superlinearly (growing aggregate "
         "cache); scans scale with the aggregate\nlocal memory bandwidth.");

  // Constant work per AEU across the sweep (otherwise sampling noise over
  // hundreds of AEUs masks the scaling at high node counts).
  const uint64_t ops_per_node = quick ? 1u << 13 : 1u << 15;
  const double scale = 512;
  Table table({"nodes", "cores", "lookup Mops/s", "lookup speedup",
               "per-node speedup", "scan GB/s", "scan speedup"});
  double lookup_base = 0;
  double scan_base = 0;
  for (uint32_t nodes : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    MachineSpec machine = SgiMachine(nodes);
    PointOpsConfig lookup_cfg(machine);
    lookup_cfg.num_keys = 1ull << 30;
    lookup_cfg.ops = ops_per_node * nodes;
    lookup_cfg.scale = scale;
    RunResult lookup = RunErisPointOps(lookup_cfg);

    ScanConfig scan_cfg(machine);
    scan_cfg.entries = 1ull << 33;
    scan_cfg.scale = scale;
    scan_cfg.repeats = 2;
    RunResult scan = RunErisScan(scan_cfg);
    double scan_gbps = scan.mc_gbps();

    if (nodes == 1) {
      lookup_base = lookup.mops();
      scan_base = scan_gbps;
    }
    double speedup = lookup.mops() / lookup_base;
    table.Row({FmtU(nodes), FmtU(nodes * 8), Fmt("%.0f", lookup.mops()),
               Fmt("%.1fx", speedup), Fmt("%.2f", speedup / nodes),
               Fmt("%.0f", scan_gbps),
               Fmt("%.1fx", scan_gbps / scan_base)});
  }
  table.Print();
  std::printf(
      "\nper-node speedup > 1.00 at higher node counts = superlinear "
      "lookup scaling\n(each node adds LLC while partitions shrink).\n");
  return 0;
}
