// Ablation: the AEU index choice — generalized prefix tree vs B+-tree vs
// per-partition hash table (paper Section 4: "We decided to use a prefix
// tree, because this index structure is order-preserving (applies not to a
// hash table), in-memory optimized, and offers a high update performance
// (does not apply to a B+-Tree).")
//
// Host-measured single-writer performance of the three candidates at
// several sizes: random inserts, random lookups, and an ordered range
// scan (which the hash table cannot serve at all).
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util/report.h"
#include "common/rng.h"
#include "common/bit_util.h"
#include "common/stopwatch.h"
#include "numa/memory_manager.h"
#include "storage/bplus_tree.h"
#include "storage/hash_table.h"
#include "storage/prefix_tree.h"

using namespace eris;
using namespace eris::bench;
using storage::Key;
using storage::Value;

namespace {

struct Numbers {
  double insert_ns;
  double lookup_ns;
  double scan_ns_per_row;  // < 0: unsupported
};

template <typename BuildFn, typename LookupFn, typename ScanFn>
Numbers Measure(uint64_t n, uint64_t lookups, BuildFn&& build,
                LookupFn&& lookup, ScanFn&& scan) {
  Xoshiro256 rng(42);
  // The paper's workload: keys uniform in a dense domain (4x the key
  // count). Note the duplicate draws: ~22% of inserts hit existing keys,
  // identical for every structure.
  std::vector<Key> keys(n);
  for (auto& k : keys) k = rng.NextBounded(n * 4);
  Stopwatch watch;
  build(keys);
  Numbers out;
  out.insert_ns = watch.ElapsedNanos() / static_cast<double>(n);

  std::vector<Key> probes(lookups);
  for (auto& p : probes) p = keys[rng.NextBounded(n)];
  watch.Restart();
  uint64_t hits = lookup(probes);
  out.lookup_ns = watch.ElapsedNanos() / static_cast<double>(lookups);
  if (hits != lookups && hits != 0) std::printf("lookup miss anomaly\n");

  watch.Restart();
  uint64_t rows = scan();
  out.scan_ns_per_row =
      rows == 0 ? -1.0 : watch.ElapsedNanos() / static_cast<double>(rows);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Ablation",
         "AEU index structure: prefix tree vs B+-tree vs hash table",
         "Host-measured ns/op, single writer, dense key domain (paper setup); scan = "
         "full ordered sweep.");
  const uint64_t lookups = quick ? 200000 : 1000000;
  Table table({"keys", "structure", "insert ns", "lookup ns",
               "scan ns/row", "order-preserving"});
  std::vector<uint64_t> sizes{1u << 18, 1u << 20};
  if (!quick) sizes.push_back(1u << 22);
  for (uint64_t n : sizes) {
    {
      numa::NodeMemoryManager mm(0);
      storage::PrefixTree tree(
          &mm, {.prefix_bits = 8,
                .key_bits = static_cast<uint32_t>(Log2Ceil(n * 4))});
      Numbers r = Measure(
          n, lookups,
          [&](const std::vector<Key>& keys) {
            for (Key k : keys) tree.Upsert(k, k);
          },
          [&](const std::vector<Key>& probes) {
            uint64_t hits = 0;
            for (Key p : probes) hits += tree.Lookup(p).has_value();
            return hits;
          },
          [&] {
            uint64_t rows = 0;
            tree.ForEach([&](Key, Value) { ++rows; });
            return rows;
          });
      table.Row({HumanCount(n), "prefix tree", Fmt("%.0f", r.insert_ns),
                 Fmt("%.0f", r.lookup_ns), Fmt("%.1f", r.scan_ns_per_row),
                 "yes"});
    }
    {
      numa::NodeMemoryManager mm(0);
      storage::BPlusTree tree(&mm);
      Numbers r = Measure(
          n, lookups,
          [&](const std::vector<Key>& keys) {
            for (Key k : keys) tree.Upsert(k, k);
          },
          [&](const std::vector<Key>& probes) {
            uint64_t hits = 0;
            for (Key p : probes) hits += tree.Lookup(p).has_value();
            return hits;
          },
          [&] {
            uint64_t rows = 0;
            tree.ForEach([&](Key, Value) { ++rows; });
            return rows;
          });
      table.Row({HumanCount(n), "B+-tree", Fmt("%.0f", r.insert_ns),
                 Fmt("%.0f", r.lookup_ns), Fmt("%.1f", r.scan_ns_per_row),
                 "yes"});
    }
    {
      numa::NodeMemoryManager mm(0);
      storage::HashTable ht(&mm, 7);
      Numbers r = Measure(
          n, lookups,
          [&](const std::vector<Key>& keys) {
            for (Key k : keys) ht.Upsert(k, k);
          },
          [&](const std::vector<Key>& probes) {
            uint64_t hits = 0;
            for (Key p : probes) hits += ht.Lookup(p).has_value();
            return hits;
          },
          [] { return uint64_t{0}; });  // no ordered scan
      table.Row({HumanCount(n), "hash table", Fmt("%.0f", r.insert_ns),
                 Fmt("%.0f", r.lookup_ns), "n/a", "no"});
    }
  }
  table.Print();
  std::printf(
      "\nThe paper's choice: the prefix tree is order preserving (unlike "
      "the hash table)\nand writes without sorted-array shifts or splits "
      "(unlike the B+-tree), at lookup\ncosts comparable to both.\n");
  return 0;
}
