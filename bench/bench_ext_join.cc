// Extension bench (DESIGN.md §13): fused multi-column pipelines and the
// NUMA-aware MPSM sort-merge join, in deterministic simulated time.
//
//   pipeline  the same filter→aggregate plan over a clustered two-column
//             group, fused (one pass, zone pruning, selection vectors in
//             cache) vs operator-at-a-time (full pass per operator with a
//             materialized index vector), swept over filter selectivity.
//             Acceptance: fused ≥ 2x at selectivity ≤ 10%.
//   join      MPSM sort-merge join vs the shared-hash baseline on multi-
//             node topologies after a skew-driven rebalance misaligns the
//             R/S partition boundaries. The metric is the sim cost model's
//             TotalLinkBytes: MPSM crosses links only for boundary-
//             straddling ranges, the baseline for every hash-routed probe.
//             Acceptance: MPSM link bytes ≤ 25% of shared-hash.
//
// Results go to BENCH_join.json for cross-PR tracking. `--smoke` runs the
// reduced sweep and exits non-zero when fused drops below 1.5x at
// selectivity ≤ 10% or MPSM stops beating the shared-hash baseline on
// link bytes — wired into scripts/tier1.sh.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util/report.h"
#include "common/rng.h"
#include "query/join.h"
#include "query/pipeline.h"

using namespace eris;
using namespace eris::bench;
using core::Engine;
using core::EngineOptions;
using core::ExecutionMode;
using routing::KeyValue;
using storage::Key;
using storage::ObjectId;
using storage::Value;

namespace {

EngineOptions SimOpts(uint32_t nodes, uint32_t cores) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(nodes, cores);
  opts.mode = ExecutionMode::kSimulated;
  opts.sim.enabled = true;
  return opts;
}

// --- pipeline fusion: selectivity sweep ------------------------------------

struct PipelinePoint {
  uint64_t selectivity_pct = 0;
  uint64_t rows_selected = 0;
  double fused_ms = 0;      ///< sim critical time of the fused pipeline
  double baseline_ms = 0;   ///< sim critical time, operator-at-a-time
  double fused_mb = 0;      ///< operator bytes streamed, fused
  double baseline_mb = 0;   ///< operator bytes streamed, baseline
  uint64_t pruned_segments = 0;
  double speedup() const { return fused_ms > 0 ? baseline_ms / fused_ms : 0; }
};

uint64_t SumPipelineBytes(Engine& engine, uint64_t* pruned) {
  uint64_t bytes = 0;
  *pruned = 0;
  for (uint32_t a = 0; a < engine.num_aeus(); ++a) {
    const core::AeuLoopStats& s = engine.aeu(a).loop_stats();
    bytes += s.pipeline_filter_bytes + s.pipeline_filter2_bytes +
             s.pipeline_agg_bytes;
    *pruned += s.pipeline_segments_pruned;
  }
  return bytes;
}

/// Clustered driving column (monotone 0..99, long runs) + random aggregate
/// column: the analytics layout where zone maps carry the fusion win.
std::vector<PipelinePoint> RunPipelineSweep(uint64_t rows,
                                            std::span<const uint64_t> sels) {
  Engine engine(SimOpts(2, 4));
  engine.Start();
  query::PipelineRunner runner(&engine);
  query::ColumnGroup group = runner.CreateColumnGroup("g", 2);

  Xoshiro256 rng(9);
  std::vector<Value> keys(rows), vals(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    keys[i] = i * 100 / rows;  // clustered: value v spans rows/100 rows
    vals[i] = rng.NextBounded(1u << 20);
  }
  std::vector<std::span<const Value>> cols = {keys, vals};
  runner.AppendRows(group, cols);

  auto& usage = engine.resource_usage();
  std::vector<PipelinePoint> points;
  for (uint64_t sel : sels) {
    query::PipelineQuery q;
    q.filter_column = group[0];
    q.filter = {0, sel - 1};  // selects values 0..sel-1 = sel% of the rows
    q.agg_column = group[1];

    PipelinePoint p;
    p.selectivity_pct = sel;
    uint64_t pruned0 = 0, pruned1 = 0, pruned2 = 0;
    uint64_t bytes0 = SumPipelineBytes(engine, &pruned0);

    usage.Reset();
    query::PipelineResult fused = runner.Run(q, /*fused=*/true);
    p.fused_ms = usage.CriticalTimeNs() / 1e6;
    uint64_t bytes1 = SumPipelineBytes(engine, &pruned1);

    usage.Reset();
    query::PipelineResult baseline = runner.Run(q, /*fused=*/false);
    p.baseline_ms = usage.CriticalTimeNs() / 1e6;
    uint64_t bytes2 = SumPipelineBytes(engine, &pruned2);

    if (fused.rows != baseline.rows || fused.sum != baseline.sum) {
      std::fprintf(stderr, "pipeline mismatch at sel %llu%%\n",
                   static_cast<unsigned long long>(sel));
      std::exit(2);
    }
    p.rows_selected = fused.rows;
    p.fused_mb = (bytes1 - bytes0) / 1e6;
    p.baseline_mb = (bytes2 - bytes1) / 1e6;
    p.pruned_segments = pruned1 - pruned0;
    points.push_back(p);
  }
  engine.Stop();
  return points;
}

// --- MPSM join vs shared hash: cross-link bytes ----------------------------

struct JoinPoint {
  uint32_t nodes = 0;
  uint32_t cores = 0;
  uint64_t matches = 0;
  uint64_t mpsm_link_bytes = 0;
  uint64_t shared_link_bytes = 0;
  uint64_t entries_local = 0;      ///< staged entries that stayed on-AEU
  uint64_t entries_exchanged = 0;  ///< entries routed across AEUs
  double link_ratio() const {
    return shared_link_bytes > 0
               ? static_cast<double>(mpsm_link_bytes) / shared_link_bytes
               : 0;
  }
};

JoinPoint RunJoin(uint32_t nodes, uint32_t cores, uint64_t keys_per_side) {
  const Key kDomain = 1u << 16;
  Engine engine(SimOpts(nodes, cores));
  ObjectId r = engine.CreateIndex("r", kDomain,
                                  {.prefix_bits = 8, .key_bits = 16});
  ObjectId s = engine.CreateIndex("s", kDomain,
                                  {.prefix_bits = 8, .key_bits = 16});
  ObjectId s_hashed = engine.CreateHashedIndex(
      "s_hashed", kDomain, {.prefix_bits = 8, .key_bits = 16});
  engine.Start();
  query::JoinRunner runner(&engine);

  Xoshiro256 rng(77);
  std::vector<KeyValue> r_kvs, s_kvs;
  for (uint64_t i = 0; i < keys_per_side; ++i) {
    r_kvs.push_back({rng.NextBounded(kDomain), 1});
    s_kvs.push_back({rng.NextBounded(kDomain), 2});
  }
  runner.session().Insert(r, r_kvs);
  runner.session().Insert(s, s_kvs);
  runner.session().Insert(s_hashed, s_kvs);

  // Drift R's boundaries away from S's uniform ones: uniform background
  // lookups plus a moderately hot window, then a one-shot rebalance. Every
  // shifted boundary produces a straddling range MPSM must exchange — the
  // realistic misalignment, without collapsing R onto the hot spot.
  std::vector<Key> all_keys, hot;
  for (const KeyValue& kv : r_kvs) all_keys.push_back(kv.key);
  for (Key k = 0; k < kDomain / 8; ++k) hot.push_back(k);
  runner.session().Lookup(r, all_keys);
  runner.session().Lookup(r, all_keys);
  runner.session().Lookup(r, hot);
  core::LoadBalancerConfig balance;
  balance.algorithm = core::BalanceAlgorithm::kOneShot;
  balance.trigger_cv = 0.05;
  balance.min_total_accesses = 1;
  engine.RebalanceObject(r, balance);

  JoinPoint p;
  p.nodes = nodes;
  p.cores = cores;

  engine.resource_usage().Reset();
  query::MergeJoinResult mpsm = runner.MergeJoin(r, s);
  p.mpsm_link_bytes = engine.resource_usage().TotalLinkBytes();
  for (uint32_t a = 0; a < engine.num_aeus(); ++a) {
    const core::AeuLoopStats& st = engine.aeu(a).loop_stats();
    p.entries_local += st.join_entries_local;
    p.entries_exchanged += st.join_entries_exchanged;
  }

  engine.resource_usage().Reset();
  query::MergeJoinResult shared = runner.SharedHashJoin(r, s_hashed);
  p.shared_link_bytes = engine.resource_usage().TotalLinkBytes();

  if (mpsm.matches != shared.matches || mpsm.key_sum != shared.key_sum) {
    std::fprintf(stderr, "join mismatch: mpsm %llu vs shared %llu\n",
                 static_cast<unsigned long long>(mpsm.matches),
                 static_cast<unsigned long long>(shared.matches));
    std::exit(2);
  }
  p.matches = mpsm.matches;
  engine.Stop();
  return p;
}

// --- report -----------------------------------------------------------------

void WriteJson(const std::vector<PipelinePoint>& pipeline,
               const std::vector<JoinPoint>& joins) {
  std::FILE* f = std::fopen("BENCH_join.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_join.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ext_join\",\n");
  std::fprintf(f, "  \"pipeline\": [\n");
  for (size_t i = 0; i < pipeline.size(); ++i) {
    const PipelinePoint& p = pipeline[i];
    std::fprintf(f,
                 "    {\"selectivity_pct\": %llu, \"fused_sim_ms\": %.4f, "
                 "\"baseline_sim_ms\": %.4f, \"fused_mb\": %.2f, "
                 "\"baseline_mb\": %.2f, \"pruned_segments\": %llu, "
                 "\"speedup\": %.2f}%s\n",
                 static_cast<unsigned long long>(p.selectivity_pct),
                 p.fused_ms, p.baseline_ms, p.fused_mb, p.baseline_mb,
                 static_cast<unsigned long long>(p.pruned_segments),
                 p.speedup(), i + 1 < pipeline.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"join\": [\n");
  for (size_t i = 0; i < joins.size(); ++i) {
    const JoinPoint& p = joins[i];
    std::fprintf(f,
                 "    {\"nodes\": %u, \"cores_per_node\": %u, "
                 "\"matches\": %llu, \"mpsm_link_bytes\": %llu, "
                 "\"shared_link_bytes\": %llu, \"link_ratio\": %.3f, "
                 "\"entries_local\": %llu, \"entries_exchanged\": %llu}%s\n",
                 p.nodes, p.cores,
                 static_cast<unsigned long long>(p.matches),
                 static_cast<unsigned long long>(p.mpsm_link_bytes),
                 static_cast<unsigned long long>(p.shared_link_bytes),
                 p.link_ratio(),
                 static_cast<unsigned long long>(p.entries_local),
                 static_cast<unsigned long long>(p.entries_exchanged),
                 i + 1 < joins.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote BENCH_join.json.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  Banner("Ext join",
         "Fused Pipelines and the NUMA-Aware MPSM Join (DESIGN.md §13)",
         "pipeline = fused vs operator-at-a-time over a clustered column "
         "group, by\nselectivity; join = MPSM vs shared-hash cross-link "
         "bytes after a rebalance\nmisaligns the partition boundaries.");
  const bool small = quick || smoke;

  // Pipeline: enough rows that every partition spans several segments, so
  // zone maps have something to prune (2 nodes x 4 cores; full size gives
  // 16 segments per partition).
  const uint64_t rows = small ? (1u << 21) : (1u << 23);
  const std::vector<uint64_t> sels = {1, 5, 10, 25};
  std::vector<PipelinePoint> pipeline = RunPipelineSweep(rows, sels);
  Table pt({"selectivity", "rows", "fused sim ms", "baseline sim ms",
            "fused MB", "baseline MB", "pruned segs", "speedup"});
  for (const PipelinePoint& p : pipeline) {
    pt.Row({FmtU(p.selectivity_pct) + "%",
            FmtU(p.rows_selected), Fmt("%.4f", p.fused_ms),
            Fmt("%.4f", p.baseline_ms), Fmt("%.2f", p.fused_mb),
            Fmt("%.2f", p.baseline_mb), FmtU(p.pruned_segments),
            Fmt("%.2fx", p.speedup())});
  }
  pt.Print();

  // Join: the smoke topology matches the differential suite's sim case;
  // the full run adds a wider machine.
  std::vector<JoinPoint> joins;
  joins.push_back(RunJoin(4, 2, small ? 40000 : 80000));
  if (!small) joins.push_back(RunJoin(8, 2, 80000));
  Table jt({"topology", "matches", "MPSM link B", "shared link B", "ratio",
            "staged local", "exchanged"});
  for (const JoinPoint& p : joins) {
    char topo[32];
    std::snprintf(topo, sizeof topo, "%ux%u", p.nodes, p.cores);
    jt.Row({topo, FmtU(p.matches), FmtU(p.mpsm_link_bytes),
            FmtU(p.shared_link_bytes), Fmt("%.3f", p.link_ratio()),
            FmtU(p.entries_local), FmtU(p.entries_exchanged)});
  }
  jt.Print();
  std::printf(
      "\nMPSM keeps the bulk of every sorted run on its owning AEU; only "
      "boundary-\nstraddling ranges cross links. The shared-hash baseline "
      "routes every probe to\na hash-chosen owner — all-to-all traffic the "
      "ratio column measures.\n");

  WriteJson(pipeline, joins);

  if (smoke) {
    // Regression gate (tier-1): fused must hold 1.5x at selectivity <= 10%
    // (acceptance target is 2x; 1.5x is the regression floor), and MPSM
    // must cross strictly fewer link bytes than the shared-hash baseline.
    bool ok = true;
    for (const PipelinePoint& p : pipeline) {
      if (p.selectivity_pct <= 10 && p.speedup() < 1.5) {
        std::fprintf(stderr,
                     "SMOKE FAIL: fused %.4f ms vs baseline %.4f ms at "
                     "sel %llu%% = %.2fx < 1.5x\n",
                     p.fused_ms, p.baseline_ms,
                     static_cast<unsigned long long>(p.selectivity_pct),
                     p.speedup());
        ok = false;
      }
    }
    for (const JoinPoint& p : joins) {
      if (p.mpsm_link_bytes >= p.shared_link_bytes) {
        std::fprintf(stderr,
                     "SMOKE FAIL: MPSM link bytes %llu >= shared-hash %llu "
                     "on %ux%u\n",
                     static_cast<unsigned long long>(p.mpsm_link_bytes),
                     static_cast<unsigned long long>(p.shared_link_bytes),
                     p.nodes, p.cores);
        ok = false;
      }
    }
    std::printf(ok ? "\nSMOKE OK: fused >= 1.5x at sel <= 10%% and MPSM "
                     "link bytes < shared-hash.\n"
                   : "\nSMOKE: regression detected.\n");
    return ok ? 0 : 1;
  }
  return 0;
}
