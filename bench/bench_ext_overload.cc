// Extension bench (overload control): goodput and p99 submit latency versus
// offered load, with and without admission control.
//
// A kThreads 1x4 engine is hammered by an increasing number of client
// threads that all write into a hot key range (concentrated on one AEU, the
// paper's worst-case skew for the routing layer). Every submit carries a
// 5 ms deadline, so an overloaded engine answers with typed rejections
// instead of unbounded queueing. The experiment contrasts:
//   admission=off  (budget 0)  — overload is absorbed by deadlines alone;
//   admission=on   (budget N)  — excess work is rejected at the door before
//                                it can queue, protecting tail latency.
// Results go to BENCH_overload.json for cross-PR tracking.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util/report.h"
#include "common/histogram.h"
#include "common/stopwatch.h"
#include "core/engine.h"

using namespace eris;
using namespace eris::bench;
using core::Engine;
using core::EngineOptions;
using routing::KeyValue;
using storage::Key;

namespace {

constexpr uint64_t kDomain = 1u << 16;
constexpr Key kHotRange = 1u << 12;  // lands on one AEU of four
constexpr uint64_t kAdmissionBudget = 256;
constexpr uint64_t kDeadlineNs = 5'000'000;  // 5 ms
// Big enough that the top of the client sweep (8 x 64 = 512 units possibly
// in flight) exceeds the admission budget, so the gate actually engages.
constexpr uint32_t kBatch = 64;

struct LoadPoint {
  uint32_t clients = 0;
  bool admission = false;
  uint64_t offered_units = 0;
  uint64_t accepted_units = 0;
  uint64_t rejected_submits = 0;
  double goodput_units_per_s = 0;
  double p99_submit_ms = 0;
  double secs = 0;
};

LoadPoint RunLoad(uint32_t clients, bool admission, uint32_t batches) {
  EngineOptions opts;
  opts.topology = numa::Topology::Flat(1, 4);
  opts.mode = core::ExecutionMode::kThreads;
  opts.pin_threads = false;  // clients + AEUs oversubscribe small hosts
  opts.router.incoming_capacity_bytes = 1u << 14;  // overload is reachable
  opts.router.flush_threshold_bytes = 1u << 10;
  opts.overload.max_inflight_units = admission ? kAdmissionBudget : 0;
  opts.overload.default_deadline_ns = kDeadlineNs;
  Engine engine(opts);
  storage::ObjectId idx =
      engine.CreateIndex("kv", kDomain, {.prefix_bits = 8, .key_bits = 16});
  engine.Start();

  // Latency in microseconds; 20 ms ceiling (deadline + slack) is plenty.
  Histogram latency(0, 20'000, 2000);
  std::mutex merge_lock;
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};

  Stopwatch wall;
  std::vector<std::thread> workers;
  for (uint32_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      auto session = engine.CreateSession();
      Histogram local(0, 20'000, 2000);
      std::vector<KeyValue> kvs(kBatch);
      for (uint32_t b = 0; b < batches; ++b) {
        for (uint32_t i = 0; i < kBatch; ++i) {
          // Hot range: every client fights over the same AEU's keys.
          kvs[i] = {(c * 131 + b * kBatch + i) % kHotRange, b};
        }
        Engine::Session::SubmitOutcome out;
        Stopwatch watch;
        Status st = session->SubmitUpsert(idx, kvs, &out);
        local.Add(static_cast<double>(watch.ElapsedNanos()) / 1000.0);
        if (st.ok()) {
          accepted.fetch_add(out.units, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> guard(merge_lock);
      latency.Merge(local);
    });
  }
  for (std::thread& t : workers) t.join();
  double secs = wall.ElapsedSeconds();
  engine.Stop();

  LoadPoint p;
  p.clients = clients;
  p.admission = admission;
  p.offered_units = static_cast<uint64_t>(clients) * batches * kBatch;
  p.accepted_units = accepted.load();
  p.rejected_submits = rejected.load();
  p.goodput_units_per_s = secs > 0 ? p.accepted_units / secs : 0;
  p.p99_submit_ms = latency.Quantile(0.99) / 1000.0;
  p.secs = secs;
  return p;
}

void WriteJson(const std::vector<LoadPoint>& points) {
  std::FILE* f = std::fopen("BENCH_overload.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_overload.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ext_overload\",\n");
  std::fprintf(f, "  \"admission_budget\": %llu,\n",
               static_cast<unsigned long long>(kAdmissionBudget));
  std::fprintf(f, "  \"deadline_ms\": %.1f,\n", kDeadlineNs / 1e6);
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    std::fprintf(f,
                 "    {\"clients\": %u, \"admission\": %s, "
                 "\"offered_units\": %llu, \"accepted_units\": %llu, "
                 "\"rejected_submits\": %llu, "
                 "\"goodput_units_per_s\": %.3e, \"p99_submit_ms\": %.3f}%s\n",
                 p.clients, p.admission ? "true" : "false",
                 static_cast<unsigned long long>(p.offered_units),
                 static_cast<unsigned long long>(p.accepted_units),
                 static_cast<unsigned long long>(p.rejected_submits),
                 p.goodput_units_per_s, p.p99_submit_ms,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote BENCH_overload.json.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Banner("Ext overload",
         "Goodput and p99 Submit Latency vs Offered Load",
         "1x4 kThreads engine, hot-range upserts, 5 ms deadlines; "
         "admission budget 256 units vs unlimited.");

  const uint32_t batches = quick ? 200 : 1000;
  std::vector<uint32_t> client_sweep =
      quick ? std::vector<uint32_t>{1, 4} : std::vector<uint32_t>{1, 2, 4, 8};

  std::vector<LoadPoint> points;
  Table table({"clients", "admission", "offered", "accepted", "rejected",
               "goodput units/s", "p99 submit ms", "secs"});
  for (bool admission : {false, true}) {
    for (uint32_t clients : client_sweep) {
      LoadPoint p = RunLoad(clients, admission, batches);
      points.push_back(p);
      table.Row({FmtU(p.clients), p.admission ? "on" : "off",
                 FmtU(p.offered_units), FmtU(p.accepted_units),
                 FmtU(p.rejected_submits), Fmt("%.3e", p.goodput_units_per_s),
                 Fmt("%.3f", p.p99_submit_ms), Fmt("%.2f", p.secs)});
    }
  }
  table.Print();
  WriteJson(points);
  return 0;
}
