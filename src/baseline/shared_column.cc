#include "baseline/shared_column.h"

#include "common/logging.h"

namespace eris::baseline {

SharedColumn::SharedColumn(numa::MemoryPool* pool, Placement placement)
    : pool_(pool), placement_(placement) {
  ERIS_CHECK(pool != nullptr);
}

SharedColumn::~SharedColumn() {
  for (const Segment& s : segments_) {
    pool_->manager(s.home).Free(s.data, kSegmentValues * 8);
  }
}

void SharedColumn::Append(storage::Value v) {
  size_t offset = size_ % kSegmentValues;
  if (offset == 0 && size_ == segments_.size() * kSegmentValues) {
    numa::NodeId home = placement_ == Placement::kSingleNode
                            ? 0
                            : pool_->NextInterleavedNode();
    auto* data = static_cast<storage::Value*>(
        pool_->manager(home).Allocate(kSegmentValues * 8));
    segments_.push_back(Segment{data, home});
  }
  segments_.back().data[offset] = v;
  ++size_;
}

uint64_t SharedColumn::ScanSumSlice(uint64_t row_begin, uint64_t row_end,
                                    storage::Value lo,
                                    storage::Value hi) const {
  uint64_t sum = 0;
  row_end = std::min(row_end, size_);
  for (uint64_t r = row_begin; r < row_end;) {
    size_t seg = r / kSegmentValues;
    size_t off = r % kSegmentValues;
    size_t n = std::min<uint64_t>(kSegmentValues - off, row_end - r);
    const storage::Value* data = segments_[seg].data + off;
    for (size_t i = 0; i < n; ++i) {
      storage::Value v = data[i];
      sum += (v >= lo && v <= hi) ? v : 0;
    }
    r += n;
  }
  return sum;
}

numa::NodeId SharedColumn::HomeOfRow(uint64_t r) const {
  return segments_[r / kSegmentValues].home;
}

}  // namespace eris::baseline
