#include "baseline/shared_tree.h"

namespace eris::baseline {

SharedTree::SharedTree(numa::MemoryPool* pool,
                       storage::PrefixTreeConfig config, Placement placement)
    : pool_(pool), config_(config), placement_(placement) {
  ERIS_CHECK(pool != nullptr);
  fanout_ = 1u << config.prefix_bits;
  levels_ =
      static_cast<uint32_t>(CeilDiv(config.key_bits, config.prefix_bits));
}

SharedTree::~SharedTree() {
  // Node memory is drawn from per-node arenas; returning it block-by-block
  // would require remembering each node's home manager. The benches destroy
  // the whole MemoryPool after the run, which reclaims the arenas at once.
}

numa::NodeMemoryManager& SharedTree::NextManager() {
  if (placement_ == Placement::kSingleNode) return pool_->manager(0);
  return pool_->manager(pool_->NextInterleavedNode());
}

SharedTree::NodePtr SharedTree::NewNode(size_t bytes) {
  // The per-node managers' thread caches make concurrent allocation cheap.
  void* node = NextManager().Allocate(bytes);
  std::memset(node, 0, bytes);
  memory_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  return node;
}

bool SharedTree::Put(storage::Key key, storage::Value value, bool overwrite) {
  // Publish the root if missing.
  NodePtr node = root_.load(std::memory_order_acquire);
  if (node == nullptr) {
    NodePtr fresh = NewNode(levels_ == 1 ? LeafBytes() : InteriorBytes());
    if (root_.compare_exchange_strong(node, fresh,
                                      std::memory_order_acq_rel)) {
      node = fresh;
    }
    // else: another thread won; `node` holds the winner. Fresh node leaks
    // into the arena (freed with the pool).
  }
  for (uint32_t level = 0; !IsLeafLevel(level); ++level) {
    auto* children = static_cast<NodePtr*>(node);
    std::atomic_ref<NodePtr> slot(children[Digit(key, level)]);
    NodePtr child = slot.load(std::memory_order_acquire);
    if (child == nullptr) {
      NodePtr fresh =
          NewNode(IsLeafLevel(level + 1) ? LeafBytes() : InteriorBytes());
      if (slot.compare_exchange_strong(child, fresh,
                                       std::memory_order_acq_rel)) {
        child = fresh;
      }
    }
    node = child;
  }
  // Leaf: set the value, then publish the presence bit with release order.
  auto* values = static_cast<storage::Value*>(node);
  auto* bitmap = reinterpret_cast<uint64_t*>(values + fanout_);
  uint32_t slot = Digit(key, levels_ - 1);
  std::atomic_ref<uint64_t> word(bitmap[slot >> 6]);
  uint64_t mask = uint64_t{1} << (slot & 63);
  bool present = (word.load(std::memory_order_acquire) & mask) != 0;
  if (present && !overwrite) return false;
  if (present) {
    std::atomic_ref<storage::Value>(values[slot])
        .store(value, std::memory_order_release);
    return false;
  }
  std::atomic_ref<storage::Value>(values[slot])
      .store(value, std::memory_order_relaxed);
  uint64_t prev = word.fetch_or(mask, std::memory_order_acq_rel);
  if (prev & mask) {
    // Concurrent insert of the same key: treat as overwrite.
    if (overwrite) {
      std::atomic_ref<storage::Value>(values[slot])
          .store(value, std::memory_order_release);
    }
    return false;
  }
  size_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool SharedTree::Insert(storage::Key key, storage::Value value) {
  return Put(key, value, /*overwrite=*/false);
}

bool SharedTree::Upsert(storage::Key key, storage::Value value) {
  return Put(key, value, /*overwrite=*/true);
}

std::optional<storage::Value> SharedTree::Lookup(storage::Key key) const {
  NodePtr node = root_.load(std::memory_order_acquire);
  if (node == nullptr) return std::nullopt;
  for (uint32_t level = 0; level + 1 < levels_; ++level) {
    auto* children = static_cast<NodePtr*>(node);
    node = std::atomic_ref<NodePtr>(children[Digit(key, level)])
               .load(std::memory_order_acquire);
    if (node == nullptr) return std::nullopt;
  }
  auto* values = static_cast<storage::Value*>(node);
  auto* bitmap = reinterpret_cast<uint64_t*>(values + fanout_);
  uint32_t slot = Digit(key, levels_ - 1);
  uint64_t word = std::atomic_ref<uint64_t>(bitmap[slot >> 6])
                      .load(std::memory_order_acquire);
  if (!((word >> (slot & 63)) & 1)) return std::nullopt;
  return std::atomic_ref<storage::Value>(values[slot])
      .load(std::memory_order_acquire);
}

}  // namespace eris::baseline
