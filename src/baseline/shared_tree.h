// NUMA-agnostic shared prefix tree — the paper's baseline.
//
// The same generalized prefix tree as storage::PrefixTree, but unpartitioned
// and accessed by many threads concurrently, so updates synchronize with
// atomic instructions (CAS child publication, release/acquire leaf bits)
// instead of the data-oriented single-writer discipline. Node memory is
// spread over the NUMA nodes according to the configured placement
// (interleaved round-robin — the numactl --interleave=all setup of the
// evaluation — or a single node).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <optional>

#include "common/bit_util.h"
#include "common/logging.h"
#include "numa/memory_manager.h"
#include "storage/prefix_tree.h"
#include "storage/types.h"

namespace eris::baseline {

enum class Placement : uint8_t {
  kInterleaved = 0,  ///< allocations round-robin over all nodes
  kSingleNode = 1,   ///< everything on node 0
};

/// \brief Latch-free concurrent prefix tree (insert/upsert/lookup).
class SharedTree {
 public:
  SharedTree(numa::MemoryPool* pool, storage::PrefixTreeConfig config = {},
             Placement placement = Placement::kInterleaved);
  ~SharedTree();

  SharedTree(const SharedTree&) = delete;
  SharedTree& operator=(const SharedTree&) = delete;

  /// Thread-safe insert; returns true when the key was new.
  bool Insert(storage::Key key, storage::Value value);
  /// Thread-safe insert-or-overwrite; returns true when the key was new.
  bool Upsert(storage::Key key, storage::Value value);
  /// Thread-safe lookup.
  std::optional<storage::Value> Lookup(storage::Key key) const;

  uint64_t size() const { return size_.load(std::memory_order_relaxed); }
  uint64_t memory_bytes() const {
    return memory_bytes_.load(std::memory_order_relaxed);
  }
  uint32_t levels() const { return levels_; }
  const storage::PrefixTreeConfig& config() const { return config_; }
  Placement placement() const { return placement_; }

 private:
  using NodePtr = void*;

  uint32_t Digit(storage::Key key, uint32_t level) const {
    uint32_t shift = (levels_ - 1 - level) * config_.prefix_bits;
    return static_cast<uint32_t>((key >> shift) & (fanout_ - 1));
  }
  bool IsLeafLevel(uint32_t level) const { return level + 1 == levels_; }
  size_t InteriorBytes() const { return sizeof(NodePtr) * fanout_; }
  size_t LeafBytes() const {
    return sizeof(storage::Value) * fanout_ +
           sizeof(uint64_t) * ((fanout_ + 63) / 64);
  }

  numa::NodeMemoryManager& NextManager();
  NodePtr NewNode(size_t bytes);

  bool Put(storage::Key key, storage::Value value, bool overwrite);

  numa::MemoryPool* pool_;
  storage::PrefixTreeConfig config_;
  Placement placement_;
  uint32_t fanout_;
  uint32_t levels_;
  std::atomic<NodePtr> root_{nullptr};
  std::atomic<uint64_t> size_{0};
  std::atomic<uint64_t> memory_bytes_{0};
};

}  // namespace eris::baseline
