// NUMA-agnostic shared column — the baseline for the scan experiments.
//
// One large column whose memory is placed either entirely on a single node
// ("Single RAM" in Figure 9) or interleaved over all nodes ("Interleaved").
// Worker threads scan disjoint row slices in parallel; no partitioning, no
// locality.
#pragma once

#include <cstdint>
#include <vector>

#include "baseline/shared_tree.h"
#include "numa/memory_manager.h"
#include "storage/types.h"

namespace eris::baseline {

/// \brief Read-only shared column with explicit placement.
class SharedColumn {
 public:
  static constexpr size_t kSegmentValues = 64 * 1024;

  SharedColumn(numa::MemoryPool* pool, Placement placement);
  ~SharedColumn();

  SharedColumn(const SharedColumn&) = delete;
  SharedColumn& operator=(const SharedColumn&) = delete;

  /// Bulk append (single-threaded build phase).
  void Append(storage::Value v);

  uint64_t size() const { return size_; }
  uint64_t memory_bytes() const { return segments_.size() * kSegmentValues * 8; }
  Placement placement() const { return placement_; }

  /// Sums values in [lo, hi] over rows [row_begin, row_end) — the slice a
  /// worker thread scans.
  uint64_t ScanSumSlice(uint64_t row_begin, uint64_t row_end,
                        storage::Value lo, storage::Value hi) const;

  /// Home node of row `r` under the placement (for the cost model).
  numa::NodeId HomeOfRow(uint64_t r) const;

 private:
  struct Segment {
    storage::Value* data;
    numa::NodeId home;
  };

  numa::MemoryPool* pool_;
  Placement placement_;
  std::vector<Segment> segments_;
  uint64_t size_ = 0;
};

}  // namespace eris::baseline
