// Latch-free double incoming buffer (adapted from LLAMA's multi-buffer).
//
// Every AEU owns two equally sized incoming buffers. At any time one buffer
// is writable by all other AEUs and the other is being processed by the
// owner. Each buffer carries a 64-bit descriptor:
//
//     bit 63      : active      (buffer currently accepts writers)
//     bits 62..32 : writers     (number of in-flight writers, 31 bits)
//     bits 31..0  : offset      (allocated bytes)
//
// A writer reserves space by CAS-ing offset += len, writers += 1 into the
// descriptor of the active buffer, copies its records, then atomically
// decrements writers. The owner swaps the buffers by activating the other
// buffer, clearing the active bit of the full one, and waiting until its
// writer count drains to zero; the drained buffer is then processed without
// any synchronization. Multiple AEUs can thus write in parallel with a
// single atomic each, and the owner never takes a latch.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "common/bit_util.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/spinlock.h"

namespace eris::routing {

/// Descriptor bit manipulation (exposed for tests).
namespace descriptor {
inline constexpr uint64_t kActiveBit = uint64_t{1} << 63;
inline constexpr uint64_t kWriterOne = uint64_t{1} << 32;
inline constexpr uint64_t kWriterMask = ((uint64_t{1} << 31) - 1) << 32;
inline constexpr uint64_t kOffsetMask = (uint64_t{1} << 32) - 1;

inline bool Active(uint64_t d) { return (d & kActiveBit) != 0; }
inline uint32_t Writers(uint64_t d) {
  return static_cast<uint32_t>((d & kWriterMask) >> 32);
}
inline uint32_t Offset(uint64_t d) {
  return static_cast<uint32_t>(d & kOffsetMask);
}
inline uint64_t Make(bool active, uint32_t writers, uint32_t offset) {
  return (active ? kActiveBit : 0) |
         (static_cast<uint64_t>(writers) << 32) | offset;
}
}  // namespace descriptor

/// \brief The double incoming buffer of one AEU.
class IncomingBufferPair {
 public:
  /// `capacity_bytes` per buffer (rounded up to 8).
  explicit IncomingBufferPair(size_t capacity_bytes);
  ~IncomingBufferPair();

  IncomingBufferPair(const IncomingBufferPair&) = delete;
  IncomingBufferPair& operator=(const IncomingBufferPair&) = delete;

  /// Attempts to append `data` (one or more whole records, 8-byte padded)
  /// to the currently writable buffer. Returns false when the buffer has no
  /// room — the caller keeps the data buffered and retries after the owner
  /// swaps. Thread-safe, latch-free.
  bool TryWrite(std::span<const uint8_t> data);

  /// Gather variant: reserves the total size once and copies every piece
  /// back to back (used to deliver unicast bytes plus referenced multicast
  /// commands in one reservation).
  bool TryWriteGather(std::span<const std::span<const uint8_t>> pieces);

  /// Owner side: swaps buffers, waits for in-flight writers on the swapped-
  /// out buffer, and invokes fn(bytes) with the filled region (possibly
  /// empty). Single-threaded with respect to itself.
  template <typename Fn>
  size_t Drain(Fn&& fn) {
    uint32_t old_idx = writable_idx_.load(std::memory_order_relaxed);
    uint32_t new_idx = old_idx ^ 1;
    // The processed buffer was drained previously; reactivate it.
    desc_[new_idx].store(descriptor::Make(true, 0, 0),
                         std::memory_order_release);
    writable_idx_.store(new_idx, std::memory_order_release);
    // A writer that read the old index here still reserves on the old
    // buffer until the deactivation below lands — the window the
    // perturbation point stretches so stress runs actually exercise it.
    ERIS_INJECT_POINT(kIncomingSwap);
    // Deactivate the filled buffer; further CAS attempts on it fail.
    uint64_t prev =
        desc_[old_idx].fetch_and(~descriptor::kActiveBit,
                                 std::memory_order_acq_rel);
    // Wait until in-flight writers finished copying.
    while (descriptor::Writers(
               desc_[old_idx].load(std::memory_order_acquire)) != 0) {
      ERIS_INJECT_POINT(kIncomingDrainWait);
      CpuRelax();
    }
    size_t filled = std::min<size_t>(descriptor::Offset(prev), capacity_);
    std::span<const uint8_t> region(buffers_[old_idx], filled);
    fn(region);
    // Reset offset so the next swap starts clean (buffer stays inactive
    // until the next Drain re-activates it).
    desc_[old_idx].store(descriptor::Make(false, 0, 0),
                         std::memory_order_release);
    return filled;
  }

  size_t capacity() const { return capacity_; }

  /// Seals the mailbox: every TryWrite/TryWriteGather fails immediately, as
  /// if the buffer were permanently full. The watchdog seals the mailbox of
  /// a quarantined AEU so producers shed instead of queueing into it; Drain
  /// by the (possibly recovered) owner still works.
  void Seal() { sealed_.store(true, std::memory_order_release); }
  void Unseal() { sealed_.store(false, std::memory_order_release); }
  bool sealed() const { return sealed_.load(std::memory_order_acquire); }

  /// Bytes currently queued in the writable buffer (approximate).
  size_t PendingBytes() const {
    uint32_t idx = writable_idx_.load(std::memory_order_acquire);
    return std::min<size_t>(
        descriptor::Offset(desc_[idx].load(std::memory_order_acquire)),
        capacity_);
  }

 private:
  size_t capacity_;
  uint8_t* buffers_[2];
  std::atomic<uint64_t> desc_[2];
  std::atomic<uint32_t> writable_idx_{0};
  std::atomic<bool> sealed_{false};
};

}  // namespace eris::routing
