// Partition tables: the routing layer's map from data to AEUs.
//
// Range-partitioned objects use a RangePartitionTable mapping key intervals
// to owning AEUs, stored in a CSB+-tree (fast for sparse boundaries, scales
// with the number of AEUs). Physically partitioned objects use a
// BitmapPartitionTable that only records which AEUs hold a partition.
//
// Both tables are small, frequently read, and rarely updated (only by the
// load balancer); readers are wait-free via an atomically swapped immutable
// snapshot, so lookups never take a latch and the table stays cached in
// every multiprocessor.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "common/logging.h"
#include "routing/data_command.h"
#include "storage/csb_tree.h"
#include "storage/types.h"

namespace eris::routing {

/// One range entry: keys in [previous hi, hi) belong to `owner`.
struct RangeEntry {
  storage::Key hi;  ///< exclusive upper bound; last entry must be kMaxKey
  AeuId owner;
};

/// \brief Immutable-snapshot range partition table.
class RangePartitionTable {
 public:
  /// Builds the initial table. Entries must be sorted by strictly
  /// increasing `hi` and the final `hi` must be storage::kMaxKey so the
  /// whole domain is covered.
  explicit RangePartitionTable(std::vector<RangeEntry> entries);

  /// Entries uniformly splitting [0, domain_hi) over `aeus` (the engine's
  /// default initial partitioning); the last range extends to kMaxKey.
  static std::vector<RangeEntry> UniformEntries(std::span<const AeuId> aeus,
                                                storage::Key domain_hi);

  /// Owner of `key`. Wait-free.
  AeuId OwnerOf(storage::Key key) const;

  /// Batch variant used by the router's step-1 batch lookup. Resolves one
  /// key at a time (scalar CSB+-tree descent); kept as the reference path
  /// for differential tests and ablation benches.
  void OwnersOf(std::span<const storage::Key> keys, AeuId* owners) const;

  /// Prefetch-pipelined batch owner resolution. Descends the CSB+-tree for
  /// the whole batch level-synchronously with software prefetch of each
  /// probe's next node, so the descents of a batch overlap their cache
  /// misses instead of serializing them. The entire batch is resolved
  /// against a single immutable snapshot: a concurrent Replace() never
  /// splits a batch across two table versions.
  void BatchOwnerOf(std::span<const storage::Key> keys, AeuId* owners) const;

  /// Owners covering [lo, hi): ascending, deduplicated.
  std::vector<AeuId> OwnersOfRange(storage::Key lo, storage::Key hi) const;

  /// Current entries (copy of the immutable snapshot).
  std::vector<RangeEntry> Snapshot() const;

  /// Atomically replaces the table (load balancer only).
  void Replace(std::vector<RangeEntry> entries);

  /// Number of ranges.
  size_t size() const;

  /// Bytes of the active search structure.
  size_t memory_bytes() const;

 private:
  struct Rep {
    std::vector<RangeEntry> entries;
    storage::CsbTree tree;  // keys = hi bounds, payloads = owners
  };
  static std::shared_ptr<const Rep> MakeRep(std::vector<RangeEntry> entries);
  std::shared_ptr<const Rep> Load() const {
    return rep_.load(std::memory_order_acquire);
  }

  std::atomic<std::shared_ptr<const Rep>> rep_;
};

/// \brief Presence bitmap for physically partitioned objects.
class BitmapPartitionTable {
 public:
  explicit BitmapPartitionTable(uint32_t num_aeus);

  void Set(AeuId aeu, bool present);
  bool Test(AeuId aeu) const;

  /// All AEUs currently holding a partition, ascending.
  std::vector<AeuId> Owners() const;
  uint32_t count() const;
  uint32_t num_aeus() const { return num_aeus_; }

 private:
  uint32_t num_aeus_;
  std::vector<std::atomic<uint64_t>> words_;
};

}  // namespace eris::routing
