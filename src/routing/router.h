// The NUMA-optimized high-throughput data command routing layer.
//
// The Router owns one incoming double buffer per AEU (the mailbox) and the
// partition tables of every registered data object. Command sources — AEUs
// during query processing, and client threads at the engine frontend —
// route through a private Endpoint that implements the three-step protocol
// of the paper's Figure 4:
//   (1) batch lookup of the responsible AEUs in the partition table,
//   (2) write commands (split per target) into private outgoing buffers;
//       multi-target commands go to the multicast buffer with per-target
//       references,
//   (3) when an outgoing buffer exceeds the configured size or the source's
//       processing loop wraps around, copy it into the target's incoming
//       buffer in one latch-free reservation.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "numa/memory_manager.h"
#include "numa/topology.h"
#include "routing/arena_vec.h"
#include "routing/data_command.h"
#include "routing/incoming_buffer.h"
#include "routing/outgoing.h"
#include "routing/partition_table.h"
#include "sim/resource_usage.h"
#include "storage/data_object.h"

namespace eris::routing {

/// Bounded-retry policy for outgoing-buffer delivery. A full (or sealed)
/// incoming buffer no longer spins forever: after `max_attempts`
/// *consecutive* failed deliveries to one target, that target's pending
/// commands are shed and their sinks notified with
/// DropReason::kRetryExhausted. Between attempts the endpoint backs off
/// with jittered exponential delays (deterministic per source, seeded via
/// common/rng.h) when `pace_with_time` is set — the engine enables pacing
/// only in kThreads mode, since simulated engines pump cooperatively and
/// must not wait on the wall clock.
struct DeliveryRetryPolicy {
  /// Consecutive delivery failures per target before shedding; 0 disables
  /// the cap. The default is effectively "never" for healthy targets (any
  /// successful delivery resets the count) while still bounding a stall.
  uint32_t max_attempts = 1u << 20;
  uint64_t backoff_base_ns = 2'000;
  uint64_t backoff_max_ns = 1'000'000;
  /// Multiplicative jitter: each delay is scaled by a uniform factor in
  /// [1 - jitter, 1 + jitter].
  double jitter = 0.5;
  /// Seed of the per-endpoint jitter streams (deterministic replay).
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// Gate retries on the wall clock (kThreads engines only).
  bool pace_with_time = false;
};

/// Jittered exponential backoff delay for the `attempt`-th consecutive
/// failure (attempt >= 1). Pure function of the policy and the rng state,
/// so a seeded replay reproduces the exact delay sequence.
uint64_t JitteredBackoffNs(const DeliveryRetryPolicy& policy, uint32_t attempt,
                           Xoshiro256& rng);

struct RouterConfig {
  /// Flush an outgoing buffer to its target once it holds this many bytes.
  /// This is the paper's "outgoing buffer size" knob (Figure 5).
  size_t flush_threshold_bytes = 32 * 1024;
  /// Capacity of each of the two incoming buffers per AEU.
  size_t incoming_capacity_bytes = 1 << 21;
  /// Keyed batches are split into per-target chunks of at most this many
  /// elements before encoding.
  size_t max_batch_elements = 1024;
  /// Resolve range-partitioned owners with the prefetch-pipelined batch
  /// descent (RangePartitionTable::BatchOwnerOf) instead of per-key probes.
  /// Off is the scalar reference path, kept for ablation benches.
  bool batch_owner_lookup = true;
  /// Bounded delivery retry (overload control).
  DeliveryRetryPolicy retry;
};

/// Statistics of one endpoint (private, unsynchronized).
struct EndpointStats {
  uint64_t commands_routed = 0;
  uint64_t bytes_flushed = 0;
  uint64_t flushes = 0;
  uint64_t commands_shed = 0;  ///< records dropped undelivered (retry cap
                               ///< reached or target stalled)
  uint64_t units_shed = 0;     ///< completion units of the shed records
};

class Router;

/// \brief Private routing front of one command source.
///
/// Not thread-safe; create one Endpoint per source thread.
class Endpoint {
 public:
  /// `source` is the sending AEU (or kInvalidAeu for clients); `node` is
  /// the NUMA node the source runs on (for traffic attribution). `memory`
  /// is the source's node-local allocator backing the endpoint's reusable
  /// scratch arena; null (stand-alone routing tests) falls back to the
  /// heap. Either way, scratch grows to the workload's high-water mark and
  /// is reused — steady-state sends perform zero allocations.
  Endpoint(Router* router, AeuId source, numa::NodeId node,
           numa::NodeMemoryManager* memory = nullptr);

  /// Routes a lookup batch, splitting keys by owning AEU.
  /// Returns the number of completion units (= keys.size()).
  size_t SendLookupBatch(storage::ObjectId object,
                         std::span<const storage::Key> keys,
                         ResultSink* sink);

  /// Routes insert/upsert key-value batches (type kInsertBatch or
  /// kUpsertBatch), splitting by owner.
  size_t SendWriteBatch(CommandType type, storage::ObjectId object,
                        std::span<const KeyValue> kvs, ResultSink* sink);

  /// Routes an erase batch, splitting by owner.
  size_t SendEraseBatch(storage::ObjectId object,
                        std::span<const storage::Key> keys, ResultSink* sink);

  /// Appends values to a physically partitioned column; the router spreads
  /// consecutive calls round-robin over the AEUs holding partitions.
  size_t SendAppendBatch(storage::ObjectId object,
                         std::span<const storage::Value> values,
                         ResultSink* sink);

  /// Appends to one specific AEU's partition. The query layer uses this to
  /// keep the member columns of a co-partitioned group row-aligned: every
  /// column of one row chunk lands on the same AEU, in the same order.
  size_t SendAppendTo(AeuId target, storage::ObjectId object,
                      std::span<const storage::Value> values,
                      ResultSink* sink);

  /// Multicasts a full-column scan to every AEU holding a partition.
  size_t SendScanColumn(storage::ObjectId object, const ScanParams& params,
                        ResultSink* sink);

  /// Multicasts a full-aggregate scan (rows/sum/min/max via OnScanStats).
  size_t SendScanStats(storage::ObjectId object, const ScanParams& params,
                       ResultSink* sink);

  /// Multicasts a materializing scan: every owner filters its partition and
  /// routes the matches as appends into `params.dest_object`.
  size_t SendScanMaterialize(storage::ObjectId object,
                             const MaterializeParams& params,
                             ResultSink* sink);

  /// Multicasts a join probe: every owner of the probe column routes its
  /// filtered values as lookups into `params.index_object`.
  size_t SendJoinProbe(storage::ObjectId object, const JoinProbeParams& params,
                       ResultSink* sink);

  /// Multicasts a fused pipeline plan to every owner of the driving filter
  /// column (`params.filter_object`); the group's other member columns are
  /// co-partitioned, so the same owners hold them.
  size_t SendPipeline(const PipelineParams& params, ResultSink* sink);

  /// Multicasts one MPSM join phase. kJoinScatter goes to the owners of
  /// `params.s_object`, kJoinMerge to the owners of `params.r_object`.
  size_t SendJoinPhase(CommandType type, const MergeJoinParams& params,
                       ResultSink* sink);

  /// Routes a sorted (key, value) run to the owners of `r_object`'s key
  /// ranges: per-target chunks of kJoinStage carrying a JoinStageParams
  /// prefix. Returns the number of commands routed (1 unit each).
  size_t SendJoinStage(storage::ObjectId r_object,
                       const JoinStageParams& params,
                       std::span<const KeyValue> entries, ResultSink* sink);

  /// Multicasts an index range scan to the AEUs owning [lo, hi).
  size_t SendScanIndexRange(storage::ObjectId object, storage::Key lo,
                            storage::Key hi, const ScanParams& params,
                            ResultSink* sink);

  /// Sends an engine-internal control command to one AEU.
  size_t SendControl(AeuId target, CommandType type, storage::ObjectId object,
                     std::span<const uint8_t> payload, ResultSink* sink);

  /// Delivers every pending outgoing buffer whose target accepts it.
  /// Returns true when everything was delivered (or shed).
  bool FlushAll();

  /// True when some outgoing buffer still holds undelivered commands.
  bool HasPending() const { return outgoing_.HasAnyPending(); }

  /// Absolute deadline (MonotonicNanos) stamped on every subsequently
  /// routed command whose header carries none; 0 disables stamping.
  void set_deadline_ns(uint64_t abs_ns) { deadline_ns_ = abs_ns; }
  uint64_t deadline_ns() const { return deadline_ns_; }

  const EndpointStats& stats() const { return stats_; }
  /// Delivery failures per target AEU (one bucket per target): which
  /// mailboxes reject deliveries and how often.
  const Histogram& flush_retry_histogram() const {
    return flush_retry_hist_;
  }
  AeuId source() const { return source_; }

 private:
  /// Encodes into the target buffer and flushes it when over threshold.
  void Unicast(AeuId target, const CommandHeader& header,
               std::span<const uint8_t> payload);
  void Multicast(std::span<const AeuId> targets, const CommandHeader& header,
                 std::span<const uint8_t> payload);
  /// Splits a keyed batch by owner and unicasts the chunks; returns the
  /// number of completion units (elements). E must start with its key.
  template <typename E>
  size_t SendKeyed(CommandType type, storage::ObjectId object,
                   std::span<const E> elements, ResultSink* sink);

  bool FlushTarget(AeuId target);
  /// Records one failed delivery to `target`; sheds its pending commands
  /// when the consecutive-failure cap is reached. Returns the new
  /// FlushTarget result (true when shedding cleared the backlog).
  bool RecordFlushFailure(AeuId target);
  /// Drops everything pending for `target`, notifying sinks with `reason`.
  void ShedTarget(AeuId target, DropReason reason);

  /// Per-target consecutive-failure state of the bounded retry policy.
  struct TargetRetry {
    uint32_t attempts = 0;
    uint64_t next_attempt_ns = 0;
  };

  Router* router_;
  AeuId source_;
  numa::NodeId node_;
  OutgoingSet outgoing_;
  EndpointStats stats_;
  Histogram flush_retry_hist_;
  Xoshiro256 backoff_rng_;
  uint64_t deadline_ns_ = 0;
  // Reusable scratch arena carved from the source's node-local memory
  // manager (see the constructor comment). Capacity only ever grows;
  // clear()/resize() recycle it, so after warm-up the send path never
  // allocates (fi::Point::kEndpointScratchAlloc counts violations).
  ArenaVec<TargetRetry> retry_;  ///< per-target bounded-retry bookkeeping
  ArenaVec<AeuId> owners_;
  ArenaVec<storage::Key> keys_;
  ArenaVec<uint32_t> group_order_;
  ArenaVec<uint32_t> bucket_count_;
  ArenaVec<uint8_t> chunk_;
  ArenaVec<std::span<const uint8_t>> pieces_;
};

/// \brief Shared routing state: mailboxes + partition tables.
class Router {
 public:
  /// Upper bound on registered data objects (tables can be created while
  /// the engine runs; the registry never reallocates).
  static constexpr size_t kMaxObjects = 256;

  /// `aeu_nodes[a]` is the NUMA node AEU `a` runs on.
  Router(std::vector<numa::NodeId> aeu_nodes, RouterConfig config = {});

  uint32_t num_aeus() const {
    return static_cast<uint32_t>(aeu_nodes_.size());
  }
  numa::NodeId NodeOfAeu(AeuId a) const { return aeu_nodes_[a]; }
  const RouterConfig& config() const { return config_; }

  IncomingBufferPair& mailbox(AeuId a) { return *mailboxes_[a]; }

  /// Marks AEU `a` stalled (watchdog quarantine): its mailbox is sealed and
  /// every endpoint fails fast — pending and future commands routed to it
  /// are shed with DropReason::kTargetStalled instead of blocking. Clearing
  /// the flag unseals the mailbox.
  void SetAeuStalled(AeuId a, bool stalled) {
    stalled_[a].store(stalled ? 1 : 0, std::memory_order_release);
    if (stalled) {
      mailboxes_[a]->Seal();
    } else {
      mailboxes_[a]->Unseal();
    }
  }
  bool IsAeuStalled(AeuId a) const {
    return stalled_[a].load(std::memory_order_acquire) != 0;
  }
  uint32_t StalledCount() const {
    uint32_t n = 0;
    for (AeuId a = 0; a < num_aeus(); ++a) n += IsAeuStalled(a) ? 1 : 0;
    return n;
  }

  /// Registers a data object's routing. Range-partitioned objects start
  /// with a uniform partitioning of [0, domain_hi) over all AEUs.
  void RegisterRangeObject(const storage::DataObjectDesc& desc,
                           storage::Key domain_hi);
  void RegisterPhysicalObject(const storage::DataObjectDesc& desc);
  /// Hash-partitioned keyed object: owner = Mix64(key) % num_aeus.
  void RegisterHashedObject(const storage::DataObjectDesc& desc);

  /// Owner lookup across partitioning kinds (range table or key hash).
  void OwnersOfKeys(storage::ObjectId object,
                    std::span<const storage::Key> keys, AeuId* owners) const;

  /// AEUs an index range scan over [lo, hi) must visit: the owning subset
  /// for range partitioning, every AEU for hash partitioning.
  std::vector<AeuId> OwnersOfKeyRange(storage::ObjectId object,
                                      storage::Key lo,
                                      storage::Key hi) const;

  RangePartitionTable* range_table(storage::ObjectId object) {
    return objects_[object]->range.get();
  }
  const RangePartitionTable* range_table(storage::ObjectId object) const {
    return objects_[object]->range.get();
  }
  BitmapPartitionTable* bitmap_table(storage::ObjectId object) {
    return objects_[object]->bitmap.get();
  }
  storage::PartitioningKind partitioning(storage::ObjectId object) const {
    return objects_[object]->kind;
  }
  size_t num_objects() const { return objects_.size(); }

  /// Round-robin target selection for appends to physical objects.
  AeuId PickAppendTarget(storage::ObjectId object);

  /// Optional simulated-traffic accounting: flushed bytes are charged to
  /// the route between source and target nodes.
  void set_resource_usage(sim::ResourceUsage* usage) { usage_ = usage; }
  sim::ResourceUsage* resource_usage() const { return usage_; }

 private:
  struct ObjectRouting {
    storage::PartitioningKind kind = storage::PartitioningKind::kRange;
    std::unique_ptr<RangePartitionTable> range;
    std::unique_ptr<BitmapPartitionTable> bitmap;
    std::atomic<uint64_t> append_cursor{0};
  };

  friend class Endpoint;

  std::vector<numa::NodeId> aeu_nodes_;
  RouterConfig config_;
  std::vector<std::unique_ptr<IncomingBufferPair>> mailboxes_;
  std::vector<std::unique_ptr<ObjectRouting>> objects_;
  /// Per-AEU watchdog quarantine flags (read on every flush).
  std::unique_ptr<std::atomic<uint8_t>[]> stalled_;
  sim::ResourceUsage* usage_ = nullptr;
};

}  // namespace eris::routing
