// Data commands: the unit of work routed between AEUs.
//
// A data command consists of a storage operation type, a data object
// identifier, a reference to a result sink (callback), and a data segment
// with the operation's parameters (a batch of keys for lookups, key/value
// pairs for upserts, filter bounds for scans). Commands are encoded as
// variable-length records, moved through the routing layer's buffers as raw
// bytes, and decoded by the receiving AEU.
//
// Record layout: CommandHeader followed by `payload_bytes` of payload.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/bit_util.h"
#include "common/logging.h"
#include "storage/types.h"

namespace eris::routing {

/// AEU identifier (dense, 0..num_aeus-1).
using AeuId = uint32_t;
inline constexpr AeuId kInvalidAeu = ~AeuId{0};

enum class CommandType : uint8_t {
  kLookupBatch = 0,   ///< payload: Key[]
  kInsertBatch,       ///< payload: KeyValue[]
  kUpsertBatch,       ///< payload: KeyValue[]
  kEraseBatch,        ///< payload: Key[]
  kAppendBatch,       ///< payload: Value[] (column append)
  kScanColumn,        ///< payload: ScanParams (multicast)
  kScanIndexRange,    ///< payload: ScanParams (range partitions)
  kBalanceRange,      ///< payload: BalanceRangeParams (+ transfer list)
  kBalancePhysical,   ///< payload: BalancePhysicalParams
  kTransferRequest,   ///< payload: TransferRequestParams
  kInstallPartition,  ///< payload: InstallParams + serialized partition
  kFence,             ///< barrier: acknowledge via sink
  // Query-processing commands (the paper's future-work layer):
  kScanStats,         ///< payload: ScanParams; full aggregates via OnScanStats
  kScanMaterialize,   ///< payload: MaterializeParams; routes matches onward
  kJoinProbe,         ///< payload: JoinProbeParams; routes index lookups
  // Fused query pipelines and the MPSM sort-merge join (DESIGN.md §13):
  kPipeline,          ///< payload: PipelineParams (multicast, fused operators)
  kJoinScatter,       ///< payload: MergeJoinParams (multicast to S owners)
  kJoinStage,         ///< payload: JoinStageParams + KeyValue[] (run exchange)
  kJoinMerge,         ///< payload: MergeJoinParams (multicast to R owners)
  // WAL-only effect records (never routed; see src/durability/wal.h):
  // rebalancing side effects an AEU applies to its own partition are logged
  // with these types so per-AEU replay reproduces transfers without any
  // cross-AEU coordination.
  kWalExtractRange,   ///< payload: KeyRange extracted out of the partition
  kWalSplitTail,      ///< payload: u64 trailing tuples split off (column)
  kWalSetRange,       ///< payload: KeyRange newly declared for the partition
};

const char* CommandTypeName(CommandType t);

/// Why a command was dropped instead of processed (overload control).
enum class DropReason : uint8_t {
  kRetryExhausted = 0,  ///< bounded delivery retry gave up (buffer full)
  kTargetStalled,       ///< target AEU quarantined by the watchdog
  kExpired,             ///< deadline passed before dequeue
  kQuarantined,         ///< poison command moved to the dead-letter log
  kWalSealed,           ///< target AEU's WAL sealed fail-stop (storage fault)
  kAllocFailed,         ///< arena/pool allocation failed (memory pressure)
};
inline constexpr size_t kNumDropReasons = 6;

const char* DropReasonName(DropReason r);

struct KeyValue {
  storage::Key key;
  storage::Value value;
};

/// Filter and snapshot parameters of a scan command.
struct ScanParams {
  storage::Value lo = 0;
  storage::Value hi = ~storage::Value{0};
  uint64_t snapshot_ts = ~uint64_t{0};
};

/// Payload of kScanIndexRange: key interval plus value filter/snapshot.
struct IndexScanParams {
  storage::Key key_lo = 0;
  storage::Key key_hi = ~storage::Key{0};  // exclusive
  ScanParams scan;
};

/// Payload of kScanMaterialize: filter the local column partition and route
/// the matching values as appends into `dest_object` (NUMA-local
/// materialization of intermediate results).
struct MaterializeParams {
  ScanParams scan;
  uint32_t dest_object = 0;
  uint32_t pad = 0;
};

class ResultSink;

/// Payload of kJoinProbe: treat the filtered values of the local column
/// partition as keys and route lookup batches into `index_object`; lookup
/// results are delivered to `lookup_sink` (in-process pointer, like the
/// header's callback reference).
struct JoinProbeParams {
  ScanParams filter;
  uint32_t index_object = 0;
  uint32_t pad = 0;
  ResultSink* lookup_sink = nullptr;
};

/// Sentinel for an unused pipeline column slot.
inline constexpr uint32_t kNoPipelineColumn = ~uint32_t{0};

/// Pipeline flag bits.
inline constexpr uint32_t kPipelineFused = 1u << 0;

/// Payload of kPipeline: a fused filter → [filter] → aggregate plan over a
/// co-partitioned column group (row i of every member column lives at the
/// same position of the same AEU's partition). The command is multicast; the
/// owning AEU executes the whole pipeline segment-at-a-time, carrying
/// selection vectors between operators, and reports (rows, sum) per
/// partition via OnScanPartial. Without kPipelineFused the AEU runs the
/// naive operator-at-a-time baseline: one full pass per operator with a
/// materialized intermediate index vector and no zone-map pruning (the
/// ablation bench_ext_join measures fusion against).
struct PipelineParams {
  uint64_t snapshot_ts = ~uint64_t{0};
  uint32_t filter_object = 0;                    ///< driving filter column
  uint32_t filter2_object = kNoPipelineColumn;   ///< optional second filter
  storage::Value lo = 0;
  storage::Value hi = ~storage::Value{0};
  storage::Value lo2 = 0;
  storage::Value hi2 = ~storage::Value{0};
  uint32_t agg_object = 0;                       ///< aggregated column
  uint32_t flags = kPipelineFused;
};

/// Payload of kJoinScatter / kJoinMerge: one MPSM sort-merge join round
/// between two range-partitioned keyed objects R and S (DESIGN.md §13).
/// Scatter is multicast to the owners of S: each sorts its local S run in
/// place and exchanges only the key ranges that straddle R's partition
/// boundaries (kJoinStage). Merge is multicast to the owners of R: each
/// merges its staged S run against its local sorted R run and reports
/// (matches, key_sum) to `result_sink` (in-process pointer, like the
/// header's callback reference).
/// Join execution strategy carried in MergeJoinParams.
enum class JoinStrategy : uint32_t {
  kMpsm = 0,        ///< sort-merge with boundary-range exchange
  kSharedHash = 1,  ///< scatter every R key as a lookup into hashed S
};

struct MergeJoinParams {
  uint64_t join_id = 0;
  uint32_t r_object = 0;
  uint32_t s_object = 0;
  JoinStrategy strategy = JoinStrategy::kMpsm;
  uint32_t pad = 0;
  ResultSink* result_sink = nullptr;
};

/// Prefix of the kJoinStage payload; the staged (key, value) run follows.
/// header.object carries r_object so rebalancing forwards staged entries
/// like any keyed batch.
struct JoinStageParams {
  uint64_t join_id = 0;
  ResultSink* result_sink = nullptr;
};

/// \brief Receives the results of data commands issued by one query.
///
/// Implementations must be thread-safe: every AEU owning an involved
/// partition calls into the sink. The routing layer guarantees exactly one
/// OnCommandComplete per delivered command.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Lookup batch processed: parallel arrays of the probed keys, result
  /// values, and hit flags.
  virtual void OnLookupBatch(std::span<const storage::Key> keys,
                             std::span<const storage::Value> values,
                             std::span<const bool> found) {
    (void)keys;
    (void)values;
    (void)found;
  }

  /// Scan over one partition finished with `rows` matching rows summing to
  /// `sum`.
  virtual void OnScanPartial(uint64_t rows, uint64_t sum) {
    (void)rows;
    (void)sum;
  }

  /// Write batch processed; `applied` entries took effect.
  virtual void OnWriteBatch(uint64_t applied) { (void)applied; }

  /// Full aggregates of a kScanStats command over one partition.
  virtual void OnScanStats(uint64_t rows, uint64_t sum, storage::Value min,
                           storage::Value max) {
    (void)rows;
    (void)sum;
    (void)min;
    (void)max;
  }

  /// Completion units: keyed batches complete per element (so forwarding a
  /// command during rebalancing preserves the total), scans and appends per
  /// command. The units delivered for a query sum to the value the Send*
  /// call returned.
  virtual void OnCommandComplete(uint64_t units) = 0;

  /// Command dropped by overload control (shed, expired, or quarantined)
  /// instead of processed. The default forwards to OnCommandComplete so the
  /// completion-unit accounting — and every existing Wait(expected) loop —
  /// still terminates; sinks that care about the distinction override this.
  virtual void OnCommandDropped(uint64_t units, DropReason reason) {
    (void)reason;
    OnCommandComplete(units);
  }
};

/// Aggregate sink: counts rows/hits/sums and completion. The standard sink
/// for benchmarks and most queries.
class AggregateSink : public ResultSink {
 public:
  void OnLookupBatch(std::span<const storage::Key>,
                     std::span<const storage::Value> values,
                     std::span<const bool> found) override {
    uint64_t hits = 0;
    uint64_t sum = 0;
    for (size_t i = 0; i < found.size(); ++i) {
      if (found[i]) {
        ++hits;
        sum += values[i];
      }
    }
    hits_.fetch_add(hits, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
    probes_.fetch_add(found.size(), std::memory_order_relaxed);
  }
  void OnScanPartial(uint64_t rows, uint64_t sum) override {
    hits_.fetch_add(rows, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
  }
  void OnWriteBatch(uint64_t applied) override {
    hits_.fetch_add(applied, std::memory_order_relaxed);
  }
  void OnScanStats(uint64_t rows, uint64_t sum, storage::Value min,
                   storage::Value max) override {
    hits_.fetch_add(rows, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
    if (rows > 0) {
      // Lock-free min/max merge.
      uint64_t cur = min_.load(std::memory_order_relaxed);
      while (min < cur &&
             !min_.compare_exchange_weak(cur, min, std::memory_order_relaxed)) {
      }
      cur = max_.load(std::memory_order_relaxed);
      while (max > cur &&
             !max_.compare_exchange_weak(cur, max, std::memory_order_relaxed)) {
      }
    }
  }
  void OnCommandComplete(uint64_t units) override {
    completed_.fetch_add(units, std::memory_order_release);
  }
  void OnCommandDropped(uint64_t units, DropReason reason) override {
    dropped_[static_cast<size_t>(reason)].fetch_add(units,
                                                    std::memory_order_relaxed);
    completed_.fetch_add(units, std::memory_order_release);
  }

  /// Completion units delivered so far (processed + dropped).
  uint64_t completed() const {
    return completed_.load(std::memory_order_acquire);
  }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t probes() const { return probes_.load(std::memory_order_relaxed); }

  /// Units dropped for `reason` (subset of completed()).
  uint64_t dropped(DropReason reason) const {
    return dropped_[static_cast<size_t>(reason)].load(
        std::memory_order_relaxed);
  }
  uint64_t dropped_total() const {
    uint64_t total = 0;
    for (const auto& d : dropped_) total += d.load(std::memory_order_relaxed);
    return total;
  }

  storage::Value min() const { return min_.load(std::memory_order_relaxed); }
  storage::Value max() const { return max_.load(std::memory_order_relaxed); }

  void Reset() {
    completed_ = 0;
    hits_ = 0;
    sum_ = 0;
    probes_ = 0;
    min_ = ~storage::Value{0};
    max_ = 0;
    for (auto& d : dropped_) d = 0;
  }

 private:
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> probes_{0};
  std::atomic<storage::Value> min_{~storage::Value{0}};
  std::atomic<storage::Value> max_{0};
  std::atomic<uint64_t> dropped_[kNumDropReasons] = {};
};

/// Fixed-size command header preceding the payload in every record.
struct CommandHeader {
  CommandType type = CommandType::kFence;
  uint8_t reserved = 0;
  uint16_t object = 0;
  AeuId source = kInvalidAeu;
  uint32_t payload_bytes = 0;
  uint32_t pad = 0;
  /// Absolute deadline (MonotonicNanos clock); 0 means none. Expired
  /// commands are dropped at dequeue instead of processed.
  uint64_t deadline_ns = 0;
  /// In-process reference to the result sink (the paper's "reference to a
  /// callback function"); null for engine-internal commands.
  ResultSink* sink = nullptr;
};
static_assert(sizeof(CommandHeader) == 32);
static_assert(std::is_trivially_copyable_v<CommandHeader>);

/// Decoded command record: header by value, payload in place.
/// Payloads are always padded to 8 bytes, and buffers are 8-byte aligned,
/// so typed payload views are correctly aligned.
struct CommandView {
  CommandHeader header;
  const uint8_t* payload = nullptr;

  template <typename T>
  std::span<const T> PayloadAs() const {
    static_assert(alignof(T) <= 8);
    ERIS_DCHECK(header.payload_bytes % sizeof(T) == 0);
    return {reinterpret_cast<const T*>(payload),
            header.payload_bytes / sizeof(T)};
  }
  size_t record_bytes() const {
    return sizeof(CommandHeader) + AlignUp(header.payload_bytes, 8);
  }
};

/// Completion units a command is worth: keyed batches count elements,
/// everything else counts one per command. Matches what processing would
/// deliver, so dropping a command can complete the same number of units.
uint64_t CommandUnits(const CommandView& v);

/// Serializes header+payload into `out` (appending), padding to 8 bytes.
/// `out` is any byte container with size()/resize()/data() — std::vector or
/// an arena-backed ArenaVec<uint8_t> on the zero-allocation send paths
/// (resize may leave new bytes uninitialized; every byte is overwritten).
template <typename ByteVec>
void EncodeCommand(CommandHeader header, std::span<const uint8_t> payload,
                   ByteVec* out) {
  header.payload_bytes = static_cast<uint32_t>(payload.size());
  size_t padded = AlignUp(payload.size(), 8);
  size_t pos = out->size();
  ERIS_DCHECK(pos % 8 == 0) << "records must stay 8-byte aligned";
  out->resize(pos + sizeof(CommandHeader) + padded);
  std::memcpy(out->data() + pos, &header, sizeof(CommandHeader));
  if (!payload.empty()) {
    std::memcpy(out->data() + pos + sizeof(CommandHeader), payload.data(),
                payload.size());
  }
  // Zero the pad bytes for determinism.
  if (padded != payload.size()) {
    std::memset(out->data() + pos + sizeof(CommandHeader) + payload.size(), 0,
                padded - payload.size());
  }
}

/// Parses one record at `data` (which must hold a full record).
inline CommandView DecodeCommand(const uint8_t* data) {
  CommandView v;
  std::memcpy(&v.header, data, sizeof(CommandHeader));
  v.payload = data + sizeof(CommandHeader);
  return v;
}

}  // namespace eris::routing
