#include "routing/data_command.h"

namespace eris::routing {

const char* CommandTypeName(CommandType t) {
  switch (t) {
    case CommandType::kLookupBatch: return "lookup-batch";
    case CommandType::kInsertBatch: return "insert-batch";
    case CommandType::kUpsertBatch: return "upsert-batch";
    case CommandType::kEraseBatch: return "erase-batch";
    case CommandType::kAppendBatch: return "append-batch";
    case CommandType::kScanColumn: return "scan-column";
    case CommandType::kScanIndexRange: return "scan-index-range";
    case CommandType::kBalanceRange: return "balance-range";
    case CommandType::kBalancePhysical: return "balance-physical";
    case CommandType::kTransferRequest: return "transfer-request";
    case CommandType::kInstallPartition: return "install-partition";
    case CommandType::kFence: return "fence";
    case CommandType::kScanStats: return "scan-stats";
    case CommandType::kScanMaterialize: return "scan-materialize";
    case CommandType::kJoinProbe: return "join-probe";
    case CommandType::kPipeline: return "pipeline";
    case CommandType::kJoinScatter: return "join-scatter";
    case CommandType::kJoinStage: return "join-stage";
    case CommandType::kJoinMerge: return "join-merge";
    case CommandType::kWalExtractRange: return "wal-extract-range";
    case CommandType::kWalSplitTail: return "wal-split-tail";
    case CommandType::kWalSetRange: return "wal-set-range";
  }
  return "unknown";
}

const char* DropReasonName(DropReason r) {
  switch (r) {
    case DropReason::kRetryExhausted: return "retry-exhausted";
    case DropReason::kTargetStalled: return "target-stalled";
    case DropReason::kExpired: return "expired";
    case DropReason::kQuarantined: return "quarantined";
    case DropReason::kWalSealed: return "wal-sealed";
    case DropReason::kAllocFailed: return "alloc-failed";
  }
  return "unknown";
}

uint64_t CommandUnits(const CommandView& v) {
  switch (v.header.type) {
    case CommandType::kLookupBatch:
    case CommandType::kEraseBatch:
      return v.header.payload_bytes / sizeof(storage::Key);
    case CommandType::kInsertBatch:
    case CommandType::kUpsertBatch:
      return v.header.payload_bytes / sizeof(KeyValue);
    default:
      return 1;
  }
}


}  // namespace eris::routing
