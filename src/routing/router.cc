#include "routing/router.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/stopwatch.h"

namespace eris::routing {

uint64_t JitteredBackoffNs(const DeliveryRetryPolicy& policy, uint32_t attempt,
                           Xoshiro256& rng) {
  if (policy.backoff_base_ns == 0) return 0;
  uint32_t shift = attempt > 0 ? attempt - 1 : 0;
  // Beyond ~2^40x the clamp below always wins; avoid shift overflow.
  uint64_t exp = shift >= 40 ? policy.backoff_max_ns
                             : policy.backoff_base_ns << shift;
  exp = std::min(std::max(exp, policy.backoff_base_ns), policy.backoff_max_ns);
  double factor = 1.0 + policy.jitter * (2.0 * rng.NextDouble() - 1.0);
  if (factor < 0.0) factor = 0.0;
  return static_cast<uint64_t>(static_cast<double>(exp) * factor);
}

Router::Router(std::vector<numa::NodeId> aeu_nodes, RouterConfig config)
    : aeu_nodes_(std::move(aeu_nodes)), config_(config) {
  ERIS_CHECK(!aeu_nodes_.empty());
  // Objects can be registered while the engine runs (query-layer
  // intermediates); reserving up front keeps readers safe from
  // reallocation.
  objects_.reserve(kMaxObjects);
  mailboxes_.reserve(aeu_nodes_.size());
  stalled_ = std::make_unique<std::atomic<uint8_t>[]>(aeu_nodes_.size());
  for (size_t i = 0; i < aeu_nodes_.size(); ++i) {
    mailboxes_.push_back(
        std::make_unique<IncomingBufferPair>(config_.incoming_capacity_bytes));
    stalled_[i].store(0, std::memory_order_relaxed);
  }
}

void Router::RegisterRangeObject(const storage::DataObjectDesc& desc,
                                 storage::Key domain_hi) {
  ERIS_CHECK_EQ(desc.id, objects_.size())
      << "objects must be registered with consecutive ids";
  ERIS_CHECK_LT(objects_.size(), kMaxObjects);
  ERIS_CHECK(desc.partitioning == storage::PartitioningKind::kRange);
  auto routing = std::make_unique<ObjectRouting>();
  routing->kind = storage::PartitioningKind::kRange;
  std::vector<AeuId> all(num_aeus());
  for (AeuId a = 0; a < num_aeus(); ++a) all[a] = a;
  routing->range = std::make_unique<RangePartitionTable>(
      RangePartitionTable::UniformEntries(all, domain_hi));
  objects_.push_back(std::move(routing));
}

void Router::RegisterPhysicalObject(const storage::DataObjectDesc& desc) {
  ERIS_CHECK_EQ(desc.id, objects_.size())
      << "objects must be registered with consecutive ids";
  ERIS_CHECK_LT(objects_.size(), kMaxObjects);
  ERIS_CHECK(desc.partitioning == storage::PartitioningKind::kPhysical);
  auto routing = std::make_unique<ObjectRouting>();
  routing->kind = storage::PartitioningKind::kPhysical;
  routing->bitmap = std::make_unique<BitmapPartitionTable>(num_aeus());
  // Physically partitioned objects start spread over every AEU.
  for (AeuId a = 0; a < num_aeus(); ++a) routing->bitmap->Set(a, true);
  objects_.push_back(std::move(routing));
}

void Router::RegisterHashedObject(const storage::DataObjectDesc& desc) {
  ERIS_CHECK_EQ(desc.id, objects_.size())
      << "objects must be registered with consecutive ids";
  ERIS_CHECK_LT(objects_.size(), kMaxObjects);
  ERIS_CHECK(desc.partitioning == storage::PartitioningKind::kHashed);
  auto routing = std::make_unique<ObjectRouting>();
  routing->kind = storage::PartitioningKind::kHashed;
  objects_.push_back(std::move(routing));
}

void Router::OwnersOfKeys(storage::ObjectId object,
                          std::span<const storage::Key> keys,
                          AeuId* owners) const {
  const ObjectRouting& routing = *objects_[object];
  if (routing.kind == storage::PartitioningKind::kHashed) {
    const uint64_t n = num_aeus();
    for (size_t i = 0; i < keys.size(); ++i) {
      owners[i] = static_cast<AeuId>(Mix64(keys[i]) % n);
    }
    return;
  }
  ERIS_CHECK(routing.range != nullptr) << "keyed command on non-keyed object";
  if (config_.batch_owner_lookup) {
    routing.range->BatchOwnerOf(keys, owners);
  } else {
    routing.range->OwnersOf(keys, owners);
  }
}

std::vector<AeuId> Router::OwnersOfKeyRange(storage::ObjectId object,
                                            storage::Key lo,
                                            storage::Key hi) const {
  const ObjectRouting& routing = *objects_[object];
  if (routing.kind == storage::PartitioningKind::kHashed) {
    // Hash partitioning is not order preserving: a range scan must visit
    // every partition (the cost the paper avoids with range partitioning).
    std::vector<AeuId> all(num_aeus());
    for (AeuId a = 0; a < num_aeus(); ++a) all[a] = a;
    return all;
  }
  ERIS_CHECK(routing.range != nullptr);
  return routing.range->OwnersOfRange(lo, hi);
}

AeuId Router::PickAppendTarget(storage::ObjectId object) {
  ObjectRouting& routing = *objects_[object];
  ERIS_CHECK(routing.bitmap != nullptr);
  std::vector<AeuId> owners = routing.bitmap->Owners();
  ERIS_CHECK(!owners.empty()) << "physical object with no partitions";
  uint64_t c =
      routing.append_cursor.fetch_add(1, std::memory_order_relaxed);
  return owners[c % owners.size()];
}

Endpoint::Endpoint(Router* router, AeuId source, numa::NodeId node,
                   numa::NodeMemoryManager* memory)
    : router_(router),
      source_(source),
      node_(node),
      outgoing_(router->num_aeus(), memory),
      flush_retry_hist_(0.0, static_cast<double>(router->num_aeus()),
                        router->num_aeus()),
      backoff_rng_(router->config().retry.seed ^ Mix64(source + 1)),
      retry_(memory),
      owners_(memory),
      keys_(memory),
      group_order_(memory),
      bucket_count_(memory),
      chunk_(memory),
      pieces_(memory) {
  retry_.assign(router->num_aeus(), TargetRetry{});
}

void Endpoint::Unicast(AeuId target, const CommandHeader& header,
                       std::span<const uint8_t> payload) {
  ERIS_INJECT_POINT(kRouterUnicast);
  CommandHeader h = header;
  // Stamp the endpoint deadline unless the command carries its own (a
  // forwarded command keeps the deadline of the original submit).
  if (h.deadline_ns == 0) h.deadline_ns = deadline_ns_;
  // Injected exchange-stream allocation failure: shed the command with a
  // typed drop (ResourceExhausted at the session) instead of growing.
  if (ERIS_INJECT_SHOULD_FAIL(kExchangeStreamAlloc)) {
    h.payload_bytes = static_cast<uint32_t>(payload.size());
    uint64_t units = CommandUnits(CommandView{h, payload.data()});
    stats_.units_shed += units;
    ++stats_.commands_shed;
    if (h.sink != nullptr)
      h.sink->OnCommandDropped(units, DropReason::kAllocFailed);
    return;
  }
  outgoing_.AppendUnicast(target, h, payload);
  ++stats_.commands_routed;
  if (outgoing_.PendingBytes(target) >=
      router_->config().flush_threshold_bytes) {
    FlushTarget(target);
  }
}

void Endpoint::Multicast(std::span<const AeuId> targets,
                         const CommandHeader& header,
                         std::span<const uint8_t> payload) {
  ERIS_INJECT_POINT(kRouterMulticast);
  CommandHeader h = header;
  if (h.deadline_ns == 0) h.deadline_ns = deadline_ns_;
  if (ERIS_INJECT_SHOULD_FAIL(kExchangeStreamAlloc)) {
    h.payload_bytes = static_cast<uint32_t>(payload.size());
    uint64_t units = CommandUnits(CommandView{h, payload.data()});
    for (AeuId t : targets) {
      (void)t;
      stats_.units_shed += units;
      ++stats_.commands_shed;
      if (h.sink != nullptr)
        h.sink->OnCommandDropped(units, DropReason::kAllocFailed);
    }
    return;
  }
  outgoing_.AppendMulticast(targets, h, payload);
  stats_.commands_routed += targets.size();
  for (AeuId t : targets) {
    if (outgoing_.PendingBytes(t) >= router_->config().flush_threshold_bytes) {
      FlushTarget(t);
    }
  }
}

void Endpoint::ShedTarget(AeuId target, DropReason reason) {
  size_t records = outgoing_.DropPending(target, &pieces_, [&](
                                             const CommandView& v) {
    uint64_t units = CommandUnits(v);
    stats_.units_shed += units;
    if (v.header.sink != nullptr) v.header.sink->OnCommandDropped(units, reason);
  });
  stats_.commands_shed += records;
}

bool Endpoint::RecordFlushFailure(AeuId target) {
  flush_retry_hist_.Add(static_cast<double>(target));
  const DeliveryRetryPolicy& rp = router_->config().retry;
  TargetRetry& rs = retry_[target];
  ++rs.attempts;
  if (rp.max_attempts != 0 && rs.attempts >= rp.max_attempts) {
    // Bounded retry exhausted: shed instead of spinning forever.
    rs.attempts = 0;
    ShedTarget(target, DropReason::kRetryExhausted);
    return true;  // backlog cleared (by shedding)
  }
  if (rp.pace_with_time) {
    rs.next_attempt_ns =
        MonotonicNanos() + JitteredBackoffNs(rp, rs.attempts, backoff_rng_);
  }
  return false;
}

bool Endpoint::FlushTarget(AeuId target) {
  // Fail fast on a quarantined target: commands routed to a stalled AEU
  // are shed immediately so producers (and Drain barriers) never block on
  // a mailbox nobody drains.
  if (router_->IsAeuStalled(target)) {
    ShedTarget(target, DropReason::kTargetStalled);
    retry_[target].attempts = 0;
    return true;
  }
  TargetRetry& rs = retry_[target];
  const DeliveryRetryPolicy& rp = router_->config().retry;
  // Backoff gate: after a failed delivery, wait out the jittered delay
  // before touching the mailbox again (kThreads engines only).
  if (rp.pace_with_time && rs.attempts > 0 &&
      MonotonicNanos() < rs.next_attempt_ns) {
    return false;
  }
  // Injected rejected delivery: identical to the target's incoming buffer
  // being full — the commands stay buffered and the caller retries.
  if (ERIS_INJECT_SHOULD_FAIL(kRouterFlush)) return RecordFlushFailure(target);
  ERIS_INJECT_POINT(kRouterFlush);
  IncomingBufferPair& mailbox = router_->mailbox(target);
  while (outgoing_.HasPending(target)) {
    OutgoingSet::Consumption consumed =
        outgoing_.GatherUpTo(target, mailbox.capacity(), &pieces_);
    if (consumed.total_bytes == 0) return true;  // nothing deliverable
    if (!mailbox.TryWriteGather(pieces_)) return RecordFlushFailure(target);
    rs.attempts = 0;  // consecutive-failure cap: any success resets
    ++stats_.flushes;
    stats_.bytes_flushed += consumed.total_bytes;
    if (sim::ResourceUsage* usage = router_->resource_usage()) {
      usage->AddRoutedBytes(node_, router_->NodeOfAeu(target),
                            consumed.total_bytes);
    }
    outgoing_.Consume(target, consumed);
  }
  return true;
}

bool Endpoint::FlushAll() {
  bool all_delivered = true;
  for (AeuId t = 0; t < outgoing_.num_targets(); ++t) {
    if (outgoing_.HasPending(t)) all_delivered &= FlushTarget(t);
  }
  return all_delivered;
}

namespace {
inline storage::Key KeyOf(storage::Key k) { return k; }
inline storage::Key KeyOf(const KeyValue& kv) { return kv.key; }

template <typename T>
std::span<const uint8_t> AsBytes(std::span<const T> s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size_bytes()};
}
}  // namespace

template <typename E>
size_t Endpoint::SendKeyed(CommandType type, storage::ObjectId object,
                           std::span<const E> elements, ResultSink* sink) {
  const size_t n = elements.size();
  if (n == 0) return 0;

  // Step 1: batch lookup of responsible AEUs (range table or key hash).
  // Keys are copied out first so the partition table sees one dense array
  // regardless of the element type (Key or KeyValue).
  owners_.resize(n);
  keys_.resize(n);
  for (size_t i = 0; i < n; ++i) keys_[i] = KeyOf(elements[i]);
  router_->OwnersOfKeys(object, keys_, owners_.data());

  // Step 2: split per target. Stable counting sort of indices by owner
  // (targets can number in the hundreds; only touched buckets are visited).
  group_order_.resize(n);
  bucket_count_.assign(router_->num_aeus() + 1, 0);
  for (size_t i = 0; i < n; ++i) bucket_count_[owners_[i] + 1]++;
  for (size_t a = 1; a < bucket_count_.size(); ++a)
    bucket_count_[a] += bucket_count_[a - 1];
  for (size_t i = 0; i < n; ++i)
    group_order_[bucket_count_[owners_[i]]++] = static_cast<uint32_t>(i);

  const size_t max_elems = router_->config().max_batch_elements;
  CommandHeader header;
  header.type = type;
  header.object = static_cast<uint16_t>(object);
  header.source = source_;
  header.sink = sink;

  size_t pos = 0;
  while (pos < n) {
    AeuId target = owners_[group_order_[pos]];
    size_t end = pos;
    chunk_.clear();
    while (end < n && owners_[group_order_[end]] == target &&
           end - pos < max_elems) {
      const E& e = elements[group_order_[end]];
      chunk_.append(reinterpret_cast<const uint8_t*>(&e), sizeof(E));
      ++end;
    }
    Unicast(target, header, chunk_);
    pos = end;
  }
  // Keyed batches complete per element; the caller waits for n units.
  return n;
}

size_t Endpoint::SendLookupBatch(storage::ObjectId object,
                                 std::span<const storage::Key> keys,
                                 ResultSink* sink) {
  return SendKeyed<storage::Key>(CommandType::kLookupBatch, object, keys,
                                 sink);
}

size_t Endpoint::SendWriteBatch(CommandType type, storage::ObjectId object,
                                std::span<const KeyValue> kvs,
                                ResultSink* sink) {
  ERIS_CHECK(type == CommandType::kInsertBatch ||
             type == CommandType::kUpsertBatch);
  return SendKeyed<KeyValue>(type, object, kvs, sink);
}

size_t Endpoint::SendEraseBatch(storage::ObjectId object,
                                std::span<const storage::Key> keys,
                                ResultSink* sink) {
  return SendKeyed<storage::Key>(CommandType::kEraseBatch, object, keys,
                                 sink);
}

size_t Endpoint::SendAppendBatch(storage::ObjectId object,
                                 std::span<const storage::Value> values,
                                 ResultSink* sink) {
  CommandHeader header;
  header.type = CommandType::kAppendBatch;
  header.object = static_cast<uint16_t>(object);
  header.source = source_;
  header.sink = sink;
  const size_t max_elems = router_->config().max_batch_elements;
  size_t commands = 0;
  for (size_t pos = 0; pos < values.size(); pos += max_elems) {
    size_t len = std::min(max_elems, values.size() - pos);
    AeuId target = router_->PickAppendTarget(object);
    Unicast(target, header, AsBytes(values.subspan(pos, len)));
    ++commands;
  }
  return commands;
}

size_t Endpoint::SendAppendTo(AeuId target, storage::ObjectId object,
                              std::span<const storage::Value> values,
                              ResultSink* sink) {
  CommandHeader header;
  header.type = CommandType::kAppendBatch;
  header.object = static_cast<uint16_t>(object);
  header.source = source_;
  header.sink = sink;
  const size_t max_elems = router_->config().max_batch_elements;
  size_t commands = 0;
  for (size_t pos = 0; pos < values.size(); pos += max_elems) {
    size_t len = std::min(max_elems, values.size() - pos);
    Unicast(target, header, AsBytes(values.subspan(pos, len)));
    ++commands;
  }
  return commands;
}

size_t Endpoint::SendScanColumn(storage::ObjectId object,
                                const ScanParams& params, ResultSink* sink) {
  BitmapPartitionTable* bitmap = router_->bitmap_table(object);
  ERIS_CHECK(bitmap != nullptr) << "column scan on non-physical object";
  std::vector<AeuId> owners = bitmap->Owners();
  if (owners.empty()) return 0;
  CommandHeader header;
  header.type = CommandType::kScanColumn;
  header.object = static_cast<uint16_t>(object);
  header.source = source_;
  header.sink = sink;
  std::span<const ScanParams> one(&params, 1);
  Multicast(owners, header, AsBytes(one));
  return owners.size();
}

namespace {
template <typename P>
std::span<const uint8_t> OneAsBytes(const P& p) {
  return {reinterpret_cast<const uint8_t*>(&p), sizeof(P)};
}
}  // namespace

size_t Endpoint::SendScanStats(storage::ObjectId object,
                               const ScanParams& params, ResultSink* sink) {
  BitmapPartitionTable* bitmap = router_->bitmap_table(object);
  ERIS_CHECK(bitmap != nullptr) << "stats scan on non-physical object";
  std::vector<AeuId> owners = bitmap->Owners();
  if (owners.empty()) return 0;
  CommandHeader header;
  header.type = CommandType::kScanStats;
  header.object = static_cast<uint16_t>(object);
  header.source = source_;
  header.sink = sink;
  Multicast(owners, header, OneAsBytes(params));
  return owners.size();
}

size_t Endpoint::SendScanMaterialize(storage::ObjectId object,
                                     const MaterializeParams& params,
                                     ResultSink* sink) {
  BitmapPartitionTable* bitmap = router_->bitmap_table(object);
  ERIS_CHECK(bitmap != nullptr) << "materialize scan on non-physical object";
  std::vector<AeuId> owners = bitmap->Owners();
  if (owners.empty()) return 0;
  CommandHeader header;
  header.type = CommandType::kScanMaterialize;
  header.object = static_cast<uint16_t>(object);
  header.source = source_;
  header.sink = sink;
  Multicast(owners, header, OneAsBytes(params));
  return owners.size();
}

size_t Endpoint::SendJoinProbe(storage::ObjectId object,
                               const JoinProbeParams& params,
                               ResultSink* sink) {
  BitmapPartitionTable* bitmap = router_->bitmap_table(object);
  ERIS_CHECK(bitmap != nullptr) << "join probe on non-physical object";
  std::vector<AeuId> owners = bitmap->Owners();
  if (owners.empty()) return 0;
  CommandHeader header;
  header.type = CommandType::kJoinProbe;
  header.object = static_cast<uint16_t>(object);
  header.source = source_;
  header.sink = sink;
  Multicast(owners, header, OneAsBytes(params));
  return owners.size();
}

size_t Endpoint::SendPipeline(const PipelineParams& params, ResultSink* sink) {
  BitmapPartitionTable* bitmap = router_->bitmap_table(params.filter_object);
  ERIS_CHECK(bitmap != nullptr) << "pipeline on non-physical filter column";
  std::vector<AeuId> owners = bitmap->Owners();
  if (owners.empty()) return 0;
  CommandHeader header;
  header.type = CommandType::kPipeline;
  header.object = static_cast<uint16_t>(params.filter_object);
  header.source = source_;
  header.sink = sink;
  Multicast(owners, header, OneAsBytes(params));
  return owners.size();
}

size_t Endpoint::SendJoinPhase(CommandType type, const MergeJoinParams& params,
                               ResultSink* sink) {
  ERIS_CHECK(type == CommandType::kJoinScatter ||
             type == CommandType::kJoinMerge);
  // Scatter visits the owners of the side being scanned: S for MPSM (its
  // run is exchanged toward R's owners), R for the shared-hash baseline
  // (its keys are probed into hashed S). Merge visits every AEU — staged
  // entries may sit anywhere after a concurrent rebalance.
  storage::ObjectId scanned = params.r_object;
  std::vector<AeuId> owners;
  if (type == CommandType::kJoinScatter) {
    if (params.strategy != JoinStrategy::kSharedHash) scanned = params.s_object;
    owners = router_->OwnersOfKeyRange(scanned, 0, ~storage::Key{0});
  } else {
    owners.resize(router_->num_aeus());
    for (AeuId a = 0; a < router_->num_aeus(); ++a) owners[a] = a;
  }
  if (owners.empty()) return 0;
  CommandHeader header;
  header.type = type;
  header.object = static_cast<uint16_t>(scanned);
  header.source = source_;
  header.sink = sink;
  Multicast(owners, header, OneAsBytes(params));
  return owners.size();
}

size_t Endpoint::SendJoinStage(storage::ObjectId r_object,
                               const JoinStageParams& params,
                               std::span<const KeyValue> entries,
                               ResultSink* sink) {
  const size_t n = entries.size();
  if (n == 0) return 0;
  owners_.resize(n);
  keys_.resize(n);
  for (size_t i = 0; i < n; ++i) keys_[i] = entries[i].key;
  router_->OwnersOfKeys(r_object, keys_, owners_.data());

  group_order_.resize(n);
  bucket_count_.assign(router_->num_aeus() + 1, 0);
  for (size_t i = 0; i < n; ++i) bucket_count_[owners_[i] + 1]++;
  for (size_t a = 1; a < bucket_count_.size(); ++a)
    bucket_count_[a] += bucket_count_[a - 1];
  for (size_t i = 0; i < n; ++i)
    group_order_[bucket_count_[owners_[i]]++] = static_cast<uint32_t>(i);

  const size_t max_elems = router_->config().max_batch_elements;
  CommandHeader header;
  header.type = CommandType::kJoinStage;
  header.object = static_cast<uint16_t>(r_object);
  header.source = source_;
  header.sink = sink;

  size_t commands = 0;
  size_t pos = 0;
  while (pos < n) {
    AeuId target = owners_[group_order_[pos]];
    size_t end = pos;
    chunk_.clear();
    chunk_.append(reinterpret_cast<const uint8_t*>(&params), sizeof(params));
    while (end < n && owners_[group_order_[end]] == target &&
           end - pos < max_elems) {
      const KeyValue& e = entries[group_order_[end]];
      chunk_.append(reinterpret_cast<const uint8_t*>(&e), sizeof(KeyValue));
      ++end;
    }
    Unicast(target, header, chunk_);
    ++commands;
    pos = end;
  }
  return commands;
}

size_t Endpoint::SendScanIndexRange(storage::ObjectId object, storage::Key lo,
                                    storage::Key hi, const ScanParams& params,
                                    ResultSink* sink) {
  std::vector<AeuId> owners = router_->OwnersOfKeyRange(object, lo, hi);
  if (owners.empty()) return 0;
  IndexScanParams scan_params;
  scan_params.key_lo = lo;
  scan_params.key_hi = hi;
  scan_params.scan = params;
  CommandHeader header;
  header.type = CommandType::kScanIndexRange;
  header.object = static_cast<uint16_t>(object);
  header.source = source_;
  header.sink = sink;
  std::span<const IndexScanParams> one(&scan_params, 1);
  if (owners.size() == 1) {
    Unicast(owners[0], header, AsBytes(one));
  } else {
    Multicast(owners, header, AsBytes(one));
  }
  return owners.size();
}

size_t Endpoint::SendControl(AeuId target, CommandType type,
                             storage::ObjectId object,
                             std::span<const uint8_t> payload,
                             ResultSink* sink) {
  CommandHeader header;
  header.type = type;
  header.object = static_cast<uint16_t>(object);
  header.source = source_;
  header.sink = sink;
  Unicast(target, header, payload);
  return 1;
}

}  // namespace eris::routing
