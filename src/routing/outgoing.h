// Per-source outgoing buffers: the local pre-buffering stage of the
// NUMA-optimized data command routing.
//
// Each command source (an AEU, or a client endpoint) owns one unicast
// buffer per target AEU, a single multicast buffer holding each multicast
// command once, and per-target multicast reference lists. All buffers live
// in the source's local memory and are private — no concurrency control.
// Flushing copies a target's unicast bytes plus its referenced multicast
// commands into the target's incoming buffer with a single latch-free
// reservation, which reduces contention on the incoming buffers and turns
// many small remote writes into one large sequential copy (hiding remote
// latency behind bandwidth). Deliveries larger than an incoming buffer are
// consumed incrementally at record granularity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "routing/arena_vec.h"
#include "routing/data_command.h"

namespace eris::routing {

/// \brief Outgoing buffer set of one command source.
///
/// The exchange streams (per-target unicast byte streams, the shared
/// multicast block, and the per-target reference lists) are arena-backed:
/// carved from the source's node-local NodeMemoryManager when one is wired,
/// growing to the workload's high-water mark and then reused. Every real
/// growth visits fi::Point::kExchangeStreamAlloc, so "steady-state exchange
/// never allocates" is an assertable invariant.
class OutgoingSet {
 public:
  explicit OutgoingSet(uint32_t num_targets,
                       numa::NodeMemoryManager* memory = nullptr)
      : targets_(num_targets) {
    if (memory != nullptr) set_memory(memory);
  }

  /// Wires the source's node-local allocator behind every stream buffer
  /// (used when the set is built before the engine hands a manager out).
  /// Must be called while no commands are buffered.
  void set_memory(numa::NodeMemoryManager* memory) {
    for (TargetState& ts : targets_) {
      ts.unicast.set_memory(memory);
      ts.refs.set_memory(memory);
    }
    multicast_data_.set_memory(memory);
  }

  uint32_t num_targets() const {
    return static_cast<uint32_t>(targets_.size());
  }

  /// Encodes a unicast command into `target`'s buffer.
  void AppendUnicast(AeuId target, const CommandHeader& header,
                     std::span<const uint8_t> payload) {
    EncodeCommand(header, payload, &targets_[target].unicast);
  }

  /// Encodes a multicast command once and records references for `targets`.
  void AppendMulticast(std::span<const AeuId> targets,
                       const CommandHeader& header,
                       std::span<const uint8_t> payload) {
    uint32_t offset = static_cast<uint32_t>(multicast_data_.size());
    EncodeCommand(header, payload, &multicast_data_);
    uint32_t len = static_cast<uint32_t>(multicast_data_.size()) - offset;
    for (AeuId t : targets) {
      targets_[t].refs.push_back({offset, len});
      ++live_refs_;
    }
  }

  /// Bytes pending for `target` (unicast + referenced multicast).
  size_t PendingBytes(AeuId target) const {
    const TargetState& ts = targets_[target];
    size_t bytes = ts.unicast.size() - ts.unicast_head;
    for (size_t i = ts.refs_head; i < ts.refs.size(); ++i)
      bytes += ts.refs[i].len;
    return bytes;
  }

  bool HasPending(AeuId target) const {
    const TargetState& ts = targets_[target];
    return ts.unicast_head < ts.unicast.size() ||
           ts.refs_head < ts.refs.size();
  }

  bool HasAnyPending() const {
    for (AeuId t = 0; t < num_targets(); ++t) {
      if (HasPending(t)) return true;
    }
    return false;
  }

  /// Consumption cursor returned by GatherUpTo and passed to Consume.
  struct Consumption {
    size_t unicast_bytes = 0;
    size_t refs = 0;
    size_t total_bytes = 0;
  };

  /// Gathers whole records for `target`, up to `max_bytes` in total, into
  /// `pieces` (spans valid until the next mutation). A single record larger
  /// than max_bytes is a configuration error (incoming buffers must exceed
  /// the maximum record size). `pieces` is any clear()/push_back() container
  /// of spans — std::vector in tests, the endpoint's arena-backed scratch on
  /// the send path.
  template <typename PieceVec>
  Consumption GatherUpTo(AeuId target, size_t max_bytes,
                         PieceVec* pieces) const {
    pieces->clear();
    Consumption consumed;
    const TargetState& ts = targets_[target];
    // Unicast: walk records and cut at the byte budget.
    size_t pos = ts.unicast_head;
    while (pos < ts.unicast.size()) {
      CommandView v = DecodeCommand(ts.unicast.data() + pos);
      size_t rec = v.record_bytes();
      if (consumed.total_bytes + rec > max_bytes) break;
      pos += rec;
      consumed.total_bytes += rec;
    }
    consumed.unicast_bytes = pos - ts.unicast_head;
    if (consumed.unicast_bytes > 0) {
      pieces->push_back(std::span<const uint8_t>(
          ts.unicast.data() + ts.unicast_head, consumed.unicast_bytes));
    }
    // Multicast references, one piece each.
    for (size_t i = ts.refs_head; i < ts.refs.size(); ++i) {
      const Ref& r = ts.refs[i];
      if (consumed.total_bytes + r.len > max_bytes) break;
      pieces->push_back(std::span<const uint8_t>(
          multicast_data_.data() + r.offset, r.len));
      consumed.total_bytes += r.len;
      ++consumed.refs;
    }
    ERIS_CHECK(consumed.total_bytes > 0 || !HasPending(target))
        << "a single command record exceeds the incoming buffer capacity";
    return consumed;
  }

  /// Marks a GatherUpTo result delivered; reclaims buffers when drained.
  void Consume(AeuId target, const Consumption& consumed) {
    TargetState& ts = targets_[target];
    ts.unicast_head += consumed.unicast_bytes;
    if (ts.unicast_head == ts.unicast.size()) {
      ts.unicast.clear();
      ts.unicast_head = 0;
    }
    ts.refs_head += consumed.refs;
    if (ts.refs_head == ts.refs.size()) {
      ts.refs.clear();
      ts.refs_head = 0;
    }
    live_refs_ -= consumed.refs;
    if (live_refs_ == 0 && !multicast_data_.empty()) {
      bool any = false;
      for (const TargetState& t : targets_) any |= !t.refs.empty();
      if (!any) multicast_data_.clear();
    }
  }

  /// Drops every record pending for `target`, invoking `fn(CommandView)`
  /// for each dropped record so the caller can notify result sinks. Used by
  /// the router to shed undeliverable commands (retry cap reached, or the
  /// target AEU quarantined). Returns the number of records dropped.
  template <typename PieceVec, typename Fn>
  size_t DropPending(AeuId target, PieceVec* scratch, Fn&& fn) {
    size_t dropped = 0;
    while (HasPending(target)) {
      Consumption consumed = GatherUpTo(target, ~size_t{0}, scratch);
      if (consumed.total_bytes == 0) break;
      for (const auto& piece : *scratch) {
        size_t pos = 0;
        while (pos < piece.size()) {
          CommandView v = DecodeCommand(piece.data() + pos);
          pos += v.record_bytes();
          fn(v);
          ++dropped;
        }
      }
      Consume(target, consumed);
    }
    return dropped;
  }

  /// Total bytes buffered across targets (multicast counted once).
  size_t TotalBufferedBytes() const {
    size_t bytes = multicast_data_.size();
    for (const TargetState& ts : targets_)
      bytes += ts.unicast.size() - ts.unicast_head;
    return bytes;
  }

 private:
  struct Ref {
    uint32_t offset;
    uint32_t len;
  };
  struct TargetState {
    ExchangeArenaVec<uint8_t> unicast;
    size_t unicast_head = 0;
    ExchangeArenaVec<Ref> refs;
    size_t refs_head = 0;
  };

  std::vector<TargetState> targets_;
  ExchangeArenaVec<uint8_t> multicast_data_;
  size_t live_refs_ = 0;
};

}  // namespace eris::routing
