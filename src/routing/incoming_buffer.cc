#include "routing/incoming_buffer.h"

#include <cstdlib>
#include <cstring>

namespace eris::routing {

IncomingBufferPair::IncomingBufferPair(size_t capacity_bytes)
    // aligned_alloc requires the size to be a multiple of the alignment.
    : capacity_(AlignUp(std::max<size_t>(capacity_bytes, 64), 64)) {
  ERIS_CHECK_LT(capacity_, uint64_t{1} << 32)
      << "offset field limits buffers to 4 GiB";
  for (int i = 0; i < 2; ++i) {
    buffers_[i] = static_cast<uint8_t*>(std::aligned_alloc(64, capacity_));
    ERIS_CHECK(buffers_[i] != nullptr);
  }
  // Buffer 0 starts writable, buffer 1 idle.
  desc_[0].store(descriptor::Make(true, 0, 0), std::memory_order_relaxed);
  desc_[1].store(descriptor::Make(false, 0, 0), std::memory_order_relaxed);
}

IncomingBufferPair::~IncomingBufferPair() {
  std::free(buffers_[0]);
  std::free(buffers_[1]);
}

bool IncomingBufferPair::TryWrite(std::span<const uint8_t> data) {
  std::span<const uint8_t> piece = data;
  return TryWriteGather({&piece, 1});
}

bool IncomingBufferPair::TryWriteGather(
    std::span<const std::span<const uint8_t>> pieces) {
  size_t total = 0;
  for (const auto& p : pieces) total += p.size();
  if (total == 0) return true;
  // A sealed mailbox (stalled AEU quarantined by the watchdog) behaves like
  // a permanently full buffer; producers shed via the bounded retry policy.
  if (sealed()) return false;
  ERIS_DCHECK(total % 8 == 0);
  ERIS_CHECK_LE(total, capacity_)
      << "single delivery larger than an incoming buffer";
  // Injected "buffer full": the caller keeps the data and retries after
  // the owner swaps, exactly as for a genuinely full buffer.
  if (ERIS_INJECT_SHOULD_FAIL(kIncomingReserve)) return false;
  for (;;) {
    uint32_t idx = writable_idx_.load(std::memory_order_acquire);
    uint64_t d = desc_[idx].load(std::memory_order_acquire);
    // Widen the load->CAS window so concurrent reservations and the
    // owner's swap/deactivate actually interleave here under stress.
    ERIS_INJECT_POINT(kIncomingReserve);
    if (!descriptor::Active(d)) {
      // Raced with a swap; re-read the index.
      CpuRelax();
      continue;
    }
    uint64_t offset = descriptor::Offset(d);
    if (offset + total > capacity_) return false;  // full
    uint64_t wanted = descriptor::Make(
        true, descriptor::Writers(d) + 1,
        static_cast<uint32_t>(offset + total));
    if (!desc_[idx].compare_exchange_weak(d, wanted,
                                          std::memory_order_acq_rel)) {
      continue;  // descriptor changed under us; retry
    }
    // Reserved but not yet copied: the owner's Drain must wait for the
    // writer count to drain before reading this region.
    ERIS_INJECT_POINT(kIncomingCopy);
    uint8_t* dst = buffers_[idx] + offset;
    for (const auto& p : pieces) {
      std::memcpy(dst, p.data(), p.size());
      dst += p.size();
    }
    ERIS_INJECT_POINT(kIncomingRelease);
    // Release the writer slot; the stores to the buffer must be visible
    // before the owner sees writers reach zero.
    desc_[idx].fetch_sub(descriptor::kWriterOne, std::memory_order_release);
    return true;
  }
}

}  // namespace eris::routing
