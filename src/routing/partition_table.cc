#include "routing/partition_table.h"

#include <algorithm>

namespace eris::routing {

std::shared_ptr<const RangePartitionTable::Rep> RangePartitionTable::MakeRep(
    std::vector<RangeEntry> entries) {
  ERIS_CHECK(!entries.empty());
  for (size_t i = 1; i < entries.size(); ++i)
    ERIS_CHECK_LT(entries[i - 1].hi, entries[i].hi)
        << "range entries must be strictly increasing";
  ERIS_CHECK_EQ(entries.back().hi, storage::kMaxKey)
      << "partition table must cover the whole key domain";
  auto rep = std::make_shared<Rep>();
  std::vector<uint64_t> keys(entries.size());
  std::vector<uint32_t> payloads(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    keys[i] = entries[i].hi;
    payloads[i] = entries[i].owner;
  }
  rep->entries = std::move(entries);
  rep->tree = storage::CsbTree(keys, payloads);
  return rep;
}

RangePartitionTable::RangePartitionTable(std::vector<RangeEntry> entries)
    : rep_(MakeRep(std::move(entries))) {}

std::vector<RangeEntry> RangePartitionTable::UniformEntries(
    std::span<const AeuId> aeus, storage::Key domain_hi) {
  ERIS_CHECK(!aeus.empty());
  std::vector<RangeEntry> entries(aeus.size());
  storage::Key step = domain_hi / aeus.size();
  ERIS_CHECK_GT(step, 0u) << "domain smaller than AEU count";
  for (size_t i = 0; i < aeus.size(); ++i) {
    entries[i].hi = (i + 1 == aeus.size()) ? storage::kMaxKey
                                           : static_cast<storage::Key>(
                                                 (i + 1) * step);
    entries[i].owner = aeus[i];
  }
  return entries;
}

AeuId RangePartitionTable::OwnerOf(storage::Key key) const {
  auto rep = Load();
  // First hi strictly greater than key owns [prev_hi, hi).
  size_t i = rep->tree.UpperBound(key);
  if (i >= rep->tree.size()) i = rep->tree.size() - 1;  // key == kMaxKey
  return rep->tree.payload(i);
}

void RangePartitionTable::OwnersOf(std::span<const storage::Key> keys,
                                   AeuId* owners) const {
  auto rep = Load();
  const size_t n = rep->tree.size();
  for (size_t k = 0; k < keys.size(); ++k) {
    size_t i = rep->tree.UpperBound(keys[k]);
    if (i >= n) i = n - 1;
    owners[k] = rep->tree.payload(i);
  }
}

void RangePartitionTable::BatchOwnerOf(std::span<const storage::Key> keys,
                                       AeuId* owners) const {
  auto rep = Load();  // one snapshot for the whole batch
  const size_t n = rep->tree.size();
  uint32_t indices[storage::CsbTree::kBatchGroup];
  for (size_t base = 0; base < keys.size();
       base += storage::CsbTree::kBatchGroup) {
    const size_t count = std::min<size_t>(storage::CsbTree::kBatchGroup,
                                          keys.size() - base);
    rep->tree.BatchUpperBound(keys.subspan(base, count), indices);
    for (size_t i = 0; i < count; ++i) {
      size_t idx = indices[i];
      if (idx >= n) idx = n - 1;  // key == kMaxKey
      owners[base + i] = rep->tree.payload(idx);
    }
  }
}

std::vector<AeuId> RangePartitionTable::OwnersOfRange(storage::Key lo,
                                                      storage::Key hi) const {
  auto rep = Load();
  std::vector<AeuId> owners;
  if (lo >= hi) return owners;
  size_t first = rep->tree.UpperBound(lo);
  if (first >= rep->tree.size()) first = rep->tree.size() - 1;
  for (size_t i = first; i < rep->tree.size(); ++i) {
    owners.push_back(rep->tree.payload(i));
    // Entry i covers up to rep key(i) exclusive; stop once it reaches hi.
    if (rep->tree.key(i) >= hi) break;
  }
  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  return owners;
}

std::vector<RangeEntry> RangePartitionTable::Snapshot() const {
  return Load()->entries;
}

void RangePartitionTable::Replace(std::vector<RangeEntry> entries) {
  rep_.store(MakeRep(std::move(entries)), std::memory_order_release);
}

size_t RangePartitionTable::size() const { return Load()->entries.size(); }

size_t RangePartitionTable::memory_bytes() const {
  auto rep = Load();
  return rep->entries.size() * sizeof(RangeEntry) + rep->tree.memory_bytes();
}

BitmapPartitionTable::BitmapPartitionTable(uint32_t num_aeus)
    : num_aeus_(num_aeus), words_((num_aeus + 63) / 64) {
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
}

void BitmapPartitionTable::Set(AeuId aeu, bool present) {
  ERIS_DCHECK(aeu < num_aeus_);
  uint64_t mask = uint64_t{1} << (aeu & 63);
  if (present) {
    words_[aeu >> 6].fetch_or(mask, std::memory_order_acq_rel);
  } else {
    words_[aeu >> 6].fetch_and(~mask, std::memory_order_acq_rel);
  }
}

bool BitmapPartitionTable::Test(AeuId aeu) const {
  ERIS_DCHECK(aeu < num_aeus_);
  return (words_[aeu >> 6].load(std::memory_order_acquire) >>
          (aeu & 63)) &
         1;
}

std::vector<AeuId> BitmapPartitionTable::Owners() const {
  std::vector<AeuId> owners;
  for (uint32_t w = 0; w < words_.size(); ++w) {
    uint64_t bits = words_[w].load(std::memory_order_acquire);
    while (bits != 0) {
      int b = std::countr_zero(bits);
      bits &= bits - 1;
      AeuId aeu = (w << 6) + static_cast<uint32_t>(b);
      if (aeu < num_aeus_) owners.push_back(aeu);
    }
  }
  return owners;
}

uint32_t BitmapPartitionTable::count() const {
  uint32_t c = 0;
  for (const auto& w : words_)
    c += static_cast<uint32_t>(
        std::popcount(w.load(std::memory_order_acquire)));
  return c;
}

}  // namespace eris::routing
