// Arena-backed scratch vector for the routing fast path.
//
// Endpoint scratch state (owner arrays, split order, encode buffers, gather
// piece lists) must satisfy two properties the standard library cannot
// promise together: the backing memory comes from the endpoint's node-local
// NodeMemoryManager (so an AEU's routing scratch never crosses its NUMA
// node), and growth is observable (so tests can assert the zero-allocation
// steady-state invariant). ArenaVec is the minimal vector covering the
// endpoint's usage: trivially copyable elements, capacity-retaining clear(),
// uninitialized resize(), and a fault-injection visit on every real block
// acquisition.
#pragma once

#include <cstdlib>
#include <cstring>
#include <span>
#include <type_traits>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "numa/memory_manager.h"

namespace eris::routing {

/// \brief Minimal reusable vector carved from a node-local memory manager.
///
/// Elements must be trivially copyable (growth is a memcpy and resize()
/// leaves new elements uninitialized). Without a manager (client endpoints
/// constructed before the engine wires one) the heap is used directly.
/// Every capacity growth visits the `AllocPoint` fault-injection point
/// (kEndpointScratchAlloc for routing scratch, kQueryScratchAlloc for the
/// query pipeline/join scratch); after the first calls warm a steady
/// workload up, the point is never visited again — that is the
/// zero-allocation invariant, and tests assert it by installing a counting
/// hook.
template <typename T, fi::Point AllocPoint = fi::Point::kEndpointScratchAlloc>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  ArenaVec() = default;
  explicit ArenaVec(numa::NodeMemoryManager* memory) : memory_(memory) {}
  ~ArenaVec() { Release(); }

  ArenaVec(const ArenaVec&) = delete;
  ArenaVec& operator=(const ArenaVec&) = delete;

  ArenaVec(ArenaVec&& other) noexcept
      : memory_(other.memory_),
        data_(other.data_),
        size_(other.size_),
        cap_(other.cap_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.cap_ = 0;
  }
  ArenaVec& operator=(ArenaVec&& other) noexcept {
    if (this != &other) {
      Release();
      memory_ = other.memory_;
      data_ = other.data_;
      size_ = other.size_;
      cap_ = other.cap_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.cap_ = 0;
    }
    return *this;
  }

  /// Wires a node-local manager after construction (members built before the
  /// engine hands one out). Releases any heap-backed buffer first so every
  /// later growth is served node-locally.
  void set_memory(numa::NodeMemoryManager* memory) {
    if (memory == memory_) return;
    Release();
    size_ = 0;
    memory_ = memory;
  }
  numa::NodeMemoryManager* memory() const { return memory_; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  /// Drops the contents, keeping the capacity (the reuse that makes the
  /// steady state allocation-free).
  void clear() { size_ = 0; }

  void Reserve(size_t n) {
    if (n > cap_) Grow(n);
  }

  /// Grows to `n` elements; new elements are uninitialized (every caller
  /// overwrites before reading).
  void resize(size_t n) {
    Reserve(n);
    size_ = n;
  }

  /// Resizes to `n` copies of `value` (counting-sort bucket reset).
  void assign(size_t n, const T& value) {
    resize(n);
    for (size_t i = 0; i < n; ++i) data_[i] = value;
  }

  void push_back(const T& value) {
    if (size_ == cap_) Grow(size_ + 1);
    data_[size_++] = value;
  }

  /// Appends `n` elements from `src` (byte-encode loop).
  void append(const T* src, size_t n) {
    Reserve(size_ + n);
    std::memcpy(data_ + size_, src, n * sizeof(T));
    size_ += n;
  }

  std::span<const T> span() const { return {data_, size_}; }
  operator std::span<const T>() const { return span(); }

 private:
  static constexpr size_t kInitialCapacity = 64;

  void Grow(size_t need) {
    size_t cap = cap_ == 0 ? kInitialCapacity : cap_;
    while (cap < need) cap *= 2;
#if defined(ERIS_FAULT_INJECTION) && ERIS_FAULT_INJECTION
    if (::eris::fi::Armed()) {
      ::eris::fi::FaultInjector::Global().Visit(AllocPoint);
    }
#endif
    T* fresh = static_cast<T*>(Acquire(cap * sizeof(T)));
    ERIS_CHECK(fresh != nullptr);
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    Release();
    data_ = fresh;
    cap_ = cap;
  }

  void* Acquire(size_t bytes) {
    return memory_ != nullptr ? memory_->Allocate(bytes) : std::malloc(bytes);
  }

  void Release() {
    if (data_ == nullptr) return;
    if (memory_ != nullptr) {
      memory_->Free(data_, cap_ * sizeof(T));
    } else {
      std::free(data_);
    }
    data_ = nullptr;
    cap_ = 0;
  }

  numa::NodeMemoryManager* memory_ = nullptr;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t cap_ = 0;
};

/// Query-layer scratch (selection vectors, sort runs, join stage buffers):
/// same arena semantics, separate allocation counter so the pipeline/join
/// zero-alloc invariant is testable independently of the send path.
template <typename T>
using QueryArenaVec = ArenaVec<T, fi::Point::kQueryScratchAlloc>;

/// AEU command dequeue/batch scratch: group tables, handler key/value
/// staging, WAL effect staging, transfer payload assembly.
template <typename T>
using AeuArenaVec = ArenaVec<T, fi::Point::kAeuScratchAlloc>;

/// Router exchange/transfer stream buffers (OutgoingSet unicast streams,
/// multicast blocks, gather piece lists).
template <typename T>
using ExchangeArenaVec = ArenaVec<T, fi::Point::kExchangeStreamAlloc>;

}  // namespace eris::routing
