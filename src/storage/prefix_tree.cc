#include "storage/prefix_tree.h"

#include <algorithm>

namespace eris::storage {

PrefixTree::PrefixTree(numa::NodeMemoryManager* memory,
                       PrefixTreeConfig config)
    : memory_(memory), config_(config) {
  ERIS_CHECK(memory != nullptr);
  ERIS_CHECK_GE(config.prefix_bits, 1u);
  ERIS_CHECK_LE(config.prefix_bits, 16u);
  ERIS_CHECK_GE(config.key_bits, config.prefix_bits);
  ERIS_CHECK_LE(config.key_bits, 64u);
  fanout_ = 1u << config.prefix_bits;
  levels_ = static_cast<uint32_t>(
      CeilDiv(config.key_bits, config.prefix_bits));
}

PrefixTree::~PrefixTree() { Clear(); }

PrefixTree::PrefixTree(PrefixTree&& other) noexcept
    : memory_(other.memory_),
      config_(other.config_),
      fanout_(other.fanout_),
      levels_(other.levels_),
      root_(other.root_),
      size_(other.size_),
      memory_bytes_(other.memory_bytes_) {
  other.root_ = nullptr;
  other.size_ = 0;
  other.memory_bytes_ = 0;
}

PrefixTree& PrefixTree::operator=(PrefixTree&& other) noexcept {
  if (this != &other) {
    Clear();
    memory_ = other.memory_;
    config_ = other.config_;
    fanout_ = other.fanout_;
    levels_ = other.levels_;
    root_ = other.root_;
    size_ = other.size_;
    memory_bytes_ = other.memory_bytes_;
    other.root_ = nullptr;
    other.size_ = 0;
    other.memory_bytes_ = 0;
  }
  return *this;
}

PrefixTree::NodePtr PrefixTree::NewInterior() {
  void* node = memory_->Allocate(InteriorBytes());
  std::memset(node, 0, InteriorBytes());
  memory_bytes_ += InteriorBytes();
  return node;
}

PrefixTree::NodePtr PrefixTree::NewLeaf() {
  void* node = memory_->Allocate(LeafBytes());
  std::memset(node, 0, LeafBytes());
  memory_bytes_ += LeafBytes();
  return node;
}

void PrefixTree::FreeNode(NodePtr node, uint32_t level) {
  size_t bytes = IsLeafLevel(level) ? LeafBytes() : InteriorBytes();
  memory_->Free(node, bytes);
  memory_bytes_ -= bytes;
}

void PrefixTree::FreeRec(NodePtr node, uint32_t level) {
  if (node == nullptr) return;
  if (!IsLeafLevel(level)) {
    for (uint32_t i = 0; i < fanout_; ++i) {
      if (Children(node)[i] != nullptr) FreeRec(Children(node)[i], level + 1);
    }
  }
  FreeNode(node, level);
}

void PrefixTree::Clear() {
  FreeRec(root_, 0);
  root_ = nullptr;
  size_ = 0;
}

bool PrefixTree::Put(Key key, Value value, bool overwrite) {
  ERIS_DCHECK(config_.key_bits == 64 ||
              (key >> config_.key_bits) == 0);
  if (root_ == nullptr) root_ = levels_ == 1 ? NewLeaf() : NewInterior();
  NodePtr node = root_;
  for (uint32_t level = 0; !IsLeafLevel(level); ++level) {
    uint32_t digit = Digit(key, level);
    NodePtr& slot = Children(node)[digit];
    if (slot == nullptr) {
      slot = IsLeafLevel(level + 1) ? NewLeaf() : NewInterior();
    }
    node = slot;
  }
  uint32_t slot = Digit(key, levels_ - 1);
  if (LeafTest(node, slot)) {
    if (overwrite) LeafValues(node)[slot] = value;
    return false;
  }
  LeafValues(node)[slot] = value;
  LeafSet(node, slot);
  ++size_;
  return true;
}

bool PrefixTree::Insert(Key key, Value value) {
  return Put(key, value, /*overwrite=*/false);
}

bool PrefixTree::Upsert(Key key, Value value) {
  return Put(key, value, /*overwrite=*/true);
}

bool PrefixTree::Erase(Key key) {
  if (root_ == nullptr) return false;
  NodePtr node = root_;
  for (uint32_t level = 0; !IsLeafLevel(level); ++level) {
    node = Children(node)[Digit(key, level)];
    if (node == nullptr) return false;
  }
  uint32_t slot = Digit(key, levels_ - 1);
  if (!LeafTest(node, slot)) return false;
  LeafClear(node, slot);
  --size_;
  return true;
}

std::optional<Value> PrefixTree::Lookup(Key key) const {
  NodePtr node = root_;
  if (node == nullptr) return std::nullopt;
  for (uint32_t level = 0; !IsLeafLevel(level); ++level) {
    node = Children(node)[Digit(key, level)];
    if (node == nullptr) return std::nullopt;
  }
  uint32_t slot = Digit(key, levels_ - 1);
  if (!LeafTest(node, slot)) return std::nullopt;
  return LeafValues(node)[slot];
}

std::optional<Value> PrefixTree::LookupTraced(
    Key key, std::vector<const void*>* trace) const {
  NodePtr node = root_;
  if (node == nullptr) return std::nullopt;
  for (uint32_t level = 0; !IsLeafLevel(level); ++level) {
    trace->push_back(node);
    node = Children(node)[Digit(key, level)];
    if (node == nullptr) return std::nullopt;
  }
  trace->push_back(node);
  uint32_t slot = Digit(key, levels_ - 1);
  if (!LeafTest(node, slot)) return std::nullopt;
  return LeafValues(node)[slot];
}

size_t PrefixTree::BatchLookup(std::span<const Key> keys, Value* out,
                               bool* found, BatchLookupStats* stats) const {
  // Software-pipelined traversal: a group of lookups descends level by
  // level together, prefetching every next child slot before any of them
  // is dereferenced — the batch operation the paper uses to hide main
  // memory latency (Section 3.1's command grouping).
  size_t hits = 0;
  if (root_ == nullptr) {
    std::fill(found, found + keys.size(), false);
    return 0;
  }
  // Adjacent-deduplicated node accounting: one slot per level carries the
  // last node seen there across groups, so a run of probes through the
  // same subtree is charged once. levels_ <= 64 (key_bits / prefix_bits).
  uint64_t nodes = keys.empty() ? 0 : 1;  // the root is read once per call
  NodePtr last_seen[64] = {};
  NodePtr cursor[kBatchGroup];
  for (size_t base = 0; base < keys.size(); base += kBatchGroup) {
    const size_t m = std::min(kBatchGroup, keys.size() - base);
    for (size_t i = 0; i < m; ++i) {
      cursor[i] = root_;
      if (levels_ > 1) {
        __builtin_prefetch(&Children(root_)[Digit(keys[base + i], 0)]);
      }
    }
    for (uint32_t level = 0; level + 1 < levels_; ++level) {
      for (size_t i = 0; i < m; ++i) {
        if (cursor[i] == nullptr) continue;
        cursor[i] = Children(cursor[i])[Digit(keys[base + i], level)];
        if (cursor[i] == nullptr) continue;
        if (cursor[i] != last_seen[level + 1]) {
          last_seen[level + 1] = cursor[i];
          ++nodes;
        }
        if (level + 2 < levels_) {
          __builtin_prefetch(
              &Children(cursor[i])[Digit(keys[base + i], level + 1)]);
        } else {
          // Next stage reads the leaf bitmap word and the value slot.
          uint32_t slot = Digit(keys[base + i], levels_ - 1);
          __builtin_prefetch(&LeafBitmap(cursor[i])[slot >> 6]);
          __builtin_prefetch(&LeafValues(cursor[i])[slot]);
        }
      }
    }
    for (size_t i = 0; i < m; ++i) {
      if (cursor[i] == nullptr) {
        found[base + i] = false;
        continue;
      }
      uint32_t slot = Digit(keys[base + i], levels_ - 1);
      bool hit = LeafTest(cursor[i], slot);
      found[base + i] = hit;
      if (hit) {
        out[base + i] = LeafValues(cursor[i])[slot];
        ++hits;
      }
    }
  }
  if (stats != nullptr) stats->nodes_touched += nodes;
  return hits;
}

std::optional<Key> PrefixTree::MinKey() const {
  if (root_ == nullptr || size_ == 0) return std::nullopt;
  NodePtr node = root_;
  Key key = 0;
  for (uint32_t level = 0; level < levels_; ++level) {
    uint32_t shift = (levels_ - 1 - level) * config_.prefix_bits;
    if (IsLeafLevel(level)) {
      for (uint32_t slot = 0; slot < fanout_; ++slot) {
        if (LeafTest(node, slot)) return key | (static_cast<Key>(slot) << shift);
      }
      return std::nullopt;  // empty leaf on the min path: defensive
    }
    uint32_t slot = 0;
    while (slot < fanout_ && Children(node)[slot] == nullptr) ++slot;
    if (slot == fanout_) return std::nullopt;
    key |= static_cast<Key>(slot) << shift;
    node = Children(node)[slot];
  }
  return std::nullopt;
}

std::optional<Key> PrefixTree::MaxKey() const {
  if (root_ == nullptr || size_ == 0) return std::nullopt;
  NodePtr node = root_;
  Key key = 0;
  for (uint32_t level = 0; level < levels_; ++level) {
    uint32_t shift = (levels_ - 1 - level) * config_.prefix_bits;
    if (IsLeafLevel(level)) {
      for (uint32_t slot = fanout_; slot-- > 0;) {
        if (LeafTest(node, slot)) return key | (static_cast<Key>(slot) << shift);
      }
      return std::nullopt;
    }
    uint32_t slot = fanout_;
    while (slot-- > 0 && Children(node)[slot] == nullptr) {
    }
    // slot points at the last non-null child (loop exits when found or wraps).
    if (slot == ~0u) return std::nullopt;
    key |= static_cast<Key>(slot) << shift;
    node = Children(node)[slot];
  }
  return std::nullopt;
}

uint64_t PrefixTree::CountRec(NodePtr node, uint32_t level) const {
  if (IsLeafLevel(level)) {
    uint64_t count = 0;
    const uint64_t* bm = LeafBitmap(node);
    for (size_t w = 0; w < BitmapWords(); ++w)
      count += static_cast<uint64_t>(__builtin_popcountll(bm[w]));
    return count;
  }
  uint64_t count = 0;
  for (uint32_t i = 0; i < fanout_; ++i)
    if (Children(node)[i]) count += CountRec(Children(node)[i], level + 1);
  return count;
}

PrefixTree::NodePtr PrefixTree::SplitRec(NodePtr node, uint32_t level,
                                         Key boundary, uint64_t* moved) {
  const uint32_t idx = Digit(boundary, level);
  if (IsLeafLevel(level)) {
    NodePtr sibling = nullptr;
    for (uint32_t slot = idx; slot < fanout_; ++slot) {
      if (!LeafTest(node, slot)) continue;
      if (sibling == nullptr) sibling = NewLeaf();
      LeafValues(sibling)[slot] = LeafValues(node)[slot];
      LeafSet(sibling, slot);
      LeafClear(node, slot);
      ++*moved;
    }
    return sibling;
  }
  NodePtr sibling = nullptr;
  auto ensure_sibling = [&]() {
    if (sibling == nullptr) sibling = NewInterior();
    return sibling;
  };
  // Children strictly above the boundary digit move entirely.
  for (uint32_t slot = idx + 1; slot < fanout_; ++slot) {
    NodePtr child = Children(node)[slot];
    if (child == nullptr) continue;
    Children(ensure_sibling())[slot] = child;
    Children(node)[slot] = nullptr;
  }
  // Count keys in moved subtrees lazily: walking them would defeat the
  // O(depth * fanout) structural split, so SplitOff recomputes sizes by
  // subtree counting below (see CountRec note): instead we count here by
  // traversing only the *moved* subtrees once.
  if (sibling != nullptr) {
    for (uint32_t slot = idx + 1; slot < fanout_; ++slot) {
      NodePtr child = Children(sibling)[slot];
      if (child == nullptr) continue;
      // Count entries in the moved subtree.
      *moved += CountRec(child, level + 1);
    }
  }
  // The boundary child splits recursively unless the boundary lands exactly
  // on its lower edge (then it moves entirely).
  NodePtr edge_child = Children(node)[idx];
  if (edge_child != nullptr) {
    if (BitsBelow(boundary, level) == 0) {
      *moved += CountRec(edge_child, level + 1);
      Children(ensure_sibling())[idx] = edge_child;
      Children(node)[idx] = nullptr;
    } else {
      NodePtr split_part = SplitRec(edge_child, level + 1, boundary, moved);
      if (split_part != nullptr) Children(ensure_sibling())[idx] = split_part;
    }
  }
  return sibling;
}

PrefixTree PrefixTree::SplitOff(Key boundary) {
  PrefixTree result(memory_, config_);
  if (root_ == nullptr) return result;
  if (boundary == kMinKey) {
    // Everything moves.
    result.root_ = root_;
    result.size_ = size_;
    result.memory_bytes_ = memory_bytes_;
    root_ = nullptr;
    size_ = 0;
    memory_bytes_ = 0;
    return result;
  }
  uint64_t moved = 0;
  uint64_t bytes_before = memory_bytes_;
  NodePtr sibling = SplitRec(root_, 0, boundary, &moved);
  uint64_t new_bytes = memory_bytes_ - bytes_before;
  result.root_ = sibling;
  result.size_ = moved;
  size_ -= moved;
  // Memory accounting: nodes created for the sibling were charged to this
  // tree; moved subtrees keep their bytes here since exact attribution would
  // require a walk. Approximate: transfer the newly created bytes plus a
  // proportional share of the remainder.
  if (size_ + moved > 0) {
    uint64_t share = (memory_bytes_ - new_bytes) * moved / (size_ + moved);
    memory_bytes_ -= new_bytes + share;
    result.memory_bytes_ = new_bytes + share;
  } else {
    result.memory_bytes_ = new_bytes;
  }
  return result;
}

PrefixTree::NodePtr PrefixTree::MergeRec(NodePtr mine, NodePtr theirs,
                                         uint32_t level, uint64_t* absorbed) {
  if (theirs == nullptr) return mine;
  if (mine == nullptr) {
    // Whole subtree splices in; count its entries.
    *absorbed += CountRec(theirs, level);
    return theirs;
  }
  if (IsLeafLevel(level)) {
    for (uint32_t slot = 0; slot < fanout_; ++slot) {
      if (!LeafTest(theirs, slot)) continue;
      if (!LeafTest(mine, slot)) {
        LeafSet(mine, slot);
        ++*absorbed;
      }
      LeafValues(mine)[slot] = LeafValues(theirs)[slot];
    }
    FreeNode(theirs, level);
    return mine;
  }
  for (uint32_t slot = 0; slot < fanout_; ++slot) {
    Children(mine)[slot] = MergeRec(Children(mine)[slot],
                                    Children(theirs)[slot], level + 1,
                                    absorbed);
  }
  FreeNode(theirs, level);
  return mine;
}

void PrefixTree::Absorb(PrefixTree&& other) {
  if (other.root_ == nullptr) return;
  ERIS_CHECK_EQ(config_.prefix_bits, other.config_.prefix_bits);
  ERIS_CHECK_EQ(config_.key_bits, other.config_.key_bits);
  if (other.memory_ != memory_) {
    // Cross-manager absorb degrades to copy semantics.
    other.ForEach([this](Key k, Value v) { Upsert(k, v); });
    return;
  }
  uint64_t absorbed = 0;
  uint64_t other_bytes = other.memory_bytes_;
  root_ = MergeRec(root_, other.root_, 0, &absorbed);
  size_ += absorbed;
  // All of other's nodes are now either spliced into this tree or freed;
  // FreeNode already adjusted *this* tree's byte counter downward for freed
  // nodes it never owned, so compensate by adding other's total.
  memory_bytes_ += other_bytes;
  other.root_ = nullptr;
  other.size_ = 0;
  other.memory_bytes_ = 0;
}

}  // namespace eris::storage
