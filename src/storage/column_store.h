// Segmented append-only column store.
//
// A column is a sequence of fixed-size segments allocated from the owning
// NUMA node's memory manager. Segments make the load balancer's transfers
// cheap: intra-node "link" transfer moves segment pointers, inter-node
// "copy" transfer streams raw segment payloads. Scans run directly over the
// contiguous segment arrays (bandwidth-bound, the paper's Figure 9 workload).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/bit_util.h"
#include "common/logging.h"
#include "numa/memory_manager.h"
#include "storage/types.h"

namespace eris::storage {

/// \brief Single-writer append-only column of 64-bit values.
class ColumnStore {
 public:
  /// Values per segment. 64K entries = 512 KiB per segment.
  static constexpr size_t kSegmentCapacity = 64 * 1024;

  explicit ColumnStore(numa::NodeMemoryManager* memory);
  ~ColumnStore();

  ColumnStore(ColumnStore&& other) noexcept;
  ColumnStore& operator=(ColumnStore&& other) noexcept;
  ColumnStore(const ColumnStore&) = delete;
  ColumnStore& operator=(const ColumnStore&) = delete;

  /// Appends one value; returns its tuple id.
  TupleId Append(Value v);

  /// Appends a batch of values.
  void AppendBatch(std::span<const Value> values);

  /// Value at tuple id `tid` (must be < size()).
  Value Get(TupleId tid) const {
    ERIS_DCHECK(tid < size_);
    return segments_[tid / kSegmentCapacity][tid % kSegmentCapacity];
  }

  /// Overwrites the value at `tid` (used by the MVCC layer's in-place
  /// current version).
  void Set(TupleId tid, Value v) {
    ERIS_DCHECK(tid < size_);
    segments_[tid / kSegmentCapacity][tid % kSegmentCapacity] = v;
  }

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint64_t memory_bytes() const {
    return segments_.size() * kSegmentCapacity * sizeof(Value);
  }
  size_t num_segments() const { return segments_.size(); }
  numa::NodeMemoryManager* memory_manager() const { return memory_; }

  /// Applies fn(tid, value) to every tuple. Runs over raw segment arrays.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    TupleId tid = 0;
    for (size_t s = 0; s < segments_.size(); ++s) {
      const Value* seg = segments_[s];
      size_t n = SegmentSize(s);
      for (size_t i = 0; i < n; ++i) fn(tid++, seg[i]);
    }
  }

  /// Sums all values in [lo, hi] — the scan kernel used by the benches;
  /// deliberately simple so it is memory-bandwidth-bound.
  uint64_t ScanSum(Value lo, Value hi) const;

  /// Counts values in [lo, hi].
  uint64_t ScanCount(Value lo, Value hi) const;

  /// Collects tuple ids with value in [lo, hi] into `out`; returns count.
  uint64_t ScanCollect(Value lo, Value hi, std::vector<TupleId>* out) const;

  /// Detaches the trailing segments holding tuple ids >= `from_tid`
  /// (rounded down to a segment boundary internally is NOT done — from_tid
  /// must be segment aligned for a structural move; otherwise values are
  /// copied). Returns a column owning the moved tail.
  ColumnStore SplitTail(TupleId from_tid);

  /// Appends all tuples of `other` to this column. When both columns share
  /// a memory manager and this column's size is segment-aligned, segments
  /// are relinked without copying.
  void Absorb(ColumnStore&& other);

  /// Raw read access to segment `s` (for serialization and scans).
  std::span<const Value> Segment(size_t s) const {
    return {segments_[s], SegmentSize(s)};
  }

  void Clear();

 private:
  size_t SegmentSize(size_t s) const {
    return s + 1 == segments_.size()
               ? size_ - (segments_.size() - 1) * kSegmentCapacity
               : kSegmentCapacity;
  }
  Value* NewSegment();

  numa::NodeMemoryManager* memory_;
  std::vector<Value*> segments_;
  uint64_t size_ = 0;
};

}  // namespace eris::storage
