// Segmented append-only column store.
//
// A column is a sequence of fixed-size segments allocated from the owning
// NUMA node's memory manager. Segments make the load balancer's transfers
// cheap: intra-node "link" transfer moves segment pointers, inter-node
// "copy" transfer streams raw segment payloads. Scans run directly over the
// contiguous segment arrays (bandwidth-bound, the paper's Figure 9 workload).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/bit_util.h"
#include "common/logging.h"
#include "common/simd.h"
#include "numa/memory_manager.h"
#include "storage/types.h"

namespace eris::storage {

/// Per-segment min/max synopsis. A scan skips a whole segment when its zone
/// cannot intersect the predicate range, and sums it without per-element
/// predication when the zone is fully contained in the range. Zones are
/// conservative: `Set` only widens them (an overwrite never shrinks the
/// synopsis), so they may over-approximate but never miss a value.
struct ZoneMap {
  Value min = ~Value{0};
  Value max = 0;  // min > max <=> no value recorded yet

  bool Excludes(Value lo, Value hi) const { return max < lo || min > hi; }
  bool CoveredBy(Value lo, Value hi) const {
    return min <= max && min >= lo && max <= hi;
  }
};

/// \brief Single-writer append-only column of 64-bit values.
class ColumnStore {
 public:
  /// Values per segment. 64K entries = 512 KiB per segment.
  static constexpr size_t kSegmentCapacity = 64 * 1024;

  explicit ColumnStore(numa::NodeMemoryManager* memory);
  ~ColumnStore();

  ColumnStore(ColumnStore&& other) noexcept;
  ColumnStore& operator=(ColumnStore&& other) noexcept;
  ColumnStore(const ColumnStore&) = delete;
  ColumnStore& operator=(const ColumnStore&) = delete;

  /// Appends one value; returns its tuple id.
  TupleId Append(Value v);

  /// Appends a batch of values.
  void AppendBatch(std::span<const Value> values);

  /// Value at tuple id `tid` (must be < size()).
  Value Get(TupleId tid) const {
    ERIS_DCHECK(tid < size_);
    return segments_[tid / kSegmentCapacity][tid % kSegmentCapacity];
  }

  /// Overwrites the value at `tid` (used by the MVCC layer's in-place
  /// current version). Widens the segment's zone map; it is rebuilt exactly
  /// the next time the segment is split or absorbed.
  void Set(TupleId tid, Value v) {
    ERIS_DCHECK(tid < size_);
    segments_[tid / kSegmentCapacity][tid % kSegmentCapacity] = v;
    Widen(&zones_[tid / kSegmentCapacity], v);
  }

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint64_t memory_bytes() const {
    return segments_.size() * kSegmentCapacity * sizeof(Value);
  }
  size_t num_segments() const { return segments_.size(); }
  numa::NodeMemoryManager* memory_manager() const { return memory_; }

  /// Applies fn(tid, value) to every tuple. Runs over raw segment arrays.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    TupleId tid = 0;
    for (size_t s = 0; s < segments_.size(); ++s) {
      const Value* seg = segments_[s];
      size_t n = SegmentSize(s);
      for (size_t i = 0; i < n; ++i) fn(tid++, seg[i]);
    }
  }

  /// Sums all values in [lo, hi]. Segment-at-a-time over the vectorized
  /// kernels (common/simd.h); zone maps skip non-intersecting segments and
  /// drop the predicate for fully-covered ones, keeping the hot loop
  /// memory-bandwidth-bound.
  uint64_t ScanSum(Value lo, Value hi) const;

  /// Counts values in [lo, hi].
  uint64_t ScanCount(Value lo, Value hi) const;

  /// Sum and count of values in [lo, hi] over the tuple prefix [0, limit)
  /// in one pass (the MVCC visible-prefix scan; limit is clamped to size()).
  void ScanSumCountPrefix(Value lo, Value hi, uint64_t limit, uint64_t* sum,
                          uint64_t* count) const;

  /// Collects tuple ids with value in [lo, hi] into `out` (appended);
  /// returns the match count. Each segment is counted first so `out` grows
  /// by exact resize instead of per-match push_back.
  uint64_t ScanCollect(Value lo, Value hi, std::vector<TupleId>* out) const;

  /// Detaches the trailing segments holding tuple ids >= `from_tid`
  /// (rounded down to a segment boundary internally is NOT done — from_tid
  /// must be segment aligned for a structural move; otherwise values are
  /// copied). Returns a column owning the moved tail.
  ColumnStore SplitTail(TupleId from_tid);

  /// Appends all tuples of `other` to this column. When both columns share
  /// a memory manager and this column's size is segment-aligned, segments
  /// are relinked without copying.
  void Absorb(ColumnStore&& other);

  /// Raw read access to segment `s` (for serialization and scans).
  std::span<const Value> Segment(size_t s) const {
    return {segments_[s], SegmentSize(s)};
  }

  /// Min/max synopsis of segment `s` (conservative after Set overwrites).
  const ZoneMap& zone(size_t s) const { return zones_[s]; }

  void Clear();

 private:
  size_t SegmentSize(size_t s) const {
    return s + 1 == segments_.size()
               ? size_ - (segments_.size() - 1) * kSegmentCapacity
               : kSegmentCapacity;
  }
  Value* NewSegment();

  static void Widen(ZoneMap* z, Value v) {
    if (v < z->min) z->min = v;
    if (v > z->max) z->max = v;
  }
  static void Widen(ZoneMap* z, const Value* data, size_t n) {
    for (size_t i = 0; i < n; ++i) Widen(z, data[i]);
  }
  /// Recomputes segment `s`'s zone exactly from its current contents.
  void RebuildZone(size_t s) {
    zones_[s] = ZoneMap{};
    Widen(&zones_[s], segments_[s], SegmentSize(s));
  }

  numa::NodeMemoryManager* memory_;
  std::vector<Value*> segments_;
  std::vector<ZoneMap> zones_;  ///< parallel to segments_
  uint64_t size_ = 0;
};

}  // namespace eris::storage
