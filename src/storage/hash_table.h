// Per-partition open-addressing hash table.
//
// ERIS primarily range-partitions data objects, but supports hash tables by
// using an independent hash function per partition: the *routing* still uses
// the order-preserving range partition table on the key, while the storage
// within a partition is a hash table (useful for point-lookup-only objects
// and for materializing join hash tables NUMA-locally).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/bit_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "numa/memory_manager.h"
#include "storage/types.h"

namespace eris::storage {

/// \brief Single-writer linear-probing hash table mapping Key -> Value.
///
/// The hash function is salted per instance (= per partition), which spreads
/// probe sequences differently in every partition.
class HashTable {
 public:
  explicit HashTable(numa::NodeMemoryManager* memory, uint64_t salt = 0,
                     size_t initial_capacity = 1024);
  ~HashTable();

  HashTable(HashTable&& other) noexcept;
  HashTable& operator=(HashTable&& other) noexcept;
  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;

  /// Inserts key if absent; returns true when new.
  bool Insert(Key key, Value value);
  /// Inserts or overwrites; returns true when the key was new.
  bool Upsert(Key key, Value value);
  std::optional<Value> Lookup(Key key) const;

  /// Looks up a batch; out[i]/found[i] describe keys[i]. Returns #found.
  /// Software-pipelined: the home slots of kBatchGroup probes are hashed
  /// up front and their state/key lines prefetched before any probe chain
  /// is walked, so the (random) first touches overlap instead of
  /// serializing. `stats`, when non-null, accumulates the number of home
  /// cache lines touched (probe-chain extensions charge nothing extra —
  /// they are nearly always on the already-fetched line at 0.7 load).
  size_t BatchLookup(std::span<const Key> keys, Value* out, bool* found,
                     BatchLookupStats* stats = nullptr) const;

  /// Probes kept in flight by BatchLookup.
  static constexpr size_t kBatchGroup = 16;

  /// Removes a key (backward-shift deletion keeps probe chains intact).
  bool Erase(Key key);

  /// Applies fn(key, value) to every entry (unspecified order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < capacity_; ++i) {
      if (states_[i] == SlotState::kFull) fn(keys_[i], values_[i]);
    }
  }

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  uint64_t memory_bytes() const {
    return capacity_ * (sizeof(Key) + sizeof(Value) + 1);
  }
  uint64_t salt() const { return salt_; }
  numa::NodeMemoryManager* memory_manager() const { return memory_; }

  void Clear();

 private:
  enum class SlotState : uint8_t { kEmpty = 0, kFull = 1 };

  size_t Slot(Key key) const {
    return static_cast<size_t>(Mix64(key ^ salt_)) & (capacity_ - 1);
  }
  void Grow();
  void AllocateArrays(size_t capacity);
  void FreeArrays();
  size_t FindSlot(Key key, bool* found) const;

  numa::NodeMemoryManager* memory_;
  uint64_t salt_;
  size_t capacity_ = 0;
  uint64_t size_ = 0;
  Key* keys_ = nullptr;
  Value* values_ = nullptr;
  SlotState* states_ = nullptr;
};

}  // namespace eris::storage
