// Generalized prefix tree (trie) index — the paper's index structure [7].
//
// Order preserving, in-memory optimized, high update throughput. Keys are
// fixed-width integers interpreted as a big-endian digit string of
// `prefix_bits`-wide digits; each digit selects a child in an interior node,
// the last digit selects a slot in a leaf node (value array + presence
// bitmap). All node memory comes from the owning NUMA node's memory manager,
// which makes the load balancer's "link" transfer (structural splice between
// AEUs of the same node) safe and cheap.
//
// The tree is single-writer: each partition belongs to exactly one AEU, so
// no latching is needed (the data-oriented architecture's core invariant).
// The NUMA-agnostic baseline uses its own CAS-based variant
// (baseline/shared_tree.h).
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "common/bit_util.h"
#include "common/logging.h"
#include "numa/memory_manager.h"
#include "storage/types.h"

namespace eris::storage {

struct PrefixTreeConfig {
  /// Digit width in bits; fanout is 2^prefix_bits. The paper's default is 8.
  uint32_t prefix_bits = 8;
  /// Number of significant key bits. Dense domains use fewer bits for a
  /// shallower tree (e.g. 32 for up to 4G keys).
  uint32_t key_bits = 64;
};

/// \brief Single-writer generalized prefix tree mapping Key -> Value.
class PrefixTree {
 public:
  PrefixTree(numa::NodeMemoryManager* memory, PrefixTreeConfig config = {});
  ~PrefixTree();

  PrefixTree(PrefixTree&& other) noexcept;
  PrefixTree& operator=(PrefixTree&& other) noexcept;
  PrefixTree(const PrefixTree&) = delete;
  PrefixTree& operator=(const PrefixTree&) = delete;

  /// Inserts key if absent. Returns true when a new key was added.
  bool Insert(Key key, Value value);

  /// Inserts or overwrites. Returns true when the key was new.
  bool Upsert(Key key, Value value);

  /// Removes a key. Returns true when it existed.
  bool Erase(Key key);

  std::optional<Value> Lookup(Key key) const;

  /// Looks up a batch; out[i]/found[i] describe keys[i]. Returns #found.
  /// Batching amortizes per-call overhead and lets the AEU hide memory
  /// latency (the paper's command-grouping optimization): the descent is
  /// software-pipelined with kBatchGroup probes in flight per level, each
  /// prefetching its next child before any is dereferenced. `stats`, when
  /// non-null, accumulates the adjacent-deduplicated count of tree nodes
  /// the batch touched (see storage::BatchLookupStats).
  size_t BatchLookup(std::span<const Key> keys, Value* out, bool* found,
                     BatchLookupStats* stats = nullptr) const;

  /// Probes kept in flight per level by BatchLookup.
  static constexpr size_t kBatchGroup = 16;

  /// As Lookup, additionally appending the address of every visited tree
  /// node to `trace` (for the cache simulator).
  std::optional<Value> LookupTraced(Key key,
                                    std::vector<const void*>* trace) const;

  /// Applies fn(key, value) to every entry with lo <= key < hi in ascending
  /// key order. Returns the number of entries visited.
  template <typename Fn>
  uint64_t RangeScan(Key lo, Key hi, Fn&& fn) const {
    if (root_ == nullptr || lo >= hi) return 0;
    return ScanRec(root_, 0, 0, lo, hi - 1, fn);
  }

  /// Applies fn(key, value) to every entry in ascending key order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    RangeScan(kMinKey, kMaxKey, fn);
    // kMaxKey itself is a valid key; RangeScan's hi is exclusive.
    if (auto v = Lookup(kMaxKey)) fn(kMaxKey, *v);
  }

  /// Splits off every entry with key >= boundary into a newly returned tree
  /// (same configuration and memory manager). Structural: moves whole
  /// subtrees, O(depth * fanout) plus the split path.
  PrefixTree SplitOff(Key boundary);

  /// Steals all entries of `other` into this tree. When both trees share a
  /// memory manager the merge splices subtrees without copying ("link"
  /// transfer); otherwise entries are re-inserted ("copy" semantics).
  /// Key sets should be disjoint; on collision the other value wins.
  void Absorb(PrefixTree&& other);

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Bytes of node memory currently allocated by this tree.
  uint64_t memory_bytes() const { return memory_bytes_; }
  uint32_t levels() const { return levels_; }
  const PrefixTreeConfig& config() const { return config_; }
  numa::NodeMemoryManager* memory_manager() const { return memory_; }

  /// Smallest key in the tree (nullopt when empty).
  std::optional<Key> MinKey() const;
  /// Largest key in the tree (nullopt when empty).
  std::optional<Key> MaxKey() const;

  void Clear();

 private:
  // Nodes are raw allocations:
  //  * interior: fanout_ child pointers (void*), null = absent.
  //  * leaf:     fanout_ Values followed by fanout_/64 presence bitmap words.
  using NodePtr = void*;

  uint32_t fanout() const { return fanout_; }
  size_t InteriorBytes() const { return sizeof(NodePtr) * fanout_; }
  size_t LeafBytes() const {
    return sizeof(Value) * fanout_ + sizeof(uint64_t) * BitmapWords();
  }
  size_t BitmapWords() const { return (fanout_ + 63) / 64; }

  NodePtr* Children(NodePtr node) const {
    return static_cast<NodePtr*>(node);
  }
  Value* LeafValues(NodePtr node) const { return static_cast<Value*>(node); }
  uint64_t* LeafBitmap(NodePtr node) const {
    return reinterpret_cast<uint64_t*>(static_cast<Value*>(node) + fanout_);
  }
  bool LeafTest(NodePtr leaf, uint32_t slot) const {
    return (LeafBitmap(leaf)[slot >> 6] >> (slot & 63)) & 1;
  }
  void LeafSet(NodePtr leaf, uint32_t slot) const {
    LeafBitmap(leaf)[slot >> 6] |= uint64_t{1} << (slot & 63);
  }
  void LeafClear(NodePtr leaf, uint32_t slot) const {
    LeafBitmap(leaf)[slot >> 6] &= ~(uint64_t{1} << (slot & 63));
  }

  /// Digit of `key` at level d (0 = most significant digit).
  uint32_t Digit(Key key, uint32_t level) const {
    uint32_t shift = (levels_ - 1 - level) * config_.prefix_bits;
    return static_cast<uint32_t>((key >> shift) & (fanout_ - 1));
  }
  /// Bits of `key` strictly below level d's digit.
  Key BitsBelow(Key key, uint32_t level) const {
    uint32_t shift = (levels_ - 1 - level) * config_.prefix_bits;
    return shift >= 64 ? 0 : key & ((Key{1} << shift) - 1);
  }

  bool IsLeafLevel(uint32_t level) const { return level + 1 == levels_; }

  /// Number of entries in the subtree rooted at `node` (at `level`).
  uint64_t CountRec(NodePtr node, uint32_t level) const;

  NodePtr NewInterior();
  NodePtr NewLeaf();
  void FreeNode(NodePtr node, uint32_t level);
  void FreeRec(NodePtr node, uint32_t level);

  /// Core of Insert/Upsert.
  bool Put(Key key, Value value, bool overwrite);

  /// Moves all entries with key >= boundary out of `node` into a returned
  /// sibling node (or null); `moved` accumulates the entry count.
  NodePtr SplitRec(NodePtr node, uint32_t level, Key boundary,
                   uint64_t* moved);

  /// Splices `theirs` into `mine`; both from the same manager. Returns the
  /// merged node. `absorbed` accumulates entries added to this tree.
  NodePtr MergeRec(NodePtr mine, NodePtr theirs, uint32_t level,
                   uint64_t* absorbed);

  template <typename Fn>
  uint64_t ScanRec(NodePtr node, uint32_t level, Key prefix, Key lo,
                   Key hi_inclusive, Fn&& fn) const {
    const uint32_t shift = (levels_ - 1 - level) * config_.prefix_bits;
    // Digit bounds for this subtree given the query interval.
    uint32_t from = 0;
    uint32_t to = fanout_ - 1;
    // The subtree covers keys [prefix, prefix | ones(shift + digit bits)).
    // Clamp the digit range by comparing against the query bounds.
    auto digit_of = [&](Key k) {
      return static_cast<uint32_t>((k >> shift) & (fanout_ - 1));
    };
    Key subtree_span_mask =
        shift + config_.prefix_bits >= 64
            ? ~Key{0}
            : ((Key{1} << (shift + config_.prefix_bits)) - 1);
    Key sub_lo = prefix;
    Key sub_hi = prefix | subtree_span_mask;
    if (lo > sub_lo) from = digit_of(lo);
    if (hi_inclusive < sub_hi) to = digit_of(hi_inclusive);
    uint64_t visited = 0;
    if (IsLeafLevel(level)) {
      for (uint32_t slot = from; slot <= to; ++slot) {
        if (!LeafTest(node, slot)) continue;
        Key key = prefix | (static_cast<Key>(slot) << shift);
        if (key < lo || key > hi_inclusive) continue;
        fn(key, LeafValues(node)[slot]);
        ++visited;
      }
      return visited;
    }
    for (uint32_t slot = from; slot <= to; ++slot) {
      NodePtr child = Children(node)[slot];
      if (child == nullptr) continue;
      Key child_prefix = prefix | (static_cast<Key>(slot) << shift);
      // Only the boundary children need further clamping; interior ones are
      // fully contained, but passing lo/hi is still correct.
      visited += ScanRec(child, level + 1, child_prefix, lo, hi_inclusive, fn);
    }
    return visited;
  }

  numa::NodeMemoryManager* memory_;
  PrefixTreeConfig config_;
  uint32_t fanout_ = 0;
  uint32_t levels_ = 0;
  NodePtr root_ = nullptr;
  uint64_t size_ = 0;
  uint64_t memory_bytes_ = 0;
};

}  // namespace eris::storage
