// Fundamental storage-layer types.
#pragma once

#include <cstdint>
#include <limits>

namespace eris::storage {

/// Keys and values are fixed-width 64-bit integers (the paper's workloads
/// are integer key/value; wider tuples live in additional columns).
using Key = uint64_t;
using Value = uint64_t;

/// Identifier of a data object (table/index) within an engine.
using ObjectId = uint32_t;

/// Position of a tuple inside a column partition.
using TupleId = uint64_t;

inline constexpr Key kMinKey = 0;
inline constexpr Key kMaxKey = std::numeric_limits<Key>::max();

/// Physical representation of a data object's partitions.
enum class ContainerKind : uint8_t {
  kIndex = 0,   ///< order-preserving prefix tree
  kColumn = 1,  ///< append-only column store
  kHash = 2,    ///< per-partition hash table (not order preserving)
};

/// How a data object is split across AEUs.
enum class PartitioningKind : uint8_t {
  /// Range partitioning on the key attribute (order preserving; supports
  /// lookups, range scans, and range-based load balancing).
  kRange = 0,
  /// Physical-size partitioning for objects that are only ever scanned in
  /// their entirety (no partitioning attribute; multicast distribution).
  kPhysical = 1,
  /// Hash partitioning on the key attribute. The paper decides against it
  /// for ERIS — it is not order preserving, so range scans must visit
  /// every partition and ranges cannot be rebalanced. Implemented here to
  /// quantify that trade-off (see bench_ablation_partitioning).
  kHashed = 2,
};

/// Unique-node statistics of one batch index probe. `nodes_touched` counts
/// adjacent-deduplicated node (or cache-line) visits: exact for sorted or
/// run-clustered batches, an upper bound otherwise. The AEU uses it to
/// charge the simulated cost model per node actually touched instead of
/// per key, so coalesced lookups sharing a descent path get the shared
/// cache benefit the paper's command grouping exists for.
struct BatchLookupStats {
  uint64_t nodes_touched = 0;
};

/// Half-open key interval [lo, hi).
struct KeyRange {
  Key lo = kMinKey;
  Key hi = kMaxKey;  // exclusive; kMaxKey means "to the end of the domain"

  bool Contains(Key k) const { return k >= lo && (k < hi || hi == kMaxKey); }
  bool Empty() const { return lo >= hi; }
};

}  // namespace eris::storage
