// Data-object metadata.
#pragma once

#include <string>

#include "storage/prefix_tree.h"
#include "storage/types.h"

namespace eris::storage {

/// \brief Schema-level description of a data object (a table column or an
///        index) stored in ERIS.
///
/// The container kind fixes the physical representation of every partition;
/// the partitioning kind fixes how the object is split over AEUs and which
/// partition-table flavor routes its commands:
///  * kRange  -> range partition table (CSB+-tree), order preserving.
///  * kPhysical -> bitmap partition table, multicast full scans, balanced by
///    physical partition size.
struct DataObjectDesc {
  ObjectId id = 0;
  std::string name;
  ContainerKind container = ContainerKind::kIndex;
  PartitioningKind partitioning = PartitioningKind::kRange;
  /// Tree geometry for kIndex containers.
  PrefixTreeConfig index_config;
  /// Exclusive upper bound of the key domain (range-partitioned objects).
  /// The load balancer interpolates boundaries within this domain.
  Key domain_hi = kMaxKey;

  /// The canonical pairing used throughout the paper: indexes and hash
  /// tables are range partitioned (hash tables use per-partition hash
  /// functions), whole-scan columns are physically partitioned.
  static DataObjectDesc Index(ObjectId id, std::string name,
                              PrefixTreeConfig config = {}) {
    DataObjectDesc d;
    d.id = id;
    d.name = std::move(name);
    d.container = ContainerKind::kIndex;
    d.partitioning = PartitioningKind::kRange;
    d.index_config = config;
    return d;
  }
  static DataObjectDesc Column(ObjectId id, std::string name) {
    DataObjectDesc d;
    d.id = id;
    d.name = std::move(name);
    d.container = ContainerKind::kColumn;
    d.partitioning = PartitioningKind::kPhysical;
    return d;
  }
  static DataObjectDesc Hash(ObjectId id, std::string name) {
    DataObjectDesc d;
    d.id = id;
    d.name = std::move(name);
    d.container = ContainerKind::kHash;
    d.partitioning = PartitioningKind::kRange;
    return d;
  }
};

}  // namespace eris::storage
