#include "storage/column_store.h"

namespace eris::storage {

ColumnStore::ColumnStore(numa::NodeMemoryManager* memory) : memory_(memory) {
  ERIS_CHECK(memory != nullptr);
}

ColumnStore::~ColumnStore() { Clear(); }

ColumnStore::ColumnStore(ColumnStore&& other) noexcept
    : memory_(other.memory_),
      segments_(std::move(other.segments_)),
      size_(other.size_) {
  other.segments_.clear();
  other.size_ = 0;
}

ColumnStore& ColumnStore::operator=(ColumnStore&& other) noexcept {
  if (this != &other) {
    Clear();
    memory_ = other.memory_;
    segments_ = std::move(other.segments_);
    size_ = other.size_;
    other.segments_.clear();
    other.size_ = 0;
  }
  return *this;
}

void ColumnStore::Clear() {
  for (Value* seg : segments_)
    memory_->Free(seg, kSegmentCapacity * sizeof(Value));
  segments_.clear();
  size_ = 0;
}

Value* ColumnStore::NewSegment() {
  return static_cast<Value*>(
      memory_->Allocate(kSegmentCapacity * sizeof(Value)));
}

TupleId ColumnStore::Append(Value v) {
  size_t offset = size_ % kSegmentCapacity;
  if (offset == 0 && size_ == segments_.size() * kSegmentCapacity)
    segments_.push_back(NewSegment());
  segments_.back()[offset] = v;
  return size_++;
}

void ColumnStore::AppendBatch(std::span<const Value> values) {
  size_t i = 0;
  while (i < values.size()) {
    size_t offset = size_ % kSegmentCapacity;
    if (offset == 0 && size_ == segments_.size() * kSegmentCapacity) {
      segments_.push_back(NewSegment());
    }
    size_t room = kSegmentCapacity - offset;
    size_t n = std::min(room, values.size() - i);
    std::memcpy(segments_.back() + offset, values.data() + i,
                n * sizeof(Value));
    size_ += n;
    i += n;
  }
}

uint64_t ColumnStore::ScanSum(Value lo, Value hi) const {
  uint64_t sum = 0;
  for (size_t s = 0; s < segments_.size(); ++s) {
    const Value* seg = segments_[s];
    size_t n = SegmentSize(s);
    for (size_t i = 0; i < n; ++i) {
      Value v = seg[i];
      // Branch-free predicated add keeps the loop bandwidth-bound.
      sum += (v >= lo && v <= hi) ? v : 0;
    }
  }
  return sum;
}

uint64_t ColumnStore::ScanCount(Value lo, Value hi) const {
  uint64_t count = 0;
  for (size_t s = 0; s < segments_.size(); ++s) {
    const Value* seg = segments_[s];
    size_t n = SegmentSize(s);
    for (size_t i = 0; i < n; ++i) {
      count += (seg[i] >= lo && seg[i] <= hi) ? 1 : 0;
    }
  }
  return count;
}

uint64_t ColumnStore::ScanCollect(Value lo, Value hi,
                                  std::vector<TupleId>* out) const {
  uint64_t count = 0;
  TupleId tid = 0;
  for (size_t s = 0; s < segments_.size(); ++s) {
    const Value* seg = segments_[s];
    size_t n = SegmentSize(s);
    for (size_t i = 0; i < n; ++i, ++tid) {
      if (seg[i] >= lo && seg[i] <= hi) {
        out->push_back(tid);
        ++count;
      }
    }
  }
  return count;
}

ColumnStore ColumnStore::SplitTail(TupleId from_tid) {
  ColumnStore tail(memory_);
  if (from_tid >= size_) return tail;
  if (from_tid % kSegmentCapacity == 0) {
    // Structural move of whole segments.
    size_t first_seg = from_tid / kSegmentCapacity;
    tail.segments_.assign(segments_.begin() + static_cast<ptrdiff_t>(first_seg),
                          segments_.end());
    tail.size_ = size_ - from_tid;
    segments_.resize(first_seg);
    size_ = from_tid;
    return tail;
  }
  // Unaligned boundary: copy the tail values, then truncate.
  for (TupleId t = from_tid; t < size_; ++t) tail.Append(Get(t));
  // Free now-unused whole segments past the boundary.
  size_t needed_segs = static_cast<size_t>(eris::CeilDiv(from_tid, kSegmentCapacity));
  if (from_tid == 0) needed_segs = 0;
  for (size_t s = needed_segs; s < segments_.size(); ++s)
    memory_->Free(segments_[s], kSegmentCapacity * sizeof(Value));
  segments_.resize(needed_segs);
  size_ = from_tid;
  return tail;
}

void ColumnStore::Absorb(ColumnStore&& other) {
  if (other.size_ == 0) return;
  if (other.memory_ == memory_ && size_ % kSegmentCapacity == 0) {
    segments_.insert(segments_.end(), other.segments_.begin(),
                     other.segments_.end());
    size_ += other.size_;
    other.segments_.clear();
    other.size_ = 0;
    return;
  }
  other.ForEach([this](TupleId, Value v) { Append(v); });
  other.Clear();
}

}  // namespace eris::storage
