#include "storage/column_store.h"

#include <algorithm>
#include <numeric>

namespace eris::storage {

ColumnStore::ColumnStore(numa::NodeMemoryManager* memory) : memory_(memory) {
  ERIS_CHECK(memory != nullptr);
}

ColumnStore::~ColumnStore() { Clear(); }

ColumnStore::ColumnStore(ColumnStore&& other) noexcept
    : memory_(other.memory_),
      segments_(std::move(other.segments_)),
      zones_(std::move(other.zones_)),
      size_(other.size_) {
  other.segments_.clear();
  other.zones_.clear();
  other.size_ = 0;
}

ColumnStore& ColumnStore::operator=(ColumnStore&& other) noexcept {
  if (this != &other) {
    Clear();
    memory_ = other.memory_;
    segments_ = std::move(other.segments_);
    zones_ = std::move(other.zones_);
    size_ = other.size_;
    other.segments_.clear();
    other.zones_.clear();
    other.size_ = 0;
  }
  return *this;
}

void ColumnStore::Clear() {
  for (Value* seg : segments_)
    memory_->Free(seg, kSegmentCapacity * sizeof(Value));
  segments_.clear();
  zones_.clear();
  size_ = 0;
}

Value* ColumnStore::NewSegment() {
  return static_cast<Value*>(
      memory_->Allocate(kSegmentCapacity * sizeof(Value)));
}

TupleId ColumnStore::Append(Value v) {
  size_t offset = size_ % kSegmentCapacity;
  if (offset == 0 && size_ == segments_.size() * kSegmentCapacity) {
    segments_.push_back(NewSegment());
    zones_.emplace_back();
  }
  segments_.back()[offset] = v;
  Widen(&zones_.back(), v);
  return size_++;
}

void ColumnStore::AppendBatch(std::span<const Value> values) {
  size_t i = 0;
  while (i < values.size()) {
    size_t offset = size_ % kSegmentCapacity;
    if (offset == 0 && size_ == segments_.size() * kSegmentCapacity) {
      segments_.push_back(NewSegment());
      zones_.emplace_back();
    }
    size_t room = kSegmentCapacity - offset;
    size_t n = std::min(room, values.size() - i);
    std::memcpy(segments_.back() + offset, values.data() + i,
                n * sizeof(Value));
    Widen(&zones_.back(), values.data() + i, n);
    size_ += n;
    i += n;
  }
}

uint64_t ColumnStore::ScanSum(Value lo, Value hi) const {
  uint64_t sum = 0;
  for (size_t s = 0; s < segments_.size(); ++s) {
    const ZoneMap& z = zones_[s];
    if (z.Excludes(lo, hi)) continue;
    size_t n = SegmentSize(s);
    sum += z.CoveredBy(lo, hi) ? simd::SumAll(segments_[s], n)
                               : simd::ScanSum(segments_[s], n, lo, hi);
  }
  return sum;
}

uint64_t ColumnStore::ScanCount(Value lo, Value hi) const {
  uint64_t count = 0;
  for (size_t s = 0; s < segments_.size(); ++s) {
    const ZoneMap& z = zones_[s];
    if (z.Excludes(lo, hi)) continue;
    size_t n = SegmentSize(s);
    count += z.CoveredBy(lo, hi) ? n : simd::ScanCount(segments_[s], n, lo, hi);
  }
  return count;
}

void ColumnStore::ScanSumCountPrefix(Value lo, Value hi, uint64_t limit,
                                     uint64_t* sum, uint64_t* count) const {
  limit = std::min(limit, size_);
  uint64_t total_sum = 0;
  uint64_t total_count = 0;
  for (size_t s = 0; s * kSegmentCapacity < limit; ++s) {
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(SegmentSize(s), limit - s * kSegmentCapacity));
    const ZoneMap& z = zones_[s];
    if (z.Excludes(lo, hi)) continue;
    if (z.CoveredBy(lo, hi)) {
      total_sum += simd::SumAll(segments_[s], n);
      total_count += n;
    } else {
      uint64_t seg_sum = 0;
      uint64_t seg_count = 0;
      simd::ScanSumCount(segments_[s], n, lo, hi, &seg_sum, &seg_count);
      total_sum += seg_sum;
      total_count += seg_count;
    }
  }
  *sum = total_sum;
  *count = total_count;
}

uint64_t ColumnStore::ScanCollect(Value lo, Value hi,
                                  std::vector<TupleId>* out) const {
  uint64_t total = 0;
  for (size_t s = 0; s < segments_.size(); ++s) {
    const ZoneMap& z = zones_[s];
    if (z.Excludes(lo, hi)) continue;
    size_t n = SegmentSize(s);
    TupleId base = s * kSegmentCapacity;
    size_t old = out->size();
    if (z.CoveredBy(lo, hi)) {
      out->resize(old + n);
      std::iota(out->begin() + static_cast<ptrdiff_t>(old), out->end(), base);
      total += n;
      continue;
    }
    // Count first, then collect into the exactly-sized tail: two streams of
    // one cache-resident segment beat per-match push_back reallocation.
    uint64_t matches = simd::ScanCount(segments_[s], n, lo, hi);
    if (matches == 0) continue;
    out->resize(old + matches);
    simd::ScanCollect(segments_[s], n, lo, hi, base, out->data() + old);
    total += matches;
  }
  return total;
}

ColumnStore ColumnStore::SplitTail(TupleId from_tid) {
  ColumnStore tail(memory_);
  if (from_tid >= size_) return tail;
  if (from_tid % kSegmentCapacity == 0) {
    // Structural move of whole segments (zones travel with them).
    size_t first_seg = from_tid / kSegmentCapacity;
    tail.segments_.assign(segments_.begin() + static_cast<ptrdiff_t>(first_seg),
                          segments_.end());
    tail.zones_.assign(zones_.begin() + static_cast<ptrdiff_t>(first_seg),
                       zones_.end());
    tail.size_ = size_ - from_tid;
    segments_.resize(first_seg);
    zones_.resize(first_seg);
    size_ = from_tid;
    return tail;
  }
  // Unaligned boundary: copy the tail values, then truncate.
  for (TupleId t = from_tid; t < size_; ++t) tail.Append(Get(t));
  // Free now-unused whole segments past the boundary.
  size_t needed_segs = static_cast<size_t>(eris::CeilDiv(from_tid, kSegmentCapacity));
  if (from_tid == 0) needed_segs = 0;
  for (size_t s = needed_segs; s < segments_.size(); ++s)
    memory_->Free(segments_[s], kSegmentCapacity * sizeof(Value));
  segments_.resize(needed_segs);
  zones_.resize(needed_segs);
  size_ = from_tid;
  // The kept boundary segment lost its tail values: rebuild its zone so it
  // is exact again (and loses any Set-induced over-approximation).
  if (!segments_.empty()) RebuildZone(segments_.size() - 1);
  return tail;
}

void ColumnStore::Absorb(ColumnStore&& other) {
  if (other.size_ == 0) return;
  if (other.memory_ == memory_ && size_ % kSegmentCapacity == 0) {
    segments_.insert(segments_.end(), other.segments_.begin(),
                     other.segments_.end());
    zones_.insert(zones_.end(), other.zones_.begin(), other.zones_.end());
    size_ += other.size_;
    other.segments_.clear();
    other.zones_.clear();
    other.size_ = 0;
    return;
  }
  other.ForEach([this](TupleId, Value v) { Append(v); });
  other.Clear();
}

}  // namespace eris::storage
