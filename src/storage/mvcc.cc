#include "storage/mvcc.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace eris::storage {

namespace {
constexpr size_t kInitialChainSlots = 64;
}  // namespace

TupleId MvccColumn::Append(Value v, uint64_t ts) {
  ERIS_DCHECK(ts >= last_ts_) << "single-writer commits must be monotonic";
  last_ts_ = ts;
  TupleId tid = column_.Append(v);
  if (!frontier_.empty() && frontier_.back().first == ts) {
    frontier_.back().second = column_.size();
  } else {
    frontier_.emplace_back(ts, column_.size());
  }
  return tid;
}

uint32_t MvccColumn::AllocVersion(uint64_t overwritten_at, Value old_value) {
  uint32_t idx;
  if (free_versions_ != kNilVersion) {
    idx = free_versions_;
    free_versions_ = versions_[idx].next;
  } else {
    ERIS_CHECK_LT(versions_.size(), kNilVersion);
    idx = static_cast<uint32_t>(versions_.size());
    versions_.resize(versions_.size() + 1);
  }
  versions_[idx] = VersionNode{overwritten_at, old_value, kNilVersion};
  return idx;
}

size_t MvccColumn::free_versions() const {
  size_t n = 0;
  for (uint32_t i = free_versions_; i != kNilVersion; i = versions_[i].next) {
    ++n;
  }
  return n;
}

const MvccColumn::Chain* MvccColumn::FindChain(TupleId tid) const {
  if (chain_count_ == 0) return nullptr;
  size_t mask = chains_.size() - 1;
  size_t i = Mix64(tid) & mask;
  while (chains_[i].tid != kEmptyChainSlot) {
    if (chains_[i].tid == tid) return &chains_[i];
    i = (i + 1) & mask;
  }
  return nullptr;
}

void MvccColumn::RehashChains(size_t slots) {
  chain_scratch_.clear();
  for (const Chain& c : chains_) {
    if (c.tid != kEmptyChainSlot) chain_scratch_.push_back(c);
  }
  chains_.assign(slots, Chain{kEmptyChainSlot, kNilVersion, kNilVersion});
  size_t mask = slots - 1;
  for (const Chain& c : chain_scratch_) {
    size_t i = Mix64(c.tid) & mask;
    while (chains_[i].tid != kEmptyChainSlot) i = (i + 1) & mask;
    chains_[i] = c;
  }
}

MvccColumn::Chain* MvccColumn::ChainSlotFor(TupleId tid) {
  if (chains_.empty()) {
    RehashChains(kInitialChainSlots);
  } else if ((chain_count_ + 1) * 4 > chains_.size() * 3) {
    RehashChains(chains_.size() * 2);
  }
  size_t mask = chains_.size() - 1;
  size_t i = Mix64(tid) & mask;
  while (chains_[i].tid != kEmptyChainSlot && chains_[i].tid != tid) {
    i = (i + 1) & mask;
  }
  if (chains_[i].tid == kEmptyChainSlot) {
    chains_[i] = Chain{tid, kNilVersion, kNilVersion};
    ++chain_count_;
  }
  return &chains_[i];
}

void MvccColumn::Update(TupleId tid, Value v, uint64_t ts) {
  ERIS_DCHECK(ts >= last_ts_);
  last_ts_ = ts;
  Value old = column_.Get(tid);
  uint32_t node = AllocVersion(ts, old);
  Chain* c = ChainSlotFor(tid);
  if (c->tail == kNilVersion) {
    c->head = node;
  } else {
    versions_[c->tail].next = node;
  }
  c->tail = node;
  column_.Set(tid, v);
}

Value MvccColumn::Read(TupleId tid, uint64_t snapshot_ts) const {
  if (const Chain* c = FindChain(tid)) {
    // Chains are oldest-overwrite first: the first version whose overwrite
    // happened *after* the snapshot still holds the visible value.
    for (uint32_t i = c->head; i != kNilVersion; i = versions_[i].next) {
      if (versions_[i].overwritten_at > snapshot_ts) {
        return versions_[i].old_value;
      }
    }
  }
  return column_.Get(tid);
}

uint64_t MvccColumn::VisibleSize(uint64_t snapshot_ts) const {
  // Largest frontier entry with ts <= snapshot_ts.
  auto it = std::upper_bound(
      frontier_.begin(), frontier_.end(), snapshot_ts,
      [](uint64_t ts, const auto& entry) { return ts < entry.first; });
  if (it == frontier_.begin()) return 0;
  return std::min(std::prev(it)->second, column_.size());
}

void MvccColumn::PublishAt(uint64_t ts) {
  if (column_.size() == 0) return;
  last_ts_ = std::max(last_ts_, ts);
  if (!frontier_.empty() && frontier_.back().first >= ts) {
    frontier_.back().second = column_.size();
  } else {
    frontier_.emplace_back(ts, column_.size());
  }
}

void MvccColumn::AbsorbColumn(ColumnStore&& other, uint64_t ts) {
  if (other.size() == 0) return;
  last_ts_ = std::max(last_ts_, ts);
  column_.Absorb(std::move(other));
  if (!frontier_.empty() && frontier_.back().first >= ts) {
    // Keep the frontier sorted: fold into the newest checkpoint.
    frontier_.back().second = column_.size();
  } else {
    frontier_.emplace_back(ts, column_.size());
  }
}

uint64_t MvccColumn::ScanSum(uint64_t snapshot_ts, Value lo, Value hi) const {
  uint64_t sum = 0;
  uint64_t rows = 0;
  ScanSumCount(snapshot_ts, lo, hi, &sum, &rows);
  return sum;
}

void MvccColumn::ScanSumCount(uint64_t snapshot_ts, Value lo, Value hi,
                              uint64_t* sum, uint64_t* rows) const {
  uint64_t n = VisibleSize(snapshot_ts);
  if (chain_count_ == 0) {
    // No versioned tuples: the visible prefix of the raw column is exactly
    // the snapshot, so the vectorized segment kernels apply.
    column_.ScanSumCountPrefix(lo, hi, n, sum, rows);
    return;
  }
  uint64_t s = 0;
  uint64_t c = 0;
  for (TupleId tid = 0; tid < n; ++tid) {
    Value v = Read(tid, snapshot_ts);
    if (v >= lo && v <= hi) {
      s += v;
      ++c;
    }
  }
  *sum = s;
  *rows = c;
}

void MvccColumn::GarbageCollect(uint64_t watermark) {
  if (chain_count_ > 0) {
    // Rebuild the table from its survivors. A version overwritten at
    // ts <= watermark is invisible to every snapshot >= watermark; chains
    // are ordered oldest first, so the dead part is a prefix and goes back
    // to the free list with one splice. Tuples whose whole chain died
    // leave the table.
    chain_scratch_.clear();
    for (const Chain& c : chains_) {
      if (c.tid != kEmptyChainSlot) chain_scratch_.push_back(c);
    }
    size_t slots = chains_.size();
    chains_.assign(slots, Chain{kEmptyChainSlot, kNilVersion, kNilVersion});
    chain_count_ = 0;
    size_t mask = slots - 1;
    for (const Chain& survivor : chain_scratch_) {
      Chain c = survivor;
      uint32_t dead_head = c.head;
      uint32_t dead_tail = kNilVersion;
      uint32_t cur = c.head;
      while (cur != kNilVersion &&
             versions_[cur].overwritten_at <= watermark) {
        dead_tail = cur;
        cur = versions_[cur].next;
      }
      if (dead_tail != kNilVersion) {
        versions_[dead_tail].next = free_versions_;
        free_versions_ = dead_head;
        c.head = cur;
        if (cur == kNilVersion) c.tail = kNilVersion;
      }
      if (c.head == kNilVersion) continue;
      size_t i = Mix64(c.tid) & mask;
      while (chains_[i].tid != kEmptyChainSlot) i = (i + 1) & mask;
      chains_[i] = c;
      ++chain_count_;
    }
  }
  // Compact the frontier: checkpoints below the watermark collapse into one.
  auto it = std::upper_bound(
      frontier_.begin(), frontier_.end(), watermark,
      [](uint64_t ts, const auto& entry) { return ts < entry.first; });
  if (it != frontier_.begin() && std::distance(frontier_.begin(), it) > 1) {
    frontier_.erase(frontier_.begin(), std::prev(it));
  }
}

}  // namespace eris::storage
