#include "storage/mvcc.h"

#include <algorithm>

#include "common/logging.h"

namespace eris::storage {

TupleId MvccColumn::Append(Value v, uint64_t ts) {
  ERIS_DCHECK(ts >= last_ts_) << "single-writer commits must be monotonic";
  last_ts_ = ts;
  TupleId tid = column_.Append(v);
  if (!frontier_.empty() && frontier_.back().first == ts) {
    frontier_.back().second = column_.size();
  } else {
    frontier_.emplace_back(ts, column_.size());
  }
  return tid;
}

void MvccColumn::Update(TupleId tid, Value v, uint64_t ts) {
  ERIS_DCHECK(ts >= last_ts_);
  last_ts_ = ts;
  Value old = column_.Get(tid);
  undo_[tid].push_back(UndoEntry{ts, old});
  column_.Set(tid, v);
}

Value MvccColumn::Read(TupleId tid, uint64_t snapshot_ts) const {
  auto it = undo_.find(tid);
  if (it != undo_.end()) {
    // Chains are oldest-overwrite first: the first entry whose overwrite
    // happened *after* the snapshot still holds the visible value.
    for (const UndoEntry& e : it->second) {
      if (e.overwritten_at > snapshot_ts) return e.old_value;
    }
  }
  return column_.Get(tid);
}

uint64_t MvccColumn::VisibleSize(uint64_t snapshot_ts) const {
  // Largest frontier entry with ts <= snapshot_ts.
  auto it = std::upper_bound(
      frontier_.begin(), frontier_.end(), snapshot_ts,
      [](uint64_t ts, const auto& entry) { return ts < entry.first; });
  if (it == frontier_.begin()) return 0;
  return std::min(std::prev(it)->second, column_.size());
}

void MvccColumn::PublishAt(uint64_t ts) {
  if (column_.size() == 0) return;
  last_ts_ = std::max(last_ts_, ts);
  if (!frontier_.empty() && frontier_.back().first >= ts) {
    frontier_.back().second = column_.size();
  } else {
    frontier_.emplace_back(ts, column_.size());
  }
}

void MvccColumn::AbsorbColumn(ColumnStore&& other, uint64_t ts) {
  if (other.size() == 0) return;
  last_ts_ = std::max(last_ts_, ts);
  column_.Absorb(std::move(other));
  if (!frontier_.empty() && frontier_.back().first >= ts) {
    // Keep the frontier sorted: fold into the newest checkpoint.
    frontier_.back().second = column_.size();
  } else {
    frontier_.emplace_back(ts, column_.size());
  }
}

uint64_t MvccColumn::ScanSum(uint64_t snapshot_ts, Value lo, Value hi) const {
  uint64_t sum = 0;
  uint64_t rows = 0;
  ScanSumCount(snapshot_ts, lo, hi, &sum, &rows);
  return sum;
}

void MvccColumn::ScanSumCount(uint64_t snapshot_ts, Value lo, Value hi,
                              uint64_t* sum, uint64_t* rows) const {
  uint64_t n = VisibleSize(snapshot_ts);
  if (undo_.empty()) {
    // No versioned tuples: the visible prefix of the raw column is exactly
    // the snapshot, so the vectorized segment kernels apply.
    column_.ScanSumCountPrefix(lo, hi, n, sum, rows);
    return;
  }
  uint64_t s = 0;
  uint64_t c = 0;
  for (TupleId tid = 0; tid < n; ++tid) {
    Value v = Read(tid, snapshot_ts);
    if (v >= lo && v <= hi) {
      s += v;
      ++c;
    }
  }
  *sum = s;
  *rows = c;
}

void MvccColumn::GarbageCollect(uint64_t watermark) {
  for (auto it = undo_.begin(); it != undo_.end();) {
    std::vector<UndoEntry>& chain = it->second;
    // An entry overwritten at ts <= watermark is invisible to every snapshot
    // >= watermark.
    auto keep_from = std::find_if(
        chain.begin(), chain.end(),
        [&](const UndoEntry& e) { return e.overwritten_at > watermark; });
    chain.erase(chain.begin(), keep_from);
    if (chain.empty()) {
      it = undo_.erase(it);
    } else {
      ++it;
    }
  }
  // Compact the frontier: checkpoints below the watermark collapse into one.
  auto it = std::upper_bound(
      frontier_.begin(), frontier_.end(), watermark,
      [](uint64_t ts, const auto& entry) { return ts < entry.first; });
  if (it != frontier_.begin() && std::distance(frontier_.begin(), it) > 1) {
    frontier_.erase(frontier_.begin(), std::prev(it));
  }
}

}  // namespace eris::storage
