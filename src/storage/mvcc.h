// Lightweight multiversioning for scan sharing.
//
// Analytical workloads are read-mostly; ERIS therefore avoids locking and
// latching entirely and uses a non-blocking multiversion scheme so an AEU
// can coalesce several scan commands into a single shared scan while
// concurrent upserts proceed: each scan reads a consistent snapshot
// timestamp, and updated tuples keep their overwritten values in an undo
// chain until no active snapshot can read them.
//
// Partitions are single-writer (the owning AEU), so version chains need no
// synchronization; only the timestamp oracle is shared and atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "routing/arena_vec.h"
#include "storage/column_store.h"
#include "storage/types.h"

namespace eris::storage {

/// Monotonic logical-timestamp source shared by all AEUs of an engine.
class TimestampOracle {
 public:
  /// Allocates a new write timestamp.
  uint64_t NextWriteTs() { return next_.fetch_add(1, std::memory_order_relaxed); }
  /// Snapshot timestamp: sees exactly the writes with ts <= ReadTs(),
  /// i.e. everything committed so far and nothing issued afterwards.
  uint64_t ReadTs() const {
    return next_.load(std::memory_order_relaxed) - 1;
  }

 private:
  std::atomic<uint64_t> next_{1};
};

/// \brief Column partition with snapshot reads.
///
/// The underlying ColumnStore always holds the newest version in place;
/// overwritten values move into per-tuple undo chains. Tuple visibility for
/// appends uses an append frontier (appends are monotonic in commit ts
/// because the partition has a single writer).
class MvccColumn {
 public:
  explicit MvccColumn(numa::NodeMemoryManager* memory)
      : column_(memory),
        versions_(memory),
        chains_(memory),
        chain_scratch_(memory) {}

  /// Appends a tuple committed at `ts`; `ts` must be >= every prior ts.
  TupleId Append(Value v, uint64_t ts);

  /// Overwrites tuple `tid` at commit timestamp `ts`.
  void Update(TupleId tid, Value v, uint64_t ts);

  /// Value of `tid` as of snapshot `snapshot_ts` (sees writes with
  /// ts <= snapshot_ts). `tid` must be visible at that snapshot.
  Value Read(TupleId tid, uint64_t snapshot_ts) const;

  /// Number of tuples visible at `snapshot_ts` (clamped to the current
  /// column size: structural splits may leave the frontier ahead of the
  /// physically present tuples).
  uint64_t VisibleSize(uint64_t snapshot_ts) const;

  /// Splices `other`'s tuples in as one commit at `ts` (used by partition
  /// transfers, which move raw column segments without version metadata).
  void AbsorbColumn(ColumnStore&& other, uint64_t ts);

  /// Publishes every physically present tuple as one commit at `ts`.
  /// Recovery uses this after Partition::Rebuild, which refills the raw
  /// ColumnStore without frontier entries — without a checkpoint the
  /// rebuilt tuples would be invisible to every snapshot.
  void PublishAt(uint64_t ts);

  /// Applies fn(tid, value) over the snapshot.
  template <typename Fn>
  void ScanSnapshot(uint64_t snapshot_ts, Fn&& fn) const {
    uint64_t n = VisibleSize(snapshot_ts);
    if (chain_count_ == 0) {
      // Fast path: no updated tuples, scan the raw column.
      for (TupleId tid = 0; tid < n; ++tid) fn(tid, column_.Get(tid));
      return;
    }
    for (TupleId tid = 0; tid < n; ++tid) fn(tid, Read(tid, snapshot_ts));
  }

  /// Sum of snapshot-visible values within [lo, hi] — the shared-scan kernel.
  uint64_t ScanSum(uint64_t snapshot_ts, Value lo, Value hi) const;

  /// Sum and row count of snapshot-visible values within [lo, hi] in one
  /// pass. With no undo chains this runs the vectorized segment kernels
  /// over the visible prefix (zone maps included); otherwise it falls back
  /// to the per-tuple versioned read.
  void ScanSumCount(uint64_t snapshot_ts, Value lo, Value hi, uint64_t* sum,
                    uint64_t* rows) const;

  /// Drops undo versions no snapshot >= `watermark` can read and forgets
  /// append-frontier checkpoints older than the watermark.
  void GarbageCollect(uint64_t watermark);

  const ColumnStore& column() const { return column_; }
  ColumnStore& column() { return column_; }
  uint64_t size() const { return column_.size(); }
  size_t undo_chains() const { return chain_count_; }
  /// Pooled version nodes currently on the free list (reuse capacity).
  size_t free_versions() const;

 private:
  /// One overwritten version. Versions are pooled (DESIGN.md §16): nodes
  /// live in a slab vector carved from the partition's node-local manager
  /// and are recycled through an intrusive free list, so a steady update
  /// workload allocates nothing after warm-up — every real slab growth
  /// visits fi::Point::kMvccVersionAlloc. GarbageCollect returns each dead
  /// chain prefix to the free list with a single splice (epoch-batched
  /// free), never a per-version delete.
  struct VersionNode {
    uint64_t overwritten_at;  ///< commit ts of the write that replaced it
    Value old_value;
    uint32_t next;  ///< pool index of the next-newer version
  };
  static constexpr uint32_t kNilVersion = ~uint32_t{0};

  /// Open-addressing slot (linear probing, power-of-two table) mapping a
  /// tuple to its version chain, oldest overwrite at `head`.
  struct Chain {
    TupleId tid;
    uint32_t head;
    uint32_t tail;
  };
  static constexpr TupleId kEmptyChainSlot = ~TupleId{0};

  uint32_t AllocVersion(uint64_t overwritten_at, Value old_value);
  const Chain* FindChain(TupleId tid) const;
  /// Find-or-insert; grows the table at 3/4 load.
  Chain* ChainSlotFor(TupleId tid);
  void RehashChains(size_t slots);

  ColumnStore column_;
  /// (commit ts, column size after that commit); ascending in both fields.
  std::vector<std::pair<uint64_t, uint64_t>> frontier_;
  /// Version-node pool; freed nodes are chained through `next`.
  routing::ArenaVec<VersionNode, fi::Point::kMvccVersionAlloc> versions_;
  uint32_t free_versions_ = kNilVersion;
  /// Chain table (open addressing) + occupied-slot count.
  routing::ArenaVec<Chain, fi::Point::kMvccVersionAlloc> chains_;
  size_t chain_count_ = 0;
  /// Survivor staging for rehash and garbage collection.
  routing::ArenaVec<Chain, fi::Point::kMvccVersionAlloc> chain_scratch_;
  uint64_t last_ts_ = 0;
};

}  // namespace eris::storage
