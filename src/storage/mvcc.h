// Lightweight multiversioning for scan sharing.
//
// Analytical workloads are read-mostly; ERIS therefore avoids locking and
// latching entirely and uses a non-blocking multiversion scheme so an AEU
// can coalesce several scan commands into a single shared scan while
// concurrent upserts proceed: each scan reads a consistent snapshot
// timestamp, and updated tuples keep their overwritten values in an undo
// chain until no active snapshot can read them.
//
// Partitions are single-writer (the owning AEU), so version chains need no
// synchronization; only the timestamp oracle is shared and atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/column_store.h"
#include "storage/types.h"

namespace eris::storage {

/// Monotonic logical-timestamp source shared by all AEUs of an engine.
class TimestampOracle {
 public:
  /// Allocates a new write timestamp.
  uint64_t NextWriteTs() { return next_.fetch_add(1, std::memory_order_relaxed); }
  /// Snapshot timestamp: sees exactly the writes with ts <= ReadTs(),
  /// i.e. everything committed so far and nothing issued afterwards.
  uint64_t ReadTs() const {
    return next_.load(std::memory_order_relaxed) - 1;
  }

 private:
  std::atomic<uint64_t> next_{1};
};

/// \brief Column partition with snapshot reads.
///
/// The underlying ColumnStore always holds the newest version in place;
/// overwritten values move into per-tuple undo chains. Tuple visibility for
/// appends uses an append frontier (appends are monotonic in commit ts
/// because the partition has a single writer).
class MvccColumn {
 public:
  explicit MvccColumn(numa::NodeMemoryManager* memory) : column_(memory) {}

  /// Appends a tuple committed at `ts`; `ts` must be >= every prior ts.
  TupleId Append(Value v, uint64_t ts);

  /// Overwrites tuple `tid` at commit timestamp `ts`.
  void Update(TupleId tid, Value v, uint64_t ts);

  /// Value of `tid` as of snapshot `snapshot_ts` (sees writes with
  /// ts <= snapshot_ts). `tid` must be visible at that snapshot.
  Value Read(TupleId tid, uint64_t snapshot_ts) const;

  /// Number of tuples visible at `snapshot_ts` (clamped to the current
  /// column size: structural splits may leave the frontier ahead of the
  /// physically present tuples).
  uint64_t VisibleSize(uint64_t snapshot_ts) const;

  /// Splices `other`'s tuples in as one commit at `ts` (used by partition
  /// transfers, which move raw column segments without version metadata).
  void AbsorbColumn(ColumnStore&& other, uint64_t ts);

  /// Publishes every physically present tuple as one commit at `ts`.
  /// Recovery uses this after Partition::Rebuild, which refills the raw
  /// ColumnStore without frontier entries — without a checkpoint the
  /// rebuilt tuples would be invisible to every snapshot.
  void PublishAt(uint64_t ts);

  /// Applies fn(tid, value) over the snapshot.
  template <typename Fn>
  void ScanSnapshot(uint64_t snapshot_ts, Fn&& fn) const {
    uint64_t n = VisibleSize(snapshot_ts);
    if (undo_.empty()) {
      // Fast path: no updated tuples, scan the raw column.
      for (TupleId tid = 0; tid < n; ++tid) fn(tid, column_.Get(tid));
      return;
    }
    for (TupleId tid = 0; tid < n; ++tid) fn(tid, Read(tid, snapshot_ts));
  }

  /// Sum of snapshot-visible values within [lo, hi] — the shared-scan kernel.
  uint64_t ScanSum(uint64_t snapshot_ts, Value lo, Value hi) const;

  /// Sum and row count of snapshot-visible values within [lo, hi] in one
  /// pass. With no undo chains this runs the vectorized segment kernels
  /// over the visible prefix (zone maps included); otherwise it falls back
  /// to the per-tuple versioned read.
  void ScanSumCount(uint64_t snapshot_ts, Value lo, Value hi, uint64_t* sum,
                    uint64_t* rows) const;

  /// Drops undo versions no snapshot >= `watermark` can read and forgets
  /// append-frontier checkpoints older than the watermark.
  void GarbageCollect(uint64_t watermark);

  const ColumnStore& column() const { return column_; }
  ColumnStore& column() { return column_; }
  uint64_t size() const { return column_.size(); }
  size_t undo_chains() const { return undo_.size(); }

 private:
  struct UndoEntry {
    uint64_t overwritten_at;  ///< commit ts of the write that replaced it
    Value old_value;
  };

  ColumnStore column_;
  /// (commit ts, column size after that commit); ascending in both fields.
  std::vector<std::pair<uint64_t, uint64_t>> frontier_;
  /// Undo chains, oldest overwrite first.
  std::unordered_map<TupleId, std::vector<UndoEntry>> undo_;
  uint64_t last_ts_ = 0;
};

}  // namespace eris::storage
