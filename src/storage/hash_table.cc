#include "storage/hash_table.h"

#include <cstring>

namespace eris::storage {

HashTable::HashTable(numa::NodeMemoryManager* memory, uint64_t salt,
                     size_t initial_capacity)
    : memory_(memory), salt_(salt) {
  ERIS_CHECK(memory != nullptr);
  AllocateArrays(NextPowerOfTwo(std::max<size_t>(16, initial_capacity)));
}

HashTable::~HashTable() { FreeArrays(); }

HashTable::HashTable(HashTable&& other) noexcept
    : memory_(other.memory_),
      salt_(other.salt_),
      capacity_(other.capacity_),
      size_(other.size_),
      keys_(other.keys_),
      values_(other.values_),
      states_(other.states_) {
  other.capacity_ = 0;
  other.size_ = 0;
  other.keys_ = nullptr;
  other.values_ = nullptr;
  other.states_ = nullptr;
}

HashTable& HashTable::operator=(HashTable&& other) noexcept {
  if (this != &other) {
    FreeArrays();
    memory_ = other.memory_;
    salt_ = other.salt_;
    capacity_ = other.capacity_;
    size_ = other.size_;
    keys_ = other.keys_;
    values_ = other.values_;
    states_ = other.states_;
    other.capacity_ = 0;
    other.size_ = 0;
    other.keys_ = nullptr;
    other.values_ = nullptr;
    other.states_ = nullptr;
  }
  return *this;
}

void HashTable::AllocateArrays(size_t capacity) {
  capacity_ = capacity;
  keys_ = static_cast<Key*>(memory_->Allocate(capacity * sizeof(Key)));
  values_ = static_cast<Value*>(memory_->Allocate(capacity * sizeof(Value)));
  states_ = static_cast<SlotState*>(memory_->Allocate(capacity));
  std::memset(states_, 0, capacity);
}

void HashTable::FreeArrays() {
  if (capacity_ == 0) return;
  memory_->Free(keys_, capacity_ * sizeof(Key));
  memory_->Free(values_, capacity_ * sizeof(Value));
  memory_->Free(states_, capacity_);
  capacity_ = 0;
  keys_ = nullptr;
  values_ = nullptr;
  states_ = nullptr;
}

void HashTable::Clear() {
  std::memset(states_, 0, capacity_);
  size_ = 0;
}

size_t HashTable::FindSlot(Key key, bool* found) const {
  size_t i = Slot(key);
  while (states_[i] == SlotState::kFull) {
    if (keys_[i] == key) {
      *found = true;
      return i;
    }
    i = (i + 1) & (capacity_ - 1);
  }
  *found = false;
  return i;
}

void HashTable::Grow() {
  size_t old_capacity = capacity_;
  Key* old_keys = keys_;
  Value* old_values = values_;
  SlotState* old_states = states_;
  AllocateArrays(old_capacity * 2);
  size_ = 0;
  for (size_t i = 0; i < old_capacity; ++i) {
    if (old_states[i] == SlotState::kFull) Insert(old_keys[i], old_values[i]);
  }
  memory_->Free(old_keys, old_capacity * sizeof(Key));
  memory_->Free(old_values, old_capacity * sizeof(Value));
  memory_->Free(old_states, old_capacity);
}

bool HashTable::Insert(Key key, Value value) {
  if (size_ * 10 >= capacity_ * 7) Grow();  // load factor 0.7
  bool found = false;
  size_t i = FindSlot(key, &found);
  if (found) return false;
  keys_[i] = key;
  values_[i] = value;
  states_[i] = SlotState::kFull;
  ++size_;
  return true;
}

bool HashTable::Upsert(Key key, Value value) {
  if (size_ * 10 >= capacity_ * 7) Grow();
  bool found = false;
  size_t i = FindSlot(key, &found);
  keys_[i] = key;
  values_[i] = value;
  if (!found) {
    states_[i] = SlotState::kFull;
    ++size_;
  }
  return !found;
}

std::optional<Value> HashTable::Lookup(Key key) const {
  bool found = false;
  size_t i = FindSlot(key, &found);
  if (!found) return std::nullopt;
  return values_[i];
}

bool HashTable::Erase(Key key) {
  bool found = false;
  size_t i = FindSlot(key, &found);
  if (!found) return false;
  // Backward-shift deletion.
  states_[i] = SlotState::kEmpty;
  --size_;
  size_t j = (i + 1) & (capacity_ - 1);
  while (states_[j] == SlotState::kFull) {
    size_t home = Slot(keys_[j]);
    // Can slot j's entry legally move into the hole at i?
    bool between = (i <= j) ? (home <= i || home > j) : (home <= i && home > j);
    if (between) {
      keys_[i] = keys_[j];
      values_[i] = values_[j];
      states_[i] = SlotState::kFull;
      states_[j] = SlotState::kEmpty;
      i = j;
    }
    j = (j + 1) & (capacity_ - 1);
  }
  return true;
}

}  // namespace eris::storage
