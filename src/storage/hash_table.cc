#include "storage/hash_table.h"

#include <cstring>

namespace eris::storage {

HashTable::HashTable(numa::NodeMemoryManager* memory, uint64_t salt,
                     size_t initial_capacity)
    : memory_(memory), salt_(salt) {
  ERIS_CHECK(memory != nullptr);
  AllocateArrays(NextPowerOfTwo(std::max<size_t>(16, initial_capacity)));
}

HashTable::~HashTable() { FreeArrays(); }

HashTable::HashTable(HashTable&& other) noexcept
    : memory_(other.memory_),
      salt_(other.salt_),
      capacity_(other.capacity_),
      size_(other.size_),
      keys_(other.keys_),
      values_(other.values_),
      states_(other.states_) {
  other.capacity_ = 0;
  other.size_ = 0;
  other.keys_ = nullptr;
  other.values_ = nullptr;
  other.states_ = nullptr;
}

HashTable& HashTable::operator=(HashTable&& other) noexcept {
  if (this != &other) {
    FreeArrays();
    memory_ = other.memory_;
    salt_ = other.salt_;
    capacity_ = other.capacity_;
    size_ = other.size_;
    keys_ = other.keys_;
    values_ = other.values_;
    states_ = other.states_;
    other.capacity_ = 0;
    other.size_ = 0;
    other.keys_ = nullptr;
    other.values_ = nullptr;
    other.states_ = nullptr;
  }
  return *this;
}

void HashTable::AllocateArrays(size_t capacity) {
  capacity_ = capacity;
  keys_ = static_cast<Key*>(memory_->Allocate(capacity * sizeof(Key)));
  values_ = static_cast<Value*>(memory_->Allocate(capacity * sizeof(Value)));
  states_ = static_cast<SlotState*>(memory_->Allocate(capacity));
  std::memset(states_, 0, capacity);
}

void HashTable::FreeArrays() {
  if (capacity_ == 0) return;
  memory_->Free(keys_, capacity_ * sizeof(Key));
  memory_->Free(values_, capacity_ * sizeof(Value));
  memory_->Free(states_, capacity_);
  capacity_ = 0;
  keys_ = nullptr;
  values_ = nullptr;
  states_ = nullptr;
}

void HashTable::Clear() {
  std::memset(states_, 0, capacity_);
  size_ = 0;
}

size_t HashTable::FindSlot(Key key, bool* found) const {
  size_t i = Slot(key);
  while (states_[i] == SlotState::kFull) {
    if (keys_[i] == key) {
      *found = true;
      return i;
    }
    i = (i + 1) & (capacity_ - 1);
  }
  *found = false;
  return i;
}

void HashTable::Grow() {
  size_t old_capacity = capacity_;
  Key* old_keys = keys_;
  Value* old_values = values_;
  SlotState* old_states = states_;
  AllocateArrays(old_capacity * 2);
  size_ = 0;
  for (size_t i = 0; i < old_capacity; ++i) {
    if (old_states[i] == SlotState::kFull) Insert(old_keys[i], old_values[i]);
  }
  memory_->Free(old_keys, old_capacity * sizeof(Key));
  memory_->Free(old_values, old_capacity * sizeof(Value));
  memory_->Free(old_states, old_capacity);
}

bool HashTable::Insert(Key key, Value value) {
  if (size_ * 10 >= capacity_ * 7) Grow();  // load factor 0.7
  bool found = false;
  size_t i = FindSlot(key, &found);
  if (found) return false;
  keys_[i] = key;
  values_[i] = value;
  states_[i] = SlotState::kFull;
  ++size_;
  return true;
}

bool HashTable::Upsert(Key key, Value value) {
  if (size_ * 10 >= capacity_ * 7) Grow();
  bool found = false;
  size_t i = FindSlot(key, &found);
  keys_[i] = key;
  values_[i] = value;
  if (!found) {
    states_[i] = SlotState::kFull;
    ++size_;
  }
  return !found;
}

std::optional<Value> HashTable::Lookup(Key key) const {
  bool found = false;
  size_t i = FindSlot(key, &found);
  if (!found) return std::nullopt;
  return values_[i];
}

size_t HashTable::BatchLookup(std::span<const Key> keys, Value* out,
                              bool* found, BatchLookupStats* stats) const {
  size_t hits = 0;
  uint64_t lines = 0;
  size_t home[kBatchGroup];
  size_t last_line = ~size_t{0};
  for (size_t base = 0; base < keys.size(); base += kBatchGroup) {
    const size_t m = std::min(kBatchGroup, keys.size() - base);
    // Stage 1: hash every probe's home slot and start its memory fetches.
    for (size_t i = 0; i < m; ++i) {
      home[i] = Slot(keys[base + i]);
      __builtin_prefetch(&states_[home[i]]);
      __builtin_prefetch(&keys_[home[i]]);
    }
    // Stage 2: walk the (usually length-1) probe chains on warm lines.
    for (size_t i = 0; i < m; ++i) {
      // Home lines of 8-byte keys: 8 keys per 64-byte line.
      size_t line = home[i] >> 3;
      if (line != last_line) {
        last_line = line;
        ++lines;
      }
      size_t s = home[i];
      bool hit = false;
      while (states_[s] == SlotState::kFull) {
        if (keys_[s] == keys[base + i]) {
          hit = true;
          break;
        }
        s = (s + 1) & (capacity_ - 1);
      }
      found[base + i] = hit;
      if (hit) {
        out[base + i] = values_[s];
        ++hits;
      }
    }
  }
  if (stats != nullptr) stats->nodes_touched += lines;
  return hits;
}

bool HashTable::Erase(Key key) {
  bool found = false;
  size_t i = FindSlot(key, &found);
  if (!found) return false;
  // Backward-shift deletion.
  states_[i] = SlotState::kEmpty;
  --size_;
  size_t j = (i + 1) & (capacity_ - 1);
  while (states_[j] == SlotState::kFull) {
    size_t home = Slot(keys_[j]);
    // Can slot j's entry legally move into the hole at i?
    bool between = (i <= j) ? (home <= i || home > j) : (home <= i && home > j);
    if (between) {
      keys_[i] = keys_[j];
      values_[i] = values_[j];
      states_[i] = SlotState::kFull;
      states_[j] = SlotState::kEmpty;
      i = j;
    }
    j = (j + 1) & (capacity_ - 1);
  }
  return true;
}

}  // namespace eris::storage
