// Partition: the unit of data ownership, balancing, and transfer.
//
// Every AEU exclusively owns one partition per data object. A partition
// wraps the container appropriate for its object (prefix-tree index, MVCC
// column, or salted hash table), knows its key range (range partitioning)
// and exposes the three operations the load balancer needs: structural
// split, structural absorb ("link" transfer within a node) and
// flatten/rebuild to an exchange stream ("copy" transfer across nodes).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "numa/memory_manager.h"
#include "storage/column_store.h"
#include "storage/data_object.h"
#include "storage/hash_table.h"
#include "storage/mvcc.h"
#include "storage/prefix_tree.h"
#include "storage/types.h"

namespace eris::storage {

/// \brief One AEU's slice of a data object.
class Partition {
 public:
  /// Creates an empty partition of `desc` covering `range`, with all memory
  /// coming from `memory` (the owning node's manager). `hash_salt` selects
  /// the per-partition hash function for kHash containers.
  Partition(const DataObjectDesc& desc, numa::NodeMemoryManager* memory,
            KeyRange range, uint64_t hash_salt = 0);

  Partition(Partition&&) noexcept = default;
  Partition& operator=(Partition&&) noexcept = default;

  const DataObjectDesc& desc() const { return *desc_; }
  const KeyRange& range() const { return range_; }
  void set_range(KeyRange range) { range_ = range; }
  numa::NodeMemoryManager* memory_manager() const { return memory_; }

  // --- Keyed operations (kIndex / kHash) -------------------------------
  bool Insert(Key key, Value value);
  bool Upsert(Key key, Value value);
  std::optional<Value> Lookup(Key key) const;
  bool Erase(Key key);

  /// Keyed range scan: fn(key, value) over lo <= key < hi. Ordered for
  /// kIndex; a kHash partition filters its whole table (unordered, the
  /// per-container cost the paper's index choice avoids).
  template <typename Fn>
  uint64_t IndexRangeScan(Key lo, Key hi, Fn&& fn) const {
    if (index_ != nullptr) {
      return index_->RangeScan(lo, hi, std::forward<Fn>(fn));
    }
    ERIS_CHECK(hash_ != nullptr) << "range scan on a column partition";
    uint64_t visited = 0;
    hash_->ForEach([&](Key k, Value v) {
      if (k >= lo && k < hi) {
        fn(k, v);
        ++visited;
      }
    });
    return visited;
  }

  // --- Column operations (kColumn) --------------------------------------
  TupleId ColumnAppend(Value v, uint64_t ts);
  void ColumnUpdate(TupleId tid, Value v, uint64_t ts);
  /// Publishes every physically present tuple at `ts` (recovery: Rebuild
  /// refills the raw column without MVCC frontier entries). No-op for
  /// keyed containers.
  void ColumnPublish(uint64_t ts);
  uint64_t ColumnScanSum(uint64_t snapshot_ts, Value lo, Value hi) const;

  // --- Size & stats ------------------------------------------------------
  uint64_t tuple_count() const;
  uint64_t memory_bytes() const;

  // --- Load balancing ----------------------------------------------------
  /// Range split: moves every entry with key >= boundary into the returned
  /// partition and shrinks this partition's range to [lo, boundary).
  /// kIndex/kHash only.
  Partition SplitOffRange(Key boundary);

  /// Physical split: moves the trailing `tuples` tuples into the returned
  /// partition (kColumn only).
  Partition SplitOffTail(uint64_t tuples);

  /// Extracts every entry with lo <= key < hi (hi == kMaxKey extracts to
  /// the end of the domain inclusive) into the returned partition, without
  /// touching this partition's declared range. Used by transfer requests,
  /// where the donor's declared range was already updated by its balancing
  /// command. kIndex/kHash only.
  Partition ExtractRange(Key lo, Key hi);

  /// Structural merge of an adjacent/disjoint partition of the same object.
  /// Cheap (pointer splicing) when both partitions live on the same node.
  /// `ts` is the commit timestamp a column absorb becomes visible at
  /// (ignored for keyed containers).
  void Absorb(Partition&& other, uint64_t ts = 0);

  // --- Copy transfer (exchange format) -----------------------------------
  /// Serializes the partition payload into a flat byte stream.
  /// Format: u32 container kind, u64 count, then count * 16 bytes
  /// (key,value) for keyed containers or count * 8 bytes for columns.
  std::vector<uint8_t> Flatten() const;

  /// Rebuilds a partition from `Flatten()` output into `memory`.
  static Result<Partition> Rebuild(const DataObjectDesc& desc,
                                   numa::NodeMemoryManager* memory,
                                   KeyRange range, uint64_t hash_salt,
                                   std::span<const uint8_t> stream);

  /// Direct container access for tests, benches and the AEU fast paths.
  PrefixTree* index() { return index_.get(); }
  const PrefixTree* index() const { return index_.get(); }
  MvccColumn* mvcc_column() { return mvcc_.get(); }
  const MvccColumn* mvcc_column() const { return mvcc_.get(); }
  HashTable* hash() { return hash_.get(); }
  const HashTable* hash() const { return hash_.get(); }

 private:
  const DataObjectDesc* desc_;
  numa::NodeMemoryManager* memory_;
  KeyRange range_;
  uint64_t hash_salt_ = 0;
  std::unique_ptr<PrefixTree> index_;
  std::unique_ptr<MvccColumn> mvcc_;
  std::unique_ptr<HashTable> hash_;
};

}  // namespace eris::storage
