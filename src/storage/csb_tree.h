// Cache-Sensitive B+-Tree (CSB+-Tree, Rao & Ross SIGMOD'00).
//
// ERIS stores its range partition tables in a CSB+-Tree: it outperforms a
// flat array for sparsely distributed boundaries and scales with the number
// of AEUs, and its read path is cache friendly because all children of a
// node are contiguous, so a node stores a single first-child index instead
// of one pointer per child.
//
// The partition-table usage pattern is read-heavy (every routed command) and
// update-rare (only during load balancing), so this implementation is a
// static search structure bulk-built from sorted (key, payload) pairs;
// updates rebuild (the RangePartitionTable wrapper keeps the mutable view).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace eris::storage {

/// \brief Static CSB+-tree mapping sorted uint64 boundaries to uint32
///        payloads with upper-bound search.
class CsbTree {
 public:
  /// Keys per node; children per internal node = kNodeKeys + 1 at most, but
  /// we use a full multiway layout where each internal node covers up to
  /// kNodeKeys children with kNodeKeys separator keys (first-key-of-child).
  static constexpr uint32_t kNodeKeys = 16;

  CsbTree() = default;

  /// Builds from strictly increasing keys and their payloads.
  CsbTree(std::span<const uint64_t> keys, std::span<const uint32_t> payloads);

  /// Index of the first key > `needle`, or size() when none.
  /// With keys = exclusive upper bounds of ranges, this is the range owner.
  size_t UpperBound(uint64_t needle) const;

  /// Index of the first key >= `needle`, or size() when none.
  size_t LowerBound(uint64_t needle) const;

  /// Batch UpperBound: out[i] = UpperBound(needles[i]) for every needle.
  ///
  /// Descends the tree level-synchronously for groups of kBatchGroup
  /// needles with software prefetch of each probe's next-level node, so up
  /// to kBatchGroup node fetches are in flight per level instead of one.
  /// The tree must have fewer than 2^32 entries (always true for partition
  /// tables, whose size is the number of ranges).
  void BatchUpperBound(std::span<const uint64_t> needles, uint32_t* out) const;

  /// Probes kept in flight per level by BatchUpperBound.
  static constexpr uint32_t kBatchGroup = 16;

  /// Payload at entry index i.
  uint32_t payload(size_t i) const { return payloads_[i]; }
  uint64_t key(size_t i) const { return leaf_keys_[i]; }
  size_t size() const { return leaf_keys_.size(); }
  bool empty() const { return leaf_keys_.empty(); }

  /// Bytes used by the search structure (for stats/benches).
  size_t memory_bytes() const;

  /// Number of levels including the leaf array.
  uint32_t levels() const { return static_cast<uint32_t>(levels_.size()) + 1; }

 private:
  struct Node {
    // First key of each covered child except the first (separators).
    uint64_t keys[kNodeKeys - 1];
    uint32_t first_child = 0;  // index into the next-lower level
    uint16_t num_children = 0;
  };

  // levels_[0] is the root level (single node); the last internal level's
  // children index into the leaf arrays in groups of kNodeKeys.
  std::vector<std::vector<Node>> levels_;
  std::vector<uint64_t> leaf_keys_;
  std::vector<uint32_t> payloads_;
};

}  // namespace eris::storage
