#include "storage/csb_tree.h"

#include <algorithm>

namespace eris::storage {

CsbTree::CsbTree(std::span<const uint64_t> keys,
                 std::span<const uint32_t> payloads) {
  ERIS_CHECK_EQ(keys.size(), payloads.size());
  leaf_keys_.assign(keys.begin(), keys.end());
  payloads_.assign(payloads.begin(), payloads.end());
  for (size_t i = 1; i < leaf_keys_.size(); ++i)
    ERIS_CHECK_LT(leaf_keys_[i - 1], leaf_keys_[i])
        << "CsbTree keys must be strictly increasing";
  if (leaf_keys_.size() <= kNodeKeys) return;  // root searches leaves directly

  // Build internal levels bottom-up. The lowest internal level's node i
  // covers leaf groups [i*K, ...]; a "child" of that level is one group of
  // up to kNodeKeys leaf entries.
  size_t num_children = (leaf_keys_.size() + kNodeKeys - 1) / kNodeKeys;
  // first_key_of_child for the leaf groups:
  std::vector<uint64_t> child_first_key(num_children);
  for (size_t g = 0; g < num_children; ++g)
    child_first_key[g] = leaf_keys_[g * kNodeKeys];

  while (true) {
    size_t num_nodes = (num_children + kNodeKeys - 1) / kNodeKeys;
    std::vector<Node> level(num_nodes);
    std::vector<uint64_t> next_first_key(num_nodes);
    for (size_t n = 0; n < num_nodes; ++n) {
      size_t first = n * kNodeKeys;
      size_t count = std::min<size_t>(kNodeKeys, num_children - first);
      Node& node = level[n];
      node.first_child = static_cast<uint32_t>(first);
      node.num_children = static_cast<uint16_t>(count);
      for (size_t c = 1; c < count; ++c)
        node.keys[c - 1] = child_first_key[first + c];
      next_first_key[n] = child_first_key[first];
    }
    levels_.push_back(std::move(level));
    if (num_nodes == 1) break;
    num_children = num_nodes;
    child_first_key = std::move(next_first_key);
  }
  // Levels were built bottom-up; reverse so levels_[0] is the root.
  std::reverse(levels_.begin(), levels_.end());
}

size_t CsbTree::LowerBound(uint64_t needle) const {
  if (leaf_keys_.empty()) return 0;
  if (levels_.empty()) {
    return static_cast<size_t>(
        std::lower_bound(leaf_keys_.begin(), leaf_keys_.end(), needle) -
        leaf_keys_.begin());
  }
  // Descend: pick the last child whose first key is <= needle.
  uint32_t child = 0;
  for (size_t lvl = 0; lvl < levels_.size(); ++lvl) {
    const Node& node = levels_[lvl][child];
    uint32_t pos = 0;
    while (pos + 1 < node.num_children && node.keys[pos] <= needle) ++pos;
    child = node.first_child + pos;
  }
  // `child` is now a leaf group index.
  size_t begin = static_cast<size_t>(child) * kNodeKeys;
  size_t end = std::min(begin + kNodeKeys, leaf_keys_.size());
  size_t i = begin;
  while (i < end && leaf_keys_[i] < needle) ++i;
  if (i == end && end < leaf_keys_.size()) return end;
  return i;
}

size_t CsbTree::UpperBound(uint64_t needle) const {
  size_t i = LowerBound(needle);
  if (i < leaf_keys_.size() && leaf_keys_[i] == needle) ++i;
  return i;
}

void CsbTree::BatchUpperBound(std::span<const uint64_t> needles,
                              uint32_t* out) const {
  ERIS_DCHECK(leaf_keys_.size() < ~uint32_t{0});
  if (leaf_keys_.empty()) {
    for (size_t k = 0; k < needles.size(); ++k) out[k] = 0;
    return;
  }
  if (levels_.empty()) {
    // Single leaf group: no descent to pipeline.
    for (size_t k = 0; k < needles.size(); ++k)
      out[k] = static_cast<uint32_t>(UpperBound(needles[k]));
    return;
  }
  uint32_t cursor[kBatchGroup];
  for (size_t base = 0; base < needles.size(); base += kBatchGroup) {
    const size_t n = std::min<size_t>(kBatchGroup, needles.size() - base);
    // All probes start at the root (levels_[0] has a single node), which is
    // hot; prefetching begins with the level-1 children.
    for (size_t i = 0; i < n; ++i) cursor[i] = 0;
    for (size_t lvl = 0; lvl < levels_.size(); ++lvl) {
      const std::vector<Node>& level = levels_[lvl];
      const bool last = lvl + 1 == levels_.size();
      for (size_t i = 0; i < n; ++i) {
        const Node& node = level[cursor[i]];
        const uint64_t needle = needles[base + i];
        uint32_t pos = 0;
        while (pos + 1 < node.num_children && node.keys[pos] <= needle) ++pos;
        cursor[i] = node.first_child + pos;
        if (!last) {
          __builtin_prefetch(&levels_[lvl + 1][cursor[i]], 0, 3);
        } else {
          // cursor[i] is now a leaf-group index; pull its key line(s) in.
          const size_t begin = static_cast<size_t>(cursor[i]) * kNodeKeys;
          __builtin_prefetch(&leaf_keys_[begin], 0, 3);
          __builtin_prefetch(&leaf_keys_[begin] + kNodeKeys - 1, 0, 3);
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      const uint64_t needle = needles[base + i];
      const size_t begin = static_cast<size_t>(cursor[i]) * kNodeKeys;
      const size_t end = std::min(begin + kNodeKeys, leaf_keys_.size());
      size_t j = begin;
      while (j < end && leaf_keys_[j] < needle) ++j;
      if (j == end && end < leaf_keys_.size()) {
        out[base + i] = static_cast<uint32_t>(end);
        continue;
      }
      if (j < leaf_keys_.size() && leaf_keys_[j] == needle) ++j;  // upper bound
      out[base + i] = static_cast<uint32_t>(j);
    }
  }
}

size_t CsbTree::memory_bytes() const {
  size_t bytes = leaf_keys_.size() * sizeof(uint64_t) +
                 payloads_.size() * sizeof(uint32_t);
  for (const auto& level : levels_) bytes += level.size() * sizeof(Node);
  return bytes;
}

}  // namespace eris::storage
