// In-memory B+-tree — the comparator the paper argues against.
//
// The paper picks the generalized prefix tree for the AEU index because it
// is order preserving (unlike a hash table) *and* offers high update
// performance ("does not apply to a B+-Tree"). This B+-tree exists to back
// that rationale with numbers (bench_ablation_index): inserts pay sorted-
// array shifting and node splits, while the trie writes a slot and flips a
// bit. Reads are competitive; leaf-chained range scans are excellent.
//
// Single-writer like every AEU-side structure; memory from the owning
// node's manager.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>

#include "common/logging.h"
#include "numa/memory_manager.h"
#include "storage/types.h"

namespace eris::storage {

/// \brief Single-writer B+-tree mapping Key -> Value.
class BPlusTree {
 public:
  static constexpr uint32_t kLeafKeys = 64;
  static constexpr uint32_t kInnerKeys = 64;

  explicit BPlusTree(numa::NodeMemoryManager* memory);
  ~BPlusTree();

  BPlusTree(BPlusTree&& other) noexcept;
  BPlusTree& operator=(BPlusTree&& other) noexcept;
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts key if absent; returns true when new.
  bool Insert(Key key, Value value);
  /// Inserts or overwrites; returns true when new.
  bool Upsert(Key key, Value value);
  std::optional<Value> Lookup(Key key) const;
  /// Removes a key (lazy: leaves may become underfull; no rebalancing).
  bool Erase(Key key);

  /// fn(key, value) over lo <= key < hi in ascending order; returns count.
  template <typename Fn>
  uint64_t RangeScan(Key lo, Key hi, Fn&& fn) const {
    if (root_ == nullptr || lo >= hi) return 0;
    const Leaf* leaf = FindLeaf(lo);
    uint64_t visited = 0;
    while (leaf != nullptr) {
      for (uint32_t i = 0; i < leaf->count; ++i) {
        if (leaf->keys[i] < lo) continue;
        if (leaf->keys[i] >= hi) return visited;
        fn(leaf->keys[i], leaf->values[i]);
        ++visited;
      }
      leaf = leaf->next;
    }
    return visited;
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
      for (uint32_t i = 0; i < leaf->count; ++i) {
        fn(leaf->keys[i], leaf->values[i]);
      }
    }
  }

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint64_t memory_bytes() const { return memory_bytes_; }
  uint32_t height() const { return height_; }

  void Clear();

 private:
  struct Leaf {
    uint32_t count = 0;
    Leaf* next = nullptr;
    Key keys[kLeafKeys];
    Value values[kLeafKeys];
  };
  struct Inner {
    uint32_t count = 0;  // number of keys; children = count + 1
    Key keys[kInnerKeys];
    void* children[kInnerKeys + 1];
  };

  Leaf* NewLeaf();
  Inner* NewInner();
  void FreeRec(void* node, uint32_t level);

  const Leaf* FindLeaf(Key key) const;
  Leaf* FindLeafMutable(Key key, Inner** path, uint32_t* slots);

  /// Insert core; returns true when the key was new.
  bool Put(Key key, Value value, bool overwrite);

  /// Splits a full leaf; returns the new right sibling and its first key.
  Leaf* SplitLeaf(Leaf* leaf, Key* sep);
  /// Inserts (sep, right) into the parent chain captured in path/slots.
  void InsertIntoParents(Inner** path, uint32_t* slots, uint32_t depth,
                         Key sep, void* right);

  numa::NodeMemoryManager* memory_;
  void* root_ = nullptr;
  Leaf* first_leaf_ = nullptr;
  uint32_t height_ = 0;  // 0 = empty, 1 = root is a leaf
  uint64_t size_ = 0;
  uint64_t memory_bytes_ = 0;
};

}  // namespace eris::storage
