#include "storage/partition.h"

#include <cstring>

namespace eris::storage {

Partition::Partition(const DataObjectDesc& desc,
                     numa::NodeMemoryManager* memory, KeyRange range,
                     uint64_t hash_salt)
    : desc_(&desc), memory_(memory), range_(range), hash_salt_(hash_salt) {
  switch (desc.container) {
    case ContainerKind::kIndex:
      index_ = std::make_unique<PrefixTree>(memory, desc.index_config);
      break;
    case ContainerKind::kColumn:
      mvcc_ = std::make_unique<MvccColumn>(memory);
      break;
    case ContainerKind::kHash:
      hash_ = std::make_unique<HashTable>(memory, hash_salt);
      break;
  }
}

bool Partition::Insert(Key key, Value value) {
  ERIS_DCHECK(range_.Contains(key));
  if (index_) return index_->Insert(key, value);
  ERIS_CHECK(hash_ != nullptr) << "keyed insert on a column partition";
  return hash_->Insert(key, value);
}

bool Partition::Upsert(Key key, Value value) {
  ERIS_DCHECK(range_.Contains(key));
  if (index_) return index_->Upsert(key, value);
  ERIS_CHECK(hash_ != nullptr) << "keyed upsert on a column partition";
  return hash_->Upsert(key, value);
}

std::optional<Value> Partition::Lookup(Key key) const {
  if (index_) return index_->Lookup(key);
  ERIS_CHECK(hash_ != nullptr) << "keyed lookup on a column partition";
  return hash_->Lookup(key);
}

bool Partition::Erase(Key key) {
  if (index_) return index_->Erase(key);
  ERIS_CHECK(hash_ != nullptr) << "keyed erase on a column partition";
  return hash_->Erase(key);
}

TupleId Partition::ColumnAppend(Value v, uint64_t ts) {
  ERIS_CHECK(mvcc_ != nullptr) << "column append on a keyed partition";
  return mvcc_->Append(v, ts);
}

void Partition::ColumnUpdate(TupleId tid, Value v, uint64_t ts) {
  ERIS_CHECK(mvcc_ != nullptr);
  mvcc_->Update(tid, v, ts);
}

void Partition::ColumnPublish(uint64_t ts) {
  if (mvcc_ != nullptr) mvcc_->PublishAt(ts);
}

uint64_t Partition::ColumnScanSum(uint64_t snapshot_ts, Value lo,
                                  Value hi) const {
  ERIS_CHECK(mvcc_ != nullptr);
  return mvcc_->ScanSum(snapshot_ts, lo, hi);
}

uint64_t Partition::tuple_count() const {
  if (index_) return index_->size();
  if (mvcc_) return mvcc_->size();
  return hash_->size();
}

uint64_t Partition::memory_bytes() const {
  if (index_) return index_->memory_bytes();
  if (mvcc_) return mvcc_->column().memory_bytes();
  return hash_->memory_bytes();
}

Partition Partition::SplitOffRange(Key boundary) {
  ERIS_CHECK(desc_->partitioning == PartitioningKind::kRange);
  ERIS_CHECK(range_.Contains(boundary)) << "split boundary outside partition";
  Partition upper(*desc_, memory_, KeyRange{boundary, range_.hi}, hash_salt_);
  if (index_) {
    *upper.index_ = index_->SplitOff(boundary);
  } else {
    // Hash partitions are not order preserving internally; split by moving
    // matching keys (the range criterion still applies to routing).
    std::vector<std::pair<Key, Value>> moved;
    hash_->ForEach([&](Key k, Value v) {
      if (k >= boundary) moved.emplace_back(k, v);
    });
    for (auto& [k, v] : moved) {
      hash_->Erase(k);
      upper.hash_->Insert(k, v);
    }
  }
  range_.hi = boundary;
  return upper;
}

Partition Partition::ExtractRange(Key lo, Key hi) {
  Partition out(*desc_, memory_, KeyRange{lo, hi}, hash_salt_);
  if (index_) {
    PrefixTree upper = index_->SplitOff(lo);  // keys >= lo
    if (hi != kMaxKey) {
      PrefixTree rest = upper.SplitOff(hi);  // keys >= hi stay here
      index_->Absorb(std::move(rest));
    }
    *out.index_ = std::move(upper);
    return out;
  }
  ERIS_CHECK(hash_ != nullptr) << "ExtractRange on a column partition";
  std::vector<std::pair<Key, Value>> moved;
  hash_->ForEach([&](Key k, Value v) {
    if (k >= lo && (k < hi || hi == kMaxKey)) moved.emplace_back(k, v);
  });
  for (auto& [k, v] : moved) {
    hash_->Erase(k);
    out.hash_->Insert(k, v);
  }
  return out;
}

Partition Partition::SplitOffTail(uint64_t tuples) {
  ERIS_CHECK(mvcc_ != nullptr) << "physical split requires a column";
  ERIS_CHECK_LE(tuples, mvcc_->size());
  Partition tail(*desc_, memory_, range_, hash_salt_);
  TupleId from = mvcc_->size() - tuples;
  // The MVCC metadata (frontier, undo) does not migrate: balancing happens
  // between scan epochs, so the transferred tail is materialized at its
  // latest version. This matches the paper's staging-table reasoning.
  ColumnStore moved = mvcc_->column().SplitTail(from);
  tail.mvcc_->column().Absorb(std::move(moved));
  return tail;
}

void Partition::Absorb(Partition&& other, uint64_t ts) {
  ERIS_CHECK_EQ(desc_->id, other.desc_->id);
  if (index_) {
    index_->Absorb(std::move(*other.index_));
    // Extend the range to cover the absorbed interval.
    range_.lo = std::min(range_.lo, other.range_.lo);
    range_.hi = std::max(range_.hi, other.range_.hi);
    return;
  }
  if (mvcc_) {
    mvcc_->AbsorbColumn(std::move(other.mvcc_->column()), ts);
    return;
  }
  other.hash_->ForEach([this](Key k, Value v) { hash_->Upsert(k, v); });
  other.hash_->Clear();
  range_.lo = std::min(range_.lo, other.range_.lo);
  range_.hi = std::max(range_.hi, other.range_.hi);
}

namespace {
template <typename T>
void AppendRaw(std::vector<uint8_t>* out, T v) {
  size_t pos = out->size();
  out->resize(pos + sizeof(T));
  std::memcpy(out->data() + pos, &v, sizeof(T));
}
template <typename T>
T ReadRaw(std::span<const uint8_t> in, size_t* pos) {
  T v;
  std::memcpy(&v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return v;
}
}  // namespace

std::vector<uint8_t> Partition::Flatten() const {
  std::vector<uint8_t> out;
  AppendRaw<uint32_t>(&out, static_cast<uint32_t>(desc_->container));
  AppendRaw<uint64_t>(&out, tuple_count());
  if (index_) {
    out.reserve(out.size() + index_->size() * 16);
    index_->ForEach([&](Key k, Value v) {
      AppendRaw<uint64_t>(&out, k);
      AppendRaw<uint64_t>(&out, v);
    });
  } else if (mvcc_) {
    out.reserve(out.size() + mvcc_->size() * 8);
    // Latest version; see SplitOffTail for the epoch argument.
    mvcc_->column().ForEach(
        [&](TupleId, Value v) { AppendRaw<uint64_t>(&out, v); });
  } else {
    out.reserve(out.size() + hash_->size() * 16);
    hash_->ForEach([&](Key k, Value v) {
      AppendRaw<uint64_t>(&out, k);
      AppendRaw<uint64_t>(&out, v);
    });
  }
  return out;
}

Result<Partition> Partition::Rebuild(const DataObjectDesc& desc,
                                     numa::NodeMemoryManager* memory,
                                     KeyRange range, uint64_t hash_salt,
                                     std::span<const uint8_t> stream) {
  if (stream.size() < 12) {
    return Status::InvalidArgument("partition stream shorter than header");
  }
  size_t pos = 0;
  auto kind = static_cast<ContainerKind>(ReadRaw<uint32_t>(stream, &pos));
  uint64_t count = ReadRaw<uint64_t>(stream, &pos);
  if (kind != desc.container) {
    return Status::InvalidArgument("container kind mismatch in stream");
  }
  size_t entry_bytes = kind == ContainerKind::kColumn ? 8 : 16;
  if (stream.size() - pos < count * entry_bytes) {
    return Status::InvalidArgument("partition stream truncated");
  }
  Partition p(desc, memory, range, hash_salt);
  const uint32_t key_bits = desc.index_config.key_bits;
  for (uint64_t i = 0; i < count; ++i) {
    if (kind == ContainerKind::kColumn) {
      p.mvcc_->column().Append(ReadRaw<uint64_t>(stream, &pos));
    } else {
      Key k = ReadRaw<uint64_t>(stream, &pos);
      Value v = ReadRaw<uint64_t>(stream, &pos);
      if (kind == ContainerKind::kIndex) {
        if (key_bits < 64 && (k >> key_bits) != 0) {
          return Status::InvalidArgument(
              "stream key outside the index key domain");
        }
        p.index_->Upsert(k, v);
      } else {
        p.hash_->Upsert(k, v);
      }
    }
  }
  return p;
}

}  // namespace eris::storage
