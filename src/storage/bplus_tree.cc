#include "storage/bplus_tree.h"

#include <algorithm>

namespace eris::storage {

namespace {
/// Index of the first key >= needle in a sorted array.
uint32_t LowerBound(const Key* keys, uint32_t count, Key needle) {
  return static_cast<uint32_t>(
      std::lower_bound(keys, keys + count, needle) - keys);
}
/// Child slot for `needle` in an inner node: first key > needle.
uint32_t ChildSlot(const Key* keys, uint32_t count, Key needle) {
  return static_cast<uint32_t>(
      std::upper_bound(keys, keys + count, needle) - keys);
}
}  // namespace

BPlusTree::BPlusTree(numa::NodeMemoryManager* memory) : memory_(memory) {
  ERIS_CHECK(memory != nullptr);
}

BPlusTree::~BPlusTree() { Clear(); }

BPlusTree::BPlusTree(BPlusTree&& other) noexcept
    : memory_(other.memory_),
      root_(other.root_),
      first_leaf_(other.first_leaf_),
      height_(other.height_),
      size_(other.size_),
      memory_bytes_(other.memory_bytes_) {
  other.root_ = nullptr;
  other.first_leaf_ = nullptr;
  other.height_ = 0;
  other.size_ = 0;
  other.memory_bytes_ = 0;
}

BPlusTree& BPlusTree::operator=(BPlusTree&& other) noexcept {
  if (this != &other) {
    Clear();
    memory_ = other.memory_;
    root_ = other.root_;
    first_leaf_ = other.first_leaf_;
    height_ = other.height_;
    size_ = other.size_;
    memory_bytes_ = other.memory_bytes_;
    other.root_ = nullptr;
    other.first_leaf_ = nullptr;
    other.height_ = 0;
    other.size_ = 0;
    other.memory_bytes_ = 0;
  }
  return *this;
}

BPlusTree::Leaf* BPlusTree::NewLeaf() {
  void* mem = memory_->Allocate(sizeof(Leaf));
  memory_bytes_ += sizeof(Leaf);
  return new (mem) Leaf();
}

BPlusTree::Inner* BPlusTree::NewInner() {
  void* mem = memory_->Allocate(sizeof(Inner));
  memory_bytes_ += sizeof(Inner);
  return new (mem) Inner();
}

void BPlusTree::FreeRec(void* node, uint32_t level) {
  if (node == nullptr) return;
  if (level > 1) {
    Inner* inner = static_cast<Inner*>(node);
    for (uint32_t c = 0; c <= inner->count; ++c) {
      FreeRec(inner->children[c], level - 1);
    }
    memory_->Free(node, sizeof(Inner));
    memory_bytes_ -= sizeof(Inner);
  } else {
    memory_->Free(node, sizeof(Leaf));
    memory_bytes_ -= sizeof(Leaf);
  }
}

void BPlusTree::Clear() {
  FreeRec(root_, height_);
  root_ = nullptr;
  first_leaf_ = nullptr;
  height_ = 0;
  size_ = 0;
}

const BPlusTree::Leaf* BPlusTree::FindLeaf(Key key) const {
  if (root_ == nullptr) return nullptr;
  const void* node = root_;
  for (uint32_t level = height_; level > 1; --level) {
    const Inner* inner = static_cast<const Inner*>(node);
    node = inner->children[ChildSlot(inner->keys, inner->count, key)];
  }
  return static_cast<const Leaf*>(node);
}

BPlusTree::Leaf* BPlusTree::FindLeafMutable(Key key, Inner** path,
                                            uint32_t* slots) {
  void* node = root_;
  uint32_t depth = 0;
  for (uint32_t level = height_; level > 1; --level, ++depth) {
    Inner* inner = static_cast<Inner*>(node);
    uint32_t slot = ChildSlot(inner->keys, inner->count, key);
    path[depth] = inner;
    slots[depth] = slot;
    node = inner->children[slot];
  }
  return static_cast<Leaf*>(node);
}

BPlusTree::Leaf* BPlusTree::SplitLeaf(Leaf* leaf, Key* sep) {
  Leaf* right = NewLeaf();
  uint32_t half = leaf->count / 2;
  right->count = leaf->count - half;
  std::memcpy(right->keys, leaf->keys + half, right->count * sizeof(Key));
  std::memcpy(right->values, leaf->values + half,
              right->count * sizeof(Value));
  leaf->count = half;
  right->next = leaf->next;
  leaf->next = right;
  *sep = right->keys[0];
  return right;
}

void BPlusTree::InsertIntoParents(Inner** path, uint32_t* slots,
                                  uint32_t depth, Key sep, void* right) {
  // Walk up from the deepest parent; split full inner nodes on the way.
  while (depth > 0) {
    Inner* parent = path[depth - 1];
    uint32_t slot = slots[depth - 1];
    if (parent->count < kInnerKeys) {
      std::memmove(parent->keys + slot + 1, parent->keys + slot,
                   (parent->count - slot) * sizeof(Key));
      std::memmove(parent->children + slot + 2, parent->children + slot + 1,
                   (parent->count - slot) * sizeof(void*));
      parent->keys[slot] = sep;
      parent->children[slot + 1] = right;
      ++parent->count;
      return;
    }
    // Split the inner node: middle key moves up.
    Inner* sibling = NewInner();
    uint32_t mid = kInnerKeys / 2;
    Key up = parent->keys[mid];
    sibling->count = parent->count - mid - 1;
    std::memcpy(sibling->keys, parent->keys + mid + 1,
                sibling->count * sizeof(Key));
    std::memcpy(sibling->children, parent->children + mid + 1,
                (sibling->count + 1) * sizeof(void*));
    parent->count = mid;
    // Insert (sep, right) into the correct half.
    Inner* target = parent;
    uint32_t tslot = slot;
    if (slot > mid) {
      target = sibling;
      tslot = slot - mid - 1;
    } else if (slot == mid) {
      // sep becomes the first key of the sibling's leftmost path: right
      // becomes sibling's child 0, and `up` is replaced by sep upward.
      // Simplify: fall through with target=parent at slot==mid: insert at
      // end of parent.
      target = parent;
      tslot = slot;
    }
    std::memmove(target->keys + tslot + 1, target->keys + tslot,
                 (target->count - tslot) * sizeof(Key));
    std::memmove(target->children + tslot + 2, target->children + tslot + 1,
                 (target->count - tslot) * sizeof(void*));
    target->keys[tslot] = sep;
    target->children[tslot + 1] = right;
    ++target->count;
    sep = up;
    right = sibling;
    --depth;
  }
  // Root split.
  Inner* new_root = NewInner();
  new_root->count = 1;
  new_root->keys[0] = sep;
  new_root->children[0] = root_;
  new_root->children[1] = right;
  root_ = new_root;
  ++height_;
}

bool BPlusTree::Put(Key key, Value value, bool overwrite) {
  if (root_ == nullptr) {
    Leaf* leaf = NewLeaf();
    leaf->keys[0] = key;
    leaf->values[0] = value;
    leaf->count = 1;
    root_ = leaf;
    first_leaf_ = leaf;
    height_ = 1;
    size_ = 1;
    return true;
  }
  Inner* path[24];
  uint32_t slots[24];
  ERIS_CHECK_LT(height_, 24u);
  Leaf* leaf = FindLeafMutable(key, path, slots);
  uint32_t pos = LowerBound(leaf->keys, leaf->count, key);
  if (pos < leaf->count && leaf->keys[pos] == key) {
    if (overwrite) leaf->values[pos] = value;
    return false;
  }
  if (leaf->count == kLeafKeys) {
    Key sep;
    Leaf* right = SplitLeaf(leaf, &sep);
    InsertIntoParents(path, slots, height_ - 1, sep, right);
    if (key >= sep) {
      leaf = right;
      pos = LowerBound(leaf->keys, leaf->count, key);
    }
  }
  std::memmove(leaf->keys + pos + 1, leaf->keys + pos,
               (leaf->count - pos) * sizeof(Key));
  std::memmove(leaf->values + pos + 1, leaf->values + pos,
               (leaf->count - pos) * sizeof(Value));
  leaf->keys[pos] = key;
  leaf->values[pos] = value;
  ++leaf->count;
  ++size_;
  return true;
}

bool BPlusTree::Insert(Key key, Value value) {
  return Put(key, value, /*overwrite=*/false);
}

bool BPlusTree::Upsert(Key key, Value value) {
  return Put(key, value, /*overwrite=*/true);
}

std::optional<Value> BPlusTree::Lookup(Key key) const {
  const Leaf* leaf = FindLeaf(key);
  if (leaf == nullptr) return std::nullopt;
  uint32_t pos = LowerBound(leaf->keys, leaf->count, key);
  if (pos < leaf->count && leaf->keys[pos] == key) return leaf->values[pos];
  return std::nullopt;
}

bool BPlusTree::Erase(Key key) {
  if (root_ == nullptr) return false;
  Inner* path[24];
  uint32_t slots[24];
  Leaf* leaf = FindLeafMutable(key, path, slots);
  uint32_t pos = LowerBound(leaf->keys, leaf->count, key);
  if (pos >= leaf->count || leaf->keys[pos] != key) return false;
  std::memmove(leaf->keys + pos, leaf->keys + pos + 1,
               (leaf->count - pos - 1) * sizeof(Key));
  std::memmove(leaf->values + pos, leaf->values + pos + 1,
               (leaf->count - pos - 1) * sizeof(Value));
  --leaf->count;
  --size_;
  // Lazy deletion: underfull leaves stay (common for in-memory studies);
  // an empty leaf remains linked and is skipped by scans.
  return true;
}

}  // namespace eris::storage
