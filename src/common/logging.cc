#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace eris {
namespace internal {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kFatal: return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void EmitLogMessage(LogLevel level, const char* file, int line,
                    const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line,
                 message.c_str());
    std::fflush(stderr);
  }
  if (level == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace eris
