// Fixed-bucket histogram used by the monitor and by benchmark reporting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eris {

/// \brief Equi-width histogram over a value domain [lo, hi).
///
/// Used to approximate per-partition metric distributions (access frequency,
/// execution time) that feed the load balancer, and to summarize benchmark
/// latencies. Not thread-safe; each AEU owns its histograms.
class Histogram {
 public:
  /// Creates `buckets` equal-width buckets covering [lo, hi). Values outside
  /// the range are clamped into the first/last bucket.
  Histogram(double lo, double hi, size_t buckets);

  void Add(double value, uint64_t weight = 1);
  void Clear();

  /// Merges another histogram with identical geometry.
  void Merge(const Histogram& other);

  uint64_t total_count() const { return total_count_; }
  size_t num_buckets() const { return counts_.size(); }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  /// Inclusive lower bound of bucket i.
  double bucket_lo(size_t i) const { return lo_ + i * width_; }

  double Mean() const;
  /// Population standard deviation of the bucketed distribution.
  double StdDev() const;
  /// Value at quantile q in [0,1], linear interpolation within a bucket.
  double Quantile(double q) const;

  /// Multi-line ASCII rendering for logs/benches.
  std::string ToString(int bar_width = 40) const;

 private:
  double lo_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
};

}  // namespace eris
