// Low-overhead synchronization primitives used off the AEU hot path.
//
// The ERIS data path is latch-free by construction (private partitions,
// CAS-managed incoming buffers). Spinlocks exist only for rarely contended
// structures such as memory-manager arenas and the monitor snapshot.
#pragma once

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace eris {

/// Issues a CPU pause/yield hint inside spin loops.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

/// Test-and-test-and-set spinlock. Satisfies BasicLockable.
class SpinLock {
 public:
  /// Backoff ceiling of lock(): waits double up to this many CpuRelax
  /// rounds per probe, so heavy contention degrades to bounded polling
  /// instead of all waiters hammering the cache line every cycle.
  static constexpr uint32_t kMaxBackoffSpins = 1024;

  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    uint32_t spins = 1;
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) {
        for (uint32_t i = 0; i < spins; ++i) CpuRelax();
        if (spins < kMaxBackoffSpins) spins <<= 1;
      }
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace eris
