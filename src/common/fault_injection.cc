#include "common/fault_injection.h"

#include <thread>

#include "common/rng.h"
#include "common/spinlock.h"

namespace eris::fi {

namespace internal {
std::atomic<uint32_t> g_armed{0};
}  // namespace internal

const char* PointName(Point p) {
  switch (p) {
    case Point::kIncomingReserve:   return "incoming.reserve";
    case Point::kIncomingCopy:      return "incoming.copy";
    case Point::kIncomingRelease:   return "incoming.release";
    case Point::kIncomingSwap:      return "incoming.swap";
    case Point::kIncomingDrainWait: return "incoming.drain_wait";
    case Point::kRouterUnicast:     return "router.unicast";
    case Point::kRouterMulticast:   return "router.multicast";
    case Point::kRouterFlush:       return "router.flush";
    case Point::kTransferApply:     return "transfer.apply";
    case Point::kBalanceApply:      return "balance.apply";
    case Point::kAeuLoop:           return "aeu.loop";
    case Point::kAeuProcess:        return "aeu.process";
    case Point::kEndpointScratchAlloc:
      return "endpoint.scratch_alloc";
    case Point::kQueryScratchAlloc:
      return "query.scratch_alloc";
    case Point::kAeuScratchAlloc:
      return "aeu.scratch_alloc";
    case Point::kMvccVersionAlloc:
      return "mvcc.version_alloc";
    case Point::kWalBufferAlloc:
      return "wal.buffer_alloc";
    case Point::kExchangeStreamAlloc:
      return "exchange.stream_alloc";
    case Point::kWalAppend:         return "wal.append";
    case Point::kWalCommit:         return "wal.commit";
    case Point::kWalFsync:          return "wal.fsync";
    case Point::kWalRotate:         return "wal.rotate";
    case Point::kSnapshotWrite:     return "snapshot.write";
    case Point::kSnapshotFsync:     return "snapshot.fsync";
    case Point::kSnapshotRename:    return "snapshot.rename";
    case Point::kCurrentWrite:      return "current.write";
    case Point::kIoOpen:            return "io.open";
    case Point::kIoWriteError:      return "io.write.error";
    case Point::kIoNoSpace:         return "io.write.nospace";
    case Point::kIoShortWrite:      return "io.write.short";
    case Point::kIoFsyncError:      return "io.fsync.error";
    case Point::kIoRename:          return "io.rename";
    case Point::kIoTruncate:        return "io.truncate";
    case Point::kIoReadError:       return "io.read.error";
    case Point::kIoReadFlip:        return "io.read.flip";
    case Point::kNumPoints:         break;
  }
  return "?";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector instance;
  return instance;
}

namespace {
/// Per-thread deterministic stream, re-seeded when the injector's epoch
/// advances (EnableChaos/Reset) so reused threads follow the new seed.
struct ThreadStream {
  uint64_t epoch = 0;
  Xoshiro256 rng{0};
};
thread_local ThreadStream t_stream;
}  // namespace

uint64_t FaultInjector::NextU64() {
  uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (t_stream.epoch != epoch) {
    uint64_t ordinal =
        thread_ordinal_.fetch_add(1, std::memory_order_relaxed);
    t_stream.rng = Xoshiro256(seed_ ^ Mix64(ordinal + 1) ^ Mix64(epoch));
    t_stream.epoch = epoch;
  }
  return t_stream.rng.Next();
}

double FaultInjector::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

void FaultInjector::EnableChaos(uint64_t seed, double perturb_probability) {
  seed_ = seed;
  perturb_probability_.store(perturb_probability, std::memory_order_relaxed);
  chaos_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  internal::g_armed.store(1, std::memory_order_release);
}

void FaultInjector::SetFailProbability(Point p, double probability) {
  points_[static_cast<uint32_t>(p)].fail_probability.store(
      probability, std::memory_order_relaxed);
  internal::g_armed.store(1, std::memory_order_release);
}

void FaultInjector::SetHook(Point p, std::function<void()> hook) {
  uint32_t i = static_cast<uint32_t>(p);
  hooks_[i] = std::move(hook);
  hook_set_[i].store(static_cast<bool>(hooks_[i]),
                     std::memory_order_release);
  internal::g_armed.store(1, std::memory_order_release);
}

void FaultInjector::Reset() {
  internal::g_armed.store(0, std::memory_order_release);
  chaos_.store(false, std::memory_order_relaxed);
  perturb_probability_.store(0.0, std::memory_order_relaxed);
  for (PointState& s : points_) {
    s.visits.store(0, std::memory_order_relaxed);
    s.perturbs.store(0, std::memory_order_relaxed);
    s.failures.store(0, std::memory_order_relaxed);
    s.fail_probability.store(0.0, std::memory_order_relaxed);
  }
  for (uint32_t i = 0; i < kNumPoints; ++i) {
    hooks_[i] = nullptr;
    hook_set_[i].store(false, std::memory_order_relaxed);
  }
  epoch_.fetch_add(1, std::memory_order_release);
}

PointStats FaultInjector::Stats(Point p) const {
  const PointState& s = points_[static_cast<uint32_t>(p)];
  PointStats out;
  out.visits = s.visits.load(std::memory_order_relaxed);
  out.perturbs = s.perturbs.load(std::memory_order_relaxed);
  out.failures = s.failures.load(std::memory_order_relaxed);
  return out;
}

uint64_t FaultInjector::TotalInjections() const {
  uint64_t total = 0;
  for (const PointState& s : points_) {
    total += s.perturbs.load(std::memory_order_relaxed) +
             s.failures.load(std::memory_order_relaxed);
  }
  return total;
}

void FaultInjector::Visit(Point p) {
  uint32_t i = static_cast<uint32_t>(p);
  PointState& s = points_[i];
  s.visits.fetch_add(1, std::memory_order_relaxed);
  if (hook_set_[i].load(std::memory_order_acquire)) {
    hooks_[i]();
  }
  if (!chaos_.load(std::memory_order_relaxed)) return;
  double prob = perturb_probability_.load(std::memory_order_relaxed);
  if (prob <= 0.0 || NextDouble() >= prob) return;
  s.perturbs.fetch_add(1, std::memory_order_relaxed);
  // Alternate between a scheduler yield (coarse reordering) and a short
  // random spin (fine-grained window widening around CAS sequences).
  uint64_t r = NextU64();
  if ((r & 1) != 0) {
    std::this_thread::yield();
  } else {
    uint32_t spins = 1u + static_cast<uint32_t>((r >> 1) & 0xFF);
    for (uint32_t k = 0; k < spins; ++k) CpuRelax();
  }
}

bool FaultInjector::ShouldFail(Point p) {
  PointState& s = points_[static_cast<uint32_t>(p)];
  double prob = s.fail_probability.load(std::memory_order_relaxed);
  if (prob <= 0.0 || NextDouble() >= prob) return false;
  s.failures.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace eris::fi
