#include "common/status.h"

namespace eris {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kAlreadyExists: return "already-exists";
    case StatusCode::kOutOfRange: return "out-of-range";
    case StatusCode::kResourceExhausted: return "resource-exhausted";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kIoError: return "io-error";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  out += ": ";
  out += rep_->message;
  return out;
}

}  // namespace eris
