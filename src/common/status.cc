#include "common/status.h"

namespace eris {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kAlreadyExists: return "already-exists";
    case StatusCode::kOutOfRange: return "out-of-range";
    case StatusCode::kResourceExhausted: return "resource-exhausted";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kUnavailable: return "unavailable";
  }
  return "unknown";
}

std::string_view StatusDetailName(StatusDetail detail) {
  switch (detail) {
    case StatusDetail::kNone: return "none";
    case StatusDetail::kAdmissionRejected: return "admission-rejected";
    case StatusDetail::kBufferFull: return "buffer-full";
    case StatusDetail::kDeadlineExpired: return "deadline-expired";
    case StatusDetail::kAeuStalled: return "aeu-stalled";
    case StatusDetail::kCommandQuarantined: return "command-quarantined";
    case StatusDetail::kWalSealed: return "wal-sealed";
    case StatusDetail::kReadOnly: return "read-only";
    case StatusDetail::kAllocFailed: return "alloc-failed";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  out += ": ";
  out += rep_->message;
  if (rep_->detail != StatusDetail::kNone) {
    out += " [";
    out += StatusDetailName(rep_->detail);
    if (!rep_->detail_message.empty()) {
      out += ": ";
      out += rep_->detail_message;
    }
    out += "]";
  }
  return out;
}

namespace {

// Wire format: "<code>;<detail>;<msg-len>;<detail-msg-len>;<msg><detail-msg>"
// Length prefixes (not delimiters) guard the payloads, which may contain
// arbitrary bytes including ';'.
bool ParseU64(std::string_view* in, uint64_t* out) {
  size_t sep = in->find(';');
  if (sep == std::string_view::npos || sep == 0) return false;
  uint64_t value = 0;
  for (char c : in->substr(0, sep)) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  in->remove_prefix(sep + 1);
  *out = value;
  return true;
}

}  // namespace

std::string Status::Serialize() const {
  std::string out;
  std::string_view msg = message();
  std::string_view dmsg = detail_message();
  out += std::to_string(static_cast<unsigned>(code()));
  out += ';';
  out += std::to_string(static_cast<unsigned>(detail()));
  out += ';';
  out += std::to_string(msg.size());
  out += ';';
  out += std::to_string(dmsg.size());
  out += ';';
  out.append(msg);
  out.append(dmsg);
  return out;
}

Status Status::Deserialize(std::string_view wire) {
  uint64_t code = 0, detail = 0, msg_len = 0, dmsg_len = 0;
  if (!ParseU64(&wire, &code) || !ParseU64(&wire, &detail) ||
      !ParseU64(&wire, &msg_len) || !ParseU64(&wire, &dmsg_len) ||
      wire.size() != msg_len + dmsg_len ||
      code > static_cast<uint64_t>(StatusCode::kUnavailable) ||
      detail > static_cast<uint64_t>(StatusDetail::kReadOnly)) {
    return Status::Internal("malformed serialized Status");
  }
  Status st(static_cast<StatusCode>(code), std::string(wire.substr(0, msg_len)));
  if (detail != 0) {
    st.WithDetail(static_cast<StatusDetail>(detail),
                  std::string(wire.substr(msg_len)));
  }
  return st;
}

}  // namespace eris
