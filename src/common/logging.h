// Minimal leveled logging plus ERIS_CHECK assertions.
//
// Logging is intentionally tiny: benchmarks and the engine hot path must not
// pay for logging infrastructure. Messages are composed into an ostringstream
// and emitted under a global mutex so concurrent AEUs do not interleave.
#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace eris {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

namespace internal {

/// Global minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Emits one formatted line to stderr (thread-safe). Aborts for kFatal.
void EmitLogMessage(LogLevel level, const char* file, int line,
                    const std::string& message);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression when the level is disabled.
struct NullLog {
  template <typename T>
  NullLog& operator<<(const T&) { return *this; }
};

}  // namespace internal

#define ERIS_LOG(level)                                               \
  (::eris::LogLevel::k##level < ::eris::internal::GetLogLevel())      \
      ? (void)0                                                       \
      : (void)(::eris::internal::LogMessage(::eris::LogLevel::k##level, \
                                            __FILE__, __LINE__))

// ERIS_LOG is awkward for streaming with the ternary; provide the canonical
// macro that supports `ERIS_DLOG(Info) << "x" << 1;`
#define ERIS_DLOG(level)                                                  \
  if (::eris::LogLevel::k##level >= ::eris::internal::GetLogLevel())     \
  ::eris::internal::LogMessage(::eris::LogLevel::k##level, __FILE__, __LINE__)

/// Fatal-on-false invariant check, active in all build types.
#define ERIS_CHECK(cond)                                                   \
  if (!(cond))                                                             \
  ::eris::internal::LogMessage(::eris::LogLevel::kFatal, __FILE__,         \
                               __LINE__)                                   \
      << "Check failed: " #cond " "

#define ERIS_CHECK_EQ(a, b) ERIS_CHECK((a) == (b))
#define ERIS_CHECK_NE(a, b) ERIS_CHECK((a) != (b))
#define ERIS_CHECK_LT(a, b) ERIS_CHECK((a) < (b))
#define ERIS_CHECK_LE(a, b) ERIS_CHECK((a) <= (b))
#define ERIS_CHECK_GT(a, b) ERIS_CHECK((a) > (b))
#define ERIS_CHECK_GE(a, b) ERIS_CHECK((a) >= (b))

#ifndef NDEBUG
#define ERIS_DCHECK(cond) ERIS_CHECK(cond)
#else
#define ERIS_DCHECK(cond) \
  while (false) ::eris::internal::NullLog() << !(cond)
#endif

}  // namespace eris
