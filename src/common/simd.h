// Portable SIMD kernels for the vectorized scan pipeline.
//
// Every kernel exists in two flavors with identical semantics: an
// always-compiled scalar loop (the fallback and the reference for the
// differential tests) and an AVX2 implementation compiled behind the
// ERIS_ENABLE_AVX2 CMake option. The AVX2 variants carry a function-level
// target attribute, so no global -mavx2 flag is needed and the binary still
// runs on non-AVX2 hosts: the public dispatch functions pick the widest
// implementation the executing CPU supports, once, at first use.
//
// All kernels operate on raw uint64_t blocks with an *inclusive* unsigned
// range predicate lo <= v <= hi — the contract of ColumnStore's scans. An
// empty range (lo > hi) matches nothing.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(ERIS_ENABLE_AVX2) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define ERIS_SIMD_AVX2 1
#include <immintrin.h>
#else
#define ERIS_SIMD_AVX2 0
#endif

namespace eris::simd {

// ---------------------------------------------------------------------------
// Scalar reference kernels (always compiled)
// ---------------------------------------------------------------------------

inline uint64_t SumAllScalar(const uint64_t* data, size_t n) {
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) sum += data[i];
  return sum;
}

inline uint64_t ScanSumScalar(const uint64_t* data, size_t n, uint64_t lo,
                              uint64_t hi) {
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = data[i];
    sum += (v >= lo && v <= hi) ? v : 0;
  }
  return sum;
}

inline uint64_t ScanCountScalar(const uint64_t* data, size_t n, uint64_t lo,
                                uint64_t hi) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += (data[i] >= lo && data[i] <= hi) ? 1 : 0;
  }
  return count;
}

inline void ScanSumCountScalar(const uint64_t* data, size_t n, uint64_t lo,
                               uint64_t hi, uint64_t* sum, uint64_t* count) {
  uint64_t s = 0;
  uint64_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = data[i];
    bool match = v >= lo && v <= hi;
    s += match ? v : 0;
    c += match ? 1 : 0;
  }
  *sum = s;
  *count = c;
}

/// Writes base + i for every matching element into `out` (which must have
/// room for at least the number of matches); returns the match count.
inline uint64_t ScanCollectScalar(const uint64_t* data, size_t n, uint64_t lo,
                                  uint64_t hi, uint64_t base, uint64_t* out) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (data[i] >= lo && data[i] <= hi) out[count++] = base + i;
  }
  return count;
}

// --- Selection-vector kernels (vectorized pipeline operators) --------------
//
// A selection vector is a dense array of uint32_t positions into one column
// segment (segment capacity is 64 Ki, so 32 bits suffice). Operators of a
// fused pipeline hand selection vectors to each other instead of
// materializing intermediate columns.

/// Filter: writes the position of every element in [lo, hi] into `out`
/// (room for n required); returns the match count.
inline uint32_t FilterIndicesScalar(const uint64_t* data, size_t n,
                                    uint64_t lo, uint64_t hi, uint32_t* out) {
  uint32_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (data[i] >= lo && data[i] <= hi) out[count++] = static_cast<uint32_t>(i);
  }
  return count;
}

/// Refining filter: keeps the selected positions whose value in `data` lies
/// in [lo, hi]. `out` may alias `sel` (the kernel only shrinks).
inline uint32_t FilterIndicesSelScalar(const uint64_t* data,
                                       const uint32_t* sel, size_t m,
                                       uint64_t lo, uint64_t hi,
                                       uint32_t* out) {
  uint32_t count = 0;
  for (size_t i = 0; i < m; ++i) {
    uint32_t pos = sel[i];
    uint64_t v = data[pos];
    if (v >= lo && v <= hi) out[count++] = pos;
  }
  return count;
}

/// Aggregate over a selection: sum of data[sel[i]].
inline uint64_t GatherSumSelScalar(const uint64_t* data, const uint32_t* sel,
                                   size_t m) {
  uint64_t sum = 0;
  for (size_t i = 0; i < m; ++i) sum += data[sel[i]];
  return sum;
}

// ---------------------------------------------------------------------------
// AVX2 kernels (compiled when ERIS_ENABLE_AVX2; selected at runtime)
// ---------------------------------------------------------------------------

#if ERIS_SIMD_AVX2

namespace internal {

// AVX2 has no unsigned 64-bit compare; bias both sides by 2^63 so the
// signed compare orders unsigned operands correctly.
__attribute__((target("avx2"))) inline __m256i BiasU64(__m256i v) {
  return _mm256_xor_si256(v, _mm256_set1_epi64x(
                                 static_cast<long long>(0x8000000000000000ull)));
}

// All-ones per lane where lo <= v <= hi (unsigned, inclusive).
__attribute__((target("avx2"))) inline __m256i RangeMaskU64(
    __m256i v_biased, __m256i lo_biased, __m256i hi_biased) {
  __m256i below = _mm256_cmpgt_epi64(lo_biased, v_biased);  // v < lo
  __m256i above = _mm256_cmpgt_epi64(v_biased, hi_biased);  // v > hi
  __m256i outside = _mm256_or_si256(below, above);
  return _mm256_xor_si256(outside, _mm256_set1_epi64x(-1));
}

__attribute__((target("avx2"))) inline uint64_t HorizontalSumU64(__m256i v) {
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

}  // namespace internal

__attribute__((target("avx2"))) inline uint64_t SumAllAvx2(
    const uint64_t* data, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    acc = _mm256_add_epi64(acc, v);
  }
  uint64_t sum = internal::HorizontalSumU64(acc);
  for (; i < n; ++i) sum += data[i];
  return sum;
}

__attribute__((target("avx2"))) inline void ScanSumCountAvx2(
    const uint64_t* data, size_t n, uint64_t lo, uint64_t hi, uint64_t* sum,
    uint64_t* count) {
  const __m256i lo_b = internal::BiasU64(_mm256_set1_epi64x(
      static_cast<long long>(lo)));
  const __m256i hi_b = internal::BiasU64(_mm256_set1_epi64x(
      static_cast<long long>(hi)));
  __m256i sum_acc = _mm256_setzero_si256();
  __m256i cnt_acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    __m256i mask = internal::RangeMaskU64(internal::BiasU64(v), lo_b, hi_b);
    sum_acc = _mm256_add_epi64(sum_acc, _mm256_and_si256(mask, v));
    // Matching lanes are all-ones == -1: subtracting adds 1 per match.
    cnt_acc = _mm256_sub_epi64(cnt_acc, mask);
  }
  uint64_t s = internal::HorizontalSumU64(sum_acc);
  uint64_t c = internal::HorizontalSumU64(cnt_acc);
  for (; i < n; ++i) {
    uint64_t v = data[i];
    bool match = v >= lo && v <= hi;
    s += match ? v : 0;
    c += match ? 1 : 0;
  }
  *sum = s;
  *count = c;
}

__attribute__((target("avx2"))) inline uint64_t ScanSumAvx2(
    const uint64_t* data, size_t n, uint64_t lo, uint64_t hi) {
  uint64_t sum;
  uint64_t count;
  ScanSumCountAvx2(data, n, lo, hi, &sum, &count);
  return sum;
}

__attribute__((target("avx2"))) inline uint64_t ScanCountAvx2(
    const uint64_t* data, size_t n, uint64_t lo, uint64_t hi) {
  uint64_t sum;
  uint64_t count;
  ScanSumCountAvx2(data, n, lo, hi, &sum, &count);
  return count;
}

__attribute__((target("avx2"))) inline uint64_t ScanCollectAvx2(
    const uint64_t* data, size_t n, uint64_t lo, uint64_t hi, uint64_t base,
    uint64_t* out) {
  const __m256i lo_b = internal::BiasU64(_mm256_set1_epi64x(
      static_cast<long long>(lo)));
  const __m256i hi_b = internal::BiasU64(_mm256_set1_epi64x(
      static_cast<long long>(hi)));
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    __m256i mask = internal::RangeMaskU64(internal::BiasU64(v), lo_b, hi_b);
    int bits = _mm256_movemask_pd(_mm256_castsi256_pd(mask));
    while (bits != 0) {
      int lane = __builtin_ctz(static_cast<unsigned>(bits));
      out[count++] = base + i + static_cast<uint64_t>(lane);
      bits &= bits - 1;
    }
  }
  for (; i < n; ++i) {
    if (data[i] >= lo && data[i] <= hi) out[count++] = base + i;
  }
  return count;
}

__attribute__((target("avx2"))) inline uint32_t FilterIndicesAvx2(
    const uint64_t* data, size_t n, uint64_t lo, uint64_t hi, uint32_t* out) {
  const __m256i lo_b = internal::BiasU64(_mm256_set1_epi64x(
      static_cast<long long>(lo)));
  const __m256i hi_b = internal::BiasU64(_mm256_set1_epi64x(
      static_cast<long long>(hi)));
  uint32_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    __m256i mask = internal::RangeMaskU64(internal::BiasU64(v), lo_b, hi_b);
    int bits = _mm256_movemask_pd(_mm256_castsi256_pd(mask));
    while (bits != 0) {
      int lane = __builtin_ctz(static_cast<unsigned>(bits));
      out[count++] = static_cast<uint32_t>(i) + static_cast<uint32_t>(lane);
      bits &= bits - 1;
    }
  }
  for (; i < n; ++i) {
    if (data[i] >= lo && data[i] <= hi) out[count++] = static_cast<uint32_t>(i);
  }
  return count;
}

__attribute__((target("avx2"))) inline uint32_t FilterIndicesSelAvx2(
    const uint64_t* data, const uint32_t* sel, size_t m, uint64_t lo,
    uint64_t hi, uint32_t* out) {
  const __m256i lo_b = internal::BiasU64(_mm256_set1_epi64x(
      static_cast<long long>(lo)));
  const __m256i hi_b = internal::BiasU64(_mm256_set1_epi64x(
      static_cast<long long>(hi)));
  uint32_t count = 0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + i));
    __m256i v = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(data), idx, 8);
    __m256i mask = internal::RangeMaskU64(internal::BiasU64(v), lo_b, hi_b);
    int bits = _mm256_movemask_pd(_mm256_castsi256_pd(mask));
    while (bits != 0) {
      int lane = __builtin_ctz(static_cast<unsigned>(bits));
      out[count++] = sel[i + static_cast<size_t>(lane)];
      bits &= bits - 1;
    }
  }
  for (; i < m; ++i) {
    uint64_t v = data[sel[i]];
    if (v >= lo && v <= hi) out[count++] = sel[i];
  }
  return count;
}

__attribute__((target("avx2"))) inline uint64_t GatherSumSelAvx2(
    const uint64_t* data, const uint32_t* sel, size_t m) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + i));
    __m256i v = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(data), idx, 8);
    acc = _mm256_add_epi64(acc, v);
  }
  uint64_t sum = internal::HorizontalSumU64(acc);
  for (; i < m; ++i) sum += data[sel[i]];
  return sum;
}

#endif  // ERIS_SIMD_AVX2

// ---------------------------------------------------------------------------
// Runtime dispatch
// ---------------------------------------------------------------------------

/// True when the AVX2 kernels are compiled in and the executing CPU
/// supports them.
inline bool HaveAvx2() {
#if ERIS_SIMD_AVX2
  static const bool have = __builtin_cpu_supports("avx2");
  return have;
#else
  return false;
#endif
}

/// Name of the kernel set the dispatchers resolve to ("avx2" / "scalar").
inline const char* BackendName() { return HaveAvx2() ? "avx2" : "scalar"; }

/// Unconditional sum of `n` values (the zone-map fully-covered fast path).
inline uint64_t SumAll(const uint64_t* data, size_t n) {
#if ERIS_SIMD_AVX2
  if (HaveAvx2()) return SumAllAvx2(data, n);
#endif
  return SumAllScalar(data, n);
}

inline uint64_t ScanSum(const uint64_t* data, size_t n, uint64_t lo,
                        uint64_t hi) {
#if ERIS_SIMD_AVX2
  if (HaveAvx2()) return ScanSumAvx2(data, n, lo, hi);
#endif
  return ScanSumScalar(data, n, lo, hi);
}

inline uint64_t ScanCount(const uint64_t* data, size_t n, uint64_t lo,
                          uint64_t hi) {
#if ERIS_SIMD_AVX2
  if (HaveAvx2()) return ScanCountAvx2(data, n, lo, hi);
#endif
  return ScanCountScalar(data, n, lo, hi);
}

inline void ScanSumCount(const uint64_t* data, size_t n, uint64_t lo,
                         uint64_t hi, uint64_t* sum, uint64_t* count) {
#if ERIS_SIMD_AVX2
  if (HaveAvx2()) {
    ScanSumCountAvx2(data, n, lo, hi, sum, count);
    return;
  }
#endif
  ScanSumCountScalar(data, n, lo, hi, sum, count);
}

inline uint64_t ScanCollect(const uint64_t* data, size_t n, uint64_t lo,
                            uint64_t hi, uint64_t base, uint64_t* out) {
#if ERIS_SIMD_AVX2
  if (HaveAvx2()) return ScanCollectAvx2(data, n, lo, hi, base, out);
#endif
  return ScanCollectScalar(data, n, lo, hi, base, out);
}

inline uint32_t FilterIndices(const uint64_t* data, size_t n, uint64_t lo,
                              uint64_t hi, uint32_t* out) {
#if ERIS_SIMD_AVX2
  if (HaveAvx2()) return FilterIndicesAvx2(data, n, lo, hi, out);
#endif
  return FilterIndicesScalar(data, n, lo, hi, out);
}

inline uint32_t FilterIndicesSel(const uint64_t* data, const uint32_t* sel,
                                 size_t m, uint64_t lo, uint64_t hi,
                                 uint32_t* out) {
#if ERIS_SIMD_AVX2
  if (HaveAvx2()) return FilterIndicesSelAvx2(data, sel, m, lo, hi, out);
#endif
  return FilterIndicesSelScalar(data, sel, m, lo, hi, out);
}

inline uint64_t GatherSumSel(const uint64_t* data, const uint32_t* sel,
                             size_t m) {
#if ERIS_SIMD_AVX2
  if (HaveAvx2()) return GatherSumSelAvx2(data, sel, m);
#endif
  return GatherSumSelScalar(data, sel, m);
}

}  // namespace eris::simd
