// Fast deterministic pseudo-random number generation for workloads and tests.
//
// Benchmark workloads must not be bottlenecked by std::mt19937; we use
// SplitMix64 for seeding and Xoshiro256** for bulk generation (the standard
// pairing recommended by the xoshiro authors).
#pragma once

#include <cstdint>

namespace eris {

/// SplitMix64: tiny, passes BigCrush, ideal for seeding and hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Stateless SplitMix64 finalizer; usable as an integer hash.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Xoshiro256**: fast all-purpose 64-bit generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound) without modulo bias for bound << 2^64
  /// (Lemire's multiply-shift reduction).
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return Next(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace eris
