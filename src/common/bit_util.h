// Bit-manipulation helpers shared across modules.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace eris {

/// True when v is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Smallest power of two >= v (v=0 yields 1).
constexpr uint64_t NextPowerOfTwo(uint64_t v) {
  return v <= 1 ? 1 : uint64_t{1} << (64 - std::countl_zero(v - 1));
}

/// floor(log2(v)); v must be non-zero.
constexpr int Log2Floor(uint64_t v) { return 63 - std::countl_zero(v); }

/// ceil(log2(v)); v must be non-zero.
constexpr int Log2Ceil(uint64_t v) {
  return v <= 1 ? 0 : 64 - std::countl_zero(v - 1);
}

/// ceil(a / b) for positive integers.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Rounds v up to a multiple of `alignment` (power of two).
constexpr uint64_t AlignUp(uint64_t v, uint64_t alignment) {
  return (v + alignment - 1) & ~(alignment - 1);
}

/// Extracts `width` bits of `key` starting `shift` bits from the LSB.
constexpr uint64_t ExtractBits(uint64_t key, int shift, int width) {
  return (key >> shift) & ((width >= 64) ? ~0ULL : ((uint64_t{1} << width) - 1));
}

constexpr size_t kCacheLineSize = 64;

}  // namespace eris
