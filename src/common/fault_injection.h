// Seeded fault injection and schedule perturbation for the latch-free core.
//
// The engine's correctness-critical machinery — the 64-bit CAS descriptor on
// the double incoming buffers, outgoing-buffer delivery, partition transfer
// and balancing-cycle application — is latch-free: its bugs are
// interleaving bugs. Under a sanitizer (or plain stress) the interesting
// interleavings only occur if the schedule actually varies, so this layer
// provides *named injection points* compiled into those paths:
//
//   ERIS_INJECT_POINT(kIncomingReserve);        // maybe yield/backoff here
//   if (ERIS_INJECT_SHOULD_FAIL(kRouterFlush))  // maybe fail artificially
//     return false;
//
// Behaviour per point:
//   * schedule perturbation — with a configured probability the calling
//     thread yields or spins a short random backoff, widening CAS windows
//     so TSan observes many distinct interleavings per run;
//   * fault injection — points guarding a recoverable failure path (a full
//     incoming buffer, a rejected delivery) can be told to fail with a
//     per-point probability, driving the retry code that ordinary runs
//     almost never exercise;
//   * test hooks — a test can install a callback that runs synchronously
//     when a thread passes the point, to build exact interleavings
//     deterministically (e.g. force a CAS failure by racing a competing
//     write between the descriptor load and the CAS).
//
// Randomness is deterministic per (seed, thread): every thread derives its
// stream from the global seed and a per-thread ordinal, so a failing seed
// reproduces the same injection decisions thread-locally. (True cross-
// thread schedules are OS-controlled; the seed pins everything we control.)
//
// Cost when disarmed: one relaxed atomic load per point. Building with
// -DERIS_FAULT_INJECTION=OFF compiles every point to nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

namespace eris::fi {

/// Named injection points on the latch-free hot paths.
enum class Point : uint32_t {
  kIncomingReserve = 0,  ///< between descriptor load and CAS (TryWriteGather)
  kIncomingCopy,         ///< after reservation, before the payload memcpy
  kIncomingRelease,      ///< after memcpy, before the writer-count release
  kIncomingSwap,         ///< in Drain, between buffer swap and deactivation
  kIncomingDrainWait,    ///< each iteration of Drain's writer-drain spin
  kRouterUnicast,        ///< before appending a unicast command
  kRouterMulticast,      ///< before appending a multicast command
  kRouterFlush,          ///< before delivering an outgoing buffer (failable)
  kTransferApply,        ///< partition transfer request / install handling
  kBalanceApply,         ///< balancing-cycle application (table + commands)
  kAeuLoop,              ///< top of the AEU loop iteration
  kAeuProcess,           ///< before dispatching one dequeued command; a
                         ///< throwing hook marks the command as poison
  kEndpointScratchAlloc, ///< endpoint scratch arena grows (allocation
                         ///< counter: steady-state sends must not visit it)
  kQueryScratchAlloc,    ///< query-pipeline/join scratch arena grows
                         ///< (allocation counter: steady-state pipelines and
                         ///< joins must not visit it)
  // Engine-wide allocation counters (DESIGN.md §16): each hot path that was
  // converted to arena/pooled allocation visits its point on every real
  // allocation, so "zero steady-state allocations" is assertable. Each is
  // also failable: ShouldFail at these points models allocation failure and
  // must degrade to a typed Status::ResourceExhausted, never a crash.
  kAeuScratchAlloc,      ///< AEU dequeue/batch scratch arena grows
  kMvccVersionAlloc,     ///< MVCC version-chain pool grows (new node batch)
  kWalBufferAlloc,       ///< WAL group-commit buffer grows
  kExchangeStreamAlloc,  ///< router exchange/transfer stream buffer grows
  // Durability kill points (DESIGN.md §14): one at every write/fsync/
  // rename boundary of the WAL and snapshot paths, so the crash-recovery
  // matrix (tests/recovery_test.cc) can kill the process at each.
  kWalAppend,            ///< WAL record framed into the group buffer
  kWalCommit,            ///< group sealed, before the write() of the group
  kWalFsync,             ///< group written, before its fsync
  kWalRotate,            ///< before truncating the log after a snapshot
  kSnapshotWrite,        ///< snapshot file created, before its write()
  kSnapshotFsync,        ///< snapshot file written, before its fsync
  kSnapshotRename,       ///< before renaming snap-<e>.tmp into place
  kCurrentWrite,         ///< before writing/publishing the CURRENT manifest
  // Storage-fault tier (DESIGN.md §15): error-injection points inside the
  // durability I/O shim (src/durability/io.h). Each failure mode gets its
  // own point so tests can dial per-syscall probabilities independently.
  kIoOpen,               ///< open() returns EIO
  kIoWriteError,         ///< write() returns EIO
  kIoNoSpace,            ///< write() returns ENOSPC
  kIoShortWrite,         ///< write() persists only part of the chunk
  kIoFsyncError,         ///< fsync() returns EIO (fail-stop: never retried)
  kIoRename,             ///< rename() returns EIO
  kIoTruncate,           ///< ftruncate() returns EIO
  kIoReadError,          ///< read() returns EIO
  kIoReadFlip,           ///< read succeeds but one byte is flipped
  kNumPoints,
};

inline constexpr uint32_t kNumPoints = static_cast<uint32_t>(Point::kNumPoints);

const char* PointName(Point p);

/// Per-point counters (approximate: relaxed increments).
struct PointStats {
  uint64_t visits = 0;    ///< times an armed thread passed the point
  uint64_t perturbs = 0;  ///< yields/backoffs taken
  uint64_t failures = 0;  ///< artificial failures injected
};

namespace internal {
/// Fast-path guard; nonzero while any chaos/hook/failure config is armed.
extern std::atomic<uint32_t> g_armed;
}  // namespace internal

/// True when some thread enabled injection; the only cost on a cold path.
inline bool Armed() {
  return internal::g_armed.load(std::memory_order_relaxed) != 0;
}

/// \brief Global singleton owning the injection configuration.
///
/// Configuration calls (EnableChaos, SetFailProbability, SetHook, Reset)
/// must run while the instrumented threads are quiescent — typically from
/// the test body before Engine::Start() / after Stop(). Visit/ShouldFail
/// are called concurrently from instrumented code and are thread-safe.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms schedule perturbation at every point with probability
  /// `perturb_probability` per visit, deterministically derived from
  /// `seed` per thread.
  void EnableChaos(uint64_t seed, double perturb_probability = 0.1);

  /// Arms an artificial-failure probability for one failable point.
  void SetFailProbability(Point p, double probability);

  /// Installs a synchronous test hook at `p` (replaces any existing hook).
  /// The hook runs on the visiting thread; guard against reentrancy
  /// yourself if the hook re-enters instrumented code.
  void SetHook(Point p, std::function<void()> hook);

  /// Disarms everything and zeroes statistics.
  void Reset();

  uint64_t seed() const { return seed_; }
  PointStats Stats(Point p) const;
  /// Sum of perturbs + failures over all points (harness sanity checks).
  uint64_t TotalInjections() const;

  // --- called from instrumented code via the macros (armed path only) ---
  void Visit(Point p);
  bool ShouldFail(Point p);

 private:
  FaultInjector() = default;

  struct PointState {
    std::atomic<uint64_t> visits{0};
    std::atomic<uint64_t> perturbs{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<double> fail_probability{0.0};
  };

  /// Thread-local uniform double in [0, 1) from the per-thread stream.
  double NextDouble();
  uint64_t NextU64();

  std::atomic<bool> chaos_{false};
  std::atomic<double> perturb_probability_{0.0};
  uint64_t seed_ = 0;
  /// Bumped by EnableChaos/Reset so long-lived threads re-seed their
  /// thread-local stream.
  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> thread_ordinal_{0};
  PointState points_[kNumPoints];
  /// Hooks are raw function pointers to shared state; only mutated while
  /// quiescent (see class comment), read under g_armed.
  std::function<void()> hooks_[kNumPoints];
  std::atomic<bool> hook_set_[kNumPoints] = {};
};

}  // namespace eris::fi

#if defined(ERIS_FAULT_INJECTION) && ERIS_FAULT_INJECTION
/// Schedule-perturbation (and hook) point; statement.
#define ERIS_INJECT_POINT(point)                              \
  do {                                                        \
    if (::eris::fi::Armed())                                  \
      ::eris::fi::FaultInjector::Global().Visit(              \
          ::eris::fi::Point::point);                          \
  } while (0)
/// Artificial-failure query; expression, false when disarmed.
#define ERIS_INJECT_SHOULD_FAIL(point)                        \
  (::eris::fi::Armed() &&                                     \
   ::eris::fi::FaultInjector::Global().ShouldFail(            \
       ::eris::fi::Point::point))
#else
#define ERIS_INJECT_POINT(point) \
  do {                           \
  } while (0)
#define ERIS_INJECT_SHOULD_FAIL(point) false
#endif
