#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace eris {

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  ERIS_CHECK_GT(hi, lo);
  ERIS_CHECK_GT(buckets, 0u);
}

void Histogram::Add(double value, uint64_t weight) {
  double idx = (value - lo_) / width_;
  size_t i = idx <= 0 ? 0
             : std::min(counts_.size() - 1, static_cast<size_t>(idx));
  counts_[i] += weight;
  total_count_ += weight;
  sum_ += value * static_cast<double>(weight);
  sum_sq_ += value * value * static_cast<double>(weight);
}

void Histogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_count_ = 0;
  sum_ = 0;
  sum_sq_ = 0;
}

void Histogram::Merge(const Histogram& other) {
  ERIS_CHECK_EQ(counts_.size(), other.counts_.size());
  ERIS_CHECK_EQ(lo_, other.lo_);
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_count_ += other.total_count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

double Histogram::Mean() const {
  return total_count_ == 0 ? 0.0 : sum_ / static_cast<double>(total_count_);
}

double Histogram::StdDev() const {
  if (total_count_ == 0) return 0.0;
  double n = static_cast<double>(total_count_);
  double mean = sum_ / n;
  double var = sum_sq_ / n - mean * mean;
  return var > 0 ? std::sqrt(var) : 0.0;
}

double Histogram::Quantile(double q) const {
  if (total_count_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total_count_));
  uint64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (cum + counts_[i] > target) {
      double frac = counts_[i] == 0
                        ? 0.0
                        : static_cast<double>(target - cum) /
                              static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * width_;
    }
    cum += counts_[i];
  }
  return bucket_lo(counts_.size() - 1) + width_;
}

std::string Histogram::ToString(int bar_width) const {
  std::ostringstream os;
  uint64_t max_count = 1;
  for (uint64_t c : counts_) max_count = std::max(max_count, c);
  for (size_t i = 0; i < counts_.size(); ++i) {
    int bar = static_cast<int>(static_cast<double>(counts_[i]) /
                               static_cast<double>(max_count) * bar_width);
    os << "[" << bucket_lo(i) << ", " << bucket_lo(i) + width_ << ") "
       << std::string(static_cast<size_t>(bar), '#') << " " << counts_[i]
       << "\n";
  }
  return os.str();
}

}  // namespace eris
