// Status / Result error-handling primitives for ERIS.
//
// ERIS follows the Arrow/RocksDB convention of returning a Status (or a
// Result<T> that carries either a value or a Status) instead of throwing
// exceptions on expected failure paths. Exceptions are reserved for
// programming errors surfaced through ERIS_CHECK.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace eris {

/// Machine-readable classification of a failure.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIoError,
  kDeadlineExceeded,
  kUnavailable,
};

/// \brief Returns the canonical lower-case name of a status code
///        (e.g. "invalid-argument").
std::string_view StatusCodeName(StatusCode code);

/// Machine-readable detail payload attached to a Status by the overload
/// control layer, so callers can distinguish *why* a command was rejected
/// without parsing the human-readable message.
enum class StatusDetail : uint8_t {
  kNone = 0,
  kAdmissionRejected,   ///< shed at submit time by the in-flight budget
  kBufferFull,          ///< shed after the bounded delivery-retry cap
  kDeadlineExpired,     ///< dropped at dequeue (or timed out waiting)
  kAeuStalled,          ///< target AEU quarantined by the watchdog
  kCommandQuarantined,  ///< poison command moved to the dead-letter log
  kWalSealed,           ///< write lost: the target AEU's WAL sealed fail-stop
  kReadOnly,            ///< engine degraded to read-only (storage fault)
  kAllocFailed,         ///< arena/pool allocation failed under memory pressure
};

/// \brief Returns the canonical lower-case name of a status detail
///        (e.g. "admission-rejected").
std::string_view StatusDetailName(StatusDetail detail);

/// \brief Outcome of an operation: OK, or a code plus human-readable message.
///
/// Status is cheap to copy in the OK case (a null pointer) and allocates only
/// on failure, following the RocksDB/Arrow pattern.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : new Rep{code, std::move(message), StatusDetail::kNone, {}}) {
  }

  Status(const Status& other) : rep_(other.rep_ ? new Rep(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      delete rep_;
      rep_ = other.rep_ ? new Rep(*other.rep_) : nullptr;
    }
    return *this;
  }
  Status(Status&& other) noexcept : rep_(other.rep_) { other.rep_ = nullptr; }
  Status& operator=(Status&& other) noexcept {
    if (this != &other) {
      delete rep_;
      rep_ = other.rep_;
      other.rep_ = nullptr;
    }
    return *this;
  }
  ~Status() { delete rep_; }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const noexcept { return rep_ == nullptr; }
  StatusCode code() const noexcept {
    return rep_ ? rep_->code : StatusCode::kOk;
  }
  /// Message of a non-OK status; empty for OK.
  std::string_view message() const noexcept {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// Attaches a typed detail payload (no-op on an OK status). Chainable:
  ///   return Status::ResourceExhausted("buffer full")
  ///       .WithDetail(StatusDetail::kBufferFull, "aeu 3");
  Status&& WithDetail(StatusDetail detail, std::string detail_message = {}) && {
    if (rep_ != nullptr) {
      rep_->detail = detail;
      rep_->detail_message = std::move(detail_message);
    }
    return std::move(*this);
  }
  Status& WithDetail(StatusDetail detail, std::string detail_message = {}) & {
    if (rep_ != nullptr) {
      rep_->detail = detail;
      rep_->detail_message = std::move(detail_message);
    }
    return *this;
  }

  StatusDetail detail() const noexcept {
    return rep_ ? rep_->detail : StatusDetail::kNone;
  }
  std::string_view detail_message() const noexcept {
    return rep_ ? std::string_view(rep_->detail_message) : std::string_view();
  }
  bool has_detail() const noexcept { return detail() != StatusDetail::kNone; }

  /// "OK" or "<code-name>: <message>", with " [<detail-name>: <detail>]"
  /// appended when a detail payload is attached.
  std::string ToString() const;

  /// Wire form that survives a round trip through Deserialize, including the
  /// detail payload. Messages may contain arbitrary bytes (length-prefixed).
  std::string Serialize() const;
  /// Parses a string produced by Serialize; malformed input yields an
  /// Internal status describing the parse failure.
  static Status Deserialize(std::string_view wire);

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message() &&
           detail() == other.detail() &&
           detail_message() == other.detail_message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
    StatusDetail detail = StatusDetail::kNone;
    std::string detail_message;
  };
  Rep* rep_ = nullptr;  // nullptr means OK.
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or a non-OK Status.
///
/// A moved-from or default Result is in the error state. Accessing the value
/// of an error Result aborts (programming error).
template <typename T>
class Result {
 public:
  /// Error-state constructor (Internal status).
  Result() : storage_(Status::Internal("uninitialized Result")) {}
  Result(T value) : storage_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : storage_(std::move(status)) {  // NOLINT implicit
    if (std::get<Status>(storage_).ok()) {
      storage_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(storage_);
  }

  T& value() & { return std::get<T>(storage_); }
  const T& value() const& { return std::get<T>(storage_); }
  T&& value() && { return std::move(std::get<T>(storage_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when in the error state.
  T ValueOr(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> storage_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define ERIS_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::eris::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Assigns the value of a Result expression or propagates its Status.
#define ERIS_ASSIGN_OR_RETURN(lhs, expr)      \
  auto ERIS_CONCAT_(_res_, __LINE__) = (expr);            \
  if (!ERIS_CONCAT_(_res_, __LINE__).ok())                \
    return ERIS_CONCAT_(_res_, __LINE__).status();        \
  lhs = std::move(ERIS_CONCAT_(_res_, __LINE__)).value()

#define ERIS_CONCAT_IMPL_(a, b) a##b
#define ERIS_CONCAT_(a, b) ERIS_CONCAT_IMPL_(a, b)

}  // namespace eris
