// Wall-clock stopwatch for benchmarks and examples.
#pragma once

#include <chrono>
#include <cstdint>

namespace eris {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Monotonic clock reading in nanoseconds. Deadlines on routed commands are
/// absolute values of this clock, so they can be compared across threads.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace eris
