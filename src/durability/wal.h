// Per-AEU write-ahead log with group commit (DESIGN.md §14).
//
// Every AEU owns one append-only log file. Data commands are logged as
// *effect records* — the CommandHeader-framed subset of a command the AEU
// applied locally — before they touch a partition, so per-AEU replay is a
// pure function of that AEU's own log, independent of cross-AEU delivery
// order and rebalancing.
//
// Records are buffered in memory and made durable in groups: one write()
// plus one fsync() per AEU loop iteration covers every command the
// iteration processed (the paper-adjacent push-based-logging point that a
// per-record fsync would serialize the whole engine on the log device).
// A group is terminated by a zero-body *commit frame*; replay applies a
// record only once its group's commit frame has been seen and CRC-checked,
// so a torn or bit-flipped tail discards the incomplete final group and
// never surfaces a partial group commit.
//
// Frame layout (24-byte header, body padded to 8 bytes):
//   u32 magic | u32 crc | u64 lsn | u32 body_bytes | u32 flags | body...
// The CRC covers (lsn, body_bytes, flags, body). LSNs are per-AEU and
// strictly monotonic, surviving log rotation: a snapshot records the
// durable-LSN watermark per AEU and replay skips records at or below it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "routing/arena_vec.h"

namespace eris::durability {

/// Group-commit buffer: arena-backed so steady-state logging reuses the
/// group's high-water-mark capacity instead of growing the heap; every real
/// growth visits fi::Point::kWalBufferAlloc.
using WalGroupBuffer =
    routing::ArenaVec<uint8_t, fi::Point::kWalBufferAlloc>;

/// CRC-32 (reflected, poly 0xEDB88320) over `n` bytes; chainable via `seed`
/// (pass a previous return value to continue a running checksum).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// When records reach the disk.
enum class WalMode : uint8_t {
  /// Buffer records and commit once per AEU loop iteration (one write +
  /// one fsync covering the whole group). The engine default.
  kGroupCommit = 0,
  /// write() + fsync() every record — the ablation baseline bench_ext_wal
  /// measures group commit against.
  kPerRecordFsync = 1,
};

/// Durability configuration, embedded in EngineOptions.
struct DurabilityOptions {
  /// Master switch. Off = the engine is purely in-memory (no WAL handles,
  /// no behavior change anywhere).
  bool enabled = false;
  /// Directory holding wal-<aeu>.log files, snap-<epoch>/ snapshot
  /// directories and the CURRENT manifest. Created if missing.
  std::string dir;
  WalMode mode = WalMode::kGroupCommit;
  /// Group-commit backpressure: when an iteration buffers more than this
  /// many bytes, the AEU stalls on an inline commit before accepting more
  /// work (bounds both memory and the unacknowledged window).
  size_t max_unsynced_bytes = 1u << 20;
  /// Background storage scrubber period (DESIGN.md §15). 0 disables the
  /// thread; Engine::ScrubStorage() can always be called directly.
  uint32_t scrub_interval_ms = 0;
};

inline constexpr uint32_t kWalMagic = 0x4C415745;  // "EWAL"
inline constexpr uint32_t kWalFlagCommit = 1u << 0;

/// On-disk frame header; body (padded to 8 bytes) follows.
struct WalFrame {
  uint32_t magic = kWalMagic;
  uint32_t crc = 0;
  uint64_t lsn = 0;
  uint32_t body_bytes = 0;
  uint32_t flags = 0;
};
static_assert(sizeof(WalFrame) == 24);

struct WalWriterStats {
  uint64_t records = 0;  ///< data records appended
  uint64_t groups = 0;   ///< commits that flushed >= 1 record
  uint64_t fsyncs = 0;
  uint64_t bytes_written = 0;
  uint64_t stalls = 0;   ///< inline commits forced by the backpressure cap
  uint64_t io_errors = 0;  ///< I/O failures (the first one seals the log)
};

/// \brief Single-writer append/commit handle for one AEU's log.
///
/// Not thread-safe: exactly one thread (the owning AEU's loop, or the
/// engine during recovery/shutdown) uses a writer at a time.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating if missing) the log at `path`, truncates it to
  /// `valid_end` (discarding a torn tail found by replay) and positions
  /// the writer after it. `next_lsn` continues the per-AEU LSN sequence.
  Status Open(const std::string& path, const DurabilityOptions& options,
              uint64_t next_lsn, uint64_t valid_end);

  /// Appends one record body; `*lsn` (optional) receives its LSN.
  /// kPerRecordFsync commits immediately; kGroupCommit buffers until
  /// Commit() — or inline when the buffered bytes exceed the backpressure
  /// cap (counted as a stall). Fails without side effects once sealed.
  Status Append(std::span<const uint8_t> body, uint64_t* lsn = nullptr);

  /// Seals the buffered group with a commit frame and makes it durable
  /// (one write + one fsync). No-op when nothing is buffered — idle AEU
  /// loop iterations never touch the file. `*committed` (optional)
  /// receives the number of data records committed.
  ///
  /// Any I/O failure here — write error, ENOSPC, failed fsync — seals the
  /// log permanently (fsyncgate semantics: after a failed fsync the kernel
  /// may have dropped the dirty pages, so a retry that then succeeds proves
  /// nothing about the earlier data). The buffered group is discarded; the
  /// caller must shed its unacknowledged commands with a typed drop reason.
  Status Commit(uint64_t* committed = nullptr);

  /// Truncates the log after a snapshot made its contents redundant. The
  /// LSN sequence keeps counting (watermark-based replay dedup relies on
  /// monotonic LSNs across rotations). Requires an empty buffer. I/O
  /// failures seal the log (the on-disk state is no longer trustworthy).
  Status Rotate();

  /// Wires the owning AEU's node-local allocator behind the group buffer
  /// (call before the first Append; the engine does it when attaching the
  /// writer to its AEU). Null keeps the heap fallback.
  void set_memory(numa::NodeMemoryManager* memory) {
    buf_.set_memory(memory);
  }

  bool is_open() const { return fd_ >= 0; }
  /// True once a commit-path I/O failure permanently sealed this log.
  /// A sealed writer rejects every Append/Commit/Rotate with seal_status()
  /// and never touches the file again.
  bool sealed() const { return sealed_; }
  const Status& seal_status() const { return seal_status_; }
  uint64_t next_lsn() const { return next_lsn_; }
  size_t buffered_bytes() const { return buf_.size(); }
  const WalWriterStats& stats() const { return stats_; }

 private:
  void AppendFrame(std::span<const uint8_t> body, uint32_t flags);
  /// Fail-stop: records `cause`, drops the buffered group, closes the fd.
  Status Seal(Status cause);

  int fd_ = -1;
  std::string path_;
  WalMode mode_ = WalMode::kGroupCommit;
  size_t max_unsynced_bytes_ = 1u << 20;
  uint64_t next_lsn_ = 1;
  WalGroupBuffer buf_;
  uint64_t buffered_records_ = 0;
  bool sealed_ = false;
  Status seal_status_;
  WalWriterStats stats_;
};

/// Outcome of scanning one log file.
struct WalReplayResult {
  uint64_t last_lsn = 0;         ///< highest LSN inside a committed group
  uint64_t next_lsn = 1;         ///< LSN the writer should continue from
  uint64_t valid_end = 0;        ///< file offset after the last committed group
  uint64_t records_applied = 0;  ///< records delivered to the callback
  uint64_t records_skipped = 0;  ///< committed records at/below the watermark
  bool torn = false;             ///< trailing bytes past valid_end discarded
};

/// Scans the log at `path`, invoking `apply(lsn, body)` for every record of
/// every *committed* group whose LSN exceeds `watermark`, in log order.
/// Scanning stops at the first bad magic, CRC mismatch, truncated frame, or
/// uncommitted trailing group; everything past that point is reported as a
/// torn tail (valid_end marks where the writer must truncate). A missing
/// file is an empty log, not an error.
Status ReplayWal(
    const std::string& path, uint64_t watermark,
    const std::function<void(uint64_t lsn, std::span<const uint8_t> body)>&
        apply,
    WalReplayResult* result);

}  // namespace eris::durability
