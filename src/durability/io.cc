#include "durability/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"

namespace eris::durability::io {

namespace {

Status Errno(const char* op, const std::string& what) {
  return Status::IoError(std::string(op) + " " + what + ": " +
                         std::strerror(errno));
}

}  // namespace

Status Open(const std::string& path, int flags, mode_t mode, int* fd) {
  *fd = -1;
  if (ERIS_INJECT_SHOULD_FAIL(kIoOpen)) {
    errno = EIO;
    return Errno("open", path);
  }
  int f = ::open(path.c_str(), flags, mode);
  if (f < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("open " + path + ": " + std::strerror(errno));
    }
    return Errno("open", path);
  }
  *fd = f;
  return Status::Ok();
}

Status WriteFully(int fd, std::span<const uint8_t> data,
                  const std::string& what) {
  size_t off = 0;
  while (off < data.size()) {
    size_t n = data.size() - off;
    if (ERIS_INJECT_SHOULD_FAIL(kIoWriteError)) {
      errno = EIO;
      return Errno("write", what);
    }
    if (ERIS_INJECT_SHOULD_FAIL(kIoNoSpace)) {
      errno = ENOSPC;
      return Errno("write", what);
    }
    // Injected short write: genuinely persist only part of the chunk so the
    // resume loop below is exercised against real file contents.
    if (n > 1 && ERIS_INJECT_SHOULD_FAIL(kIoShortWrite)) {
      n = (n + 1) / 2;
    }
    ssize_t w = ::write(fd, data.data() + off, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("write", what);
    }
    off += static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status Fsync(int fd, const std::string& what) {
  if (ERIS_INJECT_SHOULD_FAIL(kIoFsyncError)) {
    errno = EIO;
    return Errno("fsync", what);
  }
  if (::fsync(fd) != 0) return Errno("fsync", what);
  return Status::Ok();
}

Status FsyncDir(const std::string& path) {
  int fd = -1;
  ERIS_RETURN_NOT_OK(Open(path, O_RDONLY | O_DIRECTORY, 0, &fd));
  Status st = Fsync(fd, path);
  ::close(fd);
  return st;
}

Status Rename(const std::string& from, const std::string& to) {
  if (ERIS_INJECT_SHOULD_FAIL(kIoRename)) {
    errno = EIO;
    return Errno("rename", from + " -> " + to);
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Errno("rename", from + " -> " + to);
  }
  return Status::Ok();
}

Status Truncate(int fd, uint64_t size, const std::string& what) {
  if (ERIS_INJECT_SHOULD_FAIL(kIoTruncate)) {
    errno = EIO;
    return Errno("ftruncate", what);
  }
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    return Errno("ftruncate", what);
  }
  return Status::Ok();
}

Status ReadAll(const std::string& path, std::vector<uint8_t>* out) {
  out->clear();
  int fd = -1;
  ERIS_RETURN_NOT_OK(Open(path, O_RDONLY, 0, &fd));
  uint8_t buf[1u << 16];
  for (;;) {
    if (ERIS_INJECT_SHOULD_FAIL(kIoReadError)) {
      errno = EIO;
      Status st = Errno("read", path);
      ::close(fd);
      return st;
    }
    ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      Status st = Errno("read", path);
      ::close(fd);
      return st;
    }
    if (r == 0) break;
    out->insert(out->end(), buf, buf + r);
  }
  ::close(fd);
  if (!out->empty() && ERIS_INJECT_SHOULD_FAIL(kIoReadFlip)) {
    (*out)[out->size() / 2] ^= 0x40;
  }
  return Status::Ok();
}

}  // namespace eris::durability::io
