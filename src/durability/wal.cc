#include "durability/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/bit_util.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "durability/io.h"

namespace eris::durability {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const Crc32Table table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table.entries[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

namespace {

/// CRC of one frame: header fields after the crc word, then the body.
uint32_t FrameCrc(const WalFrame& f, std::span<const uint8_t> body) {
  uint32_t c = Crc32(&f.lsn, sizeof(f.lsn));
  c = Crc32(&f.body_bytes, sizeof(f.body_bytes), c);
  c = Crc32(&f.flags, sizeof(f.flags), c);
  if (!body.empty()) c = Crc32(body.data(), body.size(), c);
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// WalWriter
// ---------------------------------------------------------------------------

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Open(const std::string& path,
                       const DurabilityOptions& options, uint64_t next_lsn,
                       uint64_t valid_end) {
  ERIS_CHECK(fd_ < 0) << "WAL already open: " << path_;
  int fd = -1;
  Status st = io::Open(path, O_RDWR | O_CREAT | O_CLOEXEC, 0644, &fd);
  if (!st.ok()) {
    // ENOENT with O_CREAT means a missing parent directory — still an
    // I/O error from the WAL's point of view, not "no log yet".
    return st.IsNotFound() ? Status::IoError(std::string(st.message())) : st;
  }
  // Discard the torn tail replay found (crash mid-write leaves a partial
  // frame or an uncommitted group behind); new records must start exactly
  // where the committed prefix ends.
  st = io::Truncate(fd, valid_end, path);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return Status::IoError("cannot seek WAL " + path + ": " +
                           std::strerror(errno));
  }
  fd_ = fd;
  path_ = path;
  mode_ = options.mode;
  max_unsynced_bytes_ = options.max_unsynced_bytes;
  next_lsn_ = next_lsn;
  buf_.clear();
  buffered_records_ = 0;
  sealed_ = false;
  seal_status_ = Status::Ok();
  return Status::Ok();
}

void WalWriter::AppendFrame(std::span<const uint8_t> body, uint32_t flags) {
  WalFrame f;
  f.lsn = next_lsn_++;
  f.body_bytes = static_cast<uint32_t>(body.size());
  f.flags = flags;
  f.crc = FrameCrc(f, body);
  size_t pos = buf_.size();
  size_t padded = AlignUp(body.size(), 8);
  buf_.resize(pos + sizeof(WalFrame) + padded);
  std::memcpy(buf_.data() + pos, &f, sizeof(WalFrame));
  if (!body.empty()) {
    std::memcpy(buf_.data() + pos + sizeof(WalFrame), body.data(),
                body.size());
  }
  if (padded != body.size()) {
    std::memset(buf_.data() + pos + sizeof(WalFrame) + body.size(), 0,
                padded - body.size());
  }
}

Status WalWriter::Seal(Status cause) {
  ++stats_.io_errors;
  // The buffered group never became durable; whatever prefix of it reached
  // the file is an uncommitted (commit-frame-less or torn) tail that replay
  // discards, exactly like a crash mid-group.
  buf_.clear();
  buffered_records_ = 0;
  sealed_ = true;
  seal_status_ =
      std::move(cause).WithDetail(StatusDetail::kWalSealed, path_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return seal_status_;
}

Status WalWriter::Append(std::span<const uint8_t> body, uint64_t* lsn) {
  if (sealed_) return seal_status_;
  ERIS_DCHECK(fd_ >= 0) << "append on closed WAL";
  ERIS_INJECT_POINT(kWalAppend);
  // Injected group-buffer allocation failure: recoverable (nothing was
  // framed, no LSN consumed, the log is NOT sealed) — the caller sheds the
  // record with a typed ResourceExhausted instead of logging it.
  if (ERIS_INJECT_SHOULD_FAIL(kWalBufferAlloc)) {
    return Status::ResourceExhausted("WAL group buffer allocation failed")
        .WithDetail(StatusDetail::kAllocFailed, path_);
  }
  AppendFrame(body, 0);
  ++buffered_records_;
  ++stats_.records;
  if (lsn != nullptr) *lsn = next_lsn_ - 1;
  if (mode_ == WalMode::kPerRecordFsync) {
    return Commit();
  }
  if (buf_.size() > max_unsynced_bytes_) {
    // Backpressure: the iteration buffered more than the cap, stall the
    // AEU on an inline commit before it takes on more work.
    ++stats_.stalls;
    return Commit();
  }
  return Status::Ok();
}

Status WalWriter::Commit(uint64_t* committed) {
  if (committed != nullptr) *committed = 0;
  if (sealed_) return seal_status_;
  if (buffered_records_ == 0) return Status::Ok();  // idle = file-free
  ERIS_INJECT_POINT(kWalCommit);
  // Seal the group: replay applies the buffered records only if this frame
  // survives to disk intact.
  AppendFrame({}, kWalFlagCommit);
  Status st = io::WriteFully(fd_, buf_, path_);
  if (!st.ok()) return Seal(std::move(st));
  stats_.bytes_written += buf_.size();
  ERIS_INJECT_POINT(kWalFsync);
  // fsyncgate: a failed fsync is fail-stop. The kernel may have already
  // dropped the dirty pages, so retrying the fsync (even successfully)
  // proves nothing about this group — the only sound move is to seal.
  st = io::Fsync(fd_, path_);
  if (!st.ok()) return Seal(std::move(st));
  ++stats_.fsyncs;
  ++stats_.groups;
  if (committed != nullptr) *committed = buffered_records_;
  buf_.clear();
  buffered_records_ = 0;
  return Status::Ok();
}

Status WalWriter::Rotate() {
  if (sealed_) return seal_status_;
  ERIS_CHECK(fd_ >= 0) << "rotate on closed WAL";
  ERIS_CHECK_EQ(buffered_records_, 0u)
      << "rotate with uncommitted records buffered";
  ERIS_INJECT_POINT(kWalRotate);
  Status st = io::Truncate(fd_, 0, path_);
  if (!st.ok()) return Seal(std::move(st));
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    return Seal(Status::IoError(path_ + ": rotate seek failed: " +
                                std::strerror(errno)));
  }
  st = io::Fsync(fd_, path_);
  if (!st.ok()) return Seal(std::move(st));
  ++stats_.fsyncs;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

Status ReplayWal(
    const std::string& path, uint64_t watermark,
    const std::function<void(uint64_t lsn, std::span<const uint8_t> body)>&
        apply,
    WalReplayResult* result) {
  *result = WalReplayResult{};
  std::vector<uint8_t> data;
  Status read_st = io::ReadAll(path, &data);
  if (read_st.IsNotFound()) return Status::Ok();  // no log yet = empty log
  ERIS_RETURN_NOT_OK(read_st);

  // Parse frames; records accumulate per group and are applied only when
  // the group's commit frame checks out. Any inconsistency ends the scan:
  // everything from the current (incomplete) group on is a torn tail.
  struct PendingRecord {
    uint64_t lsn;
    size_t body_off;
    uint32_t body_bytes;
  };
  std::vector<PendingRecord> group;
  size_t pos = 0;
  uint64_t prev_lsn = 0;
  while (true) {
    if (data.size() - pos < sizeof(WalFrame)) {
      result->torn = result->torn || pos != data.size() || !group.empty();
      break;
    }
    WalFrame f;
    std::memcpy(&f, data.data() + pos, sizeof(WalFrame));
    size_t padded = AlignUp(static_cast<size_t>(f.body_bytes), 8);
    if (f.magic != kWalMagic || f.lsn <= prev_lsn ||
        data.size() - pos - sizeof(WalFrame) < padded) {
      result->torn = true;
      break;
    }
    std::span<const uint8_t> body(data.data() + pos + sizeof(WalFrame),
                                  f.body_bytes);
    if (f.crc != FrameCrc(f, body)) {
      result->torn = true;
      break;
    }
    prev_lsn = f.lsn;
    pos += sizeof(WalFrame) + padded;
    if (f.flags & kWalFlagCommit) {
      for (const PendingRecord& r : group) {
        if (r.lsn <= watermark) {
          ++result->records_skipped;
          continue;
        }
        apply(r.lsn, {data.data() + r.body_off, r.body_bytes});
        ++result->records_applied;
      }
      group.clear();
      result->last_lsn = f.lsn;
      result->valid_end = pos;
    } else {
      // The body starts right after the frame header.
      group.push_back(PendingRecord{f.lsn, pos - padded, f.body_bytes});
    }
  }
  result->next_lsn = std::max<uint64_t>(result->last_lsn + 1, 1);
  return Status::Ok();
}

}  // namespace eris::durability
