#include "durability/manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include <algorithm>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "durability/io.h"

namespace eris::durability {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t kMetaMagic = 0x4154454D;     // "META"
constexpr uint32_t kCurrentMagic = 0x4E525543;  // "CURN"
constexpr uint32_t kPartMagic = 0x54524150;     // "PART"

void Put32(std::vector<uint8_t>* out, uint32_t v) {
  const auto* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}

void Put64(std::vector<uint8_t>* out, uint64_t v) {
  const auto* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}

/// Bounds-checked little-endian reader over a byte buffer.
struct Reader {
  const uint8_t* p;
  size_t left;
  bool ok = true;

  uint32_t Get32() {
    uint32_t v = 0;
    if (left < sizeof(v)) {
      ok = false;
      return 0;
    }
    std::memcpy(&v, p, sizeof(v));
    p += sizeof(v);
    left -= sizeof(v);
    return v;
  }
  uint64_t Get64() {
    uint64_t v = 0;
    if (left < sizeof(v)) {
      ok = false;
      return 0;
    }
    std::memcpy(&v, p, sizeof(v));
    p += sizeof(v);
    left -= sizeof(v);
    return v;
  }
};

/// Whole-file read through the error-injecting I/O shim. A missing file
/// surfaces as Status::NotFound.
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  return io::ReadAll(path, out);
}

/// Writes `bytes` to `path` and fsyncs it, visiting the snapshot fault
/// points at the write and fsync boundaries (crash-matrix kill points) on
/// top of the shim's own error-injection points.
Status WriteFileDurable(const std::string& path,
                        std::span<const uint8_t> bytes) {
  int fd = -1;
  Status st =
      io::Open(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644, &fd);
  if (!st.ok()) {
    return st.IsNotFound() ? Status::IoError(std::string(st.message())) : st;
  }
  ERIS_INJECT_POINT(kSnapshotWrite);
  st = io::WriteFully(fd, bytes, path);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  ERIS_INJECT_POINT(kSnapshotFsync);
  st = io::Fsync(fd, path);
  ::close(fd);
  return st;
}

std::vector<uint8_t> EncodeMeta(const SnapshotMeta& meta) {
  std::vector<uint8_t> body;
  Put64(&body, meta.epoch);
  Put32(&body, meta.num_aeus);
  Put32(&body, static_cast<uint32_t>(meta.objects.size()));
  for (const ObjectMeta& o : meta.objects) {
    Put32(&body, o.container);
    Put32(&body, o.partitioning);
  }
  for (uint32_t a = 0; a < meta.num_aeus; ++a) {
    Put64(&body, meta.wal_watermark[a]);
    Put64(&body, meta.wal_next_lsn[a]);
  }
  Put64(&body, meta.partitions.size());
  for (const PartitionMeta& pm : meta.partitions) {
    Put32(&body, pm.object);
    Put32(&body, pm.aeu);
    Put64(&body, pm.range.lo);
    Put64(&body, pm.range.hi);
    Put64(&body, pm.bytes);
  }
  std::vector<uint8_t> out;
  Put32(&out, kMetaMagic);
  Put32(&out, Crc32(body.data(), body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Status DecodeMeta(const std::vector<uint8_t>& bytes, SnapshotMeta* out) {
  if (bytes.size() < 8) return Status::IoError("snapshot meta truncated");
  uint32_t magic = 0;
  uint32_t crc = 0;
  std::memcpy(&magic, bytes.data(), 4);
  std::memcpy(&crc, bytes.data() + 4, 4);
  if (magic != kMetaMagic) return Status::IoError("snapshot meta bad magic");
  if (crc != Crc32(bytes.data() + 8, bytes.size() - 8)) {
    return Status::IoError("snapshot meta CRC mismatch");
  }
  Reader r{bytes.data() + 8, bytes.size() - 8};
  out->epoch = r.Get64();
  out->num_aeus = r.Get32();
  uint32_t num_objects = r.Get32();
  out->objects.resize(num_objects);
  for (ObjectMeta& o : out->objects) {
    o.container = r.Get32();
    o.partitioning = r.Get32();
  }
  out->wal_watermark.resize(out->num_aeus);
  out->wal_next_lsn.resize(out->num_aeus);
  for (uint32_t a = 0; r.ok && a < out->num_aeus; ++a) {
    out->wal_watermark[a] = r.Get64();
    out->wal_next_lsn[a] = r.Get64();
  }
  uint64_t num_partitions = r.Get64();
  if (!r.ok || num_partitions > r.left / 32) {
    return Status::IoError("snapshot meta truncated");
  }
  out->partitions.resize(num_partitions);
  for (PartitionMeta& pm : out->partitions) {
    pm.object = r.Get32();
    pm.aeu = r.Get32();
    pm.range.lo = r.Get64();
    pm.range.hi = r.Get64();
    pm.bytes = r.Get64();
  }
  if (!r.ok) return Status::IoError("snapshot meta truncated");
  return Status::Ok();
}

std::string PartFileName(uint32_t object, uint32_t aeu) {
  return "part-" + std::to_string(object) + "-" + std::to_string(aeu) +
         ".bin";
}

}  // namespace

DurabilityManager::DurabilityManager(DurabilityOptions options,
                                     uint32_t num_aeus)
    : options_(std::move(options)), num_aeus_(num_aeus) {
  wals_.resize(num_aeus_);
  for (uint32_t a = 0; a < num_aeus_; ++a) {
    wals_[a] = std::make_unique<WalWriter>();
  }
}

Status DurabilityManager::EnsureDir() {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return Status::IoError("cannot create durability dir " + options_.dir +
                           ": " + ec.message());
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

Status DurabilityManager::ReadCurrentEpoch(uint64_t* epoch) {
  *epoch = 0;
  std::string path = options_.dir + "/CURRENT";
  if (!fs::exists(path)) return Status::Ok();
  std::vector<uint8_t> bytes;
  Status st = ReadFileBytes(path, &bytes);
  if (!st.ok()) return st;
  if (bytes.size() != 16) return Status::IoError("CURRENT truncated");
  uint32_t magic = 0;
  uint32_t crc = 0;
  std::memcpy(&magic, bytes.data(), 4);
  std::memcpy(&crc, bytes.data() + 4, 4);
  if (magic != kCurrentMagic || crc != Crc32(bytes.data() + 8, 8)) {
    return Status::IoError("CURRENT corrupt");
  }
  std::memcpy(epoch, bytes.data() + 8, 8);
  return Status::Ok();
}

Status DurabilityManager::WriteCurrent(uint64_t epoch) {
  std::vector<uint8_t> bytes;
  Put32(&bytes, kCurrentMagic);
  std::vector<uint8_t> body;
  Put64(&body, epoch);
  Put32(&bytes, Crc32(body.data(), body.size()));
  bytes.insert(bytes.end(), body.begin(), body.end());
  std::string tmp = options_.dir + "/CURRENT.tmp";
  std::string final_path = options_.dir + "/CURRENT";
  ERIS_INJECT_POINT(kCurrentWrite);
  Status st = WriteFileDurable(tmp, bytes);
  if (!st.ok()) return st;
  ERIS_RETURN_NOT_OK(io::Rename(tmp, final_path));
  return io::FsyncDir(options_.dir);
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

std::string DurabilityManager::SnapshotDir(uint64_t epoch) const {
  return options_.dir + "/snap-" + std::to_string(epoch);
}

Status DurabilityManager::WriteSnapshot(
    const SnapshotMeta& meta,
    const std::function<std::vector<uint8_t>(size_t part_index)>& flatten) {
  std::string final_dir = SnapshotDir(meta.epoch);
  std::string tmp_dir = final_dir + ".tmp";
  std::error_code ec;
  fs::remove_all(tmp_dir, ec);  // stale attempt from a crashed snapshot
  fs::create_directories(tmp_dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + tmp_dir + ": " + ec.message());
  }
  for (size_t i = 0; i < meta.partitions.size(); ++i) {
    const PartitionMeta& pm = meta.partitions[i];
    std::vector<uint8_t> payload = flatten(i);
    ERIS_CHECK_EQ(payload.size(), pm.bytes)
        << "flatten size changed under the snapshot";
    std::vector<uint8_t> file;
    file.reserve(16 + payload.size());
    Put32(&file, kPartMagic);
    Put32(&file, Crc32(payload.data(), payload.size()));
    Put64(&file, payload.size());
    file.insert(file.end(), payload.begin(), payload.end());
    Status st = WriteFileDurable(
        tmp_dir + "/" + PartFileName(pm.object, pm.aeu), file);
    if (!st.ok()) return st;
  }
  Status st = WriteFileDurable(tmp_dir + "/meta.bin", EncodeMeta(meta));
  if (!st.ok()) return st;
  st = io::FsyncDir(tmp_dir);
  if (!st.ok()) return st;
  ERIS_INJECT_POINT(kSnapshotRename);
  ERIS_RETURN_NOT_OK(io::Rename(tmp_dir, final_dir));
  return io::FsyncDir(options_.dir);
}

Status DurabilityManager::ReadSnapshotMeta(uint64_t epoch,
                                           SnapshotMeta* out) {
  std::vector<uint8_t> bytes;
  Status st = ReadFileBytes(SnapshotDir(epoch) + "/meta.bin", &bytes);
  if (!st.ok()) return st;
  return DecodeMeta(bytes, out);
}

Status DurabilityManager::ReadPartitionFile(uint64_t epoch,
                                            const PartitionMeta& pm,
                                            std::vector<uint8_t>* out) {
  std::string path =
      SnapshotDir(epoch) + "/" + PartFileName(pm.object, pm.aeu);
  std::vector<uint8_t> bytes;
  Status st = ReadFileBytes(path, &bytes);
  if (!st.ok()) return st;
  if (bytes.size() < 16) return Status::IoError(path + " truncated");
  uint32_t magic = 0;
  uint32_t crc = 0;
  uint64_t payload_bytes = 0;
  std::memcpy(&magic, bytes.data(), 4);
  std::memcpy(&crc, bytes.data() + 4, 4);
  std::memcpy(&payload_bytes, bytes.data() + 8, 8);
  if (magic != kPartMagic || payload_bytes != bytes.size() - 16 ||
      payload_bytes != pm.bytes) {
    return Status::IoError(path + " inconsistent with snapshot meta");
  }
  if (crc != Crc32(bytes.data() + 16, bytes.size() - 16)) {
    return Status::IoError(path + " CRC mismatch");
  }
  out->assign(bytes.begin() + 16, bytes.end());
  return Status::Ok();
}

void DurabilityManager::RemoveOldSnapshots(uint64_t keep_epoch) {
  std::error_code ec;
  std::string keep = "snap-" + std::to_string(keep_epoch);
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) != 0 || name == keep) continue;
    fs::remove_all(entry.path(), ec);  // best effort
  }
}

// ---------------------------------------------------------------------------
// Scrubbing (DESIGN.md §15)
// ---------------------------------------------------------------------------

std::vector<uint64_t> DurabilityManager::ListSnapshotEpochs() const {
  std::vector<uint64_t> epochs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    std::string name = entry.path().filename().string();
    // Only fully-published directories: "snap-<digits>", no ".tmp" suffix.
    if (name.rfind("snap-", 0) != 0) continue;
    std::string digits = name.substr(5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    epochs.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Status DurabilityManager::VerifySnapshot(uint64_t epoch,
                                         uint64_t* files_checked,
                                         uint64_t* corrupt_files) {
  *files_checked = 0;
  *corrupt_files = 0;
  Status first_bad = Status::Ok();
  SnapshotMeta meta;
  ++*files_checked;
  Status st = ReadSnapshotMeta(epoch, &meta);
  if (!st.ok()) {
    // Without a readable meta.bin there is no directory of partition files
    // to check against; the whole snapshot is unusable.
    ++*corrupt_files;
    return st;
  }
  std::vector<uint8_t> scratch;
  for (const PartitionMeta& pm : meta.partitions) {
    ++*files_checked;
    st = ReadPartitionFile(epoch, pm, &scratch);
    if (!st.ok()) {
      ++*corrupt_files;
      if (first_bad.ok()) first_bad = std::move(st);
    }
  }
  return first_bad;
}

Status DurabilityManager::QuarantineSnapshot(uint64_t epoch) {
  std::string from = SnapshotDir(epoch);
  std::string to =
      options_.dir + "/quarantine-snap-" + std::to_string(epoch);
  std::error_code ec;
  fs::remove_all(to, ec);  // stale quarantine of the same epoch
  ERIS_RETURN_NOT_OK(io::Rename(from, to));
  return io::FsyncDir(options_.dir);
}

// ---------------------------------------------------------------------------
// WALs
// ---------------------------------------------------------------------------

std::string DurabilityManager::WalPath(uint32_t aeu) const {
  return options_.dir + "/wal-" + std::to_string(aeu) + ".log";
}

Status DurabilityManager::OpenWal(uint32_t aeu, uint64_t next_lsn,
                                  uint64_t valid_end) {
  return wals_[aeu]->Open(WalPath(aeu), options_, next_lsn, valid_end);
}

}  // namespace eris::durability
