// Error-returning I/O shim for the durability tier (DESIGN.md §15).
//
// Every syscall the WAL and snapshot paths make goes through these wrappers
// instead of calling open/write/fsync/rename/read directly. Each wrapper:
//
//   * returns a typed Status carrying strerror(errno) detail instead of
//     aborting (the pre-§15 code ERIS_CHECKed most of these), and
//   * is wired into the fault-injection layer (fi::Point::kIo*) so tests can
//     inject EIO, ENOSPC, short writes, fsync failure, and read-side bit
//     flips at every durability I/O boundary with independent probabilities.
//
// WriteFully transparently resumes after short writes (injected or real);
// everything else surfaces the first error to the caller, which decides the
// policy (fail-stop seal for the WAL, degrade for snapshots — see engine.cc).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace eris::durability::io {

/// open(2). ENOENT maps to Status::NotFound so callers can distinguish
/// "no file yet" (fine on first boot) from real I/O errors.
Status Open(const std::string& path, int flags, mode_t mode, int* fd);

/// write(2) until every byte of `data` is on the descriptor, resuming after
/// short writes and EINTR. `what` names the file for error messages.
Status WriteFully(int fd, std::span<const uint8_t> data,
                  const std::string& what);

/// fsync(2). A failure here must be treated as fail-stop by WAL callers:
/// after a failed fsync the kernel may have dropped the dirty pages, so
/// retrying and assuming durability is unsound (the "fsyncgate" semantics).
Status Fsync(int fd, const std::string& what);

/// fsync(2) on a directory, for durable renames/creates.
Status FsyncDir(const std::string& path);

/// rename(2).
Status Rename(const std::string& from, const std::string& to);

/// ftruncate(2).
Status Truncate(int fd, uint64_t size, const std::string& what);

/// Read the whole file into `out`. ENOENT maps to Status::NotFound.
/// kIoReadFlip corrupts one byte of a successful read so the CRC layers
/// above (frame CRCs, partition CRCs, meta CRCs) must catch it.
Status ReadAll(const std::string& path, std::vector<uint8_t>* out);

}  // namespace eris::durability::io
