// Durability directory layout, snapshot files and the CURRENT manifest.
//
// Layout under DurabilityOptions::dir:
//   wal-<aeu>.log      per-AEU write-ahead log (see wal.h)
//   snap-<epoch>/      one consistent engine snapshot
//     meta.bin         CRC-checked snapshot metadata (schema, per-AEU WAL
//                      watermarks, partition directory)
//     part-<o>-<a>.bin CRC-framed Partition::Flatten() stream of object o's
//                      partition on AEU a
//   CURRENT            CRC-checked pointer to the live snapshot epoch
//
// Snapshot atomicity: files are written into snap-<epoch>.tmp, fsynced,
// and the directory is renamed into place before CURRENT is swapped (also
// via tmp + rename). A crash at any boundary leaves either the old or the
// new snapshot fully intact — never a half-visible one. The fault points
// kSnapshotWrite/kSnapshotFsync/kSnapshotRename/kCurrentWrite sit at every
// write/fsync/rename so the recovery test matrix can kill the process at
// each boundary.
//
// The manager owns primitives (files, manifest, WAL handles); the Engine
// drives the flatten → write and read → rebuild → replay sequences
// (engine.cc, DESIGN.md §14).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "durability/wal.h"
#include "storage/types.h"

namespace eris::durability {

/// Schema fingerprint of one data object (recovery refuses to restore a
/// snapshot into a differently-shaped engine).
struct ObjectMeta {
  uint32_t container = 0;     ///< storage::ContainerKind
  uint32_t partitioning = 0;  ///< storage::PartitioningKind
};

/// Directory entry of one flattened partition.
struct PartitionMeta {
  uint32_t object = 0;
  uint32_t aeu = 0;
  storage::KeyRange range;
  uint64_t bytes = 0;  ///< flatten-stream payload bytes
};

struct SnapshotMeta {
  uint64_t epoch = 0;
  uint32_t num_aeus = 0;
  std::vector<ObjectMeta> objects;
  /// Per AEU: highest LSN durable when the snapshot was taken. Replay
  /// skips records at or below it (appends are not idempotent).
  std::vector<uint64_t> wal_watermark;
  /// Per AEU: the LSN the writer continues from (monotonic across
  /// rotations).
  std::vector<uint64_t> wal_next_lsn;
  std::vector<PartitionMeta> partitions;
};

/// \brief Owns the durability directory: WAL handles, snapshot files and
/// the CURRENT manifest.
class DurabilityManager {
 public:
  DurabilityManager(DurabilityOptions options, uint32_t num_aeus);

  const DurabilityOptions& options() const { return options_; }

  /// Creates the directory if missing.
  Status EnsureDir();

  // --- manifest ---------------------------------------------------------
  /// Epoch of the live snapshot; 0 (and OK) when none exists yet.
  Status ReadCurrentEpoch(uint64_t* epoch);
  /// Atomically points CURRENT at `epoch` (tmp + fsync + rename).
  Status WriteCurrent(uint64_t epoch);

  // --- snapshots --------------------------------------------------------
  std::string SnapshotDir(uint64_t epoch) const;

  /// Writes a complete snapshot: every meta.partitions[i] gets the bytes
  /// `flatten(i)` returns, then meta.bin, all fsynced in a tmp directory
  /// that is renamed into place. Does NOT update CURRENT.
  Status WriteSnapshot(
      const SnapshotMeta& meta,
      const std::function<std::vector<uint8_t>(size_t part_index)>& flatten);

  Status ReadSnapshotMeta(uint64_t epoch, SnapshotMeta* out);
  /// Reads + CRC-checks one flattened partition stream.
  Status ReadPartitionFile(uint64_t epoch, const PartitionMeta& pm,
                           std::vector<uint8_t>* out);

  /// Best-effort removal of snapshots other than `keep_epoch` and of stale
  /// .tmp directories left by crashed snapshot attempts.
  void RemoveOldSnapshots(uint64_t keep_epoch);

  // --- scrubbing (DESIGN.md §15) ----------------------------------------
  /// Epochs of every fully-published snap-<e> directory, ascending.
  std::vector<uint64_t> ListSnapshotEpochs() const;

  /// CRC-verifies every file of snapshot `epoch` (meta.bin + each partition
  /// stream). Returns the first corruption as a non-OK status; counts every
  /// file checked and every corrupt one.
  Status VerifySnapshot(uint64_t epoch, uint64_t* files_checked,
                        uint64_t* corrupt_files);

  /// Moves snap-<epoch> aside as quarantine-snap-<epoch> so recovery can
  /// never pick it up (RemoveOldSnapshots ignores non-"snap-" names too).
  Status QuarantineSnapshot(uint64_t epoch);

  // --- WALs -------------------------------------------------------------
  std::string WalPath(uint32_t aeu) const;
  /// Opens AEU `aeu`'s log, truncating the torn tail recovery found.
  Status OpenWal(uint32_t aeu, uint64_t next_lsn, uint64_t valid_end);
  WalWriter* wal(uint32_t aeu) { return wals_[aeu].get(); }
  uint32_t num_aeus() const { return num_aeus_; }

 private:
  DurabilityOptions options_;
  uint32_t num_aeus_;
  std::vector<std::unique_ptr<WalWriter>> wals_;
};

}  // namespace eris::durability
