#include "query/pipeline.h"

#include "common/logging.h"

namespace eris::query {

using core::Engine;
using routing::AggregateSink;

PipelineRunner::PipelineRunner(Engine* engine)
    : engine_(engine), session_(engine->CreateSession()) {
  ERIS_CHECK(engine != nullptr);
}

ColumnGroup PipelineRunner::CreateColumnGroup(const std::string& base_name,
                                              size_t columns) {
  ColumnGroup group;
  group.reserve(columns);
  for (size_t c = 0; c < columns; ++c) {
    group.push_back(
        engine_->CreateColumn(base_name + "." + std::to_string(c)));
  }
  return group;
}

void PipelineRunner::AppendRows(
    const ColumnGroup& group,
    std::span<const std::span<const storage::Value>> columns,
    size_t chunk_rows) {
  ERIS_CHECK(columns.size() == group.size());
  if (group.empty() || columns[0].empty()) return;
  const size_t rows = columns[0].size();
  for (const auto& col : columns) {
    ERIS_CHECK(col.size() == rows) << "ragged column group load";
  }

  AggregateSink& sink = session_->sink();
  sink.Reset();
  size_t cmds = 0;
  const size_t num_aeus = engine_->num_aeus();
  for (size_t off = 0; off < rows; off += chunk_rows) {
    const size_t n = std::min(chunk_rows, rows - off);
    // Every member's chunk goes to the same AEU: the receiving partition
    // appends them at identical tuple ids (per-object FIFO delivery), which
    // is the row alignment the fused pipeline's selection vectors need.
    const routing::AeuId target =
        static_cast<routing::AeuId>(next_chunk_++ % num_aeus);
    for (size_t c = 0; c < group.size(); ++c) {
      cmds += session_->endpoint().SendAppendTo(
          target, group[c], columns[c].subspan(off, n), &sink);
    }
  }
  session_->Wait(cmds);
}

PipelineResult PipelineRunner::Run(const PipelineQuery& query, bool fused) {
  routing::PipelineParams params;
  params.snapshot_ts = engine_->oracle().ReadTs();
  params.filter_object = query.filter_column;
  params.lo = query.filter.lo;
  params.hi = query.filter.hi;
  params.filter2_object = query.filter2_column == PipelineQuery::kNoColumn
                              ? routing::kNoPipelineColumn
                              : query.filter2_column;
  params.lo2 = query.filter2.lo;
  params.hi2 = query.filter2.hi;
  params.agg_object = query.agg_column;
  params.flags = fused ? routing::kPipelineFused : 0;

  AggregateSink& sink = session_->sink();
  sink.Reset();
  size_t cmds = session_->endpoint().SendPipeline(params, &sink);
  session_->Wait(cmds);

  PipelineResult result;
  result.rows = sink.hits();
  result.sum = sink.sum();
  return result;
}

}  // namespace eris::query
