#include "query/join.h"

#include "common/logging.h"

namespace eris::query {

using core::Engine;
using routing::AggregateSink;

namespace {
/// Join ids tag the per-AEU stage buffers; 0 is reserved (the merged-ring
/// sentinel), so the counter starts at 1.
std::atomic<uint64_t> g_next_join_id{1};
}  // namespace

JoinRunner::JoinRunner(Engine* engine)
    : engine_(engine), session_(engine->CreateSession()) {
  ERIS_CHECK(engine != nullptr);
}

MergeJoinResult JoinRunner::RunPhases(storage::ObjectId r, storage::ObjectId s,
                                      routing::JoinStrategy strategy) {
  ERIS_CHECK(engine_->object(r).partitioning ==
             storage::PartitioningKind::kRange)
      << "join build side must be range partitioned";

  JoinSink join_sink;
  routing::MergeJoinParams params;
  params.join_id = g_next_join_id.fetch_add(1, std::memory_order_relaxed);
  params.r_object = r;
  params.s_object = s;
  params.strategy = strategy;
  params.result_sink = &join_sink;

  AggregateSink& sink = session_->sink();
  sink.Reset();

  // Phase 1 — scatter: S owners sort local runs and stage/exchange entries
  // (MPSM), or R owners route their keys as probes (shared hash).
  size_t cmds = session_->endpoint().SendJoinPhase(
      routing::CommandType::kJoinScatter, params, &sink);
  session_->Wait(cmds);
  uint64_t scanned = sink.hits();
  // Every boundary-exchange (or probe) command is delivered and buffered
  // before the next phase starts.
  engine_->Quiesce();

  if (strategy == routing::JoinStrategy::kMpsm) {
    // Phase 2 — merge: every AEU consumes its stage buffer against its
    // local sorted R run; rebalance strays drain through routed lookups,
    // which the closing Quiesce resolves.
    sink.Reset();
    cmds = session_->endpoint().SendJoinPhase(routing::CommandType::kJoinMerge,
                                              params, &sink);
    session_->Wait(cmds);
    engine_->Quiesce();
  }

  MergeJoinResult result;
  result.matches = join_sink.matches();
  result.key_sum = join_sink.key_sum();
  result.scanned_rows = scanned;
  return result;
}

MergeJoinResult JoinRunner::MergeJoin(storage::ObjectId r,
                                      storage::ObjectId s) {
  ERIS_CHECK(engine_->object(s).partitioning ==
             storage::PartitioningKind::kRange)
      << "MPSM probe side must be range partitioned";
  return RunPhases(r, s, routing::JoinStrategy::kMpsm);
}

MergeJoinResult JoinRunner::SharedHashJoin(storage::ObjectId r,
                                           storage::ObjectId s_hashed) {
  return RunPhases(r, s_hashed, routing::JoinStrategy::kSharedHash);
}

}  // namespace eris::query
