// NUMA-aware massively-parallel sort-merge join (DESIGN.md §13).
//
// MPSM-style (Albutiu et al., "Massively parallel sort-merge joins in main
// memory multi-core database systems"): both join sides are range-
// partitioned keyed objects. The client coordinates two multicast phases:
//
//  1. kJoinScatter — every S owner sorts its local run in place, stages the
//     entries whose keys fall into its *own* R range locally, and routes
//     only the boundary-straddling remainder (kJoinStage) to the R owners.
//  2. kJoinMerge — every AEU sorts its staged run and merges it linearly
//     against its local sorted R run. Entries whose ownership moved under a
//     concurrent rebalance are resolved through the routed-lookup path.
//
// Because partitions of R and S cover the same key ranges, the bulk of the
// join never crosses a NUMA link; the sim cost model's TotalLinkBytes
// exposes exactly the boundary-exchange traffic. The shared-hash baseline
// (SharedHashJoin) instead routes *every* R key as a lookup into a
// hash-partitioned S — uniform all-to-all probe traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/engine.h"

namespace eris::query {

struct MergeJoinResult {
  uint64_t matches = 0;       ///< keys present on both sides
  uint64_t key_sum = 0;       ///< sum of the matched join keys
  uint64_t scanned_rows = 0;  ///< probe-side rows scanned in the scatter
};

/// Join sink: merge-resolved and lookup-resolved matches must report the
/// same quantity, so lookups sum the *keys* of found probes (not the
/// values AggregateSink would sum) — identical to the merge path's key_sum.
class JoinSink : public routing::ResultSink {
 public:
  void OnLookupBatch(std::span<const storage::Key> keys,
                     std::span<const storage::Value> values,
                     std::span<const bool> found) override {
    (void)values;
    uint64_t m = 0;
    uint64_t s = 0;
    for (size_t i = 0; i < found.size(); ++i) {
      if (found[i]) {
        ++m;
        s += keys[i];
      }
    }
    matches_.fetch_add(m, std::memory_order_relaxed);
    key_sum_.fetch_add(s, std::memory_order_relaxed);
  }
  void OnScanPartial(uint64_t rows, uint64_t sum) override {
    matches_.fetch_add(rows, std::memory_order_relaxed);
    key_sum_.fetch_add(sum, std::memory_order_relaxed);
  }
  void OnCommandComplete(uint64_t units) override {
    completed_.fetch_add(units, std::memory_order_release);
  }

  uint64_t matches() const { return matches_.load(std::memory_order_relaxed); }
  uint64_t key_sum() const { return key_sum_.load(std::memory_order_relaxed); }
  uint64_t completed() const {
    return completed_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<uint64_t> matches_{0};
  std::atomic<uint64_t> key_sum_{0};
  std::atomic<uint64_t> completed_{0};
};

/// \brief Executes joins between two keyed objects of one engine.
///
/// Not thread-safe (owns a session); create one runner per client thread.
class JoinRunner {
 public:
  explicit JoinRunner(core::Engine* engine);

  /// MPSM sort-merge join: `r` and `s` must be range-partitioned keyed
  /// objects. Returns the equi-join match count and key sum.
  MergeJoinResult MergeJoin(storage::ObjectId r, storage::ObjectId s);

  /// Shared-hash baseline: every local R key probes the hash-partitioned
  /// keyed object `s_hashed` via routed lookups. Same result semantics.
  MergeJoinResult SharedHashJoin(storage::ObjectId r,
                                 storage::ObjectId s_hashed);

  core::Engine::Session& session() { return *session_; }

 private:
  MergeJoinResult RunPhases(storage::ObjectId r, storage::ObjectId s,
                            routing::JoinStrategy strategy);

  core::Engine* engine_;
  std::unique_ptr<core::Engine::Session> session_;
};

}  // namespace eris::query
