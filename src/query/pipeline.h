// Vectorized multi-column query pipelines (DESIGN.md §13).
//
// A pipeline runs filter → [filter] → aggregate over a *column group*: a
// set of co-partitioned columns loaded so that row i of every member lives
// on the same AEU at the same tuple id. The whole pipeline executes as ONE
// fused data command per AEU (kPipeline): each owner streams its segments
// once, applies zone-map pruning before the filter kernel, and carries a
// selection vector of surviving positions between the operators instead of
// materializing intermediates. The operator-at-a-time ablation (fused =
// false) runs the same plan as one full pass per operator with a
// materialized index vector between them — the cost the fusion removes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/engine.h"
#include "query/query.h"

namespace eris::query {

/// A loaded column group: member object ids in declaration order.
using ColumnGroup = std::vector<storage::ObjectId>;

/// One fused filter→[filter]→aggregate plan over a column group.
struct PipelineQuery {
  storage::ObjectId filter_column = 0;  ///< driving filter (streamed)
  Filter filter;
  /// Optional refining filter; kNoColumn disables it.
  static constexpr storage::ObjectId kNoColumn = ~storage::ObjectId{0};
  storage::ObjectId filter2_column = kNoColumn;
  Filter filter2;
  storage::ObjectId agg_column = 0;  ///< SUM target (gathered)
};

struct PipelineResult {
  uint64_t rows = 0;  ///< rows surviving all filters
  uint64_t sum = 0;   ///< sum of agg_column over the survivors
};

/// \brief Creates, loads and queries column groups.
///
/// Not thread-safe (owns a session); create one runner per client thread.
/// Loading must stay single-writer per group — concurrent AppendRows calls
/// from two runners would interleave chunks and break row alignment.
class PipelineRunner {
 public:
  explicit PipelineRunner(core::Engine* engine);

  /// Creates `columns` co-partitioned columns named `<base>.0 .. <base>.n-1`.
  ColumnGroup CreateColumnGroup(const std::string& base_name, size_t columns);

  /// Appends `rows` rows to the group; `columns[c]` holds member c's values
  /// (all spans the same length). Rows are chunked and every member's chunk
  /// is routed to the *same* AEU (round-robin over AEUs), so members stay
  /// row-aligned: the property the fused pipeline's positional selection
  /// vectors rely on.
  void AppendRows(const ColumnGroup& group,
                  std::span<const std::span<const storage::Value>> columns,
                  size_t chunk_rows = 4096);

  /// Executes the pipeline; fused = false runs the operator-at-a-time
  /// baseline (same result, one pass per operator, no zone pruning).
  PipelineResult Run(const PipelineQuery& query, bool fused = true);

  core::Engine::Session& session() { return *session_; }

 private:
  core::Engine* engine_;
  std::unique_ptr<core::Engine::Session> session_;
  uint64_t next_chunk_ = 0;  ///< round-robin cursor over AEUs
};

}  // namespace eris::query
