// Query processing on top of the ERIS storage primitives.
//
// The paper closes with: "Since ERIS only provides storage operation
// primitives, we plan to implement a query processing framework on top of
// ERIS" — and motivates its architecture with exactly the two properties a
// distributed-style query layer needs: efficient routing of generated data
// commands between AEUs and NUMA-local materialization of large
// intermediate results. This module implements that layer for the
// workloads the paper's introduction names:
//
//  * filtered aggregation over a column (rows/sum/min/max/avg),
//  * selection with materialization — the matching values of a scan are
//    routed as appends into a fresh column whose partitions live in the
//    *receiving* AEUs' local memory (intermediate results spread over the
//    machine, never concentrated on the coordinator),
//  * index-nested-loop join — every AEU scans its probe-column partition
//    and routes the filtered values as lookup batches into an index; the
//    AEUs thus generate data commands for one another during query
//    processing, the scenario the routing layer is built for.
//
// All operators run through the public Session/Endpoint API; the engine
// stays the only owner of data.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/engine.h"

namespace eris::query {

/// Inclusive value filter.
struct Filter {
  storage::Value lo = 0;
  storage::Value hi = ~storage::Value{0};
};

/// Aggregates of a filtered column scan.
struct AggregateResult {
  uint64_t rows = 0;
  uint64_t sum = 0;
  storage::Value min = ~storage::Value{0};
  storage::Value max = 0;
  double avg = 0;
};

/// Result of a materializing selection.
struct MaterializeResult {
  storage::ObjectId object = 0;  ///< the new column holding the matches
  uint64_t rows = 0;             ///< matches materialized
};

/// Result of an index-nested-loop join.
struct JoinResult {
  uint64_t probes = 0;      ///< filtered probe values routed as lookups
  uint64_t matches = 0;     ///< probes that found a key in the index
  uint64_t matched_sum = 0; ///< sum of the matched index values
};

/// \brief Executes queries against one engine.
///
/// Not thread-safe (owns a session); create one runner per client thread.
class QueryRunner {
 public:
  explicit QueryRunner(core::Engine* engine);

  /// SELECT count(*), sum(v), min(v), max(v) FROM column WHERE v BETWEEN
  /// filter.lo AND filter.hi — one multicast scan, aggregated per
  /// partition, merged at the sink.
  AggregateResult Aggregate(storage::ObjectId column, Filter filter = {});

  /// As Aggregate, but overload-aware: the scan goes through admission
  /// control, carries `timeout_ns` as its command deadline, and returns a
  /// typed error (DeadlineExceeded, Unavailable, ResourceExhausted,
  /// Internal) instead of blocking past the deadline. timeout_ns = 0 falls
  /// back to the engine's default deadline.
  Result<AggregateResult> AggregateWithin(storage::ObjectId column,
                                          Filter filter, uint64_t timeout_ns);

  /// SELECT v INTO <name> FROM column WHERE v BETWEEN lo AND hi — every
  /// owner filters its partition and routes the matches as appends into a
  /// newly created column (NUMA-local intermediate materialization).
  Result<MaterializeResult> MaterializeFilter(storage::ObjectId column,
                                              Filter filter,
                                              std::string result_name);

  /// SELECT count(*), sum(idx.value) FROM probe JOIN idx ON idx.key =
  /// probe.v WHERE probe.v BETWEEN lo AND hi — AEUs scan their probe
  /// partitions and route lookup batches into the index.
  JoinResult IndexJoin(storage::ObjectId probe_column, Filter probe_filter,
                       storage::ObjectId index);

  core::Engine::Session& session() { return *session_; }

 private:
  core::Engine* engine_;
  std::unique_ptr<core::Engine::Session> session_;
};

}  // namespace eris::query
