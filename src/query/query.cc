#include "query/query.h"

namespace eris::query {

using core::Engine;
using routing::AggregateSink;

QueryRunner::QueryRunner(Engine* engine)
    : engine_(engine), session_(engine->CreateSession()) {
  ERIS_CHECK(engine != nullptr);
}

AggregateResult QueryRunner::Aggregate(storage::ObjectId column,
                                       Filter filter) {
  Engine::Session::ColumnStats stats =
      session_->ScanStats(column, filter.lo, filter.hi);
  AggregateResult result;
  result.rows = stats.rows;
  result.sum = stats.sum;
  result.min = stats.min;
  result.max = stats.max;
  result.avg = stats.avg;
  return result;
}

Result<AggregateResult> QueryRunner::AggregateWithin(storage::ObjectId column,
                                                     Filter filter,
                                                     uint64_t timeout_ns) {
  uint64_t saved = session_->op_timeout_ns();
  session_->set_op_timeout_ns(timeout_ns);
  Engine::Session::ColumnStats stats;
  Status status =
      session_->SubmitScanStats(column, filter.lo, filter.hi, &stats);
  session_->set_op_timeout_ns(saved);
  if (!status.ok()) return status;
  AggregateResult result;
  result.rows = stats.rows;
  result.sum = stats.sum;
  result.min = stats.min;
  result.max = stats.max;
  result.avg = stats.avg;
  return result;
}

Result<MaterializeResult> QueryRunner::MaterializeFilter(
    storage::ObjectId column, Filter filter, std::string result_name) {
  if (engine_->object(column).container != storage::ContainerKind::kColumn) {
    return Status::InvalidArgument("MaterializeFilter requires a column");
  }
  storage::ObjectId dest = engine_->CreateColumn(std::move(result_name));

  routing::MaterializeParams params;
  params.scan.lo = filter.lo;
  params.scan.hi = filter.hi;
  params.scan.snapshot_ts = engine_->oracle().ReadTs();
  params.dest_object = dest;

  AggregateSink& sink = session_->sink();
  sink.Reset();
  size_t scan_cmds =
      session_->endpoint().SendScanMaterialize(column, params, &sink);
  // Phase 1: every owner finished scanning and routed its matches. The
  // sink's hit counter then holds the total matched rows; the routed
  // appends complete with one unit per append command, so phase 2 waits
  // until the destination physically holds every match.
  session_->Wait(scan_cmds);
  uint64_t rows = sink.hits();
  engine_->Quiesce();

  MaterializeResult result;
  result.object = dest;
  result.rows = rows;
  return result;
}

JoinResult QueryRunner::IndexJoin(storage::ObjectId probe_column,
                                  Filter probe_filter,
                                  storage::ObjectId index) {
  ERIS_CHECK(engine_->object(index).partitioning ==
             storage::PartitioningKind::kRange)
      << "join target must be a keyed object";

  // Two sinks: the probe sink sees the scan completions and the number of
  // issued lookups; the lookup sink collects the join matches.
  AggregateSink lookup_sink;
  routing::JoinProbeParams params;
  params.filter.lo = probe_filter.lo;
  params.filter.hi = probe_filter.hi;
  params.filter.snapshot_ts = engine_->oracle().ReadTs();
  params.index_object = index;
  params.lookup_sink = &lookup_sink;

  AggregateSink& probe_sink = session_->sink();
  probe_sink.Reset();
  size_t scan_cmds =
      session_->endpoint().SendJoinProbe(probe_column, params, &probe_sink);
  session_->Wait(scan_cmds);
  uint64_t probes = probe_sink.hits();

  // The AEUs routed `probes` lookup elements; each completes exactly once.
  engine_->DriveUntil([&] { return lookup_sink.completed() >= probes; });

  JoinResult result;
  result.probes = probes;
  result.matches = lookup_sink.hits();
  result.matched_sum = lookup_sink.sum();
  return result;
}

}  // namespace eris::query
