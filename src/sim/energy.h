// Energy model over the resource-usage accounting (paper future work).
//
// The paper's conclusions name energy awareness as the next research
// direction for the data-oriented architecture: "AEUs always run at full
// speed and are thus consuming a high amount of energy ... we want to
// investigate the impact of frequency scaling, different scheduling
// policies, foreign memory accesses, and load balancing on the energy
// consumption." This model quantifies exactly those levers on top of the
// deterministic resource accounting: per-core busy/idle split over the
// run's critical time, DRAM energy per byte, interconnect energy per byte
// (foreign accesses), and an optional idle-DVFS mode that lowers the idle
// floor — which makes load balancing an energy feature: a balanced run
// shortens the critical path and converts idle-burn into completion.
#pragma once

#include "sim/resource_usage.h"

namespace eris::sim {

struct EnergyParams {
  /// Power draw of one core while executing (full speed, the AEU default).
  double core_busy_watts = 6.0;
  /// Idle power of a core at nominal frequency (AEU spinning on its loop).
  double core_idle_watts = 2.0;
  /// Idle power with frequency scaling / idle states enabled.
  double core_idle_dvfs_watts = 0.6;
  /// DRAM energy per byte moved through a memory controller.
  double dram_nj_per_byte = 0.47;
  /// Interconnect energy per byte crossing a link (foreign accesses).
  double link_nj_per_byte = 1.1;
  /// Static (uncore, board) power per NUMA node.
  double node_static_watts = 20.0;
};

/// Energy breakdown of one measured window (joules).
struct EnergyBreakdown {
  double busy = 0;     ///< cores, active cycles
  double idle = 0;     ///< cores, idle cycles within the critical time
  double dram = 0;     ///< memory-controller traffic
  double link = 0;     ///< interconnect traffic
  double static_ = 0;  ///< per-node static power over the window

  double total() const { return busy + idle + dram + link + static_; }
};

/// \brief Computes the energy of the workload window captured in `usage`.
class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams params = {}) : params_(params) {}

  /// Breakdown over usage's critical time. `dvfs_idle` selects the
  /// frequency-scaled idle floor (the paper's proposed mitigation for
  /// always-full-speed AEUs).
  EnergyBreakdown Compute(const ResourceUsage& usage,
                          bool dvfs_idle = false) const {
    EnergyBreakdown e;
    const double window_s = usage.CriticalTimeNs() / 1e9;
    const uint32_t workers = usage.num_workers();
    const double idle_watts =
        dvfs_idle ? params_.core_idle_dvfs_watts : params_.core_idle_watts;
    for (uint32_t w = 0; w < workers; ++w) {
      double busy_s = usage.WorkerComputeNs(w) / 1e9;
      busy_s = std::min(busy_s, window_s);
      e.busy += busy_s * params_.core_busy_watts;
      e.idle += (window_s - busy_s) * idle_watts;
    }
    e.dram = static_cast<double>(usage.TotalMemCtrlBytes()) *
             params_.dram_nj_per_byte * 1e-9;
    e.link = static_cast<double>(usage.TotalLinkBytes()) *
             params_.link_nj_per_byte * 1e-9;
    e.static_ = window_s * params_.node_static_watts *
                usage.topology().num_nodes();
    return e;
  }

  const EnergyParams& params() const { return params_; }

 private:
  EnergyParams params_;
};

}  // namespace eris::sim
