#include "sim/resource_usage.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace eris::sim {

ResourceUsage::ResourceUsage(const numa::Topology& topology,
                             uint32_t num_workers)
    : topology_(&topology),
      compute_ns_(num_workers),
      link_bytes_(topology.num_links()),
      mc_bytes_(topology.num_nodes()) {
  Reset();
}

void ResourceUsage::AddComputeNs(uint32_t worker, double ns) {
  ERIS_DCHECK(worker < compute_ns_.size());
  // Workers own their slot; a relaxed read-modify-write is sufficient.
  auto& slot = compute_ns_[worker].v;
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + ns,
                                     std::memory_order_relaxed)) {
  }
}

void ResourceUsage::AddMemoryTraffic(numa::NodeId src, numa::NodeId dst,
                                     uint64_t bytes) {
  mc_bytes_[dst].fetch_add(bytes, std::memory_order_relaxed);
  AddLinkTraffic(src, dst, bytes);
}

void ResourceUsage::AddLinkTraffic(numa::NodeId src, numa::NodeId dst,
                                   uint64_t bytes) {
  // Spread over the equal-hop routes, modeling adaptive interconnect
  // routing.
  const auto& routes = topology_->Routes(src, dst);
  uint64_t share = bytes / routes.size();
  for (const auto& route : routes) {
    for (numa::LinkId id : route)
      link_bytes_[id].fetch_add(share, std::memory_order_relaxed);
  }
}

void ResourceUsage::AddRoutedBytes(numa::NodeId src, numa::NodeId dst,
                                   uint64_t bytes) {
  // The flush memcpy writes into the target's incoming buffer: the
  // destination memory controller and the route links carry the bytes (the
  // source side reads freshly written outgoing buffers from its caches).
  mc_bytes_[dst].fetch_add(bytes, std::memory_order_relaxed);
  AddLinkTraffic(src, dst, bytes);
}

void ResourceUsage::Reset() {
  for (auto& c : compute_ns_) c.v.store(0.0, std::memory_order_relaxed);
  for (auto& b : link_bytes_) b.store(0, std::memory_order_relaxed);
  for (auto& b : mc_bytes_) b.store(0, std::memory_order_relaxed);
}

double ResourceUsage::WorkerComputeNs(uint32_t worker) const {
  return compute_ns_[worker].v.load(std::memory_order_relaxed);
}

double ResourceUsage::MaxWorkerComputeNs() const {
  double mx = 0;
  for (const auto& c : compute_ns_)
    mx = std::max(mx, c.v.load(std::memory_order_relaxed));
  return mx;
}

uint64_t ResourceUsage::LinkBytes(numa::LinkId link) const {
  return link_bytes_[link].load(std::memory_order_relaxed);
}

uint64_t ResourceUsage::MemCtrlBytes(numa::NodeId node) const {
  return mc_bytes_[node].load(std::memory_order_relaxed);
}

uint64_t ResourceUsage::TotalLinkBytes() const {
  uint64_t total = 0;
  for (const auto& b : link_bytes_) total += b.load(std::memory_order_relaxed);
  return total;
}

uint64_t ResourceUsage::TotalMemCtrlBytes() const {
  uint64_t total = 0;
  for (const auto& b : mc_bytes_) total += b.load(std::memory_order_relaxed);
  return total;
}

double ResourceUsage::LinkTimeNs() const {
  // Links are full duplex; byte counters are direction-less, so a link
  // moves up to 2x its per-direction bandwidth worth of counted bytes.
  constexpr double kDuplexFactor = 2.0;
  double mx = 0;
  for (numa::LinkId id = 0; id < link_bytes_.size(); ++id) {
    double gbps = topology_->link(id).bandwidth_gbps * kDuplexFactor;
    if (gbps <= 0) continue;
    double ns = static_cast<double>(LinkBytes(id)) / gbps;  // bytes/GBps = ns
    mx = std::max(mx, ns);
  }
  return mx;
}

double ResourceUsage::MemCtrlTimeNs() const {
  double mx = 0;
  for (numa::NodeId n = 0; n < topology_->num_nodes(); ++n) {
    double gbps = topology_->LocalBandwidthGbps(n);
    double ns = static_cast<double>(MemCtrlBytes(n)) / gbps;
    mx = std::max(mx, ns);
  }
  return mx;
}

double ResourceUsage::CriticalTimeNs() const {
  return std::max({MaxWorkerComputeNs(), LinkTimeNs(), MemCtrlTimeNs()});
}

std::string ResourceUsage::ToString() const {
  std::ostringstream os;
  os << "compute max " << MaxWorkerComputeNs() / 1e6 << " ms, link time "
     << LinkTimeNs() / 1e6 << " ms, mc time " << MemCtrlTimeNs() / 1e6
     << " ms; total link bytes " << TotalLinkBytes() << ", total mc bytes "
     << TotalMemCtrlBytes();
  return os.str();
}

}  // namespace eris::sim
