#include "sim/cache_sim.h"

#include <algorithm>

#include "common/bit_util.h"

namespace eris::sim {

const char* LineStateName(LineState s) {
  switch (s) {
    case LineState::kInvalid: return "I";
    case LineState::kShared: return "S";
    case LineState::kExclusive: return "E";
    case LineState::kModified: return "M";
    case LineState::kForward: return "F";
  }
  return "?";
}

CacheSim::CacheSim(uint32_t num_caches, CacheSimConfig config)
    : config_(config) {
  ERIS_CHECK_LE(num_caches, 64u) << "directory bitmask limited to 64 caches";
  ERIS_CHECK(IsPowerOfTwo(config.line_bytes));
  line_shift_ = Log2Floor(config.line_bytes);
  uint64_t lines = config.capacity_bytes / config.line_bytes;
  num_sets_ = static_cast<uint32_t>(
      std::max<uint64_t>(1, lines / config.associativity));
  caches_.resize(num_caches);
  stats_.resize(num_caches);
  for (auto& c : caches_)
    c.ways.assign(static_cast<size_t>(num_sets_) * config.associativity, {});
}

CacheSim::Way* CacheSim::FindWay(uint32_t cache, uint64_t line) {
  Cache& c = caches_[cache];
  size_t set = (line % num_sets_) * config_.associativity;
  for (uint32_t w = 0; w < config_.associativity; ++w) {
    Way& way = c.ways[set + w];
    if (way.state != LineState::kInvalid && way.tag == line) return &way;
  }
  return nullptr;
}

CacheSim::Way* CacheSim::VictimWay(uint32_t cache, uint64_t line) {
  Cache& c = caches_[cache];
  size_t set = (line % num_sets_) * config_.associativity;
  Way* victim = &c.ways[set];
  for (uint32_t w = 0; w < config_.associativity; ++w) {
    Way& way = c.ways[set + w];
    if (way.state == LineState::kInvalid) return &way;
    if (way.lru < victim->lru) victim = &way;
  }
  return victim;
}

void CacheSim::DropHolder(uint64_t line, uint32_t cache) {
  auto it = directory_.find(line);
  if (it == directory_.end()) return;
  it->second.holders &= ~(uint64_t{1} << cache);
  if (it->second.holders == 0) directory_.erase(it);
}

LineState CacheSim::StateIn(uint32_t cache, uint64_t line) {
  Way* way = FindWay(cache, line);
  return way ? way->state : LineState::kInvalid;
}

void CacheSim::SetState(uint32_t cache, uint64_t line, LineState state) {
  Way* way = FindWay(cache, line);
  if (way == nullptr) return;
  if (state == LineState::kInvalid) {
    way->state = LineState::kInvalid;
    DropHolder(line, cache);
  } else {
    way->state = state;
  }
}

AccessResult CacheSim::Access(uint32_t cache, uint64_t addr, bool write) {
  const uint64_t line = addr >> line_shift_;
  Cache& c = caches_[cache];
  CacheStats& st = stats_[cache];
  Way* way = FindWay(cache, line);
  AccessResult result;

  if (way != nullptr) {
    // ---- Hit ----
    result.hit = true;
    result.state_at_hit = way->state;
    st.hits_by_state[static_cast<int>(way->state)]++;
    way->lru = ++c.tick;
    if (write) {
      st.write_hits++;
      if (way->state == LineState::kShared ||
          way->state == LineState::kForward) {
        // Upgrade: invalidate every other holder.
        uint64_t holders = directory_[line].holders;
        for (uint32_t other = 0; other < caches_.size(); ++other) {
          if (other != cache && (holders & (uint64_t{1} << other))) {
            stats_[other].invalidations_received++;
            SetState(other, line, LineState::kInvalid);
          }
        }
        directory_[line].holders = uint64_t{1} << cache;
      }
      way->state = LineState::kModified;
    } else {
      st.read_hits++;
    }
    return result;
  }

  // ---- Miss ----
  result.hit = false;
  if (write) {
    st.write_misses++;
  } else {
    st.read_misses++;
  }

  uint64_t holders = 0;
  auto dir_it = directory_.find(line);
  if (dir_it != directory_.end()) holders = dir_it->second.holders;

  if (write) {
    // Read-for-ownership: invalidate all current holders.
    for (uint32_t other = 0; other < caches_.size(); ++other) {
      if (holders & (uint64_t{1} << other)) {
        if (StateIn(other, line) == LineState::kModified)
          stats_[other].writebacks++;
        stats_[other].invalidations_received++;
        SetState(other, line, LineState::kInvalid);
      }
    }
    holders = 0;
  } else if (holders != 0) {
    // Another cache supplies the data. Previous M writes back; previous
    // E/M/F holders downgrade to S; the requester becomes the new Forward.
    for (uint32_t other = 0; other < caches_.size(); ++other) {
      if (holders & (uint64_t{1} << other)) {
        LineState s = StateIn(other, line);
        if (s == LineState::kModified) stats_[other].writebacks++;
        if (s == LineState::kModified || s == LineState::kExclusive ||
            s == LineState::kForward) {
          SetState(other, line, LineState::kShared);
        }
      }
    }
  }

  // Install into this cache, evicting the LRU way if needed.
  Way* victim = VictimWay(cache, line);
  if (victim->state != LineState::kInvalid) {
    if (victim->state == LineState::kModified) st.writebacks++;
    DropHolder(victim->tag, cache);
  }
  victim->tag = line;
  victim->lru = ++c.tick;
  if (write) {
    victim->state = LineState::kModified;
  } else if (holders == 0) {
    victim->state = LineState::kExclusive;
  } else {
    victim->state = LineState::kForward;
  }
  directory_[line].holders = holders | (uint64_t{1} << cache);
  return result;
}

CacheStats CacheSim::TotalStats() const {
  CacheStats total;
  for (const auto& s : stats_) {
    total.read_hits += s.read_hits;
    total.read_misses += s.read_misses;
    total.write_hits += s.write_hits;
    total.write_misses += s.write_misses;
    for (int i = 0; i < 5; ++i) total.hits_by_state[i] += s.hits_by_state[i];
    total.invalidations_received += s.invalidations_received;
    total.writebacks += s.writebacks;
  }
  return total;
}

double CacheSim::HitFraction(std::initializer_list<LineState> states) const {
  CacheStats total = TotalStats();
  uint64_t hits = total.hits();
  if (hits == 0) return 0.0;
  uint64_t selected = 0;
  for (LineState s : states) selected += total.hits_by_state[static_cast<int>(s)];
  return static_cast<double>(selected) / static_cast<double>(hits);
}

void CacheSim::ResetStats() {
  for (auto& s : stats_) s = CacheStats{};
}

}  // namespace eris::sim
