// Analytic cost model for prefix-tree index operations.
//
// Converts a tree's shape into modeled per-operation costs under a given
// cache budget. The key mechanism (paper Sections 4.2.1/4.2.3): the upper
// tree levels are tiny and stay cache resident; lower levels miss to memory.
// ERIS partitions give every AEU a private subtree, so the aggregate cache
// of the machine holds the union of all partitions' upper levels — adding
// multiprocessors adds cache, which is what makes ERIS' lookup scaling
// superlinear. The shared index replicates the same hot upper levels into
// every cache (Shared/Forward lines), so its effective cache does not grow
// with the node count and it becomes memory bound earlier.
#pragma once

#include <cstdint>

#include "sim/cost_model.h"

namespace eris::sim {

/// Geometry of one prefix tree (or one partition's subtree).
struct TreeShape {
  uint32_t levels = 0;   ///< tree depth including the leaf level
  uint32_t fanout = 256; ///< children per interior node
  uint64_t keys = 0;     ///< entries stored
  uint64_t bytes = 0;    ///< total node memory
};

/// \brief Number of tree levels (from the root, fractional) that fit into
///        `cache_budget_bytes`.
///
/// Level d (root = 0) holds roughly bytes/fanout^(levels-1-d): node count
/// shrinks by the fanout per level upward. The returned value is clamped to
/// [0, levels] and the boundary level is covered fractionally.
double CachedLevels(const TreeShape& shape, double cache_budget_bytes);

/// \brief Modeled time for a batch of `count` point operations (lookup or
///        upsert) against a tree whose memory is homed at `home`.
///
/// Per operation: cached levels cost upper_hit_ns each; uncached levels are
/// independent reads overlapped with the batch MLP at the latency of
/// (src -> home). When `interleaved` is set, the uncached accesses pay the
/// average interleaved latency of `src` instead (the NUMA-agnostic shared
/// index), and `coherence_writes` adds the invalidation penalty per write
/// to lines replicated in other caches.
struct PointOpCost {
  double compute_ns = 0;       ///< time charged to the issuing worker
  uint64_t dram_bytes = 0;     ///< memory-controller traffic generated
  uint64_t remote_bytes = 0;   ///< portion of dram_bytes crossing links
};
PointOpCost BatchPointOpCost(const CostModel& model, numa::NodeId src,
                             numa::NodeId home, const TreeShape& shape,
                             double cache_budget_bytes, uint64_t count,
                             bool interleaved, bool is_write,
                             bool coherence_writes);

}  // namespace eris::sim
