// Deterministic memory-access cost model derived from a Topology.
//
// Converts storage-level access patterns (dependent pointer chases, batched
// independent reads, sequential streams) into modeled nanoseconds using the
// per-distance latency/bandwidth values the paper measured (Table 2). The
// model deliberately stays simple and explainable: every term corresponds to
// a mechanism the paper names (remote latency, link bandwidth, batching to
// hide latency, cache hits, coherence overhead on shared writes).
#pragma once

#include <cstdint>

#include "numa/topology.h"

namespace eris::sim {

struct CostModelParams {
  /// LLC hit service time.
  double llc_hit_ns = 18.0;
  /// Upper-cache (L1/L2) hit service time for very hot lines.
  double upper_hit_ns = 4.0;
  /// Memory-level parallelism achievable for *batched independent* reads —
  /// how many outstanding misses a core overlaps. Batching data commands
  /// (the AEU "group" stage) buys this overlap across operations, but each
  /// tree traversal is a dependent chain, so the effective overlap is well
  /// below the hardware's miss-queue depth.
  double batch_mlp = 4.0;
  /// Additional latency per write to a cache line shared with other caches
  /// (invalidation round). Models the atomic-instruction degradation of the
  /// NUMA-agnostic shared index.
  double coherence_write_penalty_ns = 120.0;
  /// Fixed CPU cost per executed data command (dispatch, callback).
  double command_cpu_ns = 14.0;
  /// CPU cost per routed data command element: partition-table lookup,
  /// outgoing-buffer append, incoming-buffer drain and dispatch.
  double routing_cpu_ns = 30.0;
  /// Cache line size used for traffic accounting.
  uint32_t line_bytes = 64;
  /// Local memcpy bandwidth (GB/s) for buffer-flush copies.
  double copy_gbps = 12.0;
};

/// \brief Analytic per-access costs on a given machine.
class CostModel {
 public:
  explicit CostModel(const numa::Topology& topology,
                     CostModelParams params = {});

  const numa::Topology& topology() const { return *topology_; }
  const CostModelParams& params() const { return params_; }

  /// One step of a dependent pointer chase: full latency, no overlap.
  double DependentReadNs(numa::NodeId src, numa::NodeId home) const {
    return topology_->LatencyNs(src, home);
  }

  /// `count` independent reads issued as a batch: latency divided by the
  /// achievable memory-level parallelism.
  double BatchedReadNs(numa::NodeId src, numa::NodeId home,
                       uint64_t count) const {
    return topology_->LatencyNs(src, home) * static_cast<double>(count) /
           params_.batch_mlp;
  }

  /// Streaming `bytes` sequentially from `home` into `src`: bandwidth-bound.
  double StreamNs(numa::NodeId src, numa::NodeId home, uint64_t bytes) const {
    return static_cast<double>(bytes) / topology_->BandwidthGbps(src, home);
  }

  /// Average dependent-read latency when lines are interleaved round-robin
  /// over all nodes (the numactl --interleave=all baseline).
  double InterleavedReadNs(numa::NodeId src) const {
    return interleaved_lat_[src];
  }

  /// Average streaming bandwidth (GB/s) from interleaved memory: harmonic
  /// mean over homes, since each stride alternates across homes.
  double InterleavedBandwidthGbps(numa::NodeId src) const {
    return interleaved_bw_[src];
  }

  double InterleavedStreamNs(numa::NodeId src, uint64_t bytes) const {
    return static_cast<double>(bytes) / interleaved_bw_[src];
  }

  /// Fixed cost of delivering one outgoing-buffer flush into a (typically
  /// remote) incoming buffer: the latch-free descriptor CAS plus the first
  /// line transfer — a round trip at remote latency. Small outgoing buffers
  /// pay this per command; large ones amortize it (the Figure 5 mechanism).
  double FlushOverheadNs(numa::NodeId src) const {
    return 2.0 * interleaved_lat_[src];
  }

 private:
  const numa::Topology* topology_;
  CostModelParams params_;
  std::vector<double> interleaved_lat_;
  std::vector<double> interleaved_bw_;
};

}  // namespace eris::sim
