#include "sim/cost_model.h"

namespace eris::sim {

CostModel::CostModel(const numa::Topology& topology, CostModelParams params)
    : topology_(&topology), params_(params) {
  const uint32_t n = topology.num_nodes();
  interleaved_lat_.resize(n);
  interleaved_bw_.resize(n);
  for (numa::NodeId src = 0; src < n; ++src) {
    double lat_sum = 0;
    double inv_bw_sum = 0;
    for (numa::NodeId home = 0; home < n; ++home) {
      lat_sum += topology.LatencyNs(src, home);
      inv_bw_sum += 1.0 / topology.BandwidthGbps(src, home);
    }
    interleaved_lat_[src] = lat_sum / n;
    interleaved_bw_[src] = static_cast<double>(n) / inv_bw_sum;
  }
}

}  // namespace eris::sim
