#include "sim/index_model.h"

#include <algorithm>
#include <cmath>

namespace eris::sim {

double CachedLevels(const TreeShape& shape, double cache_budget_bytes) {
  if (shape.levels == 0 || shape.bytes == 0) return 0.0;
  double budget = cache_budget_bytes;
  double cached = 0.0;
  for (uint32_t level = 0; level < shape.levels; ++level) {
    // Bytes at this level: the leaf level holds almost everything; each
    // level up shrinks by the fanout.
    double level_bytes =
        static_cast<double>(shape.bytes) /
        std::pow(static_cast<double>(shape.fanout),
                 static_cast<double>(shape.levels - 1 - level));
    if (level_bytes <= budget) {
      cached += 1.0;
      budget -= level_bytes;
    } else {
      cached += budget / level_bytes;
      break;
    }
  }
  return std::min<double>(cached, shape.levels);
}

PointOpCost BatchPointOpCost(const CostModel& model, numa::NodeId src,
                             numa::NodeId home, const TreeShape& shape,
                             double cache_budget_bytes, uint64_t count,
                             bool interleaved, bool is_write,
                             bool coherence_writes) {
  PointOpCost cost;
  if (count == 0 || shape.levels == 0) return cost;
  const CostModelParams& p = model.params();
  double cached = CachedLevels(shape, cache_budget_bytes);
  double uncached = static_cast<double>(shape.levels) - cached;
  double n = static_cast<double>(count);

  double hit_ns = cached * p.upper_hit_ns;
  double miss_lat = interleaved ? model.InterleavedReadNs(src)
                                : model.DependentReadNs(src, home);
  // Within one operation the level accesses are dependent (pointer chase),
  // but a batch of operations overlaps up to batch_mlp chases.
  double miss_ns = uncached * miss_lat / p.batch_mlp;
  double write_ns = 0;
  if (is_write) {
    // Dirtying the leaf line: store + eventual writeback.
    write_ns = 0.5 * miss_lat / p.batch_mlp;
    if (coherence_writes) {
      // Invalidation round for the leaf line plus contended upper levels.
      write_ns += p.coherence_write_penalty_ns;
    }
  }
  cost.compute_ns = n * (hit_ns + miss_ns + write_ns + p.command_cpu_ns);

  double miss_lines = n * uncached;
  if (is_write) miss_lines += 0.5 * n;  // writebacks of dirtied leaf lines
  cost.dram_bytes = static_cast<uint64_t>(miss_lines * p.line_bytes);
  if (interleaved) {
    // With round-robin line placement, (nodes-1)/nodes of misses are remote.
    uint32_t nodes = model.topology().num_nodes();
    cost.remote_bytes = static_cast<uint64_t>(
        static_cast<double>(cost.dram_bytes) *
        (nodes > 0 ? static_cast<double>(nodes - 1) / nodes : 0.0));
    if (is_write && coherence_writes) {
      // Ownership transfers of written lines add link traffic.
      cost.remote_bytes += static_cast<uint64_t>(n) * p.line_bytes;
    }
  } else if (src != home) {
    cost.remote_bytes = cost.dram_bytes;
  }
  return cost;
}

}  // namespace eris::sim
