// Directory-based MESIF last-level-cache simulator.
//
// Models one set-associative LLC per NUMA node plus a global directory that
// maintains MESIF coherence between them. Used to reproduce the paper's
// hardware-counter experiments: Figure 10 (L3 miss ratio of ERIS vs the
// shared index) and Figure 11 (cache-line state at hit: the shared index
// hits mostly Shared/Forward lines — the same data replicated in many
// caches — while ERIS hits Modified/Exclusive lines of its private
// partitions).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace eris::sim {

/// MESIF stable states.
enum class LineState : uint8_t {
  kInvalid = 0,
  kShared,
  kExclusive,
  kModified,
  kForward,
};

const char* LineStateName(LineState s);

/// Outcome of one cache access.
struct AccessResult {
  bool hit = false;
  LineState state_at_hit = LineState::kInvalid;  ///< state before the access
};

/// Per-cache counters.
struct CacheStats {
  uint64_t read_hits = 0;
  uint64_t read_misses = 0;
  uint64_t write_hits = 0;
  uint64_t write_misses = 0;
  /// Read+write hits broken down by the MESIF state the line was in.
  uint64_t hits_by_state[5] = {0, 0, 0, 0, 0};
  uint64_t invalidations_received = 0;
  uint64_t writebacks = 0;

  uint64_t accesses() const {
    return read_hits + read_misses + write_hits + write_misses;
  }
  uint64_t hits() const { return read_hits + write_hits; }
  uint64_t misses() const { return read_misses + write_misses; }
  double miss_ratio() const {
    uint64_t a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(misses()) / static_cast<double>(a);
  }
};

struct CacheSimConfig {
  uint64_t capacity_bytes = 12ull * 1024 * 1024;
  uint32_t associativity = 16;
  uint32_t line_bytes = 64;
};

/// \brief N coherent set-associative caches with LRU replacement.
///
/// Not thread-safe: feed it from one thread (traces are generated
/// deterministically by the benches) or shard by address externally.
class CacheSim {
 public:
  CacheSim(uint32_t num_caches, CacheSimConfig config = {});

  /// Performs one access by cache `cache` to byte address `addr`.
  AccessResult Access(uint32_t cache, uint64_t addr, bool write);

  AccessResult Read(uint32_t cache, uint64_t addr) {
    return Access(cache, addr, /*write=*/false);
  }
  AccessResult Write(uint32_t cache, uint64_t addr) {
    return Access(cache, addr, /*write=*/true);
  }

  const CacheStats& stats(uint32_t cache) const { return stats_[cache]; }
  CacheStats TotalStats() const;
  uint32_t num_caches() const { return static_cast<uint32_t>(caches_.size()); }
  const CacheSimConfig& config() const { return config_; }

  /// Fraction of all hits (across caches) whose line was in one of `states`.
  double HitFraction(std::initializer_list<LineState> states) const;

  void ResetStats();

 private:
  struct Way {
    uint64_t tag = 0;          // line address (addr >> line_shift)
    LineState state = LineState::kInvalid;
    uint64_t lru = 0;          // larger = more recently used
  };
  struct Cache {
    std::vector<Way> ways;     // sets * associativity, set-major
    uint64_t tick = 0;
  };

  /// Directory entry: which caches currently hold the line.
  struct DirEntry {
    uint64_t holders = 0;      // bitmask over caches (<= 64 caches)
  };

  Way* FindWay(uint32_t cache, uint64_t line);
  Way* VictimWay(uint32_t cache, uint64_t line);
  void DropHolder(uint64_t line, uint32_t cache);
  LineState StateIn(uint32_t cache, uint64_t line);
  void SetState(uint32_t cache, uint64_t line, LineState state);

  CacheSimConfig config_;
  uint32_t num_sets_;
  int line_shift_;
  std::vector<Cache> caches_;
  std::vector<CacheStats> stats_;
  std::unordered_map<uint64_t, DirEntry> directory_;
};

}  // namespace eris::sim
