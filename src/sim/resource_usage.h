// Bottleneck accounting for deterministic performance simulation.
//
// The simulated-time mode of ERIS models throughput by bottleneck analysis:
// every worker accumulates modeled compute/stall nanoseconds, every memory
// transfer adds bytes to the memory controller of the home node and to every
// interconnect link on the route between accessor and home. The simulated
// wall time of an experiment is the maximum over all resources of
// (work on resource / capacity of resource); throughput = work / time.
// This reproduces the phenomena the paper measures with hardware counters
// (link saturation, memory-controller limits) without NUMA hardware.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "numa/topology.h"

namespace eris::sim {

/// \brief Thread-safe accumulator of per-resource work.
///
/// Slots: one compute slot per worker, one byte counter per interconnect
/// link, one byte counter per node memory controller.
class ResourceUsage {
 public:
  ResourceUsage(const numa::Topology& topology, uint32_t num_workers);

  /// Adds modeled busy time to worker `worker`.
  void AddComputeNs(uint32_t worker, double ns);

  /// Adds `bytes` of traffic to every link on the route src->dst and to the
  /// memory controller of `dst`. A local access (src == dst) touches only
  /// the memory controller.
  void AddMemoryTraffic(numa::NodeId src, numa::NodeId dst, uint64_t bytes);

  /// Command-routing traffic: charges the route links and the destination
  /// memory controller (the flush writes into the target's incoming
  /// buffer; the source reads its just-written outgoing buffer from cache).
  void AddRoutedBytes(numa::NodeId src, numa::NodeId dst, uint64_t bytes);

  /// Link-only traffic, spread over all equal-hop routes of the pair.
  void AddLinkTraffic(numa::NodeId src, numa::NodeId dst, uint64_t bytes);

  void Reset();

  /// Simulated elapsed time: max over all resources.
  double CriticalTimeNs() const;

  double WorkerComputeNs(uint32_t worker) const;
  double MaxWorkerComputeNs() const;
  uint64_t LinkBytes(numa::LinkId link) const;
  uint64_t MemCtrlBytes(numa::NodeId node) const;
  uint64_t TotalLinkBytes() const;
  uint64_t TotalMemCtrlBytes() const;

  /// Time the most loaded link needs for its bytes.
  double LinkTimeNs() const;
  /// Time the most loaded memory controller needs for its bytes.
  double MemCtrlTimeNs() const;

  const numa::Topology& topology() const { return *topology_; }
  uint32_t num_workers() const { return static_cast<uint32_t>(compute_ns_.size()); }

  /// Human-readable resource report (top links/controllers).
  std::string ToString() const;

 private:
  struct alignas(64) PaddedDouble {
    std::atomic<double> v{0.0};
  };

  const numa::Topology* topology_;
  std::vector<PaddedDouble> compute_ns_;
  std::vector<std::atomic<uint64_t>> link_bytes_;
  std::vector<std::atomic<uint64_t>> mc_bytes_;
};

}  // namespace eris::sim
