// Evaluation machine registry (paper Table 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "numa/topology.h"

namespace eris::bench {

/// One evaluation platform: topology plus cache geometry.
struct MachineSpec {
  std::string name;
  numa::Topology topology;
  /// Last-level cache per multiprocessor in bytes (Table 1).
  double llc_bytes_per_node = 0;
};

inline MachineSpec IntelMachine() {
  return {"Intel  (4 nodes,  40 cores)", numa::Topology::IntelMachine(),
          24.0 * 1024 * 1024};
}

inline MachineSpec AmdMachine() {
  return {"AMD    (8 nodes,  64 cores)", numa::Topology::AmdMachine(),
          12.0 * 1024 * 1024};
}

inline MachineSpec SgiMachine(uint32_t nodes = 64) {
  return {"SGI    (" + std::to_string(nodes) + " nodes, " +
              std::to_string(nodes * 8) + " cores)",
          numa::Topology::SgiMachine(nodes), 20.0 * 1024 * 1024};
}

inline std::vector<MachineSpec> AllMachines() {
  return {IntelMachine(), AmdMachine(), SgiMachine()};
}

}  // namespace eris::bench
