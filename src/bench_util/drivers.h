// Shared experiment drivers for the figure-reproduction benches.
//
// Every driver runs the *real* engine (or the real baseline structures) on
// down-scaled data and reads modeled time from the deterministic cost
// model: data sizes and the modeled LLC are divided by the same scale
// factor, so cached fractions — and therefore throughput *ratios* and curve
// shapes — match the paper's full-size runs. See DESIGN.md §2.
#pragma once

#include <cstdint>

#include "bench_util/machines.h"
#include "baseline/shared_column.h"
#include "baseline/shared_tree.h"
#include "core/engine.h"

namespace eris::bench {

/// Outcome of one modeled run.
struct RunResult {
  double sim_seconds = 0;   ///< modeled wall time of the workload phase
  uint64_t ops = 0;         ///< operations executed (lookups/upserts/rows)
  uint64_t link_bytes = 0;  ///< interconnect traffic of the workload phase
  uint64_t mc_bytes = 0;    ///< memory-controller traffic

  /// Paper-scale throughput: ops are counted at paper scale by multiplying
  /// with the scale factor where appropriate (callers decide).
  double mops() const { return sim_seconds > 0 ? ops / sim_seconds / 1e6 : 0; }
  double link_gbps() const {
    return sim_seconds > 0 ? link_bytes / sim_seconds / 1e9 : 0;
  }
  double mc_gbps() const {
    return sim_seconds > 0 ? mc_bytes / sim_seconds / 1e9 : 0;
  }
};

struct PointOpsConfig {
  explicit PointOpsConfig(MachineSpec m) : machine(std::move(m)) {}

  MachineSpec machine;
  /// Paper-scale key count; the run materializes num_keys / scale keys in
  /// the dense domain [0, num_keys / scale).
  uint64_t num_keys = 1u << 30;
  /// Number of point operations to execute (real, not scaled).
  uint64_t ops = 1u << 19;
  double scale = 512.0;
  uint32_t prefix_bits = 8;
  bool upserts = false;  ///< measure the upsert phase instead of lookups
  uint64_t batch = 4096; ///< client submit batch
  uint64_t seed = 42;
};

/// ERIS lookup/upsert throughput on a simulated machine.
RunResult RunErisPointOps(const PointOpsConfig& cfg);

/// NUMA-agnostic shared-index baseline (interleaved memory, atomic updates).
RunResult RunSharedPointOps(const PointOpsConfig& cfg);

struct ScanConfig {
  explicit ScanConfig(MachineSpec m) : machine(std::move(m)) {}

  MachineSpec machine;
  /// Paper-scale column entries (8 B each); materialized count is /scale.
  uint64_t entries = 1ull << 33;
  double scale = 512.0;
  uint32_t repeats = 3;  ///< scans per run (coalescing possible)
  uint64_t seed = 7;
  /// Inclusive value filter of the scan (defaults to a full scan). Column
  /// values are uniform in [0, 2^63), so hi = sel * 2^63 yields
  /// selectivity sel.
  storage::Value lo = 0;
  storage::Value hi = ~storage::Value{0};
  /// Fill the column with sorted (clustered) values instead of uniform
  /// random ones: every selective scan then skips most segments via the
  /// per-segment zone maps.
  bool clustered = false;
};

/// ERIS partitioned column scan (node-local partitions).
RunResult RunErisScan(const ScanConfig& cfg);

/// Shared scan over a column placed on one node or interleaved.
RunResult RunSharedScan(const ScanConfig& cfg, baseline::Placement placement);

/// Builds an engine configured for simulated-time experiments on `machine`
/// with data sizes divided by `scale`.
core::EngineOptions SimEngineOptions(const MachineSpec& machine, double scale);

/// Key-domain bits for a dense domain of `keys` keys.
uint32_t KeyBitsFor(uint64_t keys, uint32_t prefix_bits);

}  // namespace eris::bench
