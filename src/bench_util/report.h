// Paper-style table printing for the benchmark binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace eris::bench {

/// \brief Fixed-width text table, printed like the paper's result tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& Row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("  ");
      for (size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    size_t total = 2;
    for (size_t w : widths) total += w + 2;
    std::printf("  %s\n", std::string(total - 2, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting into std::string.
inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
inline std::string FmtU(uint64_t v) { return std::to_string(v); }

/// Human-readable key/byte counts ("16M", "2G").
inline std::string HumanCount(uint64_t v) {
  if (v >= 1ull << 30 && v % (1ull << 30) == 0)
    return std::to_string(v >> 30) + "G";
  if (v >= 1ull << 20 && v % (1ull << 20) == 0)
    return std::to_string(v >> 20) + "M";
  if (v >= 1ull << 10 && v % (1ull << 10) == 0)
    return std::to_string(v >> 10) + "K";
  if (v >= 1000000000 && v % 1000000000 == 0)
    return std::to_string(v / 1000000000) + "B";
  if (v >= 1000000 && v % 1000000 == 0) return std::to_string(v / 1000000) + "M";
  return std::to_string(v);
}

/// Standard experiment banner.
inline void Banner(const char* id, const char* title, const char* note) {
  std::printf("\n=== %s: %s ===\n", id, title);
  if (note != nullptr && note[0] != '\0') std::printf("%s\n", note);
  std::printf("\n");
}

}  // namespace eris::bench
