// Workload generators for benches and examples.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/logging.h"
#include "common/rng.h"

namespace eris::bench {

/// \brief Zipfian key generator (Gray et al., "Quickly Generating
/// Billion-Record Synthetic Databases").
///
/// Produces ranks in [0, n) where the frequency of rank r is proportional
/// to 1 / (r+1)^theta. theta = 0 is uniform; theta ~ 0.99 is the classic
/// YCSB skew. Ranks are scattered over the key domain with a fixed
/// permutation hash so the hot keys are not clustered (pass scatter=false
/// to keep rank order, which makes the hot set a contiguous range — the
/// friendly case for ERIS' range-partitioned load balancer).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed, bool scatter = true)
      : n_(n), theta_(theta), scatter_(scatter), rng_(seed) {
    ERIS_CHECK_GE(n, 1u);
    ERIS_CHECK_GE(theta, 0.0);
    ERIS_CHECK(theta < 1.0 || theta > 1.0) << "theta == 1 is singular";
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  /// Next key in [0, n).
  uint64_t Next() {
    double u = rng_.NextDouble();
    double uz = u * zetan_;
    uint64_t rank;
    if (uz < 1.0) {
      rank = 0;
    } else if (uz < 1.0 + std::pow(0.5, theta_)) {
      rank = 1;
    } else {
      rank = static_cast<uint64_t>(
          static_cast<double>(n_) *
          std::pow(eta_ * u - eta_ + 1.0, alpha_));
      if (rank >= n_) rank = n_ - 1;
    }
    return scatter_ ? Mix64(rank) % n_ : rank;
  }

  uint64_t domain() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    // Exact for small n; integral approximation beyond (the generator's
    // shape is insensitive to the tail's fourth digit).
    const uint64_t exact = std::min<uint64_t>(n, 10000);
    double sum = 0;
    for (uint64_t i = 1; i <= exact; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    if (n > exact) {
      // integral of x^-theta from `exact` to n
      double a = 1.0 - theta;
      sum += (std::pow(static_cast<double>(n), a) -
              std::pow(static_cast<double>(exact), a)) /
             a;
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  bool scatter_;
  Xoshiro256 rng_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

/// \brief Moving hot-window generator (the Figure 13 workload): uniform
/// keys within a window that can be narrowed and shifted.
class HotWindowGenerator {
 public:
  HotWindowGenerator(uint64_t domain, uint64_t seed)
      : domain_(domain), hi_(domain), rng_(seed) {}

  void SetWindow(uint64_t lo, uint64_t hi) {
    ERIS_CHECK_LT(lo, hi);
    ERIS_CHECK_LE(hi, domain_);
    lo_ = lo;
    hi_ = hi;
  }

  uint64_t Next() { return lo_ + rng_.NextBounded(hi_ - lo_); }
  uint64_t domain() const { return domain_; }

 private:
  uint64_t domain_;
  uint64_t lo_ = 0;
  uint64_t hi_;
  Xoshiro256 rng_;
};

}  // namespace eris::bench
